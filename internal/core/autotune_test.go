package core

// Regression tests for the online cost-model tuner. The synthetic
// workloads feed the tuner observed plan/refine splits directly — the
// tuner only ever sees those two durations, so driving them is exactly
// the production interface — and pin two contracts: a refine-dominated
// T(p) moves the depth in the cost-reducing direction (deeper) without
// oscillating past the damping bound, and a disabled tuner reproduces
// today's compiled-in constants bit for bit.

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"s3cbcd/internal/store"
)

// feedWindow pushes one full refit window of identical observations.
func feedWindow(tn *autoTuner, planDur, refineDur time.Duration) {
	for i := 0; i < tn.opt.Interval; i++ {
		tn.observe(planDur, refineDur)
	}
}

func TestAutoTunerRefineDominatedDeepens(t *testing.T) {
	seed := tuning{depth: 8, bracketStep: 2, thresholdTol: 1.1}
	tn := newAutoTuner(AutoTuneOptions{Enabled: true, Interval: 16, TuneDepth: true}, seed, 1, 20)

	// Ten refine-dominated windows: refinement costs 100× planning, so
	// the fitted T(p) says "shift work into the filtering step" — deeper
	// partition, tighter threshold search.
	prevDepth := seed.depth
	for w := 0; w < 10; w++ {
		feedWindow(tn, 1*time.Microsecond, 100*time.Microsecond)
		cur := tn.current()
		if cur.depth < prevDepth {
			t.Fatalf("window %d: depth decreased %d -> %d under a refine-dominated workload",
				w, prevDepth, cur.depth)
		}
		prevDepth = cur.depth
	}
	st := tn.statsSnapshot()
	if st.Depth <= seed.depth {
		t.Errorf("refine-dominated workload left depth at %d, want > %d", st.Depth, seed.depth)
	}
	if st.ThresholdTol >= seed.thresholdTol {
		t.Errorf("refine-dominated workload left thresholdTol at %v, want < %v",
			st.ThresholdTol, seed.thresholdTol)
	}
	if st.BracketStep >= seed.bracketStep {
		t.Errorf("refine-dominated workload left bracketStep at %v, want < %v",
			st.BracketStep, seed.bracketStep)
	}
	if st.ThresholdTol < minThresholdTol || st.BracketStep < minBracketStep {
		t.Errorf("tuner escaped its schedule bounds: tol=%v step=%v", st.ThresholdTol, st.BracketStep)
	}
	if tn.flips != 0 {
		t.Errorf("monotone workload produced %d depth reversals, want 0", tn.flips)
	}
}

func TestAutoTunerDampingBlocksOscillation(t *testing.T) {
	seed := tuning{depth: 8, bracketStep: 2, thresholdTol: 1.1}
	tn := newAutoTuner(AutoTuneOptions{Enabled: true, Interval: 16, TuneDepth: true}, seed, 1, 20)

	// Alternate dominance every window while the TOTAL cost stays flat:
	// neither depth is actually cheaper, so after the first exploratory
	// move the damping bound must pin the depth — the observed cost at
	// the reversal target never beats damping × the current cost.
	depths := []int{seed.depth}
	for w := 0; w < 12; w++ {
		if w%2 == 0 {
			feedWindow(tn, 1*time.Microsecond, 100*time.Microsecond)
		} else {
			feedWindow(tn, 100*time.Microsecond, 1*time.Microsecond)
		}
		depths = append(depths, tn.current().depth)
	}
	// Count direction changes of the depth trajectory.
	reversals := 0
	lastDir := 0
	for i := 1; i < len(depths); i++ {
		d := depths[i] - depths[i-1]
		if d == 0 {
			continue
		}
		dir := 1
		if d < 0 {
			dir = -1
		}
		if lastDir != 0 && dir == -lastDir {
			reversals++
		}
		lastDir = dir
	}
	if reversals > 1 {
		t.Errorf("flat-cost alternating workload oscillated %d times (depths %v), damping allows at most 1",
			reversals, depths)
	}
	if tn.flips > 1 {
		t.Errorf("tuner counted %d flips, damping allows at most 1", tn.flips)
	}
}

// TestAutoTuneDisabledReproducesDefaults pins the off-switch: with no
// tuner attached, every plan path resolves exactly today's compiled-in
// constants, and the plans are bit-identical to the legacy reference.
func TestAutoTuneDisabledReproducesDefaults(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	recs := make([]store.Record, 600)
	for i := range recs {
		recs[i] = randLiveRecord(r)
	}
	db, err := store.Build(liveTestCurve(), recs)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(db, liveTestDepth)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		tn   tuning
	}{
		{"engine", NewEngine(ix, 1, 1).tuning()},
		{"engine+cache", NewEngineOpts(ix, EngineOptions{PlanCache: true}).tuning()},
		{"planner", ix.defaultTuning()},
	}
	li, err := OpenLiveIndex(liveTestCurve(), "", LiveOptions{Depth: liveTestDepth})
	if err != nil {
		t.Fatal(err)
	}
	defer li.Close()
	cases = append(cases, struct {
		name string
		tn   tuning
	}{"live", li.liveTuning()})

	want := tuning{depth: liveTestDepth, bracketStep: bracketStep, thresholdTol: thresholdTol}
	for _, tc := range cases {
		if tc.tn != want {
			t.Errorf("%s: disabled tuning = %+v, want the compiled-in constants %+v", tc.name, tc.tn, want)
		}
	}

	// And the planned output at the default tuning is bit-identical to
	// the legacy multi-descent reference across a spread of queries.
	for _, alpha := range []float64{0.5, 0.8, 0.95} {
		sq := StatQuery{Alpha: alpha, Model: IsoNormal{D: liveTestDims, Sigma: 2.5}}
		for qi := 0; qi < 8; qi++ {
			q := randLiveRecord(r).FP
			got, err := ix.PlanStat(q, sq)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ix.PlanStatLegacy(q, sq)
			if err != nil {
				t.Fatal(err)
			}
			got.DescentNodes, want.DescentNodes = 0, 0 // incremental vs multi-descent cost differs by design
			if !reflect.DeepEqual(got, want) {
				t.Errorf("alpha %v query %d: tuned-default plan differs from legacy:\n got %+v\nwant %+v",
					alpha, qi, got, want)
			}
		}
	}
}
