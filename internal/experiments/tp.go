package experiments

import (
	"fmt"
	"io"

	"s3cbcd/internal/asciiplot"
	"s3cbcd/internal/core"
	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/store"
)

func init() {
	register(Experiment{
		ID: "tp",
		Title: "Section IV-A ablation: response time decomposition T(p) = T_f(p) + T_r(p) " +
			"vs partition depth p (single minimum at p_min)",
		Run: runTP,
	})
}

func runTP(w io.Writer, sc Scale, seed int64) error {
	dbSize, nq := 100000, 60
	if sc == Full {
		dbSize, nq = 500000, 150
	}
	curve, err := hilbert.New(fingerprint.D, 8)
	if err != nil {
		return err
	}
	db, err := store.Build(curve, FPCorpus(dbSize, seed))
	if err != nil {
		return err
	}
	ix, err := core.NewIndex(db, 0)
	if err != nil {
		return err
	}
	queries, _ := DistortedQueries(db, nq, 18, seed^0x77)
	sq := core.StatQuery{Alpha: 0.80, Model: core.IsoNormal{D: fingerprint.D, Sigma: 18}}

	var depths []int
	for p := 6; p <= 30; p += 3 {
		depths = append(depths, p)
	}
	sweep, err := ix.SweepDepth(depths, queries, sq)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# T(p) sweep — DB = %d fingerprints, %d queries, alpha=80%%\n", db.Len(), nq)
	fmt.Fprintf(w, "%6s %12s %12s %12s %12s %12s\n", "p", "Tf(ms)", "Tr(ms)", "T(ms)", "blocks", "scanned")
	best := sweep[0]
	for _, dt := range sweep {
		fmt.Fprintf(w, "%6d %12.4f %12.4f %12.4f %12.1f %12.1f\n",
			dt.Depth,
			float64(dt.Filter.Microseconds())/1000,
			float64(dt.Refine.Microseconds())/1000,
			float64(dt.Total.Microseconds())/1000,
			dt.Blocks, dt.Scanned)
		if dt.Total < best.Total {
			best = dt
		}
	}
	var px, tf, tr, tt []float64
	for _, dt := range sweep {
		px = append(px, float64(dt.Depth))
		tf = append(tf, float64(dt.Filter.Microseconds())/1000)
		tr = append(tr, float64(dt.Refine.Microseconds())/1000)
		tt = append(tt, float64(dt.Total.Microseconds())/1000)
	}
	fmt.Fprint(w, asciiplot.Render(asciiplot.Config{
		Title: "T(p) = T_f(p) + T_r(p) (ms, log)", LogY: true,
		XLabel: "depth p", YLabel: "ms",
	},
		asciiplot.Series{Name: "T_f", X: px, Y: tf},
		asciiplot.Series{Name: "T_r", X: px, Y: tr},
		asciiplot.Series{Name: "T", X: px, Y: tt},
	))
	fmt.Fprintf(w, "# T_f increases and T_r decreases with p; the minimum is at p_min = %d.\n", best.Depth)
	return nil
}
