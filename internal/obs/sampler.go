package obs

import (
	"math"
	"sync/atomic"
)

// splitmix64Gamma is the odd additive constant of the splitmix64
// generator (Steele, Lea & Flood 2014): successive states are a Weyl
// sequence, and the output mix scrambles them into uniform 64-bit
// draws.
const splitmix64Gamma = 0x9E3779B97F4A7C15

// splitmix64 is the generator's output function over one state value.
func splitmix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Sampler decides which queries carry a trace: each Sample draws
// independently with the configured probability. The draw is one atomic
// add plus a handful of shifts and multiplies (a splitmix64 step over a
// shared counter) — lock-free, so a sampler in front of every query
// never serializes the request path the way the previous mutex-guarded
// math/rand generator did. A fixed seed still yields a deterministic
// accept/reject sequence for single-threaded use (tests, reproductions);
// concurrent callers interleave draws from the same sequence.
type Sampler struct {
	state     atomic.Uint64
	threshold uint64 // accept when draw < threshold
	always    bool
}

// NewSampler returns a sampler accepting with probability rate (clamped
// to [0, 1]) using the given seed. A nil sampler never samples.
func NewSampler(rate float64, seed int64) *Sampler {
	s := &Sampler{}
	s.state.Store(uint64(seed))
	switch {
	case rate <= 0 || math.IsNaN(rate):
		// threshold 0: no draw ever accepted.
	case rate >= 1:
		s.always = true
	default:
		s.threshold = uint64(rate * math.MaxUint64)
	}
	return s
}

// Sample reports whether the next query should be traced.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	if s.always {
		return true
	}
	if s.threshold == 0 {
		return false
	}
	return splitmix64(s.state.Add(splitmix64Gamma)) < s.threshold
}
