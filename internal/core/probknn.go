package core

// Probabilistic k-NN — the "probabilistic selection of the bounding
// regions" family of approximate nearest-neighbor methods the paper cites
// as the state of the art it generalizes ([16] Bennett et al., [17]
// Berrani et al.: control directly the expected fraction of the true
// k nearest neighbors). Blocks are visited in decreasing probability mass
// under the distortion model; the traversal stops when the visited mass
// reaches the requested confidence, so the result contains each true
// relevant neighbor with probability >= confidence under the model.

import (
	"container/heap"
	"fmt"
	"math"

	"s3cbcd/internal/hilbert"
)

// massEntry is a block-tree node prioritized by model mass.
type massEntry struct {
	node hilbert.Node
	mass float64
}

type massQueue []massEntry

func (q massQueue) Len() int            { return len(q) }
func (q massQueue) Less(i, j int) bool  { return q[i].mass > q[j].mass }
func (q massQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *massQueue) Push(x interface{}) { *q = append(*q, x.(massEntry)) }
func (q *massQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// SearchKNNProb returns up to k neighbors found inside the smallest
// region carrying probability mass >= confidence under the model — the
// probabilistically controlled approximate k-NN of the paper's related
// work. Unlike SearchKNN's geometric guarantee, the guarantee here is
// statistical: a fingerprint distorted according to the model is inside
// the visited region with probability >= confidence, so each true
// relevant neighbor is reported with at least that probability. Stats
// report the visited mass and work done.
func (ix *Index) SearchKNNProb(q []byte, k int, confidence float64, m Model) ([]Match, KNNProbStats, error) {
	if k < 1 {
		return nil, KNNProbStats{}, fmt.Errorf("core: k = %d must be >= 1", k)
	}
	if confidence <= 0 || confidence >= 1 {
		return nil, KNNProbStats{}, fmt.Errorf("core: confidence %v outside (0,1)", confidence)
	}
	if err := validateModel(m, ix.db.Dims()); err != nil {
		return nil, KNNProbStats{}, err
	}
	qf, err := queryPoint(q, ix.db.Dims())
	if err != nil {
		return nil, KNNProbStats{}, err
	}
	mc := newMassCache(ix.dims(), ix.curve.SideLen())
	side := ix.curve.SideLen()
	rootMass := blockMass(m, qf, make([]uint32, ix.dims()), fullHi(ix.dims(), side), side, 0)

	var stats KNNProbStats
	best := make(resultHeap, 0, k)
	kth := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		return best[0].Dist
	}
	nodes := massQueue{{node: ix.curve.RootNode(), mass: rootMass}}
	for len(nodes) > 0 && stats.VisitedMass < confidence {
		e := heap.Pop(&nodes).(massEntry)
		if e.node.Bits >= ix.depth {
			stats.Leaves++
			stats.VisitedMass += e.mass
			lo, hi := ix.db.FindInterval(ix.curve.NodeInterval(e.node))
			for i := lo; i < hi; i++ {
				stats.Scanned++
				d := math.Sqrt(distSqToFP(qf, ix.db.FP(i)))
				if d < kth() {
					match := Match{Pos: i, ID: ix.db.ID(i), TC: ix.db.TC(i),
						X: ix.db.X(i), Y: ix.db.Y(i), Dist: d}
					if len(best) == k {
						heap.Pop(&best)
					}
					heap.Push(&best, match)
				}
			}
			continue
		}
		for _, child := range ix.curve.SplitNode(e.node) {
			mass := nodeMassCached(mc, m, qf, child)
			if mass > 0 {
				heap.Push(&nodes, massEntry{node: child, mass: mass})
			}
		}
	}
	out := make([]Match, len(best))
	for i := len(best) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&best).(Match)
	}
	return out, stats, nil
}

// KNNProbStats reports a probabilistic k-NN traversal.
type KNNProbStats struct {
	// VisitedMass is the model mass of the refined leaf blocks: the
	// per-neighbor retrieval probability achieved.
	VisitedMass float64
	// Leaves and Scanned count refined blocks and distance evaluations.
	Leaves  int
	Scanned int
}

// fullHi returns the all-side upper bound vector.
func fullHi(dims int, side uint32) []uint32 {
	hi := make([]uint32, dims)
	for i := range hi {
		hi[i] = side
	}
	return hi
}

// nodeMassCached computes a node's model mass with the per-dimension
// dyadic cache.
func nodeMassCached(mc *massCache, m Model, q []float64, n hilbert.Node) float64 {
	mass := 1.0
	for j := range n.Lo {
		mass *= mc.get(m, q, j, n.Lo[j], n.Hi[j])
		if mass == 0 {
			return 0
		}
	}
	return mass
}
