package experiments

import (
	"fmt"
	"io"
	"time"

	"s3cbcd/internal/asciiplot"
	"s3cbcd/internal/core"
	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/stat"
	"s3cbcd/internal/store"
)

func init() {
	register(Experiment{
		ID: "fig5",
		Title: "Figure 5: retrieval rate vs. query expectation α — statistical query " +
			"vs. exact ε-range query with matched expectation",
		Run: func(w io.Writer, sc Scale, seed int64) error { return runFig56(w, sc, seed, false) },
	})
	register(Experiment{
		ID: "fig6",
		Title: "Figure 6: average search time vs. α — statistical query vs. exact " +
			"ε-range query with matched expectation",
		Run: func(w io.Writer, sc Scale, seed int64) error { return runFig56(w, sc, seed, true) },
	})
}

// fig56Setup builds the Section V-A workload: a fingerprint database and
// distorted queries Q = S + ΔS with σ_Q = 18.
func fig56Setup(sc Scale, seed int64) (*core.Index, *store.DB, [][]byte, []int, error) {
	dbSize, nq := 50000, 200
	if sc == Full {
		dbSize, nq = 400000, 1000
	}
	curve, err := hilbert.New(fingerprint.D, 8)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	db, err := store.Build(curve, FPCorpus(dbSize, seed))
	if err != nil {
		return nil, nil, nil, nil, err
	}
	ix, err := core.NewIndex(db, 0)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	queries, src := DistortedQueries(db, nq, fig56SigmaQ, seed^0x1234)
	// Learn p_min for the statistical method at the start of the
	// retrieval stage, as the paper does; both query types then run on
	// the same partition.
	sq := core.StatQuery{Alpha: 0.80, Model: core.IsoNormal{D: fingerprint.D, Sigma: fig56SigmaQ}}
	if _, err := ix.TuneDepth([]int{13, 17, 21, 25}, queries[:8], sq); err != nil {
		return nil, nil, nil, nil, err
	}
	return ix, db, queries, src, nil
}

// fig56SigmaQ is the paper's σ_Q = 18.0 query distortion.
const fig56SigmaQ = 18.0

func runFig56(w io.Writer, sc Scale, seed int64, timing bool) error {
	ix, db, queries, src, err := fig56Setup(sc, seed)
	if err != nil {
		return err
	}
	model := core.IsoNormal{D: fingerprint.D, Sigma: fig56SigmaQ}
	rd := stat.RadiusDist{D: fingerprint.D, Sigma: fig56SigmaQ}

	if timing {
		fmt.Fprintf(w, "# Figure 6 — average search time (ms) vs α; DB = %d fingerprints, %d queries, σ_Q = %.1f\n",
			db.Len(), len(queries), fig56SigmaQ)
		fmt.Fprintf(w, "%6s %14s %14s %10s\n", "alpha", "statistical", "rangeQuery", "speedup")
	} else {
		fmt.Fprintf(w, "# Figure 5 — retrieval rate (%%) vs α; DB = %d fingerprints, %d queries, σ_Q = %.1f\n",
			db.Len(), len(queries), fig56SigmaQ)
		fmt.Fprintf(w, "%6s %14s %14s %8s\n", "alpha", "statistical", "rangeQuery", "alpha")
	}

	alphas := []float64{0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95}
	var statSeries, rangeSeries []float64
	for _, alpha := range alphas {
		sq := core.StatQuery{Alpha: alpha, Model: model}
		eps := rd.Quantile(alpha)

		statHits, rangeHits := 0, 0
		var statTime, rangeTime time.Duration
		for qi, q := range queries {
			t0 := time.Now()
			sm, _, err := ix.SearchStat(q, sq)
			if err != nil {
				return err
			}
			statTime += time.Since(t0)

			t1 := time.Now()
			rm, _, err := ix.SearchRange(q, eps)
			if err != nil {
				return err
			}
			rangeTime += time.Since(t1)

			for _, m := range sm {
				if m.Pos == src[qi] {
					statHits++
					break
				}
			}
			for _, m := range rm {
				if m.Pos == src[qi] {
					rangeHits++
					break
				}
			}
		}
		n := float64(len(queries))
		if timing {
			sMS := float64(statTime.Microseconds()) / n / 1000
			rMS := float64(rangeTime.Microseconds()) / n / 1000
			statSeries = append(statSeries, sMS)
			rangeSeries = append(rangeSeries, rMS)
			fmt.Fprintf(w, "%6.0f %14.4f %14.4f %9.1fx\n", alpha*100, sMS, rMS, rMS/sMS)
		} else {
			statSeries = append(statSeries, float64(statHits)/n*100)
			rangeSeries = append(rangeSeries, float64(rangeHits)/n*100)
			fmt.Fprintf(w, "%6.0f %14.2f %14.2f %8.0f\n",
				alpha*100, float64(statHits)/n*100, float64(rangeHits)/n*100, alpha*100)
		}
	}
	ax := make([]float64, len(alphas))
	for i, a := range alphas {
		ax[i] = a * 100
	}
	if timing {
		fmt.Fprint(w, asciiplot.Render(asciiplot.Config{
			Title: "avg search time (ms, log) vs alpha", LogY: true,
			XLabel: "alpha %", YLabel: "ms",
		},
			asciiplot.Series{Name: "statistical", X: ax, Y: statSeries},
			asciiplot.Series{Name: "range", X: ax, Y: rangeSeries},
		))
	} else {
		fmt.Fprint(w, asciiplot.Render(asciiplot.Config{
			Title: "retrieval rate (%) vs alpha", XLabel: "alpha %", YLabel: "R %",
		},
			asciiplot.Series{Name: "statistical", X: ax, Y: statSeries},
			asciiplot.Series{Name: "range", X: ax, Y: rangeSeries},
			asciiplot.Series{Name: "alpha", X: ax, Y: ax, Marker: '.'},
		))
	}
	if timing {
		fmt.Fprintf(w, "# Paper's claim: the statistical query is one to two orders of magnitude faster\n")
		fmt.Fprintf(w, "# at equal expectation, because it intercepts far fewer p-blocks.\n")
	} else {
		fmt.Fprintf(w, "# Paper's claim: both methods retrieve at ~alpha; the geometric constraint\n")
		fmt.Fprintf(w, "# of the exact range query does not improve the retrieval rate.\n")
	}
	return nil
}
