package obs

// Cross-process trace propagation: the X-S3-Trace request header
// carries a trace's identity one hop downstream, mirroring how
// X-S3-Deadline carries the time budget. The format is fixed-width —
// `<traceid:16 hex>-<parentspan:16 hex>-<flags:2 hex>-<depth:2 hex>`,
// 39 bytes exactly — so decoding is a length check plus a hand-rolled
// hex scan: no allocation, no splitting, and hostile values (oversized,
// truncated, bad hex, depth bombs) are rejected in O(1) before any work
// happens. A rejected header means the receiver starts a fresh root
// trace; propagation must never turn into a crash surface.

// TraceHeader is the request header carrying a SpanContext.
const TraceHeader = "X-S3-Trace"

// MaxTraceDepth bounds propagation hops. Routers stack (a router can
// front other routers), so without a bound a forged header — or a
// routing loop — could grow depth without limit; past this depth
// receivers still trace locally but stop propagating, and decoders
// reject deeper headers outright.
const MaxTraceDepth = 8

// traceHeaderLen is the exact encoded length: 16+1+16+1+2+1+2.
const traceHeaderLen = 39

// SpanContext is the wire identity of a trace crossing a process
// boundary: which trace, which span in the sender is the parent of the
// receiver's root, whether the trace is sampled, and how many hops from
// the origin the receiver sits.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
	Sampled bool
	Depth   uint8
}

// String encodes the context in X-S3-Trace wire form.
func (sc SpanContext) String() string {
	var b [traceHeaderLen]byte
	putHex(b[0:16], sc.TraceID)
	b[16] = '-'
	putHex(b[17:33], sc.SpanID)
	b[33] = '-'
	var flags uint64
	if sc.Sampled {
		flags = 1
	}
	putHex(b[34:36], flags)
	b[36] = '-'
	putHex(b[37:39], uint64(sc.Depth))
	return string(b[:])
}

// ParseTraceHeader decodes an X-S3-Trace value. It returns ok=false —
// never panics, never allocates — for anything but a well-formed
// context: wrong length, misplaced separators, non-hex digits, a zero
// trace id (reserved as "no trace"), or a depth beyond MaxTraceDepth.
func ParseTraceHeader(s string) (SpanContext, bool) {
	if len(s) != traceHeaderLen || s[16] != '-' || s[33] != '-' || s[36] != '-' {
		return SpanContext{}, false
	}
	tid, ok := parseHex(s[0:16])
	if !ok || tid == 0 {
		return SpanContext{}, false
	}
	sid, ok := parseHex(s[17:33])
	if !ok {
		return SpanContext{}, false
	}
	flags, ok := parseHex(s[34:36])
	if !ok {
		return SpanContext{}, false
	}
	depth, ok := parseHex(s[37:39])
	if !ok || depth > MaxTraceDepth {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: tid, SpanID: sid, Sampled: flags&1 != 0, Depth: uint8(depth)}, true
}

const hexDigits = "0123456789abcdef"

// putHex writes v right-aligned into b as lowercase hex, len(b) digits.
func putHex(b []byte, v uint64) {
	for i := len(b) - 1; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
}

// parseHex decodes lowercase/uppercase hex of up to 16 digits.
func parseHex(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}
