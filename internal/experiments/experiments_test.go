package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "global", "knn", "models", "spatial", "tab1", "tp"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("%d experiments registered, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("experiment %d is %q, want %q", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].Run == nil {
			t.Fatalf("experiment %q incomplete", id)
		}
		if e, ok := Lookup(id); !ok || e.ID != id {
			t.Fatalf("Lookup(%q) failed", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown id succeeded")
	}
}

func TestParseScale(t *testing.T) {
	if sc, err := ParseScale(""); err != nil || sc != Quick {
		t.Fatalf("empty: %v %v", sc, err)
	}
	if sc, err := ParseScale("full"); err != nil || sc != Full {
		t.Fatalf("full: %v %v", sc, err)
	}
	if _, err := ParseScale("medium"); err == nil {
		t.Fatal("bad scale accepted")
	}
}

// TestFig2Deterministic runs the cheapest experiment end to end and
// checks its invariants: three partitions whose glyph counts are exactly
// 2^p distinct ids.
func TestFig2Deterministic(t *testing.T) {
	var buf bytes.Buffer
	e, _ := Lookup("fig2")
	if err := e.Run(&buf, Quick, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, p := range []int{3, 4, 5} {
		if !strings.Contains(out, "blocks") {
			t.Fatal("missing block header")
		}
		_ = p
	}
	// Count distinct glyphs in the p=3 grid: exactly 8.
	lines := strings.Split(out, "\n")
	glyphs := map[rune]bool{}
	for i := 1; i <= 16; i++ {
		for _, r := range lines[i] {
			glyphs[r] = true
		}
	}
	if len(glyphs) != 8 {
		t.Fatalf("p=3 grid has %d distinct block ids, want 8", len(glyphs))
	}
}

// TestFig1RunsAndPrefersNormalModel runs Figure 1 at quick scale and
// asserts the paper's qualitative conclusion.
func TestFig1RunsAndPrefersNormalModel(t *testing.T) {
	var buf bytes.Buffer
	e, _ := Lookup("fig1")
	if err := e.Run(&buf, Quick, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "normal model is the closer fit") {
		t.Fatalf("fig1 did not validate the normal model:\n%s", buf.String())
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a := FPCorpus(500, 9)
	b := FPCorpus(500, 9)
	for i := range a {
		for j := range a[i].FP {
			if a[i].FP[j] != b[i].FP[j] {
				t.Fatal("FPCorpus not deterministic")
			}
		}
	}
	c := FPCorpus(500, 10)
	diff := false
	for j := range a[0].FP {
		if a[0].FP[j] != c[0].FP[j] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical corpus")
	}
	// IDs come in blocks (near-duplication structure).
	if a[0].ID != a[1].ID || a[0].ID == a[499].ID {
		t.Fatalf("unexpected id structure: %d %d %d", a[0].ID, a[1].ID, a[499].ID)
	}
}

func TestVideoCorpusShape(t *testing.T) {
	seqs := VideoCorpus(3, 80, 5)
	if len(seqs) != 3 {
		t.Fatalf("%d sequences", len(seqs))
	}
	for _, s := range seqs {
		if s.Len() != 80 {
			t.Fatalf("sequence has %d frames", s.Len())
		}
	}
}
