// Package httpapi exposes an S³ index over HTTP with a small JSON API, so
// the reference database can be queried as a service (the deployment mode
// of a monitoring installation where extraction happens near the capture
// hardware and the archive index is centralized).
//
// Endpoints:
//
//	GET  /healthz                    liveness plus shard/segment/record counts
//	GET  /stats                      database and index facts
//	GET  /metrics                    Prometheus text exposition of every registered metric
//	POST /search/statistical         {"fingerprint": [..], "alpha": 0.8, "sigma": 20}
//	POST /search/statistical/batch   {"fingerprints": [[..], ..], "alpha": 0.8, "sigma": 20}
//	POST /search/range               {"fingerprint": [..], "epsilon": 95}
//	POST /search/knn                 {"fingerprint": [..], "k": 10}
//
// Fingerprints are arrays of D integers in [0, 255]. Responses carry the
// matches (id, tc, x, y, dist) plus plan/search diagnostics. Non-POST
// requests to the search endpoints get 405.
//
// Appending ?trace=1 to a search request attaches a stage-level
// execution trace ("trace": wall time per plan/refine stage plus
// descent-node/block/candidate work counters) to the response;
// Options.TraceRate additionally samples a fraction of untraced
// searches. Appending ?nocache=1 makes the search bypass the plan cache
// and recompute its plan (answers are byte-identical either way).
// Every request is counted into per-route latency and
// status-class series served at /metrics, alongside the engine's (or
// live index's) own metrics.
//
// A server over a live index (NewLive) additionally accepts writes:
//
//	POST   /ingest       {"records": [{"fingerprint": [..], "id": 7, "tc": 120, "x": 10, "y": 20}, ..]}
//	DELETE /video/{id}   withdraw every stored record of video id
//
// and its /healthz reports segment, memtable and compaction counters
// plus the persistence health (degraded flag, last persistence error,
// retry counters). While the index is in degraded read-only mode —
// persistence failing repeatedly — write endpoints answer 503 with a
// Retry-After header; searches keep serving the last published
// snapshot. Write endpoints run under the same in-flight semaphore as
// searches,
// and ingest bodies are capped (Options.MaxIngestBytes) so concurrent
// large ingests cannot consume unbounded memory.
//
// Searches run through the core.Searcher surface — a sharded query
// engine (core.Engine) for a static archive, a core.LiveIndex for a
// growing one. Every request executes under its own context (client
// disconnects cancel the search) and the number of requests concurrently
// searching is bounded by a semaphore, so a traffic burst queues instead
// of spawning unbounded concurrent scans. A request queued past its
// context's life is shed with 503 + Retry-After — the same shape
// degraded mode answers — so upstream routers treat both saturation
// signals uniformly.
//
// An inbound X-S3-Deadline header (unix milliseconds) bounds the
// request context: a coordinator scattering a query propagates its
// deadline so backend refinement work is canceled, not wasted, once the
// overall budget expires (the abort answers 503 + Retry-After). During
// graceful shutdown SetDraining flips /healthz to "draining", giving
// health-aware routers a window to move traffic before the listener
// closes.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"s3cbcd/internal/core"
	"s3cbcd/internal/obs"
	"s3cbcd/internal/store"
)

// DefaultMaxInFlight bounds concurrently executing searches when
// Options.MaxInFlight is zero.
const DefaultMaxInFlight = 64

// Options tunes the server.
type Options struct {
	// Depth is the index partition depth p; 0 selects the heuristic.
	Depth int
	// Shards is the engine's keyspace shard count; 0 or 1 is monolithic.
	Shards int
	// Workers bounds the engine's concurrency; 0 selects GOMAXPROCS.
	Workers int
	// MaxInFlight bounds the number of requests concurrently executing
	// searches or writes; 0 selects DefaultMaxInFlight, negative values
	// disable the bound.
	MaxInFlight int
	// MaxIngestBytes caps the request body of POST /ingest; 0 selects
	// DefaultMaxIngestBytes, negative values disable the cap.
	MaxIngestBytes int64
	// Metrics is the registry the server publishes into: per-route
	// request latency/status series, plus the engine's (or live index's)
	// metrics, all served at GET /metrics. nil creates a fresh registry
	// (reachable via Server.Metrics). A registry accommodates one server.
	Metrics *obs.Registry
	// TraceRate samples queries for stage-level tracing: each search
	// carries a trace with probability TraceRate (0 disables sampling; a
	// request can always opt in with ?trace=1). Sampled or requested
	// traces are attached to the response under "trace".
	TraceRate float64
	// TraceSeed seeds the trace sampler, making the accept/reject
	// sequence reproducible.
	TraceSeed int64
	// TraceStoreSize bounds the in-memory debug trace store (finished
	// traces kept for /debug/traces); 0 selects the obs default.
	TraceStoreSize int
	// SlowQuery, when positive, logs every traced query at least this
	// slow through Logger, with the assembled span tree attached.
	SlowQuery time.Duration
	// Logger receives the slow-query log; nil discards it.
	Logger *slog.Logger
	// PlanCache enables the engine's statistical-plan cache (static
	// servers only — a live server inherits the cache its LiveIndex was
	// opened with). Answers are byte-identical with it on or off; a
	// request can bypass it with ?nocache=1.
	PlanCache bool
	// PlanCacheEntries bounds the plan cache; 0 selects
	// core.DefaultPlanCacheEntries.
	PlanCacheEntries int
	// AutoTune enables the engine's online threshold-search tuning
	// (static servers only).
	AutoTune core.AutoTuneOptions
}

// serverHeader identifies the service on every response.
const serverHeader = "s3cbcd"

// jsonContentType is the Content-Type of every JSON response, error
// bodies included.
const jsonContentType = "application/json; charset=utf-8"

// DefaultMaxIngestBytes bounds an ingest request body when
// Options.MaxIngestBytes is zero.
const DefaultMaxIngestBytes = 32 << 20

// Server wires an index into an http.Handler.
type Server struct {
	search    core.Searcher
	eng       *core.Engine    // nil when serving a live index
	live      *core.LiveIndex // nil when serving a static index
	dims      int
	mux       *http.ServeMux
	sem       chan struct{} // nil = unbounded
	maxIngest int64         // <= 0 = uncapped

	// draining is flipped by SetDraining during graceful shutdown:
	// /healthz advertises it so a load balancer or the s3router prober
	// stops sending new work before the listener closes, avoiding a
	// burst of connection-refused retries.
	draining atomic.Bool

	reg       *obs.Registry
	sampler   *obs.Sampler
	inflight  *obs.Gauge
	traces    *obs.TraceStore
	slowQuery time.Duration
	logger    *slog.Logger
}

// SetDraining marks (or unmarks) the server as draining: /healthz
// reports "draining": true and status "draining", which health-aware
// routers treat as "finish in-flight work, send no new requests".
// Request handling itself is unaffected — the point is to advertise the
// impending shutdown while the listener still accepts connections.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether SetDraining(true) was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// New returns a ready handler over the given static database.
func New(db *store.DB, opt Options) (*Server, error) {
	ix, err := core.NewIndex(db, opt.Depth)
	if err != nil {
		return nil, err
	}
	eng := core.NewEngineOpts(ix, core.EngineOptions{
		Shards: opt.Shards, Workers: opt.Workers,
		PlanCache: opt.PlanCache, PlanCacheEntries: opt.PlanCacheEntries,
		AutoTune: opt.AutoTune,
	})
	s := newServer(opt)
	s.search, s.eng, s.dims = eng, eng, db.Dims()
	eng.RegisterMetrics(s.reg)
	return s, nil
}

// NewLive returns a handler over a live segmented index, additionally
// exposing the ingest and delete endpoints. Options.Depth and Shards are
// ignored (the live index carries its own depth; segments play the role
// of shards).
func NewLive(li *core.LiveIndex, opt Options) *Server {
	s := newServer(opt)
	s.search, s.live, s.dims = li, li, li.Curve().Dims()
	if opt.MaxIngestBytes == 0 {
		opt.MaxIngestBytes = DefaultMaxIngestBytes
	}
	s.maxIngest = opt.MaxIngestBytes
	li.RegisterMetrics(s.reg)
	// Writes share the in-flight semaphore with searches, so a burst of
	// ingests queues under the same admission control instead of
	// spawning unbounded concurrent decodes and merges.
	s.handle("POST /ingest", "/ingest", s.bounded(s.handleIngest))
	s.handle("DELETE /video/{id}", "/video/{id}", s.bounded(s.handleDeleteVideo))
	s.handle("POST /flush", "/flush", s.bounded(s.handleFlush))
	s.handle("POST /compact", "/compact", s.bounded(s.handleCompact))
	return s
}

// newServer builds the shared mux, semaphore, registry and sampler.
func newServer(opt Options) *Server {
	s := &Server{mux: http.NewServeMux(), reg: opt.Metrics}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	if opt.TraceRate > 0 {
		s.sampler = obs.NewSampler(opt.TraceRate, opt.TraceSeed)
	}
	s.traces = obs.NewTraceStore(opt.TraceStoreSize)
	s.traces.RegisterMetrics(s.reg)
	s.slowQuery = opt.SlowQuery
	s.logger = opt.Logger
	if s.logger == nil {
		s.logger = obs.NopLogger()
	}
	s.inflight = s.reg.Gauge("s3_http_inflight_requests",
		"requests currently being handled (admission queue included)")
	if opt.MaxInFlight == 0 {
		opt.MaxInFlight = DefaultMaxInFlight
	}
	if opt.MaxInFlight > 0 {
		s.sem = make(chan struct{}, opt.MaxInFlight)
	}
	s.mux.Handle("GET /metrics", s.reg.Handler())
	s.handle("GET /healthz", "/healthz", s.handleHealthz)
	s.handle("GET /stats", "/stats", s.handleStats)
	s.handle("POST /search/statistical", "/search/statistical", s.bounded(s.handleStat))
	s.handle("POST /search/statistical/batch", "/search/statistical/batch", s.bounded(s.handleStatBatch))
	s.handle("POST /search/range", "/search/range", s.bounded(s.handleRange))
	s.handle("POST /search/knn", "/search/knn", s.bounded(s.handleKNN))
	return s
}

// handle registers h on the mux pattern wrapped in per-route
// instrumentation labelled with route (the pattern's path, a fixed, low
// cardinality set — never the raw request URL).
func (s *Server) handle(pattern, route string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, s.instrument(route, h))
}

// instrument wraps a handler with the route's latency histogram and
// status-class counters, created eagerly so every route renders in
// /metrics from the first scrape. Latency covers time queued on the
// admission semaphore (instrument wraps bounded).
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.reg.Histogram(fmt.Sprintf("s3_http_request_seconds{route=%q}", route),
		"request wall time by route", obs.LatencyBuckets())
	classes := [4]*obs.Counter{}
	for i, class := range []string{"2xx", "3xx", "4xx", "5xx"} {
		classes[i] = s.reg.Counter(
			fmt.Sprintf("s3_http_requests_total{route=%q,code=%q}", route, class),
			"requests served by route and status class")
	}
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		hist.ObserveSince(t0)
		if i := sw.code/100 - 2; i >= 0 && i < len(classes) {
			classes[i].Inc()
		}
	}
}

// statusWriter captures the response status code for the route metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Metrics returns the server's registry (also served at GET /metrics),
// for callers that add their own series — process gauges, store I/O
// counters — next to the server's.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// traceFor decides whether this request's search is traced: always when
// an upstream coordinator sent a sampled X-S3-Trace context (the trace
// continues the caller's identity, so the caller can graft this
// process's report into its tree), always when the client asks with
// ?trace=1, otherwise by the sampler. A malformed or hostile trace
// header is indistinguishable from no header: the request falls back to
// the local sampling decision with a fresh root trace. It returns the
// context to run the search under and the trace to report (nil when
// untraced). ?nocache=1 additionally makes the search bypass the plan
// cache (the recompute escape hatch; answers are identical either way).
func (s *Server) traceFor(r *http.Request, route string) (context.Context, *obs.Trace) {
	ctx := r.Context()
	if r.URL.Query().Get("nocache") == "1" {
		ctx = core.WithoutPlanCache(ctx)
	}
	var tr *obs.Trace
	if h := r.Header.Get(obs.TraceHeader); h != "" {
		if sc, ok := obs.ParseTraceHeader(h); ok && sc.Sampled {
			tr = obs.NewTraceFrom(sc)
		}
	}
	if tr == nil && (r.URL.Query().Get("trace") == "1" || s.sampler.Sample()) {
		tr = obs.NewTrace()
	}
	if tr == nil {
		return ctx, nil
	}
	tr.SetName("s3serve " + route)
	return obs.WithTrace(ctx, tr), tr
}

// finishTrace closes out a traced request: the failure (if any) is
// recorded, the report is built once, filed into the debug trace store,
// logged when the query breached the slow-query threshold, and returned
// for in-band attachment to the response. Returns a zero report for
// untraced requests.
func (s *Server) finishTrace(route string, tr *obs.Trace, err error) obs.TraceReport {
	if tr == nil {
		return obs.TraceReport{}
	}
	if err != nil {
		tr.SetError(err.Error())
	}
	rep := tr.Report()
	s.traces.Add(rep)
	if s.slowQuery > 0 && time.Duration(rep.TotalMicros)*time.Microsecond >= s.slowQuery {
		s.logger.Warn("slow query",
			"route", route,
			"traceId", rep.TraceID,
			"micros", rep.TotalMicros,
			"error", rep.Error,
			"trace", rep)
	}
	return rep
}

// TraceStore returns the server's bounded debug trace store, for
// mounting /debug/traces on a debug listener.
func (s *Server) TraceStore() *obs.TraceStore { return s.traces }

// Engine returns the server's query engine (nil for a live server).
func (s *Server) Engine() *core.Engine { return s.eng }

// Live returns the server's live index (nil for a static server).
func (s *Server) Live() *core.LiveIndex { return s.live }

// DeadlineHeader is the inbound request header carrying an absolute
// deadline as unix milliseconds. A coordinator (cmd/s3router) sets it
// on scattered subrequests so the backend's own context expires when
// the client's overall budget does: refinement work the caller can no
// longer use is canceled instead of completed and discarded.
const DeadlineHeader = "X-S3-Deadline"

// withDeadline derives the request context from an inbound
// DeadlineHeader, when present. The bool is false (with a 400 already
// written) when the header exists but is not unix milliseconds.
func withDeadline(w http.ResponseWriter, r *http.Request) (*http.Request, context.CancelFunc, bool) {
	h := r.Header.Get(DeadlineHeader)
	if h == "" {
		return r, func() {}, true
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%s: %q is not a unix-milliseconds deadline", DeadlineHeader, h)
		return r, func() {}, false
	}
	ctx, cancel := context.WithDeadline(r.Context(), time.UnixMilli(ms))
	return r.WithContext(ctx), cancel, true
}

// ServeHTTP implements http.Handler. The Server header is set here,
// before mux dispatch, so 404/405 responses carry it too, and the
// deadline header is honored here so every endpoint — searches, writes,
// even health checks — runs under the propagated budget.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Server", serverHeader)
	r, cancel, ok := withDeadline(w, r)
	if !ok {
		return
	}
	defer cancel()
	s.mux.ServeHTTP(w, r)
}

// shedRetryAfter is the Retry-After hint (seconds) on 503s shed from
// the in-flight semaphore: the queue drains at request latency, so a
// quick re-probe is appropriate — unlike the longer degraded-mode hint.
const shedRetryAfter = 1

// bounded gates a handler on the in-flight semaphore. A request whose
// client goes away — or whose propagated deadline expires — while
// queued is shed with 503 + Retry-After without touching the engine,
// the same shape degraded mode uses, so an upstream router treats both
// saturation signals uniformly.
func (s *Server) bounded(h http.HandlerFunc) http.HandlerFunc {
	if s.sem == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-r.Context().Done():
			w.Header().Set("Retry-After", strconv.Itoa(shedRetryAfter))
			httpError(w, http.StatusServiceUnavailable, "request shed while queued: %v", r.Context().Err())
			return
		}
		h(w, r)
	}
}

// matchJSON is the wire form of a search result.
type matchJSON struct {
	ID   uint32  `json:"id"`
	TC   uint32  `json:"tc"`
	X    uint16  `json:"x"`
	Y    uint16  `json:"y"`
	Dist float64 `json:"dist,omitempty"`
}

func toJSON(ms []core.Match) []matchJSON {
	out := make([]matchJSON, len(ms))
	for i, m := range ms {
		out[i] = matchJSON{ID: m.ID, TC: m.TC, X: m.X, Y: m.Y}
		if m.Dist >= 0 {
			out[i].Dist = m.Dist
		}
	}
	return out
}

// searchRequest is the common request body.
type searchRequest struct {
	Fingerprint  []int   `json:"fingerprint"`
	Fingerprints [][]int `json:"fingerprints"`
	Alpha        float64 `json:"alpha"`
	Sigma        float64 `json:"sigma"`
	Epsilon      float64 `json:"epsilon"`
	K            int     `json:"k"`
	MaxLeaves    int     `json:"maxLeaves"`
}

// fingerprint validates and converts one request fingerprint.
func (s *Server) fingerprint(raw []int) ([]byte, error) {
	dims := s.dims
	if len(raw) != dims {
		return nil, fmt.Errorf("fingerprint has %d components, index needs %d", len(raw), dims)
	}
	fp := make([]byte, dims)
	for i, v := range raw {
		if v < 0 || v > 255 {
			return nil, fmt.Errorf("component %d = %d outside [0,255]", i, v)
		}
		fp[i] = byte(v)
	}
	return fp, nil
}

func decode(w http.ResponseWriter, r *http.Request) (*searchRequest, bool) {
	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return nil, false
	}
	return &req, true
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", jsonContentType)
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func reply(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", jsonContentType)
	json.NewEncoder(w).Encode(v)
}

// searchError maps a search failure to its HTTP shape. A context
// error — the client went away, or a propagated X-S3-Deadline budget
// expired mid-refine — answers 503 + Retry-After: the query was valid
// and sheddable load, not a client mistake, and a coordinator may
// usefully retry it against a sibling replica (with a fresh budget).
// Anything else is a request defect: 400.
func searchError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		w.Header().Set("Retry-After", strconv.Itoa(shedRetryAfter))
		httpError(w, http.StatusServiceUnavailable, "search aborted: %v", err)
		return
	}
	httpError(w, http.StatusBadRequest, "%v", err)
}

// degradedRetryAfter is the Retry-After hint (seconds) sent with 503
// responses while the live index is degraded: long enough for a few
// backoff-spaced persistence retries to run, short enough that clients
// probe again promptly once storage recovers.
const degradedRetryAfter = 5

// writeError maps a live-index write failure to its HTTP shape: a
// degraded index answers 503 + Retry-After (the condition is transient
// by design — the background retry loop is working on it), a closed one
// 503 without the hint, anything else 500.
func writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, core.ErrDegraded):
		w.Header().Set("Retry-After", strconv.Itoa(degradedRetryAfter))
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, core.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

// planCacheJSON renders plan cache health fields; nil when disabled.
func planCacheJSON(st core.PlanCacheStats, ok bool) map[string]interface{} {
	if !ok {
		return nil
	}
	hitRate := 0.0
	if lookups := st.Hits + st.Misses; lookups > 0 {
		hitRate = float64(st.Hits) / float64(lookups)
	}
	return map[string]interface{}{
		"hits":        st.Hits,
		"misses":      st.Misses,
		"sharedWaits": st.SharedWaits,
		"bypasses":    st.Bypasses,
		"evictions":   st.Evictions,
		"entries":     st.Entries,
		"hitRate":     hitRate,
	}
}

// autoTuneJSON renders the online tuner's fields; nil when disabled.
func autoTuneJSON(st core.AutoTuneStats, ok bool) map[string]interface{} {
	if !ok {
		return nil
	}
	return map[string]interface{}{
		"depth":        st.Depth,
		"bracketStep":  st.BracketStep,
		"thresholdTol": st.ThresholdTol,
		"refits":       st.Refits,
		"changes":      st.Changes,
	}
}

// cacheTuneFields folds the searcher's plan cache and tuner groups into
// a response body (both s.eng and s.live expose the same accessors).
func (s *Server) cacheTuneFields(body map[string]interface{}) {
	var (
		pcs  core.PlanCacheStats
		ats  core.AutoTuneStats
		pcOK bool
		atOK bool
	)
	if s.live != nil {
		pcs, pcOK = s.live.PlanCacheStats()
		ats, atOK = s.live.AutoTuneStats()
	} else {
		pcs, pcOK = s.eng.PlanCacheStats()
		ats, atOK = s.eng.AutoTuneStats()
	}
	if m := planCacheJSON(pcs, pcOK); m != nil {
		body["planCache"] = m
	}
	if m := autoTuneJSON(ats, atOK); m != nil {
		body["autotune"] = m
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.live != nil {
		st := s.live.Stats()
		status := "ok"
		if s.draining.Load() {
			status = "draining"
		}
		if st.Degraded {
			// Degraded outranks draining: a router must know reads-only
			// is all this backend offers, whether or not it is leaving.
			status = "degraded"
		}
		body := map[string]interface{}{
			"status":          status,
			"draining":        s.draining.Load(),
			"gen":             st.Gen,
			"records":         st.LiveRecords,
			"segments":        st.Segments,
			"memtableRecords": st.MemtableRecords,
			"tombstonedIds":   st.TombstonedIDs,
			"ingested":        st.Ingested,
			"deletes":         st.Deletes,
			"compactions":     st.Compactions,
			"degraded":        st.Degraded,
			"dirty":           st.Dirty,
			"lastPersistErr":  st.LastPersistErr,
			"persistFailures": st.PersistFailures,
			"persistRetries":  st.PersistRetries,
		}
		if st.SketchSegments > 0 || st.SketchConsults > 0 {
			body["sketchSegments"] = st.SketchSegments
			body["sketchBytes"] = st.SketchBytes
			body["sketchConsults"] = st.SketchConsults
			body["segmentsSkipped"] = st.SegmentsSkipped
		}
		if st.CodecSegments > 0 || st.QuantizedRejects > 0 {
			body["codecSegments"] = st.CodecSegments
			body["quantizedRejects"] = st.QuantizedRejects
			body["fallbackReads"] = st.FallbackReads
		}
		if st.SkippedBlocks > 0 || st.BytesSaved > 0 {
			body["skippedBlocks"] = st.SkippedBlocks
			body["bytesSaved"] = st.BytesSaved
		}
		if st.ColdSegments > 0 || st.Cache.BudgetBytes > 0 {
			body["coldSegments"] = st.ColdSegments
			body["coldRecords"] = st.ColdRecords
			hitRate := 0.0
			if lookups := st.Cache.Hits + st.Cache.Misses; lookups > 0 {
				hitRate = float64(st.Cache.Hits) / float64(lookups)
			}
			body["cache"] = map[string]interface{}{
				"budgetBytes": st.Cache.BudgetBytes,
				"bytes":       st.Cache.Bytes,
				"blocks":      st.Cache.Blocks,
				"hits":        st.Cache.Hits,
				"misses":      st.Cache.Misses,
				"evictions":   st.Cache.Evictions,
				"loadedBytes": st.Cache.LoadedBytes,
				"hitRate":     hitRate,
			}
		}
		s.cacheTuneFields(body)
		reply(w, body)
		return
	}
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	body := map[string]interface{}{
		"status":   status,
		"draining": s.draining.Load(),
		"shards":   s.eng.Shards(),
		"records":  s.eng.Index().DB().Len(),
		// Cumulative partition-tree nodes visited by every plan this
		// engine has computed: the filtering-side work counter that the
		// frontier planner exists to keep small.
		"descentNodes": s.eng.DescentNodes(),
	}
	s.cacheTuneFields(body)
	reply(w, body)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	if s.live != nil {
		st := s.live.Stats()
		skipRate := 0.0
		if st.SketchConsults > 0 {
			skipRate = float64(st.SegmentsSkipped) / float64(st.SketchConsults)
		}
		body := map[string]interface{}{
			"records":          st.LiveRecords,
			"dims":             s.dims,
			"order":            s.live.Curve().Order(),
			"depth":            s.live.Depth(),
			"segments":         st.Segments,
			"segmentRecords":   st.SegmentRecords,
			"coldSegments":     st.ColdSegments,
			"coldRecords":      st.ColdRecords,
			"sketchSegments":   st.SketchSegments,
			"sketchBytes":      st.SketchBytes,
			"sketchConsults":   st.SketchConsults,
			"segmentsSkipped":  st.SegmentsSkipped,
			"skipRate":         skipRate,
			"codecSegments":    st.CodecSegments,
			"skippedBlocks":    st.SkippedBlocks,
			"quantizedRejects": st.QuantizedRejects,
			"fallbackReads":    st.FallbackReads,
			"bytesSaved":       st.BytesSaved,
		}
		s.cacheTuneFields(body)
		reply(w, body)
		return
	}
	ix := s.eng.Index()
	db := ix.DB()
	body := map[string]interface{}{
		"records": db.Len(),
		"dims":    db.Dims(),
		"order":   db.Curve().Order(),
		"depth":   ix.Depth(),
		"shards":  s.eng.Shards(),
		"workers": s.eng.Workers(),
	}
	s.cacheTuneFields(body)
	reply(w, body)
}

// statQuery builds the statistical query from request parameters.
func (s *Server) statQuery(req *searchRequest) (core.StatQuery, error) {
	if req.Sigma <= 0 {
		return core.StatQuery{}, fmt.Errorf("sigma must be > 0")
	}
	return core.StatQuery{Alpha: req.Alpha,
		Model: core.IsoNormal{D: s.dims, Sigma: req.Sigma}}, nil
}

func planJSON(plan core.Plan) map[string]interface{} {
	return map[string]interface{}{
		"blocks":       plan.Blocks,
		"mass":         plan.Mass,
		"threshold":    plan.Threshold,
		"filterIters":  plan.FilterIters,
		"descentNodes": plan.DescentNodes,
		"depth":        plan.Depth,
	}
}

func (s *Server) handleStat(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	fp, err := s.fingerprint(req.Fingerprint)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sq, err := s.statQuery(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, tr := s.traceFor(r, "/search/statistical")
	matches, plan, err := s.search.SearchStat(ctx, fp, sq)
	if err != nil {
		s.finishTrace("/search/statistical", tr, err)
		searchError(w, err)
		return
	}
	resp := map[string]interface{}{
		"matches": toJSON(matches),
		"plan":    planJSON(plan),
	}
	if tr != nil {
		resp["trace"] = s.finishTrace("/search/statistical", tr, nil)
	}
	reply(w, resp)
}

func (s *Server) handleStatBatch(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	if len(req.Fingerprints) == 0 {
		httpError(w, http.StatusBadRequest, "fingerprints must be a non-empty array")
		return
	}
	queries := make([][]byte, len(req.Fingerprints))
	for i, raw := range req.Fingerprints {
		fp, err := s.fingerprint(raw)
		if err != nil {
			httpError(w, http.StatusBadRequest, "fingerprint %d: %v", i, err)
			return
		}
		queries[i] = fp
	}
	sq, err := s.statQuery(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, tr := s.traceFor(r, "/search/statistical/batch")
	results, err := s.search.SearchStatBatch(ctx, queries, sq)
	if err != nil {
		s.finishTrace("/search/statistical/batch", tr, err)
		searchError(w, err)
		return
	}
	out := make([][]matchJSON, len(results))
	for i, ms := range results {
		out[i] = toJSON(ms)
	}
	resp := map[string]interface{}{"results": out}
	if tr != nil {
		resp["trace"] = s.finishTrace("/search/statistical/batch", tr, nil)
	}
	reply(w, resp)
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	fp, err := s.fingerprint(req.Fingerprint)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, tr := s.traceFor(r, "/search/range")
	matches, plan, err := s.search.SearchRange(ctx, fp, req.Epsilon)
	if err != nil {
		s.finishTrace("/search/range", tr, err)
		searchError(w, err)
		return
	}
	resp := map[string]interface{}{
		"matches": toJSON(matches),
		"blocks":  plan.Blocks,
	}
	if tr != nil {
		resp["trace"] = s.finishTrace("/search/range", tr, nil)
	}
	reply(w, resp)
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	fp, err := s.fingerprint(req.Fingerprint)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, tr := s.traceFor(r, "/search/knn")
	matches, stats, err := s.search.SearchKNN(ctx, fp, req.K, req.MaxLeaves)
	if err != nil {
		s.finishTrace("/search/knn", tr, err)
		searchError(w, err)
		return
	}
	resp := map[string]interface{}{
		"matches": toJSON(matches),
		"exact":   stats.Exact,
		"scanned": stats.Scanned,
	}
	if tr != nil {
		resp["trace"] = s.finishTrace("/search/knn", tr, nil)
	}
	reply(w, resp)
}

// recordJSON is the wire form of one ingested record.
type recordJSON struct {
	Fingerprint []int  `json:"fingerprint"`
	ID          uint32 `json:"id"`
	TC          uint32 `json:"tc"`
	X           uint16 `json:"x"`
	Y           uint16 `json:"y"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.maxIngest > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxIngest)
	}
	var req struct {
		Records []recordJSON `json:"records"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"ingest body exceeds %d bytes; split the batch", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(req.Records) == 0 {
		httpError(w, http.StatusBadRequest, "records must be a non-empty array")
		return
	}
	recs := make([]store.Record, len(req.Records))
	for i, rj := range req.Records {
		fp, err := s.fingerprint(rj.Fingerprint)
		if err != nil {
			httpError(w, http.StatusBadRequest, "record %d: %v", i, err)
			return
		}
		recs[i] = store.Record{FP: fp, ID: rj.ID, TC: rj.TC, X: rj.X, Y: rj.Y}
	}
	if err := s.live.Ingest(recs); err != nil {
		writeError(w, err)
		return
	}
	st := s.live.Stats()
	reply(w, map[string]interface{}{"ingested": len(recs), "records": st.LiveRecords, "gen": st.Gen})
}

func (s *Server) handleDeleteVideo(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil {
		httpError(w, http.StatusBadRequest, "video id %q is not a uint32", r.PathValue("id"))
		return
	}
	if err := s.live.DeleteVideo(uint32(id)); err != nil {
		writeError(w, err)
		return
	}
	st := s.live.Stats()
	reply(w, map[string]interface{}{"deleted": id, "records": st.LiveRecords, "gen": st.Gen})
}

func (s *Server) handleFlush(w http.ResponseWriter, _ *http.Request) {
	if err := s.live.Flush(); err != nil {
		writeError(w, err)
		return
	}
	reply(w, map[string]interface{}{"gen": s.live.Gen()})
}

func (s *Server) handleCompact(w http.ResponseWriter, _ *http.Request) {
	if err := s.live.Compact(); err != nil {
		writeError(w, err)
		return
	}
	st := s.live.Stats()
	reply(w, map[string]interface{}{"segments": st.Segments, "compactions": st.Compactions, "gen": st.Gen})
}
