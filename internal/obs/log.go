package obs

import (
	"context"
	"log/slog"
)

// NopLogger returns a *slog.Logger that discards every record, for
// components whose caller wired no logging (a library default that
// keeps call sites unconditional: log through the logger, never check
// for nil).
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
