// Package scan is the sequential-scan reference method of Section V-B: an
// ε-range query that examines every record of the database. The paper
// implements its own sequential scan "so that the two methods are
// comparable"; so do we — it shares the record layout and distance code
// path style with the index but touches every fingerprint.
package scan

import (
	"fmt"
	"math"

	"s3cbcd/internal/core"
	"s3cbcd/internal/store"
)

// RangeQuery returns every record within L2 distance eps of q, scanning
// the whole database.
func RangeQuery(db *store.DB, q []byte, eps float64) ([]core.Match, error) {
	if len(q) != db.Dims() {
		return nil, fmt.Errorf("scan: query has %d components, database has %d", len(q), db.Dims())
	}
	if eps < 0 {
		return nil, fmt.Errorf("scan: negative radius %v", eps)
	}
	qf := make([]float64, len(q))
	for i, b := range q {
		qf[i] = float64(b)
	}
	epsSq := eps * eps
	var out []core.Match
	for i := 0; i < db.Len(); i++ {
		fp := db.FP(i)
		s := 0.0
		for j, b := range fp {
			d := qf[j] - float64(b)
			s += d * d
			if s > epsSq {
				break
			}
		}
		if s <= epsSq {
			out = append(out, core.Match{Pos: i, ID: db.ID(i), TC: db.TC(i), X: db.X(i), Y: db.Y(i), Dist: math.Sqrt(s)})
		}
	}
	return out, nil
}
