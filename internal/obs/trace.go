package obs

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is the per-query execution record threaded through a search via
// its context: plan → frontier descent → per-shard/per-segment
// refinement → vote, each stage recording its wall time, plus the
// work counters the paper's evaluation is phrased in (partition-tree
// nodes descended, p-blocks selected, candidate records refined,
// segments visited).
//
// A nil *Trace is the disabled state: every method no-ops, FromContext
// returns nil for untraced contexts, and the instrumentation points are
// written so the disabled path performs no allocation — tracing off
// costs one context lookup and a few predictable branches.
//
// Stage records come from the orchestrating goroutine of a query; the
// work counters are atomic so concurrent shard/segment refinement
// workers can add to a shared trace.
type Trace struct {
	t0 time.Time

	mu     sync.Mutex
	stages []traceStage

	descentNodes atomic.Int64
	blocks       atomic.Int64
	candidates   atomic.Int64
	segments     atomic.Int64
}

type traceStage struct {
	name       string
	start, dur time.Duration
}

// NewTrace returns an armed trace starting now.
func NewTrace() *Trace { return &Trace{t0: time.Now()} }

type traceKey struct{}

// WithTrace arms ctx with tr: instrumentation points downstream record
// into it.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// FromContext returns the context's trace, or nil when the query is not
// traced. The lookup allocates nothing.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// StageSince appends a stage that began at start and ends now. Offsets
// are relative to the trace start, so stages from nested calls line up
// on one timeline.
func (t *Trace) StageSince(name string, start time.Time) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.stages = append(t.stages, traceStage{name: name, start: start.Sub(t.t0), dur: now.Sub(start)})
	t.mu.Unlock()
}

// AddDescentNodes accumulates partition-tree nodes visited by planning.
func (t *Trace) AddDescentNodes(n int64) {
	if t != nil {
		t.descentNodes.Add(n)
	}
}

// AddBlocks accumulates p-blocks selected by plans.
func (t *Trace) AddBlocks(n int64) {
	if t != nil {
		t.blocks.Add(n)
	}
}

// AddCandidates accumulates candidate records scanned by refinement.
func (t *Trace) AddCandidates(n int64) {
	if t != nil {
		t.candidates.Add(n)
	}
}

// AddSegments accumulates segments (or shards) visited by refinement.
func (t *Trace) AddSegments(n int64) {
	if t != nil {
		t.segments.Add(n)
	}
}

// StageReport is one stage of a trace report. Times are microseconds
// from the trace start (Start) and stage duration (Micros).
type StageReport struct {
	Name        string `json:"name"`
	StartMicros int64  `json:"startMicros"`
	Micros      int64  `json:"micros"`
}

// TraceReport is the JSON-marshalable snapshot of a trace, attached to
// HTTP responses for traced queries.
type TraceReport struct {
	TotalMicros  int64         `json:"totalMicros"`
	Stages       []StageReport `json:"stages"`
	DescentNodes int64         `json:"descentNodes"`
	Blocks       int64         `json:"blocks"`
	Candidates   int64         `json:"candidates"`
	Segments     int64         `json:"segments,omitempty"`
}

// Report snapshots the trace. Total time runs from NewTrace to this
// call.
func (t *Trace) Report() TraceReport {
	if t == nil {
		return TraceReport{}
	}
	r := TraceReport{
		TotalMicros:  time.Since(t.t0).Microseconds(),
		DescentNodes: t.descentNodes.Load(),
		Blocks:       t.blocks.Load(),
		Candidates:   t.candidates.Load(),
		Segments:     t.segments.Load(),
	}
	t.mu.Lock()
	for _, s := range t.stages {
		r.Stages = append(r.Stages, StageReport{
			Name:        s.name,
			StartMicros: s.start.Microseconds(),
			Micros:      s.dur.Microseconds(),
		})
	}
	t.mu.Unlock()
	return r
}

// Sampler decides which queries carry a trace: each Sample draws
// independently with the configured probability from a seeded generator,
// so a test (or a reproduction) with a fixed seed sees a deterministic
// accept/reject sequence.
type Sampler struct {
	mu   sync.Mutex
	rate float64
	rng  *rand.Rand
}

// NewSampler returns a sampler accepting with probability rate (clamped
// to [0, 1]) using the given seed. A nil sampler never samples.
func NewSampler(rate float64, seed int64) *Sampler {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &Sampler{rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Sample reports whether the next query should be traced.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	if s.rate <= 0 {
		return false
	}
	if s.rate >= 1 {
		return true
	}
	s.mu.Lock()
	ok := s.rng.Float64() < s.rate
	s.mu.Unlock()
	return ok
}
