package store

import (
	"fmt"

	"s3cbcd/internal/bitkey"
)

// checkIntegrity verifies that a database's columnar slices agree with
// each other and with the curve dimension. A DB produced by Build, Merge,
// Filter or a file load always passes; a hand-assembled or corrupted one
// may not, and Merge used to propagate such malformed payloads silently
// whenever the other input was empty (the merge loop never touched the
// bad slice lengths). Every merge input is validated up front instead.
func (db *DB) checkIntegrity() error {
	if db.curve == nil {
		return fmt.Errorf("store: database has no curve")
	}
	n := len(db.keys)
	if len(db.fps) != n*db.curve.Dims() {
		return fmt.Errorf("store: database holds %d fingerprint bytes for %d records of dimension %d",
			len(db.fps), n, db.curve.Dims())
	}
	if len(db.ids) != n || len(db.tcs) != n || len(db.xs) != n || len(db.ys) != n {
		return fmt.Errorf("store: database columns disagree: %d keys, %d ids, %d tcs, %d xs, %d ys",
			n, len(db.ids), len(db.tcs), len(db.xs), len(db.ys))
	}
	return nil
}

// mergeLess reports whether record i of a orders before record j of b in
// the canonical order: Hilbert key first, ties broken like Build by
// (ID, TC, X, Y). Equal records order stably (a first).
func mergeLess(a *DB, i int, b *DB, j int) bool {
	if c := a.keys[i].Cmp(b.keys[j]); c != 0 {
		return c < 0
	}
	if a.ids[i] != b.ids[j] {
		return a.ids[i] < b.ids[j]
	}
	if a.tcs[i] != b.tcs[j] {
		return a.tcs[i] < b.tcs[j]
	}
	if a.xs[i] != b.xs[j] {
		return a.xs[i] < b.xs[j]
	}
	return a.ys[i] <= b.ys[j]
}

// Merge combines two curve-ordered databases into one, preserving the
// canonical order with a linear merge. Both inputs must share the same
// curve geometry and pass the columnar integrity check. It is how an S³
// archive grows: index the new material separately, then merge — merging
// sorted runs is far cheaper than re-sorting everything, and because both
// Build and Merge use the same canonical total order, the result is
// record-for-record identical to one Build over the union.
func Merge(a, b *DB) (*DB, error) {
	if a.curve.Dims() != b.curve.Dims() || a.curve.Order() != b.curve.Order() {
		return nil, fmt.Errorf("store: merging incompatible curves (D=%d,K=%d vs D=%d,K=%d)",
			a.curve.Dims(), a.curve.Order(), b.curve.Dims(), b.curve.Order())
	}
	if err := a.checkIntegrity(); err != nil {
		return nil, fmt.Errorf("store: merge input a: %w", err)
	}
	if err := b.checkIntegrity(); err != nil {
		return nil, fmt.Errorf("store: merge input b: %w", err)
	}
	dims := a.Dims()
	n := a.Len() + b.Len()
	out := &DB{
		curve: a.curve,
		keys:  make([]bitkey.Key, 0, n),
		fps:   make([]byte, 0, n*dims),
		ids:   make([]uint32, 0, n),
		tcs:   make([]uint32, 0, n),
		xs:    make([]uint16, 0, n),
		ys:    make([]uint16, 0, n),
	}
	take := func(src *DB, i int) {
		out.keys = append(out.keys, src.keys[i])
		out.fps = append(out.fps, src.FP(i)...)
		out.ids = append(out.ids, src.ids[i])
		out.tcs = append(out.tcs, src.tcs[i])
		out.xs = append(out.xs, src.xs[i])
		out.ys = append(out.ys, src.ys[i])
	}
	i, j := 0, 0
	for i < a.Len() && j < b.Len() {
		if mergeLess(a, i, b, j) {
			take(a, i)
			i++
		} else {
			take(b, j)
			j++
		}
	}
	for ; i < a.Len(); i++ {
		take(a, i)
	}
	for ; j < b.Len(); j++ {
		take(b, j)
	}
	return out, nil
}

// Filter returns a new database containing only the records the predicate
// keeps (called with each record's identifier and time code). Order is
// preserved, so no re-sort is needed. This is the withdrawal path of an
// archive: rebuild without the removed material.
func Filter(db *DB, keep func(id, tc uint32) bool) *DB {
	dims := db.Dims()
	out := &DB{curve: db.curve}
	for i := 0; i < db.Len(); i++ {
		if !keep(db.ids[i], db.tcs[i]) {
			continue
		}
		out.keys = append(out.keys, db.keys[i])
		out.fps = append(out.fps, db.fps[i*dims:(i+1)*dims]...)
		out.ids = append(out.ids, db.ids[i])
		out.tcs = append(out.tcs, db.tcs[i])
		out.xs = append(out.xs, db.xs[i])
		out.ys = append(out.ys, db.ys[i])
	}
	return out
}

// ContainsID reports whether any record carries the given video
// identifier (linear scan; used by tombstone bookkeeping).
func (db *DB) ContainsID(id uint32) bool {
	for _, v := range db.ids {
		if v == id {
			return true
		}
	}
	return false
}

// CountID returns the number of records carrying the given identifier.
func (db *DB) CountID(id uint32) int {
	n := 0
	for _, v := range db.ids {
		if v == id {
			n++
		}
	}
	return n
}
