package core

import (
	"fmt"
	"math"
	"sort"

	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/store"
)

// StatQuery parameterizes a statistical query of expectation Alpha under
// distortion model Model (eq. 1 of the paper).
type StatQuery struct {
	// Alpha is the query expectation in (0, 1): the minimum probability,
	// under Model, that the relevant fingerprint lies in the retrieved
	// region Vα.
	Alpha float64
	// Model is the distortion model p_ΔS.
	Model Model
}

func (sq StatQuery) validate(dims int) error {
	// The negated form rejects NaN as well: a NaN α compares false against
	// every bound and would otherwise reach the threshold search (and the
	// plan cache key) as a "valid" expectation.
	if !(sq.Alpha > 0 && sq.Alpha < 1) {
		return fmt.Errorf("core: query expectation alpha=%v outside (0,1)", sq.Alpha)
	}
	return validateModel(sq.Model, dims)
}

// Plan is the outcome of a filtering step: the curve intervals to scan
// plus diagnostics. It performs no database access; Plans can therefore
// be computed for many queries before any section of a disk-resident
// database is loaded (the pseudo-disk strategy).
type Plan struct {
	// Intervals are the merged curve intervals of the selected blocks, in
	// curve order.
	Intervals []hilbert.Interval
	// Blocks is the number of p-blocks selected (card(Bα)).
	Blocks int
	// Mass is the achieved probability sum P_sup(t_max) >= α for
	// statistical plans; 0 for geometric plans.
	Mass float64
	// Threshold is the final block-mass threshold t_max for statistical
	// plans; 0 for geometric plans.
	Threshold float64
	// FilterIters is the number of threshold evaluations the search used;
	// 1 for geometric plans.
	FilterIters int
	// DescentNodes is the number of partition-tree nodes the filtering
	// step visited. The frontier planner visits each node at most once
	// across the whole threshold search; the legacy multi-descent search
	// revisits shared prefixes on every evaluation.
	DescentNodes int
	// Depth is the partition depth the plan was computed at.
	Depth int
}

// maxThresholdIters bounds the Newton-inspired threshold search. Each
// iteration is one threshold evaluation; the bracket shrinks
// geometrically, so 40 iterations resolve t_max to a relative precision
// far below the mass granularity of individual blocks.
const maxThresholdIters = 40

// tFloor is the smallest block-mass threshold the search will use. Blocks
// below this mass are irrelevant at any practical α.
const tFloor = 1e-18

// bracketStep is the geometric factor of the downward bracket walk. The
// walk stops at the first feasible threshold, which can undershoot t_max
// by up to this factor — and the frontier planner's traversal work is one
// descent at the lowest threshold evaluated, so the overshoot directly
// sizes the frontier expansion. A gentle step bounds that waste; the
// extra evaluations it causes are nearly free on the frontier path
// (raising t is traversal-free, and each lowering step only expands the
// margin the previous step rejected).
const bracketStep = 2

// thresholdTol terminates the secant refinement once the bracket has
// shrunk to tHi/tLo <= thresholdTol. The frontier planner made
// refinement evaluations traversal-free (every probe sits above the
// lowest threshold already expanded), so a tight tolerance costs almost
// nothing on the production path and yields a final threshold — hence a
// block set — closer to the true minimum.
const thresholdTol = 1.1

// tuning is one resolved set of threshold-search parameters: the
// partition depth and the bracket/refinement schedule. The compiled-in
// constants above are the static default; the online auto-tuner
// (autotune.go) publishes adapted values under load. A tuning is a
// small comparable value — the plan cache folds it into its key, so a
// parameter change naturally invalidates cached plans.
type tuning struct {
	depth        int
	bracketStep  float64
	thresholdTol float64
}

// defaultTuning returns the planner's static parameters: today's
// compiled-in constants at the planner's own depth. Plans computed at
// the default tuning are bit-identical to the pre-tuning code paths.
func (pl *planner) defaultTuning() tuning {
	return tuning{depth: pl.depth, bracketStep: bracketStep, thresholdTol: thresholdTol}
}

// PlanStat runs the statistical filtering step of Section IV-A for query
// fingerprint q: it finds t_max, the largest per-block mass threshold
// whose block set B(t) still carries total probability >= α (eq. 4),
// which yields (a close approximation of) the minimal block set Bα^min.
//
// The search is served by the incremental frontier planner: one pruned
// descent materializes the frontier of rejected nodes, and every further
// threshold evaluation either expands part of that frontier (lower t) or
// filters the accumulated leaves with no traversal at all (higher t).
// The returned Plan is bit-identical to PlanStatLegacy's.
func (ix *Index) PlanStat(q []byte, sq StatQuery) (Plan, error) {
	if err := sq.validate(ix.db.Dims()); err != nil {
		return Plan{}, err
	}
	qf, err := queryPoint(q, ix.db.Dims())
	if err != nil {
		return Plan{}, err
	}
	return ix.planStatFloat(qf, sq), nil
}

// planStatFloat plans with pooled scratch; the engine's per-worker
// contexts use planStatFrontier directly.
func (pl *planner) planStatFloat(qf []float64, sq StatQuery) Plan {
	ps := pl.getScratch()
	defer pl.scratch.Put(ps)
	return pl.planStatFrontier(qf, sq, ps.mc, ps.fs)
}

// planStatFloatTuned is planStatFloat at an explicit tuning.
func (pl *planner) planStatFloatTuned(qf []float64, sq StatQuery, tn tuning) Plan {
	ps := pl.getScratch()
	defer pl.scratch.Put(ps)
	return pl.planStatFrontierTuned(qf, sq, ps.mc, ps.fs, tn)
}

// planStatFrontier runs the threshold search on the incremental frontier
// planner at the planner's static parameters. The control flow mirrors
// planStatLegacyCached exactly — same threshold sequence, same bracket
// updates — so the two return bit-identical plans; only the cost of an
// evaluation differs.
func (pl *planner) planStatFrontier(qf []float64, sq StatQuery, mc *massCache, fs *frontierState) Plan {
	return pl.planStatFrontierTuned(qf, sq, mc, fs, pl.defaultTuning())
}

// planStatFrontierTuned is the frontier threshold search at an explicit
// tuning. mc must be fresh or reset; fs is rebound to this query. At the
// default tuning its float operations are exactly those of the untuned
// search (the parameters hold the same values the constants did), so
// plans stay bit-identical to the legacy reference.
func (pl *planner) planStatFrontierTuned(qf []float64, sq StatQuery, mc *massCache, fs *frontierState, tn tuning) Plan {
	fs.begin(tn.depth, sq.Model, qf, mc)
	iters := 0
	eval := func(t float64) (int, float64) {
		iters++
		fs.expandTo(t)
		return fs.selectAt(t)
	}
	done := func(t float64, blocks int, mass float64) Plan {
		return Plan{Intervals: fs.intervalsAt(t), Blocks: blocks, Mass: mass,
			Threshold: t, FilterIters: iters, DescentNodes: fs.nodes, Depth: tn.depth}
	}

	// Bracket t_max from above: evaluations at high thresholds prune hard
	// and are cheap, so we walk down geometrically until the block set
	// first reaches mass α. Each step expands only the frontier nodes the
	// previous step rejected — the sum of all steps does the traversal
	// work of ONE descent at the lowest threshold reached.
	//
	// The walk deliberately ignores maxThresholdIters: it must end on a
	// feasible threshold (or the floor), because the returned tLo is what
	// covers Vα — stopping early on an infeasible threshold would silently
	// under-cover the region. When the walk alone exhausts the budget,
	// FilterIters exceeds maxThresholdIters, the secant refinement below is
	// skipped entirely, and the plan is returned at the feasible bracket
	// end with tHi/tLo still wider than thresholdTol: a valid superset of
	// the minimal block set (mass >= α), just less tight. The bracket-walk
	// regression test pins this contract.
	tHi := (1 - sq.Alpha) / 4
	massHi := 0.0
	tLo := tHi
	blocks, mass := eval(tLo)
	for mass < sq.Alpha && tLo > tFloor {
		tHi, massHi = tLo, mass
		tLo /= tn.bracketStep
		if tLo < tFloor {
			tLo = tFloor
		}
		blocks, mass = eval(tLo)
	}
	if mass < sq.Alpha {
		// Even the floor threshold cannot reach α (pathological model);
		// return the floor plan — it is the best the partition offers.
		return done(tLo, blocks, mass)
	}
	if tHi <= tLo {
		// The initial threshold was already feasible: expand upward until
		// infeasible to bracket t_max. Raising t needs no curve work at
		// all — the accumulated leaves are refiltered by stored mass.
		for iters < maxThresholdIters {
			tNext := tLo * 16
			if tNext >= 1 {
				tHi, massHi = 1, 0
				break
			}
			blocksN, massN := eval(tNext)
			if massN < sq.Alpha {
				tHi, massHi = tNext, massN
				break
			}
			tLo, blocks, mass = tNext, blocksN, massN
		}
	}
	// Newton-inspired refinement on [tLo feasible, tHi infeasible]: a
	// secant step on (log t, P_sup) aimed at α, guarded toward the
	// geometric mean so the bracket always shrinks by a useful factor.
	// Every probe lies inside the bracket, above the lowest threshold
	// already expanded, so this entire loop is traversal-free.
	for iters < maxThresholdIters && tHi/tLo > tn.thresholdTol {
		tMid := math.Sqrt(tLo * tHi)
		if massHi < sq.Alpha && mass > massHi {
			frac := (mass - sq.Alpha) / (mass - massHi)
			if tSec := math.Exp(math.Log(tLo) + frac*(math.Log(tHi)-math.Log(tLo))); tSec > tLo*1.1 && tSec < tHi/1.1 {
				tMid = tSec
			}
		}
		blocksMid, massMid := eval(tMid)
		if massMid >= sq.Alpha {
			tLo, blocks, mass = tMid, blocksMid, massMid
		} else {
			tHi, massHi = tMid, massMid
		}
	}
	return done(tLo, blocks, mass)
}

// PlanStatLegacy is the multi-descent threshold search the frontier
// planner replaced: every threshold evaluation is a full pruned descent
// from the root. It is retained as the reference implementation — the
// planner equivalence property tests and the bench-plan harness compare
// against it — and as the paper-faithful baseline for ablations.
func (ix *Index) PlanStatLegacy(q []byte, sq StatQuery) (Plan, error) {
	if err := sq.validate(ix.db.Dims()); err != nil {
		return Plan{}, err
	}
	qf, err := queryPoint(q, ix.db.Dims())
	if err != nil {
		return Plan{}, err
	}
	return ix.planStatLegacyCached(qf, sq, newMassCache(ix.dims(), ix.curve.SideLen())), nil
}

// statDescent runs one pruned descent at threshold t on the pooled
// visitor v, which is reset first (its buffers and the shared mass cache
// carry over between descents). The returned intervals alias v.ivs.
func (pl *planner) statDescent(v *statVisitor, t float64) ([]hilbert.Interval, int, float64) {
	v.reset(t)
	pl.curve.DescendSteps(pl.depth, v)
	return hilbert.MergeIntervals(v.ivs), v.blocks, v.total
}

// planStatLegacyCached is the legacy search with a caller-provided mass
// cache, which must be fresh or reset. One statVisitor serves all
// descents; interval buffers double-buffer between the visitor and the
// currently-retained result so the whole search allocates only when a
// buffer first grows.
func (pl *planner) planStatLegacyCached(qf []float64, sq StatQuery, mc *massCache) Plan {
	v := newStatVisitor(mc, sq.Model, qf, 0)
	var spare []hilbert.Interval
	iters := 0
	eval := func(t float64) ([]hilbert.Interval, int, float64) {
		iters++
		return pl.statDescent(v, t)
	}
	// keep retains an eval's intervals across later descents: the visitor
	// gets the spare buffer, the retained slice keeps its backing.
	keep := func(ivs []hilbert.Interval) []hilbert.Interval {
		v.ivs, spare = spare[:0], ivs
		return ivs
	}
	done := func(t float64, ivs []hilbert.Interval, blocks int, mass float64) Plan {
		return Plan{Intervals: ivs, Blocks: blocks, Mass: mass,
			Threshold: t, FilterIters: iters, DescentNodes: v.nodes, Depth: pl.depth}
	}

	// Bracket t_max from above: descents at high thresholds prune hard
	// and are cheap, so we walk down geometrically until the block set
	// first reaches mass α, leaving exactly one "expensive" descent.
	// P_sup(t) is non-increasing in t and reaches 1 as t -> 0 (edge
	// blocks absorb all tail mass), so a feasible threshold exists.
	tHi := (1 - sq.Alpha) / 4
	massHi := 0.0
	tLo := tHi
	ivs, blocks, mass := eval(tLo)
	ivs = keep(ivs)
	for mass < sq.Alpha && tLo > tFloor {
		tHi, massHi = tLo, mass
		tLo /= bracketStep
		if tLo < tFloor {
			tLo = tFloor
		}
		ivs, blocks, mass = eval(tLo)
		ivs = keep(ivs)
	}
	if mass < sq.Alpha {
		// Even the floor threshold cannot reach α (pathological model);
		// return the floor plan — it is the best the partition offers.
		return done(tLo, ivs, blocks, mass)
	}
	if tHi <= tLo {
		// The initial threshold was already feasible: expand upward until
		// infeasible to bracket t_max (each step prunes harder, so these
		// descents get cheaper).
		for iters < maxThresholdIters {
			tNext := tLo * 16
			if tNext >= 1 {
				tHi, massHi = 1, 0
				break
			}
			ivsN, blocksN, massN := eval(tNext)
			if massN < sq.Alpha {
				tHi, massHi = tNext, massN
				break
			}
			tLo, ivs, blocks, mass = tNext, keep(ivsN), blocksN, massN
		}
	}
	// Newton-inspired refinement on [tLo feasible, tHi infeasible]: a
	// secant step on (log t, P_sup) aimed at α, guarded toward the
	// geometric mean so the bracket always shrinks by a useful factor.
	for iters < maxThresholdIters && tHi/tLo > thresholdTol {
		tMid := math.Sqrt(tLo * tHi)
		if massHi < sq.Alpha && mass > massHi {
			frac := (mass - sq.Alpha) / (mass - massHi)
			if tSec := math.Exp(math.Log(tLo) + frac*(math.Log(tHi)-math.Log(tLo))); tSec > tLo*1.1 && tSec < tHi/1.1 {
				tMid = tSec
			}
		}
		ivsMid, blocksMid, massMid := eval(tMid)
		if massMid >= sq.Alpha {
			tLo, ivs, blocks, mass = tMid, keep(ivsMid), blocksMid, massMid
		} else {
			tHi, massHi = tMid, massMid
		}
	}
	return done(tLo, ivs, blocks, mass)
}

// SearchStat executes a complete statistical query: filtering (PlanStat)
// then refinement, which scans the selected curve intervals and returns
// every fingerprint inside the region Vα. Unlike a range query there is
// no distance constraint: the region is the answer (Section II).
func (ix *Index) SearchStat(q []byte, sq StatQuery) ([]Match, Plan, error) {
	plan, err := ix.PlanStat(q, sq)
	if err != nil {
		return nil, Plan{}, err
	}
	return ix.refineStat(plan), plan, nil
}

func (ix *Index) refineStat(plan Plan) []Match {
	var out []Match
	// A DB visit cannot fail; the error path exists for cold sources.
	ix.db.VisitIntervals(plan.Intervals, func(rv store.RecordView) bool {
		out = append(out, Match{Pos: rv.Pos, ID: rv.ID, TC: rv.TC, X: rv.X, Y: rv.Y, Dist: -1})
		return true
	})
	return out
}

// PlanStatExact computes the exactly minimal block set Bα^min by
// collecting every block with mass above a small floor, sorting by mass
// and keeping the smallest prefix reaching α. It needs a single descent
// but an unbounded sort; the paper argues (Section IV-A) that sorting all
// 2^p blocks is unaffordable in general, which is why the threshold
// search above is the production path. Kept as the reference for the
// selection-strategy ablation.
func (ix *Index) PlanStatExact(q []byte, sq StatQuery) (Plan, error) {
	if err := sq.validate(ix.db.Dims()); err != nil {
		return Plan{}, err
	}
	qf, err := queryPoint(q, ix.db.Dims())
	if err != nil {
		return Plan{}, err
	}
	side := ix.curve.SideLen()
	type wb struct {
		iv   hilbert.Interval
		mass float64
	}
	var all []wb
	const floor = 1e-12
	keep := func(lo, hi []uint32) bool {
		return blockMass(sq.Model, qf, lo, hi, side, floor) > floor
	}
	ix.curve.Descend(ix.depth, keep, func(b hilbert.Block) bool {
		all = append(all, wb{
			iv:   hilbert.Interval{Start: b.Start, End: b.End},
			mass: blockMass(sq.Model, qf, b.Lo, b.Hi, side, 0),
		})
		return true
	})
	sort.Slice(all, func(i, j int) bool { return all[i].mass > all[j].mass })
	total := 0.0
	nsel := 0
	for nsel < len(all) && total < sq.Alpha {
		total += all[nsel].mass
		nsel++
	}
	sel := all[:nsel]
	thr := 0.0
	if nsel > 0 {
		thr = sel[nsel-1].mass
	}
	// Re-sort the selected blocks into curve order for merging.
	sort.Slice(sel, func(i, j int) bool { return sel[i].iv.Start.Less(sel[j].iv.Start) })
	ivs := make([]hilbert.Interval, nsel)
	for i, b := range sel {
		ivs[i] = b.iv
	}
	return Plan{Intervals: hilbert.MergeIntervals(ivs), Blocks: nsel, Mass: total,
		Threshold: thr, FilterIters: 1, Depth: ix.depth}, nil
}
