package experiments

import (
	"fmt"
	"io"

	"s3cbcd/internal/core"
	"s3cbcd/internal/distortion"
	"s3cbcd/internal/fingerprint"
)

func init() {
	register(Experiment{
		ID: "models",
		Title: "Extension (§VI future work): distortion-model ablation — calibration " +
			"R(α) of the practical single-σ normal vs per-component, heavy-tailed, " +
			"mixture and empirical models",
		Run: runModels,
	})
}

// runModels compares how well each distortion model family calibrates the
// statistical query on the combined transformation of Figure 3. The paper
// uses the single-σ normal and concludes that richer models "should
// certainly improve this precision"; this ablation quantifies that.
func runModels(w io.Writer, sc Scale, seed int64) error {
	nSeqs, distractors, maxPairs := 3, 5000, 250
	if sc == Full {
		nSeqs, distractors, maxPairs = 8, 50000, 1000
	}
	seqs := VideoCorpus(nSeqs, 150, seed)
	tf := fig3Transform(seed)
	pairs := distortion.CollectPairs(seqs, tf, fingerprint.DefaultConfig())
	if len(pairs) > maxPairs {
		pairs = pairs[:maxPairs]
	}
	est, err := distortion.Fit(pairs)
	if err != nil {
		return err
	}
	pooled := distortion.PooledDeltas(pairs)
	mix, err := core.FitMixtureNormal(fingerprint.D, pooled)
	if err != nil {
		return err
	}
	emp, err := core.FitEmpirical(fingerprint.D, pooled)
	if err != nil {
		return err
	}
	mb, err := newModelBench(seqs, distractors, seed)
	if err != nil {
		return err
	}

	models := []struct {
		name string
		m    core.Model
	}{
		{"iso-normal (paper)", core.IsoNormal{D: fingerprint.D, Sigma: est.Sigma}},
		{"diag-normal", core.DiagNormal{Sigmas: est.Sigmas[:]}},
		{"iso-laplace", core.IsoLaplace{D: fingerprint.D, Sigma: est.Sigma}},
		{"student-t(nu=4)", core.IsoStudentT{D: fingerprint.D, Sigma: est.Sigma, Nu: 4}},
		{"normal-mixture", mix},
		{"empirical-cdf", emp},
	}
	alphas := []float64{0.50, 0.70, 0.80, 0.90, 0.95}

	fmt.Fprintf(w, "# Model ablation — %s, %d correspondences, DB = %d fingerprints\n",
		tf.Name(), len(pairs), mb.db.Len())
	fmt.Fprintf(w, "# fitted: sigma=%.2f; mixture: w=%.2f core=%.2f wide=%.2f\n",
		est.Sigma, mix.W, mix.SigmaCore, mix.SigmaWide)
	fmt.Fprintf(w, "# cells are retrieval rate R%%; calibration error = R - alpha\n")
	fmt.Fprintf(w, "%-20s", "model")
	for _, a := range alphas {
		fmt.Fprintf(w, " %7.0f%%", a*100)
	}
	fmt.Fprintf(w, " %10s\n", "max|err|")
	for _, mm := range models {
		fmt.Fprintf(w, "%-20s", mm.name)
		maxErr := 0.0
		for _, a := range alphas {
			r, err := mb.retrievalRate(pairs, core.StatQuery{Alpha: a, Model: mm.m})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %8.1f", r*100)
			if e := abs(r - a); e > maxErr {
				maxErr = e
			}
		}
		fmt.Fprintf(w, " %9.1f%%\n", maxErr*100)
	}
	fmt.Fprintf(w, "# The paper keeps the single-σ normal for speed and notes richer models\n")
	fmt.Fprintf(w, "# should improve precision (§VI); the heavy-tailed and empirical rows\n")
	fmt.Fprintf(w, "# quantify how much calibration improves at this data scale.\n")
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
