package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"s3cbcd/internal/bitkey"
	"s3cbcd/internal/store"
)

// DiskIndex executes statistical queries against a database file that
// does not fit in main memory, implementing the pseudo-disk strategy of
// Section IV-B: N_sig queries are filtered first (pure computation, no
// database access), the Hilbert curve is split into 2^r regular sections
// such that the most filled section fits the memory budget, and the
// sections are then loaded sequentially, each one refining every query
// whose intervals intersect it. The average total response time per query
// follows eq. (5): T_tot = T + T_load/N_sig.
type DiskIndex struct {
	planner
	file    *store.File
	workers int
}

// NewDiskIndex wraps an opened database file. depth <= 0 selects
// DefaultDepth for the file's record count. Batches filter and refine
// with up to GOMAXPROCS workers; SetWorkers adjusts that.
func NewDiskIndex(file *store.File, depth int) (*DiskIndex, error) {
	curve := file.Curve()
	if depth <= 0 {
		depth = DefaultDepth(curve, file.Count())
	}
	if depth > curve.IndexBits() {
		return nil, fmt.Errorf("core: depth %d exceeds index bits %d", depth, curve.IndexBits())
	}
	return &DiskIndex{planner: planner{curve: curve, depth: depth}, file: file,
		workers: runtime.GOMAXPROCS(0)}, nil
}

// SetWorkers bounds the concurrency of batch executions; n <= 1 is fully
// sequential (the seed behavior).
func (di *DiskIndex) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	di.workers = n
}

// File returns the underlying database file.
func (di *DiskIndex) File() *store.File { return di.file }

// BatchStats reports how a batch execution went.
type BatchStats struct {
	// SectionBits is the chosen r: the curve was split in 2^r sections.
	SectionBits int
	// SectionsLoaded counts the sections actually read (sections no query
	// interval touches are skipped).
	SectionsLoaded int
	// RecordsLoaded is the total number of records read from disk.
	RecordsLoaded int
	// MaxResident is the largest section size encountered, i.e. the peak
	// record residency.
	MaxResident int
	// FilterTime, LoadTime and RefineTime decompose the batch wall time.
	FilterTime, LoadTime, RefineTime time.Duration
}

// ChooseSectionBits returns the smallest r such that every curve section
// of a 2^r partition holds at most budget records, capped at the file's
// stored table granularity. If even the finest stored partition exceeds
// the budget, the finest partition is returned (the caller's budget is
// then best-effort, mirroring the paper where r <= p).
func (di *DiskIndex) ChooseSectionBits(budget int) int {
	// The selection now lives on store.File, where the serving cold tier
	// (store.ColdFile) picks its block granularity by the same rule.
	return di.file.ChooseSectionBits(budget)
}

// SearchStatBatch runs N_sig = len(queries) statistical queries against
// the file within a memory budget of budgetRecords resident records.
// Results are indexed like queries; match positions are global record
// indices.
func (di *DiskIndex) SearchStatBatch(queries [][]byte, sq StatQuery, budgetRecords int) ([][]Match, BatchStats, error) {
	if err := sq.validate(di.dims()); err != nil {
		return nil, BatchStats{}, err
	}
	if budgetRecords < 1 {
		return nil, BatchStats{}, fmt.Errorf("core: memory budget %d records", budgetRecords)
	}
	var stats BatchStats

	// Phase 1: filtering, independent of the database (Section IV-B).
	// Plans are mutually independent, so they fan out across the worker
	// pool; each worker reuses one query context across its share.
	t0 := time.Now()
	plans := make([]Plan, len(queries))
	mkCtx := func() *queryContext {
		return &queryContext{
			qf: make([]float64, di.dims()),
			mc: newMassCache(di.dims(), di.curve.SideLen()),
			fs: newFrontierState(di.curve),
		}
	}
	err := forEach(context.Background(), di.workers, len(queries), mkCtx, func(qc *queryContext, i int) error {
		if err := qc.setQuery(queries[i]); err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		qc.mc.reset()
		plans[i] = di.planStatFrontier(qc.qf, sq, qc.mc, qc.fs)
		return nil
	})
	if err != nil {
		return nil, BatchStats{}, err
	}
	stats.FilterTime = time.Since(t0)

	// Phase 2: cyclic section loading + refinement.
	bits := di.ChooseSectionBits(budgetRecords)
	stats.SectionBits = bits
	shift := uint(di.curve.IndexBits() - bits)
	results := make([][]Match, len(queries))
	cursors := make([]int, len(queries))
	for s := 0; s < 1<<uint(bits); s++ {
		lo, hi := di.file.SectionRecordRange(bits, s)
		secStart := bitkey.FromUint64(uint64(s)).Shl(shift)
		secEnd := bitkey.FromUint64(uint64(s) + 1).Shl(shift)

		// Which queries touch this section?
		type touch struct{ q, ivFrom int }
		var touching []touch
		for qi := range queries {
			ivs := plans[qi].Intervals
			c := cursors[qi]
			for c < len(ivs) && ivs[c].End.Cmp(secStart) <= 0 {
				c++
			}
			cursors[qi] = c
			if c < len(ivs) && ivs[c].Start.Less(secEnd) {
				touching = append(touching, touch{q: qi, ivFrom: c})
			}
		}
		if len(touching) == 0 || lo == hi {
			continue
		}

		tl := time.Now()
		chunk, err := di.file.LoadRecords(lo, hi)
		if err != nil {
			return nil, BatchStats{}, err
		}
		stats.LoadTime += time.Since(tl)
		stats.SectionsLoaded++
		stats.RecordsLoaded += chunk.Len()
		if chunk.Len() > stats.MaxResident {
			stats.MaxResident = chunk.Len()
		}

		// Refinement against the resident section fans out across the
		// touching queries: each query's result slice is owned by exactly
		// one task, and sections are processed in curve order, so the
		// per-query match order is identical to the sequential path.
		tr := time.Now()
		err = forEach(context.Background(), di.workers, len(touching), nil, func(_ *struct{}, ti int) error {
			tc := touching[ti]
			ivs := plans[tc.q].Intervals
			for c := tc.ivFrom; c < len(ivs) && ivs[c].Start.Less(secEnd); c++ {
				clo, chi := chunk.FindInterval(ivs[c])
				for i := clo; i < chi; i++ {
					results[tc.q] = append(results[tc.q], Match{
						Pos: chunk.Base + i, ID: chunk.ID(i), TC: chunk.TC(i),
						X: chunk.X(i), Y: chunk.Y(i), Dist: -1,
					})
				}
			}
			return nil
		})
		if err != nil {
			return nil, BatchStats{}, err
		}
		stats.RefineTime += time.Since(tr)
	}
	return results, stats, nil
}
