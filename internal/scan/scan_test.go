package scan

import (
	"math/rand"
	"testing"

	"s3cbcd/internal/core"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/store"
)

func buildDB(t *testing.T, dims, n int, seed int64) *store.DB {
	t.Helper()
	curve := hilbert.MustNew(dims, 8)
	r := rand.New(rand.NewSource(seed))
	recs := make([]store.Record, n)
	for i := range recs {
		fp := make([]byte, dims)
		for j := range fp {
			fp[j] = byte(r.Intn(256))
		}
		recs[i] = store.Record{FP: fp, ID: uint32(i), TC: uint32(i)}
	}
	return store.MustBuild(curve, recs)
}

func TestRangeQueryAgreesWithIndex(t *testing.T) {
	db := buildDB(t, 8, 800, 1)
	ix, err := core.NewIndex(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		q := make([]byte, 8)
		for j := range q {
			q[j] = byte(r.Intn(256))
		}
		eps := 40 + r.Float64()*60
		got, err := RangeQuery(db, q, eps)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := ix.SearchRange(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("scan %d results, index %d", len(got), len(want))
		}
		wantSet := map[int]bool{}
		for _, m := range want {
			wantSet[m.Pos] = true
		}
		for _, m := range got {
			if !wantSet[m.Pos] {
				t.Fatalf("scan found %d, index did not", m.Pos)
			}
		}
	}
}

func TestRangeQueryValidation(t *testing.T) {
	db := buildDB(t, 4, 10, 3)
	if _, err := RangeQuery(db, []byte{1, 2}, 5); err == nil {
		t.Error("short query accepted")
	}
	if _, err := RangeQuery(db, []byte{1, 2, 3, 4}, -1); err == nil {
		t.Error("negative radius accepted")
	}
	out, err := RangeQuery(db, db.FP(0), 0)
	if err != nil || len(out) < 1 {
		t.Fatalf("zero-radius self query: %v, %d results", err, len(out))
	}
	if out[0].Dist != 0 {
		t.Errorf("self distance %v", out[0].Dist)
	}
}
