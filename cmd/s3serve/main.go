// Command s3serve exposes an S3DB reference database over HTTP with a
// JSON search API (statistical, range and k-NN queries), the deployment
// mode where fingerprint extraction happens near the capture hardware and
// the archive index is a central service.
//
// Usage:
//
//	s3serve -db archive.s3db -addr :8080
//
//	curl localhost:8080/stats
//	curl -X POST localhost:8080/search/statistical \
//	     -d '{"fingerprint":[...20 ints...],"alpha":0.8,"sigma":20}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"s3cbcd/internal/httpapi"
	"s3cbcd/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("s3serve: ")
	var (
		dbPath = flag.String("db", "archive.s3db", "database file")
		addr   = flag.String("addr", ":8080", "listen address")
		depth  = flag.Int("depth", 0, "partition depth p (0 = auto)")
	)
	flag.Parse()

	db, err := store.ReadFile(*dbPath)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := httpapi.New(db, *depth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %d fingerprints (D=%d) on %s\n", db.Len(), db.Dims(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
