package vidsim

import (
	"fmt"
	"math"
	"math/rand"
)

// Transform is one of the video alterations a copy may have undergone
// (the set T of the paper). Apply produces the transformed frame;
// MapPoint maps an interest point position in the original frame to its
// position in the transformed frame, which is how Section IV-C simulates
// a "perfect interest point detector" when estimating the distortion
// model. ok is false when the point leaves the visible area.
type Transform interface {
	Name() string
	Apply(f *Frame) *Frame
	MapPoint(x, y float64, srcW, srcH int) (tx, ty float64, ok bool)
}

// Identity returns the input unchanged (deep copy for safety).
type Identity struct{}

func (Identity) Name() string { return "identity" }

func (Identity) Apply(f *Frame) *Frame { return f.Clone() }

func (Identity) MapPoint(x, y float64, _, _ int) (float64, float64, bool) {
	return x, y, true
}

// Resize rescales the frame by Scale in both dimensions (the paper's
// w_scale), using bilinear resampling.
type Resize struct{ Scale float64 }

func (t Resize) Name() string { return fmt.Sprintf("resize(w=%.2f)", t.Scale) }

func (t Resize) Apply(f *Frame) *Frame {
	if t.Scale <= 0 {
		panic(fmt.Sprintf("vidsim: resize scale %v <= 0", t.Scale))
	}
	nw := int(math.Round(float64(f.W) * t.Scale))
	nh := int(math.Round(float64(f.H) * t.Scale))
	if nw < 1 {
		nw = 1
	}
	if nh < 1 {
		nh = 1
	}
	g := NewFrame(nw, nh)
	sx := float64(f.W) / float64(nw)
	sy := float64(f.H) / float64(nh)
	for y := 0; y < nh; y++ {
		for x := 0; x < nw; x++ {
			g.Pix[y*nw+x] = f.Bilinear((float64(x)+0.5)*sx-0.5, (float64(y)+0.5)*sy-0.5)
		}
	}
	return g
}

func (t Resize) MapPoint(x, y float64, srcW, srcH int) (float64, float64, bool) {
	nw := int(math.Round(float64(srcW) * t.Scale))
	nh := int(math.Round(float64(srcH) * t.Scale))
	tx := (x + 0.5) * float64(nw) / float64(srcW)
	ty := (y + 0.5) * float64(nh) / float64(srcH)
	return tx - 0.5, ty - 0.5, true
}

// VShift shifts the image content down by Frac of its height (the paper's
// w_shift, given in percent there). Revealed rows are black.
type VShift struct{ Frac float64 }

func (t VShift) Name() string { return fmt.Sprintf("shift(w=%.0f%%)", t.Frac*100) }

func (t VShift) Apply(f *Frame) *Frame {
	d := int(math.Round(t.Frac * float64(f.H)))
	g := NewFrame(f.W, f.H)
	for y := 0; y < f.H; y++ {
		sy := y - d
		if sy < 0 || sy >= f.H {
			continue // black
		}
		copy(g.Pix[y*f.W:(y+1)*f.W], f.Pix[sy*f.W:(sy+1)*f.W])
	}
	return g
}

func (t VShift) MapPoint(x, y float64, _, srcH int) (float64, float64, bool) {
	d := math.Round(t.Frac * float64(srcH))
	ny := y + d
	return x, ny, ny >= 0 && ny < float64(srcH)
}

// Gamma applies the pixel-wise power law I' = 255 (I/255)^G (the paper's
// w_gamma).
type Gamma struct{ G float64 }

func (t Gamma) Name() string { return fmt.Sprintf("gamma(w=%.2f)", t.G) }

func (t Gamma) Apply(f *Frame) *Frame {
	if t.G <= 0 {
		panic(fmt.Sprintf("vidsim: gamma %v <= 0", t.G))
	}
	g := NewFrame(f.W, f.H)
	// Pixel intensities are float but live in [0,255]; a 1024-entry LUT
	// over that range is accurate to the quantization the extractor does
	// anyway and saves a pow per pixel.
	var lut [1025]float32
	for i := range lut {
		lut[i] = float32(255 * math.Pow(float64(i)/1024, t.G))
	}
	for i, v := range f.Pix {
		idx := int(v / 255 * 1024)
		if idx < 0 {
			idx = 0
		} else if idx > 1024 {
			idx = 1024
		}
		g.Pix[i] = lut[idx]
	}
	return g
}

func (Gamma) MapPoint(x, y float64, _, _ int) (float64, float64, bool) {
	return x, y, true
}

// Contrast scales intensities by Factor with clamping (the paper's
// w_contrast: I' = w I).
type Contrast struct{ Factor float64 }

func (t Contrast) Name() string { return fmt.Sprintf("contrast(w=%.2f)", t.Factor) }

func (t Contrast) Apply(f *Frame) *Frame {
	g := NewFrame(f.W, f.H)
	for i, v := range f.Pix {
		g.Pix[i] = clamp255(float32(t.Factor) * v)
	}
	return g
}

func (Contrast) MapPoint(x, y float64, _, _ int) (float64, float64, bool) {
	return x, y, true
}

// Noise adds i.i.d. Gaussian noise of standard deviation Sigma (the
// paper's w_noise) with clamping. Seed makes it reproducible.
type Noise struct {
	Sigma float64
	Seed  int64
}

func (t Noise) Name() string { return fmt.Sprintf("noise(w=%.1f)", t.Sigma) }

func (t Noise) Apply(f *Frame) *Frame {
	g := NewFrame(f.W, f.H)
	rng := rand.New(rand.NewSource(t.Seed ^ int64(len(f.Pix))*1048583))
	for i, v := range f.Pix {
		g.Pix[i] = clamp255(v + float32(rng.NormFloat64()*t.Sigma))
	}
	return g
}

func (Noise) MapPoint(x, y float64, _, _ int) (float64, float64, bool) {
	return x, y, true
}

// Inset implements the third geometric operation the paper's introduction
// names alongside resizing and shifting: "inserting" — the candidate
// program is scaled down and embedded inside a larger frame (studio
// overlay, picture-in-picture, news window). The content is resized by
// Scale and placed with its top-left corner at (OffX, OffY), given as
// fractions of the frame dimensions; the remainder is filled with the
// flat Background intensity.
type Inset struct {
	Scale      float64
	OffX, OffY float64
	Background float32
}

func (t Inset) Name() string {
	return fmt.Sprintf("inset(w=%.2f@%.2f,%.2f)", t.Scale, t.OffX, t.OffY)
}

func (t Inset) Apply(f *Frame) *Frame {
	if t.Scale <= 0 || t.Scale > 1 {
		panic(fmt.Sprintf("vidsim: inset scale %v outside (0,1]", t.Scale))
	}
	content := Resize{Scale: t.Scale}.Apply(f)
	g := NewFrame(f.W, f.H)
	for i := range g.Pix {
		g.Pix[i] = clamp255(t.Background)
	}
	ox := int(math.Round(t.OffX * float64(f.W)))
	oy := int(math.Round(t.OffY * float64(f.H)))
	for y := 0; y < content.H; y++ {
		for x := 0; x < content.W; x++ {
			g.Set(ox+x, oy+y, content.Pix[y*content.W+x])
		}
	}
	return g
}

func (t Inset) MapPoint(x, y float64, srcW, srcH int) (float64, float64, bool) {
	rx, ry, _ := Resize{Scale: t.Scale}.MapPoint(x, y, srcW, srcH)
	nx := rx + math.Round(t.OffX*float64(srcW))
	ny := ry + math.Round(t.OffY*float64(srcH))
	return nx, ny, nx >= 0 && ny >= 0 && nx < float64(srcW) && ny < float64(srcH)
}

// PixelJitter leaves frames untouched but perturbs mapped interest point
// positions by Delta pixels in a pseudo-random axis direction, modelling
// the paper's δ_pix "simulated imprecision in the position of the
// interest points".
type PixelJitter struct {
	Delta int
	Seed  uint64
}

func (t PixelJitter) Name() string { return fmt.Sprintf("jitter(δ=%dpx)", t.Delta) }

func (t PixelJitter) Apply(f *Frame) *Frame { return f.Clone() }

func (t PixelJitter) MapPoint(x, y float64, srcW, srcH int) (float64, float64, bool) {
	if t.Delta == 0 {
		return x, y, true
	}
	h := hash2(int64(math.Round(x*8)), int64(math.Round(y*8)), t.Seed)
	d := float64(t.Delta)
	switch int(h * 4) {
	case 0:
		x += d
	case 1:
		x -= d
	case 2:
		y += d
	default:
		y -= d
	}
	return x, y, x >= 0 && y >= 0 && x < float64(srcW) && y < float64(srcH)
}

// Compose chains transformations left to right.
type Compose []Transform

func (c Compose) Name() string {
	s := ""
	for i, t := range c {
		if i > 0 {
			s += "+"
		}
		s += t.Name()
	}
	return s
}

func (c Compose) Apply(f *Frame) *Frame {
	out := f.Clone()
	for _, t := range c {
		out = t.Apply(out)
	}
	return out
}

func (c Compose) MapPoint(x, y float64, srcW, srcH int) (float64, float64, bool) {
	w, h := srcW, srcH
	for _, t := range c {
		var ok bool
		x, y, ok = t.MapPoint(x, y, w, h)
		if !ok {
			return x, y, false
		}
		if r, isResize := t.(Resize); isResize {
			w = int(math.Round(float64(w) * r.Scale))
			h = int(math.Round(float64(h) * r.Scale))
		}
	}
	return x, y, true
}

// ApplySeq maps a transformation over every frame of a sequence. For
// stochastic transforms (Noise) each frame uses a distinct stream derived
// from the frame index so two runs agree but frames differ.
func ApplySeq(t Transform, s *Sequence) *Sequence {
	out := &Sequence{FPS: s.FPS, Frames: make([]*Frame, len(s.Frames))}
	for i, f := range s.Frames {
		out.Frames[i] = reseed(t, i).Apply(f)
	}
	return out
}

// reseed derives a per-frame noise stream so that consecutive frames do
// not share the same noise pattern, recursing into compositions.
func reseed(t Transform, frame int) Transform {
	switch v := t.(type) {
	case Noise:
		v.Seed ^= int64(frame+1) * 0x5DEECE66D
		return v
	case Compose:
		out := make(Compose, len(v))
		for j, tt := range v {
			out[j] = reseed(tt, frame)
		}
		return out
	}
	return t
}
