package core

import (
	"bytes"
	"context"
	"math"
	"sync"

	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/obs"
	"s3cbcd/internal/store"
)

// This file implements the bounded plan cache. A statistical plan
// depends only on (curve, partition depth, distortion model, α, query
// point) — never on the record data — so identical queries against an
// unchanged index recompute identical plans. The monitoring workload of
// Section V-D re-queries near-identical fingerprints continuously, and
// quantized similarity keys lose nothing for similarity answering
// (Ingber, Courtade & Weissman): the cache buckets keys by the
// equi-populated quantizer cells of the query point, so near-identical
// queries hash to the same shard and chain, but a HIT additionally
// requires exact equality of the query bytes, α, model key, tuning and
// index generation. Answers are therefore byte-identical with the cache
// on or off; the quantizer only decides where a key lives, never
// whether two different queries share a plan.
//
// Invalidation is by construction: the index generation is part of the
// key, so a plan cached against generation g can never be returned once
// the snapshot advances — stale entries simply stop matching and age
// out of the LRU. There is no invalidation walk to miss.

// PlanKeyer is the optional capability a Model implements to make its
// plans cacheable: PlanKey must injectively encode the model's full
// parameterization in 64 bits (two models with different ComponentMass
// behavior must never return the same key), or return false to opt out.
// The model's dimension does not need encoding — query validation pins
// it to the index. Models without PlanKeyer bypass the cache.
type PlanKeyer interface {
	PlanKey() (uint64, bool)
}

// modelPlanKey resolves a model's cache key, false when the model does
// not support caching.
func modelPlanKey(m Model) (uint64, bool) {
	if pk, ok := m.(PlanKeyer); ok {
		return pk.PlanKey()
	}
	return 0, false
}

// nocacheKey is the context key of WithoutPlanCache (zero-size, same
// idiom as the obs trace key).
type nocacheKey struct{}

// WithoutPlanCache returns a context whose statistical queries bypass
// the plan cache and recompute their plan — the ?nocache=1 escape hatch
// of the HTTP API, and the oracle the equivalence tests compare
// against. Refinement and answers are unaffected.
func WithoutPlanCache(ctx context.Context) context.Context {
	return context.WithValue(ctx, nocacheKey{}, true)
}

// planCacheBypassed reports whether ctx opted out of the plan cache.
func planCacheBypassed(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	v, _ := ctx.Value(nocacheKey{}).(bool)
	return v
}

// DefaultPlanCacheEntries is the cache capacity when the enabling knob
// leaves it zero: plans are small (merged intervals plus scalars), so a
// few thousand cover a monitoring session's working set comfortably.
const DefaultPlanCacheEntries = 4096

// planCacheShards is the lock-striping factor; picked by high hash bits
// so hot keys of different queries contend on different mutexes.
const planCacheShards = 8

// PlanCacheStats is a point-in-time report of the plan cache.
type PlanCacheStats struct {
	// Hits counts lookups served from a completed cached plan, including
	// waiters that joined an in-flight computation.
	Hits int64
	// Misses counts plan computations the cache admitted (exactly one per
	// concurrent burst on a cold key — see SharedWaits).
	Misses int64
	// SharedWaits counts lookups that found the key's plan already being
	// computed and waited for it instead of recomputing.
	SharedWaits int64
	// Bypasses counts statistical queries that skipped the cache because
	// their model does not implement PlanKeyer.
	Bypasses int64
	// Evictions counts entries dropped by the LRU bound (stale-generation
	// entries leave this way too).
	Evictions int64
	// Entries is the number of completed plans currently held.
	Entries int
}

// planEntry is one cached (or in-flight) plan. Everything but plan/done
// is immutable after insertion; plan/done flip exactly once, under the
// shard mutex, before ready is closed.
type planEntry struct {
	hash      uint64
	q         []byte
	alphaBits uint64
	mkey      uint64
	gen       uint64
	tn        tuning
	ready     chan struct{} // closed when done flips (or the computation abandons)
	done      bool
	plan      Plan // Intervals owned by the entry, treated as immutable

	hnext      *planEntry // hash chain
	prev, next *planEntry // LRU list (completed entries only)
}

func (e *planEntry) matches(h uint64, q []byte, alphaBits, mkey, gen uint64, tn tuning) bool {
	return e.hash == h && e.alphaBits == alphaBits && e.mkey == mkey &&
		e.gen == gen && e.tn == tn && bytes.Equal(e.q, q)
}

// pcShard is one lock stripe: a chained hash map of entries plus an
// intrusive LRU over the completed ones.
type pcShard struct {
	mu         sync.Mutex
	chains     map[uint64]*planEntry
	head, tail *planEntry // LRU: head most recently used
	size       int        // completed entries
}

// planCacheMetrics are the cache's instruments, created unregistered at
// newPlanCache and published by RegisterMetrics (the construct-then-
// register protocol every subsystem here follows).
type planCacheMetrics struct {
	hits        *obs.Counter
	misses      *obs.Counter
	sharedWaits *obs.Counter
	bypasses    *obs.Counter
	evictions   *obs.Counter
}

func newPlanCacheMetrics() planCacheMetrics {
	return planCacheMetrics{
		hits: obs.NewCounter("s3_plan_cache_hits_total",
			"statistical plans served from the cache (in-flight joins included)"),
		misses: obs.NewCounter("s3_plan_cache_misses_total",
			"statistical plans computed and inserted (one per concurrent burst on a cold key)"),
		sharedWaits: obs.NewCounter("s3_plan_cache_shared_waits_total",
			"lookups that waited on another caller's in-flight plan computation"),
		bypasses: obs.NewCounter("s3_plan_cache_bypass_total",
			"statistical queries that skipped the cache (model without PlanKeyer or ?nocache)"),
		evictions: obs.NewCounter("s3_plan_cache_evictions_total",
			"cached plans dropped by the LRU capacity bound"),
	}
}

// planCache is a bounded, sharded, singleflighted LRU of statistical
// plans. Safe for concurrent use.
type planCache struct {
	qz       *store.Quantizer
	perShard int
	shards   [planCacheShards]pcShard
	met      planCacheMetrics
}

// newPlanCache builds a cache bucketing keys with qz (which must cover
// the index dimensions). entries <= 0 selects DefaultPlanCacheEntries.
func newPlanCache(qz *store.Quantizer, entries int) *planCache {
	if entries <= 0 {
		entries = DefaultPlanCacheEntries
	}
	per := (entries + planCacheShards - 1) / planCacheShards
	pc := &planCache{qz: qz, perShard: per, met: newPlanCacheMetrics()}
	for i := range pc.shards {
		pc.shards[i].chains = make(map[uint64]*planEntry)
	}
	return pc
}

// mix64 is the splitmix64 finalizer (the hash family the segment
// sketches already use).
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// keyHash buckets a full key. The query point contributes its quantizer
// cells, not its raw bytes — that is what lands near-identical queries
// in the same chain; everything else contributes exactly. Collisions
// only cost a chain comparison: matches() always verifies the full key.
func (pc *planCache) keyHash(q []byte, alphaBits, mkey, gen uint64, tn tuning) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for j, v := range q {
		h = mix64(h ^ uint64(pc.qz.Cell(j, v)) ^ uint64(j)<<32)
	}
	h = mix64(h ^ alphaBits)
	h = mix64(h ^ mkey)
	h = mix64(h ^ gen)
	h = mix64(h ^ uint64(tn.depth) ^ math.Float64bits(tn.bracketStep))
	h = mix64(h ^ math.Float64bits(tn.thresholdTol))
	return h
}

// moveFront makes e the LRU head. Caller holds sh.mu; e is linked.
func (sh *pcShard) moveFront(e *planEntry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

func (sh *pcShard) pushFront(e *planEntry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *pcShard) unlink(e *planEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if sh.head == e {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if sh.tail == e {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// unchain removes e from its hash chain. Caller holds sh.mu.
func (sh *pcShard) unchain(e *planEntry) {
	head := sh.chains[e.hash]
	if head == e {
		if e.hnext == nil {
			delete(sh.chains, e.hash)
		} else {
			sh.chains[e.hash] = e.hnext
		}
		return
	}
	for c := head; c != nil; c = c.hnext {
		if c.hnext == e {
			c.hnext = e.hnext
			return
		}
	}
}

// plan returns the plan for the given key, computing it via compute on
// a miss. compute runs outside every lock; concurrent callers of the
// same cold key run it exactly once (the rest wait on the winner). The
// returned Plan's Intervals are shared and immutable — the same
// "aliased, copy to retain" contract Engine.PlanStat documents — which
// is what keeps the hit path allocation-free. The bool is false only
// when ctx was canceled while waiting on another caller's computation;
// the caller then plans uncached (its ctx error surfaces downstream).
func (pc *planCache) plan(ctx context.Context, q []byte, alpha float64, mkey, gen uint64, tn tuning, compute func() Plan) (Plan, bool) {
	alphaBits := math.Float64bits(alpha)
	h := pc.keyHash(q, alphaBits, mkey, gen, tn)
	sh := &pc.shards[h>>61]
	sh.mu.Lock()
	for e := sh.chains[h]; e != nil; e = e.hnext {
		if !e.matches(h, q, alphaBits, mkey, gen, tn) {
			continue
		}
		if e.done {
			sh.moveFront(e)
			plan := e.plan
			sh.mu.Unlock()
			pc.met.hits.Inc()
			return plan, true
		}
		ready := e.ready
		sh.mu.Unlock()
		pc.met.sharedWaits.Inc()
		select {
		case <-ready:
		case <-ctx.Done():
			return Plan{}, false
		}
		sh.mu.Lock()
		done, plan := e.done, e.plan
		sh.mu.Unlock()
		if !done {
			// The winner abandoned (its computation panicked out); compute
			// uncached rather than racing to re-insert.
			return Plan{}, false
		}
		pc.met.hits.Inc()
		return plan, true
	}
	// Miss: insert an in-flight placeholder so concurrent callers of the
	// same key wait instead of recomputing, then compute off-lock.
	e := &planEntry{hash: h, q: append([]byte(nil), q...), alphaBits: alphaBits,
		mkey: mkey, gen: gen, tn: tn, ready: make(chan struct{})}
	e.hnext = sh.chains[h]
	sh.chains[h] = e
	sh.mu.Unlock()
	pc.met.misses.Inc()
	committed := false
	defer func() {
		sh.mu.Lock()
		if committed {
			e.done = true
			sh.pushFront(e)
			sh.size++
			for sh.size > pc.perShard && sh.tail != nil {
				old := sh.tail
				sh.unlink(old)
				sh.unchain(old)
				sh.size--
				pc.met.evictions.Inc()
			}
		} else {
			sh.unchain(e)
		}
		sh.mu.Unlock()
		close(e.ready)
	}()
	out := compute()
	// The computed Intervals may alias pooled planner buffers; the cached
	// copy must outlive them. nil stays nil (byte-identical to uncached).
	if out.Intervals != nil {
		ivs := make([]hilbert.Interval, len(out.Intervals))
		copy(ivs, out.Intervals)
		out.Intervals = ivs
	}
	e.plan = out
	committed = true
	return out, true
}

// noteBypass counts one cache-bypassed statistical query.
func (pc *planCache) noteBypass() { pc.met.bypasses.Inc() }

// entries counts completed cached plans.
func (pc *planCache) entries() int {
	n := 0
	for i := range pc.shards {
		sh := &pc.shards[i]
		sh.mu.Lock()
		n += sh.size
		sh.mu.Unlock()
	}
	return n
}

// statsSnapshot reads the cache counters.
func (pc *planCache) statsSnapshot() PlanCacheStats {
	return PlanCacheStats{
		Hits:        pc.met.hits.Value(),
		Misses:      pc.met.misses.Value(),
		SharedWaits: pc.met.sharedWaits.Value(),
		Bypasses:    pc.met.bypasses.Value(),
		Evictions:   pc.met.evictions.Value(),
		Entries:     pc.entries(),
	}
}

// RegisterMetrics publishes the cache's counters plus an occupancy
// gauge into r. Call at most once per registry.
func (pc *planCache) RegisterMetrics(r *obs.Registry) {
	r.MustRegister(pc.met.hits, pc.met.misses, pc.met.sharedWaits,
		pc.met.bypasses, pc.met.evictions)
	r.GaugeFunc("s3_plan_cache_entries", "completed plans currently cached",
		func() float64 { return float64(pc.entries()) })
}
