package core

// LiveIndex is the always-on variant of the S³ index: an LSM-style
// segmented structure that ingests new reference material and serves
// statistical/range/k-NN queries at the same time, the continuously
// growing TV-archive scenario the paper's deployment implies but its
// static structure cannot serve.
//
// The design exploits the same property the sharded engine does: a plan
// (statistical or geometric) depends only on the curve geometry and the
// partition depth, never on the record data. One plan per query is
// therefore valid against every segment, and refinement fans out across
// an atomic snapshot of immutable curve-ordered segments:
//
//   - a small *memtable* segment absorbs Ingest batches (rebuilt by a
//     linear canonical merge — cheap while it stays below the seal
//     threshold);
//   - sealed segments are immutable; a background compactor folds them
//     into one base segment with store.Merge, applying tombstones;
//   - readers load the current snapshot with one atomic pointer read and
//     never block writers; writers publish a fresh snapshot (strictly
//     increasing generation) under a single writer mutex.
//
// Deletes are per-segment tombstone masks by video identifier: a delete
// masks the id out of every segment existing at that moment (the
// memtable, being mutable-by-replacement, is filtered eagerly), so a
// later re-ingest of the same id lands in younger segments and survives.
// Compaction applies the masks physically and drops them.
//
// Because store.Build and store.Merge share one canonical total record
// order (Hilbert key, then ID/TC/X/Y), the concatenation of a snapshot's
// segments holds exactly the records — in exactly the order — of one
// monolithic Build over the surviving records. Query results merged
// canonically across segments are therefore identical to the offline
// rebuild's, which is the property live_quick_test.go checks.
//
// With a backing directory, every seal, delete and compaction commits a
// versioned segment manifest (store.CommitManifest): segment files are
// written and fsynced first under never-reused names, then a
// MANIFEST-<gen> rename publishes the snapshot atomically. Reopening
// recovers the newest manifest that decodes and whose segments all load
// — a crash at any byte of a commit yields the previous committed
// snapshot, never a partial one. Segment files superseded by a
// compaction are not deleted at its commit: the retained predecessor
// manifest (the recovery fallback) still references them, so they are
// garbage-collected at a later commit once pruning drops that manifest.
// Unsealed memtable records are volatile (there is no WAL); Flush or
// Close seals them.
//
// With ColdRecords set (and a directory), the index tiers its segments:
// the memtable and young (small) segments stay resident, while sealed or
// compacted segments at or above the threshold serve *cold* — only the
// file header and section table stay in memory, and refinement reads
// record blocks from disk through a fixed-budget shared block cache
// (store.ColdFile / store.BlockCache). Because refinement visits records
// through the store.RecordSource seam, results are byte-identical either
// way; only the I/O changes. This is what lets the index serve an
// archive larger than RAM: the big compacted base is cold, the write
// path stays resident.
//
// Persistence failures do not lose accepted writes: a failed seal or
// manifest commit leaves the records query-visible in memory, records
// the error, and a background loop retries the owed persistence with
// capped exponential backoff and jitter until it lands or the index
// closes. After RetryLimit consecutive failures the index enters
// degraded read-only mode — queries keep serving the last published
// snapshot but Ingest and DeleteVideo return ErrDegraded — and any
// subsequent successful commit clears it; while degraded, the retry loop
// stays alive even with nothing owed, probing storage by re-committing
// the current manifest so the mode clears (and an abandoned compaction
// is re-triggered) as soon as the fault does. All storage I/O goes through
// a pluggable store.FS (LiveOptions.FS), which is how the fault-
// injection harness drives every one of these paths deterministically.

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"s3cbcd/internal/bitkey"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/obs"
	"s3cbcd/internal/store"
)

// Searcher is the query surface shared by the static Engine and the
// LiveIndex, letting serving layers (httpapi, cbcd.Detector) run over
// either a frozen archive or a growing one.
type Searcher interface {
	SearchStat(ctx context.Context, q []byte, sq StatQuery) ([]Match, Plan, error)
	SearchRange(ctx context.Context, q []byte, eps float64) ([]Match, Plan, error)
	SearchKNN(ctx context.Context, q []byte, k, maxLeaves int) ([]Match, KNNStats, error)
	SearchStatBatch(ctx context.Context, queries [][]byte, sq StatQuery) ([][]Match, error)
}

var (
	_ Searcher = (*Engine)(nil)
	_ Searcher = (*LiveIndex)(nil)
)

// ErrClosed is returned by operations on a closed LiveIndex.
var ErrClosed = errors.New("core: live index is closed")

// ErrDegraded is returned by Ingest and DeleteVideo while the index is
// in degraded read-only mode: RetryLimit consecutive persistence
// failures have accumulated and accepting more writes would only grow
// the volatile backlog. Queries keep serving; the background retry loop
// keeps attempting persistence, and the first successful commit clears
// the mode. Errors returned alongside wrap this sentinel (errors.Is).
var ErrDegraded = errors.New("core: live index is degraded (persistence failing), writes rejected")

// LiveOptions tunes a LiveIndex.
type LiveOptions struct {
	// Depth is the partition depth p shared by every segment (a plan is
	// computed once and refined everywhere, so all segments must agree).
	// 0 selects DefaultDepth for a million-record archive.
	Depth int
	// Workers bounds batch query fan-out. 0 selects GOMAXPROCS.
	Workers int
	// MemtableRecords is the memtable size at which Ingest seals it into
	// an immutable segment. 0 selects 4096.
	MemtableRecords int
	// CompactSegments is the sealed-segment count that triggers a
	// background compaction. 0 selects 4.
	CompactSegments int
	// SectionBits is the section-table granularity of written segment
	// files. 0 selects 10 (clamped to the curve's index bits).
	SectionBits int
	// FS is the filesystem all segment and manifest I/O goes through.
	// nil selects the operating system (store.OSFS); tests inject
	// faultfs.FS here.
	FS store.FS
	// RetryBackoff is the base delay of the persistence retry schedule;
	// attempt n waits about RetryBackoff<<n (with jitter), capped at
	// MaxRetryBackoff. 0 selects DefaultLiveRetryBackoff.
	RetryBackoff time.Duration
	// MaxRetryBackoff caps the exponential backoff. 0 selects
	// DefaultLiveMaxRetryBackoff.
	MaxRetryBackoff time.Duration
	// RetryLimit is the consecutive-persistence-failure count at which
	// the index enters degraded read-only mode, and the attempt budget of
	// one background compaction before it gives up until re-triggered.
	// 0 selects DefaultLiveRetryLimit; negative disables degraded mode
	// (writes are accepted no matter how long persistence has failed).
	RetryLimit int
	// Logger receives structured events for the write path's lifecycle:
	// persistence failures, retry attempts, degraded-mode transitions and
	// compactions. nil discards them (obs.NopLogger).
	Logger *slog.Logger
	// ColdRecords enables tiered serving: a sealed or compacted segment
	// holding at least this many records is served cold — records read
	// from its file through the block cache instead of staying resident.
	// 0 disables tiering (every segment resident); requires a directory.
	ColdRecords int
	// Cache is the block cache cold segments read through, shared across
	// segments (and, if the caller wants, across indexes). nil with
	// ColdRecords > 0 selects a private cache of DefaultLiveCacheBytes.
	Cache *store.BlockCache
	// Sketch embeds an occupancy sketch into every sealed segment (file
	// format v4) and consults it before refinement: a plan whose block set
	// provably misses a segment skips it entirely — no block cache
	// traffic, no record visit — and cold reads skip individual blocks
	// likewise. Skip decisions are one-sided (Bloom filters have no false
	// negatives), so answers are byte-identical with or without.
	Sketch bool
	// ColdCodec embeds the quantized record codec into segments written
	// for the cold tier: statistical refinement reads fingerprint-free
	// lean rows, and geometric refinement pre-filters candidates on packed
	// per-component codes, falling back to exact bytes only for survivors.
	// Answers stay byte-identical (the exact distance check remains).
	ColdCodec bool
	// PlanCache enables the bounded statistical-plan cache: repeated or
	// identical queries against an unchanged snapshot reuse their plan.
	// The snapshot generation is part of the cache key, so any ingest,
	// delete or compaction invalidates by construction and answers stay
	// byte-identical with the cache on or off.
	PlanCache bool
	// PlanCacheEntries bounds the plan cache; 0 selects
	// DefaultPlanCacheEntries.
	PlanCacheEntries int
	// AutoTune enables online tuning of the threshold-search schedule
	// from observed plan/refine costs. The partition depth stays pinned
	// regardless of AutoTune.TuneDepth: segment sketches are built at the
	// shared depth and plans at any other depth could not consult them.
	AutoTune AutoTuneOptions
}

// DefaultLiveMemtableRecords is the default seal threshold.
const DefaultLiveMemtableRecords = 4096

// DefaultLiveCompactSegments is the default compaction trigger.
const DefaultLiveCompactSegments = 4

// DefaultLiveRetryBackoff is the default base delay between persistence
// retry attempts.
const DefaultLiveRetryBackoff = 50 * time.Millisecond

// DefaultLiveMaxRetryBackoff is the default cap on the exponential
// persistence retry backoff.
const DefaultLiveMaxRetryBackoff = 5 * time.Second

// DefaultLiveRetryLimit is the default consecutive-failure count that
// trips degraded mode (and the per-trigger attempt budget of a
// background compaction).
const DefaultLiveRetryLimit = 5

// DefaultLiveCacheBytes is the block cache budget a tiered index gets
// when LiveOptions.Cache is nil.
const DefaultLiveCacheBytes = 64 << 20

func (o LiveOptions) withDefaults(curve *hilbert.Curve) LiveOptions {
	if o.Depth <= 0 {
		o.Depth = DefaultDepth(curve, 1<<20)
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MemtableRecords <= 0 {
		o.MemtableRecords = DefaultLiveMemtableRecords
	}
	if o.CompactSegments < 2 {
		o.CompactSegments = DefaultLiveCompactSegments
	}
	if o.SectionBits <= 0 {
		o.SectionBits = 10
	}
	if o.SectionBits > curve.IndexBits() {
		o.SectionBits = curve.IndexBits()
	}
	if o.FS == nil {
		o.FS = store.OSFS
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = DefaultLiveRetryBackoff
	}
	if o.MaxRetryBackoff <= 0 {
		o.MaxRetryBackoff = DefaultLiveMaxRetryBackoff
	}
	if o.RetryLimit == 0 {
		o.RetryLimit = DefaultLiveRetryLimit
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	if o.ColdRecords > 0 && o.Cache == nil {
		o.Cache = store.NewBlockCache(DefaultLiveCacheBytes)
	}
	return o
}

// liveSegment is one immutable piece of a snapshot: a curve-ordered
// record set plus the tombstone mask hiding deleted videos. Exactly one
// of db (resident) and cold (disk-backed through the block cache) is
// set. Segments are never mutated — tombstone growth replaces the
// struct (copy-on-write), so a loaded snapshot stays coherent forever.
type liveSegment struct {
	db   *store.DB           // resident records; nil when cold
	cold *store.ColdFile     // cold-tier records; nil when resident
	name string              // manifest file name; "" for the memtable
	tomb map[uint32]struct{} // masked video ids; nil or empty for none
	live int                 // records not masked
	// sketch is the segment's occupancy summary, consulted before
	// refinement to skip the whole segment; nil when sketches are off (or
	// for the mutable memtable, which is never summarized).
	sketch *store.Sketch
}

func (s *liveSegment) masked(id uint32) bool {
	_, dead := s.tomb[id]
	return dead
}

// maskFn returns the tombstone predicate refinement filters with, nil
// when the segment has no tombstones.
func (s *liveSegment) maskFn() func(uint32) bool {
	if len(s.tomb) == 0 {
		return nil
	}
	tomb := s.tomb
	return func(id uint32) bool {
		_, dead := tomb[id]
		return dead
	}
}

// source returns the seam refinement visits the segment's records
// through.
func (s *liveSegment) source() store.RecordSource {
	if s.cold != nil {
		return s.cold
	}
	return s.db
}

// records returns the segment's stored record count (masked included).
func (s *liveSegment) records() int {
	if s.cold != nil {
		return s.cold.Len()
	}
	return s.db.Len()
}

// countID counts the segment's stored records of one video identifier.
// Cold segments scan their file (bypassing the cache).
func (s *liveSegment) countID(id uint32) (int, error) {
	if s.cold != nil {
		return s.cold.CountID(id)
	}
	return s.db.CountID(id), nil
}

// sameData reports whether two segment wrappers carry the same record
// set (tombstone growth replaces the wrapper but keeps the data).
func (s *liveSegment) sameData(o *liveSegment) bool {
	return s.db == o.db && s.cold == o.cold
}

// withTombstone returns a copy of the segment with id masked; n is the
// segment's stored count of that id (precomputed so cold segments scan
// once).
func (s *liveSegment) withTombstone(id uint32, n int) *liveSegment {
	tomb := make(map[uint32]struct{}, len(s.tomb)+1)
	for k := range s.tomb {
		tomb[k] = struct{}{}
	}
	tomb[id] = struct{}{}
	return &liveSegment{db: s.db, cold: s.cold, name: s.name, tomb: tomb,
		live: s.live - n, sketch: s.sketch}
}

// compacted returns the segment's surviving records as an in-memory
// database; a cold segment's records are bulk-loaded (cache bypassed).
func (s *liveSegment) compacted() (*store.DB, error) {
	db := s.db
	if s.cold != nil {
		var err error
		if db, err = s.cold.LoadAll(); err != nil {
			return nil, err
		}
	}
	if len(s.tomb) == 0 {
		return db, nil
	}
	return store.Filter(db, func(id, _ uint32) bool { return !s.masked(id) }), nil
}

// liveSnapshot is one immutable view of the index: sealed segments
// (oldest first) plus the memtable. Readers obtain it with a single
// atomic load; writers publish a successor with a strictly larger
// generation.
type liveSnapshot struct {
	gen  uint64
	segs []*liveSegment
	mem  *liveSegment
}

// all returns every segment of the snapshot, memtable last.
func (s *liveSnapshot) all() []*liveSegment {
	out := make([]*liveSegment, 0, len(s.segs)+1)
	out = append(out, s.segs...)
	if s.mem.db.Len() > 0 {
		out = append(out, s.mem)
	}
	return out
}

// LiveIndex is a segmented S³ index supporting concurrent ingest and
// query with background compaction. All query methods are safe for
// concurrent use with each other and with Ingest/DeleteVideo/Compact.
type LiveIndex struct {
	pl  planner
	opt LiveOptions
	dir string // "" = memory-only
	fs  store.FS

	snap atomic.Pointer[liveSnapshot]
	// mu serializes writers (Ingest, DeleteVideo, Flush, Close and the
	// commit phase of a compaction). Readers never take it.
	mu sync.Mutex
	// queryGate tracks in-flight queries (read-locked for a query's
	// duration). Writers never take it except to quiesce readers before
	// closing retired cold files — a compaction's superseded inputs, or
	// every cold file at Close — so queries mid-refine never see their
	// segment's file close under them. It is a leaf lock: never acquired
	// while holding mu.
	queryGate sync.RWMutex
	// compactMu singleflights compaction; the merge and segment-write
	// phases run under it alone, off the writer lock.
	compactMu sync.Mutex
	wg        sync.WaitGroup
	closed    atomic.Bool
	// closedCh is closed by Close so backoff sleeps in background retry
	// loops end immediately instead of running out their timers.
	closedCh chan struct{}

	// persistMu guards the persistence-failure state below. It is a leaf
	// lock: taken with or without mu, never the other way around.
	persistMu sync.Mutex
	// lastPersistErr is the most recent persistence failure (nil after a
	// successful commit).
	lastPersistErr error
	// consecFails counts consecutive failed persistence attempts;
	// reaching RetryLimit trips degraded mode.
	consecFails int
	// dirty records that the durable state lags the published snapshot
	// (a seal or commit is owed); the retry loop runs while it is set.
	dirty bool
	// retrying records that a retry loop goroutine is active.
	retrying bool

	degraded atomic.Bool

	// segSeq allocates never-reused segment file names; seeded at open
	// past every name on disk.
	segSeq atomic.Uint64
	// pendingMu guards pending: segment files written (or being written)
	// ahead of their commit, which the deferred GC must not collect.
	pendingMu sync.Mutex
	pending   map[string]struct{}

	// met instruments the write path and queries (lifetime counters,
	// latency histograms, retry/degraded state); log receives the write
	// path's lifecycle events. Exported via RegisterMetrics. coldCtr is
	// shared by every cold file for sketch-skip/codec accounting.
	met     liveMetrics
	coldCtr *store.ColdCounters
	log     *slog.Logger

	// cache memoizes statistical plans keyed on (query, α, model,
	// tuning, snapshot generation); nil when LiveOptions.PlanCache is
	// off. tuner adapts the threshold-search schedule (never the depth);
	// nil when LiveOptions.AutoTune is off.
	cache *planCache
	tuner *autoTuner
}

// OpenLiveIndex opens (or creates) a live index over the given curve.
// With dir == "" the index is memory-only; otherwise dir holds the
// segment files and manifest, and the index reopens to its last
// committed snapshot.
func OpenLiveIndex(curve *hilbert.Curve, dir string, opt LiveOptions) (*LiveIndex, error) {
	opt = opt.withDefaults(curve)
	if opt.Depth > curve.IndexBits() {
		return nil, fmt.Errorf("core: depth %d exceeds index bits %d", opt.Depth, curve.IndexBits())
	}
	li := &LiveIndex{pl: planner{curve: curve, depth: opt.Depth}, opt: opt, dir: dir,
		fs: opt.FS, closedCh: make(chan struct{}), pending: make(map[string]struct{}),
		met: newLiveMetrics(), coldCtr: store.NewColdCounters(), log: opt.Logger}
	if opt.PlanCache {
		// The record set churns, so the cache buckets keys with value-only
		// uniform cells: assignments stay comparable across snapshots.
		qz, err := store.UniformQuantizer(curve.Dims(), store.DefaultCodecBits)
		if err != nil {
			return nil, err
		}
		li.cache = newPlanCache(qz, opt.PlanCacheEntries)
	}
	if opt.AutoTune.Enabled {
		at := opt.AutoTune
		at.TuneDepth = false // sketches are built at the shared depth
		li.tuner = newAutoTuner(at, li.pl.defaultTuning(), opt.Depth, opt.Depth)
	}
	var (
		segs []*liveSegment
		gen  uint64
	)
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		closeColds := func(ss []*liveSegment) {
			for _, s := range ss {
				if s.cold != nil {
					s.cold.Close()
				}
			}
		}
		m, err := store.RecoverManifestFS(li.fs, dir, func(m *store.SegmentManifest) (reterr error) {
			if m.Dims != curve.Dims() || m.Order != curve.Order() {
				return fmt.Errorf("manifest geometry D=%d K=%d, index wants D=%d K=%d",
					m.Dims, m.Order, curve.Dims(), curve.Order())
			}
			loaded := make([]*liveSegment, 0, len(m.Segments))
			// A rejected manifest must not leak the descriptors of cold
			// segments it managed to open before the validation failure.
			defer func() {
				if reterr != nil {
					closeColds(loaded)
				}
			}()
			for _, si := range m.Segments {
				seg := &liveSegment{name: si.Name}
				var segCurve *hilbert.Curve
				if li.coldEligible(si.Count) {
					cf, err := li.openCold(si.Name)
					if err != nil {
						return err
					}
					seg.cold, segCurve = cf, cf.Curve()
					// The file's embedded sketch (nil for pre-v4 segments:
					// they serve unsketched until the next compaction).
					seg.sketch = cf.Sketch()
				} else {
					db, err := store.ReadFileFS(li.fs, filepath.Join(dir, si.Name))
					if err != nil {
						return err
					}
					seg.db, segCurve = db, db.Curve()
					if opt.Sketch {
						// Resident segments rebuild the summary in memory —
						// identical to the embedded one by determinism, and it
						// covers segments written before sketches existed.
						seg.sketch = db.BuildSketch(opt.Depth)
					}
				}
				loaded = append(loaded, seg)
				if seg.records() != si.Count {
					return fmt.Errorf("segment %s holds %d records, manifest says %d", si.Name, seg.records(), si.Count)
				}
				if segCurve.Dims() != curve.Dims() || segCurve.Order() != curve.Order() {
					return fmt.Errorf("segment %s geometry disagrees with manifest", si.Name)
				}
				if len(si.Tombstones) > 0 {
					seg.tomb = make(map[uint32]struct{}, len(si.Tombstones))
					for _, id := range si.Tombstones {
						seg.tomb[id] = struct{}{}
					}
				}
				seg.live = seg.records()
				for id := range seg.tomb {
					n, err := seg.countID(id)
					if err != nil {
						return err
					}
					seg.live -= n
				}
			}
			segs = loaded
			return nil
		})
		if err != nil {
			closeColds(segs)
			return nil, err
		}
		if m != nil {
			gen = m.Gen
		}
		// Seed the name allocator past every segment file ever written —
		// historical names were derived from generations, and orphans from
		// a crashed, uncommitted write may carry a higher sequence than any
		// manifest records — then collect files no retained manifest
		// references (crash leftovers and long-superseded segments).
		seq := store.MaxSegmentFileSeqFS(li.fs, dir)
		if gen > seq {
			seq = gen
		}
		li.segSeq.Store(seq)
		store.GCSegmentFilesFS(li.fs, dir, nil)
	}
	empty, err := store.Build(curve, nil)
	if err != nil {
		return nil, err
	}
	li.snap.Store(&liveSnapshot{gen: gen, segs: segs, mem: &liveSegment{db: empty}})
	li.log.Info("live index opened", "dir", dir, "gen", gen, "segments", len(segs))
	return li, nil
}

// nextSegName allocates a never-reused file name for a freshly sealed or
// compacted segment.
func (li *LiveIndex) nextSegName() string {
	return store.SegmentFileName(li.segSeq.Add(1))
}

// coldEligible reports whether a sealed segment of n records serves from
// the cold tier.
func (li *LiveIndex) coldEligible(n int) bool {
	return li.dir != "" && li.opt.ColdRecords > 0 && n >= li.opt.ColdRecords
}

// openCold opens a committed segment file for cold serving through the
// shared cache, with sketch-skipping and the codec as configured.
func (li *LiveIndex) openCold(name string) (*store.ColdFile, error) {
	return store.OpenColdOptsFS(li.fs, filepath.Join(li.dir, name), store.ColdOptions{
		Cache:    li.opt.Cache,
		Sketch:   li.opt.Sketch,
		Codec:    li.opt.ColdCodec,
		Counters: li.coldCtr,
	})
}

// segWriteOptions returns the write options of a segment file holding n
// records: the sketch rides every sealed segment when enabled; the codec
// (two extra record areas) is only worth its bytes on segments that will
// serve cold.
func (li *LiveIndex) segWriteOptions(n int) store.WriteOptions {
	return store.WriteOptions{
		SectionBits: li.opt.SectionBits,
		Sketch:      li.opt.Sketch,
		SketchBits:  li.opt.Depth,
		Codec:       li.opt.ColdCodec && li.coldEligible(n),
	}
}

// buildSketch summarizes a freshly sealed or compacted segment when
// sketches are on (matching the section the file just got, and serving
// memory-only indexes too).
func (li *LiveIndex) buildSketch(db *store.DB) *store.Sketch {
	if !li.opt.Sketch {
		return nil
	}
	return db.BuildSketch(li.opt.Depth)
}

// protectPending marks a segment file as written ahead of its commit so
// the deferred GC skips it; the returned release drops the mark (after
// the commit that references it, or after cleanup of an aborted write).
func (li *LiveIndex) protectPending(name string) (release func()) {
	li.pendingMu.Lock()
	li.pending[name] = struct{}{}
	li.pendingMu.Unlock()
	return func() {
		li.pendingMu.Lock()
		delete(li.pending, name)
		li.pendingMu.Unlock()
	}
}

// isPending reports whether a segment file awaits its commit.
func (li *LiveIndex) isPending(name string) bool {
	li.pendingMu.Lock()
	_, ok := li.pending[name]
	li.pendingMu.Unlock()
	return ok
}

// Curve returns the index's curve geometry.
func (li *LiveIndex) Curve() *hilbert.Curve { return li.pl.curve }

// Depth returns the shared partition depth.
func (li *LiveIndex) Depth() int { return li.pl.depth }

// Gen returns the current snapshot generation.
func (li *LiveIndex) Gen() uint64 { return li.snap.Load().gen }

// LiveStats is a point-in-time report of the index's shape.
type LiveStats struct {
	// Gen is the snapshot generation (strictly increasing per published
	// snapshot).
	Gen uint64
	// Segments is the number of sealed immutable segments.
	Segments int
	// SegmentRecords counts records stored in sealed segments, including
	// tombstone-masked ones awaiting compaction.
	SegmentRecords int
	// ColdSegments counts sealed segments serving from the cold tier, and
	// ColdRecords the records they hold (a subset of SegmentRecords).
	ColdSegments, ColdRecords int
	// Cache reports the block cache cold segments read through; zero when
	// tiering is disabled.
	Cache store.CacheStats
	// SketchSegments counts sealed segments carrying an occupancy sketch,
	// and SketchBytes their summed encoded size.
	SketchSegments, SketchBytes int
	// CodecSegments counts cold segments serving the quantized codec.
	CodecSegments int
	// SketchConsults and SegmentsSkipped are lifetime counters: sketch
	// consultations before refinement, and segments those consultations
	// proved the plan misses.
	SketchConsults, SegmentsSkipped int64
	// SkippedBlocks, QuantizedRejects, FallbackReads and BytesSaved are
	// the cold read reducer's lifetime counters: blocks the sketch skipped
	// inside cold files, candidates the quantized bound rejected, exact
	// single-record verification reads, and on-disk bytes not read
	// compared to the exact block path.
	SkippedBlocks, QuantizedRejects, FallbackReads, BytesSaved int64
	// MemtableRecords counts records in the mutable memtable.
	MemtableRecords int
	// LiveRecords counts surviving (query-visible) records.
	LiveRecords int
	// TombstonedIDs counts (segment, video id) tombstone entries awaiting
	// compaction.
	TombstonedIDs int
	// Ingested, Deletes and Compactions are lifetime operation counters.
	Ingested, Deletes, Compactions int64
	// Degraded reports degraded read-only mode: persistence has failed
	// RetryLimit consecutive times and writes are being rejected.
	Degraded bool
	// Dirty reports that the durable state lags the published snapshot
	// and the background retry loop is working to catch it up.
	Dirty bool
	// LastPersistErr is the most recent persistence failure ("" after a
	// successful commit).
	LastPersistErr string
	// PersistFailures and PersistRetries are lifetime counters of failed
	// persistence attempts and of backoff-scheduled retry attempts.
	PersistFailures, PersistRetries int64
	// ConsecutiveFailures counts persistence failures since the last
	// successful commit (degraded mode trips at RetryLimit).
	ConsecutiveFailures int
}

// Stats reports the current snapshot's shape and lifetime counters.
func (li *LiveIndex) Stats() LiveStats {
	snap := li.snap.Load()
	st := LiveStats{
		Gen:             snap.gen,
		Segments:        len(snap.segs),
		MemtableRecords: snap.mem.db.Len(),
		LiveRecords:     snap.mem.db.Len(),
		Ingested:        li.met.ingested.Value(),
		Deletes:         li.met.deletes.Value(),
		Compactions:     li.met.compactions.Value(),
		Degraded:        li.degraded.Load(),
		PersistFailures: li.met.persistFailures.Value(),
		PersistRetries:  li.met.persistRetries.Value(),
	}
	li.persistMu.Lock()
	st.Dirty = li.dirty
	st.ConsecutiveFailures = li.consecFails
	if li.lastPersistErr != nil {
		st.LastPersistErr = li.lastPersistErr.Error()
	}
	li.persistMu.Unlock()
	for _, s := range snap.segs {
		st.SegmentRecords += s.records()
		st.LiveRecords += s.live
		st.TombstonedIDs += len(s.tomb)
		if s.cold != nil {
			st.ColdSegments++
			st.ColdRecords += s.cold.Len()
			if s.cold.Codec() {
				st.CodecSegments++
			}
		}
		if s.sketch != nil {
			st.SketchSegments++
			st.SketchBytes += s.sketch.EncodedSize()
		}
	}
	if li.opt.Cache != nil {
		st.Cache = li.opt.Cache.Stats()
	}
	st.SketchConsults = li.met.sketchConsults.Value()
	st.SegmentsSkipped = li.met.segmentsSkipped.Value()
	st.SkippedBlocks = li.coldCtr.SkippedBlocks.Value()
	st.QuantizedRejects = li.coldCtr.QuantizedRejects.Value()
	st.FallbackReads = li.coldCtr.FallbackReads.Value()
	st.BytesSaved = li.coldCtr.BytesSaved.Value()
	return st
}

// Len returns the number of query-visible records.
func (li *LiveIndex) Len() int { return li.Stats().LiveRecords }

// Ingest adds a batch of reference records: they are curve-sorted,
// merged into the memtable and visible to queries on return. When the
// memtable reaches the seal threshold it becomes an immutable segment
// (durably committed when the index has a directory), and a background
// compaction is triggered once enough segments accumulate.
func (li *LiveIndex) Ingest(recs []store.Record) error {
	if len(recs) == 0 {
		return nil
	}
	batch, err := store.Build(li.pl.curve, recs)
	if err != nil {
		return err
	}
	li.mu.Lock()
	defer li.mu.Unlock()
	if li.closed.Load() {
		return ErrClosed
	}
	if li.degraded.Load() {
		return li.degradedErr()
	}
	cur := li.snap.Load()
	memDB, err := store.Merge(cur.mem.db, batch)
	if err != nil {
		return err
	}
	next := &liveSnapshot{gen: cur.gen + 1, segs: cur.segs, mem: &liveSegment{db: memDB, live: memDB.Len()}}
	if memDB.Len() >= li.opt.MemtableRecords {
		if err := li.sealInto(next); err != nil {
			// The seal failed (segment write or manifest commit). The batch
			// is still accepted: republish with the grown memtable — the
			// records stay query-visible in memory — record the failure, and
			// let the background loop retry the seal with backoff.
			next = &liveSnapshot{gen: cur.gen + 1, segs: cur.segs,
				mem: &liveSegment{db: memDB, live: memDB.Len()}}
			li.notePersistFailure(err, true)
		}
	}
	li.snap.Store(next)
	li.met.ingested.Add(int64(len(recs)))
	if len(next.segs) >= li.opt.CompactSegments {
		li.compactAsync()
	}
	return nil
}

// sealInto converts next's memtable into a sealed immutable segment,
// writing its file and committing the manifest when durable. The caller
// holds mu; next is not yet published. The file write happens under mu
// but is bounded by the memtable seal threshold, unlike a compaction's
// (which therefore runs off the lock).
func (li *LiveIndex) sealInto(next *liveSnapshot) error {
	if next.mem.db.Len() == 0 {
		return nil
	}
	t0 := time.Now()
	seg := &liveSegment{db: next.mem.db, live: next.mem.db.Len(),
		sketch: li.buildSketch(next.mem.db)}
	if li.dir != "" {
		seg.name = li.nextSegName()
		if err := seg.db.WriteFileOptsFS(li.fs, filepath.Join(li.dir, seg.name),
			li.segWriteOptions(seg.db.Len())); err != nil {
			return err
		}
	}
	next.segs = append(append([]*liveSegment{}, next.segs...), seg)
	empty, err := store.Build(li.pl.curve, nil)
	if err != nil {
		return err
	}
	next.mem = &liveSegment{db: empty}
	if err := li.commitLocked(next); err != nil {
		// Best-effort removal of the segment file written for the failed
		// commit (mirroring compact's cleanup): each background retry
		// allocates a fresh name and writes a fresh file, so a persistent
		// commit failure would otherwise strand one orphan per attempt.
		// Recovery never adopts the failed manifest — with its segment gone
		// it fails validation and falls back to the predecessor.
		if seg.name != "" {
			li.fs.Remove(filepath.Join(li.dir, seg.name))
		}
		return err
	}
	// The segment is committed; a big one moves to the cold tier by
	// reopening its just-written file. Failure to open it is not a seal
	// failure — the records are durable and resident — so the segment
	// just stays resident.
	if li.coldEligible(seg.db.Len()) {
		if cf, err := li.openCold(seg.name); err != nil {
			li.log.Warn("cold open of sealed segment failed, serving resident",
				"segment", seg.name, "err", err)
		} else {
			seg.cold, seg.db = cf, nil
		}
	}
	li.met.sealSeconds.ObserveSince(t0)
	li.log.Debug("memtable sealed", "segment", seg.name, "records", seg.live,
		"cold", seg.cold != nil, "gen", next.gen)
	return nil
}

// Flush seals the current memtable (whatever its size) so its records
// are part of the durable committed snapshot.
func (li *LiveIndex) Flush() error {
	li.mu.Lock()
	defer li.mu.Unlock()
	if li.closed.Load() {
		return ErrClosed
	}
	cur := li.snap.Load()
	if cur.mem.db.Len() == 0 {
		return nil
	}
	next := &liveSnapshot{gen: cur.gen + 1, segs: cur.segs, mem: cur.mem}
	if err := li.sealInto(next); err != nil {
		// The sealed snapshot was never published, so durable state does
		// not lag the published one: nothing is owed (marking it owed would
		// make the retry loop re-commit the unchanged manifest and clear
		// dirty while the memtable stays volatile). The caller holds the
		// error and decides whether to retry; the failure still feeds the
		// degraded-mode streak. An over-threshold memtable is re-sealed by
		// the retry loop regardless, via Ingest's owed path.
		li.notePersistFailure(err, false)
		return err
	}
	li.snap.Store(next)
	return nil
}

// DeleteVideo withdraws every currently stored record of the given video
// identifier: sealed segments gain a tombstone mask (applied physically
// at the next compaction), the memtable is filtered in place. Records of
// the same identifier ingested afterwards are unaffected.
func (li *LiveIndex) DeleteVideo(id uint32) error {
	li.mu.Lock()
	defer li.mu.Unlock()
	if li.closed.Load() {
		return ErrClosed
	}
	if li.degraded.Load() {
		return li.degradedErr()
	}
	cur := li.snap.Load()
	changed := false
	segs := make([]*liveSegment, len(cur.segs))
	for i, s := range cur.segs {
		segs[i] = s
		if s.masked(id) {
			continue
		}
		// Cold segments count by scanning their file; a read failure
		// aborts the delete before any state changed.
		n, err := s.countID(id)
		if err != nil {
			return fmt.Errorf("core: delete scan of segment %s: %w", s.name, err)
		}
		if n > 0 {
			segs[i] = s.withTombstone(id, n)
			changed = true
		}
	}
	mem := cur.mem
	if mem.db.ContainsID(id) {
		fdb := store.Filter(mem.db, func(rid, _ uint32) bool { return rid != id })
		mem = &liveSegment{db: fdb, live: fdb.Len()}
		changed = true
	}
	if !changed {
		return nil
	}
	next := &liveSnapshot{gen: cur.gen + 1, segs: segs, mem: mem}
	if err := li.commitLocked(next); err != nil {
		// The tombstones could not be committed, but the delete is still
		// honored in memory: publish the masked snapshot so queries stop
		// returning the video, record the failure, and let the background
		// loop retry the commit — a crash before it lands would resurrect
		// the video, which is why dirty stays set until the commit does.
		li.notePersistFailure(err, true)
	}
	li.snap.Store(next)
	li.met.deletes.Inc()
	return nil
}

// commitLocked durably commits the snapshot's manifest, then collects
// segment files no retained manifest references any more (files the
// predecessor manifest — kept as the recovery fallback — still names
// survive until a later commit prunes it). The caller holds mu;
// memory-only indexes commit nothing.
func (li *LiveIndex) commitLocked(s *liveSnapshot) error {
	if li.dir == "" {
		return nil
	}
	m := &store.SegmentManifest{Gen: s.gen, Dims: li.pl.curve.Dims(), Order: li.pl.curve.Order()}
	for _, seg := range s.segs {
		info := store.SegmentInfo{Name: seg.name, Count: seg.records()}
		if len(seg.tomb) > 0 {
			info.Tombstones = make([]uint32, 0, len(seg.tomb))
			for id := range seg.tomb {
				info.Tombstones = append(info.Tombstones, id)
			}
			sort.Slice(info.Tombstones, func(a, b int) bool { return info.Tombstones[a] < info.Tombstones[b] })
		}
		m.Segments = append(m.Segments, info)
	}
	t0 := time.Now()
	if err := store.CommitManifestFS(li.fs, li.dir, m); err != nil {
		return err
	}
	li.met.commitSeconds.ObserveSince(t0)
	// The committed snapshot still owes a seal when its memtable sits at
	// or above the threshold (a previously failed seal): keep the retry
	// loop running for it.
	li.notePersistSuccess(s.mem.db.Len() >= li.opt.MemtableRecords)
	store.GCSegmentFilesFS(li.fs, li.dir, li.isPending)
	return nil
}

// degradedErr returns the error writes receive while degraded, wrapping
// ErrDegraded with the persistence failure that caused it.
func (li *LiveIndex) degradedErr() error {
	li.persistMu.Lock()
	cause := li.lastPersistErr
	li.persistMu.Unlock()
	if cause == nil {
		return ErrDegraded
	}
	return fmt.Errorf("%w: %v", ErrDegraded, cause)
}

// notePersistFailure records one failed persistence attempt. owed marks
// that the durable state now lags the published snapshot, which starts
// (or keeps alive) the background retry loop. Degraded mode trips at
// RetryLimit consecutive failures (a negative RetryLimit never trips
// it). Safe with or without mu held; takes only the leaf persistMu.
func (li *LiveIndex) notePersistFailure(err error, owed bool) {
	li.met.persistFailures.Inc()
	li.persistMu.Lock()
	defer li.persistMu.Unlock()
	li.lastPersistErr = err
	li.consecFails++
	li.log.Warn("persistence failure", "err", err, "consecutive", li.consecFails, "owed", owed)
	if li.opt.RetryLimit > 0 && li.consecFails >= li.opt.RetryLimit {
		if !li.degraded.Swap(true) {
			li.met.degradedTrips.Inc()
			li.met.degraded.Set(1)
			li.log.Error("degraded read-only mode tripped",
				"err", err, "consecutiveFailures", li.consecFails)
		}
	}
	if owed {
		li.dirty = true
	}
	li.spawnRetryLocked()
}

// notePersistSuccess records a successful manifest commit: the failure
// streak and degraded mode clear. stillOwed keeps the retry loop alive
// for persistence the committed snapshot still lacks (an unsealed
// over-threshold memtable).
func (li *LiveIndex) notePersistSuccess(stillOwed bool) {
	li.persistMu.Lock()
	defer li.persistMu.Unlock()
	li.lastPersistErr = nil
	li.consecFails = 0
	if li.degraded.Swap(false) {
		li.met.degraded.Set(0)
		li.log.Info("degraded mode cleared, writes accepted again", "stillOwed", stillOwed)
	}
	li.dirty = stillOwed
	li.spawnRetryLocked()
}

// spawnRetryLocked starts the retry loop when persistence is owed — or
// the index is degraded — and no loop is running. Degraded mode keeps a
// loop alive even with nothing owed (a compaction failure trips the mode
// without durable state lagging the snapshot): the loop then probes
// storage by re-committing the current manifest, and the first commit
// that lands clears the mode — otherwise a compaction-tripped degraded
// index could never heal, since writes are rejected and compactAsync has
// exhausted its attempt budget. Caller holds persistMu — which is what
// makes the wg.Add safe against Close: Close stores closed, then passes
// through persistMu before wg.Wait, so an Add here either precedes the
// Wait or never happens.
func (li *LiveIndex) spawnRetryLocked() {
	if (li.dirty || li.degraded.Load()) && !li.retrying && !li.closed.Load() {
		li.retrying = true
		li.wg.Add(1)
		go li.retryLoop()
	}
}

// backoffDelay returns the delay before retry attempt (0-based): an
// exponential schedule with jitter in [d/2, d], capped at
// MaxRetryBackoff.
func (li *LiveIndex) backoffDelay(attempt int) time.Duration {
	d := li.opt.RetryBackoff
	for i := 0; i < attempt && d < li.opt.MaxRetryBackoff; i++ {
		d *= 2
	}
	if d > li.opt.MaxRetryBackoff {
		d = li.opt.MaxRetryBackoff
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// retryLoop re-attempts owed persistence with capped exponential backoff
// and jitter until it lands — and, while the index is degraded, keeps
// probing storage so the mode can clear — or the index closes. At most
// one loop runs at a time (the retrying flag); it is wg-tracked so Close
// waits for it.
func (li *LiveIndex) retryLoop() {
	defer li.wg.Done()
	stop := func() {
		li.persistMu.Lock()
		li.retrying = false
		li.persistMu.Unlock()
	}
	defer li.met.retryBackoff.Set(0)
	attempt := 0
	for {
		d := li.backoffDelay(attempt)
		li.met.retryBackoff.Set(d.Seconds())
		select {
		case <-li.closedCh:
			stop()
			return
		case <-time.After(d):
		}
		li.met.persistRetries.Inc()
		li.log.Info("persistence retry", "attempt", attempt+1, "waited", d)
		li.mu.Lock()
		if li.closed.Load() {
			li.mu.Unlock()
			stop()
			return
		}
		li.persistMu.Lock()
		owed := li.dirty
		li.persistMu.Unlock()
		if err := li.persistLocked(); err != nil {
			// owed preserves the dirty flag as-is across a failed
			// degraded-mode probe: re-committing an already-durable manifest
			// owes nothing, so its failure must not pretend durable state
			// now lags the snapshot.
			li.notePersistFailure(err, owed)
			attempt++
		} else {
			// Reset the backoff so draining a backlog after recovery (a
			// still-owed memtable) proceeds at the base delay, not at
			// whatever cap the outage had built up.
			attempt = 0
		}
		li.mu.Unlock()
		li.persistMu.Lock()
		if !li.dirty && !li.degraded.Load() {
			li.retrying = false
			li.persistMu.Unlock()
			return
		}
		li.persistMu.Unlock()
	}
}

// persistLocked re-establishes the owed durability for the current
// snapshot: an over-threshold memtable (a seal that previously failed)
// is sealed into a fresh segment, otherwise the current manifest is
// re-committed (covering tombstones whose commit failed, and doubling as
// the degraded-mode storage probe). Caller holds mu.
func (li *LiveIndex) persistLocked() error {
	if li.dir == "" {
		li.persistMu.Lock()
		li.dirty = false
		li.persistMu.Unlock()
		return nil
	}
	cur := li.snap.Load()
	if cur.mem.db.Len() >= li.opt.MemtableRecords {
		next := &liveSnapshot{gen: cur.gen + 1, segs: cur.segs, mem: cur.mem}
		if err := li.sealInto(next); err != nil {
			return err
		}
		li.snap.Store(next)
		if len(next.segs) >= li.opt.CompactSegments {
			li.compactAsync()
		}
		return nil
	}
	if err := li.commitLocked(cur); err != nil {
		return err
	}
	// A compaction abandoned during the outage (compactAsync gives up
	// after its attempt budget) is owed again now that a commit landed:
	// re-trigger it while the segment count still warrants one.
	if len(cur.segs) >= li.opt.CompactSegments {
		li.compactAsync()
	}
	return nil
}

// compactAsync starts a background compaction unless one is already
// running. Called with mu held; the goroutine acquires mu only for its
// commit phase. A failed compaction is retried with capped exponential
// backoff and jitter — up to RetryLimit attempts, then it gives up until
// a later seal re-triggers it (or, when its failures tripped degraded
// mode, until the retry loop's first successful commit re-triggers it
// from persistLocked); failures are recorded for Stats.
func (li *LiveIndex) compactAsync() {
	if !li.compactMu.TryLock() {
		return
	}
	li.wg.Add(1)
	go func() {
		defer li.wg.Done()
		defer li.compactMu.Unlock()
		attempts := li.opt.RetryLimit
		if attempts < 1 {
			attempts = DefaultLiveRetryLimit
		}
		for attempt := 0; attempt < attempts; attempt++ {
			if attempt > 0 {
				li.met.persistRetries.Inc()
				select {
				case <-li.closedCh:
					return
				case <-time.After(li.backoffDelay(attempt - 1)):
				}
			}
			if err := li.compact(); err == nil || errors.Is(err, ErrClosed) {
				return
			}
		}
	}()
}

// Compact synchronously folds every sealed segment — applying tombstone
// masks — into one base segment via the canonical merge.
func (li *LiveIndex) Compact() error {
	li.compactMu.Lock()
	defer li.compactMu.Unlock()
	return li.compact()
}

// compact runs with compactMu held. The merge phase and the merged
// segment's file write both run off the writer lock (the merged DB is
// immutable and its name is never reused); only revalidation, the
// manifest commit and snapshot publication run under mu. Superseded
// input files are not deleted here — the retained predecessor manifest
// still references them as the recovery fallback — the deferred GC in
// commitLocked collects them once a later commit prunes that manifest.
func (li *LiveIndex) compact() error {
	if li.closed.Load() {
		return ErrClosed
	}
	t0 := time.Now()
	snap := li.snap.Load()
	inputs := snap.segs
	if len(inputs) == 0 || (len(inputs) == 1 && len(inputs[0].tomb) == 0) {
		return nil
	}
	merged, err := inputs[0].compacted()
	if err != nil {
		return err
	}
	for _, s := range inputs[1:] {
		sdb, err := s.compacted()
		if err != nil {
			return err
		}
		m, err := store.Merge(merged, sdb)
		if err != nil {
			return err
		}
		merged = m
	}
	// Write the merged segment before taking the writer lock, so
	// Ingest/DeleteVideo/Flush never stall on this potentially large disk
	// write. The file contents are final: tombstones added while merging
	// are carried as a mask on the new segment, not rewritten into it.
	var (
		name    string
		release func()
	)
	if li.dir != "" && merged.Len() > 0 {
		name = li.nextSegName()
		release = li.protectPending(name)
		if err := merged.WriteFileOptsFS(li.fs, filepath.Join(li.dir, name),
			li.segWriteOptions(merged.Len())); err != nil {
			li.fs.Remove(filepath.Join(li.dir, name))
			release()
			li.log.Warn("compaction segment write failed", "segment", name, "err", err)
			li.notePersistFailure(err, false)
			return err
		}
	}
	abort := func(err error) error {
		if release != nil {
			li.fs.Remove(filepath.Join(li.dir, name))
			release()
		}
		return err
	}

	// The inputs' cold files retire once the new snapshot is published.
	// Closing them must wait for queries that loaded the old snapshot to
	// drain, and taking the queryGate under mu would deadlock with them —
	// so the quiesce-and-close runs in a defer registered BEFORE mu is
	// locked (defers run in reverse order: mu unlocks first).
	var retire []*store.ColdFile
	defer func() {
		if len(retire) == 0 {
			return
		}
		li.queryGate.Lock()
		li.queryGate.Unlock()
		for _, cf := range retire {
			cf.Close()
		}
	}()

	li.mu.Lock()
	defer li.mu.Unlock()
	if li.closed.Load() {
		return abort(ErrClosed)
	}
	cur := li.snap.Load()
	k := len(inputs)
	// Seals only append and compaction is singleflighted, so the inputs
	// are still the prefix of the current segment list (deletes replace
	// the wrapper but keep the record set).
	for i := 0; i < k; i++ {
		if !cur.segs[i].sameData(inputs[i]) {
			return abort(fmt.Errorf("core: compaction inputs changed underfoot"))
		}
	}
	// Tombstones added to the inputs while merging become the new base
	// segment's mask (applied physically by the next compaction), keeping
	// the already-written file valid.
	var delta map[uint32]struct{}
	for i := 0; i < k; i++ {
		for id := range cur.segs[i].tomb {
			if _, had := inputs[i].tomb[id]; !had {
				if delta == nil {
					delta = make(map[uint32]struct{})
				}
				delta[id] = struct{}{}
			}
		}
	}
	next := &liveSnapshot{gen: cur.gen + 1, mem: cur.mem}
	var base []*liveSegment
	if merged.Len() > 0 {
		seg := &liveSegment{db: merged, name: name, tomb: delta, live: merged.Len(),
			sketch: li.buildSketch(merged)}
		for id := range delta {
			seg.live -= merged.CountID(id)
		}
		base = []*liveSegment{seg}
	}
	next.segs = append(base, cur.segs[k:]...)
	if err := li.commitLocked(next); err != nil {
		// The compaction's commit failed; the old layout stays published
		// and durable (nothing is owed), but the failure feeds the
		// degraded-mode streak.
		li.log.Warn("compaction commit failed", "err", err)
		li.notePersistFailure(err, false)
		return abort(err)
	}
	// Committed: a big merged base serves cold from the file just
	// written (opened before publication so readers never see it flip).
	// An open failure leaves it resident — the merge result is in memory
	// anyway.
	if len(base) == 1 && li.coldEligible(merged.Len()) {
		if cf, err := li.openCold(name); err != nil {
			li.log.Warn("cold open of compacted segment failed, serving resident",
				"segment", name, "err", err)
		} else {
			base[0].cold, base[0].db = cf, nil
		}
	}
	li.snap.Store(next)
	// The superseded inputs' cold files are now unreachable from the
	// published snapshot; the pre-registered defer closes them once
	// in-flight queries drain.
	for i := 0; i < k; i++ {
		if cur.segs[i].cold != nil {
			retire = append(retire, cur.segs[i].cold)
		}
	}
	li.met.compactions.Inc()
	li.met.compactSeconds.ObserveSince(t0)
	li.log.Info("compaction committed", "inputs", k, "records", merged.Len(),
		"cold", len(base) == 1 && base[0].cold != nil,
		"gen", next.gen, "seconds", time.Since(t0).Seconds())
	if release != nil {
		release()
	}
	return nil
}

// Close seals the memtable (when durable), rejects further writes,
// waits for any background compaction to finish and closes cold segment
// files once in-flight queries drain. Queries against already-loaded
// snapshots remain valid for resident segments; a query visiting a cold
// segment after Close returns an error.
func (li *LiveIndex) Close() error {
	li.mu.Lock()
	if li.closed.Load() {
		li.mu.Unlock()
		return nil
	}
	var err error
	if cur := li.snap.Load(); cur.mem.db.Len() > 0 && li.dir != "" {
		next := &liveSnapshot{gen: cur.gen + 1, segs: cur.segs, mem: cur.mem}
		if err = li.sealInto(next); err == nil {
			li.snap.Store(next)
		} else {
			li.notePersistFailure(err, false)
		}
	}
	li.closed.Store(true)
	close(li.closedCh)
	li.mu.Unlock()
	// Passing through persistMu after storing closed orders any in-flight
	// retry-loop spawn's wg.Add before the Wait (see spawnRetryLocked).
	li.persistMu.Lock()
	li.persistMu.Unlock()
	li.wg.Wait()
	// Quiesce queries, then release the cold tier's descriptors and
	// cached blocks. Compactions have drained (wg), so the published
	// snapshot's cold files are exactly the open ones.
	li.queryGate.Lock()
	for _, s := range li.snap.Load().segs {
		if s.cold != nil {
			s.cold.Close()
		}
	}
	li.queryGate.Unlock()
	return err
}

// segMatch pairs a match with its Hilbert key for the canonical merge
// across segments.
type segMatch struct {
	key bitkey.Key
	m   Match
}

// segMatchLess is the canonical result order: key, then ID, TC, X, Y —
// the same total order store.Build lays records out in, which is what
// makes merged live results identical to a monolithic index's scan.
func segMatchLess(a, b *segMatch) bool {
	if c := a.key.Cmp(b.key); c != 0 {
		return c < 0
	}
	if a.m.ID != b.m.ID {
		return a.m.ID < b.m.ID
	}
	if a.m.TC != b.m.TC {
		return a.m.TC < b.m.TC
	}
	if a.m.X != b.m.X {
		return a.m.X < b.m.X
	}
	return a.m.Y < b.m.Y
}

// mergeCanonical k-way merges per-segment match lists (each already
// canonically ordered) into one canonically ordered result. Returns nil
// for no matches, matching the engine's convention.
func mergeCanonical(lists [][]segMatch) []Match {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	out := make([]Match, 0, total)
	idx := make([]int, len(lists))
	for len(out) < total {
		best := -1
		for l := range lists {
			if idx[l] >= len(lists[l]) {
				continue
			}
			if best == -1 || segMatchLess(&lists[l][idx[l]], &lists[best][idx[best]]) {
				best = l
			}
		}
		out = append(out, lists[best][idx[best]].m)
		idx[best]++
	}
	return out
}

// skipBySketch reports whether the segment's sketch proves the plan's
// intervals hold none of its records, counting the consultation. A nil
// sketch (sketches off, the memtable, or a pre-sketch segment) never
// skips.
func (li *LiveIndex) skipBySketch(s *liveSegment, ivs []hilbert.Interval) bool {
	if s.sketch == nil {
		return false
	}
	li.met.sketchConsults.Inc()
	if s.sketch.MayIntersect(ivs) {
		return false
	}
	li.met.segmentsSkipped.Inc()
	return true
}

// refineStatSnap refines one plan against every segment of a snapshot,
// resident or cold, through the RecordSource seam. Segments whose sketch
// proves the plan misses them are skipped before any record is visited.
func (li *LiveIndex) refineStatSnap(snap *liveSnapshot, plan Plan) ([]Match, error) {
	segs := snap.all()
	lists := make([][]segMatch, len(segs))
	for i, s := range segs {
		if li.skipBySketch(s, plan.Intervals) {
			continue
		}
		ms, err := statMatchesSource(s.source(), s.maskFn(), plan)
		if err != nil {
			return nil, fmt.Errorf("core: refine of segment %s: %w", s.name, err)
		}
		lists[i] = ms
	}
	return mergeCanonical(lists), nil
}

// liveTuning resolves the parameters the next plan runs at.
func (li *LiveIndex) liveTuning() tuning {
	if li.tuner != nil {
		return *li.tuner.current()
	}
	return li.pl.defaultTuning()
}

// planFor computes the statistical plan for one query against snap,
// serving it from the plan cache when one is attached. The snapshot
// generation keys the cache, so a plan cached before any ingest, delete
// or compaction can never be returned afterwards.
func (li *LiveIndex) planFor(ctx context.Context, snap *liveSnapshot, q []byte, qf []float64, sq StatQuery) Plan {
	tn := li.liveTuning()
	if pc := li.cache; pc != nil {
		if planCacheBypassed(ctx) {
			pc.noteBypass()
		} else if mkey, keyable := modelPlanKey(sq.Model); keyable {
			if plan, ok := pc.plan(ctx, q, sq.Alpha, mkey, snap.gen, tn, func() Plan {
				return li.pl.planStatFloatTuned(qf, sq, tn)
			}); ok {
				return plan
			}
		} else {
			pc.noteBypass()
		}
	}
	return li.pl.planStatFloatTuned(qf, sq, tn)
}

// PlanCacheStats reports the plan cache; false when disabled.
func (li *LiveIndex) PlanCacheStats() (PlanCacheStats, bool) {
	if li.cache == nil {
		return PlanCacheStats{}, false
	}
	return li.cache.statsSnapshot(), true
}

// AutoTuneStats reports the online tuner; false when disabled.
func (li *LiveIndex) AutoTuneStats() (AutoTuneStats, bool) {
	if li.tuner == nil {
		return AutoTuneStats{}, false
	}
	return li.tuner.statsSnapshot(), true
}

// SearchStat executes a statistical query against the current snapshot:
// one plan against the shared curve, refined across every segment, with
// results merged in canonical order. Pos fields are segment-local.
func (li *LiveIndex) SearchStat(ctx context.Context, q []byte, sq StatQuery) ([]Match, Plan, error) {
	if err := sq.validate(li.pl.dims()); err != nil {
		return nil, Plan{}, err
	}
	qf, err := queryPoint(q, li.pl.dims())
	if err != nil {
		return nil, Plan{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, Plan{}, err
	}
	li.queryGate.RLock()
	defer li.queryGate.RUnlock()
	snap := li.snap.Load()
	li.noteQuery(snap)
	tr := obs.FromContext(ctx)
	t0 := time.Now()
	plan := li.planFor(ctx, snap, q, qf, sq)
	if tr != nil {
		id := tr.StageSince("plan", t0)
		tr.Annotate(id, "blocks", strconv.Itoa(plan.Blocks))
		tr.Annotate(id, "descentNodes", strconv.Itoa(plan.DescentNodes))
	}
	tr.AddDescentNodes(int64(plan.DescentNodes))
	tr.AddBlocks(int64(plan.Blocks))
	t1 := time.Now()
	ms, err := li.refineStatSnap(snap, plan)
	if err != nil {
		return nil, Plan{}, err
	}
	if tr != nil {
		id := tr.StageSince("refine", t1)
		tr.Annotate(id, "candidates", strconv.Itoa(len(ms)))
		tr.Annotate(id, "segments", strconv.Itoa(snapSegments(snap)))
	}
	tr.AddCandidates(int64(len(ms)))
	tr.AddSegments(int64(snapSegments(snap)))
	if li.tuner != nil {
		li.tuner.observe(t1.Sub(t0), time.Since(t1))
	}
	return ms, plan, nil
}

// noteQuery counts one query against snap into the live metrics.
func (li *LiveIndex) noteQuery(snap *liveSnapshot) {
	li.met.queries.Inc()
	li.met.querySegments.Observe(float64(snapSegments(snap)))
}

// snapSegments counts the segments a query against snap visits (the
// memtable included when non-empty), without materializing snap.all().
func snapSegments(snap *liveSnapshot) int {
	n := len(snap.segs)
	if snap.mem.db.Len() > 0 {
		n++
	}
	return n
}

// SearchRange executes an ε-range query against the current snapshot.
func (li *LiveIndex) SearchRange(ctx context.Context, q []byte, eps float64) ([]Match, Plan, error) {
	if eps < 0 {
		return nil, Plan{}, fmt.Errorf("core: negative range radius %v", eps)
	}
	qf, err := queryPoint(q, li.pl.dims())
	if err != nil {
		return nil, Plan{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, Plan{}, err
	}
	li.queryGate.RLock()
	defer li.queryGate.RUnlock()
	snap := li.snap.Load()
	li.noteQuery(snap)
	tr := obs.FromContext(ctx)
	t0 := time.Now()
	plan := li.pl.planRangeFloat(qf, eps)
	if tr != nil {
		id := tr.StageSince("plan", t0)
		tr.Annotate(id, "blocks", strconv.Itoa(plan.Blocks))
		tr.Annotate(id, "descentNodes", strconv.Itoa(plan.DescentNodes))
	}
	tr.AddDescentNodes(int64(plan.DescentNodes))
	tr.AddBlocks(int64(plan.Blocks))
	t1 := time.Now()
	segs := snap.all()
	lists := make([][]segMatch, len(segs))
	skipped := 0
	for i, s := range segs {
		// The component envelope bounds the distance to every record of the
		// segment from below: a box further than eps holds no match. The
		// occupancy filter then proves curve non-intersection. Both bounds
		// are one-sided, so skipping cannot change the answer.
		if s.sketch != nil {
			li.met.sketchConsults.Inc()
			if s.sketch.EnvelopeMinDistSq(qf) > eps*eps || !s.sketch.MayIntersect(plan.Intervals) {
				li.met.segmentsSkipped.Inc()
				skipped++
				continue
			}
		}
		sms, err := rangeMatchesSource(s.source(), qf, eps, s.maskFn(), plan)
		if err != nil {
			return nil, Plan{}, fmt.Errorf("core: refine of segment %s: %w", s.name, err)
		}
		lists[i] = sms
	}
	ms := mergeCanonical(lists)
	if tr != nil {
		id := tr.StageSince("refine", t1)
		tr.Annotate(id, "matches", strconv.Itoa(len(ms)))
		tr.Annotate(id, "segments", strconv.Itoa(len(segs)))
		tr.Annotate(id, "segmentsSkipped", strconv.Itoa(skipped))
	}
	tr.AddCandidates(int64(len(ms)))
	tr.AddSegments(int64(len(segs)))
	return ms, plan, nil
}

// SearchKNN answers a k-NN query against the current snapshot: an exact
// (or per-segment early-stopped, when maxLeaves > 0) traversal of each
// segment skipping tombstoned records, with candidates merged by
// distance. Ties at equal distance order deterministically by
// (ID, TC, X, Y).
func (li *LiveIndex) SearchKNN(ctx context.Context, q []byte, k, maxLeaves int) ([]Match, KNNStats, error) {
	if k < 1 {
		return nil, KNNStats{}, fmt.Errorf("core: k = %d must be >= 1", k)
	}
	if _, err := queryPoint(q, li.pl.dims()); err != nil {
		return nil, KNNStats{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, KNNStats{}, err
	}
	li.queryGate.RLock()
	defer li.queryGate.RUnlock()
	snap := li.snap.Load()
	li.noteQuery(snap)
	t0 := time.Now()
	var (
		all   []Match
		stats KNNStats
	)
	stats.Exact = true
	for _, seg := range snap.all() {
		if seg.records() == 0 {
			continue
		}
		var keep func(uint32) bool
		if masked := seg.maskFn(); masked != nil {
			keep = func(id uint32) bool { return !masked(id) }
		}
		ms, st, err := searchKNNSource(li.pl.curve, li.pl.depth, seg.source(), q, k, maxLeaves, keep)
		if err != nil {
			return nil, KNNStats{}, fmt.Errorf("core: refine of segment %s: %w", seg.name, err)
		}
		stats.Leaves += st.Leaves
		stats.Scanned += st.Scanned
		stats.Exact = stats.Exact && st.Exact
		all = append(all, ms...)
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dist != all[b].Dist {
			return all[a].Dist < all[b].Dist
		}
		if all[a].ID != all[b].ID {
			return all[a].ID < all[b].ID
		}
		if all[a].TC != all[b].TC {
			return all[a].TC < all[b].TC
		}
		if all[a].X != all[b].X {
			return all[a].X < all[b].X
		}
		return all[a].Y < all[b].Y
	})
	if len(all) > k {
		all = all[:k]
	}
	if tr := obs.FromContext(ctx); tr != nil {
		tr.StageSince("knn", t0)
		tr.AddCandidates(int64(stats.Scanned))
		tr.AddSegments(int64(snapSegments(snap)))
	}
	return all, stats, nil
}

// SearchStatBatch pipelines many statistical queries across the worker
// pool, all against ONE snapshot loaded at batch start — a consistent
// view even while ingest continues. results[i] corresponds to
// queries[i].
func (li *LiveIndex) SearchStatBatch(ctx context.Context, queries [][]byte, sq StatQuery) ([][]Match, error) {
	if err := sq.validate(li.pl.dims()); err != nil {
		return nil, err
	}
	li.queryGate.RLock()
	defer li.queryGate.RUnlock()
	snap := li.snap.Load()
	li.met.queries.Add(int64(len(queries)))
	results := make([][]Match, len(queries))
	err := forEach(ctx, li.opt.Workers, len(queries), nil, func(_ *struct{}, i int) error {
		qf, err := queryPoint(queries[i], li.pl.dims())
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		t0 := time.Now()
		plan := li.planFor(ctx, snap, queries[i], qf, sq)
		t1 := time.Now()
		ms, err := li.refineStatSnap(snap, plan)
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		if li.tuner != nil {
			li.tuner.observe(t1.Sub(t0), time.Since(t1))
		}
		results[i] = ms
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
