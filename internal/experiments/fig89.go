package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"time"

	"s3cbcd/internal/cbcd"
	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/store"
	"s3cbcd/internal/vidsim"
	"s3cbcd/internal/vote"
)

func init() {
	register(Experiment{
		ID: "fig8",
		Title: "Figure 8: CBCD detection rate abacuses vs database size for the five " +
			"transformations (α=80%), plus the per-size search-time table",
		Run: runFig8,
	})
	register(Experiment{
		ID: "fig9",
		Title: "Figure 9: CBCD detection rate abacuses vs expectation α for the five " +
			"transformations (one DB), plus the per-α search-time table",
		Run: runFig9,
	})
}

// family is one of the five studied transformations with its parameter
// sweep (the abscissa of the paper's abacuses).
type family struct {
	name   string
	params []float64
	make   func(p float64, seed int64) vidsim.Transform
}

func families(sc Scale, seed int64) []family {
	shift := []float64{0.10, 0.25, 0.35}
	scale := []float64{0.70, 0.90, 1.30}
	gamma := []float64{0.50, 1.50, 2.50}
	contrast := []float64{0.60, 1.50, 2.50}
	noise := []float64{10, 20, 35}
	if sc == Full {
		shift = []float64{0.05, 0.10, 0.20, 0.25, 0.35}
		scale = []float64{0.60, 0.70, 0.90, 1.10, 1.30, 1.50}
		gamma = []float64{0.40, 0.80, 1.20, 1.60, 2.00, 2.50}
		contrast = []float64{0.40, 0.80, 1.20, 1.60, 2.00, 2.50}
		noise = []float64{5, 10, 20, 30, 35}
	}
	return []family{
		{"w_shift", shift, func(p float64, _ int64) vidsim.Transform { return vidsim.VShift{Frac: p} }},
		{"w_scale", scale, func(p float64, _ int64) vidsim.Transform { return vidsim.Resize{Scale: p} }},
		{"w_gamma", gamma, func(p float64, _ int64) vidsim.Transform { return vidsim.Gamma{G: p} }},
		{"w_contrast", contrast, func(p float64, _ int64) vidsim.Transform { return vidsim.Contrast{Factor: p} }},
		{"w_noise", noise, func(p float64, s int64) vidsim.Transform { return vidsim.Noise{Sigma: p, Seed: s} }},
	}
}

// clipSpec is one candidate excerpt: reference index and start frame.
type clipSpec struct {
	ref   int
	start int
}

// cbcdWorkload is everything fig8 and fig9 share: reference videos,
// candidate clips with pre-extracted locals per (family, param), and
// clean calibration clips.
type cbcdWorkload struct {
	refs     []*vidsim.Sequence
	clips    []clipSpec
	clipLen  int
	families []family
	// locals[f][p][c] are the fingerprints of clip c transformed by
	// family f at parameter index p.
	locals [][][][]fingerprint.Local
	clean  []*vidsim.Sequence
}

// wlCache shares the (expensive) transformed-clip extraction between
// fig8 and fig9 when both run in one process.
var wlCache struct {
	sync.Mutex
	m map[[2]int64]*cbcdWorkload
}

func newCBCDWorkload(sc Scale, seed int64) *cbcdWorkload {
	key := [2]int64{int64(sc), seed}
	wlCache.Lock()
	defer wlCache.Unlock()
	if wl, ok := wlCache.m[key]; ok {
		return wl
	}
	wl := buildCBCDWorkload(sc, seed)
	if wlCache.m == nil {
		wlCache.m = map[[2]int64]*cbcdWorkload{}
	}
	wlCache.m[key] = wl
	return wl
}

func buildCBCDWorkload(sc Scale, seed int64) *cbcdWorkload {
	nRefs, refLen, nClips, clipLen := 8, 220, 8, 100
	if sc == Full {
		nRefs, refLen, nClips, clipLen = 12, 280, 10, 200
	}
	wl := &cbcdWorkload{
		refs:     VideoCorpus(nRefs, refLen, seed),
		clipLen:  clipLen,
		families: families(sc, seed),
	}
	r := rand.New(rand.NewSource(seed ^ 0xC119))
	for i := 0; i < nClips; i++ {
		ref := r.Intn(nRefs)
		start := r.Intn(refLen - clipLen)
		wl.clips = append(wl.clips, clipSpec{ref: ref, start: start})
	}
	fcfg := fingerprint.DefaultConfig()
	for _, f := range wl.families {
		var perParam [][][]fingerprint.Local
		for _, p := range f.params {
			tf := f.make(p, seed)
			var perClip [][]fingerprint.Local
			for _, cs := range wl.clips {
				clip := excerpt(wl.refs[cs.ref], cs.start, cs.start+clipLen)
				perClip = append(perClip, fingerprint.Extract(vidsim.ApplySeq(tf, clip), fcfg))
			}
			perParam = append(perParam, perClip)
		}
		wl.locals = append(wl.locals, perParam)
	}
	wl.clean = []*vidsim.Sequence{
		vidsim.Generate(vidsim.DefaultConfig(seed^90001), clipLen),
		vidsim.Generate(vidsim.DefaultConfig(seed^90002), clipLen),
		vidsim.Generate(vidsim.DefaultConfig(seed^90003), clipLen),
	}
	return wl
}

func excerpt(seq *vidsim.Sequence, from, to int) *vidsim.Sequence {
	out := &vidsim.Sequence{FPS: seq.FPS}
	out.Frames = append(out.Frames, seq.Frames[from:to]...)
	return out
}

// buildDB indexes the reference videos plus enough distractor records to
// reach dbSize fingerprints.
func (wl *cbcdWorkload) buildDB(dbSize int, seed int64) (*store.DB, error) {
	in := cbcd.NewIndexer(cbcd.DefaultConfig())
	for i, seq := range wl.refs {
		in.AddSequence(uint32(i+1), seq)
	}
	if extra := dbSize - in.Len(); extra > 0 {
		distractors := FPCorpus(extra, seed^0xD157)
		// Shift distractor ids above the reference range.
		for i := range distractors {
			distractors[i].ID += 1000
		}
		in.AddRecords(distractors)
	}
	det, err := in.Build()
	if err != nil {
		return nil, err
	}
	return det.Index().DB(), nil
}

// detector builds a calibrated detector over db at the given alpha.
func (wl *cbcdWorkload) detector(db *store.DB, alpha float64) (*cbcd.Detector, int, error) {
	cfg := cbcd.DefaultConfig()
	cfg.Alpha = alpha
	det, err := cbcd.NewDetector(db, cfg)
	if err != nil {
		return nil, 0, err
	}
	thr, err := cbcd.CalibrateThreshold(det, wl.clean)
	if err != nil {
		return nil, 0, err
	}
	det.SetVoteThreshold(thr)
	return det, thr, nil
}

// detectionRate runs the detector over the pre-extracted locals of one
// (family, param) cell and returns the fraction of clips whose true
// reference is detected with a consistent temporal offset.
func (wl *cbcdWorkload) detectionRate(det *cbcd.Detector, fi, pi int) (float64, error) {
	hits := 0
	for ci, cs := range wl.clips {
		cands, err := det.SearchLocals(wl.locals[fi][pi][ci])
		if err != nil {
			return 0, err
		}
		dets := vote.Decide(cands, det.Config().Vote)
		want := uint32(cs.ref + 1)
		// The temporal model is tc' = tc + b with tc' the clip's own time
		// code (zero-based), so the planted offset is -start.
		trueOffset := -float64(cs.start)
		for _, d := range dets {
			if d.ID == want && math.Abs(d.Offset-trueOffset) <= 2.5 {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(wl.clips)), nil
}

// meanSearchTime measures the average single-fingerprint statistical
// query time over a sample of the workload's fingerprints.
func (wl *cbcdWorkload) meanSearchTime(det *cbcd.Detector, n int) (time.Duration, error) {
	sample := make([]fingerprint.Local, 0, n)
	for _, perParam := range wl.locals {
		for _, perClip := range perParam {
			for _, locals := range perClip {
				for _, l := range locals {
					if len(sample) < n {
						sample = append(sample, l)
					}
				}
			}
		}
	}
	if len(sample) == 0 {
		return 0, fmt.Errorf("experiments: no fingerprints to time")
	}
	t0 := time.Now()
	if _, err := det.SearchLocals(sample); err != nil {
		return 0, err
	}
	return time.Since(t0) / time.Duration(len(sample)), nil
}

func runFig8(w io.Writer, sc Scale, seed int64) error {
	wl := newCBCDWorkload(sc, seed)
	sizes := []int{10000, 60000}
	if sc == Full {
		sizes = []int{20000, 100000, 400000}
	}
	fmt.Fprintf(w, "# Figure 8 — detection rate vs DB size; alpha = 80%%, %d clips of %d frames\n",
		len(wl.clips), wl.clipLen)

	results := make([][][]float64, len(wl.families)) // [family][param][size]
	for fi := range wl.families {
		results[fi] = make([][]float64, len(wl.families[fi].params))
		for pi := range results[fi] {
			results[fi][pi] = make([]float64, len(sizes))
		}
	}
	times := make([]time.Duration, len(sizes))
	counts := make([]int, len(sizes))
	for si, size := range sizes {
		db, err := wl.buildDB(size, seed)
		if err != nil {
			return err
		}
		counts[si] = db.Len()
		det, _, err := wl.detector(db, 0.80)
		if err != nil {
			return err
		}
		for fi := range wl.families {
			for pi := range wl.families[fi].params {
				r, err := wl.detectionRate(det, fi, pi)
				if err != nil {
					return err
				}
				results[fi][pi][si] = r
			}
		}
		times[si], err = wl.meanSearchTime(det, 100)
		if err != nil {
			return err
		}
	}
	for fi, f := range wl.families {
		fmt.Fprintf(w, "\n# %s abacus (rows: parameter, columns: DB size)\n", f.name)
		fmt.Fprintf(w, "%10s", f.name)
		for _, size := range sizes {
			fmt.Fprintf(w, " %12d", size)
		}
		fmt.Fprintln(w)
		for pi, p := range f.params {
			fmt.Fprintf(w, "%10.2f", p)
			for si := range sizes {
				fmt.Fprintf(w, " %12.2f", results[fi][pi][si])
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "\n# search-time table (single fingerprint, statistical query)\n")
	fmt.Fprintf(w, "%12s %14s %16s\n", "dbSize", "fingerprints", "searchTime(ms)")
	for si, size := range sizes {
		fmt.Fprintf(w, "%12d %14d %16.4f\n", size, counts[si], float64(times[si].Microseconds())/1000)
	}
	fmt.Fprintf(w, "# Paper's claim: the DB size barely affects the detection rate, because the\n")
	fmt.Fprintf(w, "# statistical query guarantees the same expectation at any size and the vote\n")
	fmt.Fprintf(w, "# discards the extra false fingerprints.\n")
	return nil
}

func runFig9(w io.Writer, sc Scale, seed int64) error {
	wl := newCBCDWorkload(sc, seed)
	alphas := []float64{0.50, 0.80, 0.95}
	if sc == Full {
		alphas = []float64{0.50, 0.70, 0.80, 0.90, 0.95}
	}
	dbSize := 60000
	if sc == Full {
		dbSize = 200000
	}
	db, err := wl.buildDB(dbSize, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Figure 9 — detection rate vs alpha; DB = %d fingerprints, %d clips of %d frames\n",
		db.Len(), len(wl.clips), wl.clipLen)

	results := make([][][]float64, len(wl.families)) // [family][param][alpha]
	for fi := range wl.families {
		results[fi] = make([][]float64, len(wl.families[fi].params))
		for pi := range results[fi] {
			results[fi][pi] = make([]float64, len(alphas))
		}
	}
	// One decision threshold for the whole abacus, as in the paper:
	// calibrated at the noisiest setting (largest α retrieves the most
	// false fingerprints), so the false-alarm target holds at every α.
	_, fixedThr, err := wl.detector(db, alphas[len(alphas)-1])
	if err != nil {
		return err
	}
	times := make([]time.Duration, len(alphas))
	for ai, alpha := range alphas {
		det, _, err := wl.detector(db, alpha)
		if err != nil {
			return err
		}
		det.SetVoteThreshold(fixedThr)
		for fi := range wl.families {
			for pi := range wl.families[fi].params {
				r, err := wl.detectionRate(det, fi, pi)
				if err != nil {
					return err
				}
				results[fi][pi][ai] = r
			}
		}
		times[ai], err = wl.meanSearchTime(det, 100)
		if err != nil {
			return err
		}
	}
	for fi, f := range wl.families {
		fmt.Fprintf(w, "\n# %s abacus (rows: parameter, columns: alpha)\n", f.name)
		fmt.Fprintf(w, "%10s", f.name)
		for _, a := range alphas {
			fmt.Fprintf(w, " %11.0f%%", a*100)
		}
		fmt.Fprintln(w)
		for pi, p := range f.params {
			fmt.Fprintf(w, "%10.2f", p)
			for ai := range alphas {
				fmt.Fprintf(w, " %12.2f", results[fi][pi][ai])
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "\n# search-time table (single fingerprint, statistical query)\n")
	fmt.Fprintf(w, "%8s %16s\n", "alpha", "searchTime(ms)")
	for ai, a := range alphas {
		fmt.Fprintf(w, "%7.0f%% %16.4f\n", a*100, float64(times[ai].Microseconds())/1000)
	}
	fmt.Fprintf(w, "# Paper's claim: the detection rate stays almost flat from alpha=95%% down to\n")
	fmt.Fprintf(w, "# ~70%% while the search gets ~4x faster; it only falls at alpha=50%%.\n")
	return nil
}
