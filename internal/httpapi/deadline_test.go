package httpapi

// Deadline propagation and admission-control contract: the pieces an
// upstream coordinator (cmd/s3router) leans on. An inbound
// X-S3-Deadline header must bound the request context so backend work
// is canceled once the caller's budget expires; a request shed off the
// in-flight semaphore must answer 503 + Retry-After (the same shape as
// degraded mode, so the router's backoff treats both uniformly); and a
// canceled batch must release its semaphore slot and leak no
// goroutines.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"s3cbcd/internal/core"
)

// gateSearcher is a core.Searcher whose searches block until released
// or until the request context ends — a deterministic stand-in for a
// slow refinement, letting tests hold the in-flight semaphore and
// observe context-driven aborts without timing races.
type gateSearcher struct {
	started chan struct{} // receives one token per search entered
	release chan struct{} // close to let blocked searches finish
}

func newGateSearcher() *gateSearcher {
	return &gateSearcher{started: make(chan struct{}, 64), release: make(chan struct{})}
}

func (g *gateSearcher) wait(ctx context.Context) error {
	select {
	case g.started <- struct{}{}:
	default:
	}
	select {
	case <-g.release:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *gateSearcher) SearchStat(ctx context.Context, q []byte, sq core.StatQuery) ([]core.Match, core.Plan, error) {
	return nil, core.Plan{}, g.wait(ctx)
}

func (g *gateSearcher) SearchRange(ctx context.Context, q []byte, eps float64) ([]core.Match, core.Plan, error) {
	return nil, core.Plan{}, g.wait(ctx)
}

func (g *gateSearcher) SearchKNN(ctx context.Context, q []byte, k, maxLeaves int) ([]core.Match, core.KNNStats, error) {
	return nil, core.KNNStats{}, g.wait(ctx)
}

func (g *gateSearcher) SearchStatBatch(ctx context.Context, queries [][]byte, sq core.StatQuery) ([][]core.Match, error) {
	if err := g.wait(ctx); err != nil {
		return nil, err
	}
	return make([][]core.Match, len(queries)), nil
}

// gateServer builds a Server over a gateSearcher with the given
// in-flight bound.
func gateServer(maxInFlight int) (*Server, *gateSearcher) {
	g := newGateSearcher()
	s := newServer(Options{MaxInFlight: maxInFlight})
	s.search, s.dims = g, 4
	return s, g
}

const statBody = `{"fingerprint":[1,2,3,4],"alpha":0.8,"sigma":5}`

// do sends req and decodes the JSON response body.
func do(t *testing.T, req *http.Request) (*http.Response, map[string]interface{}) {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("response is not JSON: %v", err)
	}
	return resp, out
}

// jsonBody marshals a request body to a string.
func jsonBody(v interface{}) (string, error) {
	raw, err := json.Marshal(v)
	return string(raw), err
}

// A request whose propagated deadline expires while queued on the
// in-flight semaphore is shed with 503 + Retry-After — the
// saturation signal the router's backoff logic keys on.
func TestQueueShed503CarriesRetryAfter(t *testing.T) {
	s, g := gateServer(1)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Occupy the only slot.
	errc := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/search/statistical", "application/json", strings.NewReader(statBody))
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-g.started

	// Queue a second request with a budget that expires while queued.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/search/statistical", strings.NewReader(statBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(DeadlineHeader, strconv.FormatInt(time.Now().Add(50*time.Millisecond).UnixMilli(), 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued-past-deadline request: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("semaphore-shed 503 lacks a Retry-After header")
	}

	close(g.release)
	if err := <-errc; err != nil {
		t.Fatalf("slot-holding request failed: %v", err)
	}
}

// An expired X-S3-Deadline aborts the search mid-refine: the derived
// context cancels in-flight engine work and the response is the
// retryable 503 shape, not a 400 or a hung request.
func TestDeadlineHeaderAbortsMidRefine(t *testing.T) {
	// Stub path: the deadline passes while refinement is in flight.
	s, _ := gateServer(4)
	ts := httptest.NewServer(s)
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/search/statistical", strings.NewReader(statBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(DeadlineHeader, strconv.FormatInt(time.Now().Add(30*time.Millisecond).UnixMilli(), 10))
	resp, out := do(t, req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mid-refine expiry: status %d, want 503: %v", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("deadline-abort 503 lacks a Retry-After header")
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "deadline") {
		t.Fatalf("deadline-abort error %q does not name the deadline", msg)
	}
}

// The same contract through the real engine: a deadline already in the
// past when refinement starts must abort the scan (refineStat checks
// the context), never return matches.
func TestDeadlineHeaderExpiredRealEngine(t *testing.T) {
	s, db := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	body, err := jsonBody(map[string]interface{}{
		"fingerprint": fpOf(db, 0), "alpha": 0.8, "sigma": 20})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/search/statistical", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(DeadlineHeader, strconv.FormatInt(time.Now().Add(-time.Second).UnixMilli(), 10))
	resp, out := do(t, req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline: status %d, want 503: %v", resp.StatusCode, out)
	}
	if _, hasMatches := out["matches"]; hasMatches {
		t.Fatalf("expired deadline returned matches: %v", out)
	}
}

// A malformed deadline header is a client defect: 400, not silently
// ignored.
func TestDeadlineHeaderMalformed(t *testing.T) {
	s, _ := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/search/statistical", strings.NewReader(statBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(DeadlineHeader, "not-a-timestamp")
	resp, out := do(t, req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed deadline: status %d, want 400: %v", resp.StatusCode, out)
	}
}

// SetDraining flips /healthz to the draining state (and back) without
// touching request handling — the drain window a router's prober needs.
func TestHealthzDraining(t *testing.T) {
	s, _ := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	health := func() map[string]interface{} {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		_, out := do(t, req)
		return out
	}
	if h := health(); h["status"] != "ok" || h["draining"] != false {
		t.Fatalf("pre-drain healthz: %v", h)
	}
	s.SetDraining(true)
	if h := health(); h["status"] != "draining" || h["draining"] != true {
		t.Fatalf("draining healthz: %v", h)
	}
	// Searches still serve during the drain window.
	resp, _ := post(t, ts, "/search/knn", map[string]interface{}{
		"fingerprint": []int{1, 2, 3, 4, 5, 6, 7, 8}, "k": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search while draining: status %d", resp.StatusCode)
	}
	s.SetDraining(false)
	if h := health(); h["status"] != "ok" || h["draining"] != false {
		t.Fatalf("post-drain healthz: %v", h)
	}
}

// Canceling the client mid-batch must release the bounded in-flight
// slot promptly and leak no goroutines — the transport guarantee the
// router's scatter/gather generalizes (a hedged loser is exactly such
// a canceled request).
func TestBatchPartialCancellationReleasesSlots(t *testing.T) {
	s, g := gateServer(1)
	ts := httptest.NewServer(s)
	defer ts.Close()

	before := runtime.NumGoroutine()
	batch := `{"fingerprints":[[1,2,3,4],[5,6,7,8],[9,10,11,12]],"alpha":0.8,"sigma":5}`
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			ts.URL+"/search/statistical/batch", strings.NewReader(batch))
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		errc := make(chan error, 1)
		go func() {
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
			errc <- err
		}()
		<-g.started // batch holds the only slot
		cancel()    // client goes away mid-batch
		if err := <-errc; err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: canceled batch returned err %v, want context.Canceled", i, err)
		}
		// The slot must come free: a fresh bounded request may queue
		// briefly while the aborted handler unwinds, but must get
		// through well before this budget expires.
		req2, err := http.NewRequest(http.MethodPost, ts.URL+"/search/knn",
			strings.NewReader(`{"fingerprint":[1,2,3,4],"k":1}`))
		if err != nil {
			t.Fatal(err)
		}
		req2.Header.Set(DeadlineHeader, strconv.FormatInt(time.Now().Add(5*time.Second).UnixMilli(), 10))
		done := make(chan *http.Response, 1)
		go func() {
			resp, err := http.DefaultClient.Do(req2)
			if err != nil {
				done <- nil
				return
			}
			resp.Body.Close()
			done <- resp
		}()
		<-g.started // the knn search entered: the slot was released
		close(g.release)
		if resp := <-done; resp == nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("iteration %d: post-cancel search did not succeed: %+v", i, resp)
		}
		g.release = make(chan struct{})
	}

	// No goroutine may outlive its canceled batch. Allow the runtime a
	// moment to reap handler goroutines; a leak keeps the count high
	// past the deadline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after canceled batches",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
