package s3

// Benchmarks for the reproduction's extensions: alternative distortion
// models, k-NN on the same structure, the VA-file baseline, spatial
// voting, and parallel detection.

import (
	"fmt"
	"testing"

	"s3cbcd/internal/cbcd"
	"s3cbcd/internal/core"
	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/vafile"
	"s3cbcd/internal/vidsim"
	"s3cbcd/internal/vote"
)

// BenchmarkModels compares the per-query cost of the distortion model
// families at matched sigma: richer models pay more per component mass.
func BenchmarkModels(b *testing.B) {
	_, ix, queries := sharedDB(b)
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = float64(i%41) - 20
	}
	mix, err := core.FitMixtureNormal(fingerprint.D, samples)
	if err != nil {
		b.Fatal(err)
	}
	emp, err := core.FitEmpirical(fingerprint.D, samples)
	if err != nil {
		b.Fatal(err)
	}
	models := []struct {
		name string
		m    core.Model
	}{
		{"iso-normal", core.IsoNormal{D: fingerprint.D, Sigma: 18}},
		{"iso-laplace", core.IsoLaplace{D: fingerprint.D, Sigma: 18}},
		{"student-t", core.IsoStudentT{D: fingerprint.D, Sigma: 18, Nu: 4}},
		{"mixture", mix},
		{"empirical", emp},
	}
	for _, mm := range models {
		b.Run(mm.name, func(b *testing.B) {
			sq := core.StatQuery{Alpha: 0.8, Model: mm.m}
			for i := 0; i < b.N; i++ {
				if _, _, err := ix.SearchStat(queries[i%len(queries)], sq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKNN times exact and early-stopping k-NN against the
// statistical query on the same database.
func BenchmarkKNN(b *testing.B) {
	_, ix, queries := sharedDB(b)
	b.Run("exact-k20", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ix.SearchKNN(queries[i%len(queries)], 20, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("approx-k20-8leaves", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ix.SearchKNN(queries[i%len(queries)], 20, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prob-k20-conf80", func(b *testing.B) {
		m := core.IsoNormal{D: fingerprint.D, Sigma: 18}
		for i := 0; i < b.N; i++ {
			if _, _, err := ix.SearchKNNProb(queries[i%len(queries)], 20, 0.8, m); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkVAFile times the VA-file range query against the plain
// sequential scan it improves on.
func BenchmarkVAFile(b *testing.B) {
	db, ix, queries := sharedDB(b)
	_ = ix
	va, err := vafile.Build(db, 4)
	if err != nil {
		b.Fatal(err)
	}
	model := core.IsoNormal{D: fingerprint.D, Sigma: 18}
	eps := model.Radius().Quantile(0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := va.RangeQuery(queries[i%len(queries)], eps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpatialVote compares the voting decision with and without the
// spatial extension on the same buffered results.
func BenchmarkSpatialVote(b *testing.B) {
	det, clip := sharedDetector(b)
	locals := fingerprint.Extract(clip, det.Config().Fingerprint)
	cands, err := det.SearchLocals(locals)
	if err != nil {
		b.Fatal(err)
	}
	for _, tol := range []float64{0, 6} {
		cfg := det.Config().Vote
		cfg.SpatialTolerance = tol
		name := "temporal"
		if tol > 0 {
			name = "spatial"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vote.Decide(cands, cfg)
			}
		})
	}
}

// BenchmarkParallelDetection measures the clip-detection speedup from
// concurrent statistical queries.
func BenchmarkParallelDetection(b *testing.B) {
	det, clip := sharedDetector(b)
	locals := fingerprint.Extract(clip, det.Config().Fingerprint)
	for _, workers := range []int{1, 4} {
		cfg := det.Config()
		cfg.Workers = workers
		wdet, err := cbcd.NewDetector(det.Index().DB(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wdet.SearchLocals(locals); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMonitor times continuous stream monitoring throughput,
// reported as processed video seconds per wall second.
func BenchmarkMonitor(b *testing.B) {
	det, _ := sharedDetector(b)
	mon := cbcd.NewMonitor(det)
	stream := vidsim.Generate(vidsim.DefaultConfig(991), 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mon.ProcessStream(stream); err != nil {
			b.Fatal(err)
		}
	}
	videoSec := float64(stream.Len()) / 25
	b.ReportMetric(videoSec*float64(b.N)/b.Elapsed().Seconds(), "videoSec/s")
}
