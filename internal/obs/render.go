package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteTree renders the report's span tree as indented text — one span
// per line with its start offset, duration, annotations and error — the
// human-readable form of the JSON served by /debug/traces. Remote
// subtrees grafted from backend reports carry their service tag.
func (r TraceReport) WriteTree(w io.Writer) {
	name := r.Name
	if name == "" {
		name = "trace"
	}
	fmt.Fprintf(w, "%s (total %dµs", name, r.TotalMicros)
	if r.TraceID != "" {
		fmt.Fprintf(w, ", trace %s", r.TraceID)
	}
	fmt.Fprint(w, ")")
	if r.Error != "" {
		fmt.Fprintf(w, " ERROR: %s", r.Error)
	}
	fmt.Fprintln(w)
	writeAnnotations(w, "  ", r.Annotations)
	for _, sp := range r.Spans {
		writeSpan(w, sp, 1)
	}
	if r.DroppedSpans > 0 {
		fmt.Fprintf(w, "  (%d spans dropped)\n", r.DroppedSpans)
	}
	fmt.Fprintf(w, "  work: %d descent nodes, %d blocks, %d candidates, %d segments\n",
		r.DescentNodes, r.Blocks, r.Candidates, r.Segments)
}

func writeSpan(w io.Writer, sp SpanReport, depth int) {
	indent := strings.Repeat("  ", depth)
	name := sp.Name
	if sp.Service != "" {
		name = sp.Service + ":" + name
	}
	fmt.Fprintf(w, "%s%-10s +%6dµs %8dµs", indent, name, sp.StartMicros, sp.Micros)
	for _, k := range sortedKeys(sp.Annotations) {
		fmt.Fprintf(w, " %s=%s", k, sp.Annotations[k])
	}
	if sp.Error != "" {
		fmt.Fprintf(w, " ERROR: %s", sp.Error)
	}
	fmt.Fprintln(w)
	for _, c := range sp.Children {
		writeSpan(w, c, depth+1)
	}
}

func writeAnnotations(w io.Writer, indent string, ann map[string]string) {
	for _, k := range sortedKeys(ann) {
		fmt.Fprintf(w, "%s%s=%s\n", indent, k, ann[k])
	}
}

func sortedKeys(m map[string]string) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
