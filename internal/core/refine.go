package core

// Source-based refinement: the scan half of every query type expressed
// over store.RecordSource, the seam both the in-memory store.DB and the
// disk-backed store.ColdFile satisfy. Planning is untouched — a plan
// depends only on curve geometry — but refinement here visits candidate
// records through the interface, so one implementation serves resident
// and cold segments alike. Sources backed by real I/O can fail
// mid-visit; these helpers propagate that error, which the all-resident
// wrappers (Index.refineStat and friends) may ignore since a DB never
// fails.

import (
	"container/heap"
	"fmt"
	"math"

	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/store"
)

// statMatchesSource refines a statistical plan against one source: every
// record in the plan's intervals is an answer (the region is the
// answer). masked, when non-nil, hides tombstoned video ids. Pos is
// source-local.
func statMatchesSource(src store.RecordSource, masked func(uint32) bool, plan Plan) ([]segMatch, error) {
	var out []segMatch
	visit := func(rv store.RecordView) bool {
		if masked != nil && masked(rv.ID) {
			return true
		}
		out = append(out, segMatch{key: rv.Key, m: Match{
			Pos: rv.Pos, ID: rv.ID, TC: rv.TC, X: rv.X, Y: rv.Y, Dist: -1}})
		return true
	}
	// Statistical answers never carry fingerprints; a source with a lean
	// record layout (a codec-bearing cold segment) serves the same views
	// at a fraction of the bytes.
	var err error
	if ls, ok := src.(store.LeanSource); ok {
		err = ls.VisitIntervalsLean(plan.Intervals, visit)
	} else {
		err = src.VisitIntervals(plan.Intervals, visit)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// rangeMatchesSource refines a geometric plan against one source,
// keeping records within eps of the query point.
func rangeMatchesSource(src store.RecordSource, qf []float64, eps float64, masked func(uint32) bool, plan Plan) ([]segMatch, error) {
	epsSq := eps * eps
	var out []segMatch
	visit := func(rv store.RecordView) bool {
		if masked != nil && masked(rv.ID) {
			return true
		}
		if d := distSqToFP(qf, rv.FP); d <= epsSq {
			out = append(out, segMatch{key: rv.Key, m: Match{
				Pos: rv.Pos, ID: rv.ID, TC: rv.TC, X: rv.X, Y: rv.Y, Dist: math.Sqrt(d)}})
		}
		return true
	}
	// A filtered source rejects most out-of-radius candidates on its
	// quantized codes without exact bytes. The filter is conservative
	// (over-visits, never under-visits) and the exact distance check above
	// stays, so the matches are identical either way.
	var err error
	if fs, ok := src.(store.FilteredSource); ok {
		err = fs.VisitIntervalsFiltered(plan.Intervals, qf, epsSq, visit)
	} else {
		err = src.VisitIntervals(plan.Intervals, visit)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// searchKNNSource is the k-NN best-first traversal over a record source:
// blocks of the partition tree are expanded in increasing distance
// order, leaves refined by visiting their curve interval through the
// seam. keep, when non-nil, restricts results to accepted video ids.
// See Index.SearchKNN for the exact/approximate contract.
func searchKNNSource(curve *hilbert.Curve, depth int, src store.RecordSource, q []byte, k, maxLeaves int, keep func(id uint32) bool) ([]Match, KNNStats, error) {
	if k < 1 {
		return nil, KNNStats{}, fmt.Errorf("core: k = %d must be >= 1", k)
	}
	qf, err := queryPoint(q, curve.Dims())
	if err != nil {
		return nil, KNNStats{}, err
	}
	var stats KNNStats
	best := make(resultHeap, 0, k)
	kth := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		return best[0].Dist
	}

	// One-element interval slice reused for every leaf visit: a node's
	// curve interval is a single contiguous range, trivially sorted.
	ivbuf := make([]hilbert.Interval, 1)
	nodes := nodeQueue{{node: curve.RootNode(), distSq: 0}}
	for len(nodes) > 0 {
		e := heap.Pop(&nodes).(nodeEntry)
		if math.Sqrt(e.distSq) > kth() {
			stats.Exact = true
			break
		}
		if e.node.Bits >= depth {
			// Leaf block: refine its records.
			stats.Leaves++
			ivbuf[0] = curve.NodeInterval(e.node)
			if err := src.VisitIntervals(ivbuf, func(rv store.RecordView) bool {
				if keep != nil && !keep(rv.ID) {
					return true
				}
				stats.Scanned++
				d := math.Sqrt(distSqToFP(qf, rv.FP))
				if d < kth() {
					m := Match{Pos: rv.Pos, ID: rv.ID, TC: rv.TC, X: rv.X, Y: rv.Y, Dist: d}
					if len(best) == k {
						heap.Pop(&best)
					}
					heap.Push(&best, m)
				}
				return true
			}); err != nil {
				return nil, stats, err
			}
			if maxLeaves > 0 && stats.Leaves >= maxLeaves {
				break
			}
			continue
		}
		for _, child := range curve.SplitNode(e.node) {
			d := nodeDistSq(qf, child.Lo, child.Hi)
			if math.Sqrt(d) <= kth() {
				heap.Push(&nodes, nodeEntry{node: child, distSq: d})
			}
		}
	}
	if len(nodes) == 0 {
		stats.Exact = true
	}
	// Extract in ascending distance order.
	out := make([]Match, len(best))
	for i := len(best) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&best).(Match)
	}
	return out, stats, nil
}
