package core

// Property test of the plan cache's central claim: with the cache on,
// every statistical query answers byte-identically — same matches, same
// plan — to the uncached computation, across arbitrary interleavings of
// ingest, delete, flush and compaction with repeated queries. The
// uncached oracle is the same index queried through WithoutPlanCache, so
// both sides see the same snapshots; testing/quick drives randomized
// schedules the way live_quick_test.go does for the LSM structure.

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"s3cbcd/internal/store"
)

func TestPlanCacheEquivalentQuick(t *testing.T) {
	scenario := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		li, err := OpenLiveIndex(liveTestCurve(), "", LiveOptions{
			Depth:           liveTestDepth,
			MemtableRecords: 1 + r.Intn(40), // tiny: force frequent seals
			CompactSegments: 2 + r.Intn(3),
			PlanCache:       true,
			// Tiny capacity: evictions happen mid-schedule too.
			PlanCacheEntries: 16 + r.Intn(64),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer li.Close()

		ctx := context.Background()
		raw := WithoutPlanCache(ctx)
		sq := StatQuery{Alpha: 0.9, Model: IsoNormal{D: liveTestDims, Sigma: 2.5}}

		// A small fixed pool of queries, re-issued after every mutation, so
		// the cache both hits (same generation) and re-misses (generation
		// advanced) throughout the schedule.
		pool := make([][]byte, 5)
		for i := range pool {
			pool[i] = randLiveRecord(r).FP
		}
		check := func(label string) bool {
			for qi, q := range pool {
				gotM, gotP, err := li.SearchStat(ctx, q, sq)
				if err != nil {
					t.Fatal(err)
				}
				wantM, wantP, err := li.SearchStat(raw, q, sq)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotP, wantP) {
					t.Errorf("seed %d %s: query %d: cached plan differs from uncached:\n got %+v\nwant %+v",
						seed, label, qi, gotP, wantP)
					return false
				}
				if !matchesEqual(gotM, wantM) {
					t.Errorf("seed %d %s: query %d: cached matches differ from uncached (%d vs %d)",
						seed, label, qi, len(gotM), len(wantM))
					return false
				}
			}
			return true
		}

		nOps := 4 + r.Intn(8)
		for op := 0; op < nOps; op++ {
			switch r.Intn(10) {
			case 0, 1, 2, 3, 4, 5:
				batch := make([]store.Record, r.Intn(60))
				for i := range batch {
					batch[i] = randLiveRecord(r)
				}
				if err := li.Ingest(batch); err != nil {
					t.Fatal(err)
				}
			case 6, 7:
				if err := li.DeleteVideo(uint32(r.Intn(6))); err != nil {
					t.Fatal(err)
				}
			case 8:
				if err := li.Flush(); err != nil {
					t.Fatal(err)
				}
			case 9:
				if err := li.Compact(); err != nil {
					t.Fatal(err)
				}
			}
			// Two passes: the first may miss (generation advanced), the
			// second must hit the entries the first pass inserted.
			if !check("after op") || !check("repeat") {
				return false
			}
		}
		st, ok := li.PlanCacheStats()
		if !ok {
			t.Fatal("plan cache reported disabled on a PlanCache index")
		}
		if st.Hits == 0 {
			t.Errorf("seed %d: no cache hits over the whole schedule (misses %d)", seed, st.Misses)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 10}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(scenario, cfg); err != nil {
		t.Fatal(err)
	}
}
