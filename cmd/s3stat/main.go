// Command s3stat inspects an S3DB database file: header geometry, record
// counts, curve-section occupancy (how evenly the archive spreads along
// the Hilbert curve), identifier statistics, and a partition-depth
// recommendation for the current size.
//
// Usage:
//
//	s3stat -db archive.s3db
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"s3cbcd/internal/core"
	"s3cbcd/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("s3stat: ")
	var (
		dbPath = flag.String("db", "archive.s3db", "database file")
		top    = flag.Int("top", 5, "identifiers to list by fingerprint count")
	)
	flag.Parse()

	fl, err := store.Open(*dbPath)
	if err != nil {
		log.Fatal(err)
	}
	defer fl.Close()
	curve := fl.Curve()
	fmt.Printf("file:           %s (format v%d)\n", *dbPath, fl.Version())
	fmt.Printf("geometry:       D=%d dims x K=%d bits (curve index %d bits)\n",
		curve.Dims(), curve.Order(), curve.IndexBits())
	fmt.Printf("records:        %d\n", fl.Count())
	fmt.Printf("section table:  2^%d sections\n", fl.SectionBits())

	// Section occupancy at the stored granularity.
	bits := fl.SectionBits()
	if bits > 10 {
		bits = 10
	}
	sizes := make([]int, 0, 1<<uint(bits))
	occupied := 0
	maxSec := 0
	for s := 0; s < 1<<uint(bits); s++ {
		lo, hi := fl.SectionRecordRange(bits, s)
		n := hi - lo
		sizes = append(sizes, n)
		if n > 0 {
			occupied++
		}
		if n > maxSec {
			maxSec = n
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	median := sizes[len(sizes)/2]
	fmt.Printf("occupancy:      %d/%d curve sections non-empty at 2^%d granularity\n",
		occupied, len(sizes), bits)
	fmt.Printf("                largest section %d records, median %d\n", maxSec, median)

	// Identifier statistics need the record payloads.
	db, err := fl.LoadAll()
	if err != nil {
		log.Fatal(err)
	}
	counts := map[uint32]int{}
	for i := 0; i < db.Len(); i++ {
		counts[db.ID(i)]++
	}
	type idCount struct {
		id uint32
		n  int
	}
	byCount := make([]idCount, 0, len(counts))
	for id, n := range counts {
		byCount = append(byCount, idCount{id, n})
	}
	sort.Slice(byCount, func(i, j int) bool {
		if byCount[i].n != byCount[j].n {
			return byCount[i].n > byCount[j].n
		}
		return byCount[i].id < byCount[j].id
	})
	fmt.Printf("identifiers:    %d distinct\n", len(counts))
	for i := 0; i < *top && i < len(byCount); i++ {
		fmt.Printf("                id %-8d %d fingerprints\n", byCount[i].id, byCount[i].n)
	}

	fmt.Printf("suggested p:    %d (DefaultDepth; run Index.Tune for the measured optimum)\n",
		core.DefaultDepth(curve, fl.Count()))
	if fl.Version() < 2 {
		fmt.Printf("note:           v1 file — no interest point positions; the spatial\n")
		fmt.Printf("                voting extension will see zero coordinates\n")
	}
}
