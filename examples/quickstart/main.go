// Quickstart: build an S³ index over fingerprints and compare a
// statistical query with a classical ε-range query of the same
// expectation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	s3 "s3cbcd"
)

func main() {
	log.SetFlags(0)
	const (
		dims  = 20 // descriptor dimension (the paper's D)
		n     = 100_000
		sigma = 18.0 // distortion model: each component is ~N(0, sigma)
		alpha = 0.80 // query expectation: retrieve >= 80% of the mass
	)

	// 1. Make a database of fingerprints. Real applications extract them
	// from video (see examples/tvmonitor); here random bytes suffice.
	r := rand.New(rand.NewSource(1))
	recs := make([]s3.Record, n)
	for i := range recs {
		fp := make([]byte, dims)
		for j := range fp {
			fp[j] = byte(r.Intn(256))
		}
		recs[i] = s3.Record{FP: fp, ID: uint32(i / 100), TC: uint32(i % 100)}
	}
	idx, err := s3.BuildIndex(dims, recs, s3.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d fingerprints (partition depth p=%d)\n", idx.Len(), idx.Depth())

	// 2. Build a distorted query: one of the stored fingerprints plus
	// per-component Gaussian noise — the situation a copy detector faces.
	target := recs[4242]
	q := make([]byte, dims)
	for j, b := range target.FP {
		v := float64(b) + r.NormFloat64()*sigma
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		q[j] = byte(v)
	}

	// 3. Statistical query: retrieve the region holding >= alpha of the
	// distortion model's mass around q. No radius, no shape constraint.
	model := s3.IsoNormal{D: dims, Sigma: sigma}
	sq := s3.StatQuery{Alpha: alpha, Model: model}
	t0 := time.Now()
	matches, plan, err := idx.StatSearch(q, sq)
	if err != nil {
		log.Fatal(err)
	}
	statTime := time.Since(t0)
	fmt.Printf("statistical query: %d matches from %d blocks (mass %.3f) in %v\n",
		len(matches), plan.Blocks, plan.Mass, statTime.Round(time.Microsecond))
	reportHit(matches, target)

	// 4. The classical alternative: an ε-range query whose radius is
	// calibrated to the same expectation.
	eps := s3.MatchedRangeRadius(dims, sigma, alpha)
	t1 := time.Now()
	rm, rplan, err := idx.RangeSearch(q, eps)
	if err != nil {
		log.Fatal(err)
	}
	rangeTime := time.Since(t1)
	fmt.Printf("range query (ε=%.1f): %d matches from %d blocks in %v (%.1fx slower)\n",
		eps, len(rm), rplan.Blocks, rangeTime.Round(time.Microsecond),
		float64(rangeTime)/float64(statTime))
	reportHit(rm, target)
}

func reportHit(matches []s3.Match, target s3.Record) {
	for _, m := range matches {
		if m.ID == target.ID && m.TC == target.TC {
			fmt.Printf("  -> the distorted fingerprint's source was retrieved\n")
			return
		}
	}
	fmt.Printf("  -> source not retrieved (expected ~%.0f%% of the time)\n", 100*0.8)
}
