package vote

import (
	"math"
	"math/rand"
	"testing"
)

// plantedScenario builds candidates where identifier trueID appears with
// a consistent offset, polluted with random matches from other ids.
func plantedScenario(r *rand.Rand, trueID uint32, offset float64, nCands, votesPlanted int) []Candidate {
	cands := make([]Candidate, nCands)
	planted := 0
	for j := range cands {
		tcQ := uint32(5000 + 10*j) // large enough that tcQ-offset stays positive
		c := Candidate{TC: tcQ}
		if planted < votesPlanted {
			c.Matches = append(c.Matches, Match{ID: trueID, TC: uint32(float64(tcQ) - offset)})
			planted++
		}
		// Random pollution: other ids at arbitrary time codes, plus an
		// occasional wrong-time match for trueID (outlier).
		for k := 0; k < 3; k++ {
			c.Matches = append(c.Matches, Match{ID: uint32(1000 + r.Intn(50)), TC: uint32(r.Intn(100000))})
		}
		if r.Intn(4) == 0 {
			c.Matches = append(c.Matches, Match{ID: trueID, TC: uint32(r.Intn(100000))})
		}
		cands[j] = c
	}
	return cands
}

func TestDecideFindsPlantedOffset(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cfg := DefaultConfig()
	for trial := 0; trial < 20; trial++ {
		offset := float64(r.Intn(5000) - 2500)
		cands := plantedScenario(r, 7, offset, 20, 12)
		dets := Decide(cands, cfg)
		if len(dets) == 0 {
			t.Fatalf("trial %d: no detection", trial)
		}
		if dets[0].ID != 7 {
			t.Fatalf("trial %d: top detection id %d", trial, dets[0].ID)
		}
		if math.Abs(dets[0].Offset-offset) > cfg.Tolerance {
			t.Fatalf("trial %d: offset %v, want %v", trial, dets[0].Offset, offset)
		}
		if dets[0].Votes < 10 {
			t.Fatalf("trial %d: only %d votes for 12 planted", trial, dets[0].Votes)
		}
	}
}

func TestDecideRejectsIncoherentMatches(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	// All matches random: temporal coherence is very rare, so no id
	// should collect MinVotes votes.
	cands := make([]Candidate, 20)
	for j := range cands {
		c := Candidate{TC: uint32(100 + 10*j)}
		for k := 0; k < 5; k++ {
			c.Matches = append(c.Matches, Match{ID: uint32(r.Intn(30)), TC: uint32(r.Intn(1000000))})
		}
		cands[j] = c
	}
	if dets := Decide(cands, DefaultConfig()); len(dets) != 0 {
		t.Fatalf("incoherent noise produced detections: %+v", dets)
	}
}

func TestDecideHandlesNoisyOffsets(t *testing.T) {
	// Planted matches jittered by ±1 frame must still be recovered.
	r := rand.New(rand.NewSource(3))
	cands := make([]Candidate, 15)
	for j := range cands {
		tcQ := uint32(500 + 7*j)
		jit := r.Intn(3) - 1
		cands[j] = Candidate{TC: tcQ, Matches: []Match{
			{ID: 3, TC: uint32(int(tcQ) - 300 + jit)},
		}}
	}
	dets := Decide(cands, DefaultConfig())
	if len(dets) != 1 || dets[0].ID != 3 {
		t.Fatalf("detections: %+v", dets)
	}
	if math.Abs(dets[0].Offset-300) > 1.5 {
		t.Fatalf("offset %v, want ~300", dets[0].Offset)
	}
	if dets[0].Votes < 12 {
		t.Fatalf("votes %d", dets[0].Votes)
	}
}

func TestDecideMultipleIDs(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	cands := plantedScenario(r, 1, 100, 24, 14)
	// Plant a second, weaker id.
	for j := 0; j < 8; j++ {
		cands[j].Matches = append(cands[j].Matches, Match{ID: 2, TC: cands[j].TC + 777})
	}
	dets := Decide(cands, DefaultConfig())
	if len(dets) < 2 {
		t.Fatalf("want 2 detections, got %+v", dets)
	}
	if dets[0].ID != 1 || dets[1].ID != 2 {
		t.Fatalf("order: %+v", dets)
	}
	if dets[0].Votes <= dets[1].Votes {
		t.Fatalf("vote ordering: %+v", dets)
	}
	if math.Abs(dets[1].Offset+777) > 2 {
		t.Fatalf("second offset %v, want -777", dets[1].Offset)
	}
}

func TestScoreReturnsAllIDs(t *testing.T) {
	cands := []Candidate{
		{TC: 10, Matches: []Match{{ID: 1, TC: 5}, {ID: 2, TC: 99}}},
		{TC: 20, Matches: []Match{{ID: 1, TC: 15}}},
	}
	scores := Score(cands, DefaultConfig())
	if len(scores) != 2 {
		t.Fatalf("Score returned %d ids", len(scores))
	}
	// id 1 has two coherent observations (offset 5), id 2 one.
	if scores[0].ID != 1 || scores[0].Votes != 2 {
		t.Fatalf("top score: %+v", scores[0])
	}
	if scores[1].Votes != 1 {
		t.Fatalf("second score: %+v", scores[1])
	}
}

func TestDecideEmpty(t *testing.T) {
	if dets := Decide(nil, DefaultConfig()); dets != nil {
		t.Fatalf("nil input: %+v", dets)
	}
	if dets := Decide([]Candidate{{TC: 5}}, DefaultConfig()); dets != nil {
		t.Fatalf("matchless input: %+v", dets)
	}
}

func TestMinVotesThreshold(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	cands := plantedScenario(r, 9, 50, 10, 5)
	cfg := DefaultConfig()
	cfg.MinVotes = 6
	if dets := Decide(cands, cfg); len(dets) != 0 {
		t.Fatalf("5 planted votes passed MinVotes=6: %+v", dets)
	}
	cfg.MinVotes = 4
	if dets := Decide(cands, cfg); len(dets) == 0 {
		t.Fatal("5 planted votes failed MinVotes=4")
	}
}
