package cbcd

import (
	"math"
	"testing"

	"s3cbcd/internal/vidsim"
	"s3cbcd/internal/vote"
)

// refCorpus generates n reference sequences of length frames.
func refCorpus(n, frames int) []*vidsim.Sequence {
	seqs := make([]*vidsim.Sequence, n)
	for i := range seqs {
		cfg := vidsim.DefaultConfig(int64(1000 + i))
		cfg.MinShot, cfg.MaxShot = 25, 45
		seqs[i] = vidsim.Generate(cfg, frames)
	}
	return seqs
}

// clip extracts frames [from, to) of a sequence.
func clip(seq *vidsim.Sequence, from, to int) *vidsim.Sequence {
	out := &vidsim.Sequence{FPS: seq.FPS}
	for i := from; i < to; i++ {
		out.Frames = append(out.Frames, seq.Frames[i].Clone())
	}
	return out
}

func buildDetector(t *testing.T, refs []*vidsim.Sequence, cfg Config) *Detector {
	t.Helper()
	in := NewIndexer(cfg)
	for i, seq := range refs {
		if n := in.AddSequence(uint32(i+1), seq); n == 0 {
			t.Fatalf("reference %d produced no fingerprints", i)
		}
	}
	det, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	return det
}

func TestDetectExactCopy(t *testing.T) {
	refs := refCorpus(6, 200)
	det := buildDetector(t, refs, DefaultConfig())
	for id := 1; id <= 3; id++ {
		c := clip(refs[id-1], 40, 160)
		dets, err := det.DetectClip(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(dets) == 0 {
			t.Fatalf("exact copy of reference %d not detected", id)
		}
		if dets[0].ID != uint32(id) {
			t.Fatalf("copy of %d detected as %d", id, dets[0].ID)
		}
		// Clip starts at frame 40, so tc' = tc - 40 => b = -40.
		if math.Abs(dets[0].Offset+40) > 2.5 {
			t.Fatalf("offset %v, want -40", dets[0].Offset)
		}
	}
}

func TestDetectTransformedCopies(t *testing.T) {
	refs := refCorpus(6, 200)
	det := buildDetector(t, refs, DefaultConfig())
	transforms := []vidsim.Transform{
		vidsim.Gamma{G: 1.3},
		vidsim.Contrast{Factor: 1.3},
		vidsim.Noise{Sigma: 10, Seed: 5},
		vidsim.VShift{Frac: 0.08},
		// "Inserting" — the operation the paper's intro says local
		// fingerprints were chosen for: the copy is embedded at 85%
		// scale inside a flat surround.
		vidsim.Inset{Scale: 0.85, OffX: 0.08, OffY: 0.05, Background: 40},
	}
	for _, tf := range transforms {
		c := vidsim.ApplySeq(tf, clip(refs[1], 30, 170))
		dets, err := det.DetectClip(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(dets) == 0 || dets[0].ID != 2 {
			t.Fatalf("%s: copy of reference 2 not detected (got %+v)", tf.Name(), dets)
		}
	}
}

// TestVoteSeparation is the property the paper's threshold calibration
// relies on: true copies (even transformed) collect far more temporally
// coherent votes than any identifier does on unrelated material.
func TestVoteSeparation(t *testing.T) {
	refs := refCorpus(6, 200)
	det := buildDetector(t, refs, DefaultConfig())
	c := clip(refs[1], 30, 170)

	falseMax := 0
	for _, seed := range []int64{9999, 8888} {
		scores, err := det.ScoreClip(vidsim.Generate(vidsim.DefaultConfig(seed), 150))
		if err != nil {
			t.Fatal(err)
		}
		if len(scores) > 0 && scores[0].Votes > falseMax {
			falseMax = scores[0].Votes
		}
	}

	topVotes := func(seq *vidsim.Sequence, wantID uint32) int {
		scores, err := det.ScoreClip(seq)
		if err != nil {
			t.Fatal(err)
		}
		if len(scores) == 0 || scores[0].ID != wantID {
			t.Fatalf("top score not id %d: %+v", wantID, scores)
		}
		return scores[0].Votes
	}
	exact := topVotes(c, 2)
	noisy := topVotes(vidsim.ApplySeq(vidsim.Noise{Sigma: 10, Seed: 5}, c), 2)
	resized := topVotes(vidsim.ApplySeq(vidsim.Resize{Scale: 0.8}, c), 2)

	if exact <= 2*falseMax {
		t.Errorf("exact copy votes %d vs false max %d: no margin", exact, falseMax)
	}
	if noisy <= falseMax {
		t.Errorf("noisy copy votes %d vs false max %d", noisy, falseMax)
	}
	if resized <= falseMax {
		t.Errorf("resized copy votes %d vs false max %d", resized, falseMax)
	}
}

func TestCalibrateThresholdSuppressesFalseAlarms(t *testing.T) {
	refs := refCorpus(4, 160)
	det := buildDetector(t, refs, DefaultConfig())
	clean := []*vidsim.Sequence{
		vidsim.Generate(vidsim.DefaultConfig(7001), 120),
		vidsim.Generate(vidsim.DefaultConfig(7002), 120),
	}
	thr, err := CalibrateThreshold(det, clean)
	if err != nil {
		t.Fatal(err)
	}
	if thr < 1 || thr > 80 {
		t.Fatalf("calibrated threshold %d out of sane range", thr)
	}
	det.SetVoteThreshold(thr)
	// The calibration clips themselves must now be clean.
	for i, cl := range clean {
		dets, err := det.DetectClip(cl)
		if err != nil {
			t.Fatal(err)
		}
		if len(dets) != 0 {
			t.Errorf("calibration clip %d still fires: %+v", i, dets)
		}
	}
	// A true copy must clear the calibrated threshold.
	dets, err := det.DetectClip(clip(refs[0], 20, 140))
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 || dets[0].ID != 1 {
		t.Fatalf("true copy does not clear calibrated threshold %d: %+v", thr, dets)
	}
}

func TestMonitorFindsEmbeddedCopy(t *testing.T) {
	refs := refCorpus(4, 200)
	det := buildDetector(t, refs, DefaultConfig())
	// Calibrate the decision threshold on clean material, as the paper's
	// monitoring deployment does.
	thr, err := CalibrateThreshold(det, []*vidsim.Sequence{
		vidsim.Generate(vidsim.DefaultConfig(7101), 250),
		vidsim.Generate(vidsim.DefaultConfig(7102), 250),
		vidsim.Generate(vidsim.DefaultConfig(7103), 250),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Headroom over the calibration material, as a deployment would use
	// for a <1-false-alarm-per-hour operating point on unseen streams.
	det.SetVoteThreshold(thr + thr/2)
	// Build a stream: 150 unrelated frames, then 150 frames of ref 3,
	// then 100 unrelated frames.
	stream := &vidsim.Sequence{FPS: 25}
	filler := vidsim.Generate(vidsim.DefaultConfig(5555), 150)
	filler2 := vidsim.Generate(vidsim.DefaultConfig(5556), 100)
	stream.Frames = append(stream.Frames, filler.Frames...)
	stream.Frames = append(stream.Frames, clip(refs[2], 20, 170).Frames...)
	stream.Frames = append(stream.Frames, filler2.Frames...)

	m := NewMonitor(det)
	dets, err := m.ProcessStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range dets {
		if d.ID == 3 {
			found = true
			// The copy occupies stream frames [150, 300); its window
			// must overlap that range.
			if d.WindowEnd <= 150 || d.WindowStart >= 300 {
				t.Fatalf("detection window [%d,%d) misses the copy", d.WindowStart, d.WindowEnd)
			}
		} else {
			t.Errorf("spurious stream detection: %+v", d)
		}
	}
	if !found {
		t.Fatal("embedded copy not found in stream")
	}
}

func TestDetectorValidation(t *testing.T) {
	if _, err := NewIndexer(Config{Alpha: 2}).Build(); err == nil {
		t.Error("alpha=2 accepted")
	}
	if _, err := NewIndexer(Config{Sigma: -3}).Build(); err == nil {
		t.Error("sigma<0 accepted")
	}
	in := NewIndexer(DefaultConfig())
	det, err := in.Build() // empty DB is legal, just useless
	if err != nil {
		t.Fatal(err)
	}
	dets, err := det.DetectClip(vidsim.Generate(vidsim.DefaultConfig(1), 30))
	if err != nil || len(dets) != 0 {
		t.Fatalf("empty DB detection: %v %v", dets, err)
	}
}

func TestIndexerAddRecords(t *testing.T) {
	in := NewIndexer(DefaultConfig())
	recs := make([]vote.Match, 0)
	_ = recs
	in.AddRecords(nil)
	if in.Len() != 0 {
		t.Fatal("empty AddRecords changed length")
	}
}
