package httpapi

// Error-path contract of the API: every failure mode has a defined
// status code and a JSON {"error": ...} body — malformed JSON, oversized
// ingest bodies, wrong methods on live write endpoints, and the 503 +
// Retry-After shape of degraded read-only mode.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"s3cbcd/internal/core"
	"s3cbcd/internal/faultfs"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/store"
)

// postRaw sends body verbatim (no JSON marshalling) and decodes the
// response as the error-shape map.
func postRaw(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, map[string]interface{}) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: response is not JSON: %v", path, err)
	}
	return resp, out
}

func TestIngestMalformedJSON(t *testing.T) {
	s, _ := liveTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, body := range []string{`{"records": [`, `not json at all`, `42`} {
		resp, out := postRaw(t, ts, "/ingest", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed body %q: status %d, want 400", body, resp.StatusCode)
		}
		if msg, _ := out["error"].(string); msg == "" {
			t.Fatalf("malformed body %q: error response %v lacks an error message", body, out)
		}
	}
}

// The 413 from the ingest body cap must carry the standard JSON error
// shape (content type and an actionable message), not a plain-text stub.
func TestIngestBodyCapErrorShape(t *testing.T) {
	curve := hilbert.MustNew(4, 5)
	li, err := core.OpenLiveIndex(curve, "", core.LiveOptions{Depth: 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { li.Close() })
	ts := httptest.NewServer(NewLive(li, Options{MaxIngestBytes: 128}))
	defer ts.Close()

	resp, out := postRaw(t, ts, "/ingest", `{"records": [`+strings.Repeat(`{"fingerprint":[1,2,3,4],"id":1},`, 63)+`{"fingerprint":[1,2,3,4],"id":1}]}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: status %d, want 413", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != jsonContentType {
		t.Fatalf("413 content type %q, want %q", ct, jsonContentType)
	}
	if sv := resp.Header.Get("Server"); sv != serverHeader {
		t.Fatalf("413 Server header %q, want %q", sv, serverHeader)
	}
	msg, _ := out["error"].(string)
	if !strings.Contains(msg, "128") || !strings.Contains(msg, "split") {
		t.Fatalf("413 error %q does not tell the client the limit and the remedy", msg)
	}
}

// Live write endpoints are method-routed: the wrong verb gets 405, not a
// handler error or a 404.
func TestLiveWriteMethodNotAllowed(t *testing.T) {
	s, _ := liveTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, c := range []struct{ method, path string }{
		{http.MethodGet, "/ingest"},
		{http.MethodDelete, "/ingest"},
		{http.MethodGet, "/flush"},
		{http.MethodGet, "/compact"},
		{http.MethodPost, "/video/3"},
		{http.MethodGet, "/video/3"},
	} {
		req, err := http.NewRequest(c.method, ts.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d, want 405", c.method, c.path, resp.StatusCode)
		}
		// The Server header is set before mux dispatch, so even 405s
		// carry it.
		if sv := resp.Header.Get("Server"); sv != serverHeader {
			t.Fatalf("%s %s: Server header %q, want %q", c.method, c.path, sv, serverHeader)
		}
	}
}

// Every JSON response — success and every error path — carries the
// Server header and the charset-qualified JSON content type.
func TestJSONResponseHeaders(t *testing.T) {
	s, _ := liveTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	check := func(what string, resp *http.Response) {
		t.Helper()
		if ct := resp.Header.Get("Content-Type"); ct != jsonContentType {
			t.Errorf("%s: content type %q, want %q", what, ct, jsonContentType)
		}
		if sv := resp.Header.Get("Server"); sv != serverHeader {
			t.Errorf("%s: Server header %q, want %q", what, sv, serverHeader)
		}
	}

	// Success paths.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	check("GET /healthz 200", hresp)
	resp, _ := post(t, ts, "/search/range", map[string]interface{}{
		"fingerprint": []int{1, 2, 3, 4}, "epsilon": 1.0})
	check("search 200", resp)

	// Error paths: malformed JSON (400), bad fingerprint (400), bad
	// video id (400).
	resp, _ = postRaw(t, ts, "/search/statistical", `{`)
	check("malformed JSON 400", resp)
	resp, _ = post(t, ts, "/search/knn", map[string]interface{}{
		"fingerprint": []int{1}, "k": 3})
	check("bad fingerprint 400", resp)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/video/not-a-number", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	check("bad video id 400", dresp)
}

// A degraded index answers writes with 503 + Retry-After while searches
// and /healthz (now reporting the failure) keep working.
func TestDegradedWrites503(t *testing.T) {
	var failing atomic.Bool
	ffs := faultfs.New(store.OSFS, func(op faultfs.Op, _ string, _ int) faultfs.Action {
		if failing.Load() && op == faultfs.OpCreate {
			return faultfs.Fail
		}
		return faultfs.Pass
	})
	curve := hilbert.MustNew(4, 5)
	li, err := core.OpenLiveIndex(curve, t.TempDir(), core.LiveOptions{
		Depth:           10,
		MemtableRecords: 4,
		FS:              ffs,
		RetryBackoff:    time.Millisecond,
		RetryLimit:      1, // first persistence failure trips degraded mode
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { li.Close() })
	ts := httptest.NewServer(NewLive(li, Options{}))
	defer ts.Close()

	failing.Store(true)
	// Over-threshold ingest: the batch is accepted (202-style semantics:
	// the response is 200, records are query-visible) but the seal fails,
	// tripping degraded mode with RetryLimit 1.
	fps := [][]int{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}, {2, 2, 2, 2}}
	if resp, out := post(t, ts, "/ingest", ingestBody(7, fps...)); resp.StatusCode != http.StatusOK {
		t.Fatalf("tripping ingest: status %d: %v", resp.StatusCode, out)
	}

	resp, out := post(t, ts, "/ingest", ingestBody(8, []int{3, 3, 3, 3}))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded ingest: status %d, want 503: %v", resp.StatusCode, out)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("degraded 503 lacks a Retry-After header")
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "degraded") {
		t.Fatalf("degraded 503 error %q does not name the condition", msg)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/video/7", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded delete: status %d, want 503", dresp.StatusCode)
	}
	if dresp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded delete 503 lacks a Retry-After header")
	}

	// Reads still serve the published snapshot.
	if resp, out := post(t, ts, "/search/range", map[string]interface{}{
		"fingerprint": []int{1, 2, 3, 4}, "epsilon": 0.5}); resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded search: status %d: %v", resp.StatusCode, out)
	} else if n := len(out["matches"].([]interface{})); n != 1 {
		t.Fatalf("degraded search found %d matches, want 1", n)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]interface{}
	err = json.NewDecoder(hresp.Body).Decode(&health)
	hresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health["status"] != "degraded" || health["degraded"] != true {
		t.Fatalf("degraded healthz %v", health)
	}
	if msg, _ := health["lastPersistErr"].(string); msg == "" {
		t.Fatalf("degraded healthz lacks lastPersistErr: %v", health)
	}
	if health["persistFailures"].(float64) == 0 {
		t.Fatalf("degraded healthz reports no persistence failures: %v", health)
	}

	// Heal the storage: the retry loop commits, writes resume.
	failing.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for li.Stats().Degraded || li.Stats().Dirty {
		if time.Now().After(deadline) {
			t.Fatalf("index never healed: %+v", li.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if resp, out := post(t, ts, "/ingest", ingestBody(8, []int{3, 3, 3, 3})); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-heal ingest: status %d: %v", resp.StatusCode, out)
	}
	hresp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health = map[string]interface{}{}
	err = json.NewDecoder(hresp.Body).Decode(&health)
	hresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["lastPersistErr"] != "" {
		t.Fatalf("healed healthz still reports failure state: %v", health)
	}
}
