package experiments

import (
	"fmt"
	"io"

	"s3cbcd/internal/hilbert"
)

func init() {
	register(Experiment{
		ID: "fig2",
		Title: "Figure 2: space partition induced by the Hilbert curve for D=2, K=4 " +
			"at depths p=3,4,5",
		Run: runFig2,
	})
}

func runFig2(w io.Writer, _ Scale, _ int64) error {
	c := hilbert.MustNew(2, 4)
	side := int(c.SideLen())
	for _, p := range []int{3, 4, 5} {
		grid := make([][]int, side)
		for y := range grid {
			grid[y] = make([]int, side)
		}
		id := 0
		c.Descend(p, nil, func(b hilbert.Block) bool {
			for y := b.Lo[1]; y < b.Hi[1]; y++ {
				for x := b.Lo[0]; x < b.Hi[0]; x++ {
					grid[y][x] = id
				}
			}
			id++
			return true
		})
		fmt.Fprintf(w, "# p = %d (%d blocks, block ids shown base-36, y grows downward)\n", p, id)
		for y := side - 1; y >= 0; y-- {
			for x := 0; x < side; x++ {
				fmt.Fprintf(w, "%c", digit36(grid[y][x]))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "# Every depth yields hyper-rectangular blocks of equal volume;\n")
	fmt.Fprintf(w, "# odd depths give 2:1 rectangles, even depths give squares.\n")
	return nil
}

func digit36(v int) rune {
	const digits = "0123456789abcdefghijklmnopqrstuvwxyz"
	return rune(digits[v%36])
}
