package obs

import (
	"sync"
	"testing"
)

func TestWindowQuantileEmpty(t *testing.T) {
	w := NewWindow(8)
	if got := w.Quantile(0.5); got != 0 {
		t.Fatalf("empty window quantile = %v, want 0", got)
	}
	if w.Count() != 0 {
		t.Fatalf("empty window count = %d", w.Count())
	}
}

func TestWindowQuantileExact(t *testing.T) {
	w := NewWindow(10)
	for _, v := range []float64{5, 1, 9, 3, 7} {
		w.Observe(v)
	}
	if w.Count() != 5 {
		t.Fatalf("count = %d, want 5", w.Count())
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.2, 3}, {0.5, 5}, {0.9, 9}, {1, 9},
		{-1, 1}, {2, 9}, // clamped
	}
	for _, c := range cases {
		if got := w.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// The window forgets: once the ring wraps, only the most recent size
// observations shape the quantile — a slow past must not linger.
func TestWindowEvictsOldest(t *testing.T) {
	w := NewWindow(4)
	for i := 0; i < 4; i++ {
		w.Observe(1000) // slow era
	}
	for i := 0; i < 4; i++ {
		w.Observe(1) // recovered
	}
	if got := w.Quantile(0.99); got != 1 {
		t.Fatalf("p99 after recovery = %v, want 1 (old slow samples must be evicted)", got)
	}
	if w.Count() != 4 {
		t.Fatalf("count = %d, want 4", w.Count())
	}
}

func TestWindowDefaultSize(t *testing.T) {
	w := NewWindow(0)
	for i := 0; i < DefaultWindowSize+10; i++ {
		w.Observe(float64(i))
	}
	if w.Count() != DefaultWindowSize {
		t.Fatalf("count = %d, want %d", w.Count(), DefaultWindowSize)
	}
}

// Concurrent observers and readers must not race (run under -race via
// the obs package's RACE_PKGS membership).
func TestWindowConcurrent(t *testing.T) {
	w := NewWindow(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				w.Observe(float64(g*1000 + i))
				_ = w.Quantile(0.9)
			}
		}(g)
	}
	wg.Wait()
	if w.Count() != 32 {
		t.Fatalf("count = %d, want 32", w.Count())
	}
}
