package fingerprint

import (
	"math"

	"s3cbcd/internal/vidsim"
)

// ExtractGlobal computes one *global* fingerprint per key-frame: a
// quantized intensity histogram plus whole-frame statistics. This is the
// kind of frame-level signature of the video-fingerprinting literature
// the paper positions itself against ([2], [4]): cheap and effective for
// photometric changes, but structurally unable to survive the shifting
// and inserting operations frequent in TV post-production, because the
// whole frame is the measurement support. It is provided as the baseline
// of the local-vs-global motivation experiment (cmd/s3bench -exp global)
// and reuses the Local carrier (position = frame center) so the same
// index and voting strategy run unchanged.
//
// Layout of the D = 20 components:
//
//	0..15  16-bin intensity histogram, each bin's population fraction
//	       mapped to a byte
//	16     mean intensity / 255
//	17     intensity standard deviation (scaled)
//	18     mean absolute horizontal gradient (scaled)
//	19     mean absolute vertical gradient (scaled)
func ExtractGlobal(seq *vidsim.Sequence, cfg Config) []Local {
	cfg = cfg.withDefaults()
	var out []Local
	for _, t := range Keyframes(seq, cfg.KeyframeSigma) {
		f := seq.Frames[t]
		out = append(out, Local{
			FP: globalDescriptor(f),
			TC: uint32(t),
			X:  float64(f.W) / 2,
			Y:  float64(f.H) / 2,
		})
	}
	return out
}

// globalDescriptor computes the 20-component frame signature.
func globalDescriptor(f *vidsim.Frame) Fingerprint {
	var fp Fingerprint
	n := float64(len(f.Pix))

	var histo [16]float64
	var sum, sumSq float64
	for _, v := range f.Pix {
		b := int(v) / 16
		if b > 15 {
			b = 15
		}
		histo[b]++
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	for i, h := range histo {
		// Fractions rarely exceed ~1/4 on natural content; scale by 4 for
		// resolution and clamp.
		q := h / n * 4 * 255
		if q > 255 {
			q = 255
		}
		fp[i] = byte(q)
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	fp[16] = quantizeScaled(mean, 255)
	fp[17] = quantizeScaled(math.Sqrt(variance), 128)

	var gx, gy float64
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			gx += math.Abs(float64(f.At(x+1, y)) - float64(f.At(x-1, y)))
			gy += math.Abs(float64(f.At(x, y+1)) - float64(f.At(x, y-1)))
		}
	}
	fp[18] = quantizeScaled(gx/n, 64)
	fp[19] = quantizeScaled(gy/n, 64)
	return fp
}

// quantizeScaled maps v in [0, scale] to a byte with clamping.
func quantizeScaled(v, scale float64) byte {
	q := v / scale * 255
	if q < 0 {
		q = 0
	}
	if q > 255 {
		q = 255
	}
	return byte(q)
}
