package experiments

import (
	"fmt"
	"io"

	"s3cbcd/internal/cbcd"
	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/vidsim"
	"s3cbcd/internal/vote"
)

func init() {
	register(Experiment{
		ID: "spatial",
		Title: "Extension (§VI future work): spatially extended voting — vote counts " +
			"of true copies vs best false identifier, temporal-only vs temporal+spatial",
		Run: runSpatial,
	})
}

// runSpatial quantifies the discriminance gain of extending the vote's
// estimation step to interest point positions, the paper's second stated
// future work. True copies stay coherent under a per-axis linear position
// model; accidentally time-coherent matches rarely are.
func runSpatial(w io.Writer, sc Scale, seed int64) error {
	nRefs, refLen, nClips, clipLen := 6, 220, 6, 110
	if sc == Full {
		nRefs, refLen, nClips, clipLen = 12, 300, 12, 250
	}
	refs := VideoCorpus(nRefs, refLen, seed)
	in := cbcd.NewIndexer(cbcd.DefaultConfig())
	for i, seq := range refs {
		in.AddSequence(uint32(i+1), seq)
	}
	in.AddRecords(FPCorpus(20000, seed^0xAB))
	det, err := in.Build()
	if err != nil {
		return err
	}

	tfs := []struct {
		name string
		tf   vidsim.Transform
	}{
		{"exact", vidsim.Identity{}},
		{"resize 0.8", vidsim.Resize{Scale: 0.8}},
		{"shift 15%", vidsim.VShift{Frac: 0.15}},
		{"gamma 1.8", vidsim.Gamma{G: 1.8}},
	}
	configs := []struct {
		name string
		cfg  vote.Config
	}{
		{"temporal", vote.DefaultConfig()},
		{"temporal+spatial", func() vote.Config {
			c := vote.DefaultConfig()
			c.SpatialTolerance = 6
			return c
		}()},
	}

	// True-copy vote counts, averaged over clips.
	fmt.Fprintf(w, "# Spatial voting ablation — DB = %d fingerprints, %d clips of %d frames\n",
		det.Index().DB().Len(), nClips, clipLen)
	fmt.Fprintf(w, "%-14s", "")
	for _, cc := range configs {
		fmt.Fprintf(w, " %18s", cc.name)
	}
	fmt.Fprintln(w)
	for _, tc := range tfs {
		fmt.Fprintf(w, "%-14s", tc.name)
		for _, cc := range configs {
			total, n := 0, 0
			for ci := 0; ci < nClips; ci++ {
				refIdx := ci % nRefs
				start := 10 + (7*ci)%(refLen-clipLen-9)
				clip := &vidsim.Sequence{FPS: refs[refIdx].FPS,
					Frames: refs[refIdx].Frames[start : start+clipLen]}
				clip = vidsim.ApplySeq(tc.tf, clip)
				cands, err := det.SearchLocals(fingerprint.Extract(clip, det.Config().Fingerprint))
				if err != nil {
					return err
				}
				for _, d := range vote.Score(cands, cc.cfg) {
					if d.ID == uint32(refIdx+1) {
						total += d.Votes
						n++
						break
					}
				}
			}
			avg := 0.0
			if n > 0 {
				avg = float64(total) / float64(n)
			}
			fmt.Fprintf(w, " %18.1f", avg)
		}
		fmt.Fprintln(w)
	}

	// False-identifier vote counts on unrelated clips.
	fmt.Fprintf(w, "%-14s", "best false id")
	for _, cc := range configs {
		falseMax := 0
		for k := 0; k < 4; k++ {
			clip := vidsim.Generate(vidsim.DefaultConfig(seed^int64(60000+k)), clipLen)
			cands, err := det.SearchLocals(fingerprint.Extract(clip, det.Config().Fingerprint))
			if err != nil {
				return err
			}
			for _, d := range vote.Score(cands, cc.cfg) {
				if d.Votes > falseMax {
					falseMax = d.Votes
				}
				break // scores are sorted; only the top matters
			}
		}
		fmt.Fprintf(w, " %18d", falseMax)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "# Expected: true-copy votes barely change; the best false identifier's\n")
	fmt.Fprintf(w, "# votes collapse, widening the decision margin — the discriminance\n")
	fmt.Fprintf(w, "# improvement the paper anticipates from spatial estimation.\n")
	return nil
}
