module s3cbcd

go 1.22
