package core

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/stat"
	"s3cbcd/internal/store"
)

// testDB builds a database of n random fingerprints in [0,256)^dims.
func testDB(t *testing.T, dims, n int, seed int64) *store.DB {
	t.Helper()
	curve := hilbert.MustNew(dims, 8)
	r := rand.New(rand.NewSource(seed))
	recs := make([]store.Record, n)
	for i := range recs {
		fp := make([]byte, dims)
		for j := range fp {
			fp[j] = byte(r.Intn(256))
		}
		recs[i] = store.Record{FP: fp, ID: uint32(i % 64), TC: uint32(i)}
	}
	return store.MustBuild(curve, recs)
}

// distortedQuery picks a random record and adds N(0,sigma) per component,
// clamped and quantized, returning the query and the record index.
func distortedQuery(r *rand.Rand, db *store.DB, sigma float64) ([]byte, int) {
	i := r.Intn(db.Len())
	fp := db.FP(i)
	q := make([]byte, len(fp))
	for j, b := range fp {
		v := float64(b) + r.NormFloat64()*sigma
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		q[j] = byte(math.Round(v))
	}
	return q, i
}

func TestStatQueryRetrievalRateMatchesAlpha(t *testing.T) {
	db := testDB(t, 8, 3000, 1)
	ix, err := NewIndex(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	const sigma = 12.0
	for _, alpha := range []float64{0.5, 0.8, 0.95} {
		sq := StatQuery{Alpha: alpha, Model: IsoNormal{D: 8, Sigma: sigma}}
		hits, trials := 0, 250
		for k := 0; k < trials; k++ {
			q, want := distortedQuery(r, db, sigma)
			matches, plan, err := ix.SearchStat(q, sq)
			if err != nil {
				t.Fatal(err)
			}
			if plan.Mass < alpha-1e-9 {
				t.Fatalf("alpha=%v: plan mass %v below alpha", alpha, plan.Mass)
			}
			for _, m := range matches {
				if m.Pos == want {
					hits++
					break
				}
			}
		}
		rate := float64(hits) / float64(trials)
		// Clamping at the byte range boundaries and quantization make the
		// true distortion differ slightly from the model; allow 8 points.
		if rate < alpha-0.08 {
			t.Errorf("alpha=%v: retrieval rate %v", alpha, rate)
		}
	}
}

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	db := testDB(t, 6, 1500, 3)
	ix, err := NewIndex(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		q, _ := distortedQuery(r, db, 15)
		eps := 20 + r.Float64()*80
		matches, _, err := ix.SearchRange(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		got := map[int]bool{}
		for _, m := range matches {
			got[m.Pos] = true
			if math.Abs(m.Dist-distTo(q, db.FP(m.Pos))) > 1e-9 {
				t.Fatalf("match distance wrong")
			}
		}
		for i := 0; i < db.Len(); i++ {
			want := distTo(q, db.FP(i)) <= eps
			if want != got[i] {
				t.Fatalf("trial %d eps=%v record %d: brute=%v index=%v", trial, eps, i, want, got[i])
			}
		}
	}
}

func distTo(q, fp []byte) float64 {
	s := 0.0
	for i := range q {
		d := float64(q[i]) - float64(fp[i])
		s += d * d
	}
	return math.Sqrt(s)
}

func TestStatPlanIntervalsSortedDisjoint(t *testing.T) {
	db := testDB(t, 8, 500, 5)
	ix, _ := NewIndex(db, 0)
	r := rand.New(rand.NewSource(6))
	sq := StatQuery{Alpha: 0.9, Model: IsoNormal{D: 8, Sigma: 15}}
	for trial := 0; trial < 20; trial++ {
		q, _ := distortedQuery(r, db, 15)
		plan, err := ix.PlanStat(q, sq)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Blocks == 0 || len(plan.Intervals) == 0 {
			t.Fatal("empty plan")
		}
		for i, iv := range plan.Intervals {
			if !iv.Start.Less(iv.End) {
				t.Fatalf("interval %d empty or inverted", i)
			}
			if i > 0 && plan.Intervals[i-1].End.Cmp(iv.Start) >= 0 {
				t.Fatalf("intervals %d,%d overlap or touch (should be merged)", i-1, i)
			}
		}
		if plan.FilterIters < 1 || plan.FilterIters > maxThresholdIters {
			t.Fatalf("FilterIters = %d", plan.FilterIters)
		}
		if plan.Threshold <= 0 {
			t.Fatalf("Threshold = %v", plan.Threshold)
		}
	}
}

func TestPlanStatExactIsMinimal(t *testing.T) {
	db := testDB(t, 6, 400, 7)
	ix, _ := NewIndex(db, 12)
	r := rand.New(rand.NewSource(8))
	sq := StatQuery{Alpha: 0.85, Model: IsoNormal{D: 6, Sigma: 10}}
	for trial := 0; trial < 15; trial++ {
		q, _ := distortedQuery(r, db, 10)
		exact, err := ix.PlanStatExact(q, sq)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := ix.PlanStat(q, sq)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Mass < sq.Alpha {
			t.Fatalf("exact mass %v below alpha", exact.Mass)
		}
		// The threshold search may select slightly more blocks than the
		// exact minimum, never fewer.
		if approx.Blocks < exact.Blocks {
			t.Fatalf("approx selected %d blocks, exact minimum is %d", approx.Blocks, exact.Blocks)
		}
		if float64(approx.Blocks) > 3*float64(exact.Blocks)+8 {
			t.Fatalf("approx wildly larger than exact: %d vs %d", approx.Blocks, exact.Blocks)
		}
	}
}

func TestStatQueryMassGrowsWithAlpha(t *testing.T) {
	db := testDB(t, 8, 300, 9)
	ix, _ := NewIndex(db, 0)
	q, _ := distortedQuery(rand.New(rand.NewSource(10)), db, 12)
	prevBlocks := 0
	for _, alpha := range []float64{0.3, 0.6, 0.9, 0.99} {
		plan, err := ix.PlanStat(q, StatQuery{Alpha: alpha, Model: IsoNormal{D: 8, Sigma: 12}})
		if err != nil {
			t.Fatal(err)
		}
		if plan.Blocks < prevBlocks {
			t.Fatalf("alpha=%v: blocks shrank from %d to %d", alpha, prevBlocks, plan.Blocks)
		}
		prevBlocks = plan.Blocks
	}
}

func TestPseudoDiskMatchesInMemory(t *testing.T) {
	db := testDB(t, 8, 2000, 11)
	path := filepath.Join(t.TempDir(), "db.s3db")
	if err := db.WriteFile(path, 10); err != nil {
		t.Fatal(err)
	}
	fl, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	ix, _ := NewIndex(db, 0)
	di, err := NewDiskIndex(fl, ix.Depth())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(12))
	sq := StatQuery{Alpha: 0.8, Model: IsoNormal{D: 8, Sigma: 10}}
	queries := make([][]byte, 30)
	for i := range queries {
		queries[i], _ = distortedQuery(r, db, 10)
	}
	for _, budget := range []int{50, 400, 5000} {
		results, stats, err := di.SearchStatBatch(queries, sq, budget)
		if err != nil {
			t.Fatal(err)
		}
		if stats.MaxResident > budget && stats.SectionBits < fl.SectionBits() {
			t.Fatalf("budget %d: resident %d with spare granularity", budget, stats.MaxResident)
		}
		for qi, q := range queries {
			want, _, err := ix.SearchStat(q, sq)
			if err != nil {
				t.Fatal(err)
			}
			if !sameMatches(want, results[qi]) {
				t.Fatalf("budget %d query %d: disk results differ from memory (%d vs %d)",
					budget, qi, len(results[qi]), len(want))
			}
		}
	}
}

func sameMatches(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	ap := make([]int, len(a))
	bp := make([]int, len(b))
	for i := range a {
		ap[i], bp[i] = a[i].Pos, b[i].Pos
	}
	sort.Ints(ap)
	sort.Ints(bp)
	for i := range ap {
		if ap[i] != bp[i] {
			return false
		}
	}
	return true
}

func TestChooseSectionBits(t *testing.T) {
	db := testDB(t, 6, 1000, 13)
	path := filepath.Join(t.TempDir(), "db.s3db")
	if err := db.WriteFile(path, 8); err != nil {
		t.Fatal(err)
	}
	fl, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	di, _ := NewDiskIndex(fl, 0)
	if bits := di.ChooseSectionBits(1000); bits != 0 {
		t.Fatalf("everything fits: bits = %d", bits)
	}
	if bits := di.ChooseSectionBits(1); bits != 8 {
		t.Fatalf("impossible budget should cap at table granularity: %d", bits)
	}
	bits := di.ChooseSectionBits(100)
	maxSec := 0
	for s := 0; s < 1<<uint(bits); s++ {
		lo, hi := fl.SectionRecordRange(bits, s)
		if hi-lo > maxSec {
			maxSec = hi - lo
		}
	}
	if maxSec > 100 {
		t.Fatalf("chosen bits %d still has section of %d records", bits, maxSec)
	}
}

func TestSweepAndTuneDepth(t *testing.T) {
	db := testDB(t, 8, 4000, 14)
	ix, _ := NewIndex(db, 0)
	r := rand.New(rand.NewSource(15))
	samples := make([][]byte, 8)
	for i := range samples {
		samples[i], _ = distortedQuery(r, db, 10)
	}
	sq := StatQuery{Alpha: 0.8, Model: IsoNormal{D: 8, Sigma: 10}}
	sweep, err := ix.SweepDepth([]int{6, 10, 14}, samples, sq)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 3 {
		t.Fatalf("sweep len %d", len(sweep))
	}
	for _, dt := range sweep {
		if dt.Total != dt.Filter+dt.Refine {
			t.Fatalf("timing decomposition broken at p=%d", dt.Depth)
		}
		if dt.Blocks <= 0 || dt.Scanned < 0 {
			t.Fatalf("bad counters at p=%d: %+v", dt.Depth, dt)
		}
	}
	// Deeper partitions are more selective: scanned records decrease.
	if sweep[2].Scanned > sweep[0].Scanned {
		t.Fatalf("deeper partition scanned more: %v vs %v", sweep[2].Scanned, sweep[0].Scanned)
	}
	tuned, err := ix.TuneDepth([]int{6, 10, 14}, samples, sq)
	if err != nil {
		t.Fatal(err)
	}
	best := tuned[0]
	for _, dt := range tuned[1:] {
		if dt.Total < best.Total {
			best = dt
		}
	}
	if ix.Depth() != best.Depth {
		t.Fatalf("TuneDepth set %d, best was %d", ix.Depth(), best.Depth)
	}
}

func TestValidationErrors(t *testing.T) {
	db := testDB(t, 6, 50, 16)
	ix, _ := NewIndex(db, 0)
	q := make([]byte, 6)
	if _, err := ix.PlanStat(q, StatQuery{Alpha: 0, Model: IsoNormal{D: 6, Sigma: 5}}); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := ix.PlanStat(q, StatQuery{Alpha: 1.2, Model: IsoNormal{D: 6, Sigma: 5}}); err == nil {
		t.Error("alpha>1 accepted")
	}
	if _, err := ix.PlanStat(q, StatQuery{Alpha: 0.5, Model: nil}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := ix.PlanStat(q, StatQuery{Alpha: 0.5, Model: IsoNormal{D: 4, Sigma: 5}}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := ix.PlanStat(make([]byte, 3), StatQuery{Alpha: 0.5, Model: IsoNormal{D: 6, Sigma: 5}}); err == nil {
		t.Error("short query accepted")
	}
	if _, err := ix.PlanRange(q, -1); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := NewIndex(db, 1000); err == nil {
		t.Error("oversized depth accepted")
	}
	if _, err := ix.SweepDepth([]int{2}, nil, StatQuery{Alpha: 0.5, Model: IsoNormal{D: 6, Sigma: 5}}); err == nil {
		t.Error("empty samples accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetDepth(0) should panic")
			}
		}()
		ix.SetDepth(0)
	}()
}

func TestDiagNormalModel(t *testing.T) {
	m := DiagNormal{Sigmas: []float64{5, 10}}
	if m.Dims() != 2 {
		t.Fatal("dims")
	}
	a := m.ComponentMass(0, -5, 5)
	b := m.ComponentMass(1, -10, 10)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("scaled masses differ: %v %v", a, b)
	}
	iso := IsoNormal{D: 20, Sigma: 20}
	rd := iso.Radius()
	if rd.D != 20 || rd.Sigma != 20 {
		t.Fatal("Radius passthrough")
	}
	if got := iso.ComponentMass(3, math.Inf(-1), math.Inf(1)); got != 1 {
		t.Fatalf("full mass %v", got)
	}
}

func TestBlockMassEdgeExtension(t *testing.T) {
	m := IsoNormal{D: 2, Sigma: 50}
	// Query at the corner: the corner block must absorb the tail mass, so
	// the four quadrant blocks at depth 2 of a 2-D grid sum to 1.
	q := []float64{0, 0}
	lo1 := []uint32{0, 0}
	mid := []uint32{128, 128}
	hi1 := []uint32{256, 256}
	total := blockMass(m, q, lo1, mid, 256, 0) +
		blockMass(m, q, []uint32{128, 0}, []uint32{256, 128}, 256, 0) +
		blockMass(m, q, []uint32{0, 128}, []uint32{128, 256}, 256, 0) +
		blockMass(m, q, mid, hi1, 256, 0)
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("quadrant masses sum to %v", total)
	}
	// Early-exit floor: must return a value <= floor when pruned.
	if v := blockMass(m, []float64{128, 128}, []uint32{0, 0}, []uint32{1, 1}, 256, 0.5); v > 0.5 {
		t.Fatalf("floored mass %v", v)
	}
}

func TestStatRetrievalBeatsMatchedRangeQueryTime(t *testing.T) {
	// Qualitative Section V-A check at test scale: for matched
	// expectation, the statistical plan touches far fewer blocks than the
	// geometric plan.
	db := testDB(t, 12, 2000, 17)
	ix, _ := NewIndex(db, 0)
	r := rand.New(rand.NewSource(18))
	const sigma = 12.0
	model := IsoNormal{D: 12, Sigma: sigma}
	eps := model.Radius().Quantile(0.8)
	var statBlocks, rangeBlocks float64
	for trial := 0; trial < 10; trial++ {
		q, _ := distortedQuery(r, db, sigma)
		sp, err := ix.PlanStat(q, StatQuery{Alpha: 0.8, Model: model})
		if err != nil {
			t.Fatal(err)
		}
		rp, err := ix.PlanRange(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		statBlocks += float64(sp.Blocks)
		rangeBlocks += float64(rp.Blocks)
	}
	if statBlocks >= rangeBlocks {
		t.Fatalf("statistical query selected %v blocks, range query %v — expected fewer", statBlocks, rangeBlocks)
	}
}

func TestDefaultDepth(t *testing.T) {
	c := hilbert.MustNew(20, 8)
	if DefaultDepth(c, 0) != 1 || DefaultDepth(c, 1) != 1 {
		t.Fatal("tiny n")
	}
	if d := DefaultDepth(c, 1<<20); d < 20 || d > 22 {
		t.Fatalf("DefaultDepth(1M) = %d", d)
	}
	small := hilbert.MustNew(2, 2)
	if d := DefaultDepth(small, 1<<30); d != 4 {
		t.Fatalf("cap at index bits: %d", d)
	}
}

func TestRadiusQuantileConsistencyWithStatPkg(t *testing.T) {
	m := IsoNormal{D: 20, Sigma: 20}
	want := stat.RadiusDist{D: 20, Sigma: 20}.Quantile(0.8)
	if got := m.Radius().Quantile(0.8); got != want {
		t.Fatalf("quantile mismatch %v %v", got, want)
	}
}
