package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
)

// TraceStore is the bounded in-memory home of finished trace reports,
// served at /debug/traces on a -debug-addr. Three views implement tail
// sampling — the decision of what to keep is made after the query
// finishes, when its latency and outcome are known:
//
//   - recent: a ring of the last N finished traces, whatever they were;
//   - slowest: the top K by total duration, so the interesting tail
//     survives long after the ring has churned past it;
//   - errors: a ring of the last traces that finished failed.
//
// Everything is fixed-size at construction; a query burst evicts (and
// counts evictions) rather than growing.
type TraceStore struct {
	mu         sync.Mutex
	recent     []TraceReport
	recentNext int
	recentN    int
	slow       []TraceReport // unordered; minimum replaced on insert
	errs       []TraceReport
	errsNext   int
	errsN      int

	evictions *Counter
}

// NewTraceStore returns a store keeping size recent traces (minimum 8;
// 0 means the default of 128) plus size/4 slowest and size/4 errored
// ones.
func NewTraceStore(size int) *TraceStore {
	if size <= 0 {
		size = 128
	}
	if size < 8 {
		size = 8
	}
	tail := size / 4
	return &TraceStore{
		recent:    make([]TraceReport, 0, size),
		slow:      make([]TraceReport, 0, tail),
		errs:      make([]TraceReport, 0, tail),
		evictions: NewCounter("s3_trace_store_evictions_total", "finished traces evicted from the debug trace store's bounded views"),
	}
}

// RegisterMetrics publishes the store's eviction counter and the
// package-wide tracing health counters into reg. Call at most once per
// registry.
func (s *TraceStore) RegisterMetrics(reg *Registry) {
	if s == nil || reg == nil {
		return
	}
	reg.MustRegister(s.evictions)
	reg.CounterFunc("s3_trace_spans_total", "trace spans started, process-wide", spansStarted.Load)
	reg.CounterFunc("s3_trace_spans_dropped_total", "trace spans dropped at the per-trace span cap", spansDropped.Load)
	reg.CounterFunc("s3_trace_assembly_failures_total", "backend trace reports that failed to decode during assembly", assemblyFailures.Load)
}

// Add files a finished trace report into every view it qualifies for.
func (s *TraceStore) Add(rep TraceReport) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertRing(&s.recent, &s.recentNext, &s.recentN, cap(s.recent), rep)
	if rep.Error != "" {
		s.insertRing(&s.errs, &s.errsNext, &s.errsN, cap(s.errs), rep)
	}
	if cap(s.slow) > 0 {
		if len(s.slow) < cap(s.slow) {
			s.slow = append(s.slow, rep)
		} else {
			min := 0
			for i := 1; i < len(s.slow); i++ {
				if s.slow[i].TotalMicros < s.slow[min].TotalMicros {
					min = i
				}
			}
			if rep.TotalMicros > s.slow[min].TotalMicros {
				s.slow[min] = rep
				s.evictions.Inc()
			}
		}
	}
}

func (s *TraceStore) insertRing(ring *[]TraceReport, next, count *int, size int, rep TraceReport) {
	if size == 0 {
		return
	}
	if len(*ring) < size {
		*ring = append(*ring, rep)
		*next = len(*ring) % size
		*count++
		return
	}
	(*ring)[*next] = rep
	*next = (*next + 1) % size
	*count++
	s.evictions.Inc()
}

// Snapshot returns up to n traces of the requested view ("recent",
// "errors" or "slowest"), newest first for the rings and slowest first
// for the tail view.
func (s *TraceStore) Snapshot(view string, n int) []TraceReport {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []TraceReport
	switch view {
	case "slowest":
		out = append(out, s.slow...)
		for i := 1; i < len(out); i++ { // insertion sort, K is small
			for j := i; j > 0 && out[j].TotalMicros > out[j-1].TotalMicros; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
	case "errors":
		out = ringNewestFirst(s.errs, s.errsNext)
	default:
		out = ringNewestFirst(s.recent, s.recentNext)
	}
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

func ringNewestFirst(ring []TraceReport, next int) []TraceReport {
	out := make([]TraceReport, 0, len(ring))
	for i := 0; i < len(ring); i++ {
		out = append(out, ring[(next-1-i+2*len(ring))%len(ring)])
	}
	return out
}

// Handler serves the store as JSON: GET /debug/traces?view=recent|
// slowest|errors&n=N caps the count (default 32).
func (s *TraceStore) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		view := r.URL.Query().Get("view")
		switch view {
		case "", "recent":
			view = "recent"
		case "slowest", "errors":
		default:
			http.Error(w, `{"error":"view must be recent, slowest or errors"}`, http.StatusBadRequest)
			return
		}
		n := 32
		if v := r.URL.Query().Get("n"); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil || parsed <= 0 {
				http.Error(w, `{"error":"n must be a positive integer"}`, http.StatusBadRequest)
				return
			}
			n = parsed
		}
		traces := s.Snapshot(view, n)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"view": view, "count": len(traces), "traces": traces})
	})
}
