package fingerprint

import (
	"sort"

	"s3cbcd/internal/vidsim"
)

// HarrisPoints detects interest points in a frame with the Harris corner
// detector (the paper uses Schmid & Mohr's improved variant; we implement
// the standard Gaussian-scale formulation: gradients at GradientSigma,
// structure tensor integrated at IntegrationSigma, response
// R = det(M) - k tr(M)², 3x3 non-maximum suppression, relative response
// threshold, at most MaxPoints strongest points, in decreasing response
// order).
func HarrisPoints(f *vidsim.Frame, cfg Config) []Point {
	cfg = cfg.withDefaults()
	s := smoothFrame(f, cfg.GradientSigma)

	w, h := f.W, f.H
	ixx := make([]float64, w*h)
	iyy := make([]float64, w*h)
	ixy := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			gx := (float64(s.At(x+1, y)) - float64(s.At(x-1, y))) / 2
			gy := (float64(s.At(x, y+1)) - float64(s.At(x, y-1))) / 2
			i := y*w + x
			ixx[i] = gx * gx
			iyy[i] = gy * gy
			ixy[i] = gx * gy
		}
	}
	ixxS := smoothPlane(ixx, w, h, cfg.IntegrationSigma)
	iyyS := smoothPlane(iyy, w, h, cfg.IntegrationSigma)
	ixyS := smoothPlane(ixy, w, h, cfg.IntegrationSigma)

	resp := make([]float64, w*h)
	maxR := 0.0
	for i := range resp {
		a, b, c := ixxS[i], iyyS[i], ixyS[i]
		r := a*b - c*c - cfg.HarrisK*(a+b)*(a+b)
		resp[i] = r
		if r > maxR {
			maxR = r
		}
	}
	if maxR <= 0 {
		return nil
	}
	thresh := cfg.ResponseFrac * maxR

	var pts []Point
	bd := cfg.Border
	for y := bd; y < h-bd; y++ {
		for x := bd; x < w-bd; x++ {
			r := resp[y*w+x]
			if r < thresh {
				continue
			}
			// 3x3 non-maximum suppression; ties broken toward the
			// lexicographically first pixel so a plateau yields one point.
			best := true
			for dy := -1; dy <= 1 && best; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					n := resp[(y+dy)*w+(x+dx)]
					if n > r || (n == r && (dy < 0 || (dy == 0 && dx < 0))) {
						best = false
						break
					}
				}
			}
			if best {
				pts = append(pts, Point{X: float64(x), Y: float64(y), Response: r})
			}
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Response != pts[j].Response {
			return pts[i].Response > pts[j].Response
		}
		if pts[i].Y != pts[j].Y {
			return pts[i].Y < pts[j].Y
		}
		return pts[i].X < pts[j].X
	})
	if len(pts) > cfg.MaxPoints {
		pts = pts[:cfg.MaxPoints]
	}
	return pts
}

// smoothPlane is smoothFrame for float64 planes.
func smoothPlane(p []float64, w, h int, sigma float64) []float64 {
	k := gaussKernel(sigma)
	r := len(k) / 2
	tmp := make([]float64, len(p))
	clampW := func(x int) int {
		if x < 0 {
			return 0
		}
		if x >= w {
			return w - 1
		}
		return x
	}
	clampH := func(y int) int {
		if y < 0 {
			return 0
		}
		if y >= h {
			return h - 1
		}
		return y
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := 0.0
			for j := -r; j <= r; j++ {
				s += k[j+r] * p[y*w+clampW(x+j)]
			}
			tmp[y*w+x] = s
		}
	}
	out := make([]float64, len(p))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := 0.0
			for j := -r; j <= r; j++ {
				s += k[j+r] * tmp[clampH(y+j)*w+x]
			}
			out[y*w+x] = s
		}
	}
	return out
}
