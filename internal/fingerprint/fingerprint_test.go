package fingerprint

import (
	"math"
	"testing"

	"s3cbcd/internal/vidsim"
)

func TestQuantize(t *testing.T) {
	if Quantize(-1) != 0 || Quantize(1) != 255 {
		t.Fatalf("endpoints: %d %d", Quantize(-1), Quantize(1))
	}
	if q := Quantize(0); q != 127 && q != 128 {
		t.Fatalf("Quantize(0) = %d", q)
	}
	if Quantize(-5) != 0 || Quantize(5) != 255 {
		t.Fatal("clamping failed")
	}
	// Monotone.
	prev := byte(0)
	for v := -1.0; v <= 1.0; v += 0.01 {
		q := Quantize(v)
		if q < prev {
			t.Fatalf("not monotone at %v", v)
		}
		prev = q
	}
}

func TestDistance(t *testing.T) {
	var a, b Fingerprint
	b[0] = 3
	b[19] = 4
	if got := a.DistanceSq(b); got != 25 {
		t.Fatalf("DistanceSq = %v", got)
	}
	if got := a.Distance(b); got != 5 {
		t.Fatalf("Distance = %v", got)
	}
	fs := b.Float64s()
	if len(fs) != D || fs[0] != 3 {
		t.Fatalf("Float64s = %v", fs)
	}
}

func TestGaussKernelNormalized(t *testing.T) {
	for _, s := range []float64{0.5, 1, 2, 3.7} {
		k := gaussKernel(s)
		sum := 0.0
		for _, v := range k {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("sigma %v: kernel sum %v", s, sum)
		}
		if len(k)%2 != 1 {
			t.Fatalf("kernel even length %d", len(k))
		}
		// Symmetric and peaked at center.
		for i := 0; i < len(k)/2; i++ {
			if math.Abs(k[i]-k[len(k)-1-i]) > 1e-15 {
				t.Fatal("kernel not symmetric")
			}
		}
	}
}

func TestSmooth1DPreservesConstant(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 7
	}
	out := smooth1D(xs, 2)
	for i, v := range out {
		if math.Abs(v-7) > 1e-12 {
			t.Fatalf("constant not preserved at %d: %v", i, v)
		}
	}
	if smooth1D(nil, 1) != nil {
		t.Fatal("empty input should give nil")
	}
}

func TestSmoothFrameReducesVariance(t *testing.T) {
	f := vidsim.Generate(vidsim.DefaultConfig(1), 1).Frames[0]
	s := smoothFrame(f, 2)
	varOf := func(fr *vidsim.Frame) float64 {
		var sum, sumSq float64
		for _, v := range fr.Pix {
			sum += float64(v)
			sumSq += float64(v) * float64(v)
		}
		n := float64(len(fr.Pix))
		m := sum / n
		return sumSq/n - m*m
	}
	if varOf(s) >= varOf(f) {
		t.Fatalf("smoothing did not reduce variance: %v >= %v", varOf(s), varOf(f))
	}
}

// cornerFrame returns a black frame with a bright axis-aligned square,
// whose four corners are the strongest Harris responses.
func cornerFrame() *vidsim.Frame {
	f := vidsim.NewFrame(64, 64)
	for y := 20; y < 44; y++ {
		for x := 20; x < 44; x++ {
			f.Set(x, y, 200)
		}
	}
	return f
}

func TestHarrisFindsSquareCorners(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPoints = 4
	pts := HarrisPoints(cornerFrame(), cfg)
	if len(pts) != 4 {
		t.Fatalf("found %d points, want 4", len(pts))
	}
	corners := [][2]float64{{20, 20}, {43, 20}, {20, 43}, {43, 43}}
	for _, c := range corners {
		best := math.Inf(1)
		for _, p := range pts {
			d := math.Hypot(p.X-c[0], p.Y-c[1])
			if d < best {
				best = d
			}
		}
		if best > 3 {
			t.Fatalf("no detected point near corner %v (closest %v px)", c, best)
		}
	}
}

func TestHarrisEmptyOnFlatFrame(t *testing.T) {
	f := vidsim.NewFrame(32, 32)
	if pts := HarrisPoints(f, DefaultConfig()); len(pts) != 0 {
		t.Fatalf("flat frame produced %d points", len(pts))
	}
}

func TestHarrisRespectsMaxAndOrder(t *testing.T) {
	f := vidsim.Generate(vidsim.DefaultConfig(9), 1).Frames[0]
	cfg := DefaultConfig()
	cfg.MaxPoints = 5
	pts := HarrisPoints(f, cfg)
	if len(pts) > 5 {
		t.Fatalf("MaxPoints exceeded: %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Response > pts[i-1].Response {
			t.Fatal("points not sorted by response")
		}
	}
	for _, p := range pts {
		if p.X < float64(cfg.Border) || p.X >= float64(f.W-cfg.Border) {
			t.Fatalf("point at border: %+v", p)
		}
	}
}

func TestKeyframesFindCuts(t *testing.T) {
	cfg := vidsim.DefaultConfig(17)
	cfg.MinShot, cfg.MaxShot = 30, 35
	seq := vidsim.Generate(cfg, 150)
	keys := Keyframes(seq, 2)
	if len(keys) < 3 {
		t.Fatalf("only %d key-frames in 150 frames with ~5 shots", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatal("key-frames not increasing")
		}
	}
	for _, k := range keys {
		if k < 0 || k >= seq.Len() {
			t.Fatalf("key-frame %d out of range", k)
		}
	}
}

func TestKeyframesDegenerate(t *testing.T) {
	one := &vidsim.Sequence{Frames: []*vidsim.Frame{vidsim.NewFrame(8, 8)}}
	if got := Keyframes(one, 2); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single frame: %v", got)
	}
	if got := Keyframes(&vidsim.Sequence{}, 2); got != nil {
		t.Fatalf("empty: %v", got)
	}
	// A static sequence has no extrema; the fallback picks the middle.
	static := &vidsim.Sequence{}
	f := vidsim.Generate(vidsim.DefaultConfig(2), 1).Frames[0]
	for i := 0; i < 10; i++ {
		static.Frames = append(static.Frames, f.Clone())
	}
	if got := Keyframes(static, 2); len(got) != 1 {
		t.Fatalf("static fallback: %v", got)
	}
}

func TestDescribeAtDeterministicAndBorders(t *testing.T) {
	seq := vidsim.Generate(vidsim.DefaultConfig(23), 10)
	e := NewExtractor(seq, DefaultConfig())
	fp1, ok1 := e.DescribeAt(40, 30, 5)
	fp2, ok2 := e.DescribeAt(40, 30, 5)
	if !ok1 || !ok2 || fp1 != fp2 {
		t.Fatal("DescribeAt not deterministic")
	}
	if _, ok := e.DescribeAt(1, 30, 5); ok {
		t.Fatal("border point should fail")
	}
	if _, ok := e.DescribeAt(40, 1, 5); ok {
		t.Fatal("border point should fail")
	}
	// Temporal clamping at sequence ends must not panic.
	if _, ok := e.DescribeAt(40, 30, 0); !ok {
		t.Fatal("first-frame description failed")
	}
	if _, ok := e.DescribeAt(40, 30, 9); !ok {
		t.Fatal("last-frame description failed")
	}
}

func TestDescriptorDiscriminanceAndRobustness(t *testing.T) {
	gcfg := vidsim.DefaultConfig(31)
	gcfg.MinShot, gcfg.MaxShot = 20, 25
	seq := vidsim.Generate(gcfg, 120)
	e := NewExtractor(seq, DefaultConfig())
	noisy := vidsim.ApplySeq(vidsim.Noise{Sigma: 5, Seed: 3}, seq)
	en := NewExtractor(noisy, DefaultConfig())

	locals := e.ExtractSequence()
	if len(locals) < 10 {
		t.Fatalf("only %d fingerprints extracted", len(locals))
	}
	// Distance of the same point under light noise must be much smaller
	// than the distance between different points, on average.
	var sameSum, diffSum float64
	var sameN, diffN int
	for i, l := range locals {
		if fp, ok := en.DescribeAt(l.X, l.Y, int(l.TC)); ok {
			sameSum += l.FP.Distance(fp)
			sameN++
		}
		if i > 0 {
			diffSum += l.FP.Distance(locals[i-1].FP)
			diffN++
		}
	}
	if sameN == 0 || diffN == 0 {
		t.Fatal("no comparable pairs")
	}
	same := sameSum / float64(sameN)
	diff := diffSum / float64(diffN)
	if same*2 > diff {
		t.Fatalf("descriptor not discriminant: same-point dist %.1f vs diff-point dist %.1f", same, diff)
	}
}

func TestExtractSequenceTimecodes(t *testing.T) {
	seq := vidsim.Generate(vidsim.DefaultConfig(41), 100)
	locals := Extract(seq, DefaultConfig())
	if len(locals) == 0 {
		t.Fatal("no fingerprints")
	}
	keys := Keyframes(seq, DefaultConfig().KeyframeSigma)
	keySet := map[uint32]bool{}
	for _, k := range keys {
		keySet[uint32(k)] = true
	}
	for _, l := range locals {
		if !keySet[l.TC] {
			t.Fatalf("fingerprint at non-key-frame %d", l.TC)
		}
	}
}

func TestNewExtractorPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.Offset = -1
	NewExtractor(&vidsim.Sequence{Frames: []*vidsim.Frame{vidsim.NewFrame(8, 8)}}, cfg)
}
