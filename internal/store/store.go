// Package store holds the fingerprint reference database of the S³
// system. As in the paper (Section IV), the database is *static*: records
// are physically ordered by the position of their fingerprint on the
// Hilbert curve, so a curve interval is a contiguous record range found by
// binary search. A binary file format with a curve-section table supports
// the pseudo-disk strategy of Section IV-B, where a database larger than
// main memory is loaded cyclically in 2^r sections.
package store

import (
	"fmt"
	"sort"

	"s3cbcd/internal/bitkey"
	"s3cbcd/internal/hilbert"
)

// Record is one referenced local fingerprint: the descriptor, the video
// sequence identifier Id and the time code tc (Section III). X and Y hold
// the interest point position in the key-frame (rounded to integer
// pixels); they are optional — zero when the producer does not track
// positions — and feed the spatially-extended voting strategy the paper's
// conclusion proposes.
type Record struct {
	FP   []byte
	ID   uint32
	TC   uint32
	X, Y uint16
}

// DB is an in-memory, curve-ordered fingerprint database. Storage is
// columnar: one flat byte slice for fingerprints plus parallel key, id and
// time-code slices. A DB is immutable after Build and safe for concurrent
// readers.
type DB struct {
	curve *hilbert.Curve
	keys  []bitkey.Key
	fps   []byte // len = Len() * Dims()
	ids   []uint32
	tcs   []uint32
	xs    []uint16
	ys    []uint16
}

// Build computes the Hilbert key of every record, sorts by key and
// returns the database. Records must all have len(FP) == curve.Dims() and
// components below 2^K; Build returns an error otherwise. The input slice
// is not modified.
//
// Records sharing a Hilbert key (hence an identical fingerprint — the
// curve encoding is a bijection) are ordered canonically by (ID, TC, X,
// Y). This total order makes the stored sequence a function of the record
// multiset alone: a database built in one shot and one assembled by
// merging arbitrary sorted pieces (Merge) hold their records in exactly
// the same order, which is what lets a segmented live index prove its
// results identical to an offline rebuild.
func Build(curve *hilbert.Curve, recs []Record) (*DB, error) {
	dims := curve.Dims()
	side := uint32(curve.SideLen())
	type keyed struct {
		key bitkey.Key
		idx int
	}
	keyedRecs := make([]keyed, len(recs))
	pt := make([]uint32, dims)
	for i, r := range recs {
		if len(r.FP) != dims {
			return nil, fmt.Errorf("store: record %d has %d components, want %d", i, len(r.FP), dims)
		}
		for j, b := range r.FP {
			v := uint32(b)
			if v >= side {
				return nil, fmt.Errorf("store: record %d component %d = %d exceeds grid side %d", i, j, v, side)
			}
			pt[j] = v
		}
		keyedRecs[i] = keyed{key: curve.Encode(pt), idx: i}
	}
	sort.Slice(keyedRecs, func(a, b int) bool {
		if c := keyedRecs[a].key.Cmp(keyedRecs[b].key); c != 0 {
			return c < 0
		}
		return recordLess(&recs[keyedRecs[a].idx], &recs[keyedRecs[b].idx])
	})
	db := &DB{
		curve: curve,
		keys:  make([]bitkey.Key, len(recs)),
		fps:   make([]byte, len(recs)*dims),
		ids:   make([]uint32, len(recs)),
		tcs:   make([]uint32, len(recs)),
		xs:    make([]uint16, len(recs)),
		ys:    make([]uint16, len(recs)),
	}
	for i, kr := range keyedRecs {
		r := recs[kr.idx]
		db.keys[i] = kr.key
		copy(db.fps[i*dims:], r.FP)
		db.ids[i] = r.ID
		db.tcs[i] = r.TC
		db.xs[i] = r.X
		db.ys[i] = r.Y
	}
	return db, nil
}

// recordLess is the canonical tie-break among records with equal Hilbert
// keys: (ID, TC, X, Y) lexicographically.
func recordLess(a, b *Record) bool {
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	if a.TC != b.TC {
		return a.TC < b.TC
	}
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

// MustBuild is Build, panicking on error. For static test fixtures.
func MustBuild(curve *hilbert.Curve, recs []Record) *DB {
	db, err := Build(curve, recs)
	if err != nil {
		panic(err)
	}
	return db
}

// Curve returns the Hilbert curve the database is ordered by.
func (db *DB) Curve() *hilbert.Curve { return db.curve }

// Dims returns the fingerprint dimension.
func (db *DB) Dims() int { return db.curve.Dims() }

// Len returns the number of records.
func (db *DB) Len() int { return len(db.keys) }

// Key returns the Hilbert key of record i.
func (db *DB) Key(i int) bitkey.Key { return db.keys[i] }

// FP returns a read-only view of the fingerprint of record i.
func (db *DB) FP(i int) []byte {
	d := db.Dims()
	return db.fps[i*d : (i+1)*d : (i+1)*d]
}

// ID returns the video identifier of record i.
func (db *DB) ID(i int) uint32 { return db.ids[i] }

// TC returns the time code of record i.
func (db *DB) TC(i int) uint32 { return db.tcs[i] }

// X returns the interest point x position of record i (0 when unknown).
func (db *DB) X(i int) uint16 { return db.xs[i] }

// Y returns the interest point y position of record i (0 when unknown).
func (db *DB) Y(i int) uint16 { return db.ys[i] }

// FindInterval returns the record index range [lo, hi) whose keys fall in
// the half-open curve interval iv.
func (db *DB) FindInterval(iv hilbert.Interval) (lo, hi int) {
	lo = sort.Search(len(db.keys), func(i int) bool {
		return db.keys[i].Cmp(iv.Start) >= 0
	})
	hi = sort.Search(len(db.keys), func(i int) bool {
		return db.keys[i].Cmp(iv.End) >= 0
	})
	return lo, hi
}

// SectionStarts returns, for a partition of the curve into 2^bits equal
// sections, the record index at which each section starts, plus a final
// entry equal to Len(). This is the "simple index table" of Section IV.
func (db *DB) SectionStarts(bits int) []int {
	n := 1 << uint(bits)
	starts := make([]int, n+1)
	shift := uint(db.curve.IndexBits() - bits)
	pos := 0
	for s := 0; s < n; s++ {
		end := bitkey.FromUint64(uint64(s) + 1).Shl(shift)
		for pos < len(db.keys) && db.keys[pos].Less(end) {
			pos++
		}
		starts[s+1] = pos
	}
	return starts
}
