package vafile

import (
	"math/rand"
	"testing"

	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/scan"
	"s3cbcd/internal/store"
)

func buildTestDB(t *testing.T, dims, n int, seed int64) *store.DB {
	t.Helper()
	curve := hilbert.MustNew(dims, 8)
	r := rand.New(rand.NewSource(seed))
	recs := make([]store.Record, n)
	for i := range recs {
		fp := make([]byte, dims)
		for j := range fp {
			// Skewed distribution so equi-populated boundaries differ
			// from uniform ones.
			v := r.Intn(256)
			if r.Intn(3) > 0 {
				v = r.Intn(64)
			}
			fp[j] = byte(v)
		}
		recs[i] = store.Record{FP: fp, ID: uint32(i), TC: uint32(i)}
	}
	return store.MustBuild(curve, recs)
}

func TestRangeQueryMatchesSequentialScan(t *testing.T) {
	db := buildTestDB(t, 12, 1500, 1)
	for _, bits := range []int{1, 2, 4, 8} {
		ix, err := Build(db, bits)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(2))
		for trial := 0; trial < 15; trial++ {
			q := make([]byte, 12)
			for j := range q {
				q[j] = byte(r.Intn(256))
			}
			eps := 40 + r.Float64()*120
			got, stats, err := ix.RangeQuery(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			want, err := scan.RangeQuery(db, q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("bits=%d trial %d: VA %d results, scan %d", bits, trial, len(got), len(want))
			}
			wantSet := map[int]bool{}
			for _, m := range want {
				wantSet[m.Pos] = true
			}
			for _, m := range got {
				if !wantSet[m.Pos] {
					t.Fatalf("bits=%d: VA returned %d, scan did not", bits, m.Pos)
				}
			}
			if stats.Skipped+stats.Verified != db.Len() {
				t.Fatalf("bits=%d: accounting broken: %d+%d != %d", bits, stats.Skipped, stats.Verified, db.Len())
			}
		}
	}
}

func TestApproximationActuallyFilters(t *testing.T) {
	db := buildTestDB(t, 20, 3000, 3)
	ix, err := Build(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := append([]byte(nil), db.FP(42)...)
	_, stats, err := ix.RangeQuery(q, 60)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Verified >= db.Len()/2 {
		t.Fatalf("approximation filtered almost nothing: verified %d of %d", stats.Verified, db.Len())
	}
	if stats.Verified == 0 {
		t.Fatal("nothing verified — self match lost")
	}
}

func TestMoreBitsFilterBetter(t *testing.T) {
	db := buildTestDB(t, 16, 2500, 4)
	q := append([]byte(nil), db.FP(7)...)
	prevVerified := db.Len() + 1
	for _, bits := range []int{1, 2, 4, 8} {
		ix, err := Build(db, bits)
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := ix.RangeQuery(q, 80)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Verified > prevVerified {
			t.Fatalf("bits=%d verified %d, more than coarser approximation %d", bits, stats.Verified, prevVerified)
		}
		prevVerified = stats.Verified
	}
}

func TestBuildValidation(t *testing.T) {
	db := buildTestDB(t, 4, 10, 5)
	if _, err := Build(db, 3); err == nil {
		t.Error("bits=3 accepted")
	}
	ix, err := Build(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.RangeQuery([]byte{1, 2}, 5); err == nil {
		t.Error("short query accepted")
	}
	if _, _, err := ix.RangeQuery(make([]byte, 4), -1); err == nil {
		t.Error("negative radius accepted")
	}
}

func TestEmptyDatabase(t *testing.T) {
	curve := hilbert.MustNew(4, 8)
	db := store.MustBuild(curve, nil)
	ix, err := Build(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := ix.RangeQuery(make([]byte, 4), 10)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty DB query: %v %v", out, err)
	}
}
