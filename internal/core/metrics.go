package core

import (
	"s3cbcd/internal/obs"
)

// engineMetrics are the query engine's instruments: the plan/refine
// split of every query (the paper's filtering vs refinement cost), the
// partition-tree work the planner performs, and the selectivity of the
// plans it emits. They are created unregistered at NewEngine — updating
// them is a few atomics, so the engine always counts — and published
// into a registry by Engine.RegisterMetrics (one engine per registry).
type engineMetrics struct {
	plans         *obs.Counter
	descentNodes  *obs.Counter
	planSeconds   *obs.Histogram
	planBlocks    *obs.Histogram
	refineSeconds *obs.Histogram
	candidates    *obs.Counter
	statQueries   *obs.Counter
	rangeQueries  *obs.Counter
	knnQueries    *obs.Counter
	batchQueries  *obs.Counter
	inflight      *obs.Gauge
}

func newEngineMetrics() engineMetrics {
	return engineMetrics{
		plans: obs.NewCounter("s3_engine_plans_total",
			"plans computed (statistical and geometric, batch included)"),
		descentNodes: obs.NewCounter("s3_engine_descent_nodes_total",
			"partition-tree nodes visited by planning (the filtering-step work the frontier planner minimizes)"),
		planSeconds: obs.NewHistogram("s3_engine_plan_seconds",
			"wall time of the filtering step (one plan)", obs.LatencyBuckets()),
		planBlocks: obs.NewHistogram("s3_engine_plan_blocks",
			"p-blocks selected per plan (card of B_alpha)", obs.SizeBuckets()),
		refineSeconds: obs.NewHistogram("s3_engine_refine_seconds",
			"wall time of the refinement step (scanning the selected intervals)", obs.LatencyBuckets()),
		candidates: obs.NewCounter("s3_engine_candidates_refined_total",
			"candidate records materialized or scanned by refinement"),
		statQueries: obs.NewCounter("s3_engine_stat_queries_total",
			"statistical queries executed (batch included)"),
		rangeQueries: obs.NewCounter("s3_engine_range_queries_total",
			"range queries executed (batch included)"),
		knnQueries: obs.NewCounter("s3_engine_knn_queries_total",
			"k-NN queries executed (batch included)"),
		batchQueries: obs.NewCounter("s3_engine_batch_queries_total",
			"queries executed through the batch endpoints"),
		inflight: obs.NewGauge("s3_engine_inflight_queries",
			"queries currently executing in the engine (vs s3_engine_workers for utilization)"),
	}
}

// RegisterMetrics publishes the engine's metrics, plus gauges describing
// its static shape, into r. Call at most once per registry.
func (e *Engine) RegisterMetrics(r *obs.Registry) {
	r.MustRegister(e.met.plans, e.met.descentNodes, e.met.planSeconds,
		e.met.planBlocks, e.met.refineSeconds, e.met.candidates,
		e.met.statQueries, e.met.rangeQueries, e.met.knnQueries,
		e.met.batchQueries, e.met.inflight)
	r.GaugeFunc("s3_engine_workers", "engine worker bound",
		func() float64 { return float64(e.workers) })
	r.GaugeFunc("s3_engine_shards", "keyspace shard count",
		func() float64 { return float64(len(e.shards)) })
	r.GaugeFunc("s3_engine_records", "records in the served database",
		func() float64 { return float64(e.ix.db.Len()) })
	if e.cache != nil {
		e.cache.RegisterMetrics(r)
	}
	if e.tuner != nil {
		e.tuner.RegisterMetrics(r)
	}
}

// liveMetrics are the live index's instruments: LSM shape and write-path
// latencies (seal, manifest commit, compaction), plus the persistence
// retry/degraded machinery's state. Created unregistered at
// OpenLiveIndex; published by LiveIndex.RegisterMetrics.
type liveMetrics struct {
	ingested        *obs.Counter
	deletes         *obs.Counter
	compactions     *obs.Counter
	persistFailures *obs.Counter
	persistRetries  *obs.Counter
	degradedTrips   *obs.Counter
	degraded        *obs.Gauge
	retryBackoff    *obs.Gauge
	sealSeconds     *obs.Histogram
	commitSeconds   *obs.Histogram
	compactSeconds  *obs.Histogram
	queries         *obs.Counter
	querySegments   *obs.Histogram
	sketchConsults  *obs.Counter
	segmentsSkipped *obs.Counter
}

func newLiveMetrics() liveMetrics {
	return liveMetrics{
		ingested: obs.NewCounter("s3_live_ingested_records_total",
			"records accepted by Ingest"),
		deletes: obs.NewCounter("s3_live_deletes_total",
			"DeleteVideo operations that changed the snapshot"),
		compactions: obs.NewCounter("s3_live_compactions_total",
			"compactions committed"),
		persistFailures: obs.NewCounter("s3_live_persist_failures_total",
			"failed persistence attempts (seal, manifest commit or compaction)"),
		persistRetries: obs.NewCounter("s3_live_persist_retries_total",
			"backoff-scheduled persistence retry attempts"),
		degradedTrips: obs.NewCounter("s3_live_degraded_transitions_total",
			"transitions into degraded read-only mode"),
		degraded: obs.NewGauge("s3_live_degraded",
			"1 while the index is in degraded read-only mode"),
		retryBackoff: obs.NewGauge("s3_live_retry_backoff_seconds",
			"current persistence retry backoff delay (0 when no retry loop is waiting)"),
		sealSeconds: obs.NewHistogram("s3_live_seal_seconds",
			"wall time of sealing the memtable into an immutable segment", obs.LatencyBuckets()),
		commitSeconds: obs.NewHistogram("s3_live_commit_seconds",
			"wall time of a durable manifest commit", obs.LatencyBuckets()),
		compactSeconds: obs.NewHistogram("s3_live_compaction_seconds",
			"wall time of a committed compaction (merge, segment write and commit)", obs.LatencyBuckets()),
		queries: obs.NewCounter("s3_live_queries_total",
			"queries served against live snapshots (batch included)"),
		querySegments: obs.NewHistogram("s3_live_query_segments",
			"segments visited per query (memtable included)", obs.SizeBuckets()),
		sketchConsults: obs.NewCounter("s3_live_sketch_consults_total",
			"segment sketch consultations before refinement"),
		segmentsSkipped: obs.NewCounter("s3_live_segments_skipped_total",
			"segments skipped because their sketch proved the plan misses them"),
	}
}

// RegisterMetrics publishes the live index's metrics, plus gauges
// reading the current snapshot's shape, into r. Call at most once per
// registry.
func (li *LiveIndex) RegisterMetrics(r *obs.Registry) {
	r.MustRegister(li.met.ingested, li.met.deletes, li.met.compactions,
		li.met.persistFailures, li.met.persistRetries, li.met.degradedTrips,
		li.met.degraded, li.met.retryBackoff, li.met.sealSeconds,
		li.met.commitSeconds, li.met.compactSeconds, li.met.queries,
		li.met.querySegments, li.met.sketchConsults, li.met.segmentsSkipped)
	li.coldCtr.RegisterMetrics(r)
	r.GaugeFunc("s3_live_sketch_bytes", "on-disk bytes of segment sketches in the current snapshot",
		func() float64 {
			n := 0
			for _, s := range li.snap.Load().segs {
				if s.sketch != nil {
					n += s.sketch.EncodedSize()
				}
			}
			return float64(n)
		})
	r.GaugeFunc("s3_live_memtable_records", "records in the mutable memtable",
		func() float64 { return float64(li.snap.Load().mem.db.Len()) })
	r.GaugeFunc("s3_live_segments", "sealed immutable segments",
		func() float64 { return float64(len(li.snap.Load().segs)) })
	r.GaugeFunc("s3_live_records", "query-visible records",
		func() float64 {
			snap := li.snap.Load()
			n := snap.mem.db.Len()
			for _, s := range snap.segs {
				n += s.live
			}
			return float64(n)
		})
	r.GaugeFunc("s3_live_cold_segments", "sealed segments serving from the cold tier",
		func() float64 {
			n := 0
			for _, s := range li.snap.Load().segs {
				if s.cold != nil {
					n++
				}
			}
			return float64(n)
		})
	r.GaugeFunc("s3_live_cold_records", "records stored in cold-tier segments",
		func() float64 {
			n := 0
			for _, s := range li.snap.Load().segs {
				if s.cold != nil {
					n += s.cold.Len()
				}
			}
			return float64(n)
		})
	r.GaugeFunc("s3_live_gen", "published snapshot generation",
		func() float64 { return float64(li.snap.Load().gen) })
	r.GaugeFunc("s3_live_dirty", "1 while durable state lags the published snapshot",
		func() float64 {
			li.persistMu.Lock()
			dirty := li.dirty
			li.persistMu.Unlock()
			if dirty {
				return 1
			}
			return 0
		})
	if li.cache != nil {
		li.cache.RegisterMetrics(r)
	}
	if li.tuner != nil {
		li.tuner.RegisterMetrics(r)
	}
}
