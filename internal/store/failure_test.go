package store

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"s3cbcd/internal/hilbert"
)

// TestOpenRejectsTruncatedRecordArea truncates the record area: the
// header and section table promise more records than the file holds.
// Open probes the promised record range against the actual file size, so
// the corruption is rejected at open instead of surfacing as a garbage
// (or short) read from a later LoadRecords.
func TestOpenRejectsTruncatedRecordArea(t *testing.T) {
	curve := hilbert.MustNew(6, 4)
	db := MustBuild(curve, randRecords(rand.New(rand.NewSource(1)), curve, 50))
	path := filepath.Join(t.TempDir(), "db.s3db")
	if err := db.WriteFile(path, 3); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-64); err != nil {
		t.Fatal(err)
	}
	if fl, err := Open(path); err == nil {
		fl.Close()
		t.Fatal("opening a file with a truncated record area succeeded")
	}
	// Truncating even the final byte must be caught.
	if err := os.Truncate(path, info.Size()-65); err != nil {
		t.Fatal(err)
	}
	if fl, err := Open(path); err == nil {
		fl.Close()
		t.Fatal("opening a file one byte short succeeded")
	}
}

// TestOpenRejectsAbsurdHeaderClaims corrupts the header's record count
// and section granularity to absurd values: both must be refused before
// any allocation or read sized by them is attempted.
func TestOpenRejectsAbsurdHeaderClaims(t *testing.T) {
	curve := hilbert.MustNew(6, 4)
	db := MustBuild(curve, randRecords(rand.New(rand.NewSource(1)), curve, 10))
	path := filepath.Join(t.TempDir(), "db.s3db")
	if err := db.WriteFile(path, 3); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(t *testing.T, mutate func([]byte)) {
		t.Helper()
		blob := append([]byte(nil), orig...)
		mutate(blob)
		p := filepath.Join(t.TempDir(), "corrupt.s3db")
		if err := os.WriteFile(p, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		if fl, err := Open(p); err == nil {
			fl.Close()
			t.Fatal("opening the corrupted file succeeded")
		}
	}
	// count = 2^60: past the absolute bound.
	corrupt(t, func(b []byte) { binary.LittleEndian.PutUint64(b[16:], 1<<60) })
	// count = 2^40: inside the bound but far past the file size — caught
	// by the record-area probe, not the table validators.
	corrupt(t, func(b []byte) { binary.LittleEndian.PutUint64(b[16:], 1<<40) })
	// secBits = 23: valid for the 24-bit curve, so the geometry check
	// accepts it — the pre-allocation probe must notice the 64 MiB table
	// cannot fit in this file.
	corrupt(t, func(b []byte) { binary.LittleEndian.PutUint32(b[24:], 23) })
	// secBits past the absolute sanity cap, on a curve whose index bits
	// would otherwise admit it: rejected before the 8 TiB table is
	// allocated or probed.
	big := MustBuild(hilbert.MustNew(8, 8), randRecords(rand.New(rand.NewSource(2)), hilbert.MustNew(8, 8), 4))
	bigPath := filepath.Join(t.TempDir(), "big.s3db")
	if err := big.WriteFile(bigPath, 3); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(bigPath)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(blob[24:], 40)
	if err := os.WriteFile(bigPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if fl, err := Open(bigPath); err == nil {
		fl.Close()
		t.Fatal("opening a file with a 2^40-entry section table succeeded")
	}
}

// TestOpenRejectsTruncatedSectionTable removes part of the section table.
func TestOpenRejectsTruncatedSectionTable(t *testing.T) {
	curve := hilbert.MustNew(6, 4)
	db := MustBuild(curve, randRecords(rand.New(rand.NewSource(2)), curve, 10))
	path := filepath.Join(t.TempDir(), "db.s3db")
	if err := db.WriteFile(path, 8); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, 28+100); err != nil { // header + partial table
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("truncated section table accepted")
	}
}

// TestOpenRejectsAbsurdHeader fuzzes header fields that must be bounded.
func TestOpenRejectsAbsurdHeader(t *testing.T) {
	curve := hilbert.MustNew(6, 4)
	db := MustBuild(curve, randRecords(rand.New(rand.NewSource(3)), curve, 10))
	path := filepath.Join(t.TempDir(), "db.s3db")
	if err := db.WriteFile(path, 2); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(off int, val byte) string {
		data := append([]byte(nil), orig...)
		data[off] = val
		p := filepath.Join(t.TempDir(), "bad.s3db")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := Open(corrupt(4, 99)); err == nil { // version
		t.Error("bad version accepted")
	}
	if _, err := Open(corrupt(8, 0)); err == nil { // dims = 0
		t.Error("zero dims accepted")
	}
	if _, err := Open(corrupt(24, 0xFF)); err == nil { // huge section bits
		t.Error("oversized section bits accepted")
	}
}
