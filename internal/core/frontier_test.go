package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"s3cbcd/internal/store"
)

// planDiff reports the first field in which two plans differ, demanding
// bit-identity for the float fields. DescentNodes is deliberately NOT
// compared: it is the one field the two planners are supposed to disagree
// on.
func planDiff(frontier, legacy Plan) string {
	if !reflect.DeepEqual(frontier.Intervals, legacy.Intervals) {
		return fmt.Sprintf("Intervals differ: %d vs %d merged", len(frontier.Intervals), len(legacy.Intervals))
	}
	if frontier.Blocks != legacy.Blocks {
		return fmt.Sprintf("Blocks %d vs %d", frontier.Blocks, legacy.Blocks)
	}
	if math.Float64bits(frontier.Mass) != math.Float64bits(legacy.Mass) {
		return fmt.Sprintf("Mass %x vs %x", math.Float64bits(frontier.Mass), math.Float64bits(legacy.Mass))
	}
	if math.Float64bits(frontier.Threshold) != math.Float64bits(legacy.Threshold) {
		return fmt.Sprintf("Threshold %v vs %v", frontier.Threshold, legacy.Threshold)
	}
	if frontier.FilterIters != legacy.FilterIters {
		return fmt.Sprintf("FilterIters %d vs %d", frontier.FilterIters, legacy.FilterIters)
	}
	if frontier.Depth != legacy.Depth {
		return fmt.Sprintf("Depth %d vs %d", frontier.Depth, legacy.Depth)
	}
	return ""
}

// randomModel draws one of the distortion model families with random
// parameters. All of them are smooth enough to exercise deep descents and
// spiky enough to exercise heavy pruning.
func randomModel(r *rand.Rand, dims int) Model {
	switch r.Intn(4) {
	case 0:
		return IsoNormal{D: dims, Sigma: 1 + r.Float64()*30}
	case 1:
		sig := make([]float64, dims)
		for j := range sig {
			sig[j] = 0.5 + r.Float64()*25
		}
		return DiagNormal{Sigmas: sig}
	case 2:
		return IsoLaplace{D: dims, Sigma: 1 + r.Float64()*20}
	default:
		return MixtureNormal{D: dims, W: 0.3 + r.Float64()*0.6,
			SigmaCore: 1 + r.Float64()*6, SigmaWide: 10 + r.Float64()*30}
	}
}

// TestFrontierPlanMatchesLegacy is the planner-equivalence property: for
// random queries, models, expectations and depths, the incremental
// frontier planner must return a Plan bit-identical to the legacy
// multi-descent search in every field but DescentNodes.
func TestFrontierPlanMatchesLegacy(t *testing.T) {
	dbs := map[int]*store.DB{
		2: testDB(t, 2, 3000, 101),
		3: testDB(t, 3, 4000, 102),
		5: testDB(t, 5, 3000, 103),
	}
	dimChoices := []int{2, 3, 5}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := dimChoices[r.Intn(len(dimChoices))]
		db := dbs[dims]
		ix, err := NewIndex(db, 0)
		if err != nil {
			t.Fatal(err)
		}
		maxDepth := 14
		if ib := ix.curve.IndexBits(); ib < maxDepth {
			maxDepth = ib
		}
		ix.SetDepth(3 + r.Intn(maxDepth-2))
		sq := StatQuery{Alpha: 0.3 + r.Float64()*0.69, Model: randomModel(r, dims)}
		q, _ := distortedQuery(r, db, 10)

		frontier, err := ix.PlanStat(q, sq)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := ix.PlanStatLegacy(q, sq)
		if err != nil {
			t.Fatal(err)
		}
		if d := planDiff(frontier, legacy); d != "" {
			t.Errorf("seed %d (dims=%d depth=%d alpha=%v model=%T): %s",
				seed, dims, ix.Depth(), sq.Alpha, sq.Model, d)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestFrontierStatePooledReuse replans many queries through ONE reused
// frontierState and massCache — the engine's per-worker pattern — and
// checks each plan, including DescentNodes, against a freshly allocated
// planner state. Any stale carry-over between queries would surface here.
func TestFrontierStatePooledReuse(t *testing.T) {
	db := testDB(t, 4, 5000, 7)
	ix, _ := NewIndex(db, 0)
	fs := newFrontierState(ix.curve)
	mc := newMassCache(ix.dims(), ix.curve.SideLen())
	r := rand.New(rand.NewSource(11))
	qf := make([]float64, ix.dims())
	for i := 0; i < 40; i++ {
		sq := StatQuery{Alpha: 0.4 + r.Float64()*0.55, Model: randomModel(r, 4)}
		q, _ := distortedQuery(r, db, 8)
		for j, b := range q {
			qf[j] = float64(b)
		}
		mc.reset()
		pooled := ix.planStatFrontier(qf, sq, mc, fs)
		fresh := ix.planStatFloat(qf, sq)
		if !reflect.DeepEqual(pooled, fresh) {
			t.Fatalf("query %d: pooled plan %+v != fresh plan %+v", i, pooled, fresh)
		}
	}
}

// TestFrontierVisitsFewerNodes pins the point of the rewrite: across a
// workload of realistic queries the frontier planner must traverse far
// fewer partition-tree nodes than the legacy multi-descent search.
func TestFrontierVisitsFewerNodes(t *testing.T) {
	db := testDB(t, 4, 8000, 21)
	ix, _ := NewIndex(db, 0)
	sq := StatQuery{Alpha: 0.8, Model: IsoNormal{D: 4, Sigma: 18}}
	r := rand.New(rand.NewSource(22))
	var frontierNodes, legacyNodes int
	for i := 0; i < 20; i++ {
		q, _ := distortedQuery(r, db, 18)
		pf, err := ix.PlanStat(q, sq)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := ix.PlanStatLegacy(q, sq)
		if err != nil {
			t.Fatal(err)
		}
		if pf.DescentNodes <= 0 || pl.DescentNodes <= 0 {
			t.Fatalf("query %d: non-positive node counts %d, %d", i, pf.DescentNodes, pl.DescentNodes)
		}
		frontierNodes += pf.DescentNodes
		legacyNodes += pl.DescentNodes
	}
	if frontierNodes*2 > legacyNodes {
		t.Fatalf("frontier visited %d nodes, legacy %d: expected at least 2x reduction",
			frontierNodes, legacyNodes)
	}
	t.Logf("descent nodes: frontier %d, legacy %d (%.1fx)",
		frontierNodes, legacyNodes, float64(legacyNodes)/float64(frontierNodes))
}

// TestEngineDescentNodesCounter checks the engine's cumulative counter
// against the per-plan diagnostics.
func TestEngineDescentNodesCounter(t *testing.T) {
	db := testDB(t, 3, 2000, 31)
	ix, _ := NewIndex(db, 0)
	e := NewEngine(ix, 4, 2)
	sq := StatQuery{Alpha: 0.9, Model: IsoNormal{D: 3, Sigma: 10}}
	r := rand.New(rand.NewSource(32))
	var want int64
	for i := 0; i < 8; i++ {
		q, _ := distortedQuery(r, db, 10)
		_, plan, err := e.SearchStat(context.Background(), q, sq)
		if err != nil {
			t.Fatal(err)
		}
		want += int64(plan.DescentNodes)
	}
	if got := e.DescentNodes(); got != want {
		t.Fatalf("engine counter %d, sum of plans %d", got, want)
	}
	if want == 0 {
		t.Fatal("descent node counter never advanced")
	}
}
