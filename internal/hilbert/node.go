package hilbert

import (
	"fmt"

	"s3cbcd/internal/bitkey"
)

// Node is an explicit, self-contained descent node: a block of the
// partition tree with owned bounds. Unlike the DFS of Descend, explicit
// nodes can be expanded in any order, which is what best-first traversals
// (k-NN search) need.
type Node struct {
	// Lo and Hi are the node's hyper-rectangle bounds (owned, not
	// aliased).
	Lo, Hi []uint32
	// Prefix holds the Bits consumed index bits.
	Prefix bitkey.Key
	// Bits is the node's depth in the partition tree.
	Bits int

	st state
	q  int
	wp uint64
}

// RootNode returns the whole-grid node.
func (c *Curve) RootNode() Node {
	lo := make([]uint32, c.dims)
	hi := make([]uint32, c.dims)
	side := c.SideLen()
	for j := range hi {
		hi[j] = side
	}
	return Node{Lo: lo, Hi: hi, st: initialState()}
}

// SplitNode returns n's two children in curve order. It panics when the
// node is already at maximal depth.
func (c *Curve) SplitNode(n Node) [2]Node {
	if n.Bits >= c.IndexBits() {
		panic(fmt.Sprintf("hilbert: cannot split node at depth %d", n.Bits))
	}
	nd := uint(c.dims)
	var out [2]Node
	for b := uint64(0); b <= 1; b++ {
		prev := uint64(0)
		if n.q > 0 {
			prev = n.wp & 1
		}
		gbit := b ^ prev
		posG := nd - 1 - uint(n.q)
		posL := (posG + n.st.d + 1) % nd
		lbit := gbit ^ ((n.st.e >> posL) & 1)

		child := Node{
			Lo:     append([]uint32(nil), n.Lo...),
			Hi:     append([]uint32(nil), n.Hi...),
			Prefix: n.Prefix.Shl(1).OrLowBits(b),
			Bits:   n.Bits + 1,
		}
		dim := int(posL)
		mid := (n.Lo[dim] + n.Hi[dim]) / 2
		if lbit == 1 {
			child.Lo[dim] = mid
		} else {
			child.Hi[dim] = mid
		}
		if n.q+1 == int(nd) {
			w := n.wp<<1 | b
			child.st = n.st.next(w, nd)
			child.q = 0
			child.wp = 0
		} else {
			child.st = n.st
			child.q = n.q + 1
			child.wp = n.wp<<1 | b
		}
		out[b] = child
	}
	return out
}

// NodeInterval returns the curve interval covered by the node.
func (c *Curve) NodeInterval(n Node) Interval {
	shift := uint(c.IndexBits() - n.Bits)
	return Interval{
		Start: n.Prefix.Shl(shift),
		End:   n.Prefix.Inc().Shl(shift),
	}
}
