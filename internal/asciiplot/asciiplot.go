// Package asciiplot renders small line/scatter charts as text, so that
// cmd/s3bench can show the *shape* of each reproduced figure directly in
// the terminal next to the numeric series (log axes included, since the
// paper's scalability figures are log-log).
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	X, Y   []float64
	Marker rune // defaults to '*', then '+', 'o', 'x'... per series
}

// Config controls the canvas.
type Config struct {
	Width, Height int  // plot area in characters; defaults 60x18
	LogX, LogY    bool // logarithmic axes (values must be > 0)
	Title         string
	XLabel        string
	YLabel        string
}

var defaultMarkers = []rune{'*', '+', 'o', 'x', '#', '@'}

// Render draws the series onto a character canvas and returns it as a
// string (trailing newline included). Series with no points are skipped;
// non-finite or non-positive values on a log axis are dropped per point.
func Render(cfg Config, series ...Series) string {
	if cfg.Width <= 0 {
		cfg.Width = 60
	}
	if cfg.Height <= 0 {
		cfg.Height = 18
	}
	tx := func(v float64) (float64, bool) { return axisValue(v, cfg.LogX) }
	ty := func(v float64) (float64, bool) { return axisValue(v, cfg.LogY) }

	// Collect the data range.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if !any {
		return "(no plottable points)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, cfg.Height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", cfg.Width))
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			col := int((x - minX) / (maxX - minX) * float64(cfg.Width-1))
			row := cfg.Height - 1 - int((y-minY)/(maxY-minY)*float64(cfg.Height-1))
			if col >= 0 && col < cfg.Width && row >= 0 && row < cfg.Height {
				grid[row][col] = marker
			}
		}
	}

	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	yLoTxt, yHiTxt := axisLabel(minY, cfg.LogY), axisLabel(maxY, cfg.LogY)
	labelW := len(yHiTxt)
	if len(yLoTxt) > labelW {
		labelW = len(yLoTxt)
	}
	for r := 0; r < cfg.Height; r++ {
		label := strings.Repeat(" ", labelW)
		if r == 0 {
			label = fmt.Sprintf("%*s", labelW, yHiTxt)
		} else if r == cfg.Height-1 {
			label = fmt.Sprintf("%*s", labelW, yLoTxt)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", cfg.Width))
	xLo, xHi := axisLabel(minX, cfg.LogX), axisLabel(maxX, cfg.LogX)
	pad := cfg.Width - len(xLo) - len(xHi)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelW), xLo, strings.Repeat(" ", pad), xHi)
	if cfg.XLabel != "" || cfg.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", labelW), cfg.XLabel, cfg.YLabel)
	}
	var legend []string
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		if s.Name != "" {
			legend = append(legend, fmt.Sprintf("%c %s", marker, s.Name))
		}
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", labelW), strings.Join(legend, "   "))
	}
	return b.String()
}

// axisValue maps a value onto the (possibly logarithmic) axis.
func axisValue(v float64, log bool) (float64, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	if !log {
		return v, true
	}
	if v <= 0 {
		return 0, false
	}
	return math.Log10(v), true
}

// axisLabel renders an axis endpoint, undoing the log transform.
func axisLabel(v float64, log bool) string {
	if log {
		v = math.Pow(10, v)
	}
	switch {
	case v != 0 && (math.Abs(v) >= 1e5 || math.Abs(v) < 1e-3):
		return fmt.Sprintf("%.1e", v)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
