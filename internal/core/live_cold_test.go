package core

// Cold-tier correctness: (1) the property test of ISSUE 6 — with every
// sealed segment served from disk through a starved block cache, random
// ingest/delete/compaction schedules must answer byte-identically to the
// all-resident monolithic rebuild; (2) read-fault behaviour — an
// injected ReadAt failure in the cold path surfaces as a query error,
// never a wrong result, a cached failure or a leaked descriptor.

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"s3cbcd/internal/faultfs"
	"s3cbcd/internal/store"
)

// coldTestOptions builds LiveOptions that push everything to the cold
// tier: any sealed segment qualifies, under a cache too small to hold
// the corpus (or, budget 0, holding nothing at all).
func coldTestOptions(r *rand.Rand, cache *store.BlockCache) LiveOptions {
	return LiveOptions{
		Depth:           liveTestDepth,
		MemtableRecords: 1 + r.Intn(40),
		CompactSegments: 2 + r.Intn(3),
		ColdRecords:     1,
		Cache:           cache,
	}
}

func TestLiveIndexColdEquivalentToResidentQuick(t *testing.T) {
	scenario := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Budget 0 disables retention entirely; the others thrash.
		budget := []int64{0, 512, 4096}[r.Intn(3)]
		cache := store.NewBlockCache(budget)
		dir := t.TempDir()
		li, err := OpenLiveIndex(liveTestCurve(), dir, coldTestOptions(r, cache))
		if err != nil {
			t.Fatal(err)
		}
		defer li.Close()

		var model []store.Record
		nOps := 4 + r.Intn(8)
		checkpoint := r.Intn(nOps)
		for op := 0; op < nOps; op++ {
			if r.Intn(10) < 7 {
				batch := make([]store.Record, r.Intn(60))
				for i := range batch {
					batch[i] = randLiveRecord(r)
				}
				if err := li.Ingest(batch); err != nil {
					t.Fatal(err)
				}
				model = append(model, batch...)
			} else {
				id := uint32(r.Intn(6))
				if err := li.DeleteVideo(id); err != nil {
					t.Fatal(err)
				}
				kept := model[:0:0]
				for _, rec := range model {
					if rec.ID != id {
						kept = append(kept, rec)
					}
				}
				model = kept
			}
			if op == checkpoint && !checkLiveEquivalence(t, li, model, r, "cold mid-schedule") {
				return false
			}
		}
		if !checkLiveEquivalence(t, li, model, r, "cold after schedule") {
			return false
		}
		if err := li.Compact(); err != nil {
			t.Fatal(err)
		}
		if !checkLiveEquivalence(t, li, model, r, "cold after compaction") {
			return false
		}
		st := li.Stats()
		if st.Segments > 0 && st.ColdSegments == 0 {
			t.Errorf("seed %d: ColdRecords=1 produced no cold segments (%d sealed)", seed, st.Segments)
			return false
		}
		if st.Segments > 0 && budget > 0 && st.Cache.Misses == 0 {
			t.Errorf("seed %d: cold queries never touched the cache", seed)
			return false
		}
		// Reopen cold (fresh cache): recovery opens the committed segments
		// through the cold path, including tombstone counting.
		if err := li.Close(); err != nil {
			t.Fatal(err)
		}
		reopened, err := OpenLiveIndex(liveTestCurve(), dir, LiveOptions{
			Depth: liveTestDepth, ColdRecords: 1, Cache: store.NewBlockCache(budget)})
		if err != nil {
			t.Fatal(err)
		}
		defer reopened.Close()
		if !checkLiveEquivalence(t, reopened, model, r, "cold after reopen") {
			return false
		}
		// And reopen resident: the same directory serves either tier.
		if err := reopened.Close(); err != nil {
			t.Fatal(err)
		}
		resident, err := OpenLiveIndex(liveTestCurve(), dir, LiveOptions{Depth: liveTestDepth})
		if err != nil {
			t.Fatal(err)
		}
		defer resident.Close()
		return checkLiveEquivalence(t, resident, model, r, "resident after cold reopen")
	}
	cfg := &quick.Config{MaxCount: 8}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(scenario, cfg); err != nil {
		t.Fatal(err)
	}
}

// coldFaultIndex builds a durable index whose sealed segments all serve
// cold through fs, returning it with the ingested records.
func coldFaultIndex(t *testing.T, fs store.FS, cache *store.BlockCache) (*LiveIndex, []store.Record) {
	t.Helper()
	li, err := OpenLiveIndex(liveTestCurve(), t.TempDir(), LiveOptions{
		Depth:           liveTestDepth,
		MemtableRecords: 50,
		ColdRecords:     1,
		Cache:           cache,
		FS:              fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	recs := make([]store.Record, 300)
	for i := range recs {
		recs[i] = randLiveRecord(r)
	}
	if err := li.Ingest(recs); err != nil {
		t.Fatal(err)
	}
	if err := li.Flush(); err != nil {
		t.Fatal(err)
	}
	st := li.Stats()
	if st.ColdSegments == 0 {
		t.Fatalf("no cold segments to fault: %+v", st)
	}
	return li, recs
}

// TestColdReadFaultSurfacesAsQueryError toggles a deterministic ReadAt
// failure under a cold index: queries must error while it is on, heal
// completely when it clears, and Close must leave no descriptor behind.
func TestColdReadFaultSurfacesAsQueryError(t *testing.T) {
	var failing atomic.Bool
	fs := faultfs.New(store.OSFS, func(op faultfs.Op, _ string, _ int) faultfs.Action {
		if failing.Load() && op == faultfs.OpReadAt {
			return faultfs.Fail
		}
		return faultfs.Pass
	})
	li, recs := coldFaultIndex(t, fs, store.NewBlockCache(1<<20))
	ctx := context.Background()
	sq := StatQuery{Alpha: 0.9, Model: IsoNormal{D: liveTestDims, Sigma: 2.5}}
	q := recs[0].FP

	failing.Store(true)
	if _, _, err := li.SearchStat(ctx, q, sq); err == nil {
		t.Fatal("SearchStat through a failing cold read succeeded")
	}
	if _, _, err := li.SearchRange(ctx, q, 4); err == nil {
		t.Fatal("SearchRange through a failing cold read succeeded")
	}
	if _, _, err := li.SearchKNN(ctx, q, 3, 0); err == nil {
		t.Fatal("SearchKNN through a failing cold read succeeded")
	}
	if _, err := li.SearchStatBatch(ctx, [][]byte{q}, sq); err == nil {
		t.Fatal("SearchStatBatch through a failing cold read succeeded")
	}

	// The failure must not have been cached: with the fault cleared, the
	// full battery answers exactly (checkLiveEquivalence re-runs every
	// query type against the monolithic rebuild).
	failing.Store(false)
	r := rand.New(rand.NewSource(100))
	if !checkLiveEquivalence(t, li, recs, r, "fault cleared") {
		t.Fatal("cold index did not heal after the read fault cleared")
	}
	if err := li.Close(); err != nil {
		t.Fatal(err)
	}
	if lh := fs.OpenHandles(); lh != 0 {
		t.Fatalf("closed cold index leaked %d descriptors", lh)
	}
	// Queries visiting cold segments after Close error rather than crash.
	if _, _, err := li.SearchStat(ctx, q, sq); err == nil {
		t.Fatal("SearchStat on a closed cold index succeeded")
	}
}

// TestColdReadChaos serves a cold index through random read faults:
// every query either errors or answers exactly; the index and cache
// survive. The injector mirrors faultfs.NewSeededReads but is gated so
// the build phase (whose cold opens read too, and fall back to resident
// on failure) runs healthy — the store-level TestColdReadSeededInjector
// covers the ungated constructor.
func TestColdReadChaos(t *testing.T) {
	var (
		chaos   atomic.Bool
		chaosMu sync.Mutex
		rng     = rand.New(rand.NewSource(7))
	)
	fs := faultfs.New(store.OSFS, func(op faultfs.Op, _ string, _ int) faultfs.Action {
		if !chaos.Load() || (op != faultfs.OpRead && op != faultfs.OpReadAt) {
			return faultfs.Pass
		}
		chaosMu.Lock()
		defer chaosMu.Unlock()
		if rng.Float64() >= 0.3 {
			return faultfs.Pass
		}
		if rng.Intn(2) == 0 {
			return faultfs.ShortWrite
		}
		return faultfs.Fail
	})
	cache := store.NewBlockCache(2048) // starved: constant reload pressure
	li, recs := coldFaultIndex(t, fs, cache)
	chaos.Store(true)
	defer chaos.Store(false)
	defer li.Close()
	refDB, err := store.Build(liveTestCurve(), recs)
	if err != nil {
		t.Fatal(err)
	}
	refIx, err := NewIndex(refDB, liveTestDepth)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sq := StatQuery{Alpha: 0.9, Model: IsoNormal{D: liveTestDims, Sigma: 2.5}}
	ok, failed := 0, 0
	for i := 0; i < 60; i++ {
		q := recs[i%len(recs)].FP
		got, _, err := li.SearchStat(ctx, q, sq)
		if err != nil {
			failed++
			continue
		}
		ok++
		want, _, err := refIx.SearchStat(q, sq)
		if err != nil {
			t.Fatal(err)
		}
		if !matchesEqual(want, got) {
			t.Fatalf("query %d: survived the fault but answered wrong (%d vs %d matches)",
				i, len(got), len(want))
		}
	}
	if failed == 0 {
		t.Fatal("30% read-fault rate never failed a query — the chaos injector is not wired")
	}
	if ok == 0 {
		t.Fatal("no query ever succeeded under chaos — cache hits should have served some")
	}
	chaos.Store(false)
	if err := li.Close(); err != nil {
		t.Fatal(err)
	}
	if lh := fs.OpenHandles(); lh != 0 {
		t.Fatalf("closed chaos index leaked %d descriptors", lh)
	}
}
