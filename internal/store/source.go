package store

import (
	"s3cbcd/internal/bitkey"
	"s3cbcd/internal/hilbert"
)

// RecordView is one record surfaced by a RecordSource visit: the columns
// of the columnar store flattened into a value struct, so refinement code
// is independent of whether the record sits in RAM (DB) or was just read
// from disk (ColdFile). FP aliases the source's buffer and is valid only
// for the duration of the callback; callers keeping a fingerprint must
// copy it.
type RecordView struct {
	// Pos is the record's global index in its source (the position a DB
	// or a whole database file assigns it).
	Pos int
	// Key is the record's Hilbert key.
	Key bitkey.Key
	// FP is the fingerprint; valid only during the callback.
	FP []byte
	// ID and TC are the video identifier and time code.
	ID, TC uint32
	// X and Y are the stored interest point position.
	X, Y uint16
}

// RecordSource is the seam refinement visits records through: the
// in-memory DB and the disk-backed ColdFile both satisfy it, which is
// what lets one refine implementation serve resident and cold segments
// alike. Visits over a curve interval set deliver records in the
// canonical stored order (ascending record index); a source backed by
// fallible I/O reports read failures through the returned error.
type RecordSource interface {
	// Curve returns the Hilbert curve the records are ordered by.
	Curve() *hilbert.Curve
	// Len returns the number of records.
	Len() int
	// VisitIntervals calls visit for every record whose key falls in one
	// of the half-open curve intervals. ivs must be sorted by Start and
	// non-overlapping (hilbert.MergeIntervals output qualifies). The
	// visit order is ascending record index; returning false stops the
	// visit early (no error). The error is nil unless the source failed
	// to produce a record — an in-memory DB never fails.
	VisitIntervals(ivs []hilbert.Interval, visit func(RecordView) bool) error
}

// LeanSource is an optional RecordSource refinement for visitors that
// never read fingerprints (statistical refinement: the curve region IS
// the answer). Views are delivered exactly as VisitIntervals would,
// except FP is nil; a source holding a fingerprint-free record layout
// (a codec-bearing ColdFile's lean area) serves it at a fraction of the
// exact bytes.
type LeanSource interface {
	RecordSource
	VisitIntervalsLean(ivs []hilbert.Interval, visit func(RecordView) bool) error
}

// FilteredSource is an optional RecordSource refinement for distance
// predicates: visit every record of the intervals whose exact squared L2
// distance to qf could be at most boundSq, with its exact fingerprint.
// The filter is conservative — records beyond boundSq may also be
// visited, so callers must keep their exact distance check — but every
// record within boundSq is guaranteed to be visited. A quantized source
// rejects most candidates without touching exact record bytes.
type FilteredSource interface {
	RecordSource
	VisitIntervalsFiltered(ivs []hilbert.Interval, qf []float64, boundSq float64,
		visit func(RecordView) bool) error
}

var (
	_ RecordSource   = (*DB)(nil)
	_ RecordSource   = (*ColdFile)(nil)
	_ LeanSource     = (*ColdFile)(nil)
	_ FilteredSource = (*ColdFile)(nil)
)

// VisitIntervals implements RecordSource over the in-memory columns:
// binary-search each interval, scan the range. It never returns a
// non-nil error.
func (db *DB) VisitIntervals(ivs []hilbert.Interval, visit func(RecordView) bool) error {
	for _, iv := range ivs {
		lo, hi := db.FindInterval(iv)
		for i := lo; i < hi; i++ {
			if !visit(RecordView{Pos: i, Key: db.keys[i], FP: db.FP(i),
				ID: db.ids[i], TC: db.tcs[i], X: db.xs[i], Y: db.ys[i]}) {
				return nil
			}
		}
	}
	return nil
}
