package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"testing"
)

func rep(id int, micros int64, errMsg string) TraceReport {
	return TraceReport{Name: "q" + strconv.Itoa(id), TotalMicros: micros, Error: errMsg}
}

func TestTraceStoreViews(t *testing.T) {
	s := NewTraceStore(8) // recent 8, slow 2, errors 2
	for i := 0; i < 12; i++ {
		s.Add(rep(i, int64(100*i), ""))
	}
	s.Add(rep(100, 5, "boom"))
	s.Add(rep(101, 6, "bang"))
	s.Add(rep(102, 7, "crash"))

	recent := s.Snapshot("recent", 0)
	if len(recent) != 8 {
		t.Fatalf("recent size %d", len(recent))
	}
	if recent[0].Name != "q102" || recent[1].Name != "q101" {
		t.Fatalf("recent not newest-first: %s %s", recent[0].Name, recent[1].Name)
	}

	slow := s.Snapshot("slowest", 0)
	if len(slow) != 2 || slow[0].Name != "q11" || slow[1].Name != "q10" {
		t.Fatalf("slowest tail wrong: %+v", slow)
	}

	errs := s.Snapshot("errors", 0)
	if len(errs) != 2 || errs[0].Name != "q102" || errs[1].Name != "q101" {
		t.Fatalf("errors view wrong: %+v", errs)
	}

	if got := s.Snapshot("recent", 3); len(got) != 3 {
		t.Fatalf("n cap ignored: %d", len(got))
	}
	if s.evictions.Value() == 0 {
		t.Fatal("evictions not counted")
	}
}

func TestTraceStoreHandler(t *testing.T) {
	s := NewTraceStore(8)
	s.Add(rep(1, 10, ""))
	s.Add(rep(2, 20, "oops"))

	for _, tc := range []struct {
		url   string
		code  int
		count int
	}{
		{"/debug/traces", 200, 2},
		{"/debug/traces?view=recent&n=1", 200, 1},
		{"/debug/traces?view=slowest", 200, 2},
		{"/debug/traces?view=errors", 200, 1},
		{"/debug/traces?view=bogus", 400, 0},
		{"/debug/traces?n=-1", 400, 0},
	} {
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", tc.url, nil))
		if rr.Code != tc.code {
			t.Fatalf("%s: code %d want %d", tc.url, rr.Code, tc.code)
		}
		if tc.code != 200 {
			continue
		}
		var body struct {
			View   string        `json:"view"`
			Count  int           `json:"count"`
			Traces []TraceReport `json:"traces"`
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s: %v", tc.url, err)
		}
		if body.Count != tc.count || len(body.Traces) != tc.count {
			t.Fatalf("%s: count %d traces %d want %d", tc.url, body.Count, len(body.Traces), tc.count)
		}
	}
}

func TestTraceStoreMetrics(t *testing.T) {
	reg := NewRegistry()
	s := NewTraceStore(8)
	s.RegisterMetrics(reg)
	var sb []byte
	w := &sliceWriter{&sb}
	reg.WritePrometheus(w)
	out := string(sb)
	for _, fam := range []string{
		"s3_trace_spans_total",
		"s3_trace_spans_dropped_total",
		"s3_trace_assembly_failures_total",
		"s3_trace_store_evictions_total",
	} {
		if !containsSeries(out, fam) {
			t.Fatalf("family %s missing from exposition:\n%s", fam, out)
		}
	}
	var nilStore *TraceStore
	nilStore.Add(TraceReport{})
	if nilStore.Snapshot("recent", 0) != nil {
		t.Fatal("nil store snapshot")
	}
}

type sliceWriter struct{ b *[]byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w.b = append(*w.b, p...)
	return len(p), nil
}

func containsSeries(exposition, family string) bool {
	for _, line := range splitLines(exposition) {
		if len(line) >= len(family) && line[:len(family)] == family {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
