package hilbert

import (
	"sort"
	"testing"
)

// FuzzFrontierResume drives the resumable descent through randomized
// interrupt-and-resume schedules: a descent is run at a strong threshold,
// its pruned frontier is resumed at an intermediate threshold (growing
// the frontier further), and resumed again at the final threshold. The
// accumulated leaf sequence must equal a single fresh descent at the
// final threshold, whatever the curve geometry or pruning pattern.
func FuzzFrontierResume(f *testing.F) {
	f.Add(uint8(3), uint8(3), uint8(7), uint64(1))
	f.Add(uint8(2), uint8(4), uint8(8), uint64(42))
	f.Add(uint8(5), uint8(2), uint8(9), uint64(7))
	f.Add(uint8(1), uint8(5), uint8(5), uint64(99))
	f.Fuzz(func(t *testing.T, dimsRaw, orderRaw, depthRaw uint8, seed uint64) {
		dims := int(dimsRaw)%5 + 1
		order := int(orderRaw)%4 + 1
		c := MustNew(dims, order)
		maxDepth := c.IndexBits()
		if maxDepth > 12 {
			maxDepth = 12
		}
		depth := int(depthRaw)%maxDepth + 1
		side := c.SideLen()

		// Three thresholds derived from the seed, strongest first. Scores
		// are products of power-of-two factors (see hashFactor), so exact
		// threshold values do not matter for determinism.
		ts := []float64{
			1 / float64(uint64(1)<<(seed%6+1)),
			1 / float64(uint64(1)<<(seed%6+3)),
			1 / float64(uint64(1)<<(seed%6+6)),
		}
		tFinal := ts[len(ts)-1]

		fd := c.NewFrontierDescent()
		var frontier []Node
		capture := func(n Node) {
			frontier = append(frontier, CopyNode(n, make([]uint32, 2*dims)))
		}

		// Interrupted schedule: descend at ts[0], then resume the live
		// frontier at each weaker threshold in turn.
		first := newScoreVisitor(dims, seed, ts[0])
		fd.Descend(c.RootNode(), depth, first, capture)
		leaves := append([]Interval(nil), first.leaves...)
		for _, tr := range ts[1:] {
			pending := frontier
			frontier = nil
			for _, n := range pending {
				v := newScoreVisitor(dims, seed, tr)
				v.reseed(n, side)
				if v.prod <= tr {
					frontier = append(frontier, n) // still pruned, keep for later
					continue
				}
				fd.Descend(n, depth, v, capture)
				leaves = append(leaves, v.leaves...)
			}
		}
		sort.Slice(leaves, func(i, j int) bool { return leaves[i].Start.Less(leaves[j].Start) })

		// Fresh descent at the final threshold.
		fresh := newScoreVisitor(dims, seed, tFinal)
		fd.Descend(c.RootNode(), depth, fresh, nil)

		if len(leaves) != len(fresh.leaves) {
			t.Fatalf("dims=%d order=%d depth=%d seed=%d: resumed %d leaves, fresh %d",
				dims, order, depth, seed, len(leaves), len(fresh.leaves))
		}
		for i := range leaves {
			if leaves[i] != fresh.leaves[i] {
				t.Fatalf("dims=%d order=%d depth=%d seed=%d: leaf %d differs",
					dims, order, depth, seed, i)
			}
		}
	})
}
