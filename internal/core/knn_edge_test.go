package core

// Edge-case coverage for the exact (knn.go) and probabilistic
// (probknn.go) k-NN paths: empty index, k larger than the record count,
// invalid parameters, duplicate distances and the filtered variant.

import (
	"context"
	"testing"

	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/store"
)

func knnTestIndex(t *testing.T, recs []store.Record) *Index {
	t.Helper()
	db := store.MustBuild(hilbert.MustNew(liveTestDims, liveTestOrder), recs)
	ix, err := NewIndex(db, liveTestDepth)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func assertSortedByDist(t *testing.T, ms []Match, label string) {
	t.Helper()
	for i := 1; i < len(ms); i++ {
		if ms[i].Dist < ms[i-1].Dist {
			t.Fatalf("%s: results not sorted by distance at %d", label, i)
		}
	}
}

func TestSearchKNNEmptyIndex(t *testing.T) {
	ix := knnTestIndex(t, nil)
	ms, stats, err := ix.SearchKNN([]byte{1, 2, 3, 4}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("empty index returned %d matches", len(ms))
	}
	if !stats.Exact {
		t.Fatal("empty-index search not marked exact")
	}
}

func TestSearchKNNKGreaterThanN(t *testing.T) {
	recs := []store.Record{
		{FP: []byte{1, 1, 1, 1}, ID: 1, TC: 1},
		{FP: []byte{8, 8, 8, 8}, ID: 2, TC: 2},
		{FP: []byte{30, 30, 30, 30}, ID: 3, TC: 3},
	}
	ix := knnTestIndex(t, recs)
	ms, stats, err := ix.SearchKNN([]byte{1, 1, 1, 1}, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(recs) {
		t.Fatalf("k > n returned %d matches, want all %d records", len(ms), len(recs))
	}
	if !stats.Exact {
		t.Fatal("k > n search not marked exact")
	}
	assertSortedByDist(t, ms, "k > n")
	if ms[0].ID != 1 || ms[0].Dist != 0 {
		t.Fatalf("nearest record wrong: %+v", ms[0])
	}
}

func TestSearchKNNInvalidParams(t *testing.T) {
	ix := knnTestIndex(t, []store.Record{{FP: []byte{1, 2, 3, 4}}})
	if _, _, err := ix.SearchKNN([]byte{1, 2, 3, 4}, 0, 0); err == nil {
		t.Fatal("k = 0 accepted")
	}
	if _, _, err := ix.SearchKNN([]byte{1, 2, 3, 4}, -5, 0); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, _, err := ix.SearchKNN([]byte{1, 2}, 1, 0); err == nil {
		t.Fatal("wrong-dimension query accepted")
	}
}

// Duplicate fingerprints: every returned match ties at distance zero and
// the result still holds exactly k records.
func TestSearchKNNDuplicateDistances(t *testing.T) {
	var recs []store.Record
	for i := 0; i < 6; i++ {
		recs = append(recs, store.Record{FP: []byte{7, 7, 7, 7}, ID: uint32(i), TC: uint32(i)})
	}
	recs = append(recs, store.Record{FP: []byte{20, 20, 20, 20}, ID: 100, TC: 100})
	ix := knnTestIndex(t, recs)
	ms, stats, err := ix.SearchKNN([]byte{7, 7, 7, 7}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("got %d matches, want 3", len(ms))
	}
	for _, m := range ms {
		if m.Dist != 0 {
			t.Fatalf("expected a zero-distance tie, got %+v", m)
		}
		if m.ID == 100 {
			t.Fatal("far record displaced a zero-distance duplicate")
		}
	}
	if !stats.Exact {
		t.Fatal("duplicate-distance search not marked exact")
	}
}

func TestSearchKNNFilterSkipsRejected(t *testing.T) {
	recs := []store.Record{
		{FP: []byte{1, 1, 1, 1}, ID: 1, TC: 1},
		{FP: []byte{1, 1, 1, 2}, ID: 2, TC: 2},
		{FP: []byte{1, 1, 1, 3}, ID: 3, TC: 3},
	}
	ix := knnTestIndex(t, recs)
	ms, _, err := ix.SearchKNNFilter([]byte{1, 1, 1, 1}, 2, 0, func(id uint32) bool { return id != 1 })
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d matches, want 2", len(ms))
	}
	for _, m := range ms {
		if m.ID == 1 {
			t.Fatal("rejected id returned")
		}
	}
	// Rejecting everything yields an empty exact answer.
	ms, stats, err := ix.SearchKNNFilter([]byte{1, 1, 1, 1}, 2, 0, func(uint32) bool { return false })
	if err != nil || len(ms) != 0 {
		t.Fatalf("reject-all: got %d matches, err %v", len(ms), err)
	}
	if !stats.Exact {
		t.Fatal("reject-all search not marked exact")
	}
}

func TestSearchKNNMaxLeavesEarlyStop(t *testing.T) {
	var recs []store.Record
	for i := 0; i < 64; i++ {
		recs = append(recs, store.Record{FP: []byte{byte(i % 32), byte(i / 2 % 32), 3, 4}, ID: uint32(i), TC: uint32(i)})
	}
	ix := knnTestIndex(t, recs)
	ms, stats, err := ix.SearchKNN([]byte{5, 5, 3, 4}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Leaves > 1 {
		t.Fatalf("refined %d leaves with maxLeaves=1", stats.Leaves)
	}
	if len(ms) > 5 {
		t.Fatalf("returned %d matches for k=5", len(ms))
	}
	assertSortedByDist(t, ms, "early stop")
}

func TestSearchKNNProbEdgeCases(t *testing.T) {
	model := IsoNormal{D: liveTestDims, Sigma: 2}
	ix := knnTestIndex(t, []store.Record{
		{FP: []byte{4, 4, 4, 4}, ID: 1, TC: 1},
		{FP: []byte{4, 4, 4, 5}, ID: 2, TC: 2},
	})
	q := []byte{4, 4, 4, 4}
	if _, _, err := ix.SearchKNNProb(q, 0, 0.9, model); err == nil {
		t.Fatal("k = 0 accepted")
	}
	for _, conf := range []float64{0, 1, -0.5, 1.5} {
		if _, _, err := ix.SearchKNNProb(q, 1, conf, model); err == nil {
			t.Fatalf("confidence %v accepted", conf)
		}
	}
	if _, _, err := ix.SearchKNNProb([]byte{1}, 1, 0.9, model); err == nil {
		t.Fatal("wrong-dimension query accepted")
	}

	// k > n returns everything inside the visited region.
	ms, stats, err := ix.SearchKNNProb(q, 10, 0.95, model)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) > 2 {
		t.Fatalf("returned %d matches from a 2-record index", len(ms))
	}
	if stats.VisitedMass < 0.95 {
		t.Fatalf("visited mass %v below requested confidence", stats.VisitedMass)
	}
	assertSortedByDist(t, ms, "prob k > n")

	// Empty index: no matches, no error, confidence still honored.
	emptyIx := knnTestIndex(t, nil)
	ms, stats, err = emptyIx.SearchKNNProb(q, 3, 0.9, model)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("empty index returned %d matches", len(ms))
	}
	if stats.VisitedMass < 0.9 {
		t.Fatalf("visited mass %v below requested confidence", stats.VisitedMass)
	}
}

// The live index's k-NN path shares these edges: empty index and k > n.
func TestLiveSearchKNNEdgeCases(t *testing.T) {
	li, err := OpenLiveIndex(liveTestCurve(), "", LiveOptions{Depth: liveTestDepth, MemtableRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer li.Close()
	ctx := context.Background()
	q := []byte{1, 2, 3, 4}
	ms, stats, err := li.SearchKNN(ctx, q, 3, 0)
	if err != nil || len(ms) != 0 {
		t.Fatalf("empty live index: %d matches, err %v", len(ms), err)
	}
	if !stats.Exact {
		t.Fatal("empty live k-NN not marked exact")
	}
	if _, _, err := li.SearchKNN(ctx, q, 0, 0); err == nil {
		t.Fatal("k = 0 accepted")
	}
	if _, _, err := li.SearchKNN(ctx, []byte{1}, 1, 0); err == nil {
		t.Fatal("wrong-dimension query accepted")
	}
	recs := []store.Record{
		{FP: []byte{1, 2, 3, 4}, ID: 1, TC: 1},
		{FP: []byte{2, 2, 3, 4}, ID: 2, TC: 2},
		{FP: []byte{9, 9, 9, 9}, ID: 3, TC: 3},
	}
	if err := li.Ingest(recs); err != nil {
		t.Fatal(err)
	}
	ms, stats, err = li.SearchKNN(ctx, q, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || !stats.Exact {
		t.Fatalf("k > n over segments: %d matches (exact %v), want 3 exact", len(ms), stats.Exact)
	}
	assertSortedByDist(t, ms, "live k > n")
}
