package vote

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickPlantedOffsetRecovery property-tests the estimator: for any
// planted integer offset and any pollution pattern, the planted id must
// be recovered with an offset within the tolerance, as long as a clear
// majority of candidates carry the coherent match.
func TestQuickPlantedOffsetRecovery(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed int64, rawOffset int16, rawN uint8) bool {
		r := rand.New(rand.NewSource(seed))
		offset := float64(rawOffset)
		n := 10 + int(rawN)%15
		cands := make([]Candidate, n)
		for j := range cands {
			tcQ := uint32(40000 + 13*j)
			c := Candidate{TC: tcQ}
			c.Matches = append(c.Matches, Match{ID: 5, TC: uint32(float64(tcQ) - offset)})
			// Up to 2 random polluters per candidate.
			for k := 0; k < r.Intn(3); k++ {
				c.Matches = append(c.Matches, Match{ID: uint32(100 + r.Intn(20)), TC: uint32(r.Intn(1 << 20))})
			}
			cands[j] = c
		}
		dets := Decide(cands, cfg)
		if len(dets) == 0 || dets[0].ID != 5 {
			return false
		}
		if dets[0].Votes != n {
			return false
		}
		return math.Abs(dets[0].Offset-offset) <= cfg.Tolerance
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVotesNeverExceedCandidates: n_sim counts candidate
// fingerprints, so it can never exceed their number whatever the match
// multiplicity.
func TestQuickVotesNeverExceedCandidates(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(rawN)%20
		cands := make([]Candidate, n)
		for j := range cands {
			c := Candidate{TC: uint32(1000 + j)}
			for k := 0; k < 1+r.Intn(6); k++ {
				c.Matches = append(c.Matches, Match{ID: uint32(r.Intn(4)), TC: uint32(r.Intn(5000))})
			}
			cands[j] = c
		}
		for _, d := range Score(cands, DefaultConfig()) {
			if d.Votes > n || d.Votes < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
