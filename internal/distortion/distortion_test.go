package distortion

import (
	"math"
	"testing"

	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/vidsim"
)

func testSeqs(n int) []*vidsim.Sequence {
	seqs := make([]*vidsim.Sequence, n)
	for i := range seqs {
		cfg := vidsim.DefaultConfig(int64(100 + i))
		cfg.MinShot, cfg.MaxShot = 20, 30
		seqs[i] = vidsim.Generate(cfg, 80)
	}
	return seqs
}

func TestIdentityTransformHasTinyDistortion(t *testing.T) {
	seqs := testSeqs(2)
	est, err := EstimateModel(seqs, vidsim.Identity{}, fingerprint.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if est.Pairs < 20 {
		t.Fatalf("only %d pairs", est.Pairs)
	}
	// Identity at identical positions: quantization is the only noise.
	if est.Sigma > 1 {
		t.Fatalf("identity sigma %v", est.Sigma)
	}
}

func TestSeverityOrdering(t *testing.T) {
	// The paper's severity criterion: stronger transformations yield
	// larger sigma. Compare mild vs strong gamma, and mild vs strong
	// resize.
	seqs := testSeqs(2)
	cfg := fingerprint.DefaultConfig()
	mildGamma, err := EstimateModel(seqs, vidsim.Gamma{G: 0.95}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	strongGamma, err := EstimateModel(seqs, vidsim.Gamma{G: 2.1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mildGamma.Sigma >= strongGamma.Sigma {
		t.Fatalf("severity inversion: gamma 0.95 -> %v, gamma 2.1 -> %v",
			mildGamma.Sigma, strongGamma.Sigma)
	}
	mildResize, err := EstimateModel(seqs, vidsim.Resize{Scale: 0.98}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	strongResize, err := EstimateModel(seqs, vidsim.Resize{Scale: 0.80}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mildResize.Sigma >= strongResize.Sigma {
		t.Fatalf("severity inversion: resize 0.98 -> %v, resize 0.80 -> %v",
			mildResize.Sigma, strongResize.Sigma)
	}
}

func TestPairDeltaNorm(t *testing.T) {
	var p Pair
	p.Ref[0], p.Dist[0] = 10, 4
	p.Ref[5], p.Dist[5] = 0, 8
	d := p.Delta()
	if d[0] != 6 || d[5] != -8 {
		t.Fatalf("delta: %v", d)
	}
	if got := p.Norm(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("norm %v", got)
	}
}

func TestFitEmptyFails(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Fatal("empty fit accepted")
	}
}

func TestFitMoments(t *testing.T) {
	// Two symmetric pairs: component 0 distorted by ±4 -> sigma_0 = 4.
	var a, b Pair
	a.Ref[0], a.Dist[0] = 14, 10
	b.Ref[0], b.Dist[0] = 10, 14
	est, err := Fit([]Pair{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Sigmas[0]-4) > 1e-12 {
		t.Fatalf("sigma_0 = %v", est.Sigmas[0])
	}
	if math.Abs(est.Sigma-4.0/fingerprint.D) > 1e-12 {
		t.Fatalf("mean sigma = %v", est.Sigma)
	}
}

func TestNorms(t *testing.T) {
	var a Pair
	a.Ref[0], a.Dist[0] = 3, 0
	ns := Norms([]Pair{a, {}})
	if len(ns) != 2 || ns[0] != 3 || ns[1] != 0 {
		t.Fatalf("norms: %v", ns)
	}
}

func TestCollectPairsSkipsOffFramePoints(t *testing.T) {
	seqs := testSeqs(1)
	// A huge shift pushes most points out of frame; the collector must
	// not crash and must return fewer pairs than identity.
	cfg := fingerprint.DefaultConfig()
	idPairs := CollectPairs(seqs, vidsim.Identity{}, cfg)
	shiftPairs := CollectPairs(seqs, vidsim.VShift{Frac: 0.9}, cfg)
	if len(shiftPairs) >= len(idPairs) {
		t.Fatalf("shift 90%% kept %d of %d pairs", len(shiftPairs), len(idPairs))
	}
}
