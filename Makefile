GO ?= go

# Packages touched by the sharded query engine; they get the extra -race
# pass because they exercise real concurrency. internal/obs rides along:
# its counters and histograms are written from every engine goroutine.
RACE_PKGS = . ./internal/core ./internal/store ./internal/httpapi ./internal/cbcd ./internal/obs ./internal/router

.PHONY: check vet build test race cover bench bench-shard bench-plan bench-cold bench-sketch bench-plancache bench-router bench-obs faults chaos-router

# check is the full verification gate: static checks, build, all tests,
# then the race detector over the engine packages.
check: vet build test race

# vet is go vet plus the metric-name lint: every exported s3_* family
# must be constructed at exactly one site and documented in
# docs/METRICS.md (scripts/check_metrics.sh).
vet:
	$(GO) vet ./...
	sh scripts/check_metrics.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# faults runs the chaos suite — the crash harness (a crash injected at
# every I/O operation of a randomized schedule), transient-fault and
# degraded-mode tests — under the race detector with a randomized
# schedule seed. The seed is printed by each test; rerun a failure with
# FAULT_SEED=<seed> make faults.
ifeq ($(origin FAULT_SEED), undefined)
FAULT_SEED := $(shell date +%s%N)
endif
faults:
	@echo "fault injection with FAULT_SEED=$(FAULT_SEED)"
	FAULT_SEED=$(FAULT_SEED) $(GO) test -race -count=1 \
		-run 'TestLiveIndex(CrashHarness|RetriesTransientFaults|DegradedMode|CompactionDegradedHeals|SealFailureLeavesNoOrphans)|TestOpenFault|TestLoadRecords(FaultyReadAt|ShortReadAt)|TestDegradedWrites503|TestColdRead' \
		./internal/core ./internal/store ./internal/httpapi ./internal/faultfs

# chaos-router runs the router's fault-injection suite under -race with
# a randomized schedule seed: flaky backends serving 503s, torn
# responses, hangs and slow replies behind the coordinator, asserting
# zero user-visible 5xx on strict queries, byte-identical merged
# answers, and metrics that account for every injected failure. Rerun a
# failure with FAULT_SEED=<seed> make chaos-router.
chaos-router:
	@echo "router chaos with FAULT_SEED=$(FAULT_SEED)"
	FAULT_SEED=$(FAULT_SEED) $(GO) test -race -count=1 \
		-run 'TestChaos' ./internal/router

# cover prints per-package statement coverage (and leaves cover.out for
# `go tool cover -html=cover.out`).
cover:
	$(GO) test -cover -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem .

# bench-shard regenerates BENCH_shard.json (shard count x GOMAXPROCS
# throughput sweep over a 500k fingerprint corpus).
bench-shard:
	$(GO) test -run TestShardThroughputSweep -bench-shard -timeout 30m .

# bench-plan regenerates BENCH_plan.json (incremental frontier planner vs
# legacy multi-descent threshold search: descent nodes and plans/sec over
# the 500k fingerprint corpus).
bench-plan:
	$(GO) test -run TestPlanBenchSweep -bench-plan -timeout 30m .

# bench-cold regenerates BENCH_cold.json (cold-tier serving vs
# all-resident: bytes read per query, cache hit rate and queries/sec at
# cache budgets down to ~10% of the corpus record bytes; sketch-on/off
# and codec-on/off rows included).
bench-cold:
	$(GO) test -run TestColdBenchSweep -bench-cold -timeout 30m .

# bench-plancache regenerates BENCH_plancache.json (plan cache vs
# uncached planning on a repeated-query monitoring workload over the
# 500k fingerprint corpus; asserts >=2x plans/sec and >=90% steady-state
# hit rate at byte-identical answers).
bench-plancache:
	$(GO) test -run TestPlanCacheBenchSweep -bench-plancache -timeout 30m .

# bench-sketch is bench-cold's sketch/codec view: the same sweep, which
# asserts >=2x fewer disk bytes per uncached cold query with sketches and
# the quantized codec on, at answers byte-identical to the resident
# baseline.
bench-sketch:
	$(GO) test -run TestColdBenchSweep -bench-cold -timeout 30m .

# bench-router regenerates BENCH_router.json (hedged vs unhedged tail
# latency through the scatter/gather coordinator with one uniformly
# slow replica; asserts >=2x better hedged p99 at byte-identical
# answers).
bench-router:
	$(GO) test -run TestRouterBenchSweep -bench-router -timeout 30m .

# bench-obs regenerates BENCH_obs.json (span tracing overhead on the
# statistical query path over the 500k fingerprint corpus; asserts <=5%
# throughput loss at 1% sampling and zero allocations on the untraced
# plan path).
bench-obs:
	$(GO) test -run TestObsBenchSweep -bench-obs -timeout 30m .
