package httpapi

// Observability surface of the API: GET /metrics serves Prometheus text
// covering HTTP, engine/live-index and (when wired) store-I/O series,
// and ?trace=1 attaches a stage-level execution trace to a search
// response.

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/obs"
	"s3cbcd/internal/store"
)

// testServerOpt is testServer with explicit Options (observability tests
// tune Metrics and TraceRate).
func testServerOpt(t *testing.T, opt Options) *Server {
	t.Helper()
	curve := hilbert.MustNew(8, 8)
	r := rand.New(rand.NewSource(1))
	recs := make([]store.Record, 600)
	for i := range recs {
		fp := make([]byte, 8)
		for j := range fp {
			fp[j] = byte(r.Intn(256))
		}
		recs[i] = store.Record{FP: fp, ID: uint32(i), TC: uint32(2 * i), X: uint16(i), Y: uint16(i + 1)}
	}
	opt.Shards, opt.Workers = 4, 4
	s, err := New(store.MustBuild(curve, recs), opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fp8 is a valid 8-dim query fingerprint for the static test server.
var fp8 = []int{10, 20, 30, 40, 50, 60, 70, 80}

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestMetricsEndpointStatic(t *testing.T) {
	s, _ := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Serve one query so the engine series move.
	resp, _ := post(t, ts, "/search/statistical", map[string]interface{}{
		"fingerprint": fp8, "alpha": 0.9, "sigma": 30})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}

	text := scrape(t, ts)
	for _, want := range []string{
		"# TYPE s3_engine_plans_total counter",
		"# TYPE s3_engine_plan_seconds histogram",
		"s3_engine_stat_queries_total 1",
		`s3_http_request_seconds_bucket{route="/search/statistical",le="+Inf"} 1`,
		`s3_http_requests_total{route="/search/statistical",code="2xx"} 1`,
		"s3_http_inflight_requests",
		"s3_engine_workers",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}

func TestMetricsEndpointLive(t *testing.T) {
	s, _ := liveTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	if resp, out := post(t, ts, "/ingest", ingestBody(7, []int{1, 2, 3, 4})); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d: %v", resp.StatusCode, out)
	}
	text := scrape(t, ts)
	for _, want := range []string{
		"s3_live_ingested_records_total 1",
		"# TYPE s3_live_seal_seconds histogram",
		"s3_live_memtable_records 1",
		"s3_live_degraded 0",
		`s3_http_requests_total{route="/ingest",code="2xx"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}

// A caller-supplied registry lets store-I/O counters render next to the
// server's own series (the s3serve wiring).
func TestMetricsSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("s3_store_read_bytes_total", "t").Add(123)
	ts := httptest.NewServer(testServerOpt(t, Options{Metrics: reg}))
	defer ts.Close()

	text := scrape(t, ts)
	if !strings.Contains(text, "s3_store_read_bytes_total 123") {
		t.Error("/metrics does not include caller-registered store series")
	}
	if !strings.Contains(text, "s3_engine_plans_total") {
		t.Error("/metrics does not include engine series on a shared registry")
	}
}

func TestTraceKnob(t *testing.T) {
	s, _ := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Untraced by default (TraceRate 0).
	resp, out := post(t, ts, "/search/statistical", map[string]interface{}{
		"fingerprint": fp8, "alpha": 0.9, "sigma": 30})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	if _, present := out["trace"]; present {
		t.Fatal("untraced search carries a trace")
	}

	// ?trace=1 opts in regardless of the sampling rate.
	resp, out = post(t, ts, "/search/statistical?trace=1", map[string]interface{}{
		"fingerprint": fp8, "alpha": 0.9, "sigma": 30})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced search status %d", resp.StatusCode)
	}
	tr, ok := out["trace"].(map[string]interface{})
	if !ok {
		t.Fatalf("traced search response lacks a trace object: %v", out)
	}
	stages, _ := tr["stages"].([]interface{})
	names := make([]string, 0, len(stages))
	for _, st := range stages {
		names = append(names, st.(map[string]interface{})["name"].(string))
	}
	if len(names) < 2 || names[0] != "plan" || names[1] != "refine" {
		t.Fatalf("trace stages %v, want [plan refine ...]", names)
	}
	if tr["totalMicros"].(float64) < 0 || tr["blocks"].(float64) <= 0 {
		t.Fatalf("trace counters implausible: %v", tr)
	}
}

// TraceRate 1 with a fixed seed samples every query even without the
// knob.
func TestTraceSampling(t *testing.T) {
	ts := httptest.NewServer(testServerOpt(t, Options{TraceRate: 1, TraceSeed: 7}))
	defer ts.Close()

	_, out := post(t, ts, "/search/range", map[string]interface{}{
		"fingerprint": fp8, "epsilon": 20.0})
	if _, present := out["trace"]; !present {
		t.Fatalf("rate-1 sampler did not trace the search: %v", out)
	}
}
