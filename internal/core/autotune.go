package core

import (
	"sync"
	"sync/atomic"
	"time"

	"s3cbcd/internal/obs"
)

// This file implements the online cost-model auto-tuner. The paper
// picks the partition depth offline as p_min = argmin T(p), the total
// retrieval time as a function of depth; PR 5's instrumentation split
// every query into the two terms of that model — plan_seconds (the
// filtering step, growing with depth) and refine_seconds (the record
// scan, shrinking with depth as blocks tighten). The tuner re-fits the
// trade-off online: it accumulates the observed split over a window of
// queries, and at each refit nudges the threshold-search parameters —
// and, where allowed, the depth — toward the cheaper side, damped so a
// noisy window cannot make it oscillate. The published tuning is part
// of the plan cache key, so a parameter change invalidates cached plans
// automatically instead of corrupting them.

// DefaultAutoTuneInterval is the refit window in queries.
const DefaultAutoTuneInterval = 256

// DefaultAutoTuneDamping is the cost-improvement factor a refit must
// predict before reversing an earlier depth move: the observed mean
// cost at the target depth must be below damping × the current depth's.
const DefaultAutoTuneDamping = 0.85

// Bounds the tuner confines the threshold-search schedule to. The
// static defaults (bracketStep=2, thresholdTol=1.1) sit inside both
// ranges; the extremes are still sane searches — a step near 1.5 walks
// gently, a tolerance near 1.5 accepts a coarse bracket.
const (
	minBracketStep  = 1.5
	maxBracketStep  = 4.0
	minThresholdTol = 1.02
	maxThresholdTol = 1.5
)

// AutoTuneOptions enables and shapes the online tuner.
type AutoTuneOptions struct {
	// Enabled turns the tuner on.
	Enabled bool
	// Interval is the refit window in observed queries. 0 selects
	// DefaultAutoTuneInterval.
	Interval int
	// Damping is the predicted-improvement factor required before the
	// tuner reverses a previous depth move (see DefaultAutoTuneDamping);
	// 0 selects the default. Larger values (closer to 1) damp less.
	Damping float64
	// TuneDepth allows the tuner to move the partition depth. Only the
	// static Engine honors it: a LiveIndex pins depth, because its
	// segment sketches are built at the shared depth and a plan at any
	// other depth could not consult them.
	TuneDepth bool
}

func (o AutoTuneOptions) withDefaults() AutoTuneOptions {
	if o.Interval <= 0 {
		o.Interval = DefaultAutoTuneInterval
	}
	if o.Damping <= 0 || o.Damping >= 1 {
		o.Damping = DefaultAutoTuneDamping
	}
	return o
}

// AutoTuneStats is a point-in-time report of the tuner.
type AutoTuneStats struct {
	// Depth, BracketStep and ThresholdTol are the currently published
	// threshold-search parameters.
	Depth        int
	BracketStep  float64
	ThresholdTol float64
	// Refits counts completed refit windows; Changes counts refits that
	// published different parameters.
	Refits, Changes int64
}

// autoTuneMetrics are the tuner's instruments (construct-unregistered,
// published by RegisterMetrics).
type autoTuneMetrics struct {
	refits  *obs.Counter
	changes *obs.Counter
}

func newAutoTuneMetrics() autoTuneMetrics {
	return autoTuneMetrics{
		refits: obs.NewCounter("s3_autotune_refits_total",
			"completed auto-tune refit windows"),
		changes: obs.NewCounter("s3_autotune_param_changes_total",
			"refits that published changed threshold-search parameters"),
	}
}

// autoTuner adapts the threshold-search tuning from the observed
// plan/refine cost split. Observation is a few atomics per query; the
// refit itself runs under a mutex once per window. Safe for concurrent
// use.
type autoTuner struct {
	opt                AutoTuneOptions
	minDepth, maxDepth int

	cur atomic.Pointer[tuning]

	// Window accumulators, reset at each refit.
	queries     atomic.Int64
	planNanos   atomic.Int64
	refineNanos atomic.Int64

	mu sync.Mutex
	// depthCost is the per-depth EMA of mean per-query cost (plan +
	// refine nanos), the fitted T(p) sampled where the tuner has been.
	depthCost map[int]float64
	// lastMove is the direction of the previous depth change (-1/0/+1);
	// reversing it is what the damping bound gates.
	lastMove int
	flips    int

	met autoTuneMetrics
}

// newAutoTuner builds a tuner publishing seed as its initial tuning,
// with depth confined to [minDepth, maxDepth] (equal values pin it).
func newAutoTuner(opt AutoTuneOptions, seed tuning, minDepth, maxDepth int) *autoTuner {
	tn := &autoTuner{opt: opt.withDefaults(), minDepth: minDepth, maxDepth: maxDepth,
		depthCost: make(map[int]float64), met: newAutoTuneMetrics()}
	tn.cur.Store(&seed)
	return tn
}

// current returns the published tuning.
func (tn *autoTuner) current() *tuning { return tn.cur.Load() }

// observe records one executed query's plan/refine wall-time split and
// refits once the window fills.
func (tn *autoTuner) observe(planDur, refineDur time.Duration) {
	tn.planNanos.Add(int64(planDur))
	tn.refineNanos.Add(int64(refineDur))
	if tn.queries.Add(1) >= int64(tn.opt.Interval) {
		tn.refit()
	}
}

// refit drains the window and publishes the adapted tuning. Concurrent
// refit triggers collapse onto one refit (TryLock) so the query hot
// path never queues behind the fit.
func (tn *autoTuner) refit() {
	if !tn.mu.TryLock() {
		return
	}
	defer tn.mu.Unlock()
	q := tn.queries.Load()
	if q < int64(tn.opt.Interval) {
		return // another refit drained this window first
	}
	plan := tn.planNanos.Swap(0)
	refine := tn.refineNanos.Swap(0)
	tn.queries.Add(-q)
	tn.met.refits.Inc()

	cur := *tn.cur.Load()
	next := cur

	avgPlan := float64(plan) / float64(q)
	avgRefine := float64(refine) / float64(q)
	avgTotal := avgPlan + avgRefine

	// Fold the window into the T(p) sample at the current depth (EMA so
	// one noisy window cannot swing a later comparison).
	const emaNew = 0.4
	if old, ok := tn.depthCost[cur.depth]; ok {
		tn.depthCost[cur.depth] = (1-emaNew)*old + emaNew*avgTotal
	} else {
		tn.depthCost[cur.depth] = avgTotal
	}

	// Which term dominates decides every adjustment. The thresholds are
	// deliberately asymmetric around 1: near-balanced workloads change
	// nothing.
	const dominanceRatio = 4.0
	refineDominated := avgRefine > dominanceRatio*avgPlan
	planDominated := avgPlan > dominanceRatio*avgRefine

	// Threshold-search schedule: when refinement dominates, a tighter
	// final bracket (smaller tolerance) and a gentler walk buy a smaller
	// block set for nearly-free extra plan evaluations; when planning
	// dominates, the reverse trade releases plan time.
	switch {
	case refineDominated:
		next.thresholdTol = clampF(1+(next.thresholdTol-1)*0.7, minThresholdTol, maxThresholdTol)
		next.bracketStep = clampF(next.bracketStep*0.85, minBracketStep, maxBracketStep)
	case planDominated:
		next.thresholdTol = clampF(1+(next.thresholdTol-1)*1.3, minThresholdTol, maxThresholdTol)
		next.bracketStep = clampF(next.bracketStep*1.15, minBracketStep, maxBracketStep)
	}

	// Depth: move toward the cheaper side of T(p). Deeper partitions
	// shift cost from refine to plan (smaller blocks, fewer candidates,
	// more tree), so refine-dominated windows push deeper and
	// plan-dominated windows shallower. A move reversing the previous
	// one is allowed only if the target depth's observed cost beats the
	// current depth's by the damping factor — an unobserved hunch can
	// explore in one direction, but never flip-flop on noise.
	if tn.opt.TuneDepth {
		dir := 0
		if refineDominated {
			dir = 1
		} else if planDominated {
			dir = -1
		}
		target := clampI(cur.depth+dir, tn.minDepth, tn.maxDepth)
		if dir != 0 && target != cur.depth {
			allowed := true
			if tc, ok := tn.depthCost[target]; ok && tc >= tn.opt.Damping*tn.depthCost[cur.depth] {
				allowed = false
			}
			if tn.lastMove != 0 && dir == -tn.lastMove {
				tc, ok := tn.depthCost[target]
				if !ok || tc >= tn.opt.Damping*tn.depthCost[cur.depth] {
					allowed = false
				}
			}
			if allowed {
				next.depth = target
				if tn.lastMove != 0 && dir == -tn.lastMove {
					tn.flips++
				}
				tn.lastMove = dir
			}
		}
	}

	if next != cur {
		tn.met.changes.Inc()
		v := next
		tn.cur.Store(&v)
	}
}

// statsSnapshot reads the published tuning and lifetime counters.
func (tn *autoTuner) statsSnapshot() AutoTuneStats {
	cur := tn.cur.Load()
	return AutoTuneStats{
		Depth:        cur.depth,
		BracketStep:  cur.bracketStep,
		ThresholdTol: cur.thresholdTol,
		Refits:       tn.met.refits.Value(),
		Changes:      tn.met.changes.Value(),
	}
}

// RegisterMetrics publishes the tuner's counters and parameter gauges
// into r. Call at most once per registry.
func (tn *autoTuner) RegisterMetrics(r *obs.Registry) {
	r.MustRegister(tn.met.refits, tn.met.changes)
	r.GaugeFunc("s3_autotune_depth", "partition depth the tuner currently plans at",
		func() float64 { return float64(tn.cur.Load().depth) })
	r.GaugeFunc("s3_autotune_bracket_step", "current downward bracket-walk factor",
		func() float64 { return tn.cur.Load().bracketStep })
	r.GaugeFunc("s3_autotune_threshold_tol", "current secant-refinement termination tolerance",
		func() float64 { return tn.cur.Load().thresholdTol })
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
