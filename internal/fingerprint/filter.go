package fingerprint

import (
	"math"

	"s3cbcd/internal/vidsim"
)

// gaussKernel builds a normalized 1-D Gaussian kernel of standard
// deviation sigma, truncated at 3 sigma.
func gaussKernel(sigma float64) []float64 {
	r := int(math.Ceil(3 * sigma))
	if r < 1 {
		r = 1
	}
	k := make([]float64, 2*r+1)
	sum := 0.0
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		k[i+r] = v
		sum += v
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// smooth1D convolves xs with a Gaussian of std-dev sigma using replicate
// padding. It returns a new slice.
func smooth1D(xs []float64, sigma float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	k := gaussKernel(sigma)
	r := len(k) / 2
	out := make([]float64, len(xs))
	for i := range xs {
		s := 0.0
		for j := -r; j <= r; j++ {
			idx := i + j
			if idx < 0 {
				idx = 0
			} else if idx >= len(xs) {
				idx = len(xs) - 1
			}
			s += k[j+r] * xs[idx]
		}
		out[i] = s
	}
	return out
}

// smoothFrame applies a separable Gaussian blur with replicate padding.
func smoothFrame(f *vidsim.Frame, sigma float64) *vidsim.Frame {
	k := gaussKernel(sigma)
	r := len(k) / 2
	tmp := vidsim.NewFrame(f.W, f.H)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			s := 0.0
			for j := -r; j <= r; j++ {
				s += k[j+r] * float64(f.At(x+j, y))
			}
			tmp.Pix[y*f.W+x] = float32(s)
		}
	}
	out := vidsim.NewFrame(f.W, f.H)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			s := 0.0
			for j := -r; j <= r; j++ {
				s += k[j+r] * float64(tmp.At(x, y+j))
			}
			out.Pix[y*f.W+x] = float32(s)
		}
	}
	return out
}

// jetPlanes holds the five derivative images of a Gaussian-smoothed frame,
// in the order of the sub-fingerprint components.
type jetPlanes struct {
	ix, iy, ixy, ixx, iyy *vidsim.Frame
}

// computeJets smooths f at scale sigma and differentiates with central
// differences, yielding the derivative planes of the 2-D graylevel signal.
func computeJets(f *vidsim.Frame, sigma float64) *jetPlanes {
	s := smoothFrame(f, sigma)
	j := &jetPlanes{
		ix:  vidsim.NewFrame(f.W, f.H),
		iy:  vidsim.NewFrame(f.W, f.H),
		ixy: vidsim.NewFrame(f.W, f.H),
		ixx: vidsim.NewFrame(f.W, f.H),
		iyy: vidsim.NewFrame(f.W, f.H),
	}
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			c := float64(s.At(x, y))
			xm, xp := float64(s.At(x-1, y)), float64(s.At(x+1, y))
			ym, yp := float64(s.At(x, y-1)), float64(s.At(x, y+1))
			i := y*f.W + x
			j.ix.Pix[i] = float32((xp - xm) / 2)
			j.iy.Pix[i] = float32((yp - ym) / 2)
			j.ixx.Pix[i] = float32(xp - 2*c + xm)
			j.iyy.Pix[i] = float32(yp - 2*c + ym)
			j.ixy.Pix[i] = float32((float64(s.At(x+1, y+1)) - float64(s.At(x-1, y+1)) -
				float64(s.At(x+1, y-1)) + float64(s.At(x-1, y-1))) / 4)
		}
	}
	return j
}

// sample returns the five derivative values at real position (x, y),
// bilinearly interpolated, in sub-fingerprint component order.
func (j *jetPlanes) sample(x, y float64) [SubDim]float64 {
	return [SubDim]float64{
		float64(j.ix.Bilinear(x, y)),
		float64(j.iy.Bilinear(x, y)),
		float64(j.ixy.Bilinear(x, y)),
		float64(j.ixx.Bilinear(x, y)),
		float64(j.iyy.Bilinear(x, y)),
	}
}
