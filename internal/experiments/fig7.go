package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"s3cbcd/internal/asciiplot"
	"s3cbcd/internal/core"
	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/scan"
	"s3cbcd/internal/stat"
	"s3cbcd/internal/store"
	"s3cbcd/internal/vafile"
)

func init() {
	register(Experiment{
		ID: "fig7",
		Title: "Figure 7: average search time vs. database size — S³ statistical " +
			"method vs. sequential scan (α=80%, σ=20, matched ε)",
		Run: runFig7,
	})
}

func runFig7(w io.Writer, sc Scale, seed int64) error {
	sizes := []int{10000, 40000, 160000, 640000}
	nStat, nScan := 200, 30
	if sc == Full {
		sizes = append(sizes, 2560000)
		nStat, nScan = 1000, 50
	}
	// The paper's pseudo-disk regime: for the largest database we also
	// run the batched disk execution with a memory budget of a quarter of
	// the records, which adds the linear loading component of eq. (5).
	const sigma = 20.0
	const alpha = 0.80
	model := core.IsoNormal{D: fingerprint.D, Sigma: sigma}
	sq := core.StatQuery{Alpha: alpha, Model: model}
	eps := stat.RadiusDist{D: fingerprint.D, Sigma: sigma}.Quantile(alpha)

	fmt.Fprintf(w, "# Figure 7 — average search time (ms) vs database size\n")
	fmt.Fprintf(w, "# alpha = %.0f%%, sigma = %.1f, matched range epsilon = %.1f\n", alpha*100, sigma, eps)
	fmt.Fprintf(w, "# vaFile is the improved sequential baseline of the paper's related work [11]\n")
	fmt.Fprintf(w, "%10s %14s %14s %14s %12s %14s\n", "dbSize", "seqScan", "vaFile", "statistical", "gain", "statDisk")

	tmp, err := os.MkdirTemp("", "s3fig7")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	var xs, scanSeries, vaSeries, statSeries []float64
	for _, size := range sizes {
		curve, err := hilbert.New(fingerprint.D, 8)
		if err != nil {
			return err
		}
		db, err := store.Build(curve, FPCorpus(size, seed))
		if err != nil {
			return err
		}
		ix, err := core.NewIndex(db, 0)
		if err != nil {
			return err
		}
		queries, _ := DistortedQueries(db, nStat, sigma, seed^int64(size))

		// Tune the depth on a few samples, as the retrieval stage does.
		if _, err := ix.TuneDepth(nil, queries[:5], sq); err != nil {
			return err
		}

		t0 := time.Now()
		for _, q := range queries {
			if _, _, err := ix.SearchStat(q, sq); err != nil {
				return err
			}
		}
		statMS := float64(time.Since(t0).Microseconds()) / float64(nStat) / 1000

		t1 := time.Now()
		for _, q := range queries[:nScan] {
			if _, err := scan.RangeQuery(db, q, eps); err != nil {
				return err
			}
		}
		scanMS := float64(time.Since(t1).Microseconds()) / float64(nScan) / 1000

		va, err := vafile.Build(db, 4)
		if err != nil {
			return err
		}
		tva := time.Now()
		for _, q := range queries[:nScan] {
			if _, _, err := va.RangeQuery(q, eps); err != nil {
				return err
			}
		}
		vaMS := float64(time.Since(tva).Microseconds()) / float64(nScan) / 1000

		// Pseudo-disk execution with a quarter-size memory budget.
		path := filepath.Join(tmp, fmt.Sprintf("db%d.s3db", size))
		if err := db.WriteFile(path, 12); err != nil {
			return err
		}
		fl, err := store.Open(path)
		if err != nil {
			return err
		}
		di, err := core.NewDiskIndex(fl, ix.Depth())
		if err != nil {
			fl.Close()
			return err
		}
		t2 := time.Now()
		if _, _, err := di.SearchStatBatch(queries, sq, size/4+1); err != nil {
			fl.Close()
			return err
		}
		diskMS := float64(time.Since(t2).Microseconds()) / float64(nStat) / 1000
		fl.Close()

		xs = append(xs, float64(size))
		scanSeries = append(scanSeries, scanMS)
		vaSeries = append(vaSeries, vaMS)
		statSeries = append(statSeries, statMS)
		fmt.Fprintf(w, "%10d %14.3f %14.3f %14.4f %11.0fx %14.4f\n",
			size, scanMS, vaMS, statMS, scanMS/statMS, diskMS)
	}
	fmt.Fprint(w, asciiplot.Render(asciiplot.Config{
		Title: "avg search time vs DB size (log-log, as Figure 7)",
		LogX:  true, LogY: true, XLabel: "fingerprints", YLabel: "ms",
	},
		asciiplot.Series{Name: "seqScan", X: xs, Y: scanSeries},
		asciiplot.Series{Name: "vaFile", X: xs, Y: vaSeries},
		asciiplot.Series{Name: "statistical", X: xs, Y: statSeries},
	))
	fmt.Fprintf(w, "# Paper's claims: sequential scan is linear in DB size; the S³ method is\n")
	fmt.Fprintf(w, "# sublinear, so the gain grows with the database; the pseudo-disk column\n")
	fmt.Fprintf(w, "# adds the linear T_load/N_sig component of eq. (5).\n")
	return nil
}
