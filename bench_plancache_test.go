package s3

// Plan cache benchmark: the filtering step of a monitoring-style
// workload — a bounded set of queries re-issued round after round, the
// way Section V-D's continuous stream re-queries near-identical
// fingerprints — planned by a cache-enabled engine and by the same
// engine through the WithoutPlanCache bypass.
//
//	go test -run TestPlanCacheBenchSweep -bench-plancache -timeout 30m .
//
// regenerates BENCH_plancache.json in the repository root. The test
// verifies, query by query, that cached and uncached plans are
// byte-identical (and full answers on a sample), then gates on the
// cache delivering at least 2x plans/sec and a 90% hit rate — the same
// gate the CI smoke job asserts at a smaller corpus via
// -bench-plancache-records.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"s3cbcd/internal/core"
	"s3cbcd/internal/experiments"
	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/store"
)

var (
	benchPlanCacheFlag = flag.Bool("bench-plancache", false,
		"run the plan cache comparison and write BENCH_plancache.json")
	benchPlanCacheRecords = flag.Int("bench-plancache-records", shardBenchRecords,
		"corpus size for -bench-plancache")
)

const planCacheBenchQueries = 64

func TestPlanCacheBenchSweep(t *testing.T) {
	if !*benchPlanCacheFlag {
		t.Skip("pass -bench-plancache to run the plan cache comparison")
	}
	n := *benchPlanCacheRecords
	curve := hilbert.MustNew(fingerprint.D, 8)
	db, err := store.Build(curve, experiments.FPCorpus(n, 1))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.NewIndex(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	queries, _ := experiments.DistortedQueries(db, planCacheBenchQueries, shardBenchSigma, 2)
	sq := shardBenchQuery()

	eng := core.NewEngineOpts(ix, core.EngineOptions{Workers: 1, PlanCache: true})
	cached := context.Background()
	uncached := core.WithoutPlanCache(cached)

	// measure plans every query for `rounds` rounds under ctx. The warm
	// pass outside the timer pages in the corpus structures and, on the
	// cached side, populates the cache — steady-state monitoring is the
	// workload the cache exists for, so the steady state is what the
	// number reports.
	const rounds = 5
	warm := func(ctx context.Context) {
		for _, q := range queries {
			if _, err := eng.PlanStat(ctx, q, sq); err != nil {
				t.Fatal(err)
			}
		}
	}
	timed := func(ctx context.Context) float64 {
		start := time.Now()
		for r := 0; r < rounds; r++ {
			for _, q := range queries {
				if _, err := eng.PlanStat(ctx, q, sq); err != nil {
					t.Fatal(err)
				}
			}
		}
		secs := time.Since(start).Seconds() / rounds
		return float64(len(queries)) / secs
	}

	warm(uncached)
	uncachedRate := timed(uncached)
	warm(cached) // the one-time cold population: every steady-state lookup after it should hit
	st0, ok := eng.PlanCacheStats()
	if !ok {
		t.Fatal("plan cache reported disabled")
	}
	cachedRate := timed(cached)

	// Answers must be byte-identical: every plan, and the full match set
	// on a sample of queries (refinement consumes the plan verbatim, so
	// identical plans imply identical answers; the sample re-checks it
	// end to end anyway). PlanStat's Intervals alias pooled scratch on
	// the uncached side, so each pair is compared before the next call.
	for i, q := range queries {
		cp, err := eng.PlanStat(cached, q, sq)
		if err != nil {
			t.Fatal(err)
		}
		up, err := eng.PlanStat(uncached, q, sq)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cp, up) {
			t.Fatalf("query %d: cached plan differs from uncached:\n got %+v\nwant %+v", i, cp, up)
		}
	}
	for i := 0; i < len(queries); i += 8 {
		gotM, _, err := eng.SearchStat(cached, queries[i], sq)
		if err != nil {
			t.Fatal(err)
		}
		wantM, _, err := eng.SearchStat(uncached, queries[i], sq)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotM, wantM) {
			t.Fatalf("query %d: cached matches differ from uncached (%d vs %d)",
				i, len(gotM), len(wantM))
		}
	}

	st, ok := eng.PlanCacheStats()
	if !ok {
		t.Fatal("plan cache reported disabled")
	}
	// Steady-state hit rate: lookups after the one-time cold population.
	hits, misses := st.Hits-st0.Hits, st.Misses-st0.Misses
	hitRate := float64(hits) / float64(hits+misses)
	speedup := cachedRate / uncachedRate
	t.Logf("plans/sec: cached %.1f, uncached %.1f (%.1fx); steady-state hit rate %.1f%% (%d hits, %d misses; lifetime %d/%d)",
		cachedRate, uncachedRate, speedup, 100*hitRate, hits, misses, st.Hits, st.Misses)

	// The acceptance gates: repeated queries must plan at least twice as
	// fast through the cache, and the repeated workload must actually hit.
	if speedup < 2 {
		t.Errorf("cached planning %.2fx the uncached rate, want >= 2x", speedup)
	}
	if hitRate < 0.9 {
		t.Errorf("steady-state hit rate %.1f%% on a repeated workload, want >= 90%%", 100*hitRate)
	}

	report := map[string]interface{}{
		"benchmark": "statistical filtering step: plan cache vs uncached planning on a repeated-query workload",
		"corpus": map[string]interface{}{
			"records": n,
			"dims":    fingerprint.D,
			"queries": len(queries),
			"rounds":  rounds,
			"alpha":   shardBenchAlpha,
			"sigma":   shardBenchSigma,
		},
		"host": map[string]interface{}{
			"num_cpu":    runtime.NumCPU(),
			"go_version": runtime.Version(),
		},
		"note": fmt.Sprintf("Cached and uncached plans verified byte-identical for every query in-run "+
			"(and full match sets on a sample). Both sides run the same engine; the uncached side goes "+
			"through the WithoutPlanCache bypass (?nocache=1 over HTTP). Timings on a %d-core host.",
			runtime.NumCPU()),
		"cached_plans_per_sec":   cachedRate,
		"uncached_plans_per_sec": uncachedRate,
		"plans_per_sec_factor":   speedup,
		"cache": map[string]interface{}{
			"hits":                  st.Hits,
			"misses":                st.Misses,
			"shared_waits":          st.SharedWaits,
			"evictions":             st.Evictions,
			"entries":               st.Entries,
			"steady_state_hit_rate": hitRate,
		},
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_plancache.json", append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_plancache.json")
}

// BenchmarkPlanStatCached measures the steady-state cache-hit plan path
// (compare BenchmarkEnginePlanStat in bench_plan_test.go for the
// uncached pooled path on the shared corpus).
func BenchmarkPlanStatCached(b *testing.B) {
	_, ix, queries := sharedShardDB(b)
	eng := core.NewEngineOpts(ix, core.EngineOptions{Workers: 1, PlanCache: true})
	sq := shardBenchQuery()
	ctx := context.Background()
	for _, q := range queries {
		if _, err := eng.PlanStat(ctx, q, sq); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.PlanStat(ctx, queries[i%len(queries)], sq); err != nil {
			b.Fatal(err)
		}
	}
}
