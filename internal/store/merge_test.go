package store

import (
	"math/rand"
	"reflect"
	"testing"

	"s3cbcd/internal/hilbert"
)

func TestMergeEqualsRebuild(t *testing.T) {
	curve := hilbert.MustNew(8, 8)
	r := rand.New(rand.NewSource(1))
	recsA := randRecords(r, curve, 300)
	recsB := randRecords(r, curve, 450)
	a := MustBuild(curve, recsA)
	b := MustBuild(curve, recsB)
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := MustBuild(curve, append(append([]Record{}, recsA...), recsB...))
	if merged.Len() != want.Len() {
		t.Fatalf("merged %d records, want %d", merged.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if merged.Key(i) != want.Key(i) {
			t.Fatalf("key order differs at %d", i)
		}
		// IDs may tie-break differently for equal keys; compare key
		// multisets per position only when keys are unique here.
	}
	// Sorted invariant.
	for i := 1; i < merged.Len(); i++ {
		if merged.Key(i).Less(merged.Key(i - 1)) {
			t.Fatalf("merge broke ordering at %d", i)
		}
	}
}

func TestMergeEmptySides(t *testing.T) {
	curve := hilbert.MustNew(4, 4)
	r := rand.New(rand.NewSource(2))
	a := MustBuild(curve, randRecords(r, curve, 20))
	empty := MustBuild(curve, nil)
	m1, err := Merge(a, empty)
	if err != nil || m1.Len() != 20 {
		t.Fatalf("merge with empty: %v len=%d", err, m1.Len())
	}
	m2, err := Merge(empty, a)
	if err != nil || m2.Len() != 20 {
		t.Fatalf("empty merge: %v len=%d", err, m2.Len())
	}
	for i := 0; i < 20; i++ {
		if m1.Key(i) != a.Key(i) || m2.Key(i) != a.Key(i) {
			t.Fatalf("identity merge changed keys at %d", i)
		}
	}
}

func TestMergeIncompatible(t *testing.T) {
	a := MustBuild(hilbert.MustNew(4, 4), nil)
	b := MustBuild(hilbert.MustNew(5, 4), nil)
	if _, err := Merge(a, b); err == nil {
		t.Fatal("incompatible merge accepted")
	}
}

func TestMergePreservesPayload(t *testing.T) {
	curve := hilbert.MustNew(4, 8)
	a := MustBuild(curve, []Record{{FP: []byte{1, 2, 3, 4}, ID: 7, TC: 9, X: 11, Y: 13}})
	b := MustBuild(curve, []Record{{FP: []byte{200, 201, 202, 203}, ID: 8, TC: 10, X: 12, Y: 14}})
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for i := 0; i < m.Len(); i++ {
		switch m.ID(i) {
		case 7:
			if m.TC(i) != 9 || m.X(i) != 11 || m.Y(i) != 13 {
				t.Fatalf("payload 7 corrupted")
			}
			found++
		case 8:
			if m.TC(i) != 10 || m.X(i) != 12 || m.Y(i) != 14 {
				t.Fatalf("payload 8 corrupted")
			}
			found++
		}
	}
	if found != 2 {
		t.Fatalf("found %d of 2 records", found)
	}
}

func TestFilterRemovesIdentifier(t *testing.T) {
	curve := hilbert.MustNew(6, 8)
	r := rand.New(rand.NewSource(9))
	db := MustBuild(curve, randRecords(r, curve, 200))
	victim := db.ID(50)
	out := Filter(db, func(id, _ uint32) bool { return id != victim })
	if out.Len() >= db.Len() {
		t.Fatalf("filter removed nothing (%d -> %d)", db.Len(), out.Len())
	}
	removed := 0
	for i := 0; i < db.Len(); i++ {
		if db.ID(i) == victim {
			removed++
		}
	}
	if out.Len() != db.Len()-removed {
		t.Fatalf("filtered %d, expected %d", db.Len()-out.Len(), removed)
	}
	for i := 0; i < out.Len(); i++ {
		if out.ID(i) == victim {
			t.Fatal("victim id survived")
		}
		if i > 0 && out.Key(i).Less(out.Key(i-1)) {
			t.Fatal("filter broke curve order")
		}
	}
	// Keep-all is identity.
	all := Filter(db, func(uint32, uint32) bool { return true })
	if all.Len() != db.Len() {
		t.Fatal("keep-all changed length")
	}
}

// Regression: Merge used to propagate a malformed database silently when
// the other input was empty — the merge loop never touched the bad
// slices, so the corruption surfaced later as an out-of-range panic in
// readers. Both inputs are now validated up front.
func TestMergeRejectsMalformedInput(t *testing.T) {
	curve := hilbert.MustNew(4, 4)
	empty := MustBuild(curve, nil)
	// One record whose fingerprint payload disagrees with Dims()=4.
	bad := &DB{
		curve: curve,
		keys:  MustBuild(curve, []Record{{FP: []byte{1, 2, 3, 4}}}).keys,
		fps:   []byte{1, 2, 3}, // 3 bytes for 1 record of dimension 4
		ids:   []uint32{0},
		tcs:   []uint32{0},
		xs:    []uint16{0},
		ys:    []uint16{0},
	}
	if _, err := Merge(bad, empty); err == nil {
		t.Fatal("Merge(bad, empty) accepted a malformed first input")
	}
	if _, err := Merge(empty, bad); err == nil {
		t.Fatal("Merge(empty, bad) accepted a malformed second input")
	}
	// Mismatched parallel columns must be rejected too.
	short := &DB{
		curve: curve,
		keys:  bad.keys,
		fps:   []byte{1, 2, 3, 4},
		ids:   []uint32{0},
		tcs:   nil, // missing
		xs:    []uint16{0},
		ys:    []uint16{0},
	}
	if _, err := Merge(short, empty); err == nil {
		t.Fatal("Merge accepted a database with missing columns")
	}
	if _, err := Merge(empty, empty); err != nil {
		t.Fatalf("Merge of two empty databases failed: %v", err)
	}
}

// Merging arbitrary splits of a record set must reproduce the one-shot
// Build exactly — same records, same canonical order — including ties:
// duplicate fingerprints and full duplicate records.
func TestMergeMatchesBuildCanonically(t *testing.T) {
	curve := hilbert.MustNew(4, 4)
	r := rand.New(rand.NewSource(11))
	var recs []Record
	for i := 0; i < 200; i++ {
		fp := make([]byte, 4)
		for j := range fp {
			fp[j] = byte(r.Intn(4)) // tiny alphabet: many key collisions
		}
		recs = append(recs, Record{FP: fp, ID: uint32(r.Intn(5)), TC: uint32(r.Intn(8))})
	}
	// A few exact duplicates.
	recs = append(recs, recs[0], recs[1], recs[0])
	want := MustBuild(curve, recs)
	for trial := 0; trial < 20; trial++ {
		cut := r.Intn(len(recs) + 1)
		a := MustBuild(curve, recs[:cut])
		b := MustBuild(curve, recs[cut:])
		var got *DB
		var err error
		if trial%2 == 0 {
			got, err = Merge(a, b)
		} else {
			got, err = Merge(b, a)
		}
		if err != nil {
			t.Fatal(err)
		}
		if !dbEqual(got, want) {
			t.Fatalf("trial %d (cut %d): merged database differs from one-shot build", trial, cut)
		}
	}
}

func dbEqual(a, b *DB) bool {
	return reflect.DeepEqual(a.keys, b.keys) &&
		reflect.DeepEqual(a.fps, b.fps) &&
		reflect.DeepEqual(a.ids, b.ids) &&
		reflect.DeepEqual(a.tcs, b.tcs) &&
		reflect.DeepEqual(a.xs, b.xs) &&
		reflect.DeepEqual(a.ys, b.ys)
}

func TestContainsAndCountID(t *testing.T) {
	curve := hilbert.MustNew(2, 3)
	db := MustBuild(curve, []Record{
		{FP: []byte{1, 2}, ID: 5},
		{FP: []byte{3, 4}, ID: 5},
		{FP: []byte{5, 6}, ID: 9},
	})
	if !db.ContainsID(5) || !db.ContainsID(9) || db.ContainsID(7) {
		t.Fatal("ContainsID wrong")
	}
	if db.CountID(5) != 2 || db.CountID(9) != 1 || db.CountID(7) != 0 {
		t.Fatal("CountID wrong")
	}
}
