package vote

import (
	"math/rand"
	"testing"
)

// manyIDCandidates models archive-scale search results: each candidate
// fingerprint matches dozens of records spread over thousands of
// identifiers (the regime where per-identifier filtering of the whole
// result set used to dominate detection time).
func manyIDCandidates(nCands, matchesPer, idSpace int) []Candidate {
	r := rand.New(rand.NewSource(1))
	cands := make([]Candidate, nCands)
	for j := range cands {
		c := Candidate{TC: uint32(100 + j), X: float64(j % 90), Y: float64(j % 70)}
		for k := 0; k < matchesPer; k++ {
			c.Matches = append(c.Matches, Match{
				ID: uint32(r.Intn(idSpace)),
				TC: uint32(r.Intn(100000)),
				X:  uint16(r.Intn(90)), Y: uint16(r.Intn(70)),
			})
		}
		cands[j] = c
	}
	return cands
}

func BenchmarkDecideManyIDs(b *testing.B) {
	cands := manyIDCandidates(200, 50, 4000)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decide(cands, cfg)
	}
}

func BenchmarkDecideFewIDs(b *testing.B) {
	cands := manyIDCandidates(200, 50, 8)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decide(cands, cfg)
	}
}

// TestGroupByID pins the grouping semantics the estimator depends on:
// per-identifier observations in candidate order, one obs per candidate,
// refs complete.
func TestGroupByID(t *testing.T) {
	cands := []Candidate{
		{TC: 10, X: 1, Y: 2, Matches: []Match{{ID: 5, TC: 100}, {ID: 5, TC: 200}, {ID: 9, TC: 300}}},
		{TC: 20, Matches: []Match{{ID: 9, TC: 400}}},
		{TC: 30, Matches: []Match{{ID: 5, TC: 500}}},
	}
	groups := groupByID(cands)
	if len(groups) != 2 || groups[0].id != 5 || groups[1].id != 9 {
		t.Fatalf("groups: %+v", groups)
	}
	g5 := groups[0]
	if len(g5.obs) != 2 {
		t.Fatalf("id 5 obs: %+v", g5.obs)
	}
	if len(g5.obs[0].refs) != 2 || g5.obs[0].tcQ != 10 || g5.obs[0].qx != 1 {
		t.Fatalf("id 5 first obs: %+v", g5.obs[0])
	}
	if len(g5.obs[1].refs) != 1 || g5.obs[1].tcQ != 30 {
		t.Fatalf("id 5 second obs: %+v", g5.obs[1])
	}
	g9 := groups[1]
	if len(g9.obs) != 2 || g9.obs[0].refs[0].tc != 300 || g9.obs[1].refs[0].tc != 400 {
		t.Fatalf("id 9 obs: %+v", g9.obs)
	}
	if got := groupByID(nil); len(got) != 0 {
		t.Fatalf("empty grouping: %+v", got)
	}
}
