#!/bin/sh
# check_metrics.sh — static lint over the exported metric families.
#
# Every metric this codebase exports is named by a string literal
# "s3_..." at its construction site (internal/obs constructors). The
# check enforces two invariants:
#
#   1. No duplicate families: each s3_* family name appears at exactly
#      one construction site in non-test source. Two sites registering
#      the same family would panic at runtime on a shared registry —
#      catch it before that.
#   2. No undocumented families: every family constructed in the source
#      is listed in docs/METRICS.md, and every family listed there still
#      exists in the source (no stale docs).
#
# Labelled series (s3_http_requests_total{route=...,code=...}) count by
# family: the label block is stripped before comparison.
#
# Run from the repository root (make vet does).
set -eu

docs=docs/METRICS.md
[ -f "$docs" ] || { echo "check_metrics: $docs missing" >&2; exit 1; }

# Family names at construction sites: string literals starting s3_, with
# any {label...} suffix stripped. Test files may mint throwaway names.
src_families=$(grep -rho '"s3_[a-z_]*[{"]' --include='*.go' --exclude='*_test.go' . \
	| sed -e 's/^"//' -e 's/[{"]$//' | sort)

status=0

dups=$(printf '%s\n' "$src_families" | uniq -d)
if [ -n "$dups" ]; then
	echo "check_metrics: families constructed at more than one site (would panic on a shared registry):" >&2
	printf '  %s\n' $dups >&2
	status=1
fi

doc_families=$(grep -o '`s3_[a-z_]*`' "$docs" | tr -d '`' | sort -u)

# comm over process substitution is not POSIX sh; use temp files.
tmpa=$(mktemp) tmpb=$(mktemp)
trap 'rm -f "$tmpa" "$tmpb"' EXIT
printf '%s\n' "$src_families" | uniq > "$tmpa"
printf '%s\n' "$doc_families" > "$tmpb"

undocumented=$(comm -23 "$tmpa" "$tmpb")
if [ -n "$undocumented" ]; then
	echo "check_metrics: families exported but not documented in $docs:" >&2
	printf '  %s\n' $undocumented >&2
	status=1
fi

stale=$(comm -13 "$tmpa" "$tmpb")
if [ -n "$stale" ]; then
	echo "check_metrics: families documented in $docs but no longer exported:" >&2
	printf '  %s\n' $stale >&2
	status=1
fi

[ $status -eq 0 ] && echo "check_metrics: $(wc -l < "$tmpa" | tr -d ' ') families, all unique and documented"
exit $status
