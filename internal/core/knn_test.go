package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// bruteKNN computes the exact k nearest neighbors by full scan.
func bruteKNN(db interface {
	Len() int
	FP(int) []byte
}, q []byte, k int) []float64 {
	dists := make([]float64, db.Len())
	qf := make([]float64, len(q))
	for i, b := range q {
		qf[i] = float64(b)
	}
	for i := range dists {
		dists[i] = math.Sqrt(distSqToFP(qf, db.FP(i)))
	}
	sort.Float64s(dists)
	if k > len(dists) {
		k = len(dists)
	}
	return dists[:k]
}

func TestSearchKNNExactMatchesBruteForce(t *testing.T) {
	db := testDB(t, 8, 1200, 51)
	ix, _ := NewIndex(db, 0)
	r := rand.New(rand.NewSource(52))
	for trial := 0; trial < 25; trial++ {
		q, _ := distortedQuery(r, db, 20)
		k := 1 + r.Intn(15)
		got, stats, err := ix.SearchKNN(q, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Exact {
			t.Fatalf("trial %d: exact search not marked exact", trial)
		}
		if len(got) != k {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), k)
		}
		want := bruteKNN(db, q, k)
		for i := range got {
			if i > 0 && got[i].Dist < got[i-1].Dist {
				t.Fatalf("results not sorted by distance")
			}
			if math.Abs(got[i].Dist-want[i]) > 1e-9 {
				t.Fatalf("trial %d neighbor %d: dist %v, want %v", trial, i, got[i].Dist, want[i])
			}
		}
		if stats.Scanned >= db.Len() {
			t.Fatalf("exact kNN scanned the whole database (%d records)", stats.Scanned)
		}
	}
}

func TestSearchKNNApproximate(t *testing.T) {
	db := testDB(t, 8, 2000, 53)
	ix, _ := NewIndex(db, 0)
	r := rand.New(rand.NewSource(54))
	q, _ := distortedQuery(r, db, 15)
	exact, _, err := ix.SearchKNN(q, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx, stats, err := ix.SearchKNN(q, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Leaves > 3 {
		t.Fatalf("refined %d leaves with maxLeaves=3", stats.Leaves)
	}
	if len(approx) == 0 {
		t.Fatal("approximate search returned nothing")
	}
	// The approximate answer can miss neighbors but never invents closer
	// ones.
	if approx[0].Dist < exact[0].Dist-1e-9 {
		t.Fatalf("approximate found closer neighbor than exact: %v < %v", approx[0].Dist, exact[0].Dist)
	}
}

func TestSearchKNNValidation(t *testing.T) {
	db := testDB(t, 6, 50, 55)
	ix, _ := NewIndex(db, 0)
	if _, _, err := ix.SearchKNN(make([]byte, 6), 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := ix.SearchKNN(make([]byte, 3), 5, 0); err == nil {
		t.Error("short query accepted")
	}
	// k larger than the database returns everything.
	got, _, err := ix.SearchKNN(make([]byte, 6), 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("k>n returned %d of 50", len(got))
	}
}

func TestSearchKNNSelfQuery(t *testing.T) {
	db := testDB(t, 8, 500, 56)
	ix, _ := NewIndex(db, 0)
	q := append([]byte(nil), db.FP(123)...)
	got, _, err := ix.SearchKNN(q, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Dist != 0 {
		t.Fatalf("self query: %+v", got)
	}
}
