package router

import (
	"testing"
	"time"

	"s3cbcd/internal/obs"
)

func testBreaker(threshold int, cooldown time.Duration) (*breaker, *time.Time) {
	now := time.Unix(1000, 0)
	trips := obs.NewRegistry().Counter("s3_test_trips_total", "test")
	b := newBreaker(threshold, cooldown, trips)
	b.now = func() time.Time { return now }
	return b, &now
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := testBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		b.failure()
		if !b.allow() {
			t.Fatalf("open after %d failures, threshold 3", i+1)
		}
	}
	b.failure()
	if b.allow() {
		t.Fatal("still closed after threshold consecutive failures")
	}
	if got := b.snapshot(); got != breakerOpen {
		t.Fatalf("state %v, want open", got)
	}
	if b.trips.Value() != 1 {
		t.Fatalf("trips %d, want 1", b.trips.Value())
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := testBreaker(3, time.Second)
	b.failure()
	b.failure()
	b.success()
	b.failure()
	b.failure()
	if !b.allow() {
		t.Fatal("tripped though the streak was broken by a success")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, now := testBreaker(1, time.Second)
	b.failure()
	if b.allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	*now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	// The probe is in flight: nothing else gets through.
	if b.allow() {
		t.Fatal("half-open breaker admitted a second request")
	}
	b.success()
	if b.snapshot() != breakerClosed || !b.allow() {
		t.Fatal("successful probe did not close the breaker")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, now := testBreaker(1, time.Second)
	b.failure()
	*now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("probe refused")
	}
	b.failure()
	if b.snapshot() != breakerOpen {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if b.allow() {
		t.Fatal("re-opened breaker admitted a request before a fresh cooldown")
	}
	*now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("re-opened breaker refused the next probe after cooldown")
	}
}

func TestBreakerAvailableHasNoSideEffects(t *testing.T) {
	b, now := testBreaker(1, time.Second)
	b.failure()
	*now = now.Add(time.Second)
	for i := 0; i < 3; i++ {
		if !b.available() {
			t.Fatal("cooled-down breaker reported unavailable")
		}
	}
	if b.snapshot() != breakerOpen {
		t.Fatal("available() transitioned the breaker state")
	}
	if !b.allow() {
		t.Fatal("allow refused after available reported true")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b, _ := testBreaker(-1, time.Second)
	for i := 0; i < 100; i++ {
		b.failure()
	}
	if !b.allow() || !b.available() {
		t.Fatal("disabled breaker tripped")
	}
}

func TestBackendBudget(t *testing.T) {
	be := &backend{budget: 2}
	if !be.tryAcquire() || !be.tryAcquire() {
		t.Fatal("in-budget acquire refused")
	}
	if be.tryAcquire() {
		t.Fatal("over-budget acquire admitted")
	}
	be.release()
	if !be.tryAcquire() {
		t.Fatal("freed slot refused")
	}
	unbounded := &backend{}
	for i := 0; i < 1000; i++ {
		if !unbounded.tryAcquire() {
			t.Fatal("unbounded backend refused")
		}
	}
}
