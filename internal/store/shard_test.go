package store

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"s3cbcd/internal/bitkey"
	"s3cbcd/internal/hilbert"
)

func shardTestDB(t *testing.T, dims, n int, seed int64) *DB {
	t.Helper()
	curve := hilbert.MustNew(dims, 8)
	r := rand.New(rand.NewSource(seed))
	return MustBuild(curve, randRecords(r, curve, n))
}

// checkShardInvariants asserts the partition invariants every layout must
// satisfy: shards cover the record range and the whole keyspace exactly
// once, key ranges are contiguous, every record falls in its shard's key
// range, and no key straddles a boundary.
func checkShardInvariants(t *testing.T, db *DB, shards []ShardRange) {
	t.Helper()
	if len(shards) == 0 {
		t.Fatal("no shards")
	}
	end := curveEnd(db.Curve().IndexBits())
	if !shards[0].Start.IsZero() {
		t.Errorf("first shard starts at %v, want zero", shards[0].Start)
	}
	if shards[len(shards)-1].End != end {
		t.Errorf("last shard ends at %v, want curve end", shards[len(shards)-1].End)
	}
	if shards[0].Lo != 0 || shards[len(shards)-1].Hi != db.Len() {
		t.Errorf("record coverage [%d,%d), want [0,%d)", shards[0].Lo, shards[len(shards)-1].Hi, db.Len())
	}
	for i, sh := range shards {
		if sh.Lo > sh.Hi {
			t.Errorf("shard %d has inverted record range [%d,%d)", i, sh.Lo, sh.Hi)
		}
		if i > 0 {
			if shards[i-1].End != sh.Start {
				t.Errorf("key gap between shard %d and %d", i-1, i)
			}
			if shards[i-1].Hi != sh.Lo {
				t.Errorf("record gap between shard %d and %d", i-1, i)
			}
		}
		for j := sh.Lo; j < sh.Hi; j++ {
			k := db.Key(j)
			if k.Less(sh.Start) || !k.Less(sh.End) {
				t.Fatalf("record %d key outside shard %d range", j, i)
			}
		}
		// Boundary snapping: the key just before a non-degenerate interior
		// boundary must differ from the key at the boundary.
		if i > 0 && sh.Lo > 0 && sh.Lo < db.Len() {
			if db.Key(sh.Lo-1) == db.Key(sh.Lo) {
				t.Errorf("equal keys straddle shard boundary %d", i)
			}
		}
	}
}

func TestShardsPartitionAndBalance(t *testing.T) {
	db := shardTestDB(t, 6, 1000, 3)
	for _, n := range []int{1, 2, 3, 4, 8, 16} {
		shards := db.Shards(n)
		if len(shards) != n {
			t.Fatalf("Shards(%d) returned %d shards", n, len(shards))
		}
		checkShardInvariants(t, db, shards)
		// Random 6-byte fingerprints are effectively collision-free, so
		// snapping moves boundaries at most a hair: populations should be
		// within one of the exact quota.
		quota := db.Len() / n
		for i, sh := range shards {
			if size := sh.Hi - sh.Lo; size < quota-1 || size > quota+2 {
				t.Errorf("n=%d shard %d holds %d records, quota %d", n, i, size, quota)
			}
		}
	}
}

func TestShardsDuplicateHeavyKey(t *testing.T) {
	// 900 of 1000 records share one fingerprint: every interior boundary
	// snaps below the heavy run, leaving empty shards but never splitting
	// the equal-key run.
	curve := hilbert.MustNew(4, 8)
	r := rand.New(rand.NewSource(9))
	recs := make([]Record, 1000)
	heavy := []byte{7, 7, 7, 7}
	for i := range recs {
		fp := heavy
		if i%10 == 0 {
			fp = []byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))}
		}
		recs[i] = Record{FP: fp, ID: uint32(i), TC: uint32(i)}
	}
	db := MustBuild(curve, recs)
	shards := db.Shards(4)
	if len(shards) != 4 {
		t.Fatalf("got %d shards", len(shards))
	}
	checkShardInvariants(t, db, shards)
	heavyKey := db.Curve().Encode([]uint32{7, 7, 7, 7})
	owner := -1
	for i, sh := range shards {
		for j := sh.Lo; j < sh.Hi; j++ {
			if db.Key(j) == heavyKey {
				if owner >= 0 && owner != i {
					t.Fatalf("heavy key split across shards %d and %d", owner, i)
				}
				owner = i
			}
		}
	}
	if owner < 0 {
		t.Fatal("heavy key not found in any shard")
	}
}

func TestShardsEmptyAndTinyDB(t *testing.T) {
	curve := hilbert.MustNew(4, 8)
	empty := MustBuild(curve, nil)
	shards := empty.Shards(4)
	checkShardInvariants(t, empty, shards)
	one := MustBuild(curve, []Record{{FP: []byte{1, 2, 3, 4}}})
	checkShardInvariants(t, one, one.Shards(4))
	checkShardInvariants(t, one, one.Shards(1))
}

func TestShardsAtValidation(t *testing.T) {
	db := shardTestDB(t, 4, 100, 5)
	if _, err := db.ShardsAt([]int{0, 50}); err == nil {
		t.Error("starts not spanning Len accepted")
	}
	if _, err := db.ShardsAt([]int{5, 100}); err == nil {
		t.Error("starts not beginning at 0 accepted")
	}
	if _, err := db.ShardsAt([]int{0}); err == nil {
		t.Error("single-entry starts accepted")
	}
	if _, err := db.ShardsAt([]int{0, 60, 40, 100}); err == nil {
		t.Error("decreasing starts accepted")
	}
	got, err := db.ShardsAt(db.ShardStarts(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, db.Shards(3)) {
		t.Error("ShardsAt(ShardStarts(n)) differs from Shards(n)")
	}
}

func TestWriteFileShardedRoundTrip(t *testing.T) {
	db := shardTestDB(t, 6, 800, 13)
	path := filepath.Join(t.TempDir(), "sharded.s3db")
	if err := db.WriteFileSharded(path, 10, 4); err != nil {
		t.Fatal(err)
	}
	fl, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if fl.Version() != 3 {
		t.Fatalf("version %d, want 3", fl.Version())
	}
	if got, want := fl.ShardStarts(), db.ShardStarts(4); !reflect.DeepEqual(got, want) {
		t.Fatalf("manifest %v, want %v", got, want)
	}
	// The manifest shifts the record area; everything after it must still
	// read back exactly.
	got, err := fl.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("reloaded %d records, want %d", got.Len(), db.Len())
	}
	for i := 0; i < db.Len(); i++ {
		if got.Key(i) != db.Key(i) || !reflect.DeepEqual(got.FP(i), db.FP(i)) ||
			got.ID(i) != db.ID(i) || got.TC(i) != db.TC(i) ||
			got.X(i) != db.X(i) || got.Y(i) != db.Y(i) {
			t.Fatalf("record %d differs after v3 round-trip", i)
		}
	}
	// Partial loads must honor the shifted data offset too.
	ch, err := fl.LoadRecords(100, 130)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ch.Len(); i++ {
		if ch.Key(i) != db.Key(100+i) {
			t.Fatalf("chunk record %d differs", i)
		}
	}
	ranges, err := got.ShardsAt(fl.ShardStarts())
	if err != nil {
		t.Fatal(err)
	}
	checkShardInvariants(t, got, ranges)
}

func TestWriteFileUnshardedStaysV2(t *testing.T) {
	db := shardTestDB(t, 6, 200, 17)
	path := filepath.Join(t.TempDir(), "plain.s3db")
	if err := db.WriteFile(path, 8); err != nil {
		t.Fatal(err)
	}
	fl, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if fl.Version() != 2 {
		t.Fatalf("version %d, want 2", fl.Version())
	}
	if fl.ShardStarts() != nil {
		t.Fatalf("v2 file reports manifest %v", fl.ShardStarts())
	}
	if err := db.WriteFileSharded(filepath.Join(t.TempDir(), "bad.s3db"), 8, 0); err == nil {
		t.Error("WriteFileSharded accepted shard count 0")
	}
}

func TestShardKeyRangesMatchBitkeys(t *testing.T) {
	// Interior shard starts must equal the key of their first record, so
	// key-range intersection and record-range intersection agree.
	db := shardTestDB(t, 6, 500, 19)
	shards := db.Shards(5)
	for i := 1; i < len(shards); i++ {
		sh := shards[i]
		if sh.Lo == sh.Hi {
			continue
		}
		if sh.Start != db.Key(sh.Lo) {
			t.Errorf("shard %d starts at %v, first record key %v", i, sh.Start, db.Key(sh.Lo))
		}
	}
	if end := curveEnd(db.Curve().IndexBits()); end != bitkey.FromUint64(1).Shl(uint(db.Curve().IndexBits())) {
		t.Errorf("curveEnd mismatch: %v", end)
	}
}
