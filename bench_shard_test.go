package s3

// Shard-engine throughput sweep: batch statistical search over a 500k
// fingerprint corpus at several shard counts and GOMAXPROCS settings.
//
//	go test -run TestShardThroughputSweep -bench-shard -timeout 30m .
//
// regenerates BENCH_shard.json in the repository root (the sweep is gated
// behind the flag because building the corpus takes a while). The
// BenchmarkShardedStatBatch benchmarks expose the same measurement to the
// standard -bench machinery at the current GOMAXPROCS.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"s3cbcd/internal/core"
	"s3cbcd/internal/experiments"
	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/store"
)

var benchShardFlag = flag.Bool("bench-shard", false, "run the shard throughput sweep and write BENCH_shard.json")

// shardBenchDB caches the large corpus across benchmarks in one run.
var shardBenchDB struct {
	once    sync.Once
	db      *store.DB
	ix      *core.Index
	queries [][]byte
}

const (
	shardBenchRecords = 500_000
	shardBenchQueries = 192
	shardBenchSigma   = 18.0
	shardBenchAlpha   = 0.8
)

func sharedShardDB(tb testing.TB) (*store.DB, *core.Index, [][]byte) {
	tb.Helper()
	shardBenchDB.once.Do(func() {
		curve := hilbert.MustNew(fingerprint.D, 8)
		db, err := store.Build(curve, experiments.FPCorpus(shardBenchRecords, 1))
		if err != nil {
			panic(err)
		}
		ix, err := core.NewIndex(db, 0)
		if err != nil {
			panic(err)
		}
		queries, _ := experiments.DistortedQueries(db, shardBenchQueries, shardBenchSigma, 2)
		shardBenchDB.db, shardBenchDB.ix, shardBenchDB.queries = db, ix, queries
	})
	return shardBenchDB.db, shardBenchDB.ix, shardBenchDB.queries
}

func shardBenchQuery() StatQuery {
	return StatQuery{Alpha: shardBenchAlpha, Model: IsoNormal{D: fingerprint.D, Sigma: shardBenchSigma}}
}

// BenchmarkShardedStatBatch reports batch throughput per shard count at
// whatever GOMAXPROCS the run uses.
func BenchmarkShardedStatBatch(b *testing.B) {
	_, ix, queries := sharedShardDB(b)
	sq := shardBenchQuery()
	for _, shards := range []int{1, 2, 4, 8} {
		eng := core.NewEngine(ix, shards, 0)
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.SearchStatBatch(context.Background(), queries, sq); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(queries))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

type shardBenchResult struct {
	Shards     int     `json:"shards"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Seconds    float64 `json:"seconds"`
	QPS        float64 `json:"queries_per_sec"`
	Speedup    float64 `json:"speedup_vs_sequential"`
}

// TestShardThroughputSweep sweeps shard count x GOMAXPROCS over the 500k
// corpus and writes BENCH_shard.json. Gated behind -bench-shard.
func TestShardThroughputSweep(t *testing.T) {
	if !*benchShardFlag {
		t.Skip("pass -bench-shard to run the throughput sweep")
	}
	_, ix, queries := sharedShardDB(t)
	sq := shardBenchQuery()
	ctx := context.Background()

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	procsSweep := []int{1, 2, 4}
	shardSweep := []int{1, 2, 4, 8}

	timeBatch := func(eng *core.Engine, rounds int) float64 {
		// Warm the engine's pools, then time whole batches.
		if _, err := eng.SearchStatBatch(ctx, queries, sq); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if _, err := eng.SearchStatBatch(ctx, queries, sq); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start).Seconds() / float64(rounds)
	}

	const rounds = 3
	// Sequential reference: the seed's single-threaded path (one shard,
	// one worker).
	runtime.GOMAXPROCS(1)
	seqSec := timeBatch(core.NewEngine(ix, 1, 1), rounds)
	seqQPS := float64(len(queries)) / seqSec
	t.Logf("sequential baseline: %.3fs/batch (%.1f queries/s)", seqSec, seqQPS)

	var results []shardBenchResult
	for _, procs := range procsSweep {
		runtime.GOMAXPROCS(procs)
		for _, shards := range shardSweep {
			eng := core.NewEngine(ix, shards, procs)
			sec := timeBatch(eng, rounds)
			res := shardBenchResult{
				Shards:     shards,
				GOMAXPROCS: procs,
				Seconds:    sec,
				QPS:        float64(len(queries)) / sec,
				Speedup:    seqSec / sec,
			}
			results = append(results, res)
			t.Logf("shards=%d procs=%d: %.3fs/batch (%.1f queries/s, %.2fx)",
				shards, procs, sec, res.QPS, res.Speedup)
		}
	}

	report := map[string]interface{}{
		"benchmark": "sharded statistical batch search (Engine.SearchStatBatch)",
		"corpus": map[string]interface{}{
			"records": shardBenchRecords,
			"dims":    fingerprint.D,
			"queries": len(queries),
			"alpha":   shardBenchAlpha,
			"sigma":   shardBenchSigma,
		},
		"host": map[string]interface{}{
			"num_cpu":    runtime.NumCPU(),
			"go_version": runtime.Version(),
		},
		"note": fmt.Sprintf("Numbers measured on a %d-core host: GOMAXPROCS settings above "+
			"the physical core count timeshare one core, so parallel speedup beyond "+
			"%dx is not observable here. The sharded engine's win on this host is the "+
			"near-zero-allocation batch path; rerun the sweep on a multicore machine "+
			"(go test -run TestShardThroughputSweep -bench-shard .) to measure shard "+
			"scaling.", runtime.NumCPU(), runtime.NumCPU()),
		"sequential_baseline": map[string]interface{}{
			"seconds": seqSec,
			"qps":     seqQPS,
		},
		"results": results,
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_shard.json", append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_shard.json")
}
