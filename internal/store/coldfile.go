package store

import (
	"fmt"
	"sync"

	"s3cbcd/internal/bitkey"
	"s3cbcd/internal/hilbert"
)

// DefaultColdBlockRecords is the default target block size of a cold
// file: the finest curve-section granularity whose largest block stays
// at or below this many records.
const DefaultColdBlockRecords = 4096

// ColdFile serves a database file's records directly from disk: the
// pseudo-disk strategy of Section IV-B promoted from a batch experiment
// (core.DiskIndex) into the serving read path. Only the header and
// section table are resident; record reads are pread-style block loads
// aligned to curve-section boundaries, cached in a shared BlockCache.
// Because curve sections are key-aligned, a block load is reusable by
// every query whose plan touches that stretch of the curve — the
// cross-query amortization of eq. (5), supplied by the cache instead of
// batch scheduling.
//
// A ColdFile is safe for concurrent VisitIntervals calls (File.ReadAt
// is). Close drops the file's cached blocks and releases the descriptor
// once in-flight visits drain; visits after Close fail with an error.
type ColdFile struct {
	fl    *File
	cache *BlockCache
	id    uint64
	bits  int  // blocks are curve sections of a 2^bits partition
	shift uint // curve index bits - bits

	mu     sync.Mutex
	refs   int
	closed bool
}

// OpenColdFS opens a database file for cold serving through the given
// cache (nil disables caching: every block access reads the disk).
// blockRecords is the target block size; <= 0 selects
// DefaultColdBlockRecords. The block granularity is the finest partition
// whose largest block fits the target, capped at the file's stored
// section-table granularity.
func OpenColdFS(fsys FS, path string, cache *BlockCache, blockRecords int) (*ColdFile, error) {
	fl, err := OpenFS(fsys, path)
	if err != nil {
		return nil, err
	}
	if blockRecords <= 0 {
		blockRecords = DefaultColdBlockRecords
	}
	bits := fl.ChooseSectionBits(blockRecords)
	var id uint64
	if cache != nil {
		id = cache.nextFileID()
	}
	return &ColdFile{fl: fl, cache: cache, id: id, bits: bits,
		shift: uint(fl.curve.IndexBits() - bits)}, nil
}

// Curve returns the Hilbert curve the records are ordered by.
func (cf *ColdFile) Curve() *hilbert.Curve { return cf.fl.curve }

// Len returns the number of records in the file.
func (cf *ColdFile) Len() int { return cf.fl.count }

// BlockBits returns the block granularity exponent: blocks are curve
// sections of a 2^BlockBits partition.
func (cf *ColdFile) BlockBits() int { return cf.bits }

// RecordBytes returns the on-disk size of the record area.
func (cf *ColdFile) RecordBytes() int64 { return cf.fl.RecordBytes() }

// enter registers an in-flight read, failing once the file is closed.
func (cf *ColdFile) enter() error {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	if cf.closed {
		return fmt.Errorf("store: cold file is closed")
	}
	cf.refs++
	return nil
}

// exit drops an in-flight read, releasing the descriptor if Close ran
// meanwhile.
func (cf *ColdFile) exit() {
	cf.mu.Lock()
	cf.refs--
	release := cf.closed && cf.refs == 0
	cf.mu.Unlock()
	if release {
		cf.fl.Close()
	}
}

// Close marks the file closed, drops its cached blocks and releases the
// descriptor (deferred until in-flight visits drain). Idempotent.
func (cf *ColdFile) Close() error {
	cf.mu.Lock()
	if cf.closed {
		cf.mu.Unlock()
		return nil
	}
	cf.closed = true
	release := cf.refs == 0
	cf.mu.Unlock()
	if cf.cache != nil {
		cf.cache.Drop(cf.id)
	}
	if release {
		return cf.fl.Close()
	}
	return nil
}

// block returns the chunk of block s (records [lo, hi)), through the
// cache when one is attached.
func (cf *ColdFile) block(s, lo, hi int) (*Chunk, error) {
	if cf.cache == nil {
		return cf.fl.LoadRecords(lo, hi)
	}
	return cf.cache.getOrLoad(blockKey{file: cf.id, block: s}, func() (*Chunk, int64, error) {
		ch, err := cf.fl.LoadRecords(lo, hi)
		if err != nil {
			return nil, 0, err
		}
		return ch, int64(hi-lo) * int64(cf.fl.recSize), nil
	})
}

// VisitIntervals implements RecordSource: walk the blocks the intervals
// touch in curve order — the cursor logic of the pseudo-disk batch path
// — loading each touched block once per call even when several intervals
// fall inside it, and refine with per-block binary searches. Empty
// stretches of the curve are skipped by jumping the block cursor to the
// next interval's start.
func (cf *ColdFile) VisitIntervals(ivs []hilbert.Interval, visit func(RecordView) bool) error {
	if len(ivs) == 0 || cf.fl.count == 0 {
		return nil
	}
	if err := cf.enter(); err != nil {
		return err
	}
	defer cf.exit()
	nb := 1 << uint(cf.bits)
	c := 0
	for c < len(ivs) {
		// Jump to the first block the current interval touches.
		s := int(ivs[c].Start.Shr(cf.shift).Uint64())
		if s >= nb {
			break
		}
		for ; s < nb && c < len(ivs); s++ {
			secStart := bitkey.FromUint64(uint64(s)).Shl(cf.shift)
			secEnd := bitkey.FromUint64(uint64(s) + 1).Shl(cf.shift)
			for c < len(ivs) && ivs[c].End.Cmp(secStart) <= 0 {
				c++
			}
			if c >= len(ivs) {
				break
			}
			if !ivs[c].Start.Less(secEnd) {
				// The next interval starts past this block: recompute the
				// jump in the outer loop instead of scanning empty blocks.
				break
			}
			lo, hi := cf.fl.SectionRecordRange(cf.bits, s)
			if lo == hi {
				continue
			}
			ch, err := cf.block(s, lo, hi)
			if err != nil {
				return err
			}
			for cc := c; cc < len(ivs) && ivs[cc].Start.Less(secEnd); cc++ {
				clo, chi := ch.FindInterval(ivs[cc])
				for i := clo; i < chi; i++ {
					if !visit(RecordView{Pos: ch.Base + i, Key: ch.keys[i], FP: ch.FP(i),
						ID: ch.ids[i], TC: ch.tcs[i], X: ch.xs[i], Y: ch.ys[i]}) {
						return nil
					}
				}
			}
		}
		if s >= nb {
			// The block cursor ran off the curve: whatever interval tail
			// remains was covered by the blocks just visited.
			break
		}
	}
	return nil
}

// CountID returns the number of records carrying the given identifier,
// scanning the file block by block *without* touching the cache: the
// delete path is rare and a full scan through the cache would evict the
// hot query blocks.
func (cf *ColdFile) CountID(id uint32) (int, error) {
	if err := cf.enter(); err != nil {
		return 0, err
	}
	defer cf.exit()
	n := 0
	for s := 0; s < 1<<uint(cf.bits); s++ {
		lo, hi := cf.fl.SectionRecordRange(cf.bits, s)
		if lo == hi {
			continue
		}
		ch, err := cf.fl.LoadRecords(lo, hi)
		if err != nil {
			return 0, err
		}
		for i := 0; i < ch.Len(); i++ {
			if ch.ids[i] == id {
				n++
			}
		}
	}
	return n, nil
}

// LoadAll reads the whole file into an in-memory DB, bypassing the cache
// (compaction input — one-shot bulk reads would churn the working set).
func (cf *ColdFile) LoadAll() (*DB, error) {
	if err := cf.enter(); err != nil {
		return nil, err
	}
	defer cf.exit()
	return cf.fl.LoadAll()
}
