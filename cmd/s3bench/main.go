// Command s3bench regenerates the paper's tables and figures.
//
// Usage:
//
//	s3bench -list
//	s3bench -exp fig6 [-scale quick|full] [-seed 1]
//	s3bench -exp all  [-scale quick|full]
//
// Each experiment prints the series/rows of the corresponding paper
// artifact; see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"s3cbcd/internal/experiments"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id (fig1..fig9, tab1, tp) or 'all'")
		scaleStr = flag.String("scale", "quick", "workload scale: quick or full")
		seed     = flag.Int64("seed", 1, "random seed")
		list     = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("Available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-6s %s\n", e.ID, e.Title)
		}
		if *expID == "" && !*list {
			os.Exit(2)
		}
		return
	}
	sc, err := experiments.ParseScale(*scaleStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	run := func(e experiments.Experiment) {
		fmt.Printf("== %s: %s\n", e.ID, e.Title)
		t0 := time.Now()
		if err := e.Run(os.Stdout, sc, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "s3bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("== %s done in %v\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}

	if *expID == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, ok := experiments.Lookup(*expID)
	if !ok {
		fmt.Fprintf(os.Stderr, "s3bench: unknown experiment %q (use -list)\n", *expID)
		os.Exit(2)
	}
	run(e)
}
