// Command s3detect runs copy detection for one candidate clip against a
// database built by s3index. The clip is cut from the (regenerated)
// reference corpus — or from an unrelated video with -unrelated — and
// optionally transformed, reproducing the candidate construction of the
// paper's robustness experiments.
//
// Usage:
//
//	s3detect -db archive.s3db -ref 3 -start 40 -len 120 -transform gamma=1.8
//	s3detect -db archive.s3db -unrelated -len 120
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	s3 "s3cbcd"
	"s3cbcd/internal/obs"
	"s3cbcd/internal/vidsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("s3detect: ")
	var (
		dbPath    = flag.String("db", "archive.s3db", "database file from s3index")
		refID     = flag.Int("ref", 1, "reference video to cut the candidate clip from (1-based)")
		start     = flag.Int("start", 30, "first frame of the clip")
		clipLen   = flag.Int("len", 120, "clip length in frames")
		frames    = flag.Int("frames", 250, "frames per reference video (must match s3index)")
		seed      = flag.Int64("corpus-seed", 1, "corpus seed (must match s3index)")
		tfSpec    = flag.String("transform", "", "transformation: resize=S, shift=F, gamma=G, contrast=C, noise=S, or a+b composition")
		alpha     = flag.Float64("alpha", 0.80, "statistical query expectation")
		sigma     = flag.Float64("sigma", 20, "distortion model sigma")
		minVotes  = flag.Int("min-votes", 0, "decision threshold n_sim (0 = calibrate on clean clips)")
		unrelated = flag.Bool("unrelated", false, "use an unrelated clip (false-alarm check)")
		trace     = flag.Bool("trace", false, "print the detection's span tree (extract/search/vote with work counters)")
	)
	flag.Parse()

	cfg := s3.CBCDConfig{Alpha: *alpha, Sigma: *sigma}
	det, err := s3.OpenDetector(*dbPath, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d fingerprints, alpha=%.0f%%, sigma=%.1f\n",
		det.Index().DB().Len(), *alpha*100, *sigma)

	if *minVotes > 0 {
		det.SetVoteThreshold(*minVotes)
	} else {
		clean := []*s3.Video{
			s3.GenerateVideo(987001, *clipLen),
			s3.GenerateVideo(987002, *clipLen),
		}
		thr, err := s3.CalibrateThreshold(det, clean)
		if err != nil {
			log.Fatal(err)
		}
		det.SetVoteThreshold(thr)
		fmt.Printf("calibrated vote threshold: %d\n", thr)
	}

	var clip *s3.Video
	switch {
	case *unrelated:
		clip = s3.GenerateVideo(555555, *clipLen)
		fmt.Printf("candidate: unrelated clip of %d frames\n", *clipLen)
	default:
		ref := s3.GenerateVideo(*seed+int64(*refID-1), *frames)
		if *start+*clipLen > ref.Len() {
			log.Fatalf("clip [%d,%d) exceeds video length %d", *start, *start+*clipLen, ref.Len())
		}
		clip = &s3.Video{FPS: ref.FPS, Frames: ref.Frames[*start : *start+*clipLen]}
		fmt.Printf("candidate: frames [%d,%d) of reference %d\n", *start, *start+*clipLen, *refID)
	}
	if *tfSpec != "" {
		tf, err := parseTransform(*tfSpec)
		if err != nil {
			log.Fatal(err)
		}
		clip = vidsim.ApplySeq(tf, clip)
		fmt.Printf("transformation: %s\n", tf.Name())
	}

	ctx := context.Background()
	var tr *obs.Trace
	if *trace {
		tr = obs.NewTrace()
		tr.SetName("s3detect clip")
		ctx = obs.WithTrace(ctx, tr)
	}
	t0 := time.Now()
	dets, err := det.DetectClipCtx(ctx, clip)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)
	if len(dets) == 0 {
		fmt.Printf("no copy detected (%v)\n", elapsed.Round(time.Millisecond))
	}
	for _, d := range dets {
		fmt.Printf("COPY of video %d: temporal offset b=%.1f frames, n_sim=%d votes\n",
			d.ID, d.Offset, d.Votes)
	}
	if len(dets) > 0 {
		fmt.Printf("detection took %v\n", elapsed.Round(time.Millisecond))
	}
	if tr != nil {
		tr.Report().WriteTree(os.Stdout)
	}
}

// parseTransform turns "gamma=1.8" or "resize=0.8+noise=10" into a
// Transform.
func parseTransform(spec string) (vidsim.Transform, error) {
	var comp vidsim.Compose
	for _, part := range strings.Split(spec, "+") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad transform %q (want name=value)", part)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad transform value %q: %v", kv[1], err)
		}
		switch kv[0] {
		case "resize":
			comp = append(comp, vidsim.Resize{Scale: v})
		case "shift":
			comp = append(comp, vidsim.VShift{Frac: v})
		case "gamma":
			comp = append(comp, vidsim.Gamma{G: v})
		case "contrast":
			comp = append(comp, vidsim.Contrast{Factor: v})
		case "noise":
			comp = append(comp, vidsim.Noise{Sigma: v, Seed: 99})
		default:
			return nil, fmt.Errorf("unknown transform %q", kv[0])
		}
	}
	if len(comp) == 1 {
		return comp[0], nil
	}
	return comp, nil
}
