package s3

// Frontier-planner benchmark: the filtering step of a statistical query
// at α=0.8, σ=18 over the 500k fingerprint corpus, planned by the
// incremental frontier planner and by the legacy multi-descent threshold
// search.
//
//	go test -run TestPlanBenchSweep -bench-plan -timeout 30m .
//
// regenerates BENCH_plan.json in the repository root (gated behind the
// flag because building the corpus takes a while). The BenchmarkPlanStat*
// benchmarks expose the same comparison to the standard -bench machinery.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"s3cbcd/internal/core"
	"s3cbcd/internal/experiments"
	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/obs"
	"s3cbcd/internal/store"
)

var benchPlanFlag = flag.Bool("bench-plan", false, "run the planner comparison and write BENCH_plan.json")

// BenchmarkPlanStat measures the production (frontier) filtering step.
func BenchmarkPlanStat(b *testing.B) {
	_, ix, queries := sharedShardDB(b)
	sq := shardBenchQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ix.PlanStat(queries[i%len(queries)], sq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanStatLegacy measures the retained multi-descent search.
func BenchmarkPlanStatLegacy(b *testing.B) {
	_, ix, queries := sharedShardDB(b)
	sq := shardBenchQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ix.PlanStatLegacy(queries[i%len(queries)], sq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnginePlanStat measures the pooled plan path the engine's
// query methods use (Index.PlanStat above allocates its scratch per
// call; the engine draws it from a per-worker pool).
func BenchmarkEnginePlanStat(b *testing.B) {
	_, ix, queries := sharedShardDB(b)
	eng := core.NewEngine(ix, 1, 1)
	sq := shardBenchQuery()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eng.PlanStat(ctx, queries[i%len(queries)], sq); err != nil {
			b.Fatal(err)
		}
	}
}

// planAllocEngine builds a small single-shard engine for the allocation
// guard — counting allocations does not need the 500k shared corpus.
func planAllocEngine(tb testing.TB) (*core.Engine, [][]byte) {
	tb.Helper()
	curve := hilbert.MustNew(fingerprint.D, 8)
	db, err := store.Build(curve, experiments.FPCorpus(4096, 1))
	if err != nil {
		tb.Fatal(err)
	}
	ix, err := core.NewIndex(db, 0)
	if err != nil {
		tb.Fatal(err)
	}
	queries, _ := experiments.DistortedQueries(db, 8, shardBenchSigma, 2)
	return core.NewEngine(ix, 1, 1), queries
}

// TestPlanStatNoAllocsUntraced pins the cost contract of the
// observability layer: with no trace in the context, the pooled plan
// path allocates nothing — the engine metrics are pure atomics and the
// context lookup uses a zero-size key. A regression here means tracing
// stopped being free when disabled.
func TestPlanStatNoAllocsUntraced(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the guard runs in the non-race pass")
	}
	eng, queries := planAllocEngine(t)
	sq := shardBenchQuery()
	ctx := context.Background()
	for _, q := range queries { // warm the scratch pool
		if _, err := eng.PlanStat(ctx, q, sq); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := eng.PlanStat(ctx, queries[0], sq); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("untraced PlanStat allocates %.1f objects per call, want 0", avg)
	}

	// The same call with a trace attached must record the plan's work —
	// the traced path may allocate, but only the traced path.
	tr := obs.NewTrace()
	if _, err := eng.PlanStat(obs.WithTrace(ctx, tr), queries[0], sq); err != nil {
		t.Fatal(err)
	}
	if rep := tr.Report(); rep.DescentNodes == 0 || rep.Blocks == 0 {
		t.Errorf("traced PlanStat recorded no work: %+v", rep)
	}
}

// TestPlanStatNoAllocsCacheHit extends the guard to the plan cache: a
// hit returns the shared cached plan — hash the key, bump the LRU,
// return — without allocating. The compute closure the engine hands the
// cache must not escape to the heap on the hit path.
func TestPlanStatNoAllocsCacheHit(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the guard runs in the non-race pass")
	}
	eng, queries := planAllocEngine(t)
	eng.EnablePlanCache(0)
	sq := shardBenchQuery()
	ctx := context.Background()
	for _, q := range queries { // warm the scratch pool and populate the cache
		if _, err := eng.PlanStat(ctx, q, sq); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := eng.PlanStat(ctx, queries[0], sq); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("cache-hit PlanStat allocates %.1f objects per call, want 0", avg)
	}
	st, ok := eng.PlanCacheStats()
	if !ok || st.Hits == 0 {
		t.Fatalf("guard did not exercise the hit path: stats %+v ok=%v", st, ok)
	}
}

type planBenchSide struct {
	DescentNodes    int     `json:"descent_nodes_total"`
	NodesPerQuery   float64 `json:"descent_nodes_per_query"`
	Seconds         float64 `json:"seconds_per_pass"`
	PlansPerSec     float64 `json:"plans_per_sec"`
	AvgFilterIters  float64 `json:"avg_filter_iters"`
	AvgPlanBlocks   float64 `json:"avg_plan_blocks"`
	AvgPlanMass     float64 `json:"avg_plan_mass"`
	AvgPlanThreshld float64 `json:"avg_plan_threshold"`
}

// TestPlanBenchSweep plans every benchmark query with both planners,
// checks the plans are identical, and writes BENCH_plan.json with the
// node-count and throughput comparison. Gated behind -bench-plan.
func TestPlanBenchSweep(t *testing.T) {
	if !*benchPlanFlag {
		t.Skip("pass -bench-plan to run the planner comparison")
	}
	_, ix, queries := sharedShardDB(t)
	sq := shardBenchQuery()

	measure := func(plan func([]byte, StatQuery) (Plan, error)) (planBenchSide, []Plan) {
		var side planBenchSide
		plans := make([]Plan, len(queries))
		// Warm pass (page in the corpus side structures), then timed passes.
		for i, q := range queries {
			p, err := plan(q, sq)
			if err != nil {
				t.Fatal(err)
			}
			plans[i] = p
		}
		const rounds = 3
		start := time.Now()
		for r := 0; r < rounds; r++ {
			for i, q := range queries {
				p, err := plan(q, sq)
				if err != nil {
					t.Fatal(err)
				}
				plans[i] = p
			}
		}
		side.Seconds = time.Since(start).Seconds() / rounds
		side.PlansPerSec = float64(len(queries)) / side.Seconds
		for _, p := range plans {
			side.DescentNodes += p.DescentNodes
			side.AvgFilterIters += float64(p.FilterIters)
			side.AvgPlanBlocks += float64(p.Blocks)
			side.AvgPlanMass += p.Mass
			side.AvgPlanThreshld += p.Threshold
		}
		n := float64(len(queries))
		side.NodesPerQuery = float64(side.DescentNodes) / n
		side.AvgFilterIters /= n
		side.AvgPlanBlocks /= n
		side.AvgPlanMass /= n
		side.AvgPlanThreshld /= n
		return side, plans
	}

	frontier, fPlans := measure(ix.PlanStat)
	legacy, lPlans := measure(ix.PlanStatLegacy)

	// The comparison is only meaningful if the planners agree exactly.
	for i := range fPlans {
		f, l := fPlans[i], lPlans[i]
		f.DescentNodes, l.DescentNodes = 0, 0
		if !reflect.DeepEqual(f, l) {
			t.Fatalf("query %d: frontier plan differs from legacy plan", i)
		}
	}

	reduction := float64(legacy.DescentNodes) / float64(frontier.DescentNodes)
	t.Logf("descent nodes: frontier %d, legacy %d (%.1fx reduction)",
		frontier.DescentNodes, legacy.DescentNodes, reduction)
	t.Logf("plans/sec: frontier %.1f, legacy %.1f (%.2fx)",
		frontier.PlansPerSec, legacy.PlansPerSec, frontier.PlansPerSec/legacy.PlansPerSec)
	if reduction < 5 {
		t.Errorf("node reduction %.2fx below the 5x the frontier planner is expected to deliver", reduction)
	}

	report := map[string]interface{}{
		"benchmark": "statistical filtering step: frontier planner vs legacy multi-descent search",
		"corpus": map[string]interface{}{
			"records": shardBenchRecords,
			"dims":    fingerprint.D,
			"queries": len(queries),
			"alpha":   shardBenchAlpha,
			"sigma":   shardBenchSigma,
		},
		"host": map[string]interface{}{
			"num_cpu":    runtime.NumCPU(),
			"go_version": runtime.Version(),
		},
		"note": fmt.Sprintf("Plans are bit-identical between the two planners (verified in-run). "+
			"Timings measured on a %d-core host via Index.PlanStat / Index.PlanStatLegacy, "+
			"which allocate their scratch per call; the engine's pooled batch path "+
			"(Engine.SearchStatBatch) plans allocation-free on top of the same frontier code.",
			runtime.NumCPU()),
		"frontier":             frontier,
		"legacy":               legacy,
		"node_reduction":       reduction,
		"plans_per_sec_factor": frontier.PlansPerSec / legacy.PlansPerSec,
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_plan.json", append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_plan.json")
}
