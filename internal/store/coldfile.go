package store

import (
	"fmt"
	"sync"

	"s3cbcd/internal/bitkey"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/obs"
)

// DefaultColdBlockRecords is the default target block size of a cold
// file: the finest curve-section granularity whose largest block stays
// at or below this many records.
const DefaultColdBlockRecords = 4096

// ColdFile serves a database file's records directly from disk: the
// pseudo-disk strategy of Section IV-B promoted from a batch experiment
// (core.DiskIndex) into the serving read path. Only the header and
// section table are resident; record reads are pread-style block loads
// aligned to curve-section boundaries, cached in a shared BlockCache.
// Because curve sections are key-aligned, a block load is reusable by
// every query whose plan touches that stretch of the curve — the
// cross-query amortization of eq. (5), supplied by the cache instead of
// batch scheduling.
//
// A ColdFile is safe for concurrent VisitIntervals calls (File.ReadAt
// is). Close drops the file's cached blocks and releases the descriptor
// once in-flight visits drain; visits after Close fail with an error.
type ColdFile struct {
	fl    *File
	cache *BlockCache
	id    uint64
	bits  int  // blocks are curve sections of a 2^bits partition
	shift uint // curve index bits - bits

	sketch *Sketch       // block-level skip filter; nil when absent or disabled
	codec  bool          // serve lean/quantized read paths
	ctr    *ColdCounters // nil-safe shared counters

	mu     sync.Mutex
	refs   int
	closed bool
}

// ColdCounters aggregates the cold read reducer's counters across every
// cold file of a process. Construct once with NewColdCounters and share;
// a nil *ColdCounters is valid and counts nothing.
type ColdCounters struct {
	SkippedBlocks    *obs.Counter
	QuantizedRejects *obs.Counter
	FallbackReads    *obs.Counter
	BytesSaved       *obs.Counter
}

// NewColdCounters creates the cold read reducer's counter families.
func NewColdCounters() *ColdCounters {
	return &ColdCounters{
		SkippedBlocks: obs.NewCounter("s3_cold_skipped_blocks_total",
			"cold blocks proven empty by the segment sketch and never read"),
		QuantizedRejects: obs.NewCounter("s3_cold_quantized_rejects_total",
			"cold candidates rejected by the quantized distance bound without exact bytes"),
		FallbackReads: obs.NewCounter("s3_cold_exact_fallback_reads_total",
			"single-record exact reads verifying quantized-filter survivors"),
		BytesSaved: obs.NewCounter("s3_cold_bytes_saved_total",
			"on-disk bytes the sketch and codec avoided reading vs the exact block path"),
	}
}

// RegisterMetrics publishes the counters into r. Call at most once per
// registry.
func (c *ColdCounters) RegisterMetrics(r *obs.Registry) {
	r.MustRegister(c.SkippedBlocks, c.QuantizedRejects, c.FallbackReads, c.BytesSaved)
}

func (c *ColdCounters) addSkipped(bytesSaved int64) {
	if c == nil {
		return
	}
	c.SkippedBlocks.Inc()
	c.BytesSaved.Add(bytesSaved)
}

func (c *ColdCounters) addRejects(n, fallbacks, bytesSaved int64) {
	if c == nil {
		return
	}
	c.QuantizedRejects.Add(n)
	c.FallbackReads.Add(fallbacks)
	if bytesSaved > 0 {
		c.BytesSaved.Add(bytesSaved)
	}
}

func (c *ColdCounters) addLeanSaved(bytesSaved int64) {
	if c == nil || bytesSaved <= 0 {
		return
	}
	c.BytesSaved.Add(bytesSaved)
}

// ColdOptions configures cold serving of one segment file.
type ColdOptions struct {
	// Cache is the shared block cache; nil disables caching (every block
	// access reads the disk).
	Cache *BlockCache
	// BlockRecords is the target block size; <= 0 selects
	// DefaultColdBlockRecords.
	BlockRecords int
	// Sketch consults the file's embedded occupancy sketch (when present)
	// to skip blocks a query's intervals provably miss.
	Sketch bool
	// Codec serves statistical refinement from the lean record area and
	// pre-filters geometric candidates with quantized codes (when the file
	// carries the codec).
	Codec bool
	// Counters receives skip/reject/fallback accounting; nil counts
	// nothing.
	Counters *ColdCounters
}

// OpenColdFS opens a database file for cold serving through the given
// cache (nil disables caching: every block access reads the disk).
// blockRecords is the target block size; <= 0 selects
// DefaultColdBlockRecords. The block granularity is the finest partition
// whose largest block fits the target, capped at the file's stored
// section-table granularity. Sketch and codec serving are off; use
// OpenColdOptsFS to enable them.
func OpenColdFS(fsys FS, path string, cache *BlockCache, blockRecords int) (*ColdFile, error) {
	return OpenColdOptsFS(fsys, path, ColdOptions{Cache: cache, BlockRecords: blockRecords})
}

// OpenColdOptsFS opens a database file for cold serving with the given
// options. Sketch and codec requests degrade gracefully on files that
// carry no such section (older formats keep serving on the exact path).
func OpenColdOptsFS(fsys FS, path string, opt ColdOptions) (*ColdFile, error) {
	fl, err := OpenFS(fsys, path)
	if err != nil {
		return nil, err
	}
	blockRecords := opt.BlockRecords
	if blockRecords <= 0 {
		blockRecords = DefaultColdBlockRecords
	}
	bits := fl.ChooseSectionBits(blockRecords)
	var id uint64
	if opt.Cache != nil {
		id = opt.Cache.nextFileID()
	}
	cf := &ColdFile{fl: fl, cache: opt.Cache, id: id, bits: bits,
		shift: uint(fl.curve.IndexBits() - bits), ctr: opt.Counters}
	if opt.Sketch {
		cf.sketch = fl.sketch
	}
	cf.codec = opt.Codec && fl.HasCodec()
	return cf, nil
}

// Curve returns the Hilbert curve the records are ordered by.
func (cf *ColdFile) Curve() *hilbert.Curve { return cf.fl.curve }

// Len returns the number of records in the file.
func (cf *ColdFile) Len() int { return cf.fl.count }

// BlockBits returns the block granularity exponent: blocks are curve
// sections of a 2^BlockBits partition.
func (cf *ColdFile) BlockBits() int { return cf.bits }

// RecordBytes returns the on-disk size of the record area.
func (cf *ColdFile) RecordBytes() int64 { return cf.fl.RecordBytes() }

// Sketch returns the occupancy sketch this cold file consults, or nil
// when the file carries none or sketch serving is disabled.
func (cf *ColdFile) Sketch() *Sketch { return cf.sketch }

// Codec reports whether the lean/quantized read paths are active.
func (cf *ColdFile) Codec() bool { return cf.codec }

// SketchBytes returns the on-disk size of the consulted sketch section.
func (cf *ColdFile) SketchBytes() int {
	if cf.sketch == nil {
		return 0
	}
	return cf.sketch.EncodedSize()
}

// enter registers an in-flight read, failing once the file is closed.
func (cf *ColdFile) enter() error {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	if cf.closed {
		return fmt.Errorf("store: cold file is closed")
	}
	cf.refs++
	return nil
}

// exit drops an in-flight read, releasing the descriptor if Close ran
// meanwhile.
func (cf *ColdFile) exit() {
	cf.mu.Lock()
	cf.refs--
	release := cf.closed && cf.refs == 0
	cf.mu.Unlock()
	if release {
		cf.fl.Close()
	}
}

// Close marks the file closed, drops its cached blocks and releases the
// descriptor (deferred until in-flight visits drain). Idempotent.
func (cf *ColdFile) Close() error {
	cf.mu.Lock()
	if cf.closed {
		cf.mu.Unlock()
		return nil
	}
	cf.closed = true
	release := cf.refs == 0
	cf.mu.Unlock()
	if cf.cache != nil {
		cf.cache.Drop(cf.id)
	}
	if release {
		return cf.fl.Close()
	}
	return nil
}

// block returns the exact chunk of block s (records [lo, hi)), through
// the cache when one is attached.
func (cf *ColdFile) block(s, lo, hi int) (*Chunk, error) {
	if cf.cache == nil {
		return cf.fl.LoadRecords(lo, hi)
	}
	v, err := cf.cache.getOrLoad(blockKey{file: cf.id, block: s, kind: blockExact}, func() (any, int64, error) {
		ch, err := cf.fl.LoadRecords(lo, hi)
		if err != nil {
			return nil, 0, err
		}
		return ch, int64(hi-lo) * int64(cf.fl.recSize), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Chunk), nil
}

// leanBlock returns the fingerprint-free chunk of block s.
func (cf *ColdFile) leanBlock(s, lo, hi int) (*Chunk, error) {
	if cf.cache == nil {
		return cf.fl.LoadLean(lo, hi)
	}
	v, err := cf.cache.getOrLoad(blockKey{file: cf.id, block: s, kind: blockLean}, func() (any, int64, error) {
		ch, err := cf.fl.LoadLean(lo, hi)
		if err != nil {
			return nil, 0, err
		}
		return ch, int64(hi-lo) * int64(cf.fl.leanSize), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Chunk), nil
}

// codeBlock returns the packed quantizer codes of block s.
func (cf *ColdFile) codeBlock(s, lo, hi int) ([]byte, error) {
	if cf.cache == nil {
		return cf.fl.loadCodes(lo, hi)
	}
	v, err := cf.cache.getOrLoad(blockKey{file: cf.id, block: s, kind: blockQFP}, func() (any, int64, error) {
		codes, err := cf.fl.loadCodes(lo, hi)
		if err != nil {
			return nil, 0, err
		}
		return codes, int64(hi-lo) * int64(cf.fl.codeSize), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]byte), nil
}

// sketchSkips reports whether the sketch proves block s — keys in
// [secStart, secEnd) — holds no record of any interval. Intervals are
// clipped to the block before probing; a nil sketch or an exhausted
// probe budget never skips.
func (cf *ColdFile) sketchSkips(ivs []hilbert.Interval, c int, secStart, secEnd bitkey.Key, budget *int) bool {
	if cf.sketch == nil {
		return false
	}
	for cc := c; cc < len(ivs) && ivs[cc].Start.Less(secEnd); cc++ {
		start, end := ivs[cc].Start, ivs[cc].End
		if start.Less(secStart) {
			start = secStart
		}
		if secEnd.Less(end) {
			end = secEnd
		}
		if cf.sketch.mayIntersectRange(start, end, budget) {
			return false
		}
	}
	return true
}

// visitBlocks walks the blocks the intervals touch in curve order — the
// cursor logic of the pseudo-disk batch path — calling do once per
// non-empty touched block even when several intervals fall inside it.
// Empty stretches of the curve are skipped by jumping the block cursor
// to the next interval's start; blocks the sketch proves interval-free
// are skipped without a read. do receives the block index, its record
// range, the first interval index touching it and the block's key upper
// bound; returning false stops the walk.
func (cf *ColdFile) visitBlocks(ivs []hilbert.Interval,
	do func(s, lo, hi, c int, secEnd bitkey.Key) (bool, error)) error {
	if len(ivs) == 0 || cf.fl.count == 0 {
		return nil
	}
	if err := cf.enter(); err != nil {
		return err
	}
	defer cf.exit()
	budget := maxSketchProbes
	nb := 1 << uint(cf.bits)
	c := 0
	for c < len(ivs) {
		// Jump to the first block the current interval touches.
		s := int(ivs[c].Start.Shr(cf.shift).Uint64())
		if s >= nb {
			break
		}
		for ; s < nb && c < len(ivs); s++ {
			secStart := bitkey.FromUint64(uint64(s)).Shl(cf.shift)
			secEnd := bitkey.FromUint64(uint64(s) + 1).Shl(cf.shift)
			for c < len(ivs) && ivs[c].End.Cmp(secStart) <= 0 {
				c++
			}
			if c >= len(ivs) {
				break
			}
			if !ivs[c].Start.Less(secEnd) {
				// The next interval starts past this block: recompute the
				// jump in the outer loop instead of scanning empty blocks.
				break
			}
			lo, hi := cf.fl.SectionRecordRange(cf.bits, s)
			if lo == hi {
				continue
			}
			if cf.sketchSkips(ivs, c, secStart, secEnd, &budget) {
				cf.ctr.addSkipped(int64(hi-lo) * int64(cf.fl.recSize))
				continue
			}
			ok, err := do(s, lo, hi, c, secEnd)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		if s >= nb {
			// The block cursor ran off the curve: whatever interval tail
			// remains was covered by the blocks just visited.
			break
		}
	}
	return nil
}

// VisitIntervals implements RecordSource over the exact record area,
// refining each touched block with per-block binary searches.
func (cf *ColdFile) VisitIntervals(ivs []hilbert.Interval, visit func(RecordView) bool) error {
	return cf.visitBlocks(ivs, func(s, lo, hi, c int, secEnd bitkey.Key) (bool, error) {
		ch, err := cf.block(s, lo, hi)
		if err != nil {
			return false, err
		}
		for cc := c; cc < len(ivs) && ivs[cc].Start.Less(secEnd); cc++ {
			clo, chi := ch.FindInterval(ivs[cc])
			for i := clo; i < chi; i++ {
				if !visit(RecordView{Pos: ch.Base + i, Key: ch.keys[i], FP: ch.FP(i),
					ID: ch.ids[i], TC: ch.tcs[i], X: ch.xs[i], Y: ch.ys[i]}) {
					return false, nil
				}
			}
		}
		return true, nil
	})
}

// VisitIntervalsLean implements LeanSource: identical to VisitIntervals
// except visited views carry a nil FP, served from the lean record area
// when the codec is active (statistical refinement never reads
// fingerprints, so the bytes per touched block shrink by
// recSize/leanSize). Falls back to the exact area otherwise.
func (cf *ColdFile) VisitIntervalsLean(ivs []hilbert.Interval, visit func(RecordView) bool) error {
	if !cf.codec {
		return cf.VisitIntervals(ivs, func(rv RecordView) bool {
			rv.FP = nil
			return visit(rv)
		})
	}
	return cf.visitBlocks(ivs, func(s, lo, hi, c int, secEnd bitkey.Key) (bool, error) {
		ch, err := cf.leanBlock(s, lo, hi)
		if err != nil {
			return false, err
		}
		cf.ctr.addLeanSaved(int64(hi-lo) * int64(cf.fl.recSize-cf.fl.leanSize))
		for cc := c; cc < len(ivs) && ivs[cc].Start.Less(secEnd); cc++ {
			clo, chi := ch.FindInterval(ivs[cc])
			for i := clo; i < chi; i++ {
				if !visit(RecordView{Pos: ch.Base + i, Key: ch.keys[i],
					ID: ch.ids[i], TC: ch.tcs[i], X: ch.xs[i], Y: ch.ys[i]}) {
					return false, nil
				}
			}
		}
		return true, nil
	})
}

// VisitIntervalsFiltered implements FilteredSource: visit every record
// of the intervals whose exact squared distance to qf could be within
// boundSq, pre-filtering candidates on the packed quantizer codes so
// rejected records never cost exact bytes. Survivors are verified from
// exact bytes — the whole exact block when enough survive to justify it,
// single-record fallback reads otherwise. The filter is conservative:
// every record within boundSq is visited (with its exact FP); records
// beyond boundSq may be visited too, so callers must keep their exact
// predicate. Falls back to VisitIntervals when the codec is inactive.
func (cf *ColdFile) VisitIntervalsFiltered(ivs []hilbert.Interval, qf []float64, boundSq float64,
	visit func(RecordView) bool) error {
	if !cf.codec {
		return cf.VisitIntervals(ivs, visit)
	}
	lb := cf.fl.quant.NewLowerBounder(qf)
	var survivors []int // reused across blocks, record indices relative to lo
	return cf.visitBlocks(ivs, func(s, lo, hi, c int, secEnd bitkey.Key) (bool, error) {
		codes, err := cf.codeBlock(s, lo, hi)
		if err != nil {
			return false, err
		}
		// Keys drive interval refinement within the block; the lean rows
		// carry them at the smallest byte cost.
		ch, err := cf.leanBlock(s, lo, hi)
		if err != nil {
			return false, err
		}
		survivors = survivors[:0]
		rejects := int64(0)
		for cc := c; cc < len(ivs) && ivs[cc].Start.Less(secEnd); cc++ {
			clo, chi := ch.FindInterval(ivs[cc])
			for i := clo; i < chi; i++ {
				if lb.Exceeds(codes[i*cf.fl.codeSize:(i+1)*cf.fl.codeSize], boundSq) {
					rejects++
					continue
				}
				survivors = append(survivors, i)
			}
		}
		n := hi - lo
		blockBytes := int64(n) * int64(cf.fl.recSize)
		readBytes := int64(n) * int64(cf.fl.codeSize+cf.fl.leanSize)
		if len(survivors)*2 >= n {
			// Dense survivors: one exact block read beats per-record preads.
			ex, err := cf.block(s, lo, hi)
			if err != nil {
				return false, err
			}
			cf.ctr.addRejects(rejects, 0, -readBytes)
			for _, i := range survivors {
				if !visit(RecordView{Pos: ex.Base + i, Key: ex.keys[i], FP: ex.FP(i),
					ID: ex.ids[i], TC: ex.tcs[i], X: ex.xs[i], Y: ex.ys[i]}) {
					return false, nil
				}
			}
			return true, nil
		}
		fallbackBytes := int64(len(survivors)) * int64(cf.fl.recSize)
		cf.ctr.addRejects(rejects, int64(len(survivors)), blockBytes-readBytes-fallbackBytes)
		for _, i := range survivors {
			rv, err := cf.fl.ReadRecordView(lo + i)
			if err != nil {
				return false, err
			}
			if !visit(rv) {
				return false, nil
			}
		}
		return true, nil
	})
}

// CountID returns the number of records carrying the given identifier,
// scanning the file block by block *without* touching the cache: the
// delete path is rare and a full scan through the cache would evict the
// hot query blocks.
func (cf *ColdFile) CountID(id uint32) (int, error) {
	if err := cf.enter(); err != nil {
		return 0, err
	}
	defer cf.exit()
	n := 0
	for s := 0; s < 1<<uint(cf.bits); s++ {
		lo, hi := cf.fl.SectionRecordRange(cf.bits, s)
		if lo == hi {
			continue
		}
		ch, err := cf.fl.LoadRecords(lo, hi)
		if err != nil {
			return 0, err
		}
		for i := 0; i < ch.Len(); i++ {
			if ch.ids[i] == id {
				n++
			}
		}
	}
	return n, nil
}

// LoadAll reads the whole file into an in-memory DB, bypassing the cache
// (compaction input — one-shot bulk reads would churn the working set).
func (cf *ColdFile) LoadAll() (*DB, error) {
	if err := cf.enter(); err != nil {
		return nil, err
	}
	defer cf.exit()
	return cf.fl.LoadAll()
}
