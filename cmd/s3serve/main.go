// Command s3serve exposes an S3DB reference database over HTTP with a
// JSON search API (statistical, batch statistical, range and k-NN
// queries), the deployment mode where fingerprint extraction happens near
// the capture hardware and the archive index is a central service.
//
// Usage:
//
//	s3serve -db archive.s3db -addr :8080 -shards 8
//
//	curl localhost:8080/healthz
//	curl localhost:8080/stats
//	curl -X POST localhost:8080/search/statistical \
//	     -d '{"fingerprint":[...20 ints...],"alpha":0.8,"sigma":20}'
//	curl -X POST localhost:8080/search/statistical/batch \
//	     -d '{"fingerprints":[[...],[...]],"alpha":0.8,"sigma":20}'
//
// With -live DIR the server runs a live segmented index persisted in DIR
// instead of a read-only database file: ingest and delete endpoints are
// enabled and the index reopens to its last committed snapshot.
//
//	s3serve -live /var/lib/s3/live -dims 20 -addr :8080
//
//	curl -X POST localhost:8080/ingest \
//	     -d '{"records":[{"fingerprint":[...],"id":7,"tc":120}]}'
//	curl -X DELETE localhost:8080/video/7
//
// Live-mode persistence failures are retried in the background with
// capped exponential backoff (-compact-backoff sets the base delay);
// after -compact-retries consecutive failures the index serves degraded
// read-only — writes answer 503 with Retry-After, /healthz reports
// status "degraded" with the last persistence error — until a retry
// commits.
//
// The server carries read/write timeouts and drains in-flight requests
// before exiting on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"s3cbcd/internal/core"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/httpapi"
	"s3cbcd/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("s3serve: ")
	var (
		dbPath         = flag.String("db", "archive.s3db", "database file (static mode)")
		liveDir        = flag.String("live", "", "live index directory (enables ingest/delete; overrides -db)")
		dims           = flag.Int("dims", 20, "fingerprint dimension (live mode)")
		order          = flag.Int("order", 8, "bits per component (live mode)")
		addr           = flag.String("addr", ":8080", "listen address")
		depth          = flag.Int("depth", 0, "partition depth p (0 = auto)")
		shards         = flag.Int("shards", 0, "keyspace shards (0 = file manifest or 1)")
		workers        = flag.Int("workers", 0, "engine worker bound (0 = GOMAXPROCS)")
		maxInFlight    = flag.Int("max-inflight", 0, "concurrent searches bound (0 = default, <0 = unlimited)")
		compactBackoff = flag.Duration("compact-backoff", 0,
			"base delay between persistence/compaction retries, live mode (0 = default)")
		compactRetries = flag.Int("compact-retries", 0,
			"consecutive persistence failures before degraded read-only mode, live mode (0 = default, <0 = never degrade)")
		readTimeout  = flag.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "HTTP write timeout")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown drain timeout")
	)
	flag.Parse()

	var srv *httpapi.Server
	if *liveDir != "" {
		curve, err := hilbert.New(*dims, *order)
		if err != nil {
			log.Fatal(err)
		}
		li, err := core.OpenLiveIndex(curve, *liveDir, core.LiveOptions{
			Depth:        *depth,
			Workers:      *workers,
			RetryBackoff: *compactBackoff,
			RetryLimit:   *compactRetries,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := li.Close(); err != nil {
				log.Printf("close: %v", err)
			}
		}()
		srv = httpapi.NewLive(li, httpapi.Options{MaxInFlight: *maxInFlight})
		st := li.Stats()
		mode := "ok"
		if st.Degraded {
			mode = "DEGRADED (writes rejected until persistence recovers)"
		}
		log.Printf("live index in %s: %d fingerprints (D=%d, gen %d, %d segments), persistence %s",
			*liveDir, st.LiveRecords, *dims, st.Gen, st.Segments, mode)
	} else {
		fl, err := store.Open(*dbPath)
		if err != nil {
			log.Fatal(err)
		}
		db, err := fl.LoadAll()
		if err != nil {
			fl.Close()
			log.Fatal(err)
		}
		nShards := *shards
		if starts := fl.ShardStarts(); nShards == 0 && starts != nil {
			nShards = len(starts) - 1
		}
		fl.Close()
		srv, err = httpapi.New(db, httpapi.Options{
			Depth:       *depth,
			Shards:      nShards,
			Workers:     *workers,
			MaxInFlight: *maxInFlight,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving %d fingerprints (D=%d, %d shards) on %s",
			db.Len(), db.Dims(), srv.Engine().Shards(), *addr)
	}

	hs := &http.Server{
		Addr:         *addr,
		Handler:      srv,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("signal received, draining for up to %v", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}
