// TV monitoring: the deployment of Section V-D. A reference archive is
// indexed; a synthetic TV stream embedding transformed copies is
// monitored continuously with a sliding decision window; detections are
// reported with their stream position and the monitoring speed relative
// to real time.
//
// Run with: go run ./examples/tvmonitor
package main

import (
	"fmt"
	"log"
	"time"

	s3 "s3cbcd"
	"s3cbcd/internal/vidsim"
)

func main() {
	log.SetFlags(0)

	// Reference archive.
	in := s3.NewVideoIndexer(s3.CBCDConfig{})
	refs := make([]*s3.Video, 5)
	for i := range refs {
		refs[i] = s3.GenerateVideo(int64(200+i), 250)
		in.AddSequence(uint32(i+1), refs[i])
	}
	det, err := in.Build()
	if err != nil {
		log.Fatal(err)
	}
	thr, err := s3.CalibrateThreshold(det, []*s3.Video{
		s3.GenerateVideo(910, 250), s3.GenerateVideo(911, 250),
	})
	if err != nil {
		log.Fatal(err)
	}
	det.SetVoteThreshold(thr + thr/2)
	fmt.Printf("archive: %d fingerprints, vote threshold %d\n",
		det.Index().DB().Len(), thr+thr/2)

	// The monitored channel: filler, then a gamma-shifted copy of
	// reference 2 (a rerun with different grading), more filler, then a
	// black-and-white-style contrast-crushed copy of reference 4.
	stream := &s3.Video{FPS: 25}
	add := func(v *s3.Video) { stream.Frames = append(stream.Frames, v.Frames...) }
	add(s3.GenerateVideo(7000, 200))
	copy1 := &s3.Video{FPS: 25, Frames: refs[1].Frames[50:200]}
	add(vidsim.ApplySeq(vidsim.Gamma{G: 1.6}, copy1))
	add(s3.GenerateVideo(7001, 180))
	copy2 := &s3.Video{FPS: 25, Frames: refs[3].Frames[20:170]}
	add(vidsim.ApplySeq(vidsim.Compose{vidsim.Contrast{Factor: 0.7}, vidsim.Noise{Sigma: 4, Seed: 8}}, copy2))
	add(s3.GenerateVideo(7002, 150))
	fmt.Printf("stream: %d frames; copies of video 2 at [200,350) and video 4 at [530,680)\n\n",
		stream.Len())

	mon := s3.NewMonitor(det)
	t0 := time.Now()
	dets, err := mon.ProcessStream(stream)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)
	for _, d := range dets {
		fmt.Printf("detected video %d in stream window [%d,%d): %d votes\n",
			d.ID, d.WindowStart, d.WindowEnd, d.Votes)
	}
	streamSec := float64(stream.Len()) / 25
	fmt.Printf("\nmonitored %.1fs of video in %v (%.1fx real time)\n",
		streamSec, elapsed.Round(time.Millisecond), streamSec/elapsed.Seconds())
}
