package experiments

import (
	"fmt"
	"io"
	"math"

	"s3cbcd/internal/cbcd"
	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/vidsim"
)

func init() {
	register(Experiment{
		ID: "global",
		Title: "Motivation (§I/§III): local fingerprints vs a global per-frame " +
			"signature — detection under photometric vs geometric (shift/insert) " +
			"operations",
		Run: runGlobal,
	})
}

// runGlobal reproduces the argument for local fingerprints: a global
// frame signature handles photometric grading but collapses under the
// shifting and inserting operations "frequent in the TV context", while
// local fingerprints survive both. Each system gets its own fitted model
// scale and calibrated vote threshold, so the comparison is between
// measurement supports, not tuning.
func runGlobal(w io.Writer, sc Scale, seed int64) error {
	nRefs, refLen, nClips, clipLen := 6, 220, 6, 110
	if sc == Full {
		nRefs, refLen, nClips, clipLen = 10, 280, 10, 200
	}
	refs := VideoCorpus(nRefs, refLen, seed)

	type system struct {
		name    string
		extract func(*vidsim.Sequence, fingerprint.Config) []fingerprint.Local
		det     *cbcd.Detector
	}
	systems := []system{
		{name: "local (paper)", extract: fingerprint.Extract},
		{name: "global frame", extract: fingerprint.ExtractGlobal},
	}
	for i := range systems {
		// Fit the model scale on a photometric transformation both
		// supports survive: RMS component distortion between original and
		// transformed fingerprints at corresponding key-frames.
		sigma := fitSystemSigma(refs[:2], systems[i].extract)
		cfg := cbcd.DefaultConfig()
		cfg.Sigma = sigma
		cfg.Extract = systems[i].extract
		in := cbcd.NewIndexer(cfg)
		for ri, seq := range refs {
			in.AddSequence(uint32(ri+1), seq)
		}
		det, err := in.Build()
		if err != nil {
			return err
		}
		thr, err := cbcd.CalibrateThreshold(det, []*vidsim.Sequence{
			vidsim.Generate(vidsim.DefaultConfig(seed^71001), clipLen),
			vidsim.Generate(vidsim.DefaultConfig(seed^71002), clipLen),
		})
		if err != nil {
			return err
		}
		// Headroom over the calibration material, as a deployment would
		// use for a <1-false-alarm-per-hour operating point.
		det.SetVoteThreshold(2 * thr)
		systems[i].det = det
		fmt.Fprintf(w, "# %s: %d fingerprints indexed, fitted sigma %.1f, vote threshold %d\n",
			systems[i].name, det.Index().DB().Len(), sigma, 2*thr)
	}

	tfs := []struct {
		name string
		tf   vidsim.Transform
	}{
		{"exact copy", vidsim.Identity{}},
		{"gamma 1.6", vidsim.Gamma{G: 1.6}},
		{"noise 8", vidsim.Noise{Sigma: 8, Seed: seed}},
		{"shift 20%", vidsim.VShift{Frac: 0.20}},
		{"inset 0.7", vidsim.Inset{Scale: 0.7, OffX: 0.15, OffY: 0.1, Background: 60}},
	}
	// Each cell reports the threshold-free decision margin: the average
	// votes of the true identifier over the average votes of the best
	// wrong identifier. A usable detector needs margin >> 1; a coarse
	// signature that "matches everything" has margin ~ 1 regardless of
	// where the decision threshold is put.
	fmt.Fprintf(w, "%-14s", "transform")
	for _, s := range systems {
		fmt.Fprintf(w, " %26s", s.name+" true/wrong")
	}
	fmt.Fprintln(w)
	for _, tc := range tfs {
		fmt.Fprintf(w, "%-14s", tc.name)
		for _, s := range systems {
			var trueVotes, wrongVotes float64
			for ci := 0; ci < nClips; ci++ {
				refIdx := ci % nRefs
				start := 10 + 5*ci
				clip := &vidsim.Sequence{FPS: refs[refIdx].FPS,
					Frames: refs[refIdx].Frames[start : start+clipLen]}
				clip = vidsim.ApplySeq(tc.tf, clip)
				scores, err := s.det.ScoreClip(clip)
				if err != nil {
					return err
				}
				bestWrong := 0
				for _, d := range scores {
					if d.ID == uint32(refIdx+1) {
						trueVotes += float64(d.Votes)
					} else if d.Votes > bestWrong {
						bestWrong = d.Votes
					}
				}
				wrongVotes += float64(bestWrong)
			}
			n := float64(nClips)
			margin := trueVotes / math.Max(wrongVotes, 1)
			fmt.Fprintf(w, "     %6.0f /%5.0f  (%4.1fx)", trueVotes/n, wrongVotes/n, margin)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "# Expected: the local system keeps a wide true-vs-wrong margin under every\n")
	fmt.Fprintf(w, "# operation; the global signature's margin collapses toward 1 — the whole\n")
	fmt.Fprintf(w, "# frame is the wrong measurement support for the TV context (Section III).\n")
	return nil
}

// fitSystemSigma measures the RMS per-component distortion of an
// extractor under a moderate photometric transformation, pairing
// fingerprints by key-frame and position.
func fitSystemSigma(seqs []*vidsim.Sequence, extract func(*vidsim.Sequence, fingerprint.Config) []fingerprint.Local) float64 {
	cfg := fingerprint.DefaultConfig()
	tf := vidsim.Compose{vidsim.Gamma{G: 1.3}, vidsim.Noise{Sigma: 5, Seed: 99}}
	var sumSq float64
	var n int
	for _, seq := range seqs {
		a := extract(seq, cfg)
		b := extract(vidsim.ApplySeq(tf, seq), cfg)
		// Pair by (TC, X, Y): both runs detect on the same key-frames for
		// photometric transforms; skip unpaired fingerprints.
		type key struct {
			tc   uint32
			x, y int
		}
		bm := map[key]fingerprint.Fingerprint{}
		for _, l := range b {
			bm[key{l.TC, int(l.X), int(l.Y)}] = l.FP
		}
		for _, l := range a {
			fp, ok := bm[key{l.TC, int(l.X), int(l.Y)}]
			if !ok {
				continue
			}
			for j := range l.FP {
				d := float64(l.FP[j]) - float64(fp[j])
				sumSq += d * d
				n++
			}
		}
	}
	if n == 0 {
		return 20
	}
	sigma := math.Sqrt(sumSq / float64(n))
	if sigma < 4 {
		sigma = 4 // floor: too-tight models retrieve nothing under harsher ops
	}
	return sigma
}
