package router

// Chaos × tracing: with tracing forced on (rate 1.0), every injected
// fault must surface as an annotated attempt span in the assembled
// trace — no lost attempts — and the storm's answers must remain
// byte-identical to the untraced single-node reference once the
// appended trace member is stripped. Runs under `make chaos-router`.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"s3cbcd/internal/obs"
	"s3cbcd/internal/store"
)

// traceOf decodes the trace member a rate-1.0 router must append.
func traceOf(t *testing.T, raw []byte) obs.TraceReport {
	t.Helper()
	var resp struct {
		Trace *obs.TraceReport `json:"trace"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("decode traced response: %v (%s)", err, raw)
	}
	if resp.Trace == nil {
		t.Fatalf("response carries no trace though the rate is 1.0: %s", raw)
	}
	return *resp.Trace
}

// canonicalSansTrace strips the trace member and re-marshals with Go's
// canonical sorted-key encoding; reference bodies round-trip the same
// way so the comparison is representation-stable.
func canonicalSansTrace(t *testing.T, raw []byte) string {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	delete(m, "trace")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestChaosTracedFaultAttribution runs serial strict queries with
// tracing at rate 1.0 against a replica injecting 503s and torn
// responses: every injected fault must appear in the assembled trace as
// an attempt span annotated outcome=error (with its error text), every
// fault must have launched exactly one retry-annotated sibling attempt,
// and no attempt may go missing from the tree.
func TestChaosTracedFaultAttribution(t *testing.T) {
	seed := faultSeed(t)
	curve := testCurve(t)
	rng := rand.New(rand.NewSource(seed))
	ordered := sortedRecords(store.MustBuild(curve, randomRecords(rng, 260)))

	clean := apiServer(t, curve, ordered)
	fl := newFlaky(apiHandler(t, curve, ordered), seed+7)
	fl.setFaults(0.25, 0.15, 0, 0, 0)
	flakySrv := httptest.NewServer(fl)
	t.Cleanup(flakySrv.Close)

	_, rts := startRouter(t, Options{
		Groups:        [][]string{{flakySrv.URL, clean.URL}},
		Retries:       4,
		HedgeQuantile: -1, // serial accounting must not race a hedge
		ProbeInterval: -1,
		TraceRate:     1.0,
		TraceSeed:     seed,
	})

	var errored, retried int64
	const n = 80
	for i := 0; i < n; i++ {
		code, raw, _ := postBytes(t, rts.URL, "/search/statistical", statBody(ordered[rng.Intn(len(ordered))].FP))
		if code != http.StatusOK {
			t.Fatalf("query %d: status %d (%s)", i, code, raw)
		}
		rep := traceOf(t, raw)
		for _, a := range findSpans(rep.Spans, "attempt") {
			if a.Annotations["retry"] != "" {
				retried++
			}
			switch a.Annotations["outcome"] {
			case "ok":
				if a.Annotations["winner"] != "true" {
					t.Errorf("query %d: serial ok attempt not marked winner: %+v", i, a.Annotations)
				}
			case "error":
				errored++
				if a.Annotations["error"] == "" {
					t.Errorf("query %d: errored attempt without error annotation: %+v", i, a.Annotations)
				}
			default:
				t.Errorf("query %d: unexpected attempt outcome %q", i, a.Annotations["outcome"])
			}
		}
	}
	injected := fl.injected()
	if injected == 0 {
		t.Fatal("degenerate run: no faults injected")
	}
	if errored != injected {
		t.Errorf("injected %d faults but %d attempt spans errored — attempts lost from the trace", injected, errored)
	}
	if retried != errored {
		t.Errorf("%d errored attempts but %d retry-annotated attempts", errored, retried)
	}
}

// TestChaosStormTracedByteIdentical re-runs the storm shape with
// tracing forced on: under the full fault mix every answer must carry
// an assembled trace holding exactly one winning attempt per shard
// group, and — trace member stripped — remain byte-identical to the
// untraced single-node reference.
func TestChaosStormTracedByteIdentical(t *testing.T) {
	seed := faultSeed(t)
	curve := testCurve(t)
	rng := rand.New(rand.NewSource(seed))
	ordered := sortedRecords(store.MustBuild(curve, randomRecords(rng, 400)))
	ref := apiServer(t, curve, ordered)
	chunks := splitGroups(rng, ordered, 2)

	var flakies []*flaky
	var groups [][]string
	for i, chunk := range chunks {
		fl := newFlaky(apiHandler(t, curve, chunk), seed+211*int64(i))
		fl.setFaults(0.15, 0.10, 0.10, 0.05, 10*time.Millisecond)
		flakySrv := httptest.NewServer(fl)
		t.Cleanup(flakySrv.Close)
		cleanSrv := apiServer(t, curve, chunk)
		flakies = append(flakies, fl)
		groups = append(groups, []string{flakySrv.URL, cleanSrv.URL})
	}

	_, rts := startRouter(t, Options{
		Groups:        groups,
		Retries:       3,
		HedgeMin:      time.Millisecond,
		ProbeInterval: 25 * time.Millisecond,
		TraceRate:     1.0,
		TraceSeed:     seed,
	})

	type query struct {
		path, body, want string
		knn              bool
	}
	var queries []query
	for i := 0; i < 24; i++ {
		fp := ordered[rng.Intn(len(ordered))].FP
		switch i % 4 {
		case 0:
			queries = append(queries, query{path: "/search/statistical", body: statBody(fp)})
		case 1:
			queries = append(queries, query{path: "/search/range",
				body: fmt.Sprintf(`{"fingerprint":%s,"epsilon":120}`, fpJSON(fp))})
		case 2:
			queries = append(queries, query{path: "/search/statistical/batch",
				body: fmt.Sprintf(`{"fingerprints":[%s],"alpha":0.9,"sigma":20}`, fpJSON(fp))})
		case 3:
			queries = append(queries, query{path: "/search/knn",
				body: fmt.Sprintf(`{"fingerprint":%s,"k":8}`, fpJSON(fp)), knn: true})
		}
	}
	for i := range queries {
		code, raw, _ := postBytes(t, ref.URL, queries[i].path, queries[i].body)
		if code != http.StatusOK {
			t.Fatalf("reference %s: status %d", queries[i].path, code)
		}
		queries[i].want = canonicalSansTrace(t, raw)
	}

	var mu sync.Mutex
	var badAttempts int64
	const workers = 4
	const rounds = 2
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for qi, q := range queries {
					if (qi+round)%workers != w {
						continue
					}
					code, raw, _ := postBytes(t, rts.URL, q.path, q.body)
					if code != http.StatusOK {
						t.Errorf("%s under traced chaos: status %d (%s)", q.path, code, raw)
						continue
					}
					rep := traceOf(t, raw)
					winners := 0
					for _, a := range findSpans(rep.Spans, "attempt") {
						if a.Annotations["winner"] == "true" {
							winners++
						}
						switch a.Annotations["outcome"] {
						case "ok", "error", "abandoned":
						default:
							mu.Lock()
							badAttempts++
							mu.Unlock()
						}
					}
					if want := len(findSpans(rep.Spans, "group")); winners != want {
						t.Errorf("%s: %d winning attempts across %d groups", q.path, winners, want)
					}
					if q.knn {
						compareKNN(t, []byte(q.want), raw)
					} else if got := canonicalSansTrace(t, raw); got != q.want {
						t.Errorf("%s diverged with tracing on:\nref:    %s\nrouter: %s", q.path, q.want, got)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var injected int64
	for _, fl := range flakies {
		injected += fl.injected()
	}
	if injected == 0 {
		t.Fatal("degenerate storm: no faults injected")
	}
	if badAttempts != 0 {
		t.Errorf("%d attempt spans with unexpected outcome", badAttempts)
	}
	metrics5xxIsZero(t, rts)
}
