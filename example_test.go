package s3_test

import (
	"fmt"
	"math/rand"

	s3 "s3cbcd"
)

// ExampleBuildIndex indexes fingerprints and runs a statistical query of
// expectation 90% around a stored fingerprint.
func ExampleBuildIndex() {
	r := rand.New(rand.NewSource(1))
	recs := make([]s3.Record, 5000)
	for i := range recs {
		fp := make([]byte, 20)
		for j := range fp {
			fp[j] = byte(r.Intn(256))
		}
		recs[i] = s3.Record{FP: fp, ID: uint32(i / 50), TC: uint32(i % 50)}
	}
	idx, err := s3.BuildIndex(20, recs, s3.IndexOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	sq := s3.StatQuery{Alpha: 0.9, Model: s3.IsoNormal{D: 20, Sigma: 12}}
	matches, plan, err := idx.StatSearch(recs[100].FP, sq)
	if err != nil {
		fmt.Println(err)
		return
	}
	self := false
	for _, m := range matches {
		if m.ID == recs[100].ID && m.TC == recs[100].TC {
			self = true
		}
	}
	fmt.Printf("indexed %d fingerprints; region mass >= %.2f: %v; query found itself: %v\n",
		idx.Len(), 0.9, plan.Mass >= 0.9, self)
	// Output:
	// indexed 5000 fingerprints; region mass >= 0.90: true; query found itself: true
}

// ExampleMatchedRangeRadius shows the ε giving a range query the same
// expectation as a statistical query (the paper's comparison setup).
func ExampleMatchedRangeRadius() {
	eps := s3.MatchedRangeRadius(20, 20, 0.80)
	fmt.Printf("epsilon for D=20 sigma=20 alpha=80%%: %.1f\n", eps)
	// Output:
	// epsilon for D=20 sigma=20 alpha=80%: 100.1
}

// ExampleNewVideoIndexer runs the complete copy-detection pipeline on a
// generated reference video and an exact copy of a clip of it.
func ExampleNewVideoIndexer() {
	ref := s3.GenerateVideo(42, 160)
	in := s3.NewVideoIndexer(s3.CBCDConfig{})
	in.AddSequence(7, ref)
	det, err := in.Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	clip := &s3.Video{FPS: ref.FPS, Frames: ref.Frames[40:140]}
	dets, err := det.DetectClip(clip)
	if err != nil {
		fmt.Println(err)
		return
	}
	if len(dets) > 0 {
		fmt.Printf("detected video %d at offset %.0f frames\n", dets[0].ID, dets[0].Offset)
	}
	// Output:
	// detected video 7 at offset -40 frames
}
