package store

import (
	"io"
	iofs "io/fs"
	"os"
)

// FS is the filesystem seam every durable byte of the store flows
// through: segment file writes and reads, manifest commits, the recovery
// scan and garbage collection. The default implementation (OSFS) is the
// real operating system; internal/faultfs substitutes a deterministic
// fault-injecting one so crash recovery and degraded-mode behaviour are
// testable without real disk failures.
//
// Implementations must preserve the durability contract the store's
// crash-safety argument rests on: Create+Write+Sync makes file data
// stable, Rename is atomic, and SyncDir makes preceding renames and
// creations in a directory stable.
type FS interface {
	// Open opens an existing file for reading.
	Open(path string) (Handle, error)
	// Create creates (or truncates) a file for writing.
	Create(path string) (Handle, error)
	// Rename atomically moves oldPath to newPath, replacing any existing
	// file at newPath.
	Rename(oldPath, newPath string) error
	// Remove deletes a file.
	Remove(path string) error
	// ReadDir lists a directory.
	ReadDir(dir string) ([]iofs.DirEntry, error)
	// SyncDir fsyncs a directory, making renames and creations within it
	// durable.
	SyncDir(dir string) error
}

// Handle is the subset of *os.File the store uses. ReadAt must be safe for
// concurrent use (os.File's is), because an opened database file serves
// concurrent LoadRecords calls.
type Handle interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage.
	Sync() error
}

// OSFS is the real operating-system filesystem, the default FS.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) Open(path string) (Handle, error)   { return os.Open(path) }
func (osFS) Create(path string) (Handle, error) { return os.Create(path) }
func (osFS) Rename(o, n string) error           { return os.Rename(o, n) }
func (osFS) Remove(path string) error           { return os.Remove(path) }
func (osFS) ReadDir(dir string) ([]iofs.DirEntry, error) {
	return os.ReadDir(dir)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// fsReadFile reads a whole file through an FS (the os.ReadFile of the
// seam).
func fsReadFile(fsys FS, path string) ([]byte, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
