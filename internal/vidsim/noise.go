package vidsim

import "math"

// hash2 maps a lattice point and seed to a pseudo-random value in [0, 1).
// It is a small integer mix (SplitMix64-style) — fast, stateless and
// deterministic, which keeps frame rendering reproducible and parallel-
// safe without sharing a rand.Source.
func hash2(ix, iy int64, seed uint64) float64 {
	z := uint64(ix)*0x9E3779B97F4A7C15 ^ uint64(iy)*0xC2B2AE3D27D4EB4F ^ seed
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// smoothstep is the C1 interpolation kernel 3t^2 - 2t^3.
func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// valueNoise evaluates lattice value noise at (x, y): random values at
// integer lattice points, smoothly interpolated in between. Result in
// [0, 1).
func valueNoise(x, y float64, seed uint64) float64 {
	ix, iy := math.Floor(x), math.Floor(y)
	fx, fy := x-ix, y-iy
	i0, j0 := int64(ix), int64(iy)
	v00 := hash2(i0, j0, seed)
	v10 := hash2(i0+1, j0, seed)
	v01 := hash2(i0, j0+1, seed)
	v11 := hash2(i0+1, j0+1, seed)
	sx, sy := smoothstep(fx), smoothstep(fy)
	top := v00 + (v10-v00)*sx
	bot := v01 + (v11-v01)*sx
	return top + (bot-top)*sy
}

// fbm is fractal Brownian motion: octaves of value noise with halving
// amplitude and doubling frequency. Result approximately in [0, 1).
func fbm(x, y float64, octaves int, seed uint64) float64 {
	sum, amp, norm := 0.0, 1.0, 0.0
	for o := 0; o < octaves; o++ {
		sum += amp * valueNoise(x, y, seed+uint64(o)*0x6C62272E07BB0142)
		norm += amp
		amp *= 0.5
		x *= 2
		y *= 2
	}
	return sum / norm
}
