package experiments

import (
	"fmt"
	"io"
	"math"

	"s3cbcd/internal/distortion"
	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/stat"
	"s3cbcd/internal/vidsim"
)

func init() {
	register(Experiment{
		ID: "fig1",
		Title: "Figure 1: distribution of the distance between a fingerprint and its " +
			"distorted version (resize wscale=0.8) vs. independent-normal and " +
			"uniform-spherical models",
		Run: runFig1,
	})
}

func runFig1(w io.Writer, sc Scale, seed int64) error {
	nSeqs := 4
	if sc == Full {
		nSeqs = 12
	}
	seqs := VideoCorpus(nSeqs, 150, seed)
	tf := vidsim.Resize{Scale: 0.8}
	pairs := distortion.CollectPairs(seqs, tf, fingerprint.DefaultConfig())
	est, err := distortion.Fit(pairs)
	if err != nil {
		return err
	}
	norms := distortion.Norms(pairs)
	maxN := 0.0
	for _, n := range norms {
		if n > maxN {
			maxN = n
		}
	}
	hi := maxN * 1.3
	hist := stat.NewHistogram(0, hi, 40)
	var mean stat.Moments
	for _, n := range norms {
		hist.Add(n)
		mean.Add(n)
	}

	// Independent-normal model: the chi distribution of ||ΔS|| with the
	// fitted sigma. Uniform-spherical model: radius density D r^{D-1}/R^D
	// of a uniform distribution inside the sphere of radius R matched to
	// the empirical mean (R = mean (D+1)/D).
	rd := stat.RadiusDist{D: fingerprint.D, Sigma: est.Sigma}
	d := float64(fingerprint.D)
	radius := mean.Mean() * (d + 1) / d
	uniformPDF := func(r float64) float64 {
		if r < 0 || r > radius {
			return 0
		}
		return d * math.Pow(r, d-1) / math.Pow(radius, d)
	}

	fmt.Fprintf(w, "# Figure 1 — pdf of ||ΔS|| for %s (%d correspondences, fitted sigma=%.2f)\n",
		tf.Name(), est.Pairs, est.Sigma)
	fmt.Fprintf(w, "# The real distribution tracks the normal model, not the uniform-spherical one.\n")
	fmt.Fprintf(w, "%10s %14s %14s %14s\n", "distance", "real", "normal", "sphericalUnif")
	for i := range hist.Counts {
		r := hist.BinCenter(i)
		fmt.Fprintf(w, "%10.1f %14.6f %14.6f %14.6f\n",
			r, hist.Density(i), rd.PDF(r), uniformPDF(r))
	}

	// Quantify the paper's visual claim: L1 distance between the
	// empirical density and each model (lower = closer).
	var errNormal, errUniform float64
	for i := range hist.Counts {
		r := hist.BinCenter(i)
		errNormal += math.Abs(hist.Density(i)-rd.PDF(r)) * hist.BinWidth()
		errUniform += math.Abs(hist.Density(i)-uniformPDF(r)) * hist.BinWidth()
	}
	fmt.Fprintf(w, "# L1(real, normal) = %.4f   L1(real, sphericalUniform) = %.4f\n",
		errNormal, errUniform)
	if errNormal < errUniform {
		fmt.Fprintf(w, "# => the independent normal model is the closer fit, as in the paper.\n")
	} else {
		fmt.Fprintf(w, "# => WARNING: normal model is NOT closer at this scale.\n")
	}
	return nil
}
