package cbcd

import (
	"testing"

	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/vidsim"
)

// TestParallelSearchMatchesSerial runs the same detection serially and
// with 4 workers and requires byte-identical voting candidates.
func TestParallelSearchMatchesSerial(t *testing.T) {
	refs := refCorpus(4, 180)
	serial := buildDetector(t, refs, DefaultConfig())
	pcfg := DefaultConfig()
	pcfg.Workers = 4
	in := NewIndexer(pcfg)
	for i, seq := range refs {
		in.AddSequence(uint32(i+1), seq)
	}
	parallel, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}

	clip := clip(refs[1], 30, 150)
	locals := fingerprint.Extract(clip, serial.Config().Fingerprint)
	a, err := serial.SearchLocals(locals)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.SearchLocals(locals)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("candidate counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].TC != b[i].TC || len(a[i].Matches) != len(b[i].Matches) {
			t.Fatalf("candidate %d differs: %d vs %d matches", i, len(a[i].Matches), len(b[i].Matches))
		}
		for j := range a[i].Matches {
			if a[i].Matches[j] != b[i].Matches[j] {
				t.Fatalf("candidate %d match %d differs", i, j)
			}
		}
	}
	// End-to-end detections agree too.
	da, err := serial.DetectClip(clip)
	if err != nil {
		t.Fatal(err)
	}
	db, err := parallel.DetectClip(clip)
	if err != nil {
		t.Fatal(err)
	}
	if len(da) != len(db) || (len(da) > 0 && (da[0].ID != db[0].ID || da[0].Votes != db[0].Votes)) {
		t.Fatalf("detections differ: %+v vs %+v", da, db)
	}
}

// TestShardedSearchMatchesSerial adds keyspace sharding on top of worker
// parallelism and requires byte-identical voting candidates — the detector
// now routes per-fingerprint queries through the shared query engine.
func TestShardedSearchMatchesSerial(t *testing.T) {
	refs := refCorpus(4, 180)
	serial := buildDetector(t, refs, DefaultConfig())
	scfg := DefaultConfig()
	scfg.Workers = 4
	scfg.Shards = 4
	in := NewIndexer(scfg)
	for i, seq := range refs {
		in.AddSequence(uint32(i+1), seq)
	}
	sharded, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := sharded.Engine().Shards(); got != 4 {
		t.Fatalf("detector engine has %d shards, want 4", got)
	}

	clip := clip(refs[2], 20, 140)
	locals := fingerprint.Extract(clip, serial.Config().Fingerprint)
	a, err := serial.SearchLocals(locals)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sharded.SearchLocals(locals)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("candidate counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].TC != b[i].TC || len(a[i].Matches) != len(b[i].Matches) {
			t.Fatalf("candidate %d differs: %d vs %d matches", i, len(a[i].Matches), len(b[i].Matches))
		}
		for j := range a[i].Matches {
			if a[i].Matches[j] != b[i].Matches[j] {
				t.Fatalf("candidate %d match %d differs", i, j)
			}
		}
	}
}

// TestSpatialVotingEndToEnd enables the spatial extension on real video:
// a resized copy must still be detected, with the fitted scale close to
// the resize factor.
func TestSpatialVotingEndToEnd(t *testing.T) {
	refs := refCorpus(4, 200)
	cfg := DefaultConfig()
	cfg.Vote.SpatialTolerance = 6
	det := buildDetector(t, refs, cfg)
	c := vidsim.ApplySeq(vidsim.Resize{Scale: 0.8}, clip(refs[0], 40, 160))
	dets, err := det.DetectClip(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 || dets[0].ID != 1 {
		t.Fatalf("resized copy not detected with spatial voting: %+v", dets)
	}
	if dets[0].ScaleX < 0.7 || dets[0].ScaleX > 0.9 {
		t.Fatalf("fitted scale %v, want ~0.8", dets[0].ScaleX)
	}
	if dets[0].Votes > dets[0].TemporalVotes {
		t.Fatalf("spatial votes %d exceed temporal %d", dets[0].Votes, dets[0].TemporalVotes)
	}
}
