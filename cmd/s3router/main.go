// Command s3router is the fault-tolerant scatter/gather coordinator for
// a fleet of s3serve shard replicas. It serves the same JSON search API
// as a single s3serve, scattering each query across the key-range shard
// groups and merging the results byte-identically to a single node
// holding the whole corpus.
//
// The placement is static: either computed by rendezvous hashing from
// the backend list,
//
//	s3router -addr :8090 -backends http://a:8080,http://b:8080,http://c:8080 \
//	         -groups 4 -replicas 2
//
// or given explicitly, one -group flag per shard group (replicas
// comma-separated, groups in key-range order):
//
//	s3router -addr :8090 \
//	         -group http://a:8080,http://b:8080 \
//	         -group http://b:8080,http://c:8080
//
// -print-placement prints the computed group → replica table and exits;
// the operator deploys one s3serve per table cell over that group's
// shard file.
//
// Robustness: an active prober classifies each backend
// healthy/degraded/down from /healthz; failed or slow subqueries are
// retried with capped exponential backoff and hedged against sibling
// replicas at a recent latency quantile; a consecutive-failure circuit
// breaker and a bounded in-flight budget front every backend; excess
// client load is shed immediately with 503 + Retry-After. -partial
// picks what an unreachable shard group does to a response: strict
// fails it, degrade returns the reachable groups plus a missingShards
// list (clients override per request with ?partial=).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"s3cbcd/internal/obs"
	"s3cbcd/internal/router"
)

// groupFlags collects repeated -group flags.
type groupFlags [][]string

func (g *groupFlags) String() string { return fmt.Sprint([][]string(*g)) }

func (g *groupFlags) Set(v string) error {
	urls := splitList(v)
	if len(urls) == 0 {
		return errors.New("empty group")
	}
	*g = append(*g, urls)
	return nil
}

func splitList(v string) []string {
	var out []string
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func main() {
	var explicit groupFlags
	flag.Var(&explicit, "group", "explicit shard group: comma-separated replica URLs (repeat per group, key-range order; overrides -backends)")
	var (
		addr     = flag.String("addr", ":8090", "listen address")
		backends = flag.String("backends", "", "comma-separated backend URLs for rendezvous placement")
		groups   = flag.Int("groups", 0, "shard group count for rendezvous placement (0 = one per backend)")
		replicas = flag.Int("replicas", 1, "replicas per group for rendezvous placement")
		printPl  = flag.Bool("print-placement", false, "print the group -> replica placement table and exit")

		maxInFlight     = flag.Int("max-inflight", 0, "concurrent client requests bound (0 = default, <0 = unlimited)")
		backendInFlight = flag.Int("backend-inflight", 0, "concurrent requests per backend (0 = default, <0 = unlimited)")
		retries         = flag.Int("retries", 0, "sibling retries per shard group (0 = default, <0 = none)")
		retryBackoff    = flag.Duration("retry-backoff", 0, "base retry backoff, doubling per retry (0 = default)")
		maxRetryBackoff = flag.Duration("max-retry-backoff", 0, "retry backoff cap (0 = default)")
		hedgeQuantile   = flag.Float64("hedge-quantile", 0, "latency quantile that triggers a hedged request (0 = default, <0 = off)")
		hedgeMin        = flag.Duration("hedge-min", 0, "hedge delay floor (0 = default)")
		requestTimeout  = flag.Duration("request-timeout", 0, "end-to-end client request budget (0 = default, <0 = none)")
		breakerThresh   = flag.Int("breaker-threshold", 0, "consecutive failures tripping a backend breaker (0 = default, <0 = off)")
		breakerCooldown = flag.Duration("breaker-cooldown", 0, "breaker open -> half-open delay (0 = default)")
		probeInterval   = flag.Duration("probe-interval", 0, "health probe period (0 = default, <0 = off)")
		partial         = flag.String("partial", "strict", "partial-result policy when a shard group is unreachable: strict or degrade")

		traceRate  = flag.Float64("trace-rate", 0, "fraction of requests to trace end-to-end (0 = off, 1 = all)")
		traceSeed  = flag.Int64("trace-seed", 0, "trace sampler seed (reproducible sampling)")
		traceStore = flag.Int("trace-store", 0,
			"finished traces kept in memory for /debug/traces (0 = default)")
		traceSlow = flag.Duration("trace-slow", 0,
			"log traced searches at least this slow, assembled span tree attached (0 = off)")
		debugAddr = flag.String("debug-addr", "",
			"operator listener with /debug/pprof/*, /debug/traces and /metrics (empty = disabled)")

		logJSON      = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		readTimeout  = flag.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "HTTP write timeout")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown drain timeout")
	)
	flag.Parse()

	logger := newLogger(*logJSON)

	placement := [][]string(explicit)
	if len(placement) == 0 {
		urls := splitList(*backends)
		if len(urls) == 0 {
			fatal(logger, "placement", errors.New("need -group flags or -backends"))
		}
		g := *groups
		if g == 0 {
			g = len(urls)
		}
		var err error
		placement, err = router.Placement(urls, g, *replicas)
		if err != nil {
			fatal(logger, "placement", err)
		}
	}
	if *printPl {
		for g, set := range placement {
			fmt.Printf("group %d: %s\n", g, strings.Join(set, " "))
		}
		return
	}

	reg := obs.NewRegistry()
	rt, err := router.New(router.Options{
		Groups:           placement,
		MaxInFlight:      *maxInFlight,
		BackendInFlight:  *backendInFlight,
		Retries:          *retries,
		RetryBackoff:     *retryBackoff,
		MaxRetryBackoff:  *maxRetryBackoff,
		HedgeQuantile:    *hedgeQuantile,
		HedgeMin:         *hedgeMin,
		RequestTimeout:   *requestTimeout,
		BreakerThreshold: *breakerThresh,
		BreakerCooldown:  *breakerCooldown,
		ProbeInterval:    *probeInterval,
		Partial:          *partial,
		Metrics:          reg,
		Logger:           logger,
		TraceRate:        *traceRate,
		TraceSeed:        *traceSeed,
		TraceStoreSize:   *traceStore,
		SlowQuery:        *traceSlow,
	})
	if err != nil {
		fatal(logger, "build router", err)
	}
	defer rt.Close()
	logger.Info("routing", "groups", len(placement), "addr", *addr, "partial", *partial)

	if *debugAddr != "" {
		go serveDebug(logger, *debugAddr, reg, rt.Traces())
	}

	hs := &http.Server{
		Addr:         *addr,
		Handler:      rt,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)

	select {
	case err := <-errCh:
		fatal(logger, "serve", err)
	case <-ctx.Done():
		stop()
		logger.Info("signal received, draining", "timeout", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			fatal(logger, "shutdown", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(logger, "serve", err)
		}
	}
}

// serveDebug runs the operator-only listener: pprof profiles, the
// trace store (recent/slowest/errored assembled traces as JSON) and a
// /metrics alias, on its own mux so the endpoints exist only where
// this listener is reachable.
func serveDebug(logger *slog.Logger, addr string, reg *obs.Registry, traces *obs.TraceStore) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/traces", traces.Handler())
	mux.Handle("/metrics", reg.Handler())
	logger.Info("debug listener", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("debug listener failed", "err", err)
	}
}

func newLogger(asJSON bool) *slog.Logger {
	var h slog.Handler
	if asJSON {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	return slog.New(h).With("service", "s3router")
}

func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "err", err)
	os.Exit(1)
}
