package store_test

// Open/LoadRecords failure behaviour under injected storage faults,
// driven through faultfs: a read failing or coming up short at ANY point
// of the open sequence must yield an error — never a torn *File — and
// must never leak the descriptor; header corruption must be rejected the
// same way. This is the external-package twin of failure_test.go (which
// covers clean-filesystem corruption); here the filesystem itself
// misbehaves.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"s3cbcd/internal/faultfs"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/store"
)

// scriptRead returns an injector applying act to the n-th operation
// matching target (1-based, counted over matching operations only).
func scriptRead(target faultfs.Op, n int, act faultfs.Action) faultfs.Injector {
	count := 0
	return func(op faultfs.Op, _ string, _ int) faultfs.Action {
		if op != target {
			return faultfs.Pass
		}
		count++
		if count == n {
			return act
		}
		return faultfs.Pass
	}
}

// writeTestFile builds a small sharded database file and returns its
// path.
func writeTestFile(t *testing.T) string {
	t.Helper()
	curve := hilbert.MustNew(4, 4)
	recs := make([]store.Record, 40)
	for i := range recs {
		recs[i] = store.Record{
			FP: []byte{byte(i % 16), byte((i * 3) % 16), byte((i * 7) % 16), byte(i % 5)},
			ID: uint32(i % 4), TC: uint32(i),
		}
	}
	db, err := store.Build(curve, recs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.s3db")
	if err := db.WriteFileSharded(path, 4, 3); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOpenFaultAtEveryRead fails (and separately truncates) each read of
// the open sequence in turn: every fault point must surface an error and
// leave no descriptor behind.
func TestOpenFaultAtEveryRead(t *testing.T) {
	path := writeTestFile(t)
	for _, act := range []faultfs.Action{faultfs.Fail, faultfs.ShortWrite} {
		for n := 1; n <= 50; n++ {
			fs := faultfs.New(store.OSFS, scriptRead(faultfs.OpRead, n, act))
			fl, err := store.OpenFS(fs, path)
			if err == nil {
				// The open sequence performs fewer than n reads: the fault
				// never fired and the file opened cleanly.
				fl.Close()
				if fs.Injected() != 0 {
					t.Fatalf("action %d, read %d: open succeeded despite an injected fault", act, n)
				}
				if lh := fs.OpenHandles(); lh != 0 {
					t.Fatalf("action %d, read %d: %d handles left after clean open+close", act, n, lh)
				}
				break
			}
			if lh := fs.OpenHandles(); lh != 0 {
				t.Fatalf("action %d, read %d: failed open leaked %d descriptors: %v", act, n, lh, err)
			}
			if n == 50 {
				t.Fatalf("action %d: open performs 50+ reads; test never saw a clean pass", act)
			}
		}
	}
}

// TestOpenFaultOnOpen covers the first possible failure: the open call
// itself. No handle exists yet, so none may be counted.
func TestOpenFaultOnOpen(t *testing.T) {
	path := writeTestFile(t)
	fs := faultfs.New(store.OSFS, scriptRead(faultfs.OpOpen, 1, faultfs.Fail))
	if _, err := store.OpenFS(fs, path); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("open with failed syscall returned %v, want ErrInjected", err)
	}
	if lh := fs.OpenHandles(); lh != 0 {
		t.Fatalf("failed open counted %d handles", lh)
	}
}

// TestLoadRecordsFaultyReadAt opens cleanly, then fails the record read:
// LoadRecords must report the error, and the file must remain usable for
// a subsequent healthy load.
func TestLoadRecordsFaultyReadAt(t *testing.T) {
	path := writeTestFile(t)
	// Open itself issues two ReadAt probes (section-table end, record-area
	// end); the third ReadAt is the LoadRecords body this test targets.
	fs := faultfs.New(store.OSFS, scriptRead(faultfs.OpReadAt, 3, faultfs.Fail))
	fl, err := store.OpenFS(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if _, err := fl.LoadRecords(0, fl.Count()); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("LoadRecords with failing ReadAt returned %v, want ErrInjected", err)
	}
	// The fault was transient (first ReadAt only): the next load succeeds.
	db, err := fl.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll after transient fault: %v", err)
	}
	if db.Len() != fl.Count() {
		t.Fatalf("LoadAll returned %d records, want %d", db.Len(), fl.Count())
	}
}

// TestLoadRecordsShortReadAt truncates the record read: a file shorter
// than its header promises must be reported, not silently padded.
func TestLoadRecordsShortReadAt(t *testing.T) {
	path := writeTestFile(t)
	// ReadAt #3: the first record read after open's two probes.
	fs := faultfs.New(store.OSFS, scriptRead(faultfs.OpReadAt, 3, faultfs.ShortWrite))
	fl, err := store.OpenFS(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if _, err := fl.LoadRecords(0, fl.Count()); err == nil {
		t.Fatal("LoadRecords with a short ReadAt succeeded")
	}
}

// TestColdReadSeededInjector pins NewSeededReads's contract: at rate 1
// every read faults (nothing opens, nothing leaks); at rate 0 nothing
// does; and the injector never touches the write side.
func TestColdReadSeededInjector(t *testing.T) {
	path := writeTestFile(t)
	always := faultfs.NewSeededReads(store.OSFS, 1, 1.0)
	if fl, err := store.OpenFS(always, path); err == nil {
		fl.Close()
		t.Fatal("open with every read faulted succeeded")
	}
	if lh := always.OpenHandles(); lh != 0 {
		t.Fatalf("failed open leaked %d descriptors", lh)
	}

	never := faultfs.NewSeededReads(store.OSFS, 1, 0)
	fl, err := store.OpenFS(never, path)
	if err != nil {
		t.Fatalf("open at rate 0: %v", err)
	}
	defer fl.Close()
	if _, err := fl.LoadAll(); err != nil {
		t.Fatalf("LoadAll at rate 0: %v", err)
	}

	// Writes pass untouched even at rate 1: the read injector must not
	// destabilize the write path's guarantees.
	curve := hilbert.MustNew(4, 4)
	db, err := store.Build(curve, []store.Record{{FP: []byte{1, 2, 3, 4}, ID: 1, TC: 1}})
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "out.s3db")
	if err := db.WriteFileFS(always, out, 2); err != nil {
		t.Fatalf("write through a read-only injector: %v", err)
	}
}

// TestOpenHeaderCorruption flips every byte of the header and section
// table in turn. Whatever the validators decide, a failed open must not
// leak its descriptor, and magic/version damage must always fail.
func TestOpenHeaderCorruption(t *testing.T) {
	path := writeTestFile(t)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Header (28 bytes) plus the start of the section table.
	limit := 28 + 64
	if limit > len(orig) {
		limit = len(orig)
	}
	dir := t.TempDir()
	for i := 0; i < limit; i++ {
		bad := append([]byte(nil), orig...)
		bad[i] ^= 0xff
		p := filepath.Join(dir, "bad.s3db")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		fs := faultfs.New(store.OSFS, nil)
		fl, err := store.OpenFS(fs, p)
		if err == nil {
			fl.Close()
			if i < 8 {
				t.Fatalf("open accepted a file with magic/version byte %d corrupted", i)
			}
		}
		if lh := fs.OpenHandles(); lh != 0 {
			t.Fatalf("byte %d corrupted: open leaked %d descriptors (err=%v)", i, lh, err)
		}
	}
}
