package core

// Concurrency stress for the plan cache, designed to run under -race
// (internal/core is in the Makefile's RACE_PKGS). Phase one pins the
// singleflight contract: a burst of goroutines on one cold key admits
// exactly one plan computation. Phase two hammers a live index with
// concurrent readers and mutators, then quiesces and checks no stale
// plan survived the mutations (generation-keyed invalidation cannot
// lose an update).

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"s3cbcd/internal/store"
)

func TestPlanCacheSingleflightBurst(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	recs := make([]store.Record, 500)
	for i := range recs {
		recs[i] = randLiveRecord(r)
	}
	db, err := store.Build(liveTestCurve(), recs)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(db, liveTestDepth)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ix, 1, 0)
	eng.EnablePlanCache(0)

	const n = 16
	q := recs[0].FP
	sq := StatQuery{Alpha: 0.9, Model: IsoNormal{D: liveTestDims, Sigma: 2.5}}
	ctx := context.Background()

	gate := make(chan struct{})
	plans := make([]Plan, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			p, err := eng.PlanStat(ctx, q, sq)
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = p
		}(i)
	}
	close(gate)
	wg.Wait()

	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(plans[i], plans[0]) {
			t.Fatalf("goroutine %d got a different plan", i)
		}
	}
	st, ok := eng.PlanCacheStats()
	if !ok {
		t.Fatal("plan cache reported disabled")
	}
	if st.Misses != 1 {
		t.Errorf("burst on one cold key admitted %d plan computations, want 1 (singleflight)", st.Misses)
	}
	if st.Hits != n-1 {
		t.Errorf("burst: %d hits, want %d (every non-winner must be served from the winner's plan)", st.Hits, n-1)
	}
	if st.SharedWaits > n-1 {
		t.Errorf("burst: %d shared waits exceed the %d possible waiters", st.SharedWaits, n-1)
	}
}

func TestPlanCacheConcurrentMutationStress(t *testing.T) {
	li, err := OpenLiveIndex(liveTestCurve(), "", LiveOptions{
		Depth:           liveTestDepth,
		MemtableRecords: 32,
		PlanCache:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer li.Close()

	r := rand.New(rand.NewSource(23))
	seedBatch := make([]store.Record, 200)
	for i := range seedBatch {
		seedBatch[i] = randLiveRecord(r)
	}
	if err := li.Ingest(seedBatch); err != nil {
		t.Fatal(err)
	}

	pool := make([][]byte, 6)
	for i := range pool {
		pool[i] = randLiveRecord(r).FP
	}
	sq := StatQuery{Alpha: 0.9, Model: IsoNormal{D: liveTestDims, Sigma: 2.5}}
	ctx := context.Background()

	const (
		readers   = 6
		mutators  = 3
		readIters = 60
		mutateOps = 15
	)
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-gate
			for i := 0; i < readIters; i++ {
				if _, _, err := li.SearchStat(ctx, pool[(g+i)%len(pool)], sq); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < mutators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-gate
			mr := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < mutateOps; i++ {
				switch mr.Intn(4) {
				case 0, 1:
					batch := make([]store.Record, 1+mr.Intn(30))
					for j := range batch {
						batch[j] = randLiveRecord(mr)
					}
					if err := li.Ingest(batch); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if err := li.DeleteVideo(uint32(mr.Intn(6))); err != nil {
						t.Error(err)
						return
					}
				case 3:
					if err := li.Compact(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	close(gate)
	wg.Wait()

	// Quiesced: every cached answer must match a fresh uncached one —
	// a lost invalidation would surface here as a stale plan or stale
	// match set served for the final generation.
	raw := WithoutPlanCache(ctx)
	for qi, q := range pool {
		gotM, gotP, err := li.SearchStat(ctx, q, sq)
		if err != nil {
			t.Fatal(err)
		}
		wantM, wantP, err := li.SearchStat(raw, q, sq)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotP, wantP) {
			t.Errorf("query %d: post-stress cached plan differs from uncached", qi)
		}
		if !matchesEqual(gotM, wantM) {
			t.Errorf("query %d: post-stress cached matches differ from uncached (%d vs %d)",
				qi, len(gotM), len(wantM))
		}
	}
	st, ok := li.PlanCacheStats()
	if !ok {
		t.Fatal("plan cache reported disabled")
	}
	if st.Hits == 0 {
		t.Errorf("stress produced no cache hits (misses %d)", st.Misses)
	}
	t.Logf("stress: %d hits, %d misses, %d shared waits, %d evictions, %d entries",
		st.Hits, st.Misses, st.SharedWaits, st.Evictions, st.Entries)
}
