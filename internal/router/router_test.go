package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/httpapi"
	"s3cbcd/internal/store"
)

// Shared single-node/router geometry: every backend and the reference
// must run the same explicit depth — the depth heuristic is a function
// of database size, and sub-databases are smaller than the whole.
const (
	testDims  = 8
	testOrder = 8
	testDepth = 6
)

// faultSeed makes randomized layouts and chaos schedules reproducible:
// FAULT_SEED=n re-runs the exact sequence a failure reported.
func faultSeed(tb testing.TB) int64 {
	if s := os.Getenv("FAULT_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			tb.Fatalf("FAULT_SEED %q: %v", s, err)
		}
		return n
	}
	return 1
}

func testCurve(tb testing.TB) *hilbert.Curve {
	tb.Helper()
	return hilbert.MustNew(testDims, testOrder)
}

func randomRecords(rng *rand.Rand, n int) []store.Record {
	recs := make([]store.Record, n)
	for i := range recs {
		fp := make([]byte, testDims)
		for j := range fp {
			fp[j] = byte(rng.Intn(256))
		}
		recs[i] = store.Record{FP: fp, ID: uint32(i), TC: uint32(3 * i), X: uint16(i % 320), Y: uint16(i % 200)}
	}
	return recs
}

// sortedRecords extracts db's records in its canonical (Hilbert key,
// tie-broken) order — the order sub-database slicing must respect for
// concatenation merging to reproduce single-node results.
func sortedRecords(db *store.DB) []store.Record {
	recs := make([]store.Record, db.Len())
	for i := range recs {
		recs[i] = store.Record{FP: db.FP(i), ID: db.ID(i), TC: db.TC(i), X: db.X(i), Y: db.Y(i)}
	}
	return recs
}

// apiServer builds one s3serve-equivalent backend over recs.
func apiServer(tb testing.TB, curve *hilbert.Curve, recs []store.Record) *httptest.Server {
	tb.Helper()
	db := store.MustBuild(curve, recs)
	s, err := httpapi.New(db, httpapi.Options{Depth: testDepth, Shards: 2, Workers: 2})
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(s)
	tb.Cleanup(ts.Close)
	return ts
}

// startRouter builds a router over groups and serves it.
func startRouter(tb testing.TB, opt Options) (*Router, *httptest.Server) {
	tb.Helper()
	rt, err := New(opt)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(rt.Close)
	ts := httptest.NewServer(rt)
	tb.Cleanup(ts.Close)
	return rt, ts
}

// postBytes returns status, raw body and headers for a JSON POST.
func postBytes(tb testing.TB, base, path, body string) (int, []byte, http.Header) {
	tb.Helper()
	resp, err := http.Post(base+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp.StatusCode, raw, resp.Header
}

func fpJSON(fp []byte) string {
	out := make([]int, len(fp))
	for i, b := range fp {
		out[i] = int(b)
	}
	raw, _ := json.Marshal(out)
	return string(raw)
}

// splitGroups cuts the canonical record order into g non-empty
// contiguous chunks at random boundaries.
func splitGroups(rng *rand.Rand, recs []store.Record, g int) [][]store.Record {
	cuts := map[int]bool{}
	for len(cuts) < g-1 {
		cuts[1+rng.Intn(len(recs)-1)] = true
	}
	bounds := []int{0}
	for c := range cuts {
		bounds = append(bounds, c)
	}
	bounds = append(bounds, len(recs))
	sortInts(bounds)
	chunks := make([][]store.Record, 0, g)
	for i := 0; i+1 < len(bounds); i++ {
		chunks = append(chunks, recs[bounds[i]:bounds[i+1]])
	}
	return chunks
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TestMergeByteIdenticalProperty is the tentpole property: across random
// corpus sizes, group counts, cut points and replica factors, the
// router's merged stat/range/batch responses are byte-identical to one
// s3serve holding the whole corpus, and k-NN matches are byte-identical
// whenever the top-k distances are distinct (the single-node heap's
// tie order is traversal-dependent, so ties are out of contract).
func TestMergeByteIdenticalProperty(t *testing.T) {
	seed := faultSeed(t)
	curve := testCurve(t)
	const trials = 4
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(seed + int64(trial)*101))
		n := 300 + rng.Intn(300)
		global := store.MustBuild(curve, randomRecords(rng, n))
		ordered := sortedRecords(global)
		ref := apiServer(t, curve, ordered)

		g := 1 + rng.Intn(4)
		replicas := 1 + rng.Intn(2)
		chunks := splitGroups(rng, ordered, g)
		groups := make([][]string, len(chunks))
		for gi, chunk := range chunks {
			for ri := 0; ri < replicas; ri++ {
				groups[gi] = append(groups[gi], apiServer(t, curve, chunk).URL)
			}
		}
		_, rts := startRouter(t, Options{Groups: groups, ProbeInterval: -1})
		t.Logf("trial %d: n=%d groups=%d replicas=%d", trial, n, g, replicas)

		queries := make([][]byte, 0, 6)
		for i := 0; i < 3; i++ {
			queries = append(queries, ordered[rng.Intn(n)].FP)
		}
		for i := 0; i < 3; i++ {
			queries = append(queries, randomRecords(rng, 1)[0].FP)
		}

		for qi, fp := range queries {
			bodies := []struct {
				path string
				body string
			}{
				{"/search/statistical", fmt.Sprintf(`{"fingerprint":%s,"alpha":0.8,"sigma":10}`, fpJSON(fp))},
				{"/search/statistical", fmt.Sprintf(`{"fingerprint":%s,"alpha":0.95,"sigma":40}`, fpJSON(fp))},
				{"/search/range", fmt.Sprintf(`{"fingerprint":%s,"epsilon":60}`, fpJSON(fp))},
				{"/search/range", fmt.Sprintf(`{"fingerprint":%s,"epsilon":250}`, fpJSON(fp))},
				{"/search/statistical/batch", fmt.Sprintf(`{"fingerprints":[%s,%s],"alpha":0.9,"sigma":25}`,
					fpJSON(fp), fpJSON(queries[(qi+1)%len(queries)]))},
			}
			for _, q := range bodies {
				refCode, refBody, _ := postBytes(t, ref.URL, q.path, q.body)
				gotCode, gotBody, _ := postBytes(t, rts.URL, q.path, q.body)
				if refCode != http.StatusOK || gotCode != http.StatusOK {
					t.Fatalf("trial %d %s: status ref=%d router=%d (%s)", trial, q.path, refCode, gotCode, gotBody)
				}
				if !bytes.Equal(refBody, gotBody) {
					t.Fatalf("trial %d %s not byte-identical:\nquery: %s\nref:    %s\nrouter: %s",
						trial, q.path, q.body, refBody, gotBody)
				}
			}

			knnBody := fmt.Sprintf(`{"fingerprint":%s,"k":10}`, fpJSON(fp))
			refCode, refBody, _ := postBytes(t, ref.URL, "/search/knn", knnBody)
			gotCode, gotBody, _ := postBytes(t, rts.URL, "/search/knn", knnBody)
			if refCode != http.StatusOK || gotCode != http.StatusOK {
				t.Fatalf("trial %d knn: status ref=%d router=%d", trial, refCode, gotCode)
			}
			compareKNN(t, refBody, gotBody)
		}
	}
}

// compareKNN checks the merged k-NN answer against the single node:
// distance sequences always agree; with distinct distances the match
// lists must be byte-identical.
func compareKNN(t *testing.T, refBody, gotBody []byte) {
	t.Helper()
	type knnResp struct {
		Matches []matchJSON `json:"matches"`
	}
	var ref, got knnResp
	if err := json.Unmarshal(refBody, &ref); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(gotBody, &got); err != nil {
		t.Fatal(err)
	}
	if len(ref.Matches) != len(got.Matches) {
		t.Fatalf("knn: %d matches, single node has %d", len(got.Matches), len(ref.Matches))
	}
	distinct := true
	for i := range ref.Matches {
		if got.Matches[i].Dist != ref.Matches[i].Dist {
			t.Fatalf("knn: dist[%d] = %v, single node has %v", i, got.Matches[i].Dist, ref.Matches[i].Dist)
		}
		if i > 0 && ref.Matches[i].Dist == ref.Matches[i-1].Dist {
			distinct = false
		}
	}
	if distinct {
		refRaw, _ := json.Marshal(ref.Matches)
		gotRaw, _ := json.Marshal(got.Matches)
		if !bytes.Equal(refRaw, gotRaw) {
			t.Fatalf("knn matches with distinct distances not identical:\nref:    %s\nrouter: %s", refRaw, gotRaw)
		}
	}
}

func TestRouterShedsAtCapacity(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.Write([]byte(`{"matches":[],"plan":{}}`))
	}))
	defer slow.Close()
	defer close(release)

	rt, rts := startRouter(t, Options{
		Groups:        [][]string{{slow.URL}},
		MaxInFlight:   1,
		ProbeInterval: -1,
	})

	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		code, _, _ := postBytes(t, rts.URL, "/search/statistical", `{"fingerprint":[1],"alpha":0.5,"sigma":1}`)
		if code != http.StatusOK {
			t.Errorf("first request: status %d", code)
		}
	}()
	<-started
	// Wait until the first request holds the slot.
	deadline := time.Now().Add(2 * time.Second)
	for rt.met.inflight.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never occupied the router")
		}
		time.Sleep(time.Millisecond)
	}
	code, body, hdr := postBytes(t, rts.URL, "/search/statistical", `{"fingerprint":[1],"alpha":0.5,"sigma":1}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("expected shed 503, got %d (%s)", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed 503 without Retry-After")
	}
	if rt.met.shed.Value() != 1 {
		t.Fatalf("shed counter %d, want 1", rt.met.shed.Value())
	}
	release <- struct{}{}
	wg.Wait()
}

func TestPartialPolicies(t *testing.T) {
	curve := testCurve(t)
	rng := rand.New(rand.NewSource(faultSeed(t)))
	ordered := sortedRecords(store.MustBuild(curve, randomRecords(rng, 400)))
	chunks := splitGroups(rng, ordered, 2)

	up := apiServer(t, curve, chunks[1])
	down := httptest.NewServer(http.NotFoundHandler())
	downURL := down.URL
	down.Close() // group 0's only replica refuses connections

	groups := [][]string{{downURL}, {up.URL}}
	body := fmt.Sprintf(`{"fingerprint":%s,"alpha":0.8,"sigma":10}`, fpJSON(ordered[0].FP))

	rt, rts := startRouter(t, Options{Groups: groups, ProbeInterval: -1, Retries: -1})

	code, raw, hdr := postBytes(t, rts.URL, "/search/statistical", body)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("strict with a dead group: status %d (%s)", code, raw)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("strict 503 without Retry-After")
	}

	code, raw, _ = postBytes(t, rts.URL, "/search/statistical?partial=degrade", body)
	if code != http.StatusOK {
		t.Fatalf("degrade: status %d (%s)", code, raw)
	}
	var resp struct {
		Matches       []matchJSON `json:"matches"`
		MissingShards []int       `json:"missingShards"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.MissingShards) != 1 || resp.MissingShards[0] != 0 {
		t.Fatalf("missingShards %v, want [0]", resp.MissingShards)
	}
	if rt.met.partials.Value() != 1 || rt.met.missingShards.Value() != 1 {
		t.Fatalf("partials=%d missingShards=%d, want 1/1",
			rt.met.partials.Value(), rt.met.missingShards.Value())
	}

	// An invalid override is a client error, not silently strict.
	code, _, _ = postBytes(t, rts.URL, "/search/statistical?partial=sometimes", body)
	if code != http.StatusBadRequest {
		t.Fatalf("invalid partial override: status %d", code)
	}

	// Every group dead: degrade still refuses to fabricate an answer.
	rtAll, rtsAll := startRouter(t, Options{
		Groups: [][]string{{downURL}}, Partial: PartialDegrade, ProbeInterval: -1, Retries: -1,
	})
	_ = rtAll
	code, _, _ = postBytes(t, rtsAll.URL, "/search/statistical", body)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degrade with all groups dead: status %d, want 503", code)
	}
}

func TestRouterDeadlineHeader(t *testing.T) {
	curve := testCurve(t)
	rng := rand.New(rand.NewSource(faultSeed(t)))
	ordered := sortedRecords(store.MustBuild(curve, randomRecords(rng, 200)))
	be := apiServer(t, curve, ordered)
	_, rts := startRouter(t, Options{Groups: [][]string{{be.URL}}, ProbeInterval: -1})

	body := fmt.Sprintf(`{"fingerprint":%s,"alpha":0.8,"sigma":10}`, fpJSON(ordered[0].FP))

	req, _ := http.NewRequest(http.MethodPost, rts.URL+"/search/statistical", bytes.NewReader([]byte(body)))
	req.Header.Set(deadlineHeader, "not-a-deadline")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed deadline: status %d", resp.StatusCode)
	}

	// An expired client budget is the client's timeout, not fleet
	// unavailability: 504, and no Retry-After inviting a doomed retry.
	req, _ = http.NewRequest(http.MethodPost, rts.URL+"/search/statistical", bytes.NewReader([]byte(body)))
	req.Header.Set(deadlineHeader, strconv.FormatInt(time.Now().Add(-time.Second).UnixMilli(), 10))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status %d, want 504", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "" {
		t.Fatal("expired-deadline 504 carries Retry-After")
	}
}

// TestRouterBodyTooLarge: an oversized request must be rejected with
// 413, never silently truncated into corrupt JSON for the backends.
func TestRouterBodyTooLarge(t *testing.T) {
	curve := testCurve(t)
	rng := rand.New(rand.NewSource(faultSeed(t)))
	ordered := sortedRecords(store.MustBuild(curve, randomRecords(rng, 50)))
	be := apiServer(t, curve, ordered)
	_, rts := startRouter(t, Options{Groups: [][]string{{be.URL}}, ProbeInterval: -1})

	big := `{"fingerprint":[` + strings.Repeat("1,", maxRequestBody/2) + `1]}`
	code, raw, _ := postBytes(t, rts.URL, "/search/statistical", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d (%.120s), want 413", code, raw)
	}
}

// TestHalfOpenProbeNeverStranded: a half-open probe whose attempt is
// abandoned (here: killed by the request deadline while the backend
// hangs) must resolve the breaker rather than leave it half-open
// forever with the backend blackholed until restart.
func TestHalfOpenProbeNeverStranded(t *testing.T) {
	curve := testCurve(t)
	rng := rand.New(rand.NewSource(faultSeed(t)))
	ordered := sortedRecords(store.MustBuild(curve, randomRecords(rng, 100)))

	stop := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-stop:
		}
	}))
	t.Cleanup(hang.Close)
	t.Cleanup(func() { close(stop) }) // LIFO: unblock handlers before Close waits on them

	rt, rts := startRouter(t, Options{
		Groups:           [][]string{{hang.URL}},
		Retries:          -1,
		HedgeQuantile:    -1,
		ProbeInterval:    -1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Millisecond,
		RequestTimeout:   50 * time.Millisecond,
	})
	be := backendFor(rt, hang.URL)

	// Trip the breaker, wait out the cooldown, then send the request
	// that consumes the half-open probe slot and dies on the deadline.
	be.br.failure()
	if be.br.snapshot() != breakerOpen {
		t.Fatal("breaker did not trip")
	}
	time.Sleep(5 * time.Millisecond)
	body := fmt.Sprintf(`{"fingerprint":%s,"alpha":0.8,"sigma":10}`, fpJSON(ordered[0].FP))
	code, _, _ := postBytes(t, rts.URL, "/search/statistical", body)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("hanging backend: status %d, want 504", code)
	}

	// The abandoned probe must hand its slot back: the breaker may not
	// stay half-open once the attempt goroutine drains.
	deadline := time.Now().Add(2 * time.Second)
	for be.br.snapshot() == breakerHalfOpen {
		if time.Now().After(deadline) {
			t.Fatal("breaker stuck half-open after its probe was abandoned")
		}
		time.Sleep(time.Millisecond)
	}
	if ok, probe := be.br.allow(); !ok || !probe {
		t.Fatalf("breaker refused the re-probe after an abandoned one (ok=%v probe=%v)", ok, probe)
	}
}

func TestBadQueryPropagates400(t *testing.T) {
	curve := testCurve(t)
	rng := rand.New(rand.NewSource(faultSeed(t)))
	ordered := sortedRecords(store.MustBuild(curve, randomRecords(rng, 200)))
	be := apiServer(t, curve, ordered)
	rt, rts := startRouter(t, Options{Groups: [][]string{{be.URL}}, ProbeInterval: -1})

	body := fmt.Sprintf(`{"fingerprint":%s,"alpha":0.8,"sigma":-1}`, fpJSON(ordered[0].FP))
	code, raw, _ := postBytes(t, rts.URL, "/search/statistical", body)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d (%s), want the backend's 400", code, raw)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
		t.Fatalf("no error message in %s", raw)
	}
	if rt.met.retries.Value() != 0 {
		t.Fatalf("a query defect was retried %d times", rt.met.retries.Value())
	}
}

func TestRouterHealthzAndStats(t *testing.T) {
	curve := testCurve(t)
	rng := rand.New(rand.NewSource(faultSeed(t)))
	ordered := sortedRecords(store.MustBuild(curve, randomRecords(rng, 300)))
	chunks := splitGroups(rng, ordered, 2)
	a := apiServer(t, curve, chunks[0])
	b := apiServer(t, curve, chunks[1])

	_, rts := startRouter(t, Options{
		Groups:        [][]string{{a.URL}, {b.URL}},
		ProbeInterval: 20 * time.Millisecond,
	})

	waitStatus := func(want string) map[string]interface{} {
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := http.Get(rts.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			var out map[string]interface{}
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if out["status"] == want {
				return out
			}
			if time.Now().After(deadline) {
				t.Fatalf("healthz never reached %q: %v", want, out)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	out := waitStatus("ok")
	if int(out["groups"].(float64)) != 2 {
		t.Fatalf("groups %v, want 2", out["groups"])
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(rts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st map[string]float64
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if int(st["records"]) == len(ordered) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats records %v never reached %d", st["records"], len(ordered))
		}
		time.Sleep(10 * time.Millisecond)
	}

	b.Close() // group 1 loses its only replica
	waitStatus("down")
}

func TestMetricsEndpointRendersRouterFamilies(t *testing.T) {
	curve := testCurve(t)
	rng := rand.New(rand.NewSource(faultSeed(t)))
	ordered := sortedRecords(store.MustBuild(curve, randomRecords(rng, 100)))
	be := apiServer(t, curve, ordered)
	_, rts := startRouter(t, Options{Groups: [][]string{{be.URL}}, ProbeInterval: -1})

	resp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, family := range []string{
		"s3_router_inflight_requests",
		"s3_router_shed_total",
		"s3_router_retries_total",
		"s3_router_hedges_total",
		"s3_router_hedge_wins_total",
		"s3_router_breaker_trips_total",
		"s3_router_probes_total",
		"s3_router_partial_results_total",
		"s3_router_missing_shards_total",
		"s3_router_request_seconds",
		"s3_router_requests_total",
		"s3_router_backend_requests_total",
		"s3_router_backend_failures_total",
		"s3_router_backend_request_seconds",
		"s3_router_backend_health",
		"s3_router_breaker_state",
		"s3_router_backend_inflight_requests",
	} {
		if !bytes.Contains(raw, []byte(family)) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
}
