package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalPDFIntegratesToOne(t *testing.T) {
	// Trapezoid integration of the pdf over +-8 sigma.
	sum := 0.0
	const h = 0.001
	for x := -8.0; x < 8.0; x += h {
		sum += h * NormalPDF(x+h/2, 0, 1)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("pdf integral = %v", sum)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x, 0, 1); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := NormalCDF(30, 20, 5); math.Abs(got-NormalCDF(2, 0, 1)) > 1e-15 {
		t.Errorf("scaled cdf mismatch: %v", got)
	}
}

func TestNormalIntervalMass(t *testing.T) {
	if got := NormalIntervalMass(math.Inf(-1), math.Inf(1), 0, 1); got != 1 {
		t.Errorf("full mass = %v", got)
	}
	if got := NormalIntervalMass(-1, 1, 0, 1); math.Abs(got-0.6826894921370859) > 1e-12 {
		t.Errorf("one-sigma mass = %v", got)
	}
	if got := NormalIntervalMass(5, 3, 0, 1); got != 0 {
		t.Errorf("inverted interval = %v", got)
	}
}

func TestRegIncGammaPKnown(t *testing.T) {
	// P(1, x) = 1 - e^{-x}
	for _, x := range []float64{0.1, 0.5, 1, 2, 10} {
		want := 1 - math.Exp(-x)
		if got := RegIncGammaP(1, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(a, 0) = 0, monotone increasing in x, -> 1.
	if got := RegIncGammaP(3.5, 0); got != 0 {
		t.Errorf("P(a,0) = %v", got)
	}
	prev := 0.0
	for x := 0.1; x < 30; x += 0.1 {
		got := RegIncGammaP(3.5, x)
		if got < prev-1e-14 {
			t.Fatalf("P(3.5,·) not monotone at %v", x)
		}
		prev = got
	}
	if prev < 1-1e-9 {
		t.Errorf("P(3.5,30) = %v, should approach 1", prev)
	}
	// Chi-squared relation: P(k/2, x/2) is the chi2(k) cdf.
	// chi2(2) cdf at 5.991 ~= 0.95.
	if got := RegIncGammaP(1, 5.991/2); math.Abs(got-0.95) > 1e-3 {
		t.Errorf("chi2 quantile check: %v", got)
	}
}

func TestRadiusDistPDFIntegratesAndMatchesCDF(t *testing.T) {
	rd := RadiusDist{D: 20, Sigma: 18}
	sum := 0.0
	const h = 0.01
	for r := 0.0; r < 400; r += h {
		sum += h * rd.PDF(r+h/2)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Fatalf("radius pdf integral = %v", sum)
	}
	// CDF should match the integral of the pdf.
	partial := 0.0
	for r := 0.0; r < 80; r += h {
		partial += h * rd.PDF(r+h/2)
	}
	if got := rd.CDF(80); math.Abs(got-partial) > 1e-4 {
		t.Fatalf("CDF(80) = %v, integral = %v", got, partial)
	}
}

func TestRadiusQuantileInvertsCDF(t *testing.T) {
	rd := RadiusDist{D: 20, Sigma: 20}
	for _, p := range []float64{0.01, 0.3, 0.5, 0.8, 0.95, 0.999} {
		r := rd.Quantile(p)
		if got := rd.CDF(r); math.Abs(got-p) > 1e-8 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestRadiusQuantileMatchesPaperEpsilon(t *testing.T) {
	// Section V-B: with D=20, sigma=20, alpha=80% the paper sets
	// epsilon = 93.6 "so that both search methods are comparable". The
	// exact chi quantile is 100.07 (the paper's 93.6 matches sigma ~18.7,
	// a minor calibration inconsistency in the paper; see EXPERIMENTS.md),
	// so we only assert the same ballpark.
	rd := RadiusDist{D: 20, Sigma: 20}
	eps := rd.Quantile(0.80)
	if math.Abs(eps-93.6) > 8.0 {
		t.Fatalf("Quantile(0.80) = %v, paper uses 93.6", eps)
	}
}

func TestRadiusDistMonteCarlo(t *testing.T) {
	rd := RadiusDist{D: 12, Sigma: 7}
	r := rand.New(rand.NewSource(42))
	const n = 20000
	count := 0
	threshold := rd.Quantile(0.7)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < rd.D; j++ {
			g := r.NormFloat64() * rd.Sigma
			s += g * g
		}
		if math.Sqrt(s) <= threshold {
			count++
		}
	}
	got := float64(count) / n
	if math.Abs(got-0.7) > 0.02 {
		t.Fatalf("Monte-Carlo mass below quantile(0.7) = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	rd := RadiusDist{D: 4, Sigma: 1}
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) should panic", p)
				}
			}()
			rd.Quantile(p)
		}()
	}
}

func TestTukeyRho(t *testing.T) {
	const c = 4.0
	if got := TukeyRho(0, c); got != 0 {
		t.Errorf("rho(0) = %v", got)
	}
	sat := c * c / 6
	for _, u := range []float64{c, c + 1, 100, -c, -50} {
		if got := TukeyRho(u, c); got != sat {
			t.Errorf("rho(%v) = %v, want saturation %v", u, got, sat)
		}
	}
	// Non-decreasing in |u| and symmetric.
	prev := -1.0
	for u := 0.0; u <= c+2; u += 0.01 {
		got := TukeyRho(u, c)
		if got < prev-1e-12 {
			t.Fatalf("rho not non-decreasing at %v", u)
		}
		if math.Abs(got-TukeyRho(-u, c)) > 1e-15 {
			t.Fatalf("rho not symmetric at %v", u)
		}
		prev = got
	}
}

func TestTukeyWeight(t *testing.T) {
	const c = 3.0
	if TukeyWeight(0, c) != 1 {
		t.Errorf("w(0) != 1")
	}
	if TukeyWeight(c, c) != 0 || TukeyWeight(10, c) != 0 {
		t.Errorf("w beyond c != 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	for i := range h.Counts {
		if h.Counts[i] != 10 {
			t.Fatalf("bin %d = %d", i, h.Counts[i])
		}
	}
	// Density integrates to one.
	sum := 0.0
	for i := range h.Counts {
		sum += h.Density(i) * h.BinWidth()
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("density integral = %v", sum)
	}
	// Clamping.
	h2 := NewHistogram(0, 1, 4)
	h2.Add(-5)
	h2.Add(99)
	if h2.Counts[0] != 1 || h2.Counts[3] != 1 {
		t.Fatalf("clamping failed: %v", h2.Counts)
	}
	if h2.BinCenter(0) != 0.125 {
		t.Fatalf("BinCenter = %v", h2.BinCenter(0))
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 0, 10)
}

func TestMoments(t *testing.T) {
	var m Moments
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N() != 8 || math.Abs(m.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v n = %d", m.Mean(), m.N())
	}
	// Unbiased variance of that classic sample is 32/7.
	if math.Abs(m.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("var = %v", m.Var())
	}
	var empty Moments
	if empty.Var() != 0 || empty.Mean() != 0 {
		t.Fatalf("empty moments nonzero")
	}
}

func TestMedianMAD(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("median even = %v", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Errorf("median empty not NaN")
	}
	// MAD of normal data approximates sigma.
	r := rand.New(rand.NewSource(5))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = 10 + 3*r.NormFloat64()
	}
	if got := MAD(xs); math.Abs(got-3) > 0.2 {
		t.Errorf("MAD of N(10,3) data = %v", got)
	}
}

func TestQuickNormalSymmetry(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 50)
		return math.Abs(NormalCDF(x, 0, 1)+NormalCDF(-x, 0, 1)-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
