package stat

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a fixed-bin histogram over [Min, Max). Out-of-range samples
// are clamped into the edge bins so tails remain visible.
type Histogram struct {
	Min, Max float64
	Counts   []uint64
	N        uint64
}

// NewHistogram returns a histogram with bins equal-width bins over
// [min, max). It panics when bins < 1 or max <= min.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins < 1 || max <= min {
		panic(fmt.Sprintf("stat: bad histogram config [%v,%v) bins=%d", min, max, bins))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]uint64, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.Counts)) * (x - h.Min) / (h.Max - h.Min))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.N++
}

// BinWidth returns the width of one bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Max - h.Min) / float64(len(h.Counts))
}

// BinCenter returns the center abscissa of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Min + (float64(i)+0.5)*h.BinWidth()
}

// Density returns the empirical pdf value of bin i (integrates to 1 over
// the histogram range). Zero when the histogram is empty.
func (h *Histogram) Density(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / (float64(h.N) * h.BinWidth())
}

// Moments accumulates streaming mean and variance (Welford).
type Moments struct {
	n    uint64
	mean float64
	m2   float64
}

// Add records one sample.
func (m *Moments) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the sample count.
func (m *Moments) N() uint64 { return m.n }

// Mean returns the sample mean (0 when empty).
func (m *Moments) Mean() float64 { return m.mean }

// Var returns the unbiased sample variance (0 when n < 2).
func (m *Moments) Var() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Var()) }

// Median returns the median of xs, averaging the middle pair for even
// lengths. It sorts a copy; xs is left untouched. NaN when empty.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return 0.5 * (s[n/2-1] + s[n/2])
}

// MAD returns the median absolute deviation of xs about its median,
// scaled by 1.4826 to be a consistent estimator of the standard deviation
// for normal data. NaN when empty.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return 1.4826 * Median(dev)
}
