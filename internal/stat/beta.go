package stat

import (
	"fmt"
	"math"
)

// RegIncBeta computes the regularized incomplete beta function
// I_x(a, b) for a, b > 0 and x in [0, 1], via the continued fraction
// expansion (Numerical Recipes §6.4). It underlies the Student-t
// distribution used by the heavy-tailed distortion model.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case a <= 0 || b <= 0:
		panic(fmt.Sprintf("stat: RegIncBeta a=%v b=%v must be > 0", a, b))
	case x < 0 || x > 1:
		panic(fmt.Sprintf("stat: RegIncBeta x=%v outside [0,1]", x))
	case x == 0:
		return 0
	case x == 1:
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-15
		tiny    = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// StudentTCDF returns P(T <= x) for a Student-t variable with nu degrees
// of freedom (nu > 0).
func StudentTCDF(x, nu float64) float64 {
	if nu <= 0 {
		panic(fmt.Sprintf("stat: StudentTCDF nu=%v must be > 0", nu))
	}
	if x == 0 {
		return 0.5
	}
	p := 0.5 * RegIncBeta(nu/2, 0.5, nu/(nu+x*x))
	if x > 0 {
		return 1 - p
	}
	return p
}

// LaplaceCDF returns P(X <= x) for a zero-mean Laplace variable with
// scale b > 0 (variance 2b²).
func LaplaceCDF(x, b float64) float64 {
	if b <= 0 {
		panic(fmt.Sprintf("stat: LaplaceCDF scale b=%v must be > 0", b))
	}
	if x < 0 {
		return 0.5 * math.Exp(x/b)
	}
	return 1 - 0.5*math.Exp(-x/b)
}

// LaplaceIntervalMass returns P(lo <= X < hi) for a zero-mean Laplace
// variable with scale b. lo may be -Inf and hi may be +Inf.
func LaplaceIntervalMass(lo, hi, b float64) float64 {
	var cl, ch float64
	if math.IsInf(lo, -1) {
		cl = 0
	} else {
		cl = LaplaceCDF(lo, b)
	}
	if math.IsInf(hi, 1) {
		ch = 1
	} else {
		ch = LaplaceCDF(hi, b)
	}
	if ch < cl {
		return 0
	}
	return ch - cl
}

// StudentTIntervalMass returns P(lo <= X < hi) for a scaled Student-t
// variable: X = scale * T(nu). lo may be -Inf and hi may be +Inf.
func StudentTIntervalMass(lo, hi, scale, nu float64) float64 {
	if scale <= 0 {
		panic(fmt.Sprintf("stat: StudentT scale %v must be > 0", scale))
	}
	var cl, ch float64
	if math.IsInf(lo, -1) {
		cl = 0
	} else {
		cl = StudentTCDF(lo/scale, nu)
	}
	if math.IsInf(hi, 1) {
		ch = 1
	} else {
		ch = StudentTCDF(hi/scale, nu)
	}
	if ch < cl {
		return 0
	}
	return ch - cl
}
