package experiments

import (
	"fmt"
	"io"

	"s3cbcd/internal/core"
	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/store"
)

func init() {
	register(Experiment{
		ID: "knn",
		Title: "Extension (§V-C argument): k-NN vs statistical query as the database " +
			"grows — k-NN loses relevant fingerprints with density, the statistical " +
			"query keeps its expectation",
		Run: runKNN,
	})
}

// runKNN substantiates the paper's claim that k-NN search is inappropriate
// for copy detection: as the database densifies, a fixed-k answer gets
// crowded out by near-duplicates, while the statistical query retrieves
// the same expectation regardless of size.
func runKNN(w io.Writer, sc Scale, seed int64) error {
	sizes := []int{5000, 20000, 80000}
	nq := 200
	if sc == Full {
		sizes = []int{10000, 40000, 160000, 640000}
		nq = 500
	}
	const sigma = 18.0
	const alpha = 0.80
	const k = 20
	sq := core.StatQuery{Alpha: alpha, Model: core.IsoNormal{D: fingerprint.D, Sigma: sigma}}

	fmt.Fprintf(w, "# k-NN (k=%d, exact) vs probabilistic k-NN (conf=80%%) vs statistical query\n", k)
	fmt.Fprintf(w, "# (alpha=%.0f%%): retrieval rate of the distorted query's source fingerprint,\n", alpha*100)
	fmt.Fprintf(w, "# %d queries, sigma_Q=%.0f\n", nq, sigma)
	fmt.Fprintf(w, "%10s %10s %10s %12s %14s %14s\n", "dbSize", "knnRate", "probRate", "statRate", "knnScanned", "statMatches")
	for _, size := range sizes {
		curve, err := hilbert.New(fingerprint.D, 8)
		if err != nil {
			return err
		}
		db, err := store.Build(curve, FPCorpus(size, seed))
		if err != nil {
			return err
		}
		ix, err := core.NewIndex(db, 0)
		if err != nil {
			return err
		}
		queries, src := DistortedQueries(db, nq, sigma, seed^int64(size))
		knnHits, probHits, statHits := 0, 0, 0
		knnScanned, statMatches := 0, 0
		model := core.IsoNormal{D: fingerprint.D, Sigma: sigma}
		for qi, q := range queries {
			km, kstats, err := ix.SearchKNN(q, k, 0)
			if err != nil {
				return err
			}
			knnScanned += kstats.Scanned
			for _, m := range km {
				if m.Pos == src[qi] {
					knnHits++
					break
				}
			}
			pm, _, err := ix.SearchKNNProb(q, k, alpha, model)
			if err != nil {
				return err
			}
			for _, m := range pm {
				if m.Pos == src[qi] {
					probHits++
					break
				}
			}
			sm, _, err := ix.SearchStat(q, sq)
			if err != nil {
				return err
			}
			statMatches += len(sm)
			for _, m := range sm {
				if m.Pos == src[qi] {
					statHits++
					break
				}
			}
		}
		fmt.Fprintf(w, "%10d %9.1f%% %9.1f%% %11.1f%% %14.1f %14.1f\n",
			size,
			100*float64(knnHits)/float64(nq),
			100*float64(probHits)/float64(nq),
			100*float64(statHits)/float64(nq),
			float64(knnScanned)/float64(nq),
			float64(statMatches)/float64(nq))
	}
	fmt.Fprintf(w, "# Expected shape: the k-NN rate decreases as near-duplicates crowd the\n")
	fmt.Fprintf(w, "# fixed-size answer; the statistical rate stays at ~alpha at every size.\n")
	return nil
}
