package core

// The paper's conclusion calls for "investigations in the statistical
// modeling of the distortion vector": the practical system uses a
// single-σ normal, but real distortions are heavier-tailed (a tight core
// of well-matched points plus a fraction of badly disturbed ones). This
// file provides the alternative per-component models the model ablation
// (cmd/s3bench -exp models) compares; all keep the independence
// assumption the index requires.

import (
	"fmt"
	"math"
	"sort"

	"s3cbcd/internal/stat"
)

// IsoLaplace is a zero-mean Laplace model with the same scale for every
// component, matched to a target standard deviation (b = σ/√2). Its
// heavier tails absorb distortion outliers the normal model misses.
type IsoLaplace struct {
	D     int
	Sigma float64 // component standard deviation; scale b = Sigma/sqrt(2)
}

// Dims implements Model.
func (m IsoLaplace) Dims() int { return m.D }

// ComponentMass implements Model.
func (m IsoLaplace) ComponentMass(_ int, lo, hi float64) float64 {
	return stat.LaplaceIntervalMass(lo, hi, m.Sigma/math.Sqrt2)
}

// IsoStudentT is a zero-mean scaled Student-t model with Nu degrees of
// freedom. For Nu > 2 the scale is matched so the component standard
// deviation equals Sigma (scale = σ·√((ν−2)/ν)).
type IsoStudentT struct {
	D     int
	Sigma float64
	Nu    float64
}

// Dims implements Model.
func (m IsoStudentT) Dims() int { return m.D }

// ComponentMass implements Model.
func (m IsoStudentT) ComponentMass(_ int, lo, hi float64) float64 {
	scale := m.Sigma
	if m.Nu > 2 {
		scale = m.Sigma * math.Sqrt((m.Nu-2)/m.Nu)
	}
	return stat.StudentTIntervalMass(lo, hi, scale, m.Nu)
}

// MixtureNormal is a two-component zero-mean normal mixture shared by
// every dimension: a tight core N(0, SigmaCore) with weight W and a wide
// outlier component N(0, SigmaWide) with weight 1-W. It captures the
// core-plus-outliers structure of measured fingerprint distortions.
type MixtureNormal struct {
	D                    int
	W                    float64 // core weight in (0, 1)
	SigmaCore, SigmaWide float64
}

// Dims implements Model.
func (m MixtureNormal) Dims() int { return m.D }

// ComponentMass implements Model.
func (m MixtureNormal) ComponentMass(_ int, lo, hi float64) float64 {
	return m.W*stat.NormalIntervalMass(lo, hi, 0, m.SigmaCore) +
		(1-m.W)*stat.NormalIntervalMass(lo, hi, 0, m.SigmaWide)
}

// FitMixtureNormal fits the two-component mixture to pooled per-component
// distortion samples by expectation-maximization on zero-mean normals.
// It returns an error when fewer than 10 samples are provided or the fit
// degenerates.
func FitMixtureNormal(dims int, samples []float64) (MixtureNormal, error) {
	if len(samples) < 10 {
		return MixtureNormal{}, fmt.Errorf("core: %d samples are too few to fit a mixture", len(samples))
	}
	// Initialize from robust quantiles: core scale from the interquartile
	// range, wide scale from the tails.
	abs := make([]float64, len(samples))
	for i, s := range samples {
		abs[i] = math.Abs(s)
	}
	sort.Float64s(abs)
	sCore := abs[len(abs)/2] / 0.6745 // MAD -> sigma for normal data
	sWide := abs[len(abs)*95/100]
	if sCore <= 0 {
		sCore = 1e-3
	}
	if sWide <= sCore {
		sWide = 3 * sCore
	}
	w := 0.8
	for iter := 0; iter < 100; iter++ {
		var sw, swx2Core, swx2Wide, sCoreW float64
		for _, x := range samples {
			pc := w * stat.NormalPDF(x, 0, sCore)
			pw := (1 - w) * stat.NormalPDF(x, 0, sWide)
			r := 0.5
			if pc+pw > 0 {
				r = pc / (pc + pw)
			}
			sw += r
			swx2Core += r * x * x
			swx2Wide += (1 - r) * x * x
			sCoreW += 1 - r
		}
		newW := sw / float64(len(samples))
		newCore := math.Sqrt(swx2Core / math.Max(sw, 1e-9))
		newWide := math.Sqrt(swx2Wide / math.Max(sCoreW, 1e-9))
		if newCore <= 0 || newWide <= 0 || math.IsNaN(newCore) || math.IsNaN(newWide) {
			return MixtureNormal{}, fmt.Errorf("core: mixture fit degenerated at iteration %d", iter)
		}
		done := math.Abs(newW-w) < 1e-6 &&
			math.Abs(newCore-sCore) < 1e-6 && math.Abs(newWide-sWide) < 1e-6
		w, sCore, sWide = newW, newCore, newWide
		if done {
			break
		}
	}
	if w < 0.01 {
		w = 0.01
	}
	if w > 0.99 {
		w = 0.99
	}
	if sWide < sCore {
		sCore, sWide = sWide, sCore
		w = 1 - w
	}
	return MixtureNormal{D: dims, W: w, SigmaCore: sCore, SigmaWide: sWide}, nil
}

// Empirical is a nonparametric per-component model: a smoothed CDF of the
// measured distortion samples, shared by every component (samples are
// pooled). It makes no shape assumption at all beyond independence.
type Empirical struct {
	D int
	// sorted holds the pooled samples in ascending order.
	sorted []float64
	// bw is the smoothing bandwidth applied as a normal kernel on the
	// empirical CDF.
	bw float64
}

// FitEmpirical builds an Empirical model from pooled per-component
// distortion samples. A minimum of 20 samples is required.
func FitEmpirical(dims int, samples []float64) (Empirical, error) {
	if len(samples) < 20 {
		return Empirical{}, fmt.Errorf("core: %d samples are too few for an empirical model", len(samples))
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	// Silverman-style bandwidth on a robust scale estimate.
	scale := stat.MAD(s)
	if scale <= 0 || math.IsNaN(scale) {
		scale = 1
	}
	bw := 1.06 * scale * math.Pow(float64(len(s)), -0.2)
	if bw <= 0 {
		bw = 1
	}
	return Empirical{D: dims, sorted: s, bw: bw}, nil
}

// Dims implements Model.
func (m Empirical) Dims() int { return m.D }

// CDF evaluates the kernel-smoothed empirical CDF at x.
func (m Empirical) CDF(x float64) float64 {
	if math.IsInf(x, -1) {
		return 0
	}
	if math.IsInf(x, 1) {
		return 1
	}
	// The raw empirical CDF changes only at sample points; the kernel
	// smoothing is equivalent to averaging Φ((x-s_i)/bw). Only samples
	// within ±8 bandwidths of x contribute anything a float64 can see:
	// beyond that the kernel term is within 6e-16 of 0 or 1. Two binary
	// searches find the live window, samples below it count as exactly 1,
	// and the kernel is evaluated only inside — O(log n + window) instead
	// of O(n), which matters now that the frontier planner makes the CDF
	// the dominant per-node cost of empirical-model descents.
	lo := sort.SearchFloat64s(m.sorted, x-8*m.bw)
	hi := sort.SearchFloat64s(m.sorted, x+8*m.bw)
	sum := float64(lo)
	for _, s := range m.sorted[lo:hi] {
		sum += stat.NormalCDF(x, s, m.bw)
	}
	return sum / float64(len(m.sorted))
}

// ComponentMass implements Model.
func (m Empirical) ComponentMass(_ int, lo, hi float64) float64 {
	cl := m.CDF(lo)
	ch := m.CDF(hi)
	if ch < cl {
		return 0
	}
	return ch - cl
}
