package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The segment manifest is the durable root of a live (segmented) index: a
// small file naming the immutable segment files that make up one
// committed snapshot, each with its record count and the set of video
// identifiers tombstoned out of it.
//
// Commits are crash-safe by construction:
//
//  1. new segment files are written under fresh, never-reused names;
//  2. the manifest for generation g is written to MANIFEST-<g>.tmp,
//     fsynced, and renamed to MANIFEST-<g> (the atomic commit point);
//  3. manifests older than the immediate predecessor are pruned.
//
// Recovery scans MANIFEST-* files from the highest generation down and
// adopts the first one that decodes, passes its CRC and satisfies the
// caller's validation (typically: every referenced segment file opens
// with the expected geometry and count). A crash at any byte of step 2
// therefore leaves the previous committed snapshot recoverable: the torn
// file either fails the scan or was never renamed into place.
//
// Manifest format (all integers little-endian):
//
//	magic    [4]byte "S3LM"
//	version  uint32 (1)
//	gen      uint64
//	dims     uint32
//	order    uint32
//	segments uint32
//	per segment:
//	  nameLen   uint16, name bytes (base name, no path separators)
//	  count     uint64
//	  tombCount uint32, tombCount × uint32 sorted video ids
//	crc32    uint32 (IEEE, over everything before it)

var manifestMagic = [4]byte{'S', '3', 'L', 'M'}

const manifestVersion = 1

// Decode guards: a torn or hostile manifest must not drive allocations.
const (
	maxManifestSegments   = 1 << 16
	maxManifestName       = 255
	maxManifestTombstones = 1 << 24
)

// SegmentInfo describes one immutable segment of a committed snapshot.
type SegmentInfo struct {
	// Name is the segment file's base name within the manifest directory.
	Name string
	// Count is the segment's record count, validated on open.
	Count int
	// Tombstones are the video identifiers masked out of this segment,
	// sorted ascending.
	Tombstones []uint32
}

// SegmentManifest is one committed snapshot of a live index.
type SegmentManifest struct {
	// Gen is the commit generation; commits are strictly increasing.
	Gen uint64
	// Dims and Order pin the curve geometry every segment must match.
	Dims, Order int
	// Segments lists the snapshot's immutable segments, oldest first.
	Segments []SegmentInfo
}

// EncodeManifest serializes m, CRC included.
func EncodeManifest(m *SegmentManifest) []byte {
	var buf []byte
	buf = append(buf, manifestMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, manifestVersion)
	buf = binary.LittleEndian.AppendUint64(buf, m.Gen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Dims))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Order))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Segments)))
	for _, s := range m.Segments {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s.Name)))
		buf = append(buf, s.Name...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Count))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Tombstones)))
		for _, id := range s.Tombstones {
			buf = binary.LittleEndian.AppendUint32(buf, id)
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// DecodeManifest parses and validates a manifest blob. It never panics on
// arbitrary input; any structural violation, trailing garbage or CRC
// mismatch is an error.
func DecodeManifest(data []byte) (*SegmentManifest, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("store: manifest shorter than its checksum")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("store: manifest checksum mismatch")
	}
	pos := 0
	need := func(n int) ([]byte, error) {
		if len(body)-pos < n {
			return nil, fmt.Errorf("store: manifest truncated at byte %d", pos)
		}
		b := body[pos : pos+n]
		pos += n
		return b, nil
	}
	hdr, err := need(4 + 4 + 8 + 4 + 4 + 4)
	if err != nil {
		return nil, err
	}
	if [4]byte(hdr[0:4]) != manifestMagic {
		return nil, fmt.Errorf("store: not a segment manifest")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != manifestVersion {
		return nil, fmt.Errorf("store: unsupported manifest version %d", v)
	}
	m := &SegmentManifest{
		Gen:   binary.LittleEndian.Uint64(hdr[8:]),
		Dims:  int(binary.LittleEndian.Uint32(hdr[16:])),
		Order: int(binary.LittleEndian.Uint32(hdr[20:])),
	}
	if m.Dims < 1 || m.Order < 1 {
		return nil, fmt.Errorf("store: manifest geometry D=%d K=%d invalid", m.Dims, m.Order)
	}
	nSegs := int(binary.LittleEndian.Uint32(hdr[24:]))
	if nSegs > maxManifestSegments {
		return nil, fmt.Errorf("store: manifest claims %d segments", nSegs)
	}
	if nSegs > 0 {
		m.Segments = make([]SegmentInfo, 0, nSegs)
	}
	for i := 0; i < nSegs; i++ {
		nb, err := need(2)
		if err != nil {
			return nil, err
		}
		nameLen := int(binary.LittleEndian.Uint16(nb))
		if nameLen == 0 || nameLen > maxManifestName {
			return nil, fmt.Errorf("store: manifest segment %d name length %d", i, nameLen)
		}
		nameB, err := need(nameLen)
		if err != nil {
			return nil, err
		}
		name := string(nameB)
		if name != filepath.Base(name) || strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
			return nil, fmt.Errorf("store: manifest segment %d has unsafe name %q", i, name)
		}
		cb, err := need(8 + 4)
		if err != nil {
			return nil, err
		}
		count := binary.LittleEndian.Uint64(cb)
		if count > 1<<48 {
			return nil, fmt.Errorf("store: manifest segment %d claims %d records", i, count)
		}
		nTombs := int(binary.LittleEndian.Uint32(cb[8:]))
		if nTombs > maxManifestTombstones {
			return nil, fmt.Errorf("store: manifest segment %d claims %d tombstones", i, nTombs)
		}
		tb, err := need(4 * nTombs)
		if err != nil {
			return nil, err
		}
		var tombs []uint32
		for t := 0; t < nTombs; t++ {
			id := binary.LittleEndian.Uint32(tb[4*t:])
			if t > 0 && id <= tombs[t-1] {
				return nil, fmt.Errorf("store: manifest segment %d tombstones not strictly sorted", i)
			}
			tombs = append(tombs, id)
		}
		m.Segments = append(m.Segments, SegmentInfo{Name: name, Count: int(count), Tombstones: tombs})
	}
	if pos != len(body) {
		return nil, fmt.Errorf("store: %d trailing manifest bytes", len(body)-pos)
	}
	return m, nil
}

// ManifestName returns the file name of the manifest for generation gen.
func ManifestName(gen uint64) string {
	return fmt.Sprintf("MANIFEST-%016x", gen)
}

// parseManifestName extracts the generation from a manifest file name.
func parseManifestName(name string) (uint64, bool) {
	const prefix = "MANIFEST-"
	if !strings.HasPrefix(name, prefix) || strings.HasSuffix(name, ".tmp") {
		return 0, false
	}
	gen, err := strconv.ParseUint(name[len(prefix):], 16, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// CommitManifest durably writes m into dir: temp file, fsync, atomic
// rename to MANIFEST-<gen>, directory fsync, then best-effort pruning of
// every manifest older than the immediate predecessor (the predecessor is
// kept as the recovery fallback against a torn newest file).
//
// The directory is also fsynced before the rename, so the directory
// entries of segment files written for this commit are durable no later
// than the manifest that references them. Callers must have fsynced the
// segment data itself (WriteFile does). Either directory fsync failing
// fails the commit: a rename whose durability is unconfirmed must not be
// reported as committed, or a power loss could silently lose it.
func CommitManifest(dir string, m *SegmentManifest) error {
	return CommitManifestFS(OSFS, dir, m)
}

// CommitManifestFS is CommitManifest through an explicit filesystem seam.
func CommitManifestFS(fsys FS, dir string, m *SegmentManifest) error {
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("store: syncing %s before manifest commit: %w", dir, err)
	}
	path := filepath.Join(dir, ManifestName(m.Gen))
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	// A failed commit removes its temp file (best-effort): recovery
	// ignores .tmp files anyway, but a retrying caller would otherwise
	// strand one orphan per failed generation.
	if _, err := f.Write(EncodeManifest(m)); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("store: syncing %s after manifest rename: %w", dir, err)
	}
	pruneManifests(fsys, dir, m.Gen)
	return nil
}

// SegmentFileName returns the canonical segment file name for allocation
// sequence number seq. Names are never reused within a live index.
func SegmentFileName(seq uint64) string {
	return fmt.Sprintf("seg-%016x.s3db", seq)
}

// ParseSegmentFileName extracts the allocation sequence number from a
// canonical segment file name.
func ParseSegmentFileName(name string) (uint64, bool) {
	const prefix, suffix = "seg-", ".s3db"
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// MaxSegmentFileSeq returns the largest allocation sequence number among
// canonical segment file names present in dir (0 when there are none), so
// a reopening index can seed its allocator past every file ever written —
// including orphans from a crashed, uncommitted write.
func MaxSegmentFileSeq(dir string) uint64 { return MaxSegmentFileSeqFS(OSFS, dir) }

// MaxSegmentFileSeqFS is MaxSegmentFileSeq through an explicit seam.
func MaxSegmentFileSeqFS(fsys FS, dir string) uint64 {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return 0
	}
	var max uint64
	for _, e := range ents {
		if seq, ok := ParseSegmentFileName(e.Name()); ok && seq > max {
			max = seq
		}
	}
	return max
}

// GCSegmentFiles removes canonical segment files in dir that no manifest
// present in dir references and protect (when non-nil) does not claim.
// It is the deferred counterpart of compaction's file cleanup: superseded
// segments stay on disk as long as the retained predecessor manifest —
// the recovery fallback against a torn newest commit — still references
// them, and are collected at a later commit once pruning has dropped that
// manifest.
//
// Conservative by construction: if any manifest present fails to decode,
// its references are unknown and nothing is removed. Removal is
// best-effort; the removed names are returned.
func GCSegmentFiles(dir string, protect func(name string) bool) []string {
	return GCSegmentFilesFS(OSFS, dir, protect)
}

// GCSegmentFilesFS is GCSegmentFiles through an explicit seam.
func GCSegmentFilesFS(fsys FS, dir string, protect func(name string) bool) []string {
	referenced := make(map[string]struct{})
	for _, gen := range listManifestGens(fsys, dir) {
		data, err := fsReadFile(fsys, filepath.Join(dir, ManifestName(gen)))
		if err != nil {
			return nil
		}
		m, err := DecodeManifest(data)
		if err != nil {
			return nil
		}
		for _, s := range m.Segments {
			referenced[s.Name] = struct{}{}
		}
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil
	}
	var removed []string
	for _, e := range ents {
		name := e.Name()
		if _, ok := ParseSegmentFileName(name); !ok {
			continue
		}
		if _, ok := referenced[name]; ok {
			continue
		}
		if protect != nil && protect(name) {
			continue
		}
		if fsys.Remove(filepath.Join(dir, name)) == nil {
			removed = append(removed, name)
		}
	}
	return removed
}

// pruneManifests removes manifests older than the predecessor of gen.
func pruneManifests(fsys FS, dir string, gen uint64) {
	gens := listManifestGens(fsys, dir)
	var prev uint64
	hasPrev := false
	for _, g := range gens {
		if g < gen && (!hasPrev || g > prev) {
			prev, hasPrev = g, true
		}
	}
	for _, g := range gens {
		if g < gen && (!hasPrev || g != prev) {
			fsys.Remove(filepath.Join(dir, ManifestName(g)))
		}
	}
}

// listManifestGens returns the generations of all manifests present.
func listManifestGens(fsys FS, dir string) []uint64 {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, e := range ents {
		if g, ok := parseManifestName(e.Name()); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens
}

// RecoverManifest returns the newest committed manifest in dir that
// decodes cleanly and passes validate (nil validate accepts any decodable
// manifest). Torn or invalid newer manifests are skipped, so a crash
// mid-commit recovers the previous committed snapshot. It returns
// (nil, nil) when dir holds no manifest at all — a fresh index.
func RecoverManifest(dir string, validate func(*SegmentManifest) error) (*SegmentManifest, error) {
	return RecoverManifestFS(OSFS, dir, validate)
}

// RecoverManifestFS is RecoverManifest through an explicit seam.
func RecoverManifestFS(fsys FS, dir string, validate func(*SegmentManifest) error) (*SegmentManifest, error) {
	gens := listManifestGens(fsys, dir)
	var firstErr error
	for i := len(gens) - 1; i >= 0; i-- {
		path := filepath.Join(dir, ManifestName(gens[i]))
		data, err := fsReadFile(fsys, path)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		m, err := DecodeManifest(data)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", path, err)
			}
			continue
		}
		if m.Gen != gens[i] {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: embedded generation %d disagrees with name", path, m.Gen)
			}
			continue
		}
		if validate != nil {
			if err := validate(m); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%s: %w", path, err)
				}
				continue
			}
		}
		return m, nil
	}
	if len(gens) == 0 {
		return nil, nil
	}
	return nil, fmt.Errorf("store: no usable manifest in %s: %w", dir, firstErr)
}
