// Package s3 is the public API of the Statistical Similarity Search (S³)
// library, a from-scratch reproduction of
//
//	Joly, Buisson, Frélicot — "Statistical similarity search applied to
//	content-based video copy detection", ICDE 2005.
//
// Two levels of API are exposed:
//
//   - The index level: BuildIndex / OpenIndex give a Hilbert-curve ordered
//     fingerprint index answering *statistical queries* — approximate
//     searches that retrieve a region holding probability mass >= α under
//     a distortion model — and exact ε-range queries for comparison.
//     OpenDiskIndex runs batched statistical queries against databases
//     larger than memory (the paper's pseudo-disk strategy).
//
//   - The CBCD level: NewVideoIndexer / NewDetector / NewMonitor assemble
//     the complete content-based video copy detection system (local
//     fingerprints + statistical search + temporal voting).
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction of every table and figure of the paper.
package s3

import (
	"context"
	"fmt"

	"s3cbcd/internal/cbcd"
	"s3cbcd/internal/core"
	"s3cbcd/internal/distortion"
	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/scan"
	"s3cbcd/internal/stat"
	"s3cbcd/internal/store"
	"s3cbcd/internal/vidsim"
	"s3cbcd/internal/vote"
)

// FingerprintDims is the dimension of the paper's video fingerprints.
const FingerprintDims = fingerprint.D

// Core index types.
type (
	// Record is one referenced fingerprint with its video identifier and
	// time code.
	Record = store.Record
	// Match is one query result.
	Match = core.Match
	// Plan is the outcome of a filtering step (selected curve intervals
	// plus diagnostics).
	Plan = core.Plan
	// StatQuery parameterizes a statistical query: expectation α and a
	// distortion model.
	StatQuery = core.StatQuery
	// Model is the distortion model interface (independent components).
	Model = core.Model
	// IsoNormal is the single-σ zero-mean normal model the paper uses in
	// practice.
	IsoNormal = core.IsoNormal
	// DiagNormal is the per-component-σ zero-mean normal model.
	DiagNormal = core.DiagNormal
	// DepthTiming is one entry of a partition-depth sweep (T(p) = T_f+T_r).
	DepthTiming = core.DepthTiming
	// BatchStats reports a pseudo-disk batch execution.
	BatchStats = core.BatchStats
	// AutoTuneOptions enables online re-fitting of the paper's cost model
	// T(p) from observed plan/refine timings (see core.AutoTuneOptions).
	AutoTuneOptions = core.AutoTuneOptions
	// PlanCacheStats reports plan-cache effectiveness counters.
	PlanCacheStats = core.PlanCacheStats
	// AutoTuneStats reports the auto-tuner's current parameters.
	AutoTuneStats = core.AutoTuneStats
)

// CBCD system types.
type (
	// CBCDConfig parameterizes the complete copy-detection system.
	CBCDConfig = cbcd.Config
	// Indexer accumulates reference material and builds a Detector.
	Indexer = cbcd.Indexer
	// Detector identifies which referenced sequences a clip copies.
	Detector = cbcd.Detector
	// Monitor applies a Detector continuously to a stream.
	Monitor = cbcd.Monitor
	// StreamMonitor is the incremental (feed-as-you-capture) monitor.
	StreamMonitor = cbcd.StreamMonitor
	// StreamDetection is a Monitor detection localized in the stream.
	StreamDetection = cbcd.StreamDetection
	// Detection is one identifier that passed the vote.
	Detection = vote.Detection
	// VoteConfig parameterizes the temporal voting strategy.
	VoteConfig = vote.Config
	// ExtractConfig parameterizes fingerprint extraction.
	ExtractConfig = fingerprint.Config
	// Fingerprint is the 20-byte local descriptor.
	Fingerprint = fingerprint.Fingerprint
	// Local is one extracted fingerprint with its position and time code.
	Local = fingerprint.Local
	// Video is a frame sequence.
	Video = vidsim.Sequence
	// Frame is a grayscale image.
	Frame = vidsim.Frame
	// Transform is a video alteration a copy may have undergone.
	Transform = vidsim.Transform
	// DistortionEstimate is a fitted distortion model for one transform.
	DistortionEstimate = distortion.Estimate
)

// IndexOptions tunes BuildIndex.
type IndexOptions struct {
	// Order is the number of bits per fingerprint component (grid side
	// 2^Order). Default 8, matching byte-quantized fingerprints.
	Order int
	// Depth is the curve partition depth p; 0 selects a heuristic that
	// Index.Tune can refine.
	Depth int
	// Shards is the number of contiguous Hilbert key-range shards the
	// query engine splits the index into; plans computed against the
	// global curve are refined concurrently across shards. 0 or 1 keeps
	// the monolithic layout. Results are identical at any shard count.
	Shards int
	// Workers bounds the engine's concurrency (shard refinement and batch
	// fan-out). 0 selects GOMAXPROCS; 1 is fully sequential.
	Workers int
	// PlanCache enables the engine's bounded plan cache: repeated or
	// near-identical queries reuse the filtering step's Plan instead of
	// recomputing it. Answers are identical with or without the cache.
	PlanCache bool
	// PlanCacheEntries bounds the cache; 0 selects the default (4096).
	PlanCacheEntries int
	// AutoTune enables online cost-model re-fitting (T(p) from observed
	// plan/refine timings) that adapts the planner's parameters under load.
	AutoTune AutoTuneOptions
}

// Index is the in-memory S³ index. Queries execute through a sharded
// query engine (see IndexOptions.Shards); with the default options the
// engine degenerates to the sequential single-shard path.
type Index struct {
	ix  *core.Index
	db  *store.DB
	eng *core.Engine
}

// newIndex wraps a built database in the facade with its query engine.
func newIndex(db *store.DB, opt IndexOptions) (*Index, error) {
	ix, err := core.NewIndex(db, opt.Depth)
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(ix, opt.Shards, opt.Workers)
	applyEngineOptions(eng, opt)
	return &Index{ix: ix, db: db, eng: eng}, nil
}

// applyEngineOptions enables the optional plan cache and auto-tuner on a
// freshly constructed engine, before it serves any query.
func applyEngineOptions(eng *core.Engine, opt IndexOptions) {
	if opt.PlanCache {
		eng.EnablePlanCache(opt.PlanCacheEntries)
	}
	if opt.AutoTune.Enabled {
		eng.EnableAutoTune(opt.AutoTune)
	}
}

// BuildIndex sorts the records along the Hilbert curve and returns the
// static index. All records must have dims components below 2^Order.
func BuildIndex(dims int, recs []Record, opt IndexOptions) (*Index, error) {
	if opt.Order == 0 {
		opt.Order = 8
	}
	curve, err := hilbert.New(dims, opt.Order)
	if err != nil {
		return nil, err
	}
	db, err := store.Build(curve, recs)
	if err != nil {
		return nil, err
	}
	return newIndex(db, opt)
}

// OpenIndex loads a database file written by Save entirely into memory.
// Files carrying a shard manifest (format v3) reopen with that shard
// layout; v1/v2 files open monolithic.
func OpenIndex(path string, depth int) (*Index, error) {
	return OpenIndexOptions(path, IndexOptions{Depth: depth})
}

// OpenIndexOptions is OpenIndex with full engine options. When
// opt.Shards is 0 and the file stores a shard manifest, the manifest's
// layout is used; an explicit opt.Shards recomputes the partition.
func OpenIndexOptions(path string, opt IndexOptions) (*Index, error) {
	fl, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	defer fl.Close()
	db, err := fl.LoadAll()
	if err != nil {
		return nil, err
	}
	ix, err := core.NewIndex(db, opt.Depth)
	if err != nil {
		return nil, err
	}
	if starts := fl.ShardStarts(); starts != nil && opt.Shards == 0 {
		ranges, err := db.ShardsAt(starts)
		if err != nil {
			return nil, fmt.Errorf("s3: %s: %w", path, err)
		}
		eng := core.NewEngineShards(ix, ranges, opt.Workers)
		applyEngineOptions(eng, opt)
		return &Index{ix: ix, db: db, eng: eng}, nil
	}
	eng := core.NewEngine(ix, opt.Shards, opt.Workers)
	applyEngineOptions(eng, opt)
	return &Index{ix: ix, db: db, eng: eng}, nil
}

// Save writes the index's database to a file with a 2^sectionBits section
// table (12 is a good default; larger values give the pseudo-disk finer
// loading granularity). An index running with a sharded engine embeds its
// shard manifest (format v3) so OpenIndex restores the same layout;
// otherwise the file stays at format v2.
func (x *Index) Save(path string, sectionBits int) error {
	if n := x.eng.Shards(); n > 1 {
		return x.db.WriteFileSharded(path, sectionBits, n)
	}
	return x.db.WriteFile(path, sectionBits)
}

// Len returns the number of indexed fingerprints.
func (x *Index) Len() int { return x.db.Len() }

// Dims returns the fingerprint dimension.
func (x *Index) Dims() int { return x.db.Dims() }

// Depth returns the current partition depth p.
func (x *Index) Depth() int { return x.ix.Depth() }

// SetDepth changes the partition depth p. It panics outside [1, K*D].
func (x *Index) SetDepth(p int) { x.ix.SetDepth(p) }

// Shards returns the number of keyspace shards the query engine uses.
func (x *Index) Shards() int { return x.eng.Shards() }

// Engine exposes the index's query engine (e.g. to share it with a
// serving layer).
func (x *Index) Engine() *core.Engine { return x.eng }

// EnablePlanCache turns on the engine's bounded plan cache (entries <= 0
// selects the default size). Call before serving queries. Answers are
// identical with or without the cache.
func (x *Index) EnablePlanCache(entries int) { x.eng.EnablePlanCache(entries) }

// EnableAutoTune turns on online cost-model re-fitting. Call before
// serving queries.
func (x *Index) EnableAutoTune(opt AutoTuneOptions) { x.eng.EnableAutoTune(opt) }

// PlanCacheStats reports plan-cache counters; ok is false when the cache
// is disabled.
func (x *Index) PlanCacheStats() (st PlanCacheStats, ok bool) { return x.eng.PlanCacheStats() }

// AutoTuneStats reports the auto-tuner's state; ok is false when tuning
// is disabled.
func (x *Index) AutoTuneStats() (st AutoTuneStats, ok bool) { return x.eng.AutoTuneStats() }

// StatSearch runs a statistical query: it returns every fingerprint in a
// region holding probability mass >= sq.Alpha under sq.Model around q.
func (x *Index) StatSearch(q []byte, sq StatQuery) ([]Match, Plan, error) {
	return x.eng.SearchStat(context.Background(), q, sq)
}

// RangeSearch runs an exact spherical ε-range query.
func (x *Index) RangeSearch(q []byte, eps float64) ([]Match, Plan, error) {
	return x.eng.SearchRange(context.Background(), q, eps)
}

// SearchStatBatch pipelines many statistical queries across the engine's
// worker pool (the batching of eq. 5, executed in parallel). results[i]
// corresponds to queries[i] and is identical to StatSearch's output for
// that query. ctx cancels the batch.
func (x *Index) SearchStatBatch(ctx context.Context, queries [][]byte, sq StatQuery) ([][]Match, error) {
	return x.eng.SearchStatBatch(ctx, queries, sq)
}

// ScanSearch runs the sequential-scan ε-range baseline over the same
// database (the reference method of the paper's scalability experiment).
func (x *Index) ScanSearch(q []byte, eps float64) ([]Match, error) {
	return scan.RangeQuery(x.db, q, eps)
}

// Tune learns the fastest partition depth on sample queries and sets it
// (the paper's p_min learning). It returns the sweep for inspection.
func (x *Index) Tune(samples [][]byte, sq StatQuery) ([]DepthTiming, error) {
	return x.ix.TuneDepth(nil, samples, sq)
}

// MatchedRangeRadius returns the ε giving an ε-range query the same
// expectation α as a statistical query under the single-σ model — the
// calibration the paper uses to compare the two query types.
func MatchedRangeRadius(dims int, sigma, alpha float64) float64 {
	return stat.RadiusDist{D: dims, Sigma: sigma}.Quantile(alpha)
}

// LiveOptions tunes a live index (see core.LiveOptions).
type LiveOptions = core.LiveOptions

// LiveStats reports a live index's shape (see core.LiveStats).
type LiveStats = core.LiveStats

// ErrLiveDegraded is returned by live-index writes while persistence is
// failing repeatedly and the index serves read-only (see
// core.ErrDegraded). Queries keep working; the background retry loop
// clears the mode at its first successful commit.
var ErrLiveDegraded = core.ErrDegraded

// ErrLiveClosed is returned by operations on a closed live index.
var ErrLiveClosed = core.ErrClosed

// LiveIndex is the growing variant of the S³ index: an LSM-style
// segmented structure supporting concurrent ingest, per-video deletion
// and query, with background compaction folding sealed segments
// together. Query results are identical — same matches, same order — to
// a monolithic BuildIndex over the surviving records (the property
// internal/core/live_quick_test.go checks).
type LiveIndex struct {
	li *core.LiveIndex
}

// OpenLiveIndex opens (or creates) a live index. dir == "" keeps it
// memory-only; otherwise dir persists segment files plus a crash-safe
// manifest, and reopening recovers the last committed snapshot. dims is
// the fingerprint dimension; order 0 selects 8 bits per component.
func OpenLiveIndex(dims, order int, dir string, opt LiveOptions) (*LiveIndex, error) {
	if order == 0 {
		order = 8
	}
	curve, err := hilbert.New(dims, order)
	if err != nil {
		return nil, err
	}
	li, err := core.OpenLiveIndex(curve, dir, opt)
	if err != nil {
		return nil, err
	}
	return &LiveIndex{li: li}, nil
}

// Core exposes the underlying core.LiveIndex (e.g. to hand to a serving
// layer).
func (x *LiveIndex) Core() *core.LiveIndex { return x.li }

// Ingest adds records; they are searchable on return.
func (x *LiveIndex) Ingest(recs []Record) error { return x.li.Ingest(recs) }

// DeleteVideo withdraws every currently stored record of a video.
func (x *LiveIndex) DeleteVideo(id uint32) error { return x.li.DeleteVideo(id) }

// Flush seals the memtable into the durable committed snapshot.
func (x *LiveIndex) Flush() error { return x.li.Flush() }

// Compact folds all sealed segments (minus tombstones) into one.
func (x *LiveIndex) Compact() error { return x.li.Compact() }

// Close seals pending records, stops background work and rejects
// further writes.
func (x *LiveIndex) Close() error { return x.li.Close() }

// Len returns the number of query-visible fingerprints.
func (x *LiveIndex) Len() int { return x.li.Len() }

// Stats reports the index's segment/memtable shape and counters.
func (x *LiveIndex) Stats() LiveStats { return x.li.Stats() }

// StatSearch runs a statistical query against the current snapshot.
func (x *LiveIndex) StatSearch(q []byte, sq StatQuery) ([]Match, Plan, error) {
	return x.li.SearchStat(context.Background(), q, sq)
}

// RangeSearch runs an exact spherical ε-range query.
func (x *LiveIndex) RangeSearch(q []byte, eps float64) ([]Match, Plan, error) {
	return x.li.SearchRange(context.Background(), q, eps)
}

// SearchStatBatch pipelines many statistical queries, all against one
// consistent snapshot taken at batch start.
func (x *LiveIndex) SearchStatBatch(ctx context.Context, queries [][]byte, sq StatQuery) ([][]Match, error) {
	return x.li.SearchStatBatch(ctx, queries, sq)
}

// NewLiveDetector builds a copy detector over a live index: detection
// batches run against consistent snapshots while reference material is
// ingested or withdrawn concurrently.
func NewLiveDetector(x *LiveIndex, cfg CBCDConfig) (*Detector, error) {
	return cbcd.NewLiveDetector(x.li, cfg)
}

// DiskIndex answers batched statistical queries against a database file
// too large for memory (the pseudo-disk strategy).
type DiskIndex struct {
	di   *core.DiskIndex
	file *store.File
}

// OpenDiskIndex opens a database file for batched searching. depth <= 0
// selects the default heuristic.
func OpenDiskIndex(path string, depth int) (*DiskIndex, error) {
	fl, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	di, err := core.NewDiskIndex(fl, depth)
	if err != nil {
		fl.Close()
		return nil, err
	}
	return &DiskIndex{di: di, file: fl}, nil
}

// Close releases the underlying file.
func (d *DiskIndex) Close() error { return d.file.Close() }

// Count returns the number of records in the file.
func (d *DiskIndex) Count() int { return d.file.Count() }

// SearchBatch filters all queries first, then loads the database in curve
// sections sized to budgetRecords resident records, refining every query
// against each section (eq. 5 of the paper).
func (d *DiskIndex) SearchBatch(queries [][]byte, sq StatQuery, budgetRecords int) ([][]Match, BatchStats, error) {
	return d.di.SearchStatBatch(queries, sq, budgetRecords)
}

// NewVideoIndexer returns an indexer for the complete CBCD system.
func NewVideoIndexer(cfg CBCDConfig) *Indexer { return cbcd.NewIndexer(cfg) }

// NewDetector builds a detector over an index previously built or loaded
// at the s3 level. The index dimension must be FingerprintDims.
func NewDetector(x *Index, cfg CBCDConfig) (*Detector, error) {
	if x.Dims() != FingerprintDims {
		return nil, fmt.Errorf("s3: detector needs %d-dimensional fingerprints, index has %d",
			FingerprintDims, x.Dims())
	}
	return cbcd.NewDetector(x.db, cfg)
}

// NewMonitor wraps a detector for continuous stream monitoring.
func NewMonitor(det *Detector) *Monitor { return cbcd.NewMonitor(det) }

// NewStreamMonitor wraps a detector for incremental live monitoring:
// frames are fed as they arrive, detections are returned as decision
// windows complete, and memory stays bounded to one window. window and
// hop of 0 select the defaults (250 and 125 frames).
func NewStreamMonitor(det *Detector, window, hop int) (*StreamMonitor, error) {
	return cbcd.NewStreamMonitor(det, window, hop)
}

// SaveDetectorDB writes the detector's reference database to an S3DB
// file with a 2^sectionBits section table.
func SaveDetectorDB(det *Detector, path string, sectionBits int) error {
	return det.Index().DB().WriteFile(path, sectionBits)
}

// OpenDetector loads a reference database file and wraps it in a
// detector with the given configuration.
func OpenDetector(path string, cfg CBCDConfig) (*Detector, error) {
	db, err := store.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return cbcd.NewDetector(db, cfg)
}

// CalibrateThreshold returns the smallest vote threshold with zero false
// alarms on clips known not to be referenced.
func CalibrateThreshold(det *Detector, clean []*Video) (int, error) {
	return cbcd.CalibrateThreshold(det, clean)
}

// ExtractFingerprints runs the paper's extraction pipeline (key-frames,
// Harris points, differential description) on a video.
func ExtractFingerprints(v *Video, cfg ExtractConfig) []Local {
	return fingerprint.Extract(v, cfg)
}

// EstimateDistortion fits the distortion model of a transformation on
// sample videos with a simulated perfect detector (Section IV-C): the
// returned estimate's Sigma is both the model parameter and the paper's
// transformation severity criterion.
func EstimateDistortion(samples []*Video, tf Transform, cfg ExtractConfig) (DistortionEstimate, error) {
	return distortion.EstimateModel(samples, tf, cfg)
}

// GenerateVideo procedurally generates test video (the reproduction's
// stand-in for the paper's TV archive; see DESIGN.md §5).
func GenerateVideo(seed int64, frames int) *Video {
	return vidsim.Generate(vidsim.DefaultConfig(seed), frames)
}
