package s3

// Tracing-overhead benchmark: the full statistical query path (plan +
// refine) over the 500k fingerprint corpus, run untraced and with
// span tracing sampled at 1% — the production observability setting.
//
//	go test -run TestObsBenchSweep -bench-obs -timeout 30m .
//
// regenerates BENCH_obs.json in the repository root and gates on the
// tracing contract: at 1% sampling the workload keeps at least 95% of
// its untraced throughput, and the untraced plan path still allocates
// nothing. The CI smoke job asserts the same gates at a smaller corpus
// via -bench-obs-records.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"s3cbcd/internal/core"
	"s3cbcd/internal/experiments"
	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/obs"
	"s3cbcd/internal/store"
)

var (
	benchObsFlag = flag.Bool("bench-obs", false,
		"run the tracing-overhead comparison and write BENCH_obs.json")
	benchObsRecords = flag.Int("bench-obs-records", 500_000,
		"corpus size for -bench-obs")
)

const (
	obsBenchQueries = 200
	obsBenchRounds  = 6
	obsBenchRate    = 0.01 // production sampling rate under test
	// obsBenchMaxDelta is the gate: sampled throughput may lose at most
	// this fraction of the untraced throughput.
	obsBenchMaxDelta = 0.05
)

func TestObsBenchSweep(t *testing.T) {
	if !*benchObsFlag {
		t.Skip("pass -bench-obs to run the tracing-overhead comparison")
	}
	n := *benchObsRecords
	curve := hilbert.MustNew(fingerprint.D, 8)
	db, err := store.Build(curve, experiments.FPCorpus(n, 1))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.NewIndex(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ix, 1, 1)
	queries, _ := experiments.DistortedQueries(db, obsBenchQueries, shardBenchSigma, 2)
	sq := shardBenchQuery()
	ctx := context.Background()

	// Warm pass: page in the corpus and fill the scratch pools so both
	// timed sides start from the same state.
	for _, q := range queries {
		if _, _, err := eng.SearchStat(ctx, q, sq); err != nil {
			t.Fatal(err)
		}
	}

	// pass times one sweep over the query set; a non-nil sampler draws a
	// trace (and pays for its report) on the queries it selects.
	traced := 0
	pass := func(sampler *obs.Sampler) float64 {
		start := time.Now()
		for _, q := range queries {
			qctx := ctx
			var tr *obs.Trace
			if sampler != nil && sampler.Sample() {
				tr = obs.NewTrace()
				qctx = obs.WithTrace(ctx, tr)
				traced++
			}
			if _, _, err := eng.SearchStat(qctx, q, sq); err != nil {
				t.Fatal(err)
			}
			if tr != nil {
				if rep := tr.Report(); rep.Blocks == 0 {
					t.Fatal("traced query recorded no work")
				}
			}
		}
		return float64(len(queries)) / time.Since(start).Seconds()
	}

	// The passes alternate untraced/sampled and each side keeps its best
	// round, so one-off machine noise (GC, page cache, a neighbor on the
	// core) cannot land on a single side and masquerade as overhead.
	sampler := obs.NewSampler(obsBenchRate, 7)
	var untraced, sampled float64
	for r := 0; r < obsBenchRounds; r++ {
		if v := pass(nil); v > untraced {
			untraced = v
		}
		if v := pass(sampler); v > sampled {
			sampled = v
		}
	}
	if traced == 0 {
		t.Fatal("degenerate run: the 1% sampler never fired; raise obsBenchQueries")
	}
	delta := 1 - sampled/untraced
	t.Logf("stat queries/sec: untraced %.1f, sampled@%.0f%% %.1f (delta %.2f%%, %d traced)",
		untraced, obsBenchRate*100, sampled, delta*100, traced)
	if delta > obsBenchMaxDelta {
		t.Errorf("tracing at %.0f%% sampling costs %.1f%% throughput, gate is %.0f%%",
			obsBenchRate*100, delta*100, obsBenchMaxDelta*100)
	}

	// The second half of the contract: with tracing off the pooled plan
	// path allocates nothing (the hot-path form of the guard pinned by
	// TestPlanStatNoAllocsUntraced and TestRouterAttemptNoAllocsUntraced).
	for _, q := range queries {
		if _, err := eng.PlanStat(ctx, q, sq); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := eng.PlanStat(ctx, queries[0], sq); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("untraced PlanStat allocates %.1f objects per call, want 0", allocs)
	}

	report := map[string]interface{}{
		"benchmark": "span tracing overhead: statistical query path untraced vs 1% sampled",
		"corpus": map[string]interface{}{
			"records": n,
			"dims":    fingerprint.D,
			"queries": len(queries),
			"alpha":   shardBenchAlpha,
			"sigma":   shardBenchSigma,
		},
		"host": map[string]interface{}{
			"num_cpu":    runtime.NumCPU(),
			"go_version": runtime.Version(),
		},
		"untraced_queries_per_sec": untraced,
		"sampled_queries_per_sec":  sampled,
		"sampling_rate":            obsBenchRate,
		"traced_queries":           traced,
		"throughput_delta":         delta,
		"throughput_delta_gate":    obsBenchMaxDelta,
		"allocs_per_plan_untraced": allocs,
		"note": fmt.Sprintf("Best-of-%d alternating rounds over %d distorted queries; each sampled query pays for "+
			"trace construction, plan/refine stage spans with annotations, and the assembled report. "+
			"The alloc figure is the pooled plan path with no trace in the context.",
			obsBenchRounds, len(queries)),
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_obs.json")
}
