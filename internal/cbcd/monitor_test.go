package cbcd

import (
	"testing"

	"s3cbcd/internal/store"
	"s3cbcd/internal/vidsim"
)

func TestMonitorEmptyStream(t *testing.T) {
	refs := refCorpus(2, 120)
	det := buildDetector(t, refs, DefaultConfig())
	m := NewMonitor(det)
	dets, err := m.ProcessStream(&vidsim.Sequence{FPS: 25})
	if err != nil || len(dets) != 0 {
		t.Fatalf("empty stream: %v %v", dets, err)
	}
}

func TestMonitorShortStream(t *testing.T) {
	refs := refCorpus(2, 160)
	det := buildDetector(t, refs, DefaultConfig())
	m := NewMonitor(det)
	// Shorter than one window: must still process (single partial window).
	short := clip(refs[0], 10, 90)
	dets, err := m.ProcessStream(short)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range dets {
		if d.ID == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("copy in short stream missed: %+v", dets)
	}
}

func TestMonitorWindowValidation(t *testing.T) {
	refs := refCorpus(1, 100)
	det := buildDetector(t, refs, DefaultConfig())
	m := NewMonitor(det)
	m.WindowFrames = 0
	if _, err := m.ProcessStream(refs[0]); err == nil {
		t.Fatal("zero window accepted")
	}
	m.WindowFrames = 50
	m.HopFrames = 0 // must self-correct to WindowFrames/2
	if _, err := m.ProcessStream(refs[0]); err != nil {
		t.Fatal(err)
	}
}

// TestSpatialVotingDegradesGracefullyWithoutPositions: records loaded
// from a v1 file have zero positions; the spatial fit then sees constant
// references and falls back to translation, so detection still works.
func TestSpatialVotingDegradesGracefullyWithoutPositions(t *testing.T) {
	refs := refCorpus(3, 160)
	cfg := DefaultConfig()
	det := buildDetector(t, refs, cfg)
	// Simulate a v1 database: strip the positions.
	db := det.Index().DB()
	in := NewIndexer(cfg)
	for i := 0; i < db.Len(); i++ {
		fp := make([]byte, db.Dims())
		copy(fp, db.FP(i))
		in.AddRecords([]store.Record{{FP: fp, ID: db.ID(i), TC: db.TC(i)}})
	}
	stripped, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	stripped.cfg.Vote.SpatialTolerance = 6
	dets, err := stripped.DetectClip(clip(refs[0], 30, 130))
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 || dets[0].ID != 1 {
		t.Fatalf("position-less spatial detection failed: %+v", dets)
	}
}
