package experiments

import (
	"fmt"
	"io"

	"s3cbcd/internal/core"
	"s3cbcd/internal/distortion"
	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/store"
	"s3cbcd/internal/vidsim"
)

func init() {
	register(Experiment{
		ID: "fig3",
		Title: "Figure 3: retrieval rate R vs. expectation α of the statistical query " +
			"(model assessment on a combined transformation)",
		Run: runFig3,
	})
	register(Experiment{
		ID: "tab1",
		Title: "Table I: detection rate R for transformations of decreasing severity σ " +
			"(α=85%, model fitted on the most severe transformation)",
		Run: runTab1,
	})
}

// modelBench holds everything fig3 and tab1 share: a database containing
// the reference fingerprints (plus distractors) and an index over it.
type modelBench struct {
	db  *store.DB
	ix  *core.Index
	pos map[fingerprint.Fingerprint][]int // DB positions per reference fingerprint
}

func newModelBench(seqs []*vidsim.Sequence, distractors int, seed int64) (*modelBench, error) {
	var recs []store.Record
	for si, seq := range seqs {
		for _, l := range fingerprint.Extract(seq, fingerprint.DefaultConfig()) {
			fp := make([]byte, fingerprint.D)
			copy(fp, l.FP[:])
			recs = append(recs, store.Record{FP: fp, ID: uint32(si + 1), TC: l.TC})
		}
	}
	recs = append(recs, FPCorpus(distractors, seed^0x5f5f)...)
	curve, err := hilbert.New(fingerprint.D, 8)
	if err != nil {
		return nil, err
	}
	db, err := store.Build(curve, recs)
	if err != nil {
		return nil, err
	}
	ix, err := core.NewIndex(db, 0)
	if err != nil {
		return nil, err
	}
	mb := &modelBench{db: db, ix: ix, pos: map[fingerprint.Fingerprint][]int{}}
	for i := 0; i < db.Len(); i++ {
		var fp fingerprint.Fingerprint
		copy(fp[:], db.FP(i))
		mb.pos[fp] = append(mb.pos[fp], i)
	}
	return mb, nil
}

// retrievalRate runs one statistical query per correspondence pair and
// returns the fraction whose reference fingerprint is retrieved.
func (mb *modelBench) retrievalRate(pairs []distortion.Pair, sq core.StatQuery) (float64, error) {
	if len(pairs) == 0 {
		return 0, fmt.Errorf("experiments: no correspondences")
	}
	hits := 0
	for _, p := range pairs {
		matches, _, err := mb.ix.SearchStat(p.Dist[:], sq)
		if err != nil {
			return 0, err
		}
		want := map[int]bool{}
		for _, pos := range mb.pos[p.Ref] {
			want[pos] = true
		}
		for _, m := range matches {
			if want[m.Pos] {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(pairs)), nil
}

// fig3Transform is the paper's combined transformation: resizing, gamma
// modification, noise addition, and a 1-pixel interest point imprecision.
func fig3Transform(seed int64) vidsim.Transform {
	return vidsim.Compose{
		vidsim.Resize{Scale: 0.9},
		vidsim.Gamma{G: 1.25},
		vidsim.Noise{Sigma: 6, Seed: seed},
		vidsim.PixelJitter{Delta: 1, Seed: uint64(seed)},
	}
}

func runFig3(w io.Writer, sc Scale, seed int64) error {
	nSeqs, distractors, maxPairs := 3, 5000, 300
	if sc == Full {
		nSeqs, distractors, maxPairs = 8, 50000, 1500
	}
	seqs := VideoCorpus(nSeqs, 150, seed)
	tf := fig3Transform(seed)
	pairs := distortion.CollectPairs(seqs, tf, fingerprint.DefaultConfig())
	if len(pairs) > maxPairs {
		pairs = pairs[:maxPairs]
	}
	est, err := distortion.Fit(pairs)
	if err != nil {
		return err
	}
	mb, err := newModelBench(seqs, distractors, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Figure 3 — retrieval rate vs α for %s\n", tf.Name())
	fmt.Fprintf(w, "# fitted sigma = %.2f over %d correspondences, DB = %d fingerprints\n",
		est.Sigma, len(pairs), mb.db.Len())
	fmt.Fprintf(w, "%6s %14s %10s\n", "alpha", "retrievalRate", "error")
	model := core.IsoNormal{D: fingerprint.D, Sigma: est.Sigma}
	for alpha := 0.40; alpha < 0.999; alpha += 0.05 {
		r, err := mb.retrievalRate(pairs, core.StatQuery{Alpha: alpha, Model: model})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%6.0f %14.2f %10.2f\n", alpha*100, r*100, (r-alpha)*100)
	}
	return nil
}

// tab1Rows lists Table I's transformations in the paper's order (severity
// decreasing downward in the paper's measurements).
func tab1Rows(seed int64) []struct {
	name string
	tf   vidsim.Transform
} {
	j := vidsim.PixelJitter{Delta: 1, Seed: uint64(seed)}
	return []struct {
		name string
		tf   vidsim.Transform
	}{
		{"wscale=0.84, dpix=1", vidsim.Compose{vidsim.Resize{Scale: 0.84}, j}},
		{"wscale=1.26, dpix=1", vidsim.Compose{vidsim.Resize{Scale: 1.26}, j}},
		{"wscale=0.91, dpix=1", vidsim.Compose{vidsim.Resize{Scale: 0.91}, j}},
		{"wscale=0.98, dpix=1", vidsim.Compose{vidsim.Resize{Scale: 0.98}, j}},
		{"wgamma=2.08, dpix=1", vidsim.Compose{vidsim.Gamma{G: 2.08}, j}},
		{"wgamma=0.82, dpix=1", vidsim.Compose{vidsim.Gamma{G: 0.82}, j}},
		{"wnoise=10.0, dpix=0", vidsim.Noise{Sigma: 10, Seed: seed}},
	}
}

func runTab1(w io.Writer, sc Scale, seed int64) error {
	nSeqs, distractors, maxPairs := 3, 5000, 250
	if sc == Full {
		nSeqs, distractors, maxPairs = 8, 50000, 1200
	}
	seqs := VideoCorpus(nSeqs, 150, seed)
	mb, err := newModelBench(seqs, distractors, seed)
	if err != nil {
		return err
	}
	rows := tab1Rows(seed)
	type rowResult struct {
		name  string
		sigma float64
		pairs []distortion.Pair
	}
	results := make([]rowResult, 0, len(rows))
	sigmaRef := 0.0
	for _, row := range rows {
		pairs := distortion.CollectPairs(seqs, row.tf, fingerprint.DefaultConfig())
		if len(pairs) > maxPairs {
			pairs = pairs[:maxPairs]
		}
		est, err := distortion.Fit(pairs)
		if err != nil {
			return err
		}
		if est.Sigma > sigmaRef {
			sigmaRef = est.Sigma
		}
		results = append(results, rowResult{name: row.name, sigma: est.Sigma, pairs: pairs})
	}
	const alpha = 0.85
	fmt.Fprintf(w, "# Table I — detection rate R for transformations of decreasing severity\n")
	fmt.Fprintf(w, "# alpha = %.0f%%, model sigma_ref = %.2f (most severe), DB = %d fingerprints\n",
		alpha*100, sigmaRef, mb.db.Len())
	fmt.Fprintf(w, "%-22s %8s %8s\n", "transformation", "sigma", "R(%)")
	model := core.IsoNormal{D: fingerprint.D, Sigma: sigmaRef}
	refRate := -1.0
	for _, res := range results {
		r, err := mb.retrievalRate(res.pairs, core.StatQuery{Alpha: alpha, Model: model})
		if err != nil {
			return err
		}
		if res.sigma == sigmaRef {
			refRate = r
		}
		fmt.Fprintf(w, "%-22s %8.2f %8.2f\n", res.name, res.sigma, r*100)
	}
	fmt.Fprintf(w, "# Paper's claim: R of the reference (most severe) transformation is >= ~alpha\n")
	fmt.Fprintf(w, "# and R increases as severity decreases. Reference R here: %.2f%%\n", refRate*100)
	return nil
}
