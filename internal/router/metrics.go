package router

// Router metric families (all documented in docs/METRICS.md). Each
// family is constructed at exactly one site, per the repository's
// metric lint; per-backend series share one family with a backend
// label, per-route series the route/code labelling the HTTP layer
// already uses.

import (
	"fmt"

	"s3cbcd/internal/obs"
)

type routerMetrics struct {
	inflight *obs.Gauge

	shed      *obs.Counter
	retries   *obs.Counter
	hedges    *obs.Counter
	hedgeWins *obs.Counter

	breakerTrips *obs.Counter
	probes       *obs.Counter

	partials      *obs.Counter
	missingShards *obs.Counter
}

func newRouterMetrics(reg *obs.Registry) routerMetrics {
	return routerMetrics{
		inflight: reg.Gauge("s3_router_inflight_requests",
			"client requests currently being coordinated"),
		shed: reg.Counter("s3_router_shed_total",
			"client requests shed with 503 because the in-flight budget was saturated"),
		retries: reg.Counter("s3_router_retries_total",
			"attempts re-driven against a sibling replica after a retryable failure"),
		hedges: reg.Counter("s3_router_hedges_total",
			"hedge attempts fired because the primary exceeded its latency quantile"),
		hedgeWins: reg.Counter("s3_router_hedge_wins_total",
			"hedge attempts that produced the winning response"),
		breakerTrips: reg.Counter("s3_router_breaker_trips_total",
			"circuit breakers tripped open by consecutive backend failures"),
		probes: reg.Counter("s3_router_probes_total",
			"health probes sent to backends"),
		partials: reg.Counter("s3_router_partial_results_total",
			"degrade-policy responses returned with one or more shard groups missing"),
		missingShards: reg.Counter("s3_router_missing_shards_total",
			"shard groups omitted from degrade-policy responses (one count per missing group per response)"),
	}
}

// routeMetrics builds the per-route latency histogram and status-class
// counters, mirroring httpapi's instrumentation under router families.
func routeMetrics(reg *obs.Registry, route string) (*obs.Histogram, [4]*obs.Counter) {
	hist := reg.Histogram(fmt.Sprintf("s3_router_request_seconds{route=%q}", route),
		"router request wall time by route", obs.LatencyBuckets())
	var classes [4]*obs.Counter
	for i, class := range []string{"2xx", "3xx", "4xx", "5xx"} {
		classes[i] = reg.Counter(
			fmt.Sprintf("s3_router_requests_total{route=%q,code=%q}", route, class),
			"router requests served by route and status class")
	}
	return hist, classes
}

// backendSeries builds one backend's labelled series and gauges. The
// health and breaker gauges are GaugeFuncs so /metrics always renders
// the live state without a write on every transition.
func backendSeries(reg *obs.Registry, be *backend) {
	be.reqs = reg.Counter(fmt.Sprintf("s3_router_backend_requests_total{backend=%q}", be.url),
		"requests sent to each backend (retries and hedges included)")
	be.failures = reg.Counter(fmt.Sprintf("s3_router_backend_failures_total{backend=%q}", be.url),
		"requests to each backend that failed (transport error, 5xx, torn response, timeout)")
	be.reqSeconds = reg.Histogram(fmt.Sprintf("s3_router_backend_request_seconds{backend=%q}", be.url),
		"backend request wall time", obs.LatencyBuckets())
	reg.GaugeFunc(fmt.Sprintf("s3_router_backend_health{backend=%q}", be.url),
		"prober classification: 0 healthy, 1 degraded, 2 down",
		func() float64 { return float64(be.health()) })
	reg.GaugeFunc(fmt.Sprintf("s3_router_breaker_state{backend=%q}", be.url),
		"circuit breaker state: 0 closed, 1 open, 2 half-open",
		func() float64 { return float64(be.br.snapshot()) })
	reg.GaugeFunc(fmt.Sprintf("s3_router_backend_inflight_requests{backend=%q}", be.url),
		"requests currently in flight to each backend",
		func() float64 { return float64(be.inflight.Load()) })
}
