package hilbert

import "s3cbcd/internal/bitkey"

// FrontierDescent is reusable scratch for resumable pruned descents. A
// normal Descend restarts at the root every time the pruning rule
// changes; a frontier descent instead materializes every pruned node as
// an explicit Node (via the pruned callback) so that a later pass with a
// weaker rule can resume exactly where the earlier pass stopped, never
// re-walking the part of the tree the earlier pass already settled.
//
// A FrontierDescent carries only per-dimension bound scratch; it may be
// reused across any number of Descend calls but is not safe for
// concurrent use.
type FrontierDescent struct {
	c      *Curve
	depth  int
	stepV  StepVisitor
	pruned func(Node)
	lo, hi []uint32
	done   bool
}

// NewFrontierDescent returns scratch for resumable descents over c.
func (c *Curve) NewFrontierDescent() *FrontierDescent {
	return &FrontierDescent{
		c:  c,
		lo: make([]uint32, c.dims),
		hi: make([]uint32, c.dims),
	}
}

// Descend walks the partition subtree under n down to depth, following
// the same protocol as Curve.DescendSteps: v.Enter is consulted for every
// candidate child (one halved dimension per step), v.Leave undoes an
// Enter on backtrack, and v.Leaf receives each surviving depth-level
// block in curve order. The one addition is pruned: when non-nil it
// receives, immediately after each Enter that returned false, the
// rejected child as a resumable Node. Passing that Node back to a later
// Descend call continues the walk below it as if it had never been
// pruned.
//
// The Lo/Hi of nodes handed to pruned (and the bounds of Blocks handed
// to v.Leaf) alias the FrontierDescent's scratch and are only valid
// during the callback; copy them to retain. Descend panics when depth is
// outside [n.Bits, c.IndexBits()].
//
// Descend(c.RootNode(), p, v, nil) enumerates exactly the blocks of
// DescendSteps(p, v).
func (fd *FrontierDescent) Descend(n Node, depth int, v StepVisitor, pruned func(Node)) {
	if depth < n.Bits || depth > fd.c.IndexBits() {
		panic("hilbert: frontier descend depth outside [node bits, index bits]")
	}
	copy(fd.lo, n.Lo)
	copy(fd.hi, n.Hi)
	fd.depth, fd.stepV, fd.pruned, fd.done = depth, v, pruned, false
	fd.walk(n.Prefix, n.Bits, n.st, n.q, n.wp)
	fd.stepV, fd.pruned = nil, nil
}

// walk mirrors descent.walk with two differences: it starts from an
// arbitrary node state instead of the root, and it reports pruned
// children as resumable Nodes.
func (fd *FrontierDescent) walk(prefix bitkey.Key, m int, st state, q int, wp uint64) {
	if fd.done {
		return
	}
	if m == fd.depth {
		b := Block{
			Lo: fd.lo, Hi: fd.hi,
			Start: prefix.Shl(uint(fd.c.IndexBits() - m)),
			End:   endOfInterval(prefix, m, fd.c.IndexBits()),
			Depth: fd.depth,
		}
		if !fd.stepV.Leaf(b) {
			fd.done = true
		}
		return
	}
	n := uint(fd.c.dims)
	for b := uint64(0); b <= 1; b++ {
		prev := uint64(0)
		if q > 0 {
			prev = wp & 1
		}
		gbit := b ^ prev
		posG := n - 1 - uint(q)
		posL := (posG + st.d + 1) % n
		lbit := gbit ^ ((st.e >> posL) & 1)

		dim := int(posL)
		mid := (fd.lo[dim] + fd.hi[dim]) / 2
		savedLo, savedHi := fd.lo[dim], fd.hi[dim]
		if lbit == 1 {
			fd.lo[dim] = mid
		} else {
			fd.hi[dim] = mid
		}

		childPrefix := prefix.Shl(1).OrLowBits(b)
		var childSt state
		var childQ int
		var childWp uint64
		if q+1 == int(n) {
			childSt, childQ, childWp = st.next(wp<<1|b, n), 0, 0
		} else {
			childSt, childQ, childWp = st, q+1, wp<<1|b
		}

		if fd.stepV.Enter(dim, fd.lo[dim], fd.hi[dim]) {
			fd.walk(childPrefix, m+1, childSt, childQ, childWp)
			fd.stepV.Leave(dim)
		} else if fd.pruned != nil {
			fd.pruned(Node{
				Lo: fd.lo, Hi: fd.hi,
				Prefix: childPrefix,
				Bits:   m + 1,
				st:     childSt,
				q:      childQ,
				wp:     childWp,
			})
		}

		fd.lo[dim], fd.hi[dim] = savedLo, savedHi
		if fd.done {
			return
		}
	}
}

// CopyNode returns n with Lo/Hi copied into the given backing storage,
// which must hold at least 2*Dims entries. It is the retention helper
// for nodes received through a pruned callback: the returned node's
// bounds alias dst, not the descent scratch.
func CopyNode(n Node, dst []uint32) Node {
	d := len(n.Lo)
	copy(dst[:d], n.Lo)
	copy(dst[d:2*d], n.Hi)
	n.Lo, n.Hi = dst[:d:d], dst[d:2*d:2*d]
	return n
}
