package store

import (
	"math"
	"math/rand"
	"testing"

	"s3cbcd/internal/hilbert"
)

func distSqBytes(qf []float64, fp []byte) float64 {
	s := 0.0
	for j, q := range qf {
		d := q - float64(fp[j])
		s += d * d
	}
	return s
}

// TestSketchNeverFalseNegative is the soundness property the skip
// decision rests on: whenever a stored key lies inside an interval set,
// MayIntersect MUST say true. A false positive only wastes a visit; a
// false negative would silently drop answers, so this is exhaustive over
// many random databases, granularities and interval sets.
func TestSketchNeverFalseNegative(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		curve := hilbert.MustNew(4+int(seed%3), 3+int(seed%2))
		db := MustBuild(curve, randRecords(r, curve, 1+r.Intn(300)))
		for _, bits := range []int{0, 1, 4, curve.IndexBits()} {
			sk := db.BuildSketch(bits)
			for trial := 0; trial < 60; trial++ {
				ivs := randIntervals(r, curve, 1+r.Intn(5))
				occupied := false
				for i := 0; i < db.Len() && !occupied; i++ {
					k := db.Key(i)
					for _, iv := range ivs {
						if !k.Less(iv.Start) && k.Less(iv.End) {
							occupied = true
							break
						}
					}
				}
				if occupied && !sk.MayIntersect(ivs) {
					t.Fatalf("seed %d bits %d trial %d: sketch denies an occupied interval set",
						seed, bits, trial)
				}
			}
		}
	}
}

// TestSketchSkipsEmptyRanges: the sketch must actually skip — probing the
// gap beyond a database confined to a narrow key range must come back
// negative (this is the >0 utility check, not a soundness requirement).
func TestSketchSkipsEmptyRanges(t *testing.T) {
	curve := hilbert.MustNew(6, 4)
	r := rand.New(rand.NewSource(5))
	// Confine records to the bottom 1/16 of the curve by zeroing the top
	// component bits of random fingerprints' keys: easiest via rebuilding
	// from records whose key happens to land low. Instead, just take a
	// random db and probe single blocks it provably misses.
	db := MustBuild(curve, randRecords(r, curve, 64))
	sk := db.BuildSketch(0)
	skips := 0
	for trial := 0; trial < 200; trial++ {
		ivs := randIntervals(r, curve, 1)
		occupied := false
		for i := 0; i < db.Len() && !occupied; i++ {
			k := db.Key(i)
			occupied = !k.Less(ivs[0].Start) && k.Less(ivs[0].End)
		}
		if !occupied && !sk.MayIntersect(ivs) {
			skips++
		}
	}
	if skips == 0 {
		t.Fatal("sketch never skipped an empty interval in 200 trials")
	}
	if rate := sk.EstimatedSkipRate(4096); rate <= 0 || rate > 1 {
		t.Fatalf("EstimatedSkipRate = %v outside (0, 1]", rate)
	}
}

// TestSketchEnvelopeIsLowerBound: the component envelope's distance to a
// query point never exceeds the distance to any stored fingerprint.
func TestSketchEnvelopeIsLowerBound(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	curve := hilbert.MustNew(6, 4)
	db := MustBuild(curve, randRecords(r, curve, 200))
	sk := db.BuildSketch(0)
	for trial := 0; trial < 100; trial++ {
		qf := make([]float64, curve.Dims())
		for j := range qf {
			qf[j] = r.Float64() * 16
		}
		env := sk.EnvelopeMinDistSq(qf)
		for i := 0; i < db.Len(); i++ {
			if d := distSqBytes(qf, db.FP(i)); env > d+1e-9 {
				t.Fatalf("trial %d: envelope bound %v exceeds exact %v at record %d",
					trial, env, d, i)
			}
		}
	}
	// An empty database's envelope excludes everything.
	empty := MustBuild(curve, nil)
	if got := empty.BuildSketch(0).EnvelopeMinDistSq(make([]float64, curve.Dims())); !math.IsInf(got, 1) {
		t.Fatalf("empty envelope distance = %v, want +Inf", got)
	}
}

// TestQuantizerLowerBound: for every record and query, the quantized
// bound never exceeds the exact squared distance — Exceeds(code, d) with
// d the exact distance must be false, so a rejected candidate provably
// lies outside the radius.
func TestQuantizerLowerBound(t *testing.T) {
	for _, bits := range []int{1, 2, 4, 8} {
		r := rand.New(rand.NewSource(int64(100 + bits)))
		curve := hilbert.MustNew(6, 4)
		db := MustBuild(curve, randRecords(r, curve, 300))
		qz, err := buildQuantizer(db, bits)
		if err != nil {
			t.Fatal(err)
		}
		code := make([]byte, qz.CodeBytes(curve.Dims()))
		for trial := 0; trial < 40; trial++ {
			qf := make([]float64, curve.Dims())
			for j := range qf {
				qf[j] = r.Float64() * 16
			}
			lb := qz.NewLowerBounder(qf)
			for i := 0; i < db.Len(); i++ {
				for j := range code {
					code[j] = 0
				}
				qz.encode(db.FP(i), code)
				d := distSqBytes(qf, db.FP(i))
				if lb.Exceeds(code, d) {
					t.Fatalf("bits %d trial %d: quantized bound exceeds exact distance %v at record %d",
						bits, trial, d, i)
				}
				// And the contrapositive the filter uses: Exceeds at a random
				// radius implies the exact distance is beyond it.
				boundSq := r.Float64() * 400
				if lb.Exceeds(code, boundSq) && d <= boundSq {
					t.Fatalf("bits %d: record %d rejected at radius² %v but exact %v is inside",
						bits, i, boundSq, d)
				}
			}
		}
	}
}

// TestSketchRoundTrip: appendTo → decodeSketch is an identity on every
// decision the sketch makes.
func TestSketchRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	curve := hilbert.MustNew(5, 4)
	db := MustBuild(curve, randRecords(r, curve, 150))
	sk := db.BuildSketch(0)
	blob := sk.appendTo(nil)
	if len(blob) != sk.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(blob), sk.EncodedSize())
	}
	got, used, err := decodeSketch(blob, curve)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(blob) {
		t.Fatalf("decode consumed %d of %d bytes", used, len(blob))
	}
	if got.Bits() != sk.Bits() || got.Blocks() != sk.Blocks() || got.Hashes() != sk.Hashes() ||
		got.FilterBits() != sk.FilterBits() {
		t.Fatalf("decoded shape %+v differs from built %+v", got, sk)
	}
	for trial := 0; trial < 100; trial++ {
		ivs := randIntervals(r, curve, 1+r.Intn(4))
		if got.MayIntersect(ivs) != sk.MayIntersect(ivs) {
			t.Fatalf("trial %d: decoded sketch disagrees with built sketch", trial)
		}
	}
	qf := make([]float64, curve.Dims())
	for j := range qf {
		qf[j] = r.Float64() * 16
	}
	if got.EnvelopeMinDistSq(qf) != sk.EnvelopeMinDistSq(qf) {
		t.Fatal("decoded envelope differs from built envelope")
	}
}

// TestQuantizerRoundTrip: appendTo → decodeQuantizer preserves every
// boundary, hence every code and bound.
func TestQuantizerRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	curve := hilbert.MustNew(6, 4)
	db := MustBuild(curve, randRecords(r, curve, 200))
	qz, err := buildQuantizer(db, DefaultCodecBits)
	if err != nil {
		t.Fatal(err)
	}
	blob := qz.appendTo(nil)
	if len(blob) != qz.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(blob), qz.EncodedSize())
	}
	got, used, err := decodeQuantizer(blob, curve.Dims())
	if err != nil {
		t.Fatal(err)
	}
	if used != len(blob) || got.Bits() != qz.Bits() {
		t.Fatalf("decode consumed %d bytes, bits %d; want %d, %d", used, got.Bits(), len(blob), qz.Bits())
	}
	for j := range qz.bounds {
		for c := range qz.bounds[j] {
			if got.bounds[j][c] != qz.bounds[j][c] {
				t.Fatalf("boundary [%d][%d] = %d, want %d", j, c, got.bounds[j][c], qz.bounds[j][c])
			}
		}
	}
}

// FuzzSketchDecode feeds arbitrary bytes to the sketch and codec section
// parsers: they must never panic, never allocate past their hard caps,
// and anything accepted must be usable (probing and bounding must not
// crash). The v4-section twin of FuzzManifestDecode.
func FuzzSketchDecode(f *testing.F) {
	curve := hilbert.MustNew(5, 4)
	db := MustBuild(curve, randRecords(rand.New(rand.NewSource(17)), curve, 40))
	f.Add(db.BuildSketch(0).appendTo(nil))
	if qz, err := buildQuantizer(db, 4); err == nil {
		f.Add(qz.appendTo(nil))
	}
	f.Add([]byte{})
	f.Add(make([]byte, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		if sk, _, err := decodeSketch(data, curve); err == nil {
			ivs := randIntervals(rand.New(rand.NewSource(1)), curve, 2)
			_ = sk.MayIntersect(ivs)
			_ = sk.EnvelopeMinDistSq(make([]float64, curve.Dims()))
			_ = sk.FalsePositiveRate()
			_ = sk.EstimatedSkipRate(16)
		}
		if qz, _, err := decodeQuantizer(data, curve.Dims()); err == nil {
			lb := qz.NewLowerBounder(make([]float64, curve.Dims()))
			code := make([]byte, qz.CodeBytes(curve.Dims()))
			_ = lb.Exceeds(code, 1)
		}
	})
}
