package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"

	"s3cbcd/internal/bitkey"
)

// recordingVisitor checks the Enter/Leave protocol and collects leaves.
type recordingVisitor struct {
	t        *testing.T
	c        *Curve
	prune    func(dim int, lo, hi uint32) bool
	stack    []int // dims entered
	leaves   []blockCopy
	maxDepth int
	stopAt   int // stop after this many leaves (0 = never)
}

func (v *recordingVisitor) Enter(dim int, lo, hi uint32) bool {
	if dim < 0 || dim >= v.c.Dims() {
		v.t.Fatalf("Enter dim %d out of range", dim)
	}
	if hi <= lo || hi > v.c.SideLen() {
		v.t.Fatalf("Enter bounds [%d,%d) invalid", lo, hi)
	}
	if v.prune != nil && v.prune(dim, lo, hi) {
		return false
	}
	v.stack = append(v.stack, dim)
	if len(v.stack) > v.maxDepth {
		v.maxDepth = len(v.stack)
	}
	return true
}

func (v *recordingVisitor) Leave(dim int) {
	if len(v.stack) == 0 {
		v.t.Fatal("Leave with empty stack")
	}
	top := v.stack[len(v.stack)-1]
	if top != dim {
		v.t.Fatalf("Leave(%d) does not match Enter(%d)", dim, top)
	}
	v.stack = v.stack[:len(v.stack)-1]
}

func (v *recordingVisitor) Leaf(b Block) bool {
	v.leaves = append(v.leaves, blockCopy{
		lo:    append([]uint32(nil), b.Lo...),
		hi:    append([]uint32(nil), b.Hi...),
		start: b.Start,
		end:   b.End,
	})
	return v.stopAt == 0 || len(v.leaves) < v.stopAt
}

func TestDescendStepsMatchesDescend(t *testing.T) {
	configs := [][2]int{{2, 4}, {3, 3}, {5, 2}}
	for _, cfg := range configs {
		c := MustNew(cfg[0], cfg[1])
		for p := 0; p <= c.IndexBits(); p += 3 {
			want := collectBlocks(c, p, nil)
			v := &recordingVisitor{t: t, c: c}
			c.DescendSteps(p, v)
			if len(v.stack) != 0 {
				t.Fatalf("unbalanced Enter/Leave: %d left", len(v.stack))
			}
			if len(v.leaves) != len(want) {
				t.Fatalf("D=%d K=%d p=%d: %d leaves, want %d", cfg[0], cfg[1], p, len(v.leaves), len(want))
			}
			for i := range want {
				got := v.leaves[i]
				if got.start != want[i].start || got.end != want[i].end {
					t.Fatalf("leaf %d interval differs", i)
				}
				for j := range want[i].lo {
					if got.lo[j] != want[i].lo[j] || got.hi[j] != want[i].hi[j] {
						t.Fatalf("leaf %d bounds differ", i)
					}
				}
			}
			if p > 0 && v.maxDepth != p {
				t.Fatalf("max stack depth %d, want %d", v.maxDepth, p)
			}
		}
	}
}

func TestDescendStepsPruning(t *testing.T) {
	c := MustNew(3, 4)
	// Prune every subtree whose dim-0 bound drops below the upper half.
	prune := func(dim int, lo, hi uint32) bool {
		return dim == 0 && hi <= 8
	}
	v := &recordingVisitor{t: t, c: c, prune: prune}
	c.DescendSteps(9, v)
	if len(v.leaves) == 0 {
		t.Fatal("everything pruned")
	}
	for i, b := range v.leaves {
		if b.lo[0] < 8 {
			t.Fatalf("leaf %d at lo[0]=%d survived the prune", i, b.lo[0])
		}
	}
	// Compare against the generic Descend with the equivalent keep rule.
	want := collectBlocks(c, 9, func(lo, hi []uint32) bool { return hi[0] > 8 })
	if len(v.leaves) != len(want) {
		t.Fatalf("steps pruned to %d leaves, generic to %d", len(v.leaves), len(want))
	}
}

func TestDescendStepsEarlyStop(t *testing.T) {
	c := MustNew(2, 4)
	v := &recordingVisitor{t: t, c: c, stopAt: 5}
	c.DescendSteps(6, v)
	if len(v.leaves) != 5 {
		t.Fatalf("stopped at %d leaves, want 5", len(v.leaves))
	}
}

func TestDescendStepsDepthZero(t *testing.T) {
	c := MustNew(2, 3)
	v := &recordingVisitor{t: t, c: c}
	c.DescendSteps(0, v)
	if len(v.leaves) != 1 || v.leaves[0].end.Uint64() != 64 {
		t.Fatalf("depth-0 leaves: %+v", v.leaves)
	}
}

// TestQuickRoundTripPaperCurve property-tests the paper's D=20, K=8 curve.
func TestQuickRoundTripPaperCurve(t *testing.T) {
	c := MustNew(20, 8)
	back := make([]uint32, 20)
	f := func(raw [20]byte) bool {
		pt := make([]uint32, 20)
		for i, b := range raw {
			pt[i] = uint32(b)
		}
		c.Decode(c.Encode(pt), back)
		for i := range pt {
			if back[i] != pt[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickKeyOrderIsCurveOrder checks that sorting by encoded key equals
// sorting by curve position for random points, i.e. the store's physical
// order is exactly the curve order.
func TestQuickKeyOrderIsCurveOrder(t *testing.T) {
	c := MustNew(6, 5)
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		a := make([]uint32, 6)
		b := make([]uint32, 6)
		for j := range a {
			a[j] = uint32(r.Intn(32))
			b[j] = uint32(r.Intn(32))
		}
		ka, kb := c.Encode(a), c.Encode(b)
		if ka == kb {
			same := true
			for j := range a {
				if a[j] != b[j] {
					same = false
				}
			}
			if !same {
				t.Fatalf("distinct points share key %v", ka)
			}
		}
	}
	_ = bitkey.Zero
}
