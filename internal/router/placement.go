package router

// Static placement of key-range shard groups onto backends by
// rendezvous (highest-random-weight) hashing — the "consistent" family
// member with no virtual-node bookkeeping: every (group, backend) pair
// is scored by a 64-bit hash and group g is served by the R
// highest-scoring backends. The placement is a pure function of the
// backend list and the group count, so every router replica computes
// the same table without coordination, and removing one backend moves
// only the groups that backend actually served (the defining
// consistent-hashing property).
//
// The router never ships data: the operator runs, for each group g, one
// s3serve per assigned backend over that group's shard file (the LSM's
// immutable segments make those replicas cheap — copy the files). The
// Placement function is exported through cmd/s3router both to route
// queries and to print the table the operator deploys against.

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Placement assigns each of groups shard groups to the replicas
// highest-scoring backends, returning one replica set per group (group
// index = key-range order). Every backend URL must be unique; replicas
// must not exceed the backend count.
func Placement(backends []string, groups, replicas int) ([][]string, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("router: placement needs at least one backend")
	}
	if groups < 1 {
		return nil, fmt.Errorf("router: placement needs at least one group, got %d", groups)
	}
	if replicas < 1 || replicas > len(backends) {
		return nil, fmt.Errorf("router: %d replicas per group with %d backends", replicas, len(backends))
	}
	seen := make(map[string]bool, len(backends))
	for _, b := range backends {
		if seen[b] {
			return nil, fmt.Errorf("router: duplicate backend %q", b)
		}
		seen[b] = true
	}
	out := make([][]string, groups)
	type scored struct {
		score uint64
		url   string
	}
	scoredBackends := make([]scored, len(backends))
	for g := 0; g < groups; g++ {
		for i, b := range backends {
			scoredBackends[i] = scored{score: rendezvousScore(g, b), url: b}
		}
		sort.Slice(scoredBackends, func(a, b int) bool {
			if scoredBackends[a].score != scoredBackends[b].score {
				return scoredBackends[a].score > scoredBackends[b].score
			}
			return scoredBackends[a].url < scoredBackends[b].url
		})
		set := make([]string, replicas)
		for i := 0; i < replicas; i++ {
			set[i] = scoredBackends[i].url
		}
		out[g] = set
	}
	return out, nil
}

// rendezvousScore hashes one (group, backend) pair.
func rendezvousScore(group int, backend string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", group, backend)
	return h.Sum64()
}
