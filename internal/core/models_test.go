package core

import (
	"math"
	"math/rand"
	"testing"

	"s3cbcd/internal/stat"
)

func TestIsoLaplaceMass(t *testing.T) {
	m := IsoLaplace{D: 4, Sigma: 10}
	if got := m.ComponentMass(0, math.Inf(-1), math.Inf(1)); got != 1 {
		t.Fatalf("full mass %v", got)
	}
	// Heavier tails than the normal with the same sigma.
	normal := IsoNormal{D: 4, Sigma: 10}
	tailL := 1 - m.ComponentMass(0, -30, 30)
	tailN := 1 - normal.ComponentMass(0, -30, 30)
	if tailL <= tailN {
		t.Fatalf("Laplace tail %v not heavier than normal %v", tailL, tailN)
	}
	// Same variance: central masses comparable at one sigma.
	c1 := m.ComponentMass(0, -10, 10)
	if c1 < 0.5 || c1 > 0.95 {
		t.Fatalf("one-sigma mass %v implausible", c1)
	}
}

func TestIsoStudentTMass(t *testing.T) {
	m := IsoStudentT{D: 4, Sigma: 10, Nu: 4}
	if got := m.ComponentMass(0, math.Inf(-1), math.Inf(1)); math.Abs(got-1) > 1e-12 {
		t.Fatalf("full mass %v", got)
	}
	normal := IsoNormal{D: 4, Sigma: 10}
	tailT := 1 - m.ComponentMass(0, -30, 30)
	tailN := 1 - normal.ComponentMass(0, -30, 30)
	if tailT <= tailN {
		t.Fatalf("t tail %v not heavier than normal %v", tailT, tailN)
	}
	// Nu enormous: converges to the normal.
	big := IsoStudentT{D: 4, Sigma: 10, Nu: 1e7}
	for _, lim := range []float64{5, 15, 25} {
		a := big.ComponentMass(0, -lim, lim)
		b := normal.ComponentMass(0, -lim, lim)
		if math.Abs(a-b) > 1e-3 {
			t.Fatalf("t(1e7) mass %v vs normal %v at ±%v", a, b, lim)
		}
	}
}

func TestFitMixtureNormalRecoversComponents(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var samples []float64
	for i := 0; i < 6000; i++ {
		if r.Float64() < 0.8 {
			samples = append(samples, r.NormFloat64()*5)
		} else {
			samples = append(samples, r.NormFloat64()*40)
		}
	}
	m, err := FitMixtureNormal(8, samples)
	if err != nil {
		t.Fatal(err)
	}
	if m.D != 8 {
		t.Fatalf("dims %d", m.D)
	}
	if math.Abs(m.W-0.8) > 0.08 {
		t.Fatalf("core weight %v, want ~0.8", m.W)
	}
	if math.Abs(m.SigmaCore-5) > 1 {
		t.Fatalf("core sigma %v, want ~5", m.SigmaCore)
	}
	if math.Abs(m.SigmaWide-40) > 8 {
		t.Fatalf("wide sigma %v, want ~40", m.SigmaWide)
	}
	if got := m.ComponentMass(0, math.Inf(-1), math.Inf(1)); math.Abs(got-1) > 1e-12 {
		t.Fatalf("full mass %v", got)
	}
}

func TestFitMixtureNormalValidation(t *testing.T) {
	if _, err := FitMixtureNormal(4, []float64{1, 2}); err == nil {
		t.Fatal("too-few samples accepted")
	}
}

func TestEmpiricalModelMatchesSampleDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	samples := make([]float64, 4000)
	for i := range samples {
		samples[i] = r.NormFloat64() * 12
	}
	m, err := FitEmpirical(6, samples)
	if err != nil {
		t.Fatal(err)
	}
	normal := IsoNormal{D: 6, Sigma: 12}
	for _, lim := range []float64{6, 12, 24, 36} {
		e := m.ComponentMass(0, -lim, lim)
		n := normal.ComponentMass(0, -lim, lim)
		if math.Abs(e-n) > 0.03 {
			t.Fatalf("empirical mass %v vs true %v at ±%v", e, n, lim)
		}
	}
	if got := m.ComponentMass(0, math.Inf(-1), math.Inf(1)); got != 1 {
		t.Fatalf("full mass %v", got)
	}
	if m.ComponentMass(0, 5, -5) != 0 {
		t.Fatal("inverted interval nonzero")
	}
}

func TestFitEmpiricalValidation(t *testing.T) {
	if _, err := FitEmpirical(4, make([]float64, 5)); err == nil {
		t.Fatal("too-few samples accepted")
	}
}

// TestAlternativeModelsWorkInQueries runs a statistical query under each
// model family end to end.
func TestAlternativeModelsWorkInQueries(t *testing.T) {
	db := testDB(t, 8, 800, 31)
	ix, _ := NewIndex(db, 0)
	r := rand.New(rand.NewSource(32))
	q, src := distortedQuery(r, db, 10)

	samples := make([]float64, 3000)
	for i := range samples {
		samples[i] = r.NormFloat64() * 10
	}
	emp, err := FitEmpirical(8, samples)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := FitMixtureNormal(8, samples)
	if err != nil {
		t.Fatal(err)
	}
	models := []Model{
		IsoLaplace{D: 8, Sigma: 10},
		IsoStudentT{D: 8, Sigma: 10, Nu: 4},
		mix,
		emp,
	}
	for _, m := range models {
		matches, plan, err := ix.SearchStat(q, StatQuery{Alpha: 0.9, Model: m})
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		if plan.Mass < 0.9 {
			t.Fatalf("%T: plan mass %v", m, plan.Mass)
		}
		found := false
		for _, match := range matches {
			if match.Pos == src {
				found = true
			}
		}
		if !found {
			t.Logf("%T: source not retrieved (allowed occasionally)", m)
		}
	}
}

// TestEmpiricalCDFWindowMatchesFullSum pins the windowed O(log n + w) CDF
// evaluation to the exact full kernel sum: truncating the kernel at eight
// bandwidths must change nothing a float64 accumulation can detect at
// realistic sample counts.
func TestEmpiricalCDFWindowMatchesFullSum(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	samples := make([]float64, 1000)
	for i := range samples {
		// A lumpy, asymmetric distribution: mixture of two normals plus a
		// heavy point mass region, so the window boundaries land in both
		// dense and empty stretches of the sorted samples.
		switch i % 3 {
		case 0:
			samples[i] = r.NormFloat64() * 2
		case 1:
			samples[i] = 15 + r.NormFloat64()*0.5
		default:
			samples[i] = -8 + r.Float64()
		}
	}
	m, err := FitEmpirical(4, samples)
	if err != nil {
		t.Fatal(err)
	}
	fullSum := func(x float64) float64 {
		sum := 0.0
		for _, s := range m.sorted {
			sum += stat.NormalCDF(x, s, m.bw)
		}
		return sum / float64(len(m.sorted))
	}
	xs := []float64{-50, -8.5, -8, -7.2, 0, 3, 14.9, 15.5, 16, 40}
	for _, x := range xs {
		got := m.CDF(x)
		want := fullSum(x)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("CDF(%v) windowed %v, full sum %v (diff %v)", x, got, want, got-want)
		}
	}
	if m.CDF(math.Inf(-1)) != 0 || m.CDF(math.Inf(1)) != 1 {
		t.Fatal("infinite arguments lost their exact values")
	}
	// Monotone over a fine sweep spanning the window edges.
	prev := math.Inf(-1)
	for x := -60.0; x <= 60; x += 0.25 {
		c := m.CDF(x)
		if c < prev {
			t.Fatalf("CDF not monotone at %v: %v < %v", x, c, prev)
		}
		prev = c
	}
}
