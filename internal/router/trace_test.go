package router

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"s3cbcd/internal/obs"
	"s3cbcd/internal/store"
)

// traceTwoGroupFixture builds a 2-group, 1-replica fleet and a router
// over it, returning the router, its test server and a fingerprint
// present in the corpus.
func traceTwoGroupFixture(t *testing.T, opt Options) (*Router, *httptest.Server, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(faultSeed(t)))
	curve := testCurve(t)
	ordered := sortedRecords(store.MustBuild(curve, randomRecords(rng, 400)))
	chunks := splitGroups(rng, ordered, 2)
	groups := make([][]string, len(chunks))
	for gi, chunk := range chunks {
		groups[gi] = []string{apiServer(t, curve, chunk).URL}
	}
	opt.Groups = groups
	if opt.ProbeInterval == 0 {
		opt.ProbeInterval = -1
	}
	rt, rts := startRouter(t, opt)
	return rt, rts, ordered[rng.Intn(len(ordered))].FP
}

// findSpans returns every span named name anywhere in the forest.
func findSpans(spans []obs.SpanReport, name string) []obs.SpanReport {
	var out []obs.SpanReport
	for _, sp := range spans {
		if sp.Name == name {
			out = append(out, sp)
		}
		out = append(out, findSpans(sp.Children, name)...)
	}
	return out
}

// TestTraceRoundTripRouterTwoBackends is the tentpole acceptance check:
// a ?trace=1 stat query through the router over two backends comes back
// with one assembled tree — admission and merge spans, one group span
// per shard group, each holding a winning attempt annotated with its
// backend, and under each attempt the backend's own remote subtree with
// the plan/refine stage split — and /debug/traces serves it afterwards.
func TestTraceRoundTripRouterTwoBackends(t *testing.T) {
	rt, rts, fp := traceTwoGroupFixture(t, Options{})
	status, raw, _ := postBytes(t, rts.URL, "/search/statistical?trace=1",
		fmt.Sprintf(`{"fingerprint":%s,"alpha":0.8,"sigma":10}`, fpJSON(fp)))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	var resp struct {
		Trace obs.TraceReport `json:"trace"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	rep := resp.Trace
	if rep.Name != "s3router /search/statistical" {
		t.Fatalf("trace name %q", rep.Name)
	}
	if rep.TraceID == "" {
		t.Fatal("assembled trace lost its trace id")
	}
	if len(findSpans(rep.Spans, "admission")) != 1 || len(findSpans(rep.Spans, "merge")) != 1 {
		t.Fatalf("want one admission and one merge span, got spans %+v", rep.Spans)
	}
	groups := findSpans(rep.Spans, "group")
	if len(groups) != 2 {
		t.Fatalf("want 2 group spans, got %d", len(groups))
	}
	remotes := 0
	for _, g := range groups {
		attempts := findSpans(g.Children, "attempt")
		if len(attempts) != 1 {
			t.Fatalf("group %+v: want 1 attempt, got %d", g.Annotations, len(attempts))
		}
		a := attempts[0]
		if !strings.HasPrefix(a.Annotations["backend"], "http://") {
			t.Fatalf("attempt missing backend annotation: %+v", a.Annotations)
		}
		if a.Annotations["outcome"] != "ok" || a.Annotations["winner"] != "true" {
			t.Fatalf("attempt not a healthy winner: %+v", a.Annotations)
		}
		for _, c := range a.Children {
			if c.Service != "remote" {
				continue
			}
			remotes++
			if len(findSpans(c.Children, "plan")) != 1 || len(findSpans(c.Children, "refine")) != 1 {
				t.Fatalf("remote subtree lost the plan/refine split: %+v", c.Children)
			}
		}
	}
	if remotes != 2 {
		t.Fatalf("want a remote subtree under each attempt, got %d", remotes)
	}
	if rep.Blocks == 0 || rep.DescentNodes == 0 {
		t.Fatalf("remote work counters did not aggregate: %+v", rep)
	}

	// The assembled tree is also retrievable from the live store.
	ds := httptest.NewServer(rt.Traces().Handler())
	defer ds.Close()
	dresp, err := http.Get(ds.URL + "/?view=recent&n=4")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	draw, _ := io.ReadAll(dresp.Body)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces status %d: %s", dresp.StatusCode, draw)
	}
	var page struct {
		View   string            `json:"view"`
		Count  int               `json:"count"`
		Traces []obs.TraceReport `json:"traces"`
	}
	if err := json.Unmarshal(draw, &page); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, st := range page.Traces {
		if st.TraceID == rep.TraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("/debug/traces does not hold trace %s: %s", rep.TraceID, draw)
	}
}

// TestTraceHeaderPropagatedToBackends pins the wire protocol end to
// end: a client-supplied X-S3-Trace header forces backend tracing, and
// the assembled tree keeps the client's trace id.
func TestTraceHeaderPropagatedToBackends(t *testing.T) {
	_, rts, fp := traceTwoGroupFixture(t, Options{})
	sc := obs.SpanContext{TraceID: 0xABCDEF0123456789, SpanID: 7, Sampled: true, Depth: 1}
	req, err := http.NewRequest("POST", rts.URL+"/search/statistical",
		strings.NewReader(fmt.Sprintf(`{"fingerprint":%s,"alpha":0.8,"sigma":10}`, fpJSON(fp))))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, sc.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Trace obs.TraceReport `json:"trace"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace.TraceID != "abcdef0123456789" {
		t.Fatalf("router minted a new trace id %q for a propagated header", out.Trace.TraceID)
	}
	if got := len(findSpans(out.Trace.Spans, "attempt")); got != 2 {
		t.Fatalf("want 2 attempts under a header-forced trace, got %d", got)
	}
}

// TestTracedResponseBodyIdentical pins byte-identity: apart from the
// appended "trace" member, a traced response is byte-identical to the
// untraced one.
func TestTracedResponseBodyIdentical(t *testing.T) {
	_, rts, fp := traceTwoGroupFixture(t, Options{})
	body := fmt.Sprintf(`{"fingerprint":%s,"alpha":0.8,"sigma":10}`, fpJSON(fp))
	_, plain, _ := postBytes(t, rts.URL, "/search/statistical", body)
	_, traced, _ := postBytes(t, rts.URL, "/search/statistical?trace=1", body)
	var m map[string]json.RawMessage
	if err := json.Unmarshal(traced, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["trace"]; !ok {
		t.Fatalf("traced response has no trace member: %s", traced)
	}
	delete(m, "trace")
	stripped, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var ref map[string]json.RawMessage
	if err := json.Unmarshal(plain, &ref); err != nil {
		t.Fatal(err)
	}
	refRound, _ := json.Marshal(ref)
	if string(stripped) != string(refRound) {
		t.Fatalf("traced body diverged:\n  traced-sans-trace %s\n  untraced          %s", stripped, refRound)
	}
}

// TestRouterAttemptNoAllocsUntraced is the router-path twin of the
// engine's TestPlanStatNoAllocsUntraced: with tracing off (nil trace),
// the per-attempt tracing hooks on the scatter path must not allocate.
func TestRouterAttemptNoAllocsUntraced(t *testing.T) {
	var tr *obs.Trace
	be := &backend{url: "http://backend.invalid"}
	allocs := testing.AllocsPerRun(200, func() {
		g := traceGroupStart(tr, 1)
		a := traceAttemptStart(tr, g, be, true, 2)
		if _, ok := tr.Propagate(a); ok {
			t.Fatal("nil trace propagated")
		}
		traceAttemptEnd(tr, a, "ok", nil)
		traceSkip(tr, g, be, "budget")
		tr.EndSpan(g)
		tr.Annotate(a, "winner", "true")
	})
	if allocs != 0 {
		t.Fatalf("untraced attempt path allocates %.1f per run", allocs)
	}
}
