package cbcd

import (
	"testing"

	"s3cbcd/internal/vidsim"
)

func TestStreamMonitorMatchesBatchMonitor(t *testing.T) {
	refs := refCorpus(3, 200)
	det := buildDetector(t, refs, DefaultConfig())
	thr, err := CalibrateThreshold(det, []*vidsim.Sequence{
		vidsim.Generate(vidsim.DefaultConfig(8101), 250),
		vidsim.Generate(vidsim.DefaultConfig(8102), 250),
	})
	if err != nil {
		t.Fatal(err)
	}
	det.SetVoteThreshold(thr + thr/2)

	// Stream: filler, a copy of ref 2, filler.
	stream := &vidsim.Sequence{FPS: 25}
	stream.Frames = append(stream.Frames, vidsim.Generate(vidsim.DefaultConfig(8103), 120).Frames...)
	stream.Frames = append(stream.Frames, clip(refs[1], 20, 170).Frames...)
	stream.Frames = append(stream.Frames, vidsim.Generate(vidsim.DefaultConfig(8104), 100).Frames...)

	sm, err := NewStreamMonitor(det, 250, 125)
	if err != nil {
		t.Fatal(err)
	}
	// Feed in uneven chunks, as capture hardware would deliver.
	var dets []StreamDetection
	for i := 0; i < stream.Len(); {
		n := 37
		if i+n > stream.Len() {
			n = stream.Len() - i
		}
		out, err := sm.Feed(stream.Frames[i : i+n])
		if err != nil {
			t.Fatal(err)
		}
		dets = append(dets, out...)
		i += n
	}
	tail, err := sm.Close()
	if err != nil {
		t.Fatal(err)
	}
	dets = append(dets, tail...)

	found := false
	for _, d := range dets {
		if d.ID == 2 {
			found = true
			// The copy occupies [120, 270); the window must overlap it.
			if d.WindowEnd <= 120 || d.WindowStart >= 270 {
				t.Fatalf("detection window [%d,%d) misses the copy", d.WindowStart, d.WindowEnd)
			}
		} else {
			t.Errorf("spurious incremental detection: %+v", d)
		}
	}
	if !found {
		t.Fatal("incremental monitor missed the embedded copy")
	}
}

func TestStreamMonitorBoundedMemory(t *testing.T) {
	refs := refCorpus(1, 120)
	det := buildDetector(t, refs, DefaultConfig())
	sm, err := NewStreamMonitor(det, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	filler := vidsim.Generate(vidsim.DefaultConfig(8200), 600)
	for i := 0; i+60 <= filler.Len(); i += 60 {
		if _, err := sm.Feed(filler.Frames[i : i+60]); err != nil {
			t.Fatal(err)
		}
		if len(sm.frames) > 100+2*sm.margin+60 {
			t.Fatalf("buffer grew to %d frames", len(sm.frames))
		}
	}
}

func TestStreamMonitorValidation(t *testing.T) {
	refs := refCorpus(1, 100)
	det := buildDetector(t, refs, DefaultConfig())
	if _, err := NewStreamMonitor(det, 10, 20); err == nil {
		t.Fatal("hop > window accepted")
	}
	sm, err := NewStreamMonitor(det, 0, 0)
	if err != nil || sm.windowFrames != 250 || sm.hopFrames != 125 {
		t.Fatalf("defaults: %v %+v", err, sm)
	}
	// Close on an empty monitor.
	if dets, err := sm.Close(); err != nil || len(dets) != 0 {
		t.Fatalf("empty close: %v %v", dets, err)
	}
}
