package core

import (
	"math"
	"math/rand"
	"testing"

	"s3cbcd/internal/hilbert"
)

func TestMassCacheMatchesDirectComputation(t *testing.T) {
	m := IsoNormal{D: 4, Sigma: 9}
	q := []float64{10, 250, 128, 64}
	mc := newMassCache(4, 256)
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		dim := r.Intn(4)
		// Random dyadic interval of [0,256).
		level := r.Intn(9)
		e := uint32(256 >> uint(level))
		lo := uint32(r.Intn(1<<uint(level))) * e
		hi := lo + e
		got := mc.get(m, q, dim, lo, hi)
		a, b := float64(lo)-0.5, float64(hi)-0.5
		if lo == 0 {
			a = math.Inf(-1)
		}
		if hi == 256 {
			b = math.Inf(1)
		}
		want := m.ComponentMass(dim, a-q[dim], b-q[dim])
		if math.Abs(got-want) > 1e-15 {
			t.Fatalf("dim %d [%d,%d): got %v want %v", dim, lo, hi, got, want)
		}
		// Second lookup must hit the cache and agree.
		if again := mc.get(m, q, dim, lo, hi); again != got {
			t.Fatalf("cache changed value: %v vs %v", again, got)
		}
	}
}

// TestStatVisitorLeafMassMatchesBlockMass cross-checks the incremental
// product maintained by the visitor against the direct full-product
// computation for every surviving leaf.
func TestStatVisitorLeafMassMatchesBlockMass(t *testing.T) {
	curve := hilbert.MustNew(5, 6)
	m := IsoNormal{D: 5, Sigma: 7}
	q := []float64{3, 60, 31, 17, 45}
	mc := newMassCache(5, curve.SideLen())
	const threshold = 1e-6
	v := newStatVisitor(mc, m, q, threshold)

	type leaf struct {
		mass   float64
		lo, hi []uint32
	}
	var leaves []leaf
	check := &statCrossCheck{inner: v, onLeaf: func(b hilbert.Block, mass float64) {
		leaves = append(leaves, leaf{
			mass: mass,
			lo:   append([]uint32(nil), b.Lo...),
			hi:   append([]uint32(nil), b.Hi...),
		})
	}}
	curve.DescendSteps(12, check)
	if len(leaves) == 0 {
		t.Fatal("no leaves survived")
	}
	for i, lf := range leaves {
		want := blockMass(m, q, lf.lo, lf.hi, curve.SideLen(), 0)
		if math.Abs(lf.mass-want) > 1e-12*(1+want) {
			t.Fatalf("leaf %d: incremental %v, direct %v", i, lf.mass, want)
		}
		if want <= threshold {
			t.Fatalf("leaf %d below threshold survived: %v", i, want)
		}
	}
}

// statCrossCheck wraps a statVisitor to observe leaf masses.
type statCrossCheck struct {
	inner  *statVisitor
	onLeaf func(b hilbert.Block, mass float64)
}

func (c *statCrossCheck) Enter(dim int, lo, hi uint32) bool {
	return c.inner.Enter(dim, lo, hi)
}
func (c *statCrossCheck) Leave(dim int) { c.inner.Leave(dim) }
func (c *statCrossCheck) Leaf(b hilbert.Block) bool {
	c.onLeaf(b, c.inner.prod)
	return c.inner.Leaf(b)
}

// TestStatDescentCompleteness verifies that no block with mass above the
// threshold is missed: the visitor's selected intervals must contain
// every depth-p block whose directly computed mass exceeds t.
func TestStatDescentCompleteness(t *testing.T) {
	curve := hilbert.MustNew(4, 5)
	m := IsoNormal{D: 4, Sigma: 5}
	q := []float64{8, 24, 3, 30}
	const tthr = 1e-5
	pl := &planner{curve: curve, depth: 10}
	mc := newMassCache(4, curve.SideLen())
	ivs, _, total := pl.statDescent(newStatVisitor(mc, m, q, tthr), tthr)

	inIvs := func(b hilbert.Block) bool {
		for _, iv := range ivs {
			if iv.Start.Cmp(b.Start) <= 0 && b.End.Cmp(iv.End) <= 0 {
				return true
			}
		}
		return false
	}
	sum := 0.0
	curve.Descend(10, nil, func(b hilbert.Block) bool {
		mass := blockMass(m, q, b.Lo, b.Hi, curve.SideLen(), 0)
		if mass > tthr && !inIvs(b) {
			t.Fatalf("block [%v,%v) mass %v above threshold missed", b.Start, b.End, mass)
		}
		if mass > tthr {
			sum += mass
		}
		return true
	})
	if math.Abs(sum-total) > 1e-9 {
		t.Fatalf("visitor total %v, brute force %v", total, sum)
	}
}

// TestRangeVisitorAgreesWithBruteForce checks the incremental distance
// bookkeeping: the set of selected blocks equals the blocks whose
// rectangle is within eps of the query.
func TestRangeVisitorAgreesWithBruteForce(t *testing.T) {
	curve := hilbert.MustNew(4, 5)
	q := []float64{4, 28, 16, 9}
	const eps = 11.0
	pl := &planner{curve: curve, depth: 11}
	plan := pl.planRangeFloat(q, eps)

	inPlan := func(b hilbert.Block) bool {
		for _, iv := range plan.Intervals {
			if iv.Start.Cmp(b.Start) <= 0 && b.End.Cmp(iv.End) <= 0 {
				return true
			}
		}
		return false
	}
	curve.Descend(11, nil, func(b hilbert.Block) bool {
		s := 0.0
		for j := range b.Lo {
			s += dimDistSq(q[j], b.Lo[j], b.Hi[j])
		}
		want := s <= eps*eps
		if want != inPlan(b) {
			t.Fatalf("block [%v,%v): brute %v, visitor %v (distSq %v)", b.Start, b.End, want, inPlan(b), s)
		}
		return true
	})
}

func TestDimDistSq(t *testing.T) {
	if got := dimDistSq(5, 3, 8); got != 0 {
		t.Errorf("inside: %v", got)
	}
	if got := dimDistSq(1, 3, 8); got != 4 {
		t.Errorf("below: %v", got)
	}
	if got := dimDistSq(9.5, 3, 8); got != 6.25 {
		t.Errorf("above: %v (nearest integer point is hi-1=7)", got)
	}
}
