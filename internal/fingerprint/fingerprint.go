// Package fingerprint implements the local video fingerprints of Section
// III of the paper: key-frame detection on the Gaussian-filtered intensity
// of motion, Harris interest point detection in key-frames, and a 20-
// dimensional local characterization made of four normalized 5-D
// differential sub-fingerprints (Gaussian-derivative jets up to order 2)
// computed at four spatio-temporal positions around each interest point,
// quantized to one byte per component.
package fingerprint

import (
	"fmt"
	"math"
)

// D is the fingerprint dimension: 4 sub-fingerprints of 5 components.
const D = 20

// SubDim is the dimension of one differential sub-fingerprint
// (∂I/∂x, ∂I/∂y, ∂²I/∂x∂y, ∂²I/∂x², ∂²I/∂y²).
const SubDim = 5

// Fingerprint is a quantized local descriptor in [0,255]^20.
type Fingerprint [D]byte

// Slice returns the fingerprint as a byte slice (a view over a copy-safe
// array value copy; mutations do not affect the receiver).
func (fp Fingerprint) Slice() []byte { return fp[:] }

// Float64s widens the fingerprint to float64 coordinates.
func (fp Fingerprint) Float64s() []float64 {
	out := make([]float64, D)
	for i, b := range fp {
		out[i] = float64(b)
	}
	return out
}

// DistanceSq returns the squared L2 distance between two fingerprints in
// quantized space.
func (fp Fingerprint) DistanceSq(o Fingerprint) float64 {
	s := 0.0
	for i := range fp {
		d := float64(fp[i]) - float64(o[i])
		s += d * d
	}
	return s
}

// Distance returns the L2 distance between two fingerprints.
func (fp Fingerprint) Distance(o Fingerprint) float64 {
	return math.Sqrt(fp.DistanceSq(o))
}

// Quantize maps a normalized component in [-1, 1] to a byte; values
// outside the range are clamped.
func Quantize(v float64) byte {
	q := math.Round((v + 1) / 2 * 255)
	if q < 0 {
		q = 0
	}
	if q > 255 {
		q = 255
	}
	return byte(q)
}

// Point is a detected interest point with its Harris response.
type Point struct {
	X, Y     float64
	Response float64
}

// Local is one extracted local fingerprint: the descriptor plus the
// spatio-temporal position it was computed at. TC is the time code (frame
// index of the key-frame).
type Local struct {
	FP   Fingerprint
	TC   uint32
	X, Y float64
}

// Config collects the extraction parameters. Zero values select the
// defaults documented on each field.
type Config struct {
	// KeyframeSigma is the std-dev (in frames) of the Gaussian applied to
	// the intensity-of-motion signal before extrema detection. Default 2.
	KeyframeSigma float64
	// GradientSigma is the smoothing scale for Harris gradients. Default 1.
	GradientSigma float64
	// IntegrationSigma smooths the Harris structure tensor. Default 2.
	IntegrationSigma float64
	// HarrisK is the trace weight in R = det - k tr². Default 0.04.
	HarrisK float64
	// MaxPoints caps interest points per key-frame. Default 20.
	MaxPoints int
	// ResponseFrac discards points whose response is below this fraction
	// of the frame's maximum response. Default 0.01.
	ResponseFrac float64
	// Border excludes points closer than this to the frame edge. Default 6.
	Border int
	// JetSigma is the derivative scale of the characterization. Default
	// 2.5: procedural frames have sharper edges than broadcast MPEG1, so
	// a larger scale is needed for the descriptor to tolerate the paper's
	// 1-pixel detector imprecision.
	JetSigma float64
	// Offset is the spatial half-offset (px) of the four characterization
	// positions around the point. Default 4.
	Offset float64
	// TimeOffset is the temporal half-offset (frames) of the four
	// positions. Default 2.
	TimeOffset int
}

func (c Config) withDefaults() Config {
	if c.KeyframeSigma == 0 {
		c.KeyframeSigma = 2
	}
	if c.GradientSigma == 0 {
		c.GradientSigma = 1
	}
	if c.IntegrationSigma == 0 {
		c.IntegrationSigma = 2
	}
	if c.HarrisK == 0 {
		c.HarrisK = 0.04
	}
	if c.MaxPoints == 0 {
		c.MaxPoints = 20
	}
	if c.ResponseFrac == 0 {
		c.ResponseFrac = 0.01
	}
	if c.Border == 0 {
		c.Border = 6
	}
	if c.JetSigma == 0 {
		c.JetSigma = 2.5
	}
	if c.Offset == 0 {
		c.Offset = 4
	}
	if c.TimeOffset == 0 {
		c.TimeOffset = 2
	}
	return c
}

// DefaultConfig returns the parameter set used throughout the
// reproduction's experiments.
func DefaultConfig() Config { return Config{}.withDefaults() }

func (c Config) validate() error {
	if c.MaxPoints < 1 || c.Offset <= 0 || c.JetSigma <= 0 {
		return fmt.Errorf("fingerprint: invalid config %+v", c)
	}
	return nil
}
