// Command s3index builds a reference fingerprint database from a
// procedurally generated video corpus (the reproduction's stand-in for a
// TV archive; see DESIGN.md §5) and writes it to an S3DB file.
//
// The corpus is fully determined by -corpus-seed / -corpus-videos /
// -frames, so s3detect and s3monitor can regenerate the same videos to
// cut candidate clips from.
//
// Usage:
//
//	s3index -out archive.s3db -corpus-videos 16 -frames 300
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	s3 "s3cbcd"
	"s3cbcd/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("s3index: ")
	var (
		out        = flag.String("out", "archive.s3db", "output database file")
		videos     = flag.Int("corpus-videos", 12, "number of reference videos to generate")
		frames     = flag.Int("frames", 250, "frames per reference video")
		seed       = flag.Int64("corpus-seed", 1, "corpus generation seed")
		distract   = flag.Int("distractors", 0, "extra synthetic fingerprints to enlarge the DB")
		sectionBit = flag.Int("section-bits", 12, "granularity of the file's curve-section table")
	)
	flag.Parse()

	in := s3.NewVideoIndexer(s3.CBCDConfig{})
	t0 := time.Now()
	for i := 0; i < *videos; i++ {
		v := s3.GenerateVideo(*seed+int64(i), *frames)
		n := in.AddSequence(uint32(i+1), v)
		fmt.Printf("video %2d: %d fingerprints\n", i+1, n)
	}
	if *distract > 0 {
		recs := experiments.FPCorpus(*distract, *seed^0xD157)
		for i := range recs {
			recs[i].ID += 1_000_000 // keep distractors out of the video id range
		}
		in.AddRecords(recs)
		fmt.Printf("added %d distractor fingerprints\n", *distract)
	}
	det, err := in.Build()
	if err != nil {
		log.Fatal(err)
	}
	if err := s3.SaveDetectorDB(det, *out, *sectionBit); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d fingerprints from %d videos in %v -> %s\n",
		det.Index().DB().Len(), *videos, time.Since(t0).Round(time.Millisecond), *out)
}
