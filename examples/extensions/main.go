// Extensions: the future work of the paper's conclusion, implemented.
// This example (a) fits and compares distortion models beyond the
// single-σ normal, (b) enables the spatially extended vote and shows the
// fitted spatial scale of a resized copy, and (c) contrasts k-NN with the
// statistical query.
//
// Run with: go run ./examples/extensions
package main

import (
	"fmt"
	"log"

	s3 "s3cbcd"
	"s3cbcd/internal/vidsim"
)

func main() {
	log.SetFlags(0)

	// (a) Distortion models: measure a harsh transformation and fit the
	// model families.
	sample := []*s3.Video{s3.GenerateVideo(300, 150), s3.GenerateVideo(301, 150)}
	tf := vidsim.Compose{vidsim.Resize{Scale: 0.85}, vidsim.Noise{Sigma: 8, Seed: 1}}
	est, err := s3.EstimateDistortion(sample, tf, s3.ExtractConfig{})
	if err != nil {
		log.Fatal(err)
	}
	samples := s3.CollectDistortionSamples(sample, tf, s3.ExtractConfig{})
	mix, err := s3.FitMixtureNormal(s3.FingerprintDims, samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transformation %s:\n", tf.Name())
	fmt.Printf("  single-sigma normal: sigma = %.1f\n", est.Sigma)
	fmt.Printf("  mixture: %.0f%% core at sigma %.1f + %.0f%% outliers at sigma %.1f\n",
		mix.W*100, mix.SigmaCore, (1-mix.W)*100, mix.SigmaWide)

	// (b) Spatially extended voting on a resized copy.
	refs := make([]*s3.Video, 4)
	cfg := s3.CBCDConfig{Workers: 4}
	cfg.Vote.SpatialTolerance = 6
	in := s3.NewVideoIndexer(cfg)
	for i := range refs {
		refs[i] = s3.GenerateVideo(int64(400+i), 200)
		in.AddSequence(uint32(i+1), refs[i])
	}
	det, err := in.Build()
	if err != nil {
		log.Fatal(err)
	}
	clip := &s3.Video{FPS: 25, Frames: refs[2].Frames[30:150]}
	resized := vidsim.ApplySeq(vidsim.Resize{Scale: 0.8}, clip)
	dets, err := det.DetectClip(resized)
	if err != nil {
		log.Fatal(err)
	}
	if len(dets) > 0 {
		d := dets[0]
		fmt.Printf("\nresized copy of video %d detected: offset %.0f frames,\n", d.ID, d.Offset)
		fmt.Printf("  %d/%d votes spatially coherent, fitted spatial scale %.2f (true: 0.80)\n",
			d.Votes, d.TemporalVotes, d.ScaleX)
	}

	// (c) k-NN vs statistical query around a stored fingerprint.
	locals := s3.ExtractFingerprints(refs[0], s3.ExtractConfig{})
	q := locals[0].FP[:]
	idx, err := s3.BuildIndex(s3.FingerprintDims, detRecords(det), s3.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	knn, stats, err := idx.KNNSearch(q, 10, 0)
	if err != nil {
		log.Fatal(err)
	}
	sm, _, err := idx.StatSearch(q, s3.StatQuery{Alpha: 0.8, Model: s3.IsoNormal{D: s3.FingerprintDims, Sigma: 20}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nk-NN (k=10, exact): nearest dist %.1f, %d records scanned\n", knn[0].Dist, stats.Scanned)
	fmt.Printf("statistical query (alpha=80%%): %d fingerprints in the region —\n", len(sm))
	fmt.Printf("  the answer size adapts to the local duplication, k-NN's cannot.\n")
}

// detRecords re-extracts the detector's records for a standalone index.
// (Real applications keep the records; this keeps the example short.)
func detRecords(det *s3.Detector) []s3.Record {
	db := det.Index().DB()
	recs := make([]s3.Record, db.Len())
	for i := range recs {
		fp := make([]byte, db.Dims())
		copy(fp, db.FP(i))
		recs[i] = s3.Record{FP: fp, ID: db.ID(i), TC: db.TC(i), X: db.X(i), Y: db.Y(i)}
	}
	return recs
}
