// Package bitkey implements fixed-width 256-bit unsigned integers used as
// Hilbert curve indices. A D-dimensional, K-th order Hilbert curve needs
// K*D bits per index; the paper's configuration (D=20 one-byte components,
// K=8) needs 160 bits, so a fixed four-word representation covers every
// configuration this module supports (K*D <= 256) without allocation.
//
// Keys compare and sort like big-endian unsigned integers. Word 0 is the
// most significant word.
package bitkey

import (
	"fmt"
	"math/bits"
)

// Words is the number of 64-bit words in a Key.
const Words = 4

// MaxBits is the largest index width representable by a Key.
const MaxBits = Words * 64

// Key is a 256-bit unsigned integer. Key{} is zero. Word 0 holds the most
// significant 64 bits so that lexicographic comparison of the array equals
// numeric comparison.
type Key [Words]uint64

// Zero is the zero key.
var Zero Key

// FromUint64 returns a key holding v in the least significant word.
func FromUint64(v uint64) Key {
	var k Key
	k[Words-1] = v
	return k
}

// Uint64 returns the least significant 64 bits of k.
func (k Key) Uint64() uint64 { return k[Words-1] }

// Cmp compares k and o numerically, returning -1, 0, or +1.
func (k Key) Cmp(o Key) int {
	for i := 0; i < Words; i++ {
		switch {
		case k[i] < o[i]:
			return -1
		case k[i] > o[i]:
			return 1
		}
	}
	return 0
}

// Less reports whether k < o.
func (k Key) Less(o Key) bool { return k.Cmp(o) < 0 }

// IsZero reports whether k == 0.
func (k Key) IsZero() bool { return k == Zero }

// Shl returns k << n. Shifting by MaxBits or more yields zero.
func (k Key) Shl(n uint) Key {
	if n >= MaxBits {
		return Zero
	}
	word := int(n / 64)
	off := n % 64
	var r Key
	for i := 0; i < Words; i++ {
		src := i + word
		if src < Words {
			r[i] = k[src] << off
			if off != 0 && src+1 < Words {
				r[i] |= k[src+1] >> (64 - off)
			}
		}
	}
	return r
}

// Shr returns k >> n. Shifting by MaxBits or more yields zero.
func (k Key) Shr(n uint) Key {
	if n >= MaxBits {
		return Zero
	}
	word := int(n / 64)
	off := n % 64
	var r Key
	for i := Words - 1; i >= 0; i-- {
		src := i - word
		if src >= 0 {
			r[i] = k[src] >> off
			if off != 0 && src-1 >= 0 {
				r[i] |= k[src-1] << (64 - off)
			}
		}
	}
	return r
}

// Or returns k | o.
func (k Key) Or(o Key) Key {
	var r Key
	for i := range r {
		r[i] = k[i] | o[i]
	}
	return r
}

// And returns k & o.
func (k Key) And(o Key) Key {
	var r Key
	for i := range r {
		r[i] = k[i] & o[i]
	}
	return r
}

// Xor returns k ^ o.
func (k Key) Xor(o Key) Key {
	var r Key
	for i := range r {
		r[i] = k[i] ^ o[i]
	}
	return r
}

// Add returns k + o, wrapping on overflow.
func (k Key) Add(o Key) Key {
	var r Key
	var carry uint64
	for i := Words - 1; i >= 0; i-- {
		s, c1 := bits.Add64(k[i], o[i], carry)
		r[i] = s
		carry = c1
	}
	return r
}

// Sub returns k - o, wrapping on underflow.
func (k Key) Sub(o Key) Key {
	var r Key
	var borrow uint64
	for i := Words - 1; i >= 0; i-- {
		d, b1 := bits.Sub64(k[i], o[i], borrow)
		r[i] = d
		borrow = b1
	}
	return r
}

// AddUint64 returns k + v.
func (k Key) AddUint64(v uint64) Key { return k.Add(FromUint64(v)) }

// Inc returns k + 1.
func (k Key) Inc() Key { return k.AddUint64(1) }

// Bit returns bit i of k, where bit 0 is the least significant bit.
// It panics if i is out of range.
func (k Key) Bit(i uint) uint64 {
	if i >= MaxBits {
		panic(fmt.Sprintf("bitkey: bit index %d out of range", i))
	}
	word := Words - 1 - int(i/64)
	return (k[word] >> (i % 64)) & 1
}

// SetBit returns k with bit i set to v (0 or 1). Bit 0 is the least
// significant bit.
func (k Key) SetBit(i uint, v uint64) Key {
	if i >= MaxBits {
		panic(fmt.Sprintf("bitkey: bit index %d out of range", i))
	}
	word := Words - 1 - int(i/64)
	mask := uint64(1) << (i % 64)
	if v&1 == 1 {
		k[word] |= mask
	} else {
		k[word] &^= mask
	}
	return k
}

// OrLowBits returns k | v where v occupies the least significant 64 bits.
func (k Key) OrLowBits(v uint64) Key {
	k[Words-1] |= v
	return k
}

// BitLen returns the number of bits required to represent k (0 for zero).
func (k Key) BitLen() int {
	for i := 0; i < Words; i++ {
		if k[i] != 0 {
			return (Words-i)*64 - bits.LeadingZeros64(k[i])
		}
	}
	return 0
}

// String renders k as a hexadecimal number without leading zeros.
func (k Key) String() string {
	if k.IsZero() {
		return "0x0"
	}
	s := "0x"
	started := false
	for i := 0; i < Words; i++ {
		if !started {
			if k[i] == 0 {
				continue
			}
			s += fmt.Sprintf("%x", k[i])
			started = true
		} else {
			s += fmt.Sprintf("%016x", k[i])
		}
	}
	return s
}

// PutBytes writes the low n bytes of k into dst in big-endian order.
// It panics if len(dst) < n or n > 32.
func (k Key) PutBytes(dst []byte, n int) {
	if n > MaxBits/8 {
		panic("bitkey: PutBytes width exceeds key size")
	}
	_ = dst[n-1]
	for i := 0; i < n; i++ {
		byteIdx := n - 1 - i // 0 = least significant
		word := Words - 1 - byteIdx/8
		shift := uint(byteIdx%8) * 8
		dst[i] = byte(k[word] >> shift)
	}
}

// FromBytes reads an n-byte big-endian integer from src.
// It panics if len(src) < n or n > 32.
func FromBytes(src []byte, n int) Key {
	if n > MaxBits/8 {
		panic("bitkey: FromBytes width exceeds key size")
	}
	_ = src[n-1]
	var k Key
	for i := 0; i < n; i++ {
		byteIdx := n - 1 - i
		word := Words - 1 - byteIdx/8
		shift := uint(byteIdx%8) * 8
		k[word] |= uint64(src[i]) << shift
	}
	return k
}
