package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"s3cbcd/internal/hilbert"
)

// v4TestFile writes a random database as a format-4 file carrying both a
// sketch and the quantized codec, returning its path and source DB.
func v4TestFile(t *testing.T, seed int64, n, sectionBits int) (string, *DB) {
	t.Helper()
	curve := hilbert.MustNew(6, 4)
	db := MustBuild(curve, randRecords(rand.New(rand.NewSource(seed)), curve, n))
	path := filepath.Join(t.TempDir(), "v4.s3db")
	if err := db.WriteFileOpts(path, WriteOptions{
		SectionBits: sectionBits, Shards: 3, Sketch: true, Codec: true,
	}); err != nil {
		t.Fatal(err)
	}
	return path, db
}

// TestFileV4RoundTrip: a v4 file opens with its sketch and codec intact,
// and all three record areas — exact, lean, packed codes — agree with
// the source database record by record.
func TestFileV4RoundTrip(t *testing.T) {
	path, db := v4TestFile(t, 51, 180, 5)
	fl, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if fl.Version() != 4 {
		t.Fatalf("version %d, want 4", fl.Version())
	}
	if fl.Sketch() == nil || !fl.HasCodec() || fl.Quantizer() == nil {
		t.Fatal("v4 file lost its sketch or codec at open")
	}
	if fl.ShardStarts() == nil {
		t.Fatal("v4 file lost its shard manifest")
	}
	if fl.SketchBytes() != fl.Sketch().EncodedSize() {
		t.Fatalf("SketchBytes %d != EncodedSize %d", fl.SketchBytes(), fl.Sketch().EncodedSize())
	}
	// Exact area.
	ch, err := fl.LoadRecords(0, db.Len())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < db.Len(); i++ {
		if ch.Key(i).Cmp(db.Key(i)) != 0 || string(ch.FP(i)) != string(db.FP(i)) ||
			ch.ID(i) != db.ID(i) || ch.TC(i) != db.TC(i) || ch.X(i) != db.X(i) || ch.Y(i) != db.Y(i) {
			t.Fatalf("exact record %d differs", i)
		}
	}
	// Lean area: same columns minus fingerprints.
	lean, err := fl.LoadLean(0, db.Len())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < db.Len(); i++ {
		if lean.Key(i).Cmp(db.Key(i)) != 0 || lean.ID(i) != db.ID(i) ||
			lean.TC(i) != db.TC(i) || lean.X(i) != db.X(i) || lean.Y(i) != db.Y(i) {
			t.Fatalf("lean record %d differs", i)
		}
	}
	// Code area: stored codes must equal re-encoding the exact records.
	qz := fl.Quantizer()
	stored, err := fl.loadCodes(0, db.Len())
	if err != nil {
		t.Fatal(err)
	}
	cb := qz.CodeBytes(db.Dims())
	want := make([]byte, cb)
	for i := 0; i < db.Len(); i++ {
		for j := range want {
			want[j] = 0
		}
		qz.encode(db.FP(i), want)
		if string(stored[i*cb:(i+1)*cb]) != string(want) {
			t.Fatalf("code row %d differs from re-encoded fingerprint", i)
		}
	}
	// Single-record fallback reads.
	for _, i := range []int{0, 1, db.Len() / 2, db.Len() - 1} {
		rv, err := fl.ReadRecordView(i)
		if err != nil {
			t.Fatal(err)
		}
		if rv.Pos != i || rv.Key.Cmp(db.Key(i)) != 0 || string(rv.FP) != string(db.FP(i)) ||
			rv.ID != db.ID(i) || rv.TC != db.TC(i) || rv.X != db.X(i) || rv.Y != db.Y(i) {
			t.Fatalf("ReadRecordView(%d) differs", i)
		}
	}
}

// TestFileV4LoadAllMatches: bulk reload of a v4 file (used by the live
// recovery and compaction paths) ignores the extra areas correctly.
func TestFileV4LoadAllMatches(t *testing.T) {
	path, db := v4TestFile(t, 53, 90, 4)
	fl, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	got, err := fl.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("LoadAll %d records, want %d", got.Len(), db.Len())
	}
	for i := 0; i < db.Len(); i++ {
		if got.Key(i).Cmp(db.Key(i)) != 0 || string(got.FP(i)) != string(db.FP(i)) {
			t.Fatalf("record %d differs after LoadAll", i)
		}
	}
}

// TestFileV4TruncationFailsAtOpen: every prefix of a v4 file must be
// rejected at open — the sketch, codec, lean and code areas are all
// probed before any read path can trip over them (the PR 6 record-area
// probe discipline extended to the new sections).
func TestFileV4TruncationFailsAtOpen(t *testing.T) {
	path, _ := v4TestFile(t, 57, 120, 5)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int64{int64(len(full)) - 1, int64(len(full)) - 7}
	for f := 1; f < 16; f++ {
		cuts = append(cuts, int64(len(full)*f/16))
	}
	for _, cut := range cuts {
		p := filepath.Join(t.TempDir(), "cut.s3db")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if fl, err := Open(p); err == nil {
			fl.Close()
			t.Fatalf("opening a v4 file truncated to %d of %d bytes succeeded", cut, len(full))
		}
	}
}

// TestFileV4UnknownFlagRejected: a flags word carrying bits this package
// does not understand must fail at open, not be silently ignored — an
// unknown section would shift every offset after it.
func TestFileV4UnknownFlagRejected(t *testing.T) {
	path, _ := v4TestFile(t, 59, 40, 4)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[28] |= 1 << 6 // flags word sits right after the 28-byte header
	p := filepath.Join(t.TempDir(), "flag.s3db")
	if err := os.WriteFile(p, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if fl, err := Open(p); err == nil {
		fl.Close()
		t.Fatal("open accepted an unknown v4 flag bit")
	}
}

// TestColdFileLeanMatchesDB: the lean visit path delivers exactly the
// records VisitIntervals would, minus fingerprints, across cache shapes.
func TestColdFileLeanMatchesDB(t *testing.T) {
	path, db := v4TestFile(t, 61, 300, 6)
	r := rand.New(rand.NewSource(62))
	for _, budget := range []int64{-1, 2048, 1 << 20} {
		var cache *BlockCache
		if budget >= 0 {
			cache = NewBlockCache(budget)
		}
		ctr := NewColdCounters()
		cf, err := OpenColdOptsFS(OSFS, path, ColdOptions{
			Cache: cache, BlockRecords: 16, Sketch: true, Codec: true, Counters: ctr,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !cf.Codec() || cf.Sketch() == nil {
			cf.Close()
			t.Fatal("cold open dropped the sketch or codec")
		}
		for trial := 0; trial < 25; trial++ {
			ivs := randIntervals(r, db.Curve(), 1+r.Intn(5))
			want := collectVisits(t, db, ivs)
			var got []flatRecord
			if err := cf.VisitIntervalsLean(ivs, func(rv RecordView) bool {
				if rv.FP != nil {
					t.Fatal("lean visit delivered a fingerprint")
				}
				got = append(got, flatRecord{pos: rv.Pos, key: rv.Key,
					id: rv.ID, tc: rv.TC, x: rv.X, y: rv.Y})
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("budget %d trial %d: lean visited %d, db %d", budget, trial, len(got), len(want))
			}
			for i := range want {
				w := want[i]
				w.fp = ""
				if got[i] != w {
					t.Fatalf("budget %d trial %d: lean record %d differs", budget, trial, i)
				}
			}
		}
		if ctr.BytesSaved.Value() <= 0 {
			t.Fatalf("budget %d: lean visits saved no bytes", budget)
		}
		cf.Close()
	}
}

// TestColdFileFilteredMatchesDB: the quantize-filtered visit path must
// deliver a superset of the in-radius records (conservative filter) with
// exact fingerprints, and combined with the caller's exact predicate
// produce byte-identical answers to the resident scan.
func TestColdFileFilteredMatchesDB(t *testing.T) {
	path, db := v4TestFile(t, 67, 400, 6)
	r := rand.New(rand.NewSource(68))
	for _, budget := range []int64{-1, 4096, 1 << 20} {
		var cache *BlockCache
		if budget >= 0 {
			cache = NewBlockCache(budget)
		}
		ctr := NewColdCounters()
		cf, err := OpenColdOptsFS(OSFS, path, ColdOptions{
			Cache: cache, BlockRecords: 8, Sketch: true, Codec: true, Counters: ctr,
		})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 30; trial++ {
			ivs := randIntervals(r, db.Curve(), 1+r.Intn(4))
			qf := make([]float64, db.Dims())
			for j := range qf {
				qf[j] = r.Float64() * 16
			}
			// Radii small and large: small ones exercise rejection+fallback,
			// large ones the dense-survivor exact-block path.
			boundSq := []float64{4, 50, 400}[trial%3]

			within := map[int]flatRecord{}
			if err := db.VisitIntervals(ivs, func(rv RecordView) bool {
				if distSqBytes(qf, rv.FP) <= boundSq {
					within[rv.Pos] = flatRecord{pos: rv.Pos, key: rv.Key, fp: string(rv.FP),
						id: rv.ID, tc: rv.TC, x: rv.X, y: rv.Y}
				}
				return true
			}); err != nil {
				t.Fatal(err)
			}

			seen := map[int]bool{}
			if err := cf.VisitIntervalsFiltered(ivs, qf, boundSq, func(rv RecordView) bool {
				seen[rv.Pos] = true
				if w, ok := within[rv.Pos]; ok {
					got := flatRecord{pos: rv.Pos, key: rv.Key, fp: string(rv.FP),
						id: rv.ID, tc: rv.TC, x: rv.X, y: rv.Y}
					if got != w {
						t.Fatalf("budget %d trial %d: filtered record %d differs from resident", budget, trial, rv.Pos)
					}
				} else if distSqBytes(qf, rv.FP) <= boundSq {
					t.Fatalf("budget %d trial %d: filtered visited in-radius record %d the resident scan missed", budget, trial, rv.Pos)
				}
				return true
			}); err != nil {
				t.Fatal(err)
			}
			for pos := range within {
				if !seen[pos] {
					t.Fatalf("budget %d trial %d: filter dropped in-radius record %d", budget, trial, pos)
				}
			}
		}
		if ctr.QuantizedRejects.Value() == 0 {
			t.Fatalf("budget %d: the quantized filter never rejected a candidate", budget)
		}
		cf.Close()
	}
}

// TestColdFileSketchSkipsBlocks: sparse single-block interval sets must
// hit the block-level sketch skip — zero visits, accounted bytes saved —
// while never skipping an occupied block (checked against the DB).
func TestColdFileSketchSkipsBlocks(t *testing.T) {
	path, db := v4TestFile(t, 71, 260, 6)
	r := rand.New(rand.NewSource(72))
	ctr := NewColdCounters()
	cf, err := OpenColdOptsFS(OSFS, path, ColdOptions{
		BlockRecords: 8, Sketch: true, Codec: true, Counters: ctr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	for trial := 0; trial < 150; trial++ {
		ivs := randIntervals(r, db.Curve(), 1)
		want := collectVisits(t, db, ivs)
		got := collectVisits(t, cf, ivs)
		if len(got) != len(want) {
			t.Fatalf("trial %d: sketch-guarded visit returned %d records, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: record %d differs", trial, i)
			}
		}
	}
	if ctr.SkippedBlocks.Value() == 0 {
		t.Fatal("150 narrow interval sets never skipped a block")
	}
	if ctr.BytesSaved.Value() <= 0 {
		t.Fatal("block skips saved no bytes")
	}
}
