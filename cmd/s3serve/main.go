// Command s3serve exposes an S3DB reference database over HTTP with a
// JSON search API (statistical, batch statistical, range and k-NN
// queries), the deployment mode where fingerprint extraction happens near
// the capture hardware and the archive index is a central service.
//
// Usage:
//
//	s3serve -db archive.s3db -addr :8080 -shards 8
//
//	curl localhost:8080/healthz
//	curl localhost:8080/stats
//	curl localhost:8080/metrics
//	curl -X POST localhost:8080/search/statistical \
//	     -d '{"fingerprint":[...20 ints...],"alpha":0.8,"sigma":20}'
//	curl -X POST localhost:8080/search/statistical/batch \
//	     -d '{"fingerprints":[[...],[...]],"alpha":0.8,"sigma":20}'
//
// With -live DIR the server runs a live segmented index persisted in DIR
// instead of a read-only database file: ingest and delete endpoints are
// enabled and the index reopens to its last committed snapshot.
//
//	s3serve -live /var/lib/s3/live -dims 20 -addr :8080
//
//	curl -X POST localhost:8080/ingest \
//	     -d '{"records":[{"fingerprint":[...],"id":7,"tc":120}]}'
//	curl -X DELETE localhost:8080/video/7
//
// Live-mode persistence failures are retried in the background with
// capped exponential backoff (-compact-backoff sets the base delay);
// after -compact-retries consecutive failures the index serves degraded
// read-only — writes answer 503 with Retry-After, /healthz reports
// status "degraded" with the last persistence error — until a retry
// commits.
//
// Observability: GET /metrics serves Prometheus text covering the
// engine or live index, store I/O (every byte and fsync crossing the
// filesystem seam) and per-route HTTP latency/status series. A search
// with ?trace=1 returns a stage-level execution trace, and -trace-rate
// samples a fraction of all searches the same way. -debug-addr starts a
// second, operator-only listener with net/http/pprof and a /metrics
// alias — keep it off the service port. Logs are structured
// (log/slog); -log-json switches them to JSON.
//
// The server carries read/write timeouts and drains in-flight requests
// before exiting on SIGINT/SIGTERM. Shutdown is router-friendly: the
// first -drain-grace of it only advertises "draining" on /healthz while
// the listener keeps serving, so a health-probing coordinator
// (cmd/s3router) moves traffic to sibling replicas before any
// connection is refused.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"s3cbcd/internal/core"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/httpapi"
	"s3cbcd/internal/obs"
	"s3cbcd/internal/store"
)

func main() {
	var (
		dbPath         = flag.String("db", "archive.s3db", "database file (static mode)")
		liveDir        = flag.String("live", "", "live index directory (enables ingest/delete; overrides -db)")
		dims           = flag.Int("dims", 20, "fingerprint dimension (live mode)")
		order          = flag.Int("order", 8, "bits per component (live mode)")
		addr           = flag.String("addr", ":8080", "listen address")
		depth          = flag.Int("depth", 0, "partition depth p (0 = auto)")
		shards         = flag.Int("shards", 0, "keyspace shards (0 = file manifest or 1)")
		workers        = flag.Int("workers", 0, "engine worker bound (0 = GOMAXPROCS)")
		maxInFlight    = flag.Int("max-inflight", 0, "concurrent searches bound (0 = default, <0 = unlimited)")
		compactBackoff = flag.Duration("compact-backoff", 0,
			"base delay between persistence/compaction retries, live mode (0 = default)")
		compactRetries = flag.Int("compact-retries", 0,
			"consecutive persistence failures before degraded read-only mode, live mode (0 = default, <0 = never degrade)")
		coldRecords = flag.Int("cold-records", 0,
			"serve sealed segments of at least this many records from disk through the block cache, live mode (0 = all resident)")
		cacheMB = flag.Int("cache-mb", 64,
			"block cache budget in MiB for cold segments (with -cold-records)")
		sketch = flag.Bool("sketch", true,
			"build per-segment sketches and skip segments a plan provably misses, live mode")
		coldCodec = flag.Bool("cold-codec", true,
			"write quantized record codecs into cold-eligible segments and reject candidates on quantized bounds, live mode")
		planCache = flag.Bool("plan-cache", true,
			"cache filtering-step plans for repeated/near-identical queries (answers are identical; ?nocache=1 bypasses per request)")
		planCacheEntries = flag.Int("plan-cache-entries", 0,
			"plan cache capacity in plans (0 = default)")
		autotune = flag.Bool("autotune", false,
			"re-fit the cost model T(p) online from observed plan/refine timings and adapt planner parameters")
		autotuneInterval = flag.Int("autotune-interval", 0,
			"queries between cost-model refits (0 = default)")
		autotuneDepth = flag.Bool("autotune-depth", true,
			"let the auto-tuner move the partition depth p (static mode; live indexes keep their shared depth)")
		traceRate = flag.Float64("trace-rate", 0,
			"fraction of searches carrying a stage-level trace (0 = only ?trace=1 requests)")
		traceSeed  = flag.Int64("trace-seed", 0, "trace sampler seed (reproducible sampling)")
		traceStore = flag.Int("trace-store", 0,
			"finished traces kept in memory for /debug/traces (0 = default)")
		traceSlow = flag.Duration("trace-slow", 0,
			"log traced searches at least this slow, span tree attached (0 = off)")
		debugAddr = flag.String("debug-addr", "",
			"operator listener with /debug/pprof/*, /debug/traces and /metrics (empty = disabled)")
		logJSON      = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		readTimeout  = flag.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "HTTP write timeout")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown drain timeout")
		drainGrace   = flag.Duration("drain-grace", 3*time.Second,
			"on shutdown, advertise draining on /healthz for this long before closing the listener (0 = immediate)")
	)
	flag.Parse()

	logger := newLogger(*logJSON)

	// Every durable byte flows through the counting FS, so /metrics
	// reports store I/O in both modes.
	cfs := store.NewCountingFS(store.OSFS)
	reg := obs.NewRegistry()
	cfs.RegisterMetrics(reg)
	tuneOpt := core.AutoTuneOptions{
		Enabled:   *autotune,
		Interval:  *autotuneInterval,
		TuneDepth: *autotuneDepth,
	}
	opt := httpapi.Options{
		MaxInFlight:      *maxInFlight,
		Metrics:          reg,
		TraceRate:        *traceRate,
		TraceSeed:        *traceSeed,
		TraceStoreSize:   *traceStore,
		SlowQuery:        *traceSlow,
		Logger:           logger,
		PlanCache:        *planCache,
		PlanCacheEntries: *planCacheEntries,
		AutoTune:         tuneOpt,
	}

	var srv *httpapi.Server
	if *liveDir != "" {
		curve, err := hilbert.New(*dims, *order)
		if err != nil {
			fatal(logger, "invalid geometry", err)
		}
		lopt := core.LiveOptions{
			Depth:        *depth,
			Workers:      *workers,
			FS:           cfs,
			RetryBackoff: *compactBackoff,
			RetryLimit:   *compactRetries,
			Logger:       logger,
			ColdRecords:  *coldRecords,
			Sketch:       *sketch,
			ColdCodec:    *coldCodec,

			PlanCache:        *planCache,
			PlanCacheEntries: *planCacheEntries,
			AutoTune:         tuneOpt,
		}
		if *coldRecords > 0 {
			cache := store.NewBlockCache(int64(*cacheMB) << 20)
			cache.RegisterMetrics(reg)
			lopt.Cache = cache
		}
		li, err := core.OpenLiveIndex(curve, *liveDir, lopt)
		if err != nil {
			fatal(logger, "open live index", err)
		}
		defer func() {
			if err := li.Close(); err != nil {
				logger.Error("close live index", "err", err)
			}
		}()
		srv = httpapi.NewLive(li, opt)
		st := li.Stats()
		logger.Info("serving live index", "dir", *liveDir, "records", st.LiveRecords,
			"dims", *dims, "gen", st.Gen, "segments", st.Segments,
			"coldSegments", st.ColdSegments, "cacheBudgetBytes", st.Cache.BudgetBytes,
			"sketchSegments", st.SketchSegments, "codecSegments", st.CodecSegments,
			"degraded", st.Degraded, "planCache", *planCache, "autotune", *autotune)
	} else {
		fl, err := store.OpenFS(cfs, *dbPath)
		if err != nil {
			fatal(logger, "open database", err)
		}
		db, err := fl.LoadAll()
		if err != nil {
			fl.Close()
			fatal(logger, "load database", err)
		}
		nShards := *shards
		if starts := fl.ShardStarts(); nShards == 0 && starts != nil {
			nShards = len(starts) - 1
		}
		fl.Close()
		opt.Depth, opt.Shards, opt.Workers = *depth, nShards, *workers
		srv, err = httpapi.New(db, opt)
		if err != nil {
			fatal(logger, "build index", err)
		}
		logger.Info("serving static database", "path", *dbPath, "records", db.Len(),
			"dims", db.Dims(), "shards", srv.Engine().Shards(),
			"planCache", *planCache, "autotune", *autotune)
	}

	if *debugAddr != "" {
		go serveDebug(logger, *debugAddr, reg, srv.TraceStore())
	}

	hs := &http.Server{
		Addr:         *addr,
		Handler:      srv,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)

	select {
	case err := <-errCh:
		fatal(logger, "serve", err)
	case <-ctx.Done():
		stop()
		// Flip /healthz to draining and hold the listener open for the
		// grace period: a health-aware router (cmd/s3router) observes the
		// drain on its next probe and moves traffic to sibling replicas
		// before connections start being refused, instead of discovering
		// the shutdown through a burst of failed requests.
		srv.SetDraining(true)
		logger.Info("signal received, draining", "grace", *drainGrace, "timeout", *drainTimeout)
		if *drainGrace > 0 {
			time.Sleep(*drainGrace)
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			fatal(logger, "shutdown", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(logger, "serve", err)
		}
	}
}

func newLogger(asJSON bool) *slog.Logger {
	var h slog.Handler
	if asJSON {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	return slog.New(h).With("service", "s3serve")
}

func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "err", err)
	os.Exit(1)
}

// serveDebug runs the operator-only listener: pprof profiles, the
// trace store (recent/slowest/errored finished traces as JSON) and a
// /metrics alias. It registers pprof on its own mux — never on
// http.DefaultServeMux — so profiling endpoints exist only where this
// listener is reachable.
func serveDebug(logger *slog.Logger, addr string, reg *obs.Registry, traces *obs.TraceStore) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/traces", traces.Handler())
	mux.Handle("/metrics", reg.Handler())
	logger.Info("debug listener", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("debug listener failed", "err", err)
	}
}
