package core

// Property test of the live index's central claim: whatever the split of
// a record set across ingest batches, whatever the interleaving of
// deletes, seals and compactions, every query answers exactly — same
// matches, same order — as a monolithic store.Build over the currently
// surviving records. testing/quick drives randomized schedules; each
// schedule is replayed against a trivial slice model to compute the
// surviving set.

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/store"
)

const (
	liveTestDims  = 4
	liveTestOrder = 5 // side 32: small alphabet, frequent key collisions
	liveTestDepth = 10
)

func liveTestCurve() *hilbert.Curve { return hilbert.MustNew(liveTestDims, liveTestOrder) }

func randLiveRecord(r *rand.Rand) store.Record {
	fp := make([]byte, liveTestDims)
	for j := range fp {
		fp[j] = byte(r.Intn(32))
	}
	return store.Record{
		FP: fp,
		ID: uint32(r.Intn(6)), // few ids: deletes hit, re-ingests collide
		TC: uint32(r.Intn(64)),
		X:  uint16(r.Intn(4)),
		Y:  uint16(r.Intn(4)),
	}
}

// stripPos clears Match.Pos: it is a global record index in monolithic
// results but segment-local in live ones, so equivalence is over the
// remaining fields.
func stripPos(ms []Match) []Match {
	out := make([]Match, len(ms))
	for i, m := range ms {
		m.Pos = 0
		out[i] = m
	}
	return out
}

func matchesEqual(a, b []Match) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(stripPos(a), stripPos(b))
}

// knnEquivalent checks k-NN equivalence: identical distance sequences,
// and identical matches strictly below the k-th distance (at the k-th
// distance itself, ties may resolve to different — equally correct —
// records depending on scan order).
func knnEquivalent(ref, live []Match) bool {
	if len(ref) != len(live) {
		return false
	}
	if len(ref) == 0 {
		return true
	}
	for i := range ref {
		if ref[i].Dist != live[i].Dist {
			return false
		}
	}
	kth := ref[len(ref)-1].Dist
	below := func(ms []Match) map[Match]int {
		set := make(map[Match]int)
		for _, m := range ms {
			if m.Dist < kth {
				m.Pos = 0
				set[m]++
			}
		}
		return set
	}
	return reflect.DeepEqual(below(ref), below(live))
}

// checkLiveEquivalence compares the live index against a monolithic
// rebuild of the surviving records on a battery of statistical, range and
// k-NN queries.
func checkLiveEquivalence(t *testing.T, li *LiveIndex, surviving []store.Record, r *rand.Rand, label string) bool {
	t.Helper()
	ctx := context.Background()
	if got, want := li.Len(), len(surviving); got != want {
		t.Errorf("%s: live index holds %d records, model has %d", label, got, want)
		return false
	}
	refDB, err := store.Build(liveTestCurve(), surviving)
	if err != nil {
		t.Fatal(err)
	}
	refIx, err := NewIndex(refDB, liveTestDepth)
	if err != nil {
		t.Fatal(err)
	}
	sq := StatQuery{Alpha: 0.9, Model: IsoNormal{D: liveTestDims, Sigma: 2.5}}
	var queries [][]byte
	for i := 0; i < 6; i++ {
		queries = append(queries, randLiveRecord(r).FP)
	}
	for i := 0; i < 3 && len(surviving) > 0; i++ {
		// Queries at stored points exercise dense result sets.
		queries = append(queries, surviving[r.Intn(len(surviving))].FP)
	}
	for qi, q := range queries {
		wantStat, wantPlan, err := refIx.SearchStat(q, sq)
		if err != nil {
			t.Fatal(err)
		}
		gotStat, gotPlan, err := li.SearchStat(ctx, q, sq)
		if err != nil {
			t.Fatal(err)
		}
		if !matchesEqual(wantStat, gotStat) {
			t.Errorf("%s: query %d: statistical results differ (%d vs %d matches)",
				label, qi, len(wantStat), len(gotStat))
			return false
		}
		if wantPlan.Mass != gotPlan.Mass || wantPlan.Blocks != gotPlan.Blocks {
			t.Errorf("%s: query %d: plans differ", label, qi)
			return false
		}

		eps := 2 + 6*r.Float64()
		wantRange, _, err := refIx.SearchRange(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		gotRange, _, err := li.SearchRange(ctx, q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !matchesEqual(wantRange, gotRange) {
			t.Errorf("%s: query %d: range results differ (%d vs %d matches)",
				label, qi, len(wantRange), len(gotRange))
			return false
		}

		for _, k := range []int{1, 4, len(surviving) + 3} {
			wantKNN, _, err := refIx.SearchKNN(q, k, 0)
			if err != nil {
				t.Fatal(err)
			}
			gotKNN, _, err := li.SearchKNN(ctx, q, k, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !knnEquivalent(wantKNN, gotKNN) {
				t.Errorf("%s: query %d: %d-NN results differ", label, qi, k)
				return false
			}
		}
	}
	// Batch path answers like the sequential path.
	gotBatch, err := li.SearchStatBatch(ctx, queries, sq)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		want, _, err := li.SearchStat(ctx, q, sq)
		if err != nil {
			t.Fatal(err)
		}
		if !matchesEqual(want, gotBatch[qi]) {
			t.Errorf("%s: batch result %d differs from sequential", label, qi)
			return false
		}
	}
	return true
}

func TestLiveIndexEquivalentToRebuildQuick(t *testing.T) {
	scenario := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dir := ""
		if seed%2 == 0 {
			dir = t.TempDir()
		}
		li, err := OpenLiveIndex(liveTestCurve(), dir, LiveOptions{
			Depth:           liveTestDepth,
			MemtableRecords: 1 + r.Intn(40), // tiny: force frequent seals
			CompactSegments: 2 + r.Intn(3),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer li.Close()

		var model []store.Record // the surviving set, replayed trivially
		nOps := 4 + r.Intn(8)
		checkpoint := r.Intn(nOps)
		for op := 0; op < nOps; op++ {
			if r.Intn(10) < 7 {
				batch := make([]store.Record, r.Intn(60))
				for i := range batch {
					batch[i] = randLiveRecord(r)
				}
				if err := li.Ingest(batch); err != nil {
					t.Fatal(err)
				}
				model = append(model, batch...)
			} else {
				id := uint32(r.Intn(6))
				if err := li.DeleteVideo(id); err != nil {
					t.Fatal(err)
				}
				kept := model[:0:0]
				for _, rec := range model {
					if rec.ID != id {
						kept = append(kept, rec)
					}
				}
				model = kept
			}
			// Mid-schedule check: memtable live, seals and background
			// compactions possibly in flight.
			if op == checkpoint && !checkLiveEquivalence(t, li, model, r, "mid-schedule") {
				return false
			}
		}
		if !checkLiveEquivalence(t, li, model, r, "after schedule") {
			return false
		}
		if err := li.Compact(); err != nil {
			t.Fatal(err)
		}
		if !checkLiveEquivalence(t, li, model, r, "after compaction") {
			return false
		}
		if dir != "" {
			// Close seals the memtable; reopening must recover the full
			// committed state.
			if err := li.Close(); err != nil {
				t.Fatal(err)
			}
			reopened, err := OpenLiveIndex(liveTestCurve(), dir, LiveOptions{Depth: liveTestDepth})
			if err != nil {
				t.Fatal(err)
			}
			defer reopened.Close()
			if !checkLiveEquivalence(t, reopened, model, r, "after reopen") {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(scenario, cfg); err != nil {
		t.Fatal(err)
	}
}

// A deleted video re-ingested afterwards must be visible again — the
// delete withdraws only the records stored at delete time.
func TestLiveIndexReingestAfterDelete(t *testing.T) {
	li, err := OpenLiveIndex(liveTestCurve(), "", LiveOptions{Depth: liveTestDepth, MemtableRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer li.Close()
	rec := store.Record{FP: []byte{1, 2, 3, 4}, ID: 7, TC: 100}
	if err := li.Ingest([]store.Record{rec}); err != nil {
		t.Fatal(err)
	}
	if err := li.DeleteVideo(7); err != nil {
		t.Fatal(err)
	}
	if li.Len() != 0 {
		t.Fatalf("after delete, %d records remain", li.Len())
	}
	rec2 := rec
	rec2.TC = 200
	if err := li.Ingest([]store.Record{rec2}); err != nil {
		t.Fatal(err)
	}
	ms, _, err := li.SearchRange(context.Background(), rec.FP, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].TC != 200 {
		t.Fatalf("re-ingested record not found: %+v", ms)
	}
	if err := li.Compact(); err != nil {
		t.Fatal(err)
	}
	if li.Len() != 1 {
		t.Fatalf("compaction lost the re-ingested record (len %d)", li.Len())
	}
}
