package router

// Per-backend robustness state: the health classification written by
// the prober, the circuit breaker in front of the request path, the
// windowed latency estimator hedging keys on, and the bounded in-flight
// budget. One backend value is shared across every group it serves —
// its breaker and budget protect the process, not the placement entry.

import (
	"sync"
	"sync/atomic"
	"time"

	"s3cbcd/internal/obs"
)

// health is the prober's three-way classification of a backend.
type health int32

const (
	// healthHealthy: /healthz answered status "ok".
	healthHealthy health = iota
	// healthDegraded: the backend answered but advertised degraded
	// read-only mode (PR 4's ErrDegraded surface) or a draining
	// shutdown. It still serves searches — a routing de-preference, not
	// a user-visible error.
	healthDegraded
	// healthDown: the probe could not reach the backend or got a
	// non-200.
	healthDown
)

func (h health) String() string {
	switch h {
	case healthHealthy:
		return "healthy"
	case healthDegraded:
		return "degraded"
	default:
		return "down"
	}
}

// backend is one s3serve process the router can send requests to.
type backend struct {
	url string

	state   atomic.Int32 // health; optimistic healthy until the first probe
	records atomic.Int64 // record count from the last successful probe

	lat *obs.Window // recent request latencies (seconds), feeds hedging
	br  *breaker

	inflight atomic.Int64 // requests currently against this backend
	budget   int64        // <= 0: unbounded

	// Per-backend metric series (family constructed once in metrics.go).
	reqs       *obs.Counter
	failures   *obs.Counter
	reqSeconds *obs.Histogram
}

func (b *backend) health() health     { return health(b.state.Load()) }
func (b *backend) setHealth(h health) { b.state.Store(int32(h)) }

// tryAcquire claims one in-flight slot, refusing over budget.
func (b *backend) tryAcquire() bool {
	if b.budget <= 0 {
		b.inflight.Add(1)
		return true
	}
	for {
		n := b.inflight.Load()
		if n >= b.budget {
			return false
		}
		if b.inflight.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

func (b *backend) release() { b.inflight.Add(-1) }

// breakerState is the circuit breaker's three-state machine.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// breaker is a consecutive-failure circuit breaker: threshold failures
// in a row open it, a cooldown later one half-open probe request is let
// through, and that probe's outcome either closes the breaker or
// re-opens it for another cooldown. It keeps a known-bad backend from
// eating a retry attempt (and its timeout) on every request while
// still discovering recovery quickly.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	failures  int // consecutive
	openedAt  time.Time
	threshold int           // <= 0: breaker disabled (always closed)
	cooldown  time.Duration // open -> half-open delay
	now       func() time.Time

	trips *obs.Counter // shared s3_router_breaker_trips_total
}

func newBreaker(threshold int, cooldown time.Duration, trips *obs.Counter) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now, trips: trips}
}

// allow reports whether an attempt may be sent now. An open breaker
// past its cooldown transitions to half-open and admits exactly one
// probe; calls while half-open are refused until that probe reports.
// probe is true when this admission IS that half-open probe: the
// caller must guarantee exactly one of success, failure or cancelProbe
// eventually runs for it, or the breaker stays half-open forever and
// the backend is blackholed.
func (b *breaker) allow() (ok, probe bool) {
	if b.threshold <= 0 {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true, true
		}
		return false, false
	default: // half-open: the probe is in flight
		return false, false
	}
}

// available reports, without side effects, whether allow would admit an
// attempt — the replica-ordering predicate.
func (b *breaker) available() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		return b.now().Sub(b.openedAt) >= b.cooldown
	default:
		return false
	}
}

// success reports a completed request: the breaker closes and the
// failure streak resets.
func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.state = breakerClosed
	b.failures = 0
	b.mu.Unlock()
}

// failure reports a failed request. A half-open probe failure re-opens
// immediately; a closed breaker opens at the threshold.
func (b *breaker) failure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
	case breakerClosed:
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			if b.trips != nil {
				b.trips.Inc()
			}
		}
	}
}

// cancelProbe returns an unresolved half-open probe slot. The probe
// attempt was abandoned — canceled because a sibling won the race or
// the request budget expired — so it proved nothing about the backend
// either way. The breaker re-opens keeping its original trip time: the
// already-elapsed cooldown still counts, so the very next allow() may
// probe again instead of blackholing the backend behind a fresh
// cooldown it did nothing to earn.
func (b *breaker) cancelProbe() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
	}
	b.mu.Unlock()
}

// snapshot returns the current state for /healthz and the state gauge.
func (b *breaker) snapshot() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
