package asciiplot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	out := Render(Config{Width: 20, Height: 6, Title: "demo", XLabel: "x", YLabel: "y"},
		Series{Name: "line", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
	)
	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("marker missing")
	}
	if !strings.Contains(out, "* line") {
		t.Fatalf("legend missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// title + 6 rows + axis + labels + xy label + legend
	if len(lines) < 10 {
		t.Fatalf("unexpected layout:\n%s", out)
	}
	// Monotone increasing data: the marker on the first plot row must be
	// to the right of the marker on the last plot row.
	first := strings.IndexRune(lines[1], '*')
	last := strings.IndexRune(lines[6], '*')
	if first <= last {
		t.Fatalf("increasing series not rendered increasing (cols %d vs %d):\n%s", first, last, out)
	}
}

func TestRenderLogAxes(t *testing.T) {
	out := Render(Config{Width: 30, Height: 8, LogX: true, LogY: true},
		Series{Name: "pow", X: []float64{1, 10, 100, 1000}, Y: []float64{1, 10, 100, 1000}},
	)
	if !strings.Contains(out, "1000") {
		t.Fatalf("log axis labels missing:\n%s", out)
	}
	// Log-log of a power law is a straight diagonal: markers in 4 distinct
	// columns at increasing height.
	rows := strings.Split(out, "\n")
	cols := []int{}
	for _, r := range rows {
		if !strings.Contains(r, "|") {
			continue // axis/legend lines
		}
		if i := strings.IndexRune(r, '*'); i >= 0 {
			cols = append(cols, i)
		}
	}
	if len(cols) < 3 {
		t.Fatalf("too few markers:\n%s", out)
	}
	for i := 1; i < len(cols); i++ {
		if cols[i] >= cols[i-1] {
			t.Fatalf("log-log diagonal broken:\n%s", out)
		}
	}
}

func TestRenderDropsBadPoints(t *testing.T) {
	out := Render(Config{Width: 10, Height: 4, LogY: true},
		Series{X: []float64{1, 2, 3}, Y: []float64{0, -5, 10}}, // only one valid
	)
	if strings.Count(out, "*") != 1 {
		t.Fatalf("expected exactly one marker:\n%s", out)
	}
	if got := Render(Config{}, Series{}); !strings.Contains(got, "no plottable points") {
		t.Fatalf("empty render: %q", got)
	}
}

func TestRenderMultipleSeriesMarkers(t *testing.T) {
	out := Render(Config{Width: 16, Height: 5},
		Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}},
		Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}},
	)
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("distinct markers missing:\n%s", out)
	}
}
