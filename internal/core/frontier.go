package core

import (
	"slices"

	"s3cbcd/internal/hilbert"
)

// This file implements the incremental frontier planner. The legacy
// threshold search (planStatLegacyCached) pays for every evaluation of
// P_sup(t) with a full pruned descent from the root — up to
// maxThresholdIters of them per query. But the block sets the descent
// selects are monotone in t: lowering t only expands nodes an earlier
// descent pruned, and raising t only discards already-discovered leaves.
// So one materialized descent suffices. The first evaluation records
// every pruned node with its mass and enough resumable state to continue
// below it; evaluations at lower thresholds pop and expand exactly the
// frontier nodes whose mass now clears the threshold; evaluations at
// higher thresholds touch no curve state at all — they filter the
// accumulated leaf list by stored block mass.
//
// The planner is careful to be bit-identical to the legacy search, not
// just equivalent: every pruned node stores its running product, its
// per-dimension factors are recovered bitwise from the mass cache on
// expansion (each one was computed through the cache when the node was
// reached), so a resumed expansion replays exactly the float operations a
// from-scratch descent would have performed below that node, and leaf
// masses are summed in curve order exactly as a single descent would have
// emitted them.

// frontierLeaf is one discovered depth-p block.
type frontierLeaf struct {
	iv   hilbert.Interval
	mass float64 // the block's own mass (the visitor product at the leaf)
	// gate is the minimum running product along the root path, including
	// the leaf itself. A single descent at threshold t emits this leaf
	// iff every product on the path exceeds t, i.e. iff gate > t. For a
	// numerically monotone model gate == mass; carrying it separately
	// keeps the planner exact even when rounding makes a child product a
	// few ulps above its parent's.
	gate float64
}

// frontierEntry is a pruned node awaiting possible expansion.
type frontierEntry struct {
	node hilbert.Node
	mass float64 // the node's running product (its prune decision value)
	gate float64 // min running product along the root path, incl. the node
	off  int     // offset of the node's bounds in the bounds arena; -1 = root
}

// frontierState is the reusable per-worker state of the incremental
// planner: the discovered leaves (curve order), the frontier of pruned
// nodes (unordered — every evaluation expands ALL entries above its
// threshold, so no priority structure earns its keep), arena storage for
// node bounds, and the live visitor bookkeeping used during expansions.
// All of it resets by reslicing, so a pooled frontierState plans query
// after query without allocating.
type frontierState struct {
	curve *hilbert.Curve
	fd    *hilbert.FrontierDescent
	root  hilbert.Node

	// Per-query bindings.
	depth int
	mc    *massCache
	m     Model
	q     []float64

	// Live visitor state during one expansion.
	t       float64
	factors []float64
	prod    float64
	gate    float64
	stack   []frontierFrame
	nodes   int // Enter calls this query (descent nodes visited)

	// Prune handoff between Enter (which rejects) and the pruned
	// callback (which materializes the rejected child).
	pruneMass float64

	leaves   []frontierLeaf // discovered leaves, sorted by iv.Start
	scratch  []frontierLeaf // merge double-buffer
	pending  []frontierLeaf // leaves emitted by the current eval's expansions
	frontier []frontierEntry
	bounds   []uint32 // arena backing frontier node Lo/Hi
	ivs      []hilbert.Interval

	// alias makes intervalsAt skip its defensive copy: the produced
	// plan's Intervals then share s.ivs and are overwritten by the next
	// query that borrows this state. Only Engine.PlanStat sets it — the
	// one caller whose contract documents the aliasing — keeping the
	// untraced pooled plan path allocation-free.
	alias bool

	// pruned is prunedCB bound once at construction (see newFrontierState).
	pruned func(hilbert.Node)
}

type frontierFrame struct {
	dim    int
	factor float64
	prod   float64
	gate   float64
}

func newFrontierState(curve *hilbert.Curve) *frontierState {
	s := &frontierState{
		curve:   curve,
		fd:      curve.NewFrontierDescent(),
		root:    curve.RootNode(),
		factors: make([]float64, curve.Dims()),
	}
	// Bind the pruned callback once: a method value created at the call
	// site would allocate on every node expansion.
	s.pruned = s.prunedCB
	return s
}

// begin binds the state to one query and seeds the frontier with the
// root node (mass 1, all factors 1 — the state a fresh descent starts
// in).
func (s *frontierState) begin(depth int, m Model, q []float64, mc *massCache) {
	s.depth, s.m, s.q, s.mc = depth, m, q, mc
	s.leaves = s.leaves[:0]
	s.scratch = s.scratch[:0]
	s.pending = s.pending[:0]
	s.frontier = s.frontier[:0]
	s.bounds = s.bounds[:0]
	s.ivs = s.ivs[:0]
	s.nodes = 0
	s.frontier = append(s.frontier, frontierEntry{node: s.root, mass: 1, gate: 1, off: -1})
}

// expandTo lowers the materialized frontier to threshold t: every
// frontier node whose mass exceeds t is removed and its subtree descended
// (at threshold t) exactly as the legacy search would have, emitting new
// leaves and appending newly pruned nodes. Thresholds at or above every
// stored mass make this a pure scan — the traversal-free fast path of
// evaluations that raise t. Entries appended mid-scan were just pruned at
// t, so the swap-remove sweep never expands them again this round.
func (s *frontierState) expandTo(t float64) {
	s.pending = s.pending[:0]
	s.t = t
	side := s.curve.SideLen()
	for i := 0; i < len(s.frontier); {
		if s.frontier[i].mass <= t {
			i++
			continue
		}
		e := s.frontier[i]
		last := len(s.frontier) - 1
		s.frontier[i] = s.frontier[last]
		s.frontier = s.frontier[:last]
		node := e.node
		// Position the visitor exactly where a from-scratch descent
		// would be on entering this node: dims the descent has split
		// carry the mass-cache factor of their current bound (the cache
		// returns the bitwise value computed when the node was reached),
		// untouched dims carry the root factor 1.
		if e.off >= 0 {
			d := len(s.factors)
			node.Lo = s.bounds[e.off : e.off+d : e.off+d]
			node.Hi = s.bounds[e.off+d : e.off+2*d : e.off+2*d]
			for j := range s.factors {
				if node.Lo[j] == 0 && node.Hi[j] == side {
					s.factors[j] = 1
				} else {
					s.factors[j] = s.mc.get(s.m, s.q, j, node.Lo[j], node.Hi[j])
				}
			}
		} else {
			for j := range s.factors {
				s.factors[j] = 1
			}
		}
		s.prod, s.gate = e.mass, e.gate
		s.stack = s.stack[:0]
		s.fd.Descend(node, s.depth, s, s.pruned)
	}
	if len(s.pending) > 0 {
		s.mergePending()
	}
}

// Enter implements hilbert.StepVisitor with the statistical filtering
// rule of statVisitor, additionally tracking the path-minimum product.
func (s *frontierState) Enter(dim int, lo, hi uint32) bool {
	s.nodes++
	f := s.mc.get(s.m, s.q, dim, lo, hi)
	np := s.prod / s.factors[dim] * f
	if np <= s.t {
		s.pruneMass = np
		return false
	}
	s.stack = append(s.stack, frontierFrame{dim: dim, factor: s.factors[dim], prod: s.prod, gate: s.gate})
	s.factors[dim] = f
	s.prod = np
	if np < s.gate {
		s.gate = np
	}
	return true
}

// Leave implements hilbert.StepVisitor.
func (s *frontierState) Leave(int) {
	fr := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	s.factors[fr.dim] = fr.factor
	s.prod = fr.prod
	s.gate = fr.gate
}

// Leaf implements hilbert.StepVisitor.
func (s *frontierState) Leaf(b hilbert.Block) bool {
	s.pending = append(s.pending, frontierLeaf{
		iv:   hilbert.Interval{Start: b.Start, End: b.End},
		mass: s.prod,
		gate: s.gate,
	})
	return true
}

// prunedCB materializes a rejected child into the frontier. Nodes whose
// mass cannot clear even the floor threshold are dropped: the search
// never evaluates below tFloor, so they are unreachable.
func (s *frontierState) prunedCB(n hilbert.Node) {
	if s.pruneMass <= tFloor {
		return
	}
	off := len(s.bounds)
	s.bounds = append(s.bounds, n.Lo...)
	s.bounds = append(s.bounds, n.Hi...)
	gate := s.gate
	if s.pruneMass < gate {
		gate = s.pruneMass
	}
	n.Lo, n.Hi = nil, nil // re-pointed at the arena on expansion
	s.frontier = append(s.frontier, frontierEntry{node: n, mass: s.pruneMass, gate: gate, off: off})
}

// mergePending folds the current eval's expansion leaves into the sorted
// leaf list. Pending holds one sorted run per expanded node, runs
// concatenated in pop (mass) order; every run covers a curve interval
// disjoint from every other run and every existing leaf (dyadic
// intervals nest or are disjoint, and the frontier partitions the
// unexplored remainder), so sorting pending and zipping it with the leaf
// list restores global curve order.
func (s *frontierState) mergePending() {
	slices.SortFunc(s.pending, func(a, b frontierLeaf) int { return a.iv.Start.Cmp(b.iv.Start) })
	merged := s.scratch[:0]
	li := 0
	for pi := range s.pending {
		start := s.pending[pi].iv.Start
		for li < len(s.leaves) && s.leaves[li].iv.Start.Less(start) {
			merged = append(merged, s.leaves[li])
			li++
		}
		merged = append(merged, s.pending[pi])
	}
	merged = append(merged, s.leaves[li:]...)
	s.leaves, s.scratch = merged, s.leaves[:0]
}

// selectAt filters the discovered leaves at threshold t without touching
// the curve: exactly the leaves a fresh descent at t would emit, in the
// same order, summed in the same order.
func (s *frontierState) selectAt(t float64) (blocks int, mass float64) {
	for i := range s.leaves {
		if s.leaves[i].gate > t {
			blocks++
			mass += s.leaves[i].mass
		}
	}
	return blocks, mass
}

// intervalsAt returns the merged curve intervals of the selection at t.
// Unless s.alias is set the result is freshly allocated: plans outlive
// the pooled state.
func (s *frontierState) intervalsAt(t float64) []hilbert.Interval {
	s.ivs = s.ivs[:0]
	for i := range s.leaves {
		if s.leaves[i].gate > t {
			s.ivs = append(s.ivs, s.leaves[i].iv)
		}
	}
	merged := hilbert.MergeIntervals(s.ivs)
	if len(merged) == 0 {
		return nil // matches the legacy planner's empty result exactly
	}
	if s.alias {
		return merged
	}
	out := make([]hilbert.Interval, len(merged))
	copy(out, merged)
	return out
}
