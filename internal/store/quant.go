package store

// Quantized record codec for cold segments: every fingerprint component
// is reduced to a few bits (4 by default) indexing equi-populated cells
// of the segment's own per-dimension value distribution — the VA-file
// approximation of Weber & Blott (internal/vafile) embedded into the
// segment format. The cold read path scans the compact codes, rejects
// candidates whose conservative quantized distance bound already exceeds
// the query radius without ever touching the exact record bytes, and
// verifies survivors with exact fallback reads; see ColdFile. This is
// the compression-for-similarity-queries trade (Ingber, Courtade &
// Weissman): CPU per candidate for bytes per candidate, bought exactly
// where PR 6 made bytes the measured cost.

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultCodecBits is the per-component code width written when
// WriteOptions.CodecBits is zero: 8→4-bit components halve the
// fingerprint bytes while keeping the lower bound tight enough to
// reject most candidates.
const DefaultCodecBits = 4

// Quantizer is a per-segment scalar quantizer: for each dimension,
// 2^bits+1 non-decreasing cell boundaries over the byte value range,
// equi-populated against the segment's own records. Code c of dimension
// j certifies the exact component lies in [bounds[j][c], bounds[j][c+1]].
type Quantizer struct {
	bits   int
	cells  int
	bounds [][]uint16 // dims × (cells+1); bounds[j][cells] == 256 as written
}

// buildQuantizer fits equi-populated boundaries to the database, the
// standard VA-file choice for skewed data (mirrors vafile.Build with
// integer boundaries — codes certify closed cells, so ties need no
// epsilon nudging).
func buildQuantizer(db *DB, bits int) (*Quantizer, error) {
	switch bits {
	case 1, 2, 4, 8:
	default:
		return nil, fmt.Errorf("store: codec bits = %d must be 1, 2, 4 or 8", bits)
	}
	dims := db.Dims()
	cells := 1 << uint(bits)
	qz := &Quantizer{bits: bits, cells: cells, bounds: make([][]uint16, dims)}
	n := db.Len()
	for j := 0; j < dims; j++ {
		var histo [256]int
		for i := 0; i < n; i++ {
			histo[db.FP(i)[j]]++
		}
		b := make([]uint16, cells+1)
		cum, v := 0, 0
		for c := 1; c < cells; c++ {
			target := n * c / cells
			for v < 255 && cum+histo[v] <= target {
				cum += histo[v]
				v++
			}
			b[c] = uint16(v)
			if b[c] < b[c-1] {
				b[c] = b[c-1]
			}
		}
		b[cells] = 256
		qz.bounds[j] = b
	}
	return qz, nil
}

// FitQuantizer fits an equi-populated quantizer to db's records: for
// each dimension, 2^bits cells holding roughly equal record counts.
// Beyond the cold codec this is the key-bucketing quantizer of the plan
// cache — near-identical query points land in the same cells, so their
// cache keys hash to the same bucket.
func FitQuantizer(db *DB, bits int) (*Quantizer, error) {
	return buildQuantizer(db, bits)
}

// UniformQuantizer returns a quantizer with evenly spaced cell
// boundaries over the full byte range, for callers without a stable
// record distribution to fit (a live index whose contents churn). Cell
// assignment is value-only, so keys stay comparable across snapshots.
func UniformQuantizer(dims, bits int) (*Quantizer, error) {
	switch bits {
	case 1, 2, 4, 8:
	default:
		return nil, fmt.Errorf("store: codec bits = %d must be 1, 2, 4 or 8", bits)
	}
	cells := 1 << uint(bits)
	qz := &Quantizer{bits: bits, cells: cells, bounds: make([][]uint16, dims)}
	for j := 0; j < dims; j++ {
		b := make([]uint16, cells+1)
		for c := 0; c <= cells; c++ {
			b[c] = uint16(c * 256 / cells)
		}
		qz.bounds[j] = b
	}
	return qz, nil
}

// Cell returns the cell index certifying value v in dimension j (the
// largest c with bounds[c] <= v). It is allocation-free.
func (qz *Quantizer) Cell(j int, v byte) int { return qz.cellOf(j, v) }

// Dims returns the number of dimensions the quantizer covers.
func (qz *Quantizer) Dims() int { return len(qz.bounds) }

// Bits returns the per-component code width.
func (qz *Quantizer) Bits() int { return qz.bits }

// CodeBytes returns the packed code size of one record.
func (qz *Quantizer) CodeBytes(dims int) int { return (dims*qz.bits + 7) / 8 }

// EncodedSize returns the codec section's on-disk size in bytes.
func (qz *Quantizer) EncodedSize() int {
	return 4 + 2*len(qz.bounds)*(qz.cells+1)
}

// cellOf returns the cell certifying value v in dimension j: the largest
// c with bounds[c] <= v, so v ∈ [bounds[c], bounds[c+1]].
func (qz *Quantizer) cellOf(j int, v byte) int {
	b := qz.bounds[j]
	c := sort.Search(len(b), func(i int) bool { return b[i] > uint16(v) }) - 1
	if c < 0 {
		c = 0
	}
	if c >= qz.cells {
		c = qz.cells - 1
	}
	return c
}

// encode packs the fingerprint's cell codes into dst (len CodeBytes,
// zeroed by the caller).
func (qz *Quantizer) encode(fp []byte, dst []byte) {
	perByte := 8 / qz.bits
	for j, v := range fp {
		c := qz.cellOf(j, v)
		dst[j/perByte] |= byte(c) << uint((j%perByte)*qz.bits)
	}
}

// LowerBounder is a per-query distance filter over packed codes: a
// precomputed per-dimension, per-cell table of squared lower-bound
// contributions (the vafile lbTable), evaluated with early exit.
type LowerBounder struct {
	table   []float64 // dims × cells, flattened
	dims    int
	cells   int
	bits    int
	perByte int
	mask    byte
}

// NewLowerBounder precomputes the filter for one query point. For a code
// certifying v ∈ [lo, hi], the per-dimension contribution is
// max(lo−q, q−hi, 0)², so the summed bound never exceeds the true
// squared distance.
func (qz *Quantizer) NewLowerBounder(qf []float64) *LowerBounder {
	dims := len(qz.bounds)
	lb := &LowerBounder{
		table:   make([]float64, dims*qz.cells),
		dims:    dims,
		cells:   qz.cells,
		bits:    qz.bits,
		perByte: 8 / qz.bits,
		mask:    byte(1<<uint(qz.bits)) - 1,
	}
	for j := 0; j < dims && j < len(qf); j++ {
		b := qz.bounds[j]
		for c := 0; c < qz.cells; c++ {
			var d float64
			if qf[j] < float64(b[c]) {
				d = float64(b[c]) - qf[j]
			} else if qf[j] > float64(b[c+1]) {
				d = qf[j] - float64(b[c+1])
			}
			lb.table[j*qz.cells+c] = d * d
		}
	}
	return lb
}

// Exceeds reports whether the quantized lower bound of one packed code
// row already exceeds boundSq — a proof the exact record cannot lie
// within the radius, so its bytes never need reading.
func (lb *LowerBounder) Exceeds(code []byte, boundSq float64) bool {
	s := 0.0
	for j := 0; j < lb.dims; j++ {
		c := int(code[j/lb.perByte]>>uint((j%lb.perByte)*lb.bits)) & int(lb.mask)
		s += lb.table[j*lb.cells+c]
		if s > boundSq {
			return true
		}
	}
	return false
}

// appendTo serializes the codec section:
//
//	qbits  uint32
//	bounds dims × (2^qbits + 1) × uint16
func (qz *Quantizer) appendTo(buf []byte) []byte {
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], uint32(qz.bits))
	buf = append(buf, w[:4]...)
	var b2 [2]byte
	for _, b := range qz.bounds {
		for _, v := range b {
			binary.LittleEndian.PutUint16(b2[:], v)
			buf = append(buf, b2[:]...)
		}
	}
	return buf
}

// decodeQuantizer parses a codec section, validating widths and boundary
// monotonicity before trusting them. Returns the quantizer and the
// number of bytes consumed.
func decodeQuantizer(data []byte, dims int) (*Quantizer, int, error) {
	if len(data) < 4 {
		return nil, 0, fmt.Errorf("codec section truncated (%d of 4 header bytes)", len(data))
	}
	bits := int(binary.LittleEndian.Uint32(data[0:]))
	switch bits {
	case 1, 2, 4, 8:
	default:
		return nil, 0, fmt.Errorf("codec bits %d not one of 1, 2, 4, 8", bits)
	}
	cells := 1 << uint(bits)
	size := 4 + 2*dims*(cells+1)
	if len(data) < size {
		return nil, 0, fmt.Errorf("codec section truncated (%d of %d bytes)", len(data), size)
	}
	qz := &Quantizer{bits: bits, cells: cells, bounds: make([][]uint16, dims)}
	off := 4
	for j := 0; j < dims; j++ {
		b := make([]uint16, cells+1)
		for c := range b {
			b[c] = binary.LittleEndian.Uint16(data[off:])
			off += 2
			if b[c] > 256 {
				return nil, 0, fmt.Errorf("codec boundary %d of dimension %d exceeds 256", b[c], j)
			}
			if c > 0 && b[c] < b[c-1] {
				return nil, 0, fmt.Errorf("codec boundaries of dimension %d not non-decreasing", j)
			}
		}
		qz.bounds[j] = b
	}
	return qz, size, nil
}
