// Package vote implements the temporal voting strategy of Section III:
// the per-fingerprint search results buffered over a time interval are
// merged into sequence-level decisions. For every video identifier
// represented in the results, the time offset b of the model tc' = tc + b
// is estimated robustly by minimizing a Tukey-biweight cost (eq. 2), and
// a similarity measure n_sim counts the candidate fingerprints consistent
// with the estimated offset within a small tolerance. Identifiers whose
// n_sim passes a decision threshold are reported as copies.
package vote

import (
	"math"
	"sort"

	"s3cbcd/internal/stat"
)

// Match is one referenced fingerprint returned by the similarity search:
// its video identifier, time code and (optionally) the interest point
// position used by the spatial extension.
type Match struct {
	ID   uint32
	TC   uint32
	X, Y uint16
}

// Candidate is the search result of one candidate fingerprint: the
// candidate's own time code tc', its own interest point position, and
// the matches {S_jk}.
type Candidate struct {
	TC      uint32
	X, Y    float64
	Matches []Match
}

// Config collects the voting parameters.
type Config struct {
	// TukeyC is the scale c of Tukey's biweight cost, in time-code units.
	// Default 15 (residuals beyond c contribute a constant cost).
	TukeyC float64
	// Tolerance is the residual below which a candidate fingerprint
	// counts as a vote for the estimated offset. Default 2 (the paper's
	// "tolerance of 2 frames").
	Tolerance float64
	// MinVotes is the decision threshold on n_sim. Default 4. In the
	// paper it is calibrated for < 1 false alarm per hour of monitoring;
	// the experiments harness calibrates it the same way.
	MinVotes int
	// IRLSIters bounds the refinement iterations. Default 10.
	IRLSIters int
	// SpatialTolerance enables the spatially extended vote (the paper's
	// stated future work): when > 0, after the temporal offset is
	// estimated, a per-axis linear position model x' = a·x + t is fitted
	// robustly on the temporal inliers, and a vote additionally requires
	// the candidate position to be predicted within this many pixels on
	// both axes. 0 disables the extension (the paper's published system).
	SpatialTolerance float64
}

func (c Config) withDefaults() Config {
	if c.TukeyC == 0 {
		c.TukeyC = 15
	}
	if c.Tolerance == 0 {
		c.Tolerance = 2
	}
	if c.MinVotes == 0 {
		c.MinVotes = 4
	}
	if c.IRLSIters == 0 {
		c.IRLSIters = 10
	}
	return c
}

// DefaultConfig returns the default voting parameters.
func DefaultConfig() Config { return Config{}.withDefaults() }

// Detection is one identifier that passed the vote.
type Detection struct {
	ID uint32
	// Offset is the estimated b of tc' = tc + b.
	Offset float64
	// Votes is the decision count: n_sim of the temporal model, further
	// restricted to spatially coherent candidates when the spatial
	// extension is enabled.
	Votes int
	// TemporalVotes is the plain temporal n_sim (equal to Votes when the
	// spatial extension is disabled).
	TemporalVotes int
	// ScaleX and ScaleY are the fitted spatial scales (1 when disabled).
	ScaleX, ScaleY float64
	// Cost is the final Tukey cost of the fit (diagnostic).
	Cost float64
}

// Decide estimates b(id) for every identifier in the buffered results and
// returns the identifiers with Votes >= MinVotes, strongest first.
func Decide(cands []Candidate, cfg Config) []Detection {
	cfg = cfg.withDefaults()
	var dets []Detection
	for _, g := range groupByID(cands) {
		d, ok := estimateGroup(g.obs, cfg)
		if ok && d.Votes >= cfg.MinVotes {
			d.ID = g.id
			dets = append(dets, d)
		}
	}
	sort.Slice(dets, func(i, j int) bool {
		if dets[i].Votes != dets[j].Votes {
			return dets[i].Votes > dets[j].Votes
		}
		return dets[i].ID < dets[j].ID
	})
	return dets
}

// Score is Decide without the MinVotes cut: every identifier with its
// vote count, used for threshold calibration.
func Score(cands []Candidate, cfg Config) []Detection {
	cfg = cfg.withDefaults()
	cfg.MinVotes = 0
	var dets []Detection
	for _, g := range groupByID(cands) {
		if d, ok := estimateGroup(g.obs, cfg); ok {
			d.ID = g.id
			dets = append(dets, d)
		}
	}
	sort.Slice(dets, func(i, j int) bool {
		if dets[i].Votes != dets[j].Votes {
			return dets[i].Votes > dets[j].Votes
		}
		return dets[i].ID < dets[j].ID
	})
	return dets
}

// ref is one matched reference fingerprint of an identifier.
type ref struct {
	tc   float64
	x, y float64
}

// obs groups one candidate fingerprint's matches for one identifier.
type obs struct {
	tcQ    float64 // tc'_j
	qx, qy float64 // candidate interest point position
	refs   []ref   // matches with Id_jk = id
}

// idGroup is all observations of one identifier, in candidate order.
type idGroup struct {
	id  uint32
	obs []obs
}

// groupByID builds the per-identifier observation lists in ONE pass over
// the results. Buffered search results routinely reference thousands of
// distinct identifiers; filtering the whole result set once per
// identifier (O(ids x matches)) dominated detection time at archive
// scale, while this grouping is O(matches).
func groupByID(cands []Candidate) []idGroup {
	index := map[uint32]int{}
	lastCand := map[uint32]int{}
	var groups []idGroup
	for j, c := range cands {
		for _, m := range c.Matches {
			gi, seen := index[m.ID]
			if !seen {
				gi = len(groups)
				index[m.ID] = gi
				groups = append(groups, idGroup{id: m.ID})
			}
			g := &groups[gi]
			if last, ok := lastCand[m.ID]; !seen || !ok || last != j {
				g.obs = append(g.obs, obs{tcQ: float64(c.TC), qx: c.X, qy: c.Y})
				lastCand[m.ID] = j
			}
			o := &g.obs[len(g.obs)-1]
			o.refs = append(o.refs, ref{tc: float64(m.TC), x: float64(m.X), y: float64(m.Y)})
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].id < groups[j].id })
	return groups
}

// maxOffsetCandidates caps the coarse search over candidate offsets; for
// identifiers with very many matches a deterministic subsample is
// evaluated before IRLS refinement.
const maxOffsetCandidates = 512

// estimateGroup solves eq. (2) for one identifier: candidate offsets are
// the pairwise differences tc' - tc, the Tukey cost of each candidate is
// evaluated with the per-candidate min over matches, the best is refined
// by IRLS, and votes are counted within the tolerance.
func estimateGroup(observations []obs, cfg Config) (Detection, bool) {
	if len(observations) == 0 {
		return Detection{}, false
	}
	var offsets []float64
	for _, o := range observations {
		for _, rf := range o.refs {
			offsets = append(offsets, o.tcQ-rf.tc)
		}
	}
	if len(offsets) > maxOffsetCandidates {
		step := len(offsets) / maxOffsetCandidates
		sub := make([]float64, 0, maxOffsetCandidates)
		for i := 0; i < len(offsets); i += step {
			sub = append(sub, offsets[i])
		}
		offsets = sub
	}

	cost := func(b float64) float64 {
		total := 0.0
		for _, o := range observations {
			best := math.Inf(1)
			for _, rf := range o.refs {
				if r := math.Abs(o.tcQ - (rf.tc + b)); r < best {
					best = r
				}
			}
			total += stat.TukeyRho(best, cfg.TukeyC)
		}
		return total
	}

	bestB, bestCost := offsets[0], math.Inf(1)
	for _, b := range offsets {
		if c := cost(b); c < bestCost {
			bestCost, bestB = c, b
		}
	}

	// IRLS refinement around the best candidate offset.
	b := bestB
	for it := 0; it < cfg.IRLSIters; it++ {
		var num, den float64
		for _, o := range observations {
			bestR, bestTC := math.Inf(1), 0.0
			for _, rf := range o.refs {
				if r := math.Abs(o.tcQ - (rf.tc + b)); r < bestR {
					bestR, bestTC = r, rf.tc
				}
			}
			w := stat.TukeyWeight(bestR, cfg.TukeyC)
			num += w * (o.tcQ - bestTC)
			den += w
		}
		if den == 0 {
			break
		}
		nb := num / den
		if math.Abs(nb-b) < 1e-6 {
			b = nb
			break
		}
		b = nb
	}
	if c := cost(b); c < bestCost {
		bestCost = c
	} else {
		b = bestB
	}

	votes := 0
	var spatialObs []spatialObservation
	for _, o := range observations {
		best := math.Inf(1)
		var bestRef ref
		for _, rf := range o.refs {
			if r := math.Abs(o.tcQ - (rf.tc + b)); r < best {
				best, bestRef = r, rf
			}
		}
		if best <= cfg.Tolerance {
			votes++
			if cfg.SpatialTolerance > 0 {
				spatialObs = append(spatialObs, spatialObservation{
					refX: bestRef.x, refY: bestRef.y,
					candX: o.qx, candY: o.qy,
				})
			}
		}
	}
	det := Detection{Offset: b, Votes: votes, TemporalVotes: votes,
		ScaleX: 1, ScaleY: 1, Cost: bestCost}
	if cfg.SpatialTolerance > 0 {
		sv, mx, my := spatialVotes(spatialObs, cfg.SpatialTolerance)
		det.Votes = sv
		det.ScaleX, det.ScaleY = mx.A, my.A
	}
	return det, true
}
