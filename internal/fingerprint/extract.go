package fingerprint

import (
	"math"

	"s3cbcd/internal/vidsim"
)

// Keyframes returns the frame indices selected as key-frames: the local
// extrema (maxima and minima) of the Gaussian-smoothed intensity of
// motion, i.e. the mean absolute frame difference (Section III). Sequences
// shorter than 3 frames yield their first frame as the only key-frame.
func Keyframes(seq *vidsim.Sequence, sigma float64) []int {
	n := seq.Len()
	if n == 0 {
		return nil
	}
	if n < 3 {
		return []int{0}
	}
	motion := make([]float64, n-1)
	for i := 1; i < n; i++ {
		motion[i-1] = vidsim.MeanAbsDiff(seq.Frames[i-1], seq.Frames[i])
	}
	sm := smooth1D(motion, sigma)
	var keys []int
	for i := 1; i < len(sm)-1; i++ {
		isMax := sm[i] > sm[i-1] && sm[i] >= sm[i+1]
		isMin := sm[i] < sm[i-1] && sm[i] <= sm[i+1]
		if isMax || isMin {
			keys = append(keys, i) // motion[i] compares frames i and i+1
		}
	}
	if len(keys) == 0 {
		keys = []int{n / 2}
	}
	return keys
}

// Extractor computes local fingerprints. It caches derivative planes so
// that describing many points of the same key-frame reuses the filters.
// An Extractor is not safe for concurrent use.
type Extractor struct {
	cfg   Config
	seq   *vidsim.Sequence
	cache map[int]*jetPlanes
}

// NewExtractor returns an extractor bound to a sequence. It panics on an
// invalid configuration.
func NewExtractor(seq *vidsim.Sequence, cfg Config) *Extractor {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Extractor{cfg: cfg, seq: seq, cache: make(map[int]*jetPlanes)}
}

// Config returns the extractor's effective configuration.
func (e *Extractor) Config() Config { return e.cfg }

func (e *Extractor) jets(t int) *jetPlanes {
	if t < 0 {
		t = 0
	}
	if t >= e.seq.Len() {
		t = e.seq.Len() - 1
	}
	if j, ok := e.cache[t]; ok {
		return j
	}
	// Bound the cache: extraction walks forward through key-frames, so
	// dropping everything older than the temporal window is safe.
	if len(e.cache) > 8 {
		for k := range e.cache {
			if k < t-2*e.cfg.TimeOffset {
				delete(e.cache, k)
			}
		}
	}
	j := computeJets(e.seq.Frames[t], e.cfg.JetSigma)
	e.cache[t] = j
	return j
}

// positions returns the four spatio-temporal characterization positions
// around (x, y, t): the four spatial corners at ±Offset, alternating
// between t-TimeOffset and t+TimeOffset.
func (e *Extractor) positions(x, y float64, t int) [4][3]float64 {
	d := e.cfg.Offset
	dt := float64(e.cfg.TimeOffset)
	return [4][3]float64{
		{x - d, y - d, float64(t) - dt},
		{x + d, y - d, float64(t) + dt},
		{x - d, y + d, float64(t) + dt},
		{x + d, y + d, float64(t) - dt},
	}
}

// DescribeAt computes the 20-D fingerprint at real position (x, y) in
// key-frame t. ok is false when the point is too close to the border for
// the characterization support, or when every sub-fingerprint is
// degenerate (zero gradient energy).
func (e *Extractor) DescribeAt(x, y float64, t int) (Fingerprint, bool) {
	var fp Fingerprint
	f := e.seq.Frames[0]
	margin := e.cfg.Offset + 1
	if x < margin || y < margin || x > float64(f.W)-1-margin || y > float64(f.H)-1-margin {
		return fp, false
	}
	energy := 0.0
	for i, pos := range e.positions(x, y, t) {
		j := e.jets(int(math.Round(pos[2])))
		s := j.sample(pos[0], pos[1])
		norm := 0.0
		for _, v := range s {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		energy += norm
		for c := 0; c < SubDim; c++ {
			v := 0.0
			if norm > 1e-9 {
				v = s[c] / norm
			}
			fp[i*SubDim+c] = Quantize(v)
		}
	}
	if energy < 1e-6 {
		return fp, false
	}
	return fp, true
}

// ExtractSequence runs the complete pipeline of Section III: key-frames,
// Harris points per key-frame, one fingerprint per point. Time codes are
// key-frame indices.
func (e *Extractor) ExtractSequence() []Local {
	var out []Local
	for _, t := range Keyframes(e.seq, e.cfg.KeyframeSigma) {
		for _, p := range HarrisPoints(e.seq.Frames[t], e.cfg) {
			fp, ok := e.DescribeAt(p.X, p.Y, t)
			if !ok {
				continue
			}
			out = append(out, Local{FP: fp, TC: uint32(t), X: p.X, Y: p.Y})
		}
	}
	return out
}

// Extract is a convenience wrapper running ExtractSequence with cfg on seq.
func Extract(seq *vidsim.Sequence, cfg Config) []Local {
	return NewExtractor(seq, cfg).ExtractSequence()
}
