package hilbert

import (
	"testing"

	"s3cbcd/internal/bitkey"
)

type blockCopy struct {
	lo, hi     []uint32
	start, end bitkey.Key
}

func collectBlocks(c *Curve, depth int, keep Keep) []blockCopy {
	var out []blockCopy
	c.Descend(depth, keep, func(b Block) bool {
		out = append(out, blockCopy{
			lo:    append([]uint32(nil), b.Lo...),
			hi:    append([]uint32(nil), b.Hi...),
			start: b.Start,
			end:   b.End,
		})
		return true
	})
	return out
}

// TestBlocksTileCurve verifies that for every p the blocks' curve
// intervals exactly tile [0, 2^(K*D)) in order, and that each block's
// rectangle contains exactly the cells its curve interval visits.
func TestBlocksTileCurveAndMatchCells(t *testing.T) {
	configs := [][2]int{{2, 4}, {3, 3}, {4, 2}, {5, 2}}
	for _, cfg := range configs {
		c := MustNew(cfg[0], cfg[1])
		total := c.IndexBits()
		for p := 0; p <= total; p++ {
			blocks := collectBlocks(c, p, nil)
			if len(blocks) != 1<<uint(p) {
				t.Fatalf("D=%d K=%d p=%d: %d blocks, want %d", cfg[0], cfg[1], p, len(blocks), 1<<uint(p))
			}
			want := bitkey.Zero
			cellsPerBlock := bitkey.FromUint64(1).Shl(uint(total - p))
			for i, b := range blocks {
				if b.start != want {
					t.Fatalf("p=%d block %d: start %v, want %v", p, i, b.start, want)
				}
				if b.end != want.Add(cellsPerBlock) {
					t.Fatalf("p=%d block %d: end %v, want %v", p, i, b.end, want.Add(cellsPerBlock))
				}
				want = b.end
				// Volume check: product of extents == 2^(total-p).
				vol := uint64(1)
				for j := range b.lo {
					if b.hi[j] <= b.lo[j] {
						t.Fatalf("p=%d block %d: empty extent dim %d", p, i, j)
					}
					vol *= uint64(b.hi[j] - b.lo[j])
				}
				if vol != cellsPerBlock.Uint64() {
					t.Fatalf("p=%d block %d: volume %d, want %d", p, i, vol, cellsPerBlock.Uint64())
				}
			}
			if p <= 8 && total <= 16 {
				verifyBlockCells(t, c, blocks)
			}
		}
	}
}

// verifyBlockCells decodes every curve index and checks it lands inside
// the rectangle of the block whose interval covers the index.
func verifyBlockCells(t *testing.T, c *Curve, blocks []blockCopy) {
	t.Helper()
	pt := make([]uint32, c.Dims())
	n := uint64(1) << uint(c.IndexBits())
	bi := 0
	for i := uint64(0); i < n; i++ {
		h := bitkey.FromUint64(i)
		for blocks[bi].end.Cmp(h) <= 0 {
			bi++
		}
		b := blocks[bi]
		c.Decode(h, pt)
		for j := range pt {
			if pt[j] < b.lo[j] || pt[j] >= b.hi[j] {
				t.Fatalf("index %d decodes to %v outside block [%v,%v)", i, pt, b.lo, b.hi)
			}
		}
	}
}

// TestDescendPruning checks that a geometric keep rule yields exactly the
// blocks of the unpruned enumeration that satisfy the rule.
func TestDescendPruning(t *testing.T) {
	c := MustNew(3, 4)
	// Keep blocks intersecting the axis-aligned box [4,9)^3.
	boxLo, boxHi := uint32(4), uint32(9)
	intersects := func(lo, hi []uint32) bool {
		for j := range lo {
			if hi[j] <= boxLo || lo[j] >= boxHi {
				return false
			}
		}
		return true
	}
	for p := 1; p <= c.IndexBits(); p++ {
		all := collectBlocks(c, p, nil)
		var want []blockCopy
		for _, b := range all {
			if intersects(b.lo, b.hi) {
				want = append(want, b)
			}
		}
		got := collectBlocks(c, p, intersects)
		if len(got) != len(want) {
			t.Fatalf("p=%d: pruned %d blocks, want %d", p, len(got), len(want))
		}
		for i := range got {
			if got[i].start != want[i].start || got[i].end != want[i].end {
				t.Fatalf("p=%d block %d differs", p, i)
			}
		}
	}
}

func TestDescendEarlyStop(t *testing.T) {
	c := MustNew(2, 3)
	count := 0
	c.Descend(4, nil, func(b Block) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("emitted %d blocks after early stop, want 3", count)
	}
}

func TestDescendDepthZero(t *testing.T) {
	c := MustNew(2, 2)
	blocks := collectBlocks(c, 0, nil)
	if len(blocks) != 1 {
		t.Fatalf("depth 0: %d blocks", len(blocks))
	}
	b := blocks[0]
	if b.lo[0] != 0 || b.hi[0] != 4 || b.start != bitkey.Zero || b.end.Uint64() != 16 {
		t.Fatalf("depth 0 block wrong: %+v", b)
	}
}

func TestDescendPanicsOnBadDepth(t *testing.T) {
	c := MustNew(2, 2)
	assertPanics(t, func() { c.Descend(-1, nil, func(Block) bool { return true }) })
	assertPanics(t, func() { c.Descend(9, nil, func(Block) bool { return true }) })
}

func TestMergeIntervals(t *testing.T) {
	k := func(v uint64) bitkey.Key { return bitkey.FromUint64(v) }
	in := []Interval{
		{k(0), k(4)},
		{k(4), k(8)},
		{k(10), k(12)},
		{k(11), k(15)},
		{k(20), k(21)},
	}
	out := MergeIntervals(in)
	want := []Interval{{k(0), k(8)}, {k(10), k(15)}, {k(20), k(21)}}
	if len(out) != len(want) {
		t.Fatalf("merged to %d intervals, want %d: %v", len(out), len(want), out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("interval %d = %v, want %v", i, out[i], want[i])
		}
	}
	if got := MergeIntervals(nil); len(got) != 0 {
		t.Fatalf("MergeIntervals(nil) = %v", got)
	}
}

// TestPaperFigure2Shapes reproduces the qualitative content of Figure 2:
// for D=2, K=4 the partitions at p=3,4,5 consist of 2^p rectangles of
// equal volume whose shapes are the two orientations of a 2:1 rectangle
// (odd p) or squares (even p).
func TestPaperFigure2Shapes(t *testing.T) {
	c := MustNew(2, 4)
	for _, p := range []int{3, 4, 5} {
		blocks := collectBlocks(c, p, nil)
		for _, b := range blocks {
			w := b.hi[0] - b.lo[0]
			h := b.hi[1] - b.lo[1]
			if p%2 == 0 {
				if w != h {
					t.Fatalf("p=%d even: block %dx%d not square", p, w, h)
				}
			} else {
				if w != 2*h && h != 2*w {
					t.Fatalf("p=%d odd: block %dx%d not 2:1", p, w, h)
				}
			}
		}
	}
}
