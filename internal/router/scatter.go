package router

// Per-group request execution: one shard group's query is driven
// against its replica set with deadline propagation, capped-exponential
// retries against siblings, latency-quantile hedging, and the circuit
// breaker / in-flight budget in front of every launch. groupDo returns
// the first successful decoded response; every other in-flight attempt
// is canceled the moment a winner lands.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"s3cbcd/internal/obs"
)

// backendError is a failed backend exchange, classified for the retry
// policy. Retryable failures (transport errors, 5xx, torn bodies) are
// worth a sibling replica; non-retryable ones (4xx — the query itself
// is defective) would fail identically everywhere.
type backendError struct {
	status    int // 0 when the exchange never produced a status
	msg       string
	retryable bool
}

func (e *backendError) Error() string {
	if e.status != 0 {
		return fmt.Sprintf("backend status %d: %s", e.status, e.msg)
	}
	return e.msg
}

// maxBackendBody caps a decoded backend response (64 MiB): a berserk
// backend must not OOM the coordinator.
const maxBackendBody = 64 << 20

// attemptResult is one replica attempt's outcome.
type attemptResult struct {
	out   any
	err   error
	be    *backend
	hedge bool
	span  obs.SpanID
}

// Tracing hooks for the attempt path. Each is a single nil check when
// tracing is off — TestRouterAttemptNoAllocsUntraced pins that the
// whole set allocates nothing on an untraced launch.

// traceGroupStart opens one shard group's span.
func traceGroupStart(tr *obs.Trace, g int) obs.SpanID {
	if tr == nil {
		return 0
	}
	id := tr.StartSpan("group", 0)
	tr.Annotate(id, "group", strconv.Itoa(g))
	return id
}

// traceAttemptStart opens the span for one launched attempt.
func traceAttemptStart(tr *obs.Trace, parent obs.SpanID, be *backend, hedge bool, retry int) obs.SpanID {
	if tr == nil {
		return 0
	}
	id := tr.StartSpan("attempt", parent)
	tr.Annotate(id, "backend", be.url)
	if hedge {
		tr.Annotate(id, "hedge", "true")
	}
	if retry > 0 {
		tr.Annotate(id, "retry", strconv.Itoa(retry))
	}
	return id
}

// traceAttemptEnd closes an attempt span with its outcome: "ok",
// "error" (the backend genuinely failed) or "abandoned" (a sibling won
// or the deadline expired while this attempt was in flight — the
// hedge's losing leg, made visible instead of vanishing).
func traceAttemptEnd(tr *obs.Trace, id obs.SpanID, outcome string, err error) {
	if tr == nil {
		return
	}
	tr.Annotate(id, "outcome", outcome)
	if err != nil {
		tr.Annotate(id, "error", err.Error())
	}
	tr.EndSpan(id)
}

// traceSkip records a replica the launch loop rejected without sending
// anything: a tripped breaker or an exhausted in-flight budget.
func traceSkip(tr *obs.Trace, parent obs.SpanID, be *backend, reason string) {
	if tr == nil {
		return
	}
	id := tr.StartSpan("skip", parent)
	tr.Annotate(id, "backend", be.url)
	tr.Annotate(id, "reason", reason)
	tr.EndSpan(id)
}

// attempt performs one exchange with one backend: POST (or GET for
// metadata paths) with the context deadline propagated via
// X-S3-Deadline — and, for traced requests, the trace context via
// X-S3-Trace, so the backend traces the subquery and returns its report
// in-band for grafting under span. The response is decoded into a fresh
// newOut value. Torn or non-JSON bodies are retryable failures — a
// half-written response must never be half-merged.
func (r *Router) attempt(ctx context.Context, be *backend, method, path string, body []byte, newOut func() any, tr *obs.Trace, span obs.SpanID) (any, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, be.url+path, rd)
	if err != nil {
		return nil, &backendError{msg: err.Error()}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if dl, ok := ctx.Deadline(); ok {
		req.Header.Set(deadlineHeader, strconv.FormatInt(dl.UnixMilli(), 10))
	}
	if sc, ok := tr.Propagate(span); ok {
		req.Header.Set(obs.TraceHeader, sc.String())
	}
	be.reqs.Inc()
	t0 := time.Now()
	resp, err := r.client.Do(req)
	if err != nil {
		be.reqSeconds.ObserveSince(t0)
		return nil, &backendError{msg: err.Error(), retryable: true}
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBackendBody))
	resp.Body.Close()
	elapsed := time.Since(t0)
	be.reqSeconds.Observe(elapsed.Seconds())
	if err != nil {
		// The connection died mid-body: torn response.
		return nil, &backendError{status: resp.StatusCode, msg: fmt.Sprintf("torn response: %v", err), retryable: true}
	}
	if resp.StatusCode != http.StatusOK {
		msg := errorMessage(raw)
		return nil, &backendError{
			status: resp.StatusCode,
			msg:    msg,
			// 5xx means this replica cannot answer right now (degraded,
			// shedding, crashed mid-handler); a sibling holding the same
			// shard may. 4xx would fail identically everywhere.
			retryable: resp.StatusCode >= 500,
		}
	}
	out := newOut()
	if err := json.Unmarshal(raw, out); err != nil {
		return nil, &backendError{msg: fmt.Sprintf("torn response: %v", err), retryable: true}
	}
	if tr != nil {
		if tb, ok := out.(traced); ok {
			if rawTrace := tb.traceRaw(); len(rawTrace) > 0 {
				// Grafting failure is already counted and leaves an error
				// placeholder in the tree; the answer itself is fine.
				_ = tr.AttachRemote(span, rawTrace)
			}
		}
	}
	// Only clean, complete, decoded exchanges feed the latency window:
	// hedge delays should track service time, not failure modes.
	be.lat.Observe(elapsed.Seconds())
	return out, nil
}

// errorMessage pulls the {"error": ...} body the backends send, falling
// back to a byte-count note for opaque bodies.
func errorMessage(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return fmt.Sprintf("%d-byte non-JSON error body", len(raw))
}

// replicaOrder returns group g's replicas in preference order: the
// round-robin cursor rotates the set for load spread, then a stable
// sort ranks healthy before degraded before down, breaker-available
// before tripped, and in-budget before saturated. Nothing is excluded
// — when every replica looks bad the attempt loop still tries them in
// least-bad order rather than failing without trying.
func (r *Router) replicaOrder(g int) []*backend {
	replicas := r.groups[g]
	n := len(replicas)
	rot := int(r.rrs[g].Add(1)-1) % n
	order := make([]*backend, 0, n)
	for i := 0; i < n; i++ {
		order = append(order, replicas[(rot+i)%n])
	}
	score := func(b *backend) int {
		s := int(b.health())
		if !b.br.available() {
			s += 3
		}
		if b.budget > 0 && b.inflight.Load() >= b.budget {
			s += 6
		}
		return s
	}
	// Insertion sort: n is single digits, and stability preserves the
	// round-robin rotation within equal scores.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && score(order[j]) < score(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// hedgeDelay is how long groupDo waits on an in-flight attempt before
// firing a hedge at a sibling: the smallest recent latency quantile
// across the group's replicas — "a sibling could have answered by now".
// Keying on the best sibling rather than the attempted backend's own
// window matters when one replica is uniformly slow: its own quantile
// IS the slowness, and would never trigger the hedge that rescues its
// queries. HedgeMin floors the delay so a microsecond-fast fixture
// can't hedge every request; with too few observations to trust a tail
// estimate anywhere, the delay falls back to HedgeMin * 8.
func (r *Router) hedgeDelay(replicas []*backend) time.Duration {
	const minSamples = 8
	best := time.Duration(-1)
	for _, be := range replicas {
		if be.lat.Count() < minSamples {
			continue
		}
		d := time.Duration(be.lat.Quantile(r.opt.HedgeQuantile) * float64(time.Second))
		if best < 0 || d < best {
			best = d
		}
	}
	if best < 0 {
		return r.opt.HedgeMin * 8
	}
	if best < r.opt.HedgeMin {
		best = r.opt.HedgeMin
	}
	return best
}

// backoff is the capped-exponential delay before retry number n (1 is
// the first retry).
func (r *Router) backoff(n int) time.Duration {
	d := r.opt.RetryBackoff << (n - 1)
	if d > r.opt.MaxRetryBackoff || d <= 0 {
		d = r.opt.MaxRetryBackoff
	}
	return d
}

// groupDo resolves one shard group's subquery: walk the ordered
// replicas launching attempts, hedge when the in-flight attempt
// dawdles past its latency quantile, back off and retry siblings on
// retryable failures, and cancel every loser once a winner lands. The
// error, when every budgeted attempt failed, is the last failure.
func (r *Router) groupDo(ctx context.Context, g int, method, path string, body []byte, newOut func() any) (any, error) {
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()

	tr := obs.FromContext(ctx)
	gspan := traceGroupStart(tr, g)
	defer tr.EndSpan(gspan)

	// Attempts still in flight when the group resolves (losers to a
	// winner, or killed by the deadline) are closed as abandoned here,
	// deterministically before the trace can be reported; an attempt
	// whose goroutine beat this sweep to its own verdict keeps the more
	// specific outcome.
	var openSpans []obs.SpanID
	if tr != nil {
		defer func() {
			for _, id := range openSpans {
				tr.EndAbandoned(id)
			}
		}()
	}

	// The candidate list cycles through the replica preference order:
	// a transient failure (a shed 503, a torn response) on every sibling
	// must not exhaust the group while retry budget remains — the replica
	// that failed first may well serve the retry. The list is bounded by
	// the worst-case launch count: the primary, every budgeted retry, and
	// one hedge per launch.
	base := r.replicaOrder(g)
	maxLaunches := 2 * (r.opt.Retries + 1)
	order := make([]*backend, 0, maxLaunches)
	for i := 0; len(order) < maxLaunches; i++ {
		order = append(order, base[i%len(base)])
	}
	resc := make(chan attemptResult, len(order)+1)
	next := 0
	inflight := 0

	// launch starts an attempt on the next admissible replica. The
	// in-flight slot is claimed before the breaker is consulted — allow
	// may consume the half-open probe slot, and a full budget discovered
	// afterwards would strand it. The attempt's breaker outcome is
	// resolved in its own goroutine, exactly once per launch, no matter
	// how groupDo exits: a loser abandoned when a sibling wins and an
	// attempt killed by the deadline must still report, or a half-open
	// breaker waits forever for a verdict that never comes and the
	// backend is blackholed until restart.
	launch := func(hedge bool, retry int) *backend {
		for next < len(order) {
			be := order[next]
			next++
			if !be.tryAcquire() {
				traceSkip(tr, gspan, be, "budget")
				continue
			}
			ok, probe := be.br.allow()
			if !ok {
				be.release()
				traceSkip(tr, gspan, be, "breaker")
				continue
			}
			inflight++
			aspan := traceAttemptStart(tr, gspan, be, hedge, retry)
			if tr != nil {
				openSpans = append(openSpans, aspan)
			}
			go func() {
				defer be.release()
				out, err := r.attempt(gctx, be, method, path, body, newOut, tr, aspan)
				switch {
				case err == nil:
					be.br.success()
					traceAttemptEnd(tr, aspan, "ok", nil)
				case gctx.Err() != nil:
					// Canceled under us — a sibling won or the budget
					// expired. That says nothing about this backend, so no
					// failure is charged, but an unresolved probe slot must
					// go back.
					if probe {
						be.br.cancelProbe()
					}
					traceAttemptEnd(tr, aspan, "abandoned", err)
				default:
					be.failures.Inc()
					be.br.failure()
					traceAttemptEnd(tr, aspan, "error", err)
				}
				select {
				case resc <- attemptResult{out: out, err: err, be: be, hedge: hedge, span: aspan}:
				case <-gctx.Done():
				}
			}()
			return be
		}
		return nil
	}

	primary := launch(false, 0)
	if primary == nil {
		return nil, &backendError{msg: fmt.Sprintf("group %d: no admissible replica (breakers open or budgets full)", g), retryable: true}
	}

	hedgeArmed := r.opt.HedgeQuantile > 0 && len(base) > 1
	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if hedgeArmed {
		hedgeTimer = time.NewTimer(r.hedgeDelay(base))
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}

	var retryC <-chan time.Time
	var retryTimer *time.Timer
	defer func() {
		if retryTimer != nil {
			retryTimer.Stop()
		}
	}()

	failures := 0
	var lastErr error
	for {
		select {
		case res := <-resc:
			inflight--
			if tr != nil {
				for i, id := range openSpans {
					if id == res.span {
						openSpans = append(openSpans[:i], openSpans[i+1:]...)
						break
					}
				}
			}
			if res.err == nil {
				if res.hedge {
					r.met.hedgeWins.Inc()
				}
				if tr != nil {
					tr.Annotate(res.span, "winner", "true")
				}
				cancel() // losers stop refining immediately
				return res.out, nil
			}
			lastErr = res.err
			be := res.err.(*backendError)
			// A context-cancellation transport error after the parent ctx
			// ended is the deadline, not the backend. (Breaker and failure
			// accounting happened in the attempt goroutine.)
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if !be.retryable {
				cancel()
				return nil, res.err
			}
			failures++
			if failures > r.opt.Retries || next >= len(order) {
				if inflight > 0 {
					continue // a hedge is still running; it may yet win
				}
				return nil, lastErr
			}
			if retryC == nil && inflight == 0 {
				// Nothing in flight: schedule the backoff-spaced retry.
				retryTimer = time.NewTimer(r.backoff(failures))
				retryC = retryTimer.C
			}

		case <-retryC:
			retryC = nil
			r.met.retries.Inc()
			if be := launch(false, failures); be == nil {
				if inflight == 0 {
					return nil, lastErr
				}
			} else if hedgeArmed && hedgeTimer != nil {
				// Drain a tick the timer may have fired while another select
				// case won the race, or the fresh attempt would be hedged
				// immediately instead of after its computed delay.
				if !hedgeTimer.Stop() {
					select {
					case <-hedgeTimer.C:
					default:
					}
				}
				hedgeTimer.Reset(r.hedgeDelay(base))
				hedgeC = hedgeTimer.C
			}

		case <-hedgeC:
			hedgeC = nil
			r.met.hedges.Inc()
			launch(true, 0)

		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
