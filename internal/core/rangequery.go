package core

import (
	"fmt"
	"math"

	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/store"
)

// PlanRange runs the geometric filtering step of a classical spherical
// ε-range query on the same index structure: keep every p-block whose
// hyper-rectangle intersects the sphere of radius eps around q. This is
// the baseline the statistical query is compared against in Section V-A.
func (ix *Index) PlanRange(q []byte, eps float64) (Plan, error) {
	if eps < 0 {
		return Plan{}, fmt.Errorf("core: negative range radius %v", eps)
	}
	qf, err := queryPoint(q, ix.db.Dims())
	if err != nil {
		return Plan{}, err
	}
	return ix.planRangeFloat(qf, eps), nil
}

func (pl *planner) planRangeFloat(qf []float64, eps float64) Plan {
	v := newRangeVisitor(qf, eps)
	pl.curve.DescendSteps(pl.depth, v)
	return Plan{Intervals: hilbert.MergeIntervals(v.ivs), Blocks: v.blocks,
		FilterIters: 1, DescentNodes: v.nodes, Depth: pl.depth}
}

// SearchRange executes a complete ε-range query: geometric filtering,
// then refinement that scans the selected intervals and keeps the
// fingerprints within distance eps of q.
func (ix *Index) SearchRange(q []byte, eps float64) ([]Match, Plan, error) {
	plan, err := ix.PlanRange(q, eps)
	if err != nil {
		return nil, Plan{}, err
	}
	qf, err := queryPoint(q, ix.db.Dims())
	if err != nil {
		return nil, Plan{}, err
	}
	return ix.refineRange(qf, eps, plan), plan, nil
}

func (ix *Index) refineRange(qf []float64, eps float64, plan Plan) []Match {
	epsSq := eps * eps
	var out []Match
	// A DB visit cannot fail; the error path exists for cold sources.
	ix.db.VisitIntervals(plan.Intervals, func(rv store.RecordView) bool {
		if d := distSqToFP(qf, rv.FP); d <= epsSq {
			out = append(out, Match{Pos: rv.Pos, ID: rv.ID, TC: rv.TC, X: rv.X, Y: rv.Y, Dist: math.Sqrt(d)})
		}
		return true
	})
	return out
}
