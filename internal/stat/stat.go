// Package stat provides the probability machinery the S³ index and its
// evaluation need: the 1-D normal distribution (the per-component
// distortion model of Section IV-C), the distribution of the L2 norm of a
// D-dimensional isotropic normal distortion (used in Section V-A to pick
// the ε of a range query matching the expectation α of a statistical
// query), Tukey's biweight M-estimator cost (Section III), histograms and
// streaming moments used by the experiment harness.
package stat

import (
	"fmt"
	"math"
)

// NormalPDF evaluates the N(mu, sigma^2) density at x.
func NormalPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// NormalCDF evaluates the N(mu, sigma^2) cumulative distribution at x.
func NormalCDF(x, mu, sigma float64) float64 {
	return 0.5 * (1 + math.Erf((x-mu)/(sigma*math.Sqrt2)))
}

// NormalIntervalMass returns P(lo <= X < hi) for X ~ N(mu, sigma^2).
// lo may be -Inf and hi may be +Inf.
func NormalIntervalMass(lo, hi, mu, sigma float64) float64 {
	var cl, ch float64
	if math.IsInf(lo, -1) {
		cl = 0
	} else {
		cl = NormalCDF(lo, mu, sigma)
	}
	if math.IsInf(hi, 1) {
		ch = 1
	} else {
		ch = NormalCDF(hi, mu, sigma)
	}
	if ch < cl {
		return 0
	}
	return ch - cl
}

// RadiusDist is the distribution of r = ||ΔS|| when the components of the
// D-dimensional distortion ΔS are i.i.d. N(0, sigma^2) — a chi
// distribution with D degrees of freedom scaled by sigma. This is the
// p_{||ΔS||}(r) of Section V-A.
type RadiusDist struct {
	D     int
	Sigma float64
}

// PDF evaluates the radius density at r >= 0.
func (rd RadiusDist) PDF(r float64) float64 {
	if r < 0 {
		return 0
	}
	d := float64(rd.D)
	// log pdf = (d-1) log r - r^2/(2σ²) - (d/2-1) log 2 - logΓ(d/2) - d log σ
	lg, _ := math.Lgamma(d / 2)
	logp := (d-1)*math.Log(r) - r*r/(2*rd.Sigma*rd.Sigma) -
		(d/2-1)*math.Ln2 - lg - d*math.Log(rd.Sigma)
	return math.Exp(logp)
}

// CDF returns P(||ΔS|| <= r) = P_{gamma}(D/2, r²/(2σ²)) (regularized
// lower incomplete gamma).
func (rd RadiusDist) CDF(r float64) float64 {
	if r <= 0 {
		return 0
	}
	x := r * r / (2 * rd.Sigma * rd.Sigma)
	return RegIncGammaP(float64(rd.D)/2, x)
}

// Quantile returns the radius r with CDF(r) = p, i.e. the ε making an
// ε-range query have expectation p under the distortion model. It panics
// if p is outside (0, 1).
func (rd RadiusDist) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stat: radius quantile p=%v outside (0,1)", p))
	}
	// Bracket: mean of the chi distribution ~ sigma*sqrt(D); expand hi.
	lo, hi := 0.0, rd.Sigma*math.Sqrt(float64(rd.D))
	for rd.CDF(hi) < p {
		hi *= 2
		if hi > 1e12 {
			panic("stat: radius quantile bracket failed")
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-10*(1+hi); i++ {
		mid := 0.5 * (lo + hi)
		if rd.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// RegIncGammaP computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x >= 0, using the series expansion for
// x < a+1 and the continued fraction for the complement otherwise
// (Numerical Recipes §6.2).
func RegIncGammaP(a, x float64) float64 {
	switch {
	case a <= 0:
		panic(fmt.Sprintf("stat: RegIncGammaP a=%v <= 0", a))
	case x < 0:
		panic(fmt.Sprintf("stat: RegIncGammaP x=%v < 0", x))
	case x == 0:
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// TukeyRho is Tukey's biweight cost function with scale c:
//
//	ρ(u) = c²/6 · (1 − (1 − (u/c)²)³)  for |u| <= c
//	ρ(u) = c²/6                        otherwise
//
// It is the non-decreasing outlier-bounding cost of the voting strategy's
// time-offset estimation (eq. 2 of the paper).
func TukeyRho(u, c float64) float64 {
	au := math.Abs(u)
	if au >= c {
		return c * c / 6
	}
	t := 1 - (au/c)*(au/c)
	return c * c / 6 * (1 - t*t*t)
}

// TukeyWeight is the IRLS weight w(u) = (1-(u/c)²)² for |u|<c, else 0.
func TukeyWeight(u, c float64) float64 {
	au := math.Abs(u)
	if au >= c {
		return 0
	}
	t := 1 - (au/c)*(au/c)
	return t * t
}
