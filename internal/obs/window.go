package obs

// Window is a fixed-size sliding window of float64 observations with
// on-demand quantiles — the estimator a hedging policy needs ("what has
// this backend's p90 been lately?") where a cumulative Histogram is the
// wrong tool: a histogram never forgets, so a backend that was slow an
// hour ago would keep triggering hedges long after it recovered. The
// window holds the most recent Size observations and computes exact
// quantiles over them by copy-and-sort, which at hedging's window sizes
// (tens to a few hundred samples) costs microseconds per decision.
//
// A Window is safe for concurrent use. It is an estimator, not a
// Metric: it does not render into a Registry (register a GaugeFunc over
// Quantile for that).

import (
	"sort"
	"sync"
)

// DefaultWindowSize is the observation capacity NewWindow(0) selects:
// large enough that one outlier cannot drag a tail quantile, small
// enough that the estimate tracks a backend whose behaviour changed a
// few hundred requests ago.
const DefaultWindowSize = 128

// Window is a concurrency-safe sliding window of observations.
type Window struct {
	mu   sync.Mutex
	buf  []float64
	next int // ring write position
	n    int // live observations, <= len(buf)
}

// NewWindow returns a window retaining the size most recent
// observations; size <= 0 selects DefaultWindowSize.
func NewWindow(size int) *Window {
	if size <= 0 {
		size = DefaultWindowSize
	}
	return &Window{buf: make([]float64, size)}
}

// Observe records one observation, evicting the oldest when full.
func (w *Window) Observe(v float64) {
	w.mu.Lock()
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.mu.Unlock()
}

// Count returns the number of live observations (saturates at the
// window size).
func (w *Window) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Quantile returns the exact q-quantile (0 <= q <= 1, nearest-rank) of
// the retained observations, or 0 when the window is empty. q is
// clamped into [0, 1].
func (w *Window) Quantile(q float64) float64 {
	w.mu.Lock()
	if w.n == 0 {
		w.mu.Unlock()
		return 0
	}
	s := make([]float64, w.n)
	copy(s, w.buf[:w.n])
	w.mu.Unlock()
	sort.Float64s(s)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	i := int(q * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
