package store

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"s3cbcd/internal/bitkey"
	"s3cbcd/internal/hilbert"
)

// flatRecord is a RecordView with the fingerprint copied out of the
// visit callback, comparable across sources.
type flatRecord struct {
	pos    int
	key    bitkey.Key
	fp     string
	id, tc uint32
	x, y   uint16
}

func collectVisits(t *testing.T, src RecordSource, ivs []hilbert.Interval) []flatRecord {
	t.Helper()
	var out []flatRecord
	if err := src.VisitIntervals(ivs, func(rv RecordView) bool {
		out = append(out, flatRecord{pos: rv.Pos, key: rv.Key, fp: string(rv.FP),
			id: rv.ID, tc: rv.TC, x: rv.X, y: rv.Y})
		return true
	}); err != nil {
		t.Fatalf("VisitIntervals: %v", err)
	}
	return out
}

// randIntervals builds a sorted, merged set of up to n random half-open
// curve intervals for the given curve (index space must fit a uint64).
func randIntervals(r *rand.Rand, curve *hilbert.Curve, n int) []hilbert.Interval {
	max := uint64(1) << uint(curve.IndexBits())
	ivs := make([]hilbert.Interval, 0, n)
	for i := 0; i < n; i++ {
		a, b := r.Uint64()%max, r.Uint64()%(max+1)
		if a > b {
			a, b = b, a
		}
		if a == b {
			b++
		}
		ivs = append(ivs, hilbert.Interval{Start: bitkey.FromUint64(a), End: bitkey.FromUint64(b)})
	}
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && ivs[j].Start.Less(ivs[j-1].Start); j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	return hilbert.MergeIntervals(ivs)
}

// coldTestFile writes a random database file and returns its path plus
// the in-memory DB it was written from.
func coldTestFile(t *testing.T, seed int64, n, sectionBits, shards int) (string, *DB) {
	t.Helper()
	curve := hilbert.MustNew(6, 4)
	db := MustBuild(curve, randRecords(rand.New(rand.NewSource(seed)), curve, n))
	path := filepath.Join(t.TempDir(), "cold.s3db")
	if shards > 1 {
		if err := db.WriteFileSharded(path, sectionBits, shards); err != nil {
			t.Fatal(err)
		}
	} else if err := db.WriteFile(path, sectionBits); err != nil {
		t.Fatal(err)
	}
	return path, db
}

// TestColdFileMatchesDB: for every cache configuration — none, starved,
// roomy — and several block granularities, random interval sets visited
// through the cold file must produce exactly the records the in-memory
// DB produces, in the same order.
func TestColdFileMatchesDB(t *testing.T) {
	path, db := coldTestFile(t, 7, 300, 6, 4)
	r := rand.New(rand.NewSource(8))
	configs := []struct {
		name         string
		budget       int64 // -1: no cache at all
		blockRecords int
	}{
		{"nocache", -1, 0},
		{"starved", 1, 16},
		{"tiny", 2048, 16},
		{"roomy", 1 << 20, 64},
		{"whole-file-blocks", 1 << 20, 1 << 20},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			var cache *BlockCache
			if cfg.budget >= 0 {
				cache = NewBlockCache(cfg.budget)
			}
			cf, err := OpenColdFS(OSFS, path, cache, cfg.blockRecords)
			if err != nil {
				t.Fatal(err)
			}
			defer cf.Close()
			if cf.Len() != db.Len() {
				t.Fatalf("cold Len=%d, db Len=%d", cf.Len(), db.Len())
			}
			for trial := 0; trial < 30; trial++ {
				ivs := randIntervals(r, db.Curve(), 1+r.Intn(6))
				want := collectVisits(t, db, ivs)
				got := collectVisits(t, cf, ivs)
				if len(got) != len(want) {
					t.Fatalf("trial %d: cold visited %d records, db %d", trial, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d record %d: cold %+v, db %+v", trial, i, got[i], want[i])
					}
				}
			}
			if cache != nil {
				if st := cache.Stats(); st.Bytes > cfg.budget {
					t.Fatalf("cache holds %d bytes over budget %d", st.Bytes, cfg.budget)
				}
			}
		})
	}
}

// TestColdFileEarlyStop: a visit callback returning false must stop the
// walk without error, and without visiting further records.
func TestColdFileEarlyStop(t *testing.T) {
	path, db := coldTestFile(t, 9, 200, 6, 1)
	cf, err := OpenColdFS(OSFS, path, NewBlockCache(1<<20), 32)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	full := hilbert.Interval{Start: bitkey.Key{}, End: bitkey.FromUint64(1).Shl(uint(db.Curve().IndexBits()))}
	for _, stop := range []int{0, 1, 7, 150} {
		seen := 0
		if err := cf.VisitIntervals([]hilbert.Interval{full}, func(RecordView) bool {
			seen++
			return seen <= stop
		}); err != nil {
			t.Fatal(err)
		}
		if seen != stop+1 {
			t.Fatalf("stop after %d: visited %d", stop, seen)
		}
	}
}

// TestColdFileCountID: per-identifier counts through the uncached scan
// path must agree with the in-memory DB.
func TestColdFileCountID(t *testing.T) {
	path, db := coldTestFile(t, 11, 250, 6, 3)
	cf, err := OpenColdFS(OSFS, path, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	for id := uint32(0); id < 55; id++ {
		n, err := cf.CountID(id)
		if err != nil {
			t.Fatal(err)
		}
		if want := db.CountID(id); n != want {
			t.Fatalf("CountID(%d) = %d, want %d", id, n, want)
		}
	}
}

// TestColdFileLoadAll round-trips the whole file back into memory.
func TestColdFileLoadAll(t *testing.T) {
	path, db := coldTestFile(t, 13, 120, 6, 2)
	cache := NewBlockCache(1 << 20)
	cf, err := OpenColdFS(OSFS, path, cache, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	got, err := cf.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("LoadAll: %d records, want %d", got.Len(), db.Len())
	}
	for i := 0; i < db.Len(); i++ {
		if got.Key(i).Cmp(db.Key(i)) != 0 || got.ID(i) != db.ID(i) || got.TC(i) != db.TC(i) ||
			string(got.FP(i)) != string(db.FP(i)) {
			t.Fatalf("LoadAll record %d differs", i)
		}
	}
	// Bulk load must bypass the cache entirely.
	if st := cache.Stats(); st.Misses != 0 || st.Blocks != 0 {
		t.Fatalf("LoadAll touched the cache: %+v", st)
	}
}

// TestColdFileCacheHitZeroReads: once a block is cached, a repeat visit
// must not touch the filesystem at all — asserted by byte, via
// CountingFS, not just by hit counters.
func TestColdFileCacheHitZeroReads(t *testing.T) {
	path, db := coldTestFile(t, 17, 300, 6, 4)
	cfs := NewCountingFS(OSFS)
	cache := NewBlockCache(1 << 20) // roomy: nothing evicts
	cf, err := OpenColdFS(cfs, path, cache, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	r := rand.New(rand.NewSource(18))
	ivs := randIntervals(r, db.Curve(), 4)
	warm := collectVisits(t, cf, ivs)
	cold := cfs.ReadBytes()
	if cold == 0 && len(warm) > 0 {
		t.Fatal("first visit read zero bytes")
	}
	for i := 0; i < 5; i++ {
		again := collectVisits(t, cf, ivs)
		if len(again) != len(warm) {
			t.Fatalf("repeat visit %d: %d records, want %d", i, len(again), len(warm))
		}
	}
	if got := cfs.ReadBytes(); got != cold {
		t.Fatalf("warm visits read %d bytes from the filesystem", got-cold)
	}
	st := cache.Stats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("expected both misses (first pass) and hits (repeats): %+v", st)
	}
}

// TestBlockCacheEviction: a cache holding a fraction of the file must
// stay within budget, evict, and keep serving correct results.
func TestBlockCacheEviction(t *testing.T) {
	path, db := coldTestFile(t, 19, 400, 6, 1)
	recBytes := db.Len() * (len(db.FP(0)) + 8 /* at least */)
	cache := NewBlockCache(int64(recBytes) / 10)
	cf, err := OpenColdFS(OSFS, path, cache, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	full := hilbert.Interval{Start: bitkey.Key{}, End: bitkey.FromUint64(1).Shl(uint(db.Curve().IndexBits()))}
	for pass := 0; pass < 3; pass++ {
		got := collectVisits(t, cf, []hilbert.Interval{full})
		if len(got) != db.Len() {
			t.Fatalf("pass %d: visited %d of %d records", pass, len(got), db.Len())
		}
	}
	st := cache.Stats()
	if st.Bytes > st.BudgetBytes {
		t.Fatalf("cache %d bytes over budget %d", st.Bytes, st.BudgetBytes)
	}
	if st.Evictions == 0 {
		t.Fatalf("full scans at 10%% budget never evicted: %+v", st)
	}
}

// TestBlockCacheSharedAcrossFiles: two cold files share one cache;
// dropping one file's blocks (by closing it) must not disturb the
// other's, and ids must not collide.
func TestBlockCacheSharedAcrossFiles(t *testing.T) {
	pathA, dbA := coldTestFile(t, 23, 150, 6, 1)
	pathB, dbB := coldTestFile(t, 29, 150, 6, 1)
	cfs := NewCountingFS(OSFS)
	cache := NewBlockCache(1 << 20)
	cfA, err := OpenColdFS(cfs, pathA, cache, 32)
	if err != nil {
		t.Fatal(err)
	}
	cfB, err := OpenColdFS(cfs, pathB, cache, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer cfB.Close()
	r := rand.New(rand.NewSource(31))
	ivs := randIntervals(r, dbA.Curve(), 3)
	collectVisits(t, cfA, ivs)
	wantB := collectVisits(t, dbB, ivs)
	collectVisits(t, cfB, ivs)
	before := cache.Stats()
	if err := cfA.Close(); err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	if after.Blocks >= before.Blocks && before.Blocks > 0 {
		t.Fatalf("closing file A dropped nothing: %d -> %d blocks", before.Blocks, after.Blocks)
	}
	// B's blocks survived: the repeat visit is served without disk reads.
	read := cfs.ReadBytes()
	gotB := collectVisits(t, cfB, ivs)
	if cfs.ReadBytes() != read {
		t.Fatal("closing file A evicted file B's blocks")
	}
	if len(gotB) != len(wantB) {
		t.Fatalf("file B visit after drop: %d records, want %d", len(gotB), len(wantB))
	}
	// A visit against the closed file must fail, not crash.
	if err := cfA.VisitIntervals(ivs, func(RecordView) bool { return true }); err == nil {
		t.Fatal("VisitIntervals on a closed cold file succeeded")
	}
	if _, err := cfA.CountID(0); err == nil {
		t.Fatal("CountID on a closed cold file succeeded")
	}
}

// TestColdFileConcurrent hammers one starved cache from many goroutines
// mixing queries over two files with a mid-test close of one file. Run
// under -race this exercises the hit/miss/eviction/drop interleavings;
// every completed visit must still be exact.
func TestColdFileConcurrent(t *testing.T) {
	pathA, dbA := coldTestFile(t, 37, 300, 6, 2)
	pathB, dbB := coldTestFile(t, 41, 300, 6, 2)
	cache := NewBlockCache(1500) // a handful of blocks at most
	cfA, err := OpenColdFS(OSFS, pathA, cache, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfB, err := OpenColdFS(OSFS, pathB, cache, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer cfB.Close()
	defer cfA.Close()

	const workers = 8
	const rounds = 40
	closeAt := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < rounds; i++ {
				cf, db := cfA, dbA
				if w%2 == 1 {
					cf, db = cfB, dbB
				}
				ivs := randIntervals(r, db.Curve(), 1+r.Intn(4))
				var got []flatRecord
				err := cf.VisitIntervals(ivs, func(rv RecordView) bool {
					got = append(got, flatRecord{pos: rv.Pos, key: rv.Key, fp: string(rv.FP),
						id: rv.ID, tc: rv.TC, x: rv.X, y: rv.Y})
					return true
				})
				if err != nil {
					if cf == cfA {
						// cfA closes mid-test; an error after that is the
						// documented behaviour, not a failure.
						select {
						case <-closeAt:
							return
						default:
						}
					}
					errs <- fmt.Errorf("worker %d round %d: %v", w, i, err)
					return
				}
				want := collectVisits(t, db, ivs)
				if len(got) != len(want) {
					errs <- fmt.Errorf("worker %d round %d: %d records, want %d", w, i, len(got), len(want))
					return
				}
				for j := range want {
					if got[j] != want[j] {
						errs <- fmt.Errorf("worker %d round %d: record %d differs", w, i, j)
						return
					}
				}
				if w == 0 && i == rounds/2 {
					close(closeAt)
					if err := cfA.Close(); err != nil {
						errs <- fmt.Errorf("mid-test close: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := cache.Stats(); st.Bytes > st.BudgetBytes {
		t.Fatalf("cache settled %d bytes over budget %d", st.Bytes, st.BudgetBytes)
	}
}

// TestBlockCacheSingleflight: concurrent first touches of one block must
// issue one disk read; the waiters count as hits.
func TestBlockCacheSingleflight(t *testing.T) {
	path, db := coldTestFile(t, 43, 200, 6, 1)
	cfs := NewCountingFS(OSFS)
	cache := NewBlockCache(1 << 20)
	cf, err := OpenColdFS(cfs, path, cache, 1<<20) // one block: the whole file
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	full := hilbert.Interval{Start: bitkey.Key{}, End: bitkey.FromUint64(1).Shl(uint(db.Curve().IndexBits()))}
	const workers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			n := 0
			if err := cf.VisitIntervals([]hilbert.Interval{full}, func(RecordView) bool { n++; return true }); err != nil {
				t.Error(err)
				return
			}
			if n != db.Len() {
				t.Errorf("visited %d of %d", n, db.Len())
			}
		}()
	}
	close(start)
	wg.Wait()
	st := cache.Stats()
	if st.Misses != 1 {
		t.Fatalf("%d workers caused %d misses, want exactly 1", workers, st.Misses)
	}
	if st.Hits != workers-1 {
		t.Fatalf("%d workers: %d hits, want %d", workers, st.Hits, workers-1)
	}
}
