package store

// Per-segment sketches: a compact summary of which stretches of the
// Hilbert curve a segment occupies, written into the segment file at
// seal/compaction time (format v4) and consulted before refinement so a
// plan whose block set provably misses the segment skips it — no block
// cache traffic, no RecordSource visit. Two structures compose:
//
//   - a Bloom filter over the occupied blocks of a 2^bits curve
//     partition (the paper's p-blocks at the live partition depth, so a
//     statistical plan's blocks map one-to-one onto filter probes), and
//   - a per-dimension min/max component envelope, a box bound that lets
//     geometric queries skip segments whose box lies beyond ε.
//
// Both are one-sided: a Bloom filter has false positives but never false
// negatives, and the envelope is a true bound, so "cannot intersect"
// decisions are always sound — a skipped segment provably contributes
// zero matches. This is the Bloom-region-skipping idea of Araujo et al.
// (Large-Scale Query-by-Image Video Retrieval Using Bloom Filters)
// applied to LSM segments of the S³ index.

import (
	"encoding/binary"
	"fmt"
	"math"

	"s3cbcd/internal/bitkey"
	"s3cbcd/internal/hilbert"
)

const (
	// maxSketchBits bounds the sketch's block granularity: block indices
	// must fit the low word of a key, and a finer partition than 2^28
	// blocks buys nothing a header could legitimately want (mirrors
	// maxSectionBits).
	maxSketchBits = 28
	// maxSketchHashes bounds the Bloom probe count a header may claim.
	maxSketchHashes = 16
	// maxSketchFilterBytes bounds the filter size a header may claim
	// (64 MiB — far past any real segment) so a corrupt length cannot
	// drive a huge allocation at open.
	maxSketchFilterBytes = 1 << 26
	// maxSketchProbes is the per-consultation probe budget: a query whose
	// intervals cover more blocks than this is served conservatively
	// (treated as intersecting) instead of burning CPU on probes.
	maxSketchProbes = 4096

	// sketchBitsPerBlock and sketchHashCount size the written filter:
	// ~10 bits and 6 probes per occupied block give a ~1% false-positive
	// rate, cheap next to the record area it guards.
	sketchBitsPerBlock = 10
	sketchHashCount    = 6
)

// Sketch is a segment's occupancy summary. The zero value is not valid;
// build one with DB.BuildSketch or decode one from a v4 file.
type Sketch struct {
	bits   int  // blocks are curve sections of a 2^bits partition
	shift  uint // curve index bits - bits
	hashes int
	blocks int // distinct occupied blocks at build time
	filter []byte
	// min and max bound every stored fingerprint component per dimension;
	// meaningful only when the segment holds records (blocks > 0).
	min, max []byte
}

// sketchMix is the splitmix64 finalizer: a cheap, well-distributed
// 64-bit mixer. Two independent mixes drive double hashing, the standard
// k-probe Bloom construction.
func sketchMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sketchBit returns the filter bit index of probe i for block b.
func (sk *Sketch) sketchBit(b uint64, i int) uint64 {
	h1 := sketchMix(b)
	h2 := sketchMix(b^0xa5a5a5a5a5a5a5a5) | 1
	return (h1 + uint64(i)*h2) % uint64(len(sk.filter)*8)
}

func (sk *Sketch) insertBlock(b uint64) {
	for i := 0; i < sk.hashes; i++ {
		bit := sk.sketchBit(b, i)
		sk.filter[bit/8] |= 1 << (bit % 8)
	}
}

func (sk *Sketch) mayHaveBlock(b uint64) bool {
	for i := 0; i < sk.hashes; i++ {
		bit := sk.sketchBit(b, i)
		if sk.filter[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// clampSketchBits normalizes a requested granularity against the curve:
// non-positive selects an automatic granularity of roughly four blocks
// per record (so average occupancy stays low and skips stay likely).
func clampSketchBits(curve *hilbert.Curve, bits, n int) int {
	if bits <= 0 {
		bits = 1
		for 1<<uint(bits) < 4*n && bits < maxSketchBits {
			bits++
		}
	}
	if bits > curve.IndexBits() {
		bits = curve.IndexBits()
	}
	if bits > maxSketchBits {
		bits = maxSketchBits
	}
	if bits < 1 {
		bits = 1
	}
	return bits
}

// BuildSketch summarizes the database's curve occupancy at a 2^bits
// block granularity (non-positive bits selects an automatic one). The
// live index passes its partition depth p, so statistical plan blocks
// map one-to-one onto filter probes.
func (db *DB) BuildSketch(bits int) *Sketch {
	curve := db.curve
	bits = clampSketchBits(curve, bits, db.Len())
	sk := &Sketch{
		bits:   bits,
		shift:  uint(curve.IndexBits() - bits),
		hashes: sketchHashCount,
	}
	// Keys are sorted, so distinct occupied blocks are transitions in the
	// block index sequence: one cheap pass counts them, a second inserts.
	n := db.Len()
	var prev uint64
	for i := 0; i < n; i++ {
		b := db.keys[i].Shr(sk.shift).Uint64()
		if i == 0 || b != prev {
			sk.blocks++
			prev = b
		}
	}
	fbits := sk.blocks * sketchBitsPerBlock
	if fbits < 64 {
		fbits = 64
	}
	sk.filter = make([]byte, (fbits+7)/8)
	for i := 0; i < n; i++ {
		b := db.keys[i].Shr(sk.shift).Uint64()
		if i == 0 || b != prev {
			sk.insertBlock(b)
			prev = b
		}
	}
	dims := curve.Dims()
	sk.min = make([]byte, dims)
	sk.max = make([]byte, dims)
	for j := range sk.min {
		sk.min[j] = 0xff
	}
	for i := 0; i < n; i++ {
		fp := db.FP(i)
		for j, v := range fp {
			if v < sk.min[j] {
				sk.min[j] = v
			}
			if v > sk.max[j] {
				sk.max[j] = v
			}
		}
	}
	if n == 0 {
		for j := range sk.min {
			sk.min[j] = 0
		}
	}
	return sk
}

// Bits returns the block granularity exponent.
func (sk *Sketch) Bits() int { return sk.bits }

// Blocks returns the number of distinct occupied blocks at build time
// (the n of the Bloom false-positive estimate).
func (sk *Sketch) Blocks() int { return sk.blocks }

// Hashes returns the Bloom probe count.
func (sk *Sketch) Hashes() int { return sk.hashes }

// FilterBits returns the Bloom filter size in bits (the m of the
// false-positive estimate).
func (sk *Sketch) FilterBits() int { return len(sk.filter) * 8 }

// EncodedSize returns the sketch section's on-disk size in bytes.
func (sk *Sketch) EncodedSize() int { return 16 + len(sk.min) + len(sk.max) + len(sk.filter) }

// FalsePositiveRate estimates the Bloom filter's false-positive
// probability for a probe of one unoccupied block: (1 - e^{-kn/m})^k.
func (sk *Sketch) FalsePositiveRate() float64 {
	m := float64(sk.FilterBits())
	if m == 0 {
		return 1
	}
	k := float64(sk.hashes)
	return math.Pow(1-math.Exp(-k*float64(sk.blocks)/m), k)
}

// EstimatedSkipRate probes n deterministic pseudo-random blocks of the
// sketch's partition and returns the fraction proven unoccupied — an
// offline estimate of how often a uniformly random single-block plan
// would skip this segment. Deterministic: the same sketch always
// reports the same rate.
func (sk *Sketch) EstimatedSkipRate(probes int) float64 {
	if probes <= 0 {
		return 0
	}
	nb := uint64(1) << uint(sk.bits)
	skipped := 0
	for i := 0; i < probes; i++ {
		if !sk.mayHaveBlock(sketchMix(uint64(i)) % nb) {
			skipped++
		}
	}
	return float64(skipped) / float64(probes)
}

// mayIntersectRange reports whether any occupied block overlaps the
// half-open key range [start, end). budget bounds the total probes of
// one consultation; on exhaustion the answer is conservatively true.
func (sk *Sketch) mayIntersectRange(start, end bitkey.Key, budget *int) bool {
	if !start.Less(end) {
		return false
	}
	b := start.Shr(sk.shift).Uint64()
	nb := uint64(1) << uint(sk.bits)
	for b < nb {
		if *budget <= 0 {
			return true
		}
		*budget--
		if sk.mayHaveBlock(b) {
			return true
		}
		b++
		if !bitkey.FromUint64(b).Shl(sk.shift).Less(end) {
			break
		}
	}
	return false
}

// MayIntersect reports whether any occupied block overlaps any of the
// sorted, non-overlapping curve intervals. False is a proof: no stored
// key lies in any interval, so refinement over them yields nothing.
func (sk *Sketch) MayIntersect(ivs []hilbert.Interval) bool {
	budget := maxSketchProbes
	for _, iv := range ivs {
		if sk.mayIntersectRange(iv.Start, iv.End, &budget) {
			return true
		}
	}
	return false
}

// EnvelopeMinDistSq returns the squared L2 distance from the query point
// to the segment's component bounding box — a lower bound on the
// distance to every stored fingerprint. A segment with no records
// reports +Inf (no record can be within any radius).
func (sk *Sketch) EnvelopeMinDistSq(qf []float64) float64 {
	if sk.blocks == 0 {
		return math.Inf(1)
	}
	s := 0.0
	for j, q := range qf {
		if j >= len(sk.min) {
			break
		}
		if d := q - float64(sk.max[j]); d > 0 {
			s += d * d
		} else if d := float64(sk.min[j]) - q; d > 0 {
			s += d * d
		}
	}
	return s
}

// appendTo serializes the sketch section:
//
//	sbits   uint32
//	nhash   uint32
//	nblocks uint32
//	flen    uint32
//	min     dims bytes
//	max     dims bytes
//	filter  flen bytes
func (sk *Sketch) appendTo(buf []byte) []byte {
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(sk.bits))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(sk.hashes))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(sk.blocks))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(sk.filter)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, sk.min...)
	buf = append(buf, sk.max...)
	buf = append(buf, sk.filter...)
	return buf
}

// decodeSketch parses a sketch section for a curve, validating every
// length against hard caps before trusting it (hostile headers must fail
// cleanly, never allocate unboundedly — the same discipline OpenFS
// applies to the section table). Returns the sketch and the number of
// bytes consumed.
func decodeSketch(data []byte, curve *hilbert.Curve) (*Sketch, int, error) {
	if len(data) < 16 {
		return nil, 0, fmt.Errorf("sketch section truncated (%d of 16 header bytes)", len(data))
	}
	bits := int(binary.LittleEndian.Uint32(data[0:]))
	hashes := int(binary.LittleEndian.Uint32(data[4:]))
	blocks64 := uint64(binary.LittleEndian.Uint32(data[8:]))
	flen := int64(binary.LittleEndian.Uint32(data[12:]))
	maxBits := curve.IndexBits()
	if maxBits > maxSketchBits {
		maxBits = maxSketchBits
	}
	if bits < 1 || bits > maxBits {
		return nil, 0, fmt.Errorf("sketch granularity 2^%d outside [2^1, 2^%d]", bits, maxBits)
	}
	if hashes < 1 || hashes > maxSketchHashes {
		return nil, 0, fmt.Errorf("sketch hash count %d outside [1, %d]", hashes, maxSketchHashes)
	}
	if blocks64 > uint64(1)<<uint(bits) {
		return nil, 0, fmt.Errorf("sketch claims %d occupied blocks of a 2^%d partition", blocks64, bits)
	}
	if flen < 1 || flen > maxSketchFilterBytes {
		return nil, 0, fmt.Errorf("sketch filter of %d bytes outside [1, %d]", flen, maxSketchFilterBytes)
	}
	dims := curve.Dims()
	size := 16 + 2*dims + int(flen)
	if len(data) < size {
		return nil, 0, fmt.Errorf("sketch section truncated (%d of %d bytes)", len(data), size)
	}
	sk := &Sketch{
		bits:   bits,
		shift:  uint(curve.IndexBits() - bits),
		hashes: hashes,
		blocks: int(blocks64),
		min:    append([]byte{}, data[16:16+dims]...),
		max:    append([]byte{}, data[16+dims:16+2*dims]...),
		filter: append([]byte{}, data[16+2*dims:size]...),
	}
	for j := 0; j < dims; j++ {
		if sk.blocks > 0 && sk.min[j] > sk.max[j] {
			return nil, 0, fmt.Errorf("sketch envelope inverted in dimension %d", j)
		}
	}
	return sk, size, nil
}
