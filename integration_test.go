package s3

// End-to-end user journey: build an archive from video, persist it, load
// it in a fresh detector, calibrate, detect a transformed copy, monitor a
// stream incrementally, extend the archive by merging new material, and
// withdraw a video — the complete lifecycle a deployment would run.

import (
	"path/filepath"
	"testing"

	"s3cbcd/internal/vidsim"
)

func TestFullLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "archive.s3db")

	// 1. Index three reference videos and persist.
	refs := make([]*Video, 3)
	in := NewVideoIndexer(CBCDConfig{})
	for i := range refs {
		refs[i] = GenerateVideo(int64(500+i), 200)
		if n := in.AddSequence(uint32(i+1), refs[i]); n == 0 {
			t.Fatalf("video %d produced no fingerprints", i)
		}
	}
	det, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveDetectorDB(det, path, 12); err != nil {
		t.Fatal(err)
	}

	// 2. Load in a fresh detector and calibrate.
	det2, err := OpenDetector(path, CBCDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	thr, err := CalibrateThreshold(det2, []*Video{
		GenerateVideo(600, 200), GenerateVideo(601, 200),
	})
	if err != nil {
		t.Fatal(err)
	}
	det2.SetVoteThreshold(thr + thr/2)

	// 3. Detect a gamma-graded copy.
	clip := &Video{FPS: 25, Frames: refs[1].Frames[30:150]}
	copyClip := vidsim.ApplySeq(vidsim.Gamma{G: 1.5}, clip)
	dets, err := det2.DetectClip(copyClip)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 || dets[0].ID != 2 {
		t.Fatalf("reloaded detector missed the copy: %+v", dets)
	}

	// 4. Monitor a stream incrementally.
	stream := &Video{FPS: 25}
	stream.Frames = append(stream.Frames, GenerateVideo(602, 140).Frames...)
	stream.Frames = append(stream.Frames, refs[0].Frames[20:160]...)
	sm, err := NewStreamMonitor(det2, 200, 100)
	if err != nil {
		t.Fatal(err)
	}
	var streamDets []StreamDetection
	for i := 0; i < stream.Len(); i += 50 {
		end := i + 50
		if end > stream.Len() {
			end = stream.Len()
		}
		out, err := sm.Feed(stream.Frames[i:end])
		if err != nil {
			t.Fatal(err)
		}
		streamDets = append(streamDets, out...)
	}
	tail, err := sm.Close()
	if err != nil {
		t.Fatal(err)
	}
	streamDets = append(streamDets, tail...)
	found := false
	for _, d := range streamDets {
		if d.ID == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("stream copy of video 1 missed: %+v", streamDets)
	}

	// 5. Grow the archive by merging a new batch, then withdraw video 2.
	idx, err := OpenIndex(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	in2 := NewVideoIndexer(CBCDConfig{})
	in2.AddSequence(10, GenerateVideo(700, 150))
	newDet, err := in2.Build()
	if err != nil {
		t.Fatal(err)
	}
	newPath := filepath.Join(dir, "new.s3db")
	if err := SaveDetectorDB(newDet, newPath, 12); err != nil {
		t.Fatal(err)
	}
	newIdx, err := OpenIndex(newPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeIndexes(idx, newIdx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != idx.Len()+newIdx.Len() {
		t.Fatalf("merged %d, want %d", merged.Len(), idx.Len()+newIdx.Len())
	}
	withdrawn, err := FilterIndex(merged, func(id, _ uint32) bool { return id != 2 }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if withdrawn.Len() >= merged.Len() {
		t.Fatal("withdrawal removed nothing")
	}

	// 6. The withdrawn archive no longer detects video 2 but still
	// detects video 1.
	mergedDet, err := NewDetector(withdrawn, CBCDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mergedDet.SetVoteThreshold(thr + thr/2)
	d2, err := mergedDet.DetectClip(copyClip)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range d2 {
		if d.ID == 2 {
			t.Fatalf("withdrawn video still detected: %+v", d)
		}
	}
	d1, err := mergedDet.DetectClip(&Video{FPS: 25, Frames: refs[0].Frames[30:150]})
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) == 0 || d1[0].ID != 1 {
		t.Fatalf("remaining video not detected after withdrawal: %+v", d1)
	}
}
