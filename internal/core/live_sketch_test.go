package core

// Sketch + codec correctness at the index level: with per-segment
// sketches consulted before refinement and cold segments serving lean /
// quantize-filtered visits, every query must still answer byte-
// identically to the monolithic resident rebuild — a skipped segment is
// a *proof* of zero matches, a rejected candidate a *proof* it lies
// outside the radius, so turning the whole machinery on must be
// observationally invisible. Run under -race these also exercise the
// snapshot/skip interleavings.

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"s3cbcd/internal/faultfs"
	"s3cbcd/internal/store"
)

// sketchTestOptions pushes every sealed segment cold (like
// coldTestOptions) and turns both new mechanisms on.
func sketchTestOptions(r *rand.Rand, cache *store.BlockCache) LiveOptions {
	opt := coldTestOptions(r, cache)
	opt.Sketch = true
	opt.ColdCodec = true
	return opt
}

func TestLiveIndexSketchCodecEquivalentQuick(t *testing.T) {
	var totalSkipped, totalRejects int64
	scenario := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		budget := []int64{0, 512, 4096}[r.Intn(3)]
		dir := t.TempDir()
		li, err := OpenLiveIndex(liveTestCurve(), dir,
			sketchTestOptions(r, store.NewBlockCache(budget)))
		if err != nil {
			t.Fatal(err)
		}
		defer li.Close()

		var model []store.Record
		nOps := 4 + r.Intn(8)
		checkpoint := r.Intn(nOps)
		for op := 0; op < nOps; op++ {
			if r.Intn(10) < 7 {
				batch := make([]store.Record, r.Intn(60))
				for i := range batch {
					batch[i] = randLiveRecord(r)
				}
				if err := li.Ingest(batch); err != nil {
					t.Fatal(err)
				}
				model = append(model, batch...)
			} else {
				id := uint32(r.Intn(6))
				if err := li.DeleteVideo(id); err != nil {
					t.Fatal(err)
				}
				kept := model[:0:0]
				for _, rec := range model {
					if rec.ID != id {
						kept = append(kept, rec)
					}
				}
				model = kept
			}
			if op == checkpoint && !checkLiveEquivalence(t, li, model, r, "sketch mid-schedule") {
				return false
			}
		}
		if !checkLiveEquivalence(t, li, model, r, "sketch after schedule") {
			return false
		}
		if err := li.Compact(); err != nil {
			t.Fatal(err)
		}
		if !checkLiveEquivalence(t, li, model, r, "sketch after compaction") {
			return false
		}
		st := li.Stats()
		if st.Segments > 0 && st.SketchSegments != st.Segments {
			t.Errorf("seed %d: %d of %d segments carry sketches", seed, st.SketchSegments, st.Segments)
			return false
		}
		if st.SketchConsults == 0 && st.Segments > 0 {
			t.Errorf("seed %d: queries over %d sketched segments never consulted a sketch", seed, st.Segments)
			return false
		}
		totalSkipped += st.SegmentsSkipped
		totalRejects += st.QuantizedRejects

		// Reopen with sketches+codec on: recovery must pick the embedded
		// sketches back up from the v4 files.
		if err := li.Close(); err != nil {
			t.Fatal(err)
		}
		reopened, err := OpenLiveIndex(liveTestCurve(), dir, LiveOptions{
			Depth: liveTestDepth, ColdRecords: 1, Cache: store.NewBlockCache(budget),
			Sketch: true, ColdCodec: true})
		if err != nil {
			t.Fatal(err)
		}
		defer reopened.Close()
		if st := reopened.Stats(); st.Segments > 0 && st.SketchSegments == 0 {
			t.Errorf("seed %d: reopen recovered no sketches from %d segments", seed, st.Segments)
			return false
		}
		if !checkLiveEquivalence(t, reopened, model, r, "sketch after reopen") {
			return false
		}
		// And with everything off: the same v4 files serve a plain index.
		if err := reopened.Close(); err != nil {
			t.Fatal(err)
		}
		plain, err := OpenLiveIndex(liveTestCurve(), dir, LiveOptions{Depth: liveTestDepth})
		if err != nil {
			t.Fatal(err)
		}
		defer plain.Close()
		return checkLiveEquivalence(t, plain, model, r, "plain reopen of sketched files")
	}
	cfg := &quick.Config{MaxCount: 8}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(scenario, cfg); err != nil {
		t.Fatal(err)
	}
	// Across all schedules the machinery must have actually fired — a
	// sketch that never skips or a codec that never rejects would make the
	// equivalence above vacuous.
	if totalSkipped == 0 {
		t.Error("no schedule ever skipped a segment by sketch")
	}
	if totalRejects == 0 {
		t.Error("no schedule ever rejected a candidate on quantized codes")
	}
}

// TestLiveIndexSketchSkipsDeterministic pins the skip decision on a
// crafted layout: all records in one corner of the space, queries in the
// opposite corner. Every sealed segment must be skipped — by Bloom
// filter for statistical plans, by filter or envelope for range queries
// — and the answers must be the (empty) truth.
func TestLiveIndexSketchSkipsDeterministic(t *testing.T) {
	li, err := OpenLiveIndex(liveTestCurve(), t.TempDir(), LiveOptions{
		Depth:           liveTestDepth,
		MemtableRecords: 8,
		ColdRecords:     1,
		Sketch:          true,
		ColdCodec:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer li.Close()
	r := rand.New(rand.NewSource(3))
	recs := make([]store.Record, 64)
	for i := range recs {
		fp := make([]byte, liveTestDims)
		for j := range fp {
			fp[j] = byte(r.Intn(4)) // low corner only
		}
		recs[i] = store.Record{FP: fp, ID: 1, TC: uint32(i)}
	}
	if err := li.Ingest(recs); err != nil {
		t.Fatal(err)
	}
	if err := li.Flush(); err != nil {
		t.Fatal(err)
	}
	st := li.Stats()
	if st.Segments == 0 || st.SketchSegments != st.Segments {
		t.Fatalf("expected every sealed segment sketched: %+v", st)
	}

	ctx := context.Background()
	far := []byte{31, 31, 31, 31}
	sq := StatQuery{Alpha: 0.9, Model: IsoNormal{D: liveTestDims, Sigma: 1.5}}
	if ms, _, err := li.SearchStat(ctx, far, sq); err != nil {
		t.Fatal(err)
	} else if len(ms) != 0 {
		t.Fatalf("far statistical query returned %d matches", len(ms))
	}
	if ms, _, err := li.SearchRange(ctx, far, 3); err != nil {
		t.Fatal(err)
	} else if len(ms) != 0 {
		t.Fatalf("far range query returned %d matches", len(ms))
	}
	st = li.Stats()
	if st.SegmentsSkipped == 0 {
		t.Fatalf("far queries never skipped a segment: %+v", st)
	}
	if st.SketchConsults < st.SegmentsSkipped {
		t.Fatalf("skipped %d segments with only %d consults", st.SegmentsSkipped, st.SketchConsults)
	}

	// A near query must still find its records — the skip machinery only
	// ever removes provably-empty work.
	near := recs[0].FP
	ms, _, err := li.SearchRange(ctx, near, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("near range query found nothing")
	}
}

// TestColdReadChaosSketchCodec is TestColdReadChaos with the sketch and
// codec machinery on: random read faults now also land in the lean,
// packed-code and per-survivor fallback preads. Every query must still
// either error or answer exactly; a skipped segment (which reads
// nothing) must never turn a faulted query into a wrong one.
func TestColdReadChaosSketchCodec(t *testing.T) {
	var (
		chaos   atomic.Bool
		chaosMu sync.Mutex
		rng     = rand.New(rand.NewSource(17))
	)
	fs := faultfs.New(store.OSFS, func(op faultfs.Op, _ string, _ int) faultfs.Action {
		if !chaos.Load() || (op != faultfs.OpRead && op != faultfs.OpReadAt) {
			return faultfs.Pass
		}
		chaosMu.Lock()
		defer chaosMu.Unlock()
		if rng.Float64() >= 0.3 {
			return faultfs.Pass
		}
		if rng.Intn(2) == 0 {
			return faultfs.ShortWrite
		}
		return faultfs.Fail
	})
	li, err := OpenLiveIndex(liveTestCurve(), t.TempDir(), LiveOptions{
		Depth:           liveTestDepth,
		MemtableRecords: 50,
		ColdRecords:     1,
		Cache:           store.NewBlockCache(2048),
		FS:              fs,
		Sketch:          true,
		ColdCodec:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer li.Close()
	r := rand.New(rand.NewSource(18))
	recs := make([]store.Record, 300)
	for i := range recs {
		recs[i] = randLiveRecord(r)
	}
	if err := li.Ingest(recs); err != nil {
		t.Fatal(err)
	}
	if err := li.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := li.Stats(); st.ColdSegments == 0 || st.SketchSegments == 0 {
		t.Fatalf("no sketched cold segments to fault: %+v", st)
	}

	chaos.Store(true)
	refDB, err := store.Build(liveTestCurve(), recs)
	if err != nil {
		t.Fatal(err)
	}
	refIx, err := NewIndex(refDB, liveTestDepth)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sq := StatQuery{Alpha: 0.9, Model: IsoNormal{D: liveTestDims, Sigma: 2.5}}
	ok, failed := 0, 0
	for i := 0; i < 60; i++ {
		q := recs[i%len(recs)].FP
		if i%2 == 0 {
			got, _, err := li.SearchStat(ctx, q, sq)
			if err != nil {
				failed++
				continue
			}
			ok++
			want, _, err := refIx.SearchStat(q, sq)
			if err != nil {
				t.Fatal(err)
			}
			if !matchesEqual(want, got) {
				t.Fatalf("stat query %d survived chaos but answered wrong (%d vs %d)", i, len(got), len(want))
			}
			continue
		}
		eps := 2 + 6*r.Float64()
		got, _, err := li.SearchRange(ctx, q, eps)
		if err != nil {
			failed++
			continue
		}
		ok++
		want, _, err := refIx.SearchRange(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !matchesEqual(want, got) {
			t.Fatalf("range query %d survived chaos but answered wrong (%d vs %d)", i, len(got), len(want))
		}
	}
	if failed == 0 {
		t.Fatal("30% read-fault rate never failed a query through the codec paths")
	}
	if ok == 0 {
		t.Fatal("no query ever succeeded under chaos")
	}
	chaos.Store(false)
	if err := li.Close(); err != nil {
		t.Fatal(err)
	}
	if lh := fs.OpenHandles(); lh != 0 {
		t.Fatalf("closed index leaked %d descriptors", lh)
	}
}
