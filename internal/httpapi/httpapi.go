// Package httpapi exposes an S³ index over HTTP with a small JSON API, so
// the reference database can be queried as a service (the deployment mode
// of a monitoring installation where extraction happens near the capture
// hardware and the archive index is centralized).
//
// Endpoints:
//
//	GET  /stats                      database and index facts
//	POST /search/statistical         {"fingerprint": [..], "alpha": 0.8, "sigma": 20}
//	POST /search/range               {"fingerprint": [..], "epsilon": 95}
//	POST /search/knn                 {"fingerprint": [..], "k": 10}
//
// Fingerprints are arrays of D integers in [0, 255]. Responses carry the
// matches (id, tc, x, y, dist) plus plan/search diagnostics.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"

	"s3cbcd/internal/core"
	"s3cbcd/internal/store"
)

// Server wires an index into an http.Handler.
type Server struct {
	ix  *core.Index
	mux *http.ServeMux
}

// New returns a ready handler over the given database.
func New(db *store.DB, depth int) (*Server, error) {
	ix, err := core.NewIndex(db, depth)
	if err != nil {
		return nil, err
	}
	s := &Server{ix: ix, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /search/statistical", s.handleStat)
	s.mux.HandleFunc("POST /search/range", s.handleRange)
	s.mux.HandleFunc("POST /search/knn", s.handleKNN)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// matchJSON is the wire form of a search result.
type matchJSON struct {
	ID   uint32  `json:"id"`
	TC   uint32  `json:"tc"`
	X    uint16  `json:"x"`
	Y    uint16  `json:"y"`
	Dist float64 `json:"dist,omitempty"`
}

func toJSON(ms []core.Match) []matchJSON {
	out := make([]matchJSON, len(ms))
	for i, m := range ms {
		out[i] = matchJSON{ID: m.ID, TC: m.TC, X: m.X, Y: m.Y}
		if m.Dist >= 0 {
			out[i].Dist = m.Dist
		}
	}
	return out
}

// searchRequest is the common request body.
type searchRequest struct {
	Fingerprint []int   `json:"fingerprint"`
	Alpha       float64 `json:"alpha"`
	Sigma       float64 `json:"sigma"`
	Epsilon     float64 `json:"epsilon"`
	K           int     `json:"k"`
	MaxLeaves   int     `json:"maxLeaves"`
}

// fingerprint validates and converts the request fingerprint.
func (s *Server) fingerprint(req *searchRequest) ([]byte, error) {
	dims := s.ix.DB().Dims()
	if len(req.Fingerprint) != dims {
		return nil, fmt.Errorf("fingerprint has %d components, index needs %d", len(req.Fingerprint), dims)
	}
	fp := make([]byte, dims)
	for i, v := range req.Fingerprint {
		if v < 0 || v > 255 {
			return nil, fmt.Errorf("component %d = %d outside [0,255]", i, v)
		}
		fp[i] = byte(v)
	}
	return fp, nil
}

func decode(w http.ResponseWriter, r *http.Request) (*searchRequest, bool) {
	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return nil, false
	}
	return &req, true
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func reply(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	db := s.ix.DB()
	reply(w, map[string]interface{}{
		"records": db.Len(),
		"dims":    db.Dims(),
		"order":   db.Curve().Order(),
		"depth":   s.ix.Depth(),
	})
}

func (s *Server) handleStat(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	fp, err := s.fingerprint(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Sigma <= 0 {
		httpError(w, http.StatusBadRequest, "sigma must be > 0")
		return
	}
	sq := core.StatQuery{Alpha: req.Alpha, Model: core.IsoNormal{D: s.ix.DB().Dims(), Sigma: req.Sigma}}
	matches, plan, err := s.ix.SearchStat(fp, sq)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	reply(w, map[string]interface{}{
		"matches": toJSON(matches),
		"plan": map[string]interface{}{
			"blocks":      plan.Blocks,
			"mass":        plan.Mass,
			"threshold":   plan.Threshold,
			"filterIters": plan.FilterIters,
			"depth":       plan.Depth,
		},
	})
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	fp, err := s.fingerprint(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	matches, plan, err := s.ix.SearchRange(fp, req.Epsilon)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	reply(w, map[string]interface{}{
		"matches": toJSON(matches),
		"blocks":  plan.Blocks,
	})
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	fp, err := s.fingerprint(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	matches, stats, err := s.ix.SearchKNN(fp, req.K, req.MaxLeaves)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	reply(w, map[string]interface{}{
		"matches": toJSON(matches),
		"exact":   stats.Exact,
		"scanned": stats.Scanned,
	})
}
