package s3

import (
	"context"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"s3cbcd/internal/vidsim"
)

func randomRecords(r *rand.Rand, dims, n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		fp := make([]byte, dims)
		for j := range fp {
			fp[j] = byte(r.Intn(256))
		}
		recs[i] = Record{FP: fp, ID: uint32(i % 10), TC: uint32(i)}
	}
	return recs
}

func TestIndexLifecycle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	recs := randomRecords(r, 8, 1000)
	x, err := BuildIndex(8, recs, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if x.Len() != 1000 || x.Dims() != 8 {
		t.Fatalf("Len=%d Dims=%d", x.Len(), x.Dims())
	}
	sq := StatQuery{Alpha: 0.8, Model: IsoNormal{D: 8, Sigma: 10}}
	q := recs[0].FP
	matches, plan, err := x.StatSearch(q, sq)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mass < 0.8 {
		t.Fatalf("plan mass %v", plan.Mass)
	}
	foundSelf := false
	for _, m := range matches {
		if m.ID == recs[0].ID && m.TC == recs[0].TC {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Fatal("statistical search around a stored fingerprint did not return it")
	}

	// Range and scan agree.
	rm, _, err := x.RangeSearch(q, 50)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := x.ScanSearch(q, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(rm) != len(sm) {
		t.Fatalf("range %d vs scan %d results", len(rm), len(sm))
	}

	// Save / reload round trip.
	path := filepath.Join(t.TempDir(), "idx.s3db")
	if err := x.Save(path, 8); err != nil {
		t.Fatal(err)
	}
	y, err := OpenIndex(path, x.Depth())
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := y.StatSearch(q, sq)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2) != len(matches) {
		t.Fatalf("reloaded index returned %d matches, original %d", len(m2), len(matches))
	}

	// Disk batch equals in-memory.
	d, err := OpenDiskIndex(path, x.Depth())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Count() != 1000 {
		t.Fatalf("disk count %d", d.Count())
	}
	res, stats, err := d.SearchBatch([][]byte{q}, sq, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0]) != len(matches) {
		t.Fatalf("disk batch %d matches, memory %d", len(res[0]), len(matches))
	}
	if stats.SectionsLoaded == 0 {
		t.Fatal("no sections loaded")
	}
}

func TestTuneSetsDepth(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x, err := BuildIndex(8, randomRecords(r, 8, 2000), IndexOptions{Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	samples := make([][]byte, 5)
	for i := range samples {
		samples[i] = randomRecords(r, 8, 1)[0].FP
	}
	sweep, err := x.Tune(samples, StatQuery{Alpha: 0.8, Model: IsoNormal{D: 8, Sigma: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) == 0 {
		t.Fatal("empty sweep")
	}
}

func TestMatchedRangeRadius(t *testing.T) {
	eps := MatchedRangeRadius(20, 20, 0.8)
	if eps < 90 || eps < MatchedRangeRadius(20, 20, 0.5) {
		t.Fatalf("eps = %v", eps)
	}
}

func TestVideoPipelineFacade(t *testing.T) {
	ref := GenerateVideo(42, 150)
	in := NewVideoIndexer(CBCDConfig{})
	if n := in.AddSequence(1, ref); n == 0 {
		t.Fatal("no fingerprints extracted")
	}
	det, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	dets, err := det.DetectClip(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 || dets[0].ID != 1 {
		t.Fatalf("self-detection failed: %+v", dets)
	}

	locals := ExtractFingerprints(ref, ExtractConfig{})
	if len(locals) == 0 {
		t.Fatal("facade extraction empty")
	}

	est, err := EstimateDistortion([]*Video{ref}, vidsim.Gamma{G: 1.5}, ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Sigma <= 0 {
		t.Fatalf("estimate sigma %v", est.Sigma)
	}
}

func TestNewDetectorDimsCheck(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x, err := BuildIndex(8, randomRecords(r, 8, 10), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDetector(x, CBCDConfig{}); err == nil {
		t.Fatal("8-dim index accepted for 20-dim detector")
	}
	x20, err := BuildIndex(FingerprintDims, randomRecords(r, FingerprintDims, 10), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDetector(x20, CBCDConfig{}); err != nil {
		t.Fatal(err)
	}
}

func TestShardedIndexLifecycle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	recs := randomRecords(r, 8, 1200)
	plain, err := BuildIndex(8, recs, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := BuildIndex(8, recs, IndexOptions{Shards: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", sharded.Shards())
	}
	sq := StatQuery{Alpha: 0.8, Model: IsoNormal{D: 8, Sigma: 10}}
	queries := make([][]byte, 25)
	for i := range queries {
		queries[i] = recs[r.Intn(len(recs))].FP
	}
	batch, err := sharded.SearchStatBatch(context.Background(), queries, sq)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, _, err := plain.StatSearch(q, sq)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := sharded.StatSearch(q, sq)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: sharded StatSearch differs from unsharded", i)
		}
		if !reflect.DeepEqual(batch[i], want) {
			t.Fatalf("query %d: SearchStatBatch differs from unsharded", i)
		}
	}

	// Save embeds the shard manifest; OpenIndex restores the layout.
	path := filepath.Join(t.TempDir(), "sharded.s3db")
	if err := sharded.Save(path, 8); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenIndex(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Shards() != 4 {
		t.Fatalf("reopened Shards() = %d, want 4", reopened.Shards())
	}
	for i, q := range queries {
		want, _, err := plain.StatSearch(q, sq)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := reopened.StatSearch(q, sq)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: reopened sharded index differs", i)
		}
	}

	// The sharded file still works for the disk index path.
	d, err := OpenDiskIndex(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	dres, _, err := d.SearchBatch(queries[:5], sq, 400)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dres {
		want, _, err := plain.StatSearch(queries[i], sq)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dres[i], want) {
			t.Fatalf("query %d: disk index over sharded file differs", i)
		}
	}

	// An explicit shard option overrides the stored manifest.
	re2, err := OpenIndexOptions(path, IndexOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if re2.Shards() != 2 {
		t.Fatalf("override Shards() = %d, want 2", re2.Shards())
	}
}
