package core

// k-nearest-neighbor search on the S³ structure, implemented as an exact
// best-first traversal of the block tree plus an early-stopping
// approximate variant. The paper argues (Sections I and V-C) that k-NN is
// the wrong query type for copy detection — the number of relevant
// fingerprints per query is highly variable, and growing database density
// pushes relevant fingerprints out of the fixed-size answer. SearchKNN
// exists to reproduce that argument experimentally (cmd/s3bench -exp knn)
// and as a general-purpose query for other applications of the index.

import (
	"s3cbcd/internal/hilbert"
)

// KNNStats reports the work a k-NN search performed.
type KNNStats struct {
	// Leaves is the number of leaf blocks refined.
	Leaves int
	// Scanned is the number of records whose distance was evaluated.
	Scanned int
	// Exact is true when the traversal proved the answer exact (it
	// exhausted every node closer than the k-th neighbor).
	Exact bool
}

// nodeEntry is a prioritized block-tree node.
type nodeEntry struct {
	node   hilbert.Node
	distSq float64
}

type nodeQueue []nodeEntry

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].distSq < q[j].distSq }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(nodeEntry)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// resultHeap is a max-heap of the current k best matches (worst on top).
type resultHeap []Match

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Match)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// SearchKNN returns the k nearest stored fingerprints to q by L2
// distance, closest first. With maxLeaves <= 0 the search is exact: it
// expands blocks in increasing distance order and stops once the nearest
// unexplored block is farther than the k-th best match. With maxLeaves >
// 0 it stops early after refining that many leaf blocks — the
// "early stopping" approximate k-NN family the paper cites ([14], [15]).
func (ix *Index) SearchKNN(q []byte, k int, maxLeaves int) ([]Match, KNNStats, error) {
	return ix.SearchKNNFilter(q, k, maxLeaves, nil)
}

// SearchKNNFilter is SearchKNN restricted to records whose video
// identifier the keep predicate accepts; nil keep accepts every record.
// Rejected records are skipped before they can occupy a result slot, so
// the answer is the k nearest *kept* records — the form a segmented live
// index needs to search past tombstoned videos. The traversal itself
// lives in searchKNNSource (refine.go), shared with disk-backed cold
// segments; an in-memory DB never fails, so the error is always the
// argument validation's.
func (ix *Index) SearchKNNFilter(q []byte, k int, maxLeaves int, keep func(id uint32) bool) ([]Match, KNNStats, error) {
	return searchKNNSource(ix.curve, ix.depth, ix.db, q, k, maxLeaves, keep)
}

// nodeDistSq is the squared distance from q to the nearest integer grid
// point of the node rectangle.
func nodeDistSq(q []float64, lo, hi []uint32) float64 {
	s := 0.0
	for j := range lo {
		s += dimDistSq(q[j], lo[j], hi[j])
	}
	return s
}
