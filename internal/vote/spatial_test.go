package vote

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitAxisRecoversLinearModel(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		a := 0.5 + r.Float64()*1.5
		tr := (r.Float64() - 0.5) * 40
		var ref, cand []float64
		for i := 0; i < 40; i++ {
			x := r.Float64() * 100
			ref = append(ref, x)
			cand = append(cand, a*x+tr+(r.Float64()-0.5)*0.5)
		}
		// 20% outliers.
		for i := 0; i < 8; i++ {
			ref = append(ref, r.Float64()*100)
			cand = append(cand, r.Float64()*100)
		}
		m := fitAxis(ref, cand)
		if math.Abs(m.A-a) > 0.05 {
			t.Fatalf("trial %d: slope %v, want %v", trial, m.A, a)
		}
		if math.Abs(m.T-tr) > 2 {
			t.Fatalf("trial %d: intercept %v, want %v", trial, m.T, tr)
		}
	}
}

func TestFitAxisDegenerate(t *testing.T) {
	if m := fitAxis(nil, nil); m.A != 1 || m.T != 0 {
		t.Fatalf("empty: %+v", m)
	}
	if m := fitAxis([]float64{5}, []float64{9}); m.A != 1 || m.T != 4 {
		t.Fatalf("single: %+v", m)
	}
	// All references identical: pure translation fallback.
	m := fitAxis([]float64{7, 7, 7}, []float64{10, 10, 10})
	if m.A != 1 || math.Abs(m.T-3) > 1e-9 {
		t.Fatalf("constant refs: %+v", m)
	}
	// Absurd slope estimates are rejected.
	m = fitAxis([]float64{0, 0.001}, []float64{0, 100})
	if m.A != 1 {
		t.Fatalf("absurd slope kept: %+v", m)
	}
}

func TestSpatialVotesCounts(t *testing.T) {
	var obs []spatialObservation
	// 10 coherent at scale 0.8 translation (5, -3).
	for i := 0; i < 10; i++ {
		x, y := float64(10*i), float64(7*i)
		obs = append(obs, spatialObservation{
			refX: x, refY: y,
			candX: 0.8*x + 5, candY: 0.8*y - 3,
		})
	}
	// 4 incoherent.
	for i := 0; i < 4; i++ {
		obs = append(obs, spatialObservation{refX: float64(13 * i), refY: 50, candX: 200, candY: 300})
	}
	votes, mx, my := spatialVotes(obs, 2)
	if votes != 10 {
		t.Fatalf("votes = %d, want 10", votes)
	}
	if math.Abs(mx.A-0.8) > 0.02 || math.Abs(my.A-0.8) > 0.02 {
		t.Fatalf("scales %v %v, want 0.8", mx.A, my.A)
	}
	if v, _, _ := spatialVotes(nil, 2); v != 0 {
		t.Fatalf("empty votes %d", v)
	}
}

// TestSpatialExtensionImprovesDiscriminance is the point of the paper's
// future work: random matches that happen to be temporally coherent are
// rarely spatially coherent too, so the spatial vote suppresses them while
// keeping geometric copies.
func TestSpatialExtensionImprovesDiscriminance(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	// Build candidates where id 1 is a true copy (consistent offset AND a
	// consistent spatial map at scale 0.9), and id 2 is temporal-only
	// noise: a consistent offset but random positions (as happens when
	// near-duplicate background fingerprints at many positions all match).
	var cands []Candidate
	for j := 0; j < 20; j++ {
		tcQ := uint32(1000 + 10*j)
		x := r.Float64() * 300
		y := r.Float64() * 200
		c := Candidate{TC: tcQ, X: 0.9*x + 4, Y: 0.9*y - 2}
		c.Matches = append(c.Matches, Match{ID: 1, TC: tcQ - 77, X: uint16(x), Y: uint16(y)})
		c.Matches = append(c.Matches, Match{ID: 2, TC: tcQ - 200,
			X: uint16(r.Intn(300)), Y: uint16(r.Intn(200))})
		cands = append(cands, c)
	}
	temporal := DefaultConfig()
	spatial := DefaultConfig()
	spatial.SpatialTolerance = 4

	st := Score(cands, temporal)
	if len(st) != 2 || st[0].Votes < 18 || st[1].Votes < 18 {
		t.Fatalf("temporal votes should be high for both ids: %+v", st)
	}
	ss := Score(cands, spatial)
	var v1, v2 int
	var scale float64
	for _, d := range ss {
		switch d.ID {
		case 1:
			v1 = d.Votes
			scale = d.ScaleX
		case 2:
			v2 = d.Votes
		}
	}
	if v1 < 18 {
		t.Fatalf("true copy lost spatial votes: %d", v1)
	}
	if v2 > v1/3 {
		t.Fatalf("spatially incoherent id kept %d votes vs %d", v2, v1)
	}
	if math.Abs(scale-0.9) > 0.05 {
		t.Fatalf("fitted scale %v, want 0.9", scale)
	}
}
