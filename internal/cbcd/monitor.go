package cbcd

import (
	"fmt"
	"sort"

	"s3cbcd/internal/vidsim"
	"s3cbcd/internal/vote"
)

// StreamDetection is a detection localized in the monitored stream.
type StreamDetection struct {
	vote.Detection
	// WindowStart and WindowEnd delimit the stream frame range whose
	// buffered results produced the detection.
	WindowStart, WindowEnd uint32
}

// Monitor applies the detector continuously to a stream: search results
// are "stored in a buffer for a fixed number of key-frames" (Section III)
// and the voting decision runs over a sliding window.
type Monitor struct {
	det *Detector
	// WindowFrames is the buffer length in stream frames. Default 250
	// (10 s at 25 fps, the paper's clip length).
	WindowFrames int
	// HopFrames is the window stride. Default WindowFrames/2.
	HopFrames int
}

// NewMonitor wraps a detector with the default 10-second window.
func NewMonitor(det *Detector) *Monitor {
	return &Monitor{det: det, WindowFrames: 250, HopFrames: 125}
}

// ProcessStream extracts and searches the stream's fingerprints once,
// then slides the decision window over the buffered results. Detections
// of the same identifier in overlapping windows are merged, keeping the
// strongest vote. Results are ordered by window start, then votes.
func (m *Monitor) ProcessStream(seq *vidsim.Sequence) ([]StreamDetection, error) {
	if m.WindowFrames < 1 {
		return nil, fmt.Errorf("cbcd: monitor window %d frames", m.WindowFrames)
	}
	hop := m.HopFrames
	if hop < 1 {
		hop = m.WindowFrames / 2
		if hop < 1 {
			hop = 1
		}
	}
	locals := m.det.cfg.Extract(seq, m.det.cfg.Fingerprint)
	cands, err := m.det.SearchLocals(locals)
	if err != nil {
		return nil, err
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].TC < cands[j].TC })

	type key struct {
		id     uint32
		window uint32
	}
	best := map[key]StreamDetection{}
	n := seq.Len()
	lo := 0
	for start := 0; start == 0 || start < n; start += hop {
		end := start + m.WindowFrames
		// Advance the buffer to this window.
		for lo < len(cands) && int(cands[lo].TC) < start {
			lo++
		}
		hi := lo
		for hi < len(cands) && int(cands[hi].TC) < end {
			hi++
		}
		if hi == lo {
			if end >= n {
				break
			}
			continue
		}
		for _, det := range vote.Decide(cands[lo:hi], m.det.cfg.Vote) {
			// Merge overlapping windows: the canonical window of a
			// detection is the hop bucket of its first candidate frame.
			k := key{id: det.ID, window: uint32(start / (2 * hop))}
			if cur, ok := best[k]; !ok || det.Votes > cur.Votes {
				best[k] = StreamDetection{
					Detection:   det,
					WindowStart: uint32(start),
					WindowEnd:   uint32(end),
				}
			}
		}
		if end >= n {
			break
		}
	}
	out := make([]StreamDetection, 0, len(best))
	for _, d := range best {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WindowStart != out[j].WindowStart {
			return out[i].WindowStart < out[j].WindowStart
		}
		if out[i].Votes != out[j].Votes {
			return out[i].Votes > out[j].Votes
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}
