package store

import (
	"sync"
	"sync/atomic"

	"s3cbcd/internal/obs"
)

// BlockCache is a fixed-budget LRU cache of decoded record blocks,
// shared by every cold segment of a process: one budget bounds the
// resident record bytes no matter how many segments the live index
// accumulates. Blocks are curve-section-aligned runs of records (see
// ColdFile); the cache key is (file, block index) under a process-unique
// file id, so entries of a closed segment can be dropped precisely.
//
// Cost accounting uses the block's on-disk record bytes, which is what
// ties the budget to the corpus size an operator can measure (10% of
// total record bytes, say). A block larger than the whole budget still
// caches — and is evicted as soon as the next block lands — so a
// pathological section cannot wedge the cache, only thrash it.
//
// Concurrency: one mutex guards the map and LRU list; the disk read of a
// miss runs outside it, with per-entry singleflight so concurrent misses
// on one block issue one read. Evicted chunks may still be referenced by
// in-flight readers — chunks are immutable, so that is safe; the garbage
// collector reclaims them once the readers drop.
type BlockCache struct {
	budget int64

	mu      sync.Mutex
	used    int64
	entries map[blockKey]*cacheEntry
	// Intrusive LRU list of ready entries: head is most recent, tail is
	// the eviction candidate. Loading entries are in the map (for
	// singleflight) but not in the list.
	head, tail *cacheEntry

	fileSeq atomic.Uint64

	hits        *obs.Counter
	misses      *obs.Counter
	evictions   *obs.Counter
	loadedBytes *obs.Counter
}

type blockKey struct {
	file  uint64
	block int
	kind  uint8
}

// Block kinds namespacing one file's cached areas: a codec-bearing cold
// file caches exact chunks, lean chunks and packed code rows for the
// same block index side by side.
const (
	blockExact uint8 = iota
	blockLean
	blockQFP
)

type cacheEntry struct {
	key  blockKey
	val  any // non-nil once loaded (*Chunk or []byte code rows)
	cost int64

	prev, next *cacheEntry

	// ready is closed when the load completes; err is the load failure
	// (the entry is removed from the map before ready closes on error).
	ready chan struct{}
	err   error
}

// NewBlockCache creates a cache bounded to budgetBytes of on-disk record
// bytes. A budget <= 0 disables retention: every access loads from disk
// (useful for measuring the uncached cost).
func NewBlockCache(budgetBytes int64) *BlockCache {
	return &BlockCache{
		budget:  budgetBytes,
		entries: make(map[blockKey]*cacheEntry),
		hits: obs.NewCounter("s3_blockcache_hits_total",
			"block lookups served from the cache (singleflight waiters included)"),
		misses: obs.NewCounter("s3_blockcache_misses_total",
			"block lookups that issued a disk read"),
		evictions: obs.NewCounter("s3_blockcache_evictions_total",
			"blocks evicted to fit the byte budget"),
		loadedBytes: obs.NewCounter("s3_blockcache_loaded_bytes_total",
			"on-disk record bytes read into the cache by misses"),
	}
}

// RegisterMetrics publishes the cache's counters plus gauges reading its
// occupancy into r. Call at most once per registry (one shared cache per
// process is the intended shape).
func (c *BlockCache) RegisterMetrics(r *obs.Registry) {
	r.MustRegister(c.hits, c.misses, c.evictions, c.loadedBytes)
	r.GaugeFunc("s3_blockcache_bytes", "on-disk record bytes currently cached",
		func() float64 { return float64(c.Stats().Bytes) })
	r.GaugeFunc("s3_blockcache_budget_bytes", "block cache byte budget",
		func() float64 { return float64(c.budget) })
	r.GaugeFunc("s3_blockcache_blocks", "blocks currently cached",
		func() float64 { return float64(c.Stats().Blocks) })
}

// CacheStats is a point-in-time report of a BlockCache.
type CacheStats struct {
	// Hits, Misses, Evictions and LoadedBytes are lifetime counters:
	// lookups served without a disk read, lookups that issued one, blocks
	// evicted for budget, and on-disk bytes those misses read.
	Hits, Misses, Evictions, LoadedBytes int64
	// Bytes and Blocks are the current occupancy; BudgetBytes the bound.
	Bytes       int64
	BudgetBytes int64
	Blocks      int
}

// Stats reports the cache's counters and occupancy.
func (c *BlockCache) Stats() CacheStats {
	c.mu.Lock()
	bytes, blocks := c.used, 0
	for e := c.head; e != nil; e = e.next {
		blocks++
	}
	c.mu.Unlock()
	return CacheStats{
		Hits:        c.hits.Value(),
		Misses:      c.misses.Value(),
		Evictions:   c.evictions.Value(),
		LoadedBytes: c.loadedBytes.Value(),
		Bytes:       bytes,
		BudgetBytes: c.budget,
		Blocks:      blocks,
	}
}

// Budget returns the cache's byte budget.
func (c *BlockCache) Budget() int64 { return c.budget }

// nextFileID allocates a process-unique id namespacing one file's blocks.
func (c *BlockCache) nextFileID() uint64 { return c.fileSeq.Add(1) }

// getOrLoad returns the cached value for key, or runs load (outside the
// cache lock, singleflighted per key) and caches its result. load
// returns the value and its budget cost in on-disk bytes; the value must
// be non-nil and immutable.
func (c *BlockCache) getOrLoad(key blockKey, load func() (any, int64, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.val != nil {
			c.moveToFront(e)
			c.mu.Unlock()
			c.hits.Inc()
			return e.val, nil
		}
		// Load in flight: wait for it off the lock. A waiter counts as a
		// hit — it issues no disk read of its own.
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		c.hits.Inc()
		return e.val, nil
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Inc()

	val, cost, err := load()
	c.mu.Lock()
	if err != nil {
		e.err = err
		// Remove before waking waiters so the next lookup retries the
		// load instead of caching the failure.
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
		close(e.ready)
		return nil, err
	}
	e.val, e.cost = val, cost
	c.loadedBytes.Add(cost)
	if c.entries[key] == e {
		// Still wanted (Drop may have disowned the entry mid-load).
		c.pushFront(e)
		c.used += cost
		c.evictOverBudget()
	}
	c.mu.Unlock()
	close(e.ready)
	return val, nil
}

// Drop discards every cached block of the given file. Called when a cold
// segment file closes; a load in flight for the file completes for its
// waiters but is not retained.
func (c *BlockCache) Drop(file uint64) {
	c.mu.Lock()
	for key, e := range c.entries {
		if key.file != file {
			continue
		}
		delete(c.entries, key)
		if e.val != nil {
			c.unlink(e)
			c.used -= e.cost
		}
	}
	c.mu.Unlock()
}

// evictOverBudget drops LRU-tail entries until the budget holds. Caller
// holds mu.
func (c *BlockCache) evictOverBudget() {
	for c.used > c.budget && c.tail != nil {
		e := c.tail
		c.unlink(e)
		delete(c.entries, e.key)
		c.used -= e.cost
		c.evictions.Inc()
	}
}

// pushFront inserts a ready entry at the LRU head. Caller holds mu.
func (c *BlockCache) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes an entry from the LRU list. Caller holds mu.
func (c *BlockCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront marks an entry most recently used. Caller holds mu.
func (c *BlockCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
