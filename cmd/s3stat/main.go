// Command s3stat inspects an S3DB database file: header geometry, record
// counts, curve-section occupancy (how evenly the archive spreads along
// the Hilbert curve), identifier statistics, and a partition-depth
// recommendation for the current size.
//
// Usage:
//
//	s3stat -db archive.s3db
//
// With -live DIR it instead inspects a live index directory: the
// committed manifest generation, each segment's record count and on-disk
// size, its sketch (size, Bloom false-positive budget and an estimated
// skip rate from deterministic block probes) and quantized codec if the
// file carries them, and — at the -cold-records threshold s3serve would
// apply — the resident/cold tier split with a suggested block-cache
// budget (10% of the cold tier's record bytes).
//
//	s3stat -live /var/lib/s3/live -cold-records 100000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"s3cbcd/internal/core"
	"s3cbcd/internal/store"
)

func fileSize(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("s3stat: ")
	var (
		dbPath      = flag.String("db", "archive.s3db", "database file")
		liveDir     = flag.String("live", "", "live index directory (overrides -db)")
		coldRecords = flag.Int("cold-records", 0,
			"tier threshold for the -live report (0 = all resident)")
		top = flag.Int("top", 5, "identifiers to list by fingerprint count")
	)
	flag.Parse()

	if *liveDir != "" {
		statLive(*liveDir, *coldRecords)
		return
	}

	fl, err := store.Open(*dbPath)
	if err != nil {
		log.Fatal(err)
	}
	defer fl.Close()
	curve := fl.Curve()
	fmt.Printf("file:           %s (format v%d)\n", *dbPath, fl.Version())
	fmt.Printf("geometry:       D=%d dims x K=%d bits (curve index %d bits)\n",
		curve.Dims(), curve.Order(), curve.IndexBits())
	fmt.Printf("records:        %d\n", fl.Count())
	fmt.Printf("section table:  2^%d sections\n", fl.SectionBits())
	if sk := fl.Sketch(); sk != nil {
		fmt.Printf("sketch:         %d bytes, %d blocks @ 2^%d, fp budget %.2g, est skip rate %.2f\n",
			sk.EncodedSize(), sk.Blocks(), sk.Bits(),
			sk.FalsePositiveRate(), sk.EstimatedSkipRate(4096))
	}
	if fl.HasCodec() {
		fmt.Printf("codec:          quantized record area present (lean + packed codes)\n")
	}

	// Section occupancy at the stored granularity.
	bits := fl.SectionBits()
	if bits > 10 {
		bits = 10
	}
	sizes := make([]int, 0, 1<<uint(bits))
	occupied := 0
	maxSec := 0
	for s := 0; s < 1<<uint(bits); s++ {
		lo, hi := fl.SectionRecordRange(bits, s)
		n := hi - lo
		sizes = append(sizes, n)
		if n > 0 {
			occupied++
		}
		if n > maxSec {
			maxSec = n
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	median := sizes[len(sizes)/2]
	fmt.Printf("occupancy:      %d/%d curve sections non-empty at 2^%d granularity\n",
		occupied, len(sizes), bits)
	fmt.Printf("                largest section %d records, median %d\n", maxSec, median)

	// Identifier statistics need the record payloads.
	db, err := fl.LoadAll()
	if err != nil {
		log.Fatal(err)
	}
	counts := map[uint32]int{}
	for i := 0; i < db.Len(); i++ {
		counts[db.ID(i)]++
	}
	type idCount struct {
		id uint32
		n  int
	}
	byCount := make([]idCount, 0, len(counts))
	for id, n := range counts {
		byCount = append(byCount, idCount{id, n})
	}
	sort.Slice(byCount, func(i, j int) bool {
		if byCount[i].n != byCount[j].n {
			return byCount[i].n > byCount[j].n
		}
		return byCount[i].id < byCount[j].id
	})
	fmt.Printf("identifiers:    %d distinct\n", len(counts))
	for i := 0; i < *top && i < len(byCount); i++ {
		fmt.Printf("                id %-8d %d fingerprints\n", byCount[i].id, byCount[i].n)
	}

	fmt.Printf("suggested p:    %d (DefaultDepth; run Index.Tune for the measured optimum)\n",
		core.DefaultDepth(curve, fl.Count()))
	if fl.Version() < 2 {
		fmt.Printf("note:           v1 file — no interest point positions; the spatial\n")
		fmt.Printf("                voting extension will see zero coordinates\n")
	}
}

// statLive reports a live index directory's committed snapshot: segment
// sizes and the resident/cold split a server opening it with the given
// -cold-records threshold would apply.
func statLive(dir string, coldRecords int) {
	man, err := store.RecoverManifestFS(store.OSFS, dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live dir:       %s\n", dir)
	fmt.Printf("generation:     %d\n", man.Gen)
	fmt.Printf("geometry:       D=%d dims x K=%d bits\n", man.Dims, man.Order)
	fmt.Printf("segments:       %d\n", len(man.Segments))

	var totalRecs, coldRecs int
	var totalRecBytes, coldRecBytes, totalFileBytes int64
	coldSegs, sketchSegs, codecSegs, sketchBytes := 0, 0, 0, 0
	for _, seg := range man.Segments {
		path := filepath.Join(dir, seg.Name)
		fl, err := store.Open(path)
		if err != nil {
			log.Fatalf("segment %s: %v", seg.Name, err)
		}
		recBytes := fl.RecordBytes()
		sk := fl.Sketch()
		hasCodec := fl.HasCodec()
		fl.Close()
		fileBytes, err := fileSize(path)
		if err != nil {
			log.Fatalf("segment %s: %v", seg.Name, err)
		}
		tier := "resident"
		cold := coldRecords > 0 && seg.Count >= coldRecords
		if cold {
			tier = "cold"
			coldSegs++
			coldRecs += seg.Count
			coldRecBytes += recBytes
		}
		totalRecs += seg.Count
		totalRecBytes += recBytes
		totalFileBytes += fileBytes
		fmt.Printf("  %-28s %9d records  %11d bytes on disk  %-8s %d tombstones\n",
			seg.Name, seg.Count, fileBytes, tier, len(seg.Tombstones))
		if sk != nil {
			sketchSegs++
			sketchBytes += sk.EncodedSize()
			codec := ""
			if hasCodec {
				codecSegs++
				codec = "  quantized codec"
			}
			fmt.Printf("  %-28s sketch %d bytes  %d blocks @ 2^%d  fp budget %.2g  est skip rate %.2f%s\n",
				"", sk.EncodedSize(), sk.Blocks(), sk.Bits(),
				sk.FalsePositiveRate(), sk.EstimatedSkipRate(4096), codec)
		} else if hasCodec {
			codecSegs++
			fmt.Printf("  %-28s quantized codec, no sketch\n", "")
		}
	}
	fmt.Printf("totals:         %d records, %d record bytes, %d file bytes\n",
		totalRecs, totalRecBytes, totalFileBytes)
	fmt.Printf("sketches:       %d/%d segments carry sketches (%d bytes), %d carry quantized codecs\n",
		sketchSegs, len(man.Segments), sketchBytes, codecSegs)
	if coldRecords > 0 {
		fmt.Printf("tier split:     %d/%d segments cold (>= %d records): %d records, %d record bytes\n",
			coldSegs, len(man.Segments), coldRecords, coldRecs, coldRecBytes)
		// The bench sweep shows ~10% of the cold record bytes already
		// amortizes repeat reads well; round up to the next MiB.
		budget := (coldRecBytes/10 + (1 << 20) - 1) >> 20
		if coldSegs > 0 && budget == 0 {
			budget = 1
		}
		fmt.Printf("suggested cache: %d MiB (-cache-mb %d; ~10%% of cold record bytes)\n",
			budget, budget)
	} else {
		fmt.Printf("tier split:     all resident (-cold-records 0)\n")
	}
}
