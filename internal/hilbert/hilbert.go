// Package hilbert implements a D-dimensional, K-th order Hilbert space
// filling curve using the Gray-code state-machine formulation (Butz's
// algorithm in Hamilton's compact form). Unlike table-driven approaches
// (Lawder), it requires O(1) memory regardless of the dimension, which is
// what makes the S³ paper's D = 20 configuration feasible.
//
// Besides point <-> index mapping, the package exposes the "p-block"
// descent the S³ index is built on: partitioning the curve into 2^p equal
// intervals induces, for every p in [1, K*D], a partition of the grid into
// 2^p hyper-rectangular blocks of equal volume (Figure 2 of the paper).
// Descend enumerates those blocks in curve order with caller-controlled
// pruning, which is how both statistical and geometric filtering rules are
// evaluated without materializing the partition.
package hilbert

import (
	"fmt"
	"math/bits"

	"s3cbcd/internal/bitkey"
)

// Curve describes a Hilbert curve on the grid [0, 2^K)^D.
type Curve struct {
	dims  int // D, number of dimensions
	order int // K, bits per dimension
}

// New returns a curve for dims dimensions of order bits each.
// It returns an error when the index would not fit a bitkey.Key
// (dims*order > bitkey.MaxBits), dims exceeds 64, or either value is < 1.
func New(dims, order int) (*Curve, error) {
	switch {
	case dims < 1 || order < 1:
		return nil, fmt.Errorf("hilbert: dims and order must be >= 1 (got %d, %d)", dims, order)
	case dims > 64:
		return nil, fmt.Errorf("hilbert: dims %d exceeds 64", dims)
	case dims*order >= bitkey.MaxBits:
		// Strictly below MaxBits: the exclusive end of the last curve
		// interval is 2^(dims*order), which must itself be representable.
		return nil, fmt.Errorf("hilbert: dims*order = %d must be below %d index bits", dims*order, bitkey.MaxBits)
	}
	return &Curve{dims: dims, order: order}, nil
}

// MustNew is New, panicking on error. For static configurations.
func MustNew(dims, order int) *Curve {
	c, err := New(dims, order)
	if err != nil {
		panic(err)
	}
	return c
}

// Dims returns D.
func (c *Curve) Dims() int { return c.dims }

// Order returns K.
func (c *Curve) Order() int { return c.order }

// IndexBits returns K*D, the number of bits in a curve index.
func (c *Curve) IndexBits() int { return c.dims * c.order }

// SideLen returns 2^K, the grid side length.
func (c *Curve) SideLen() uint32 { return 1 << uint(c.order) }

// gray returns the reflected binary Gray code of i.
func gray(i uint64) uint64 { return i ^ (i >> 1) }

// grayInverse inverts gray for n-bit values.
func grayInverse(g uint64, n uint) uint64 {
	i := g
	for shift := uint(1); shift < n; shift <<= 1 {
		i ^= i >> shift
	}
	return i
}

// rotl rotates the low n bits of x left by r.
func rotl(x uint64, r, n uint) uint64 {
	r %= n
	if r == 0 {
		return x
	}
	mask := uint64(1)<<n - 1
	return ((x << r) | (x >> (n - r))) & mask
}

// rotr rotates the low n bits of x right by r.
func rotr(x uint64, r, n uint) uint64 {
	r %= n
	return rotl(x, n-r, n)
}

// entry returns the entry point e(w) of sub-cube w in the canonical cell
// (Hamilton, Lemma 2.11).
func entry(w uint64) uint64 {
	if w == 0 {
		return 0
	}
	return gray(2 * ((w - 1) / 2))
}

// direction returns the intra sub-cube direction d(w) (Hamilton, Lemma
// 2.8), reduced modulo n.
func direction(w uint64, n uint) uint {
	switch {
	case w == 0:
		return 0
	case w&1 == 0:
		return uint(bits.TrailingZeros64(^(w - 1))) % n
	default:
		return uint(bits.TrailingZeros64(^w)) % n
	}
}

// state is the per-level transform of the curve: cells are relabelled by
// t = rotr(label ^ e, d+1) before Gray-ranking.
type state struct {
	e uint64
	d uint
}

func initialState() state { return state{e: 0, d: 0} }

// next returns the state of sub-cell w's own level.
func (s state) next(w uint64, n uint) state {
	return state{
		e: s.e ^ rotl(entry(w), s.d+1, n),
		d: (s.d + direction(w, n) + 1) % n,
	}
}

// transform maps a cell label (bit j = high/low half of dimension j) to
// its position along the curve ordering of the current level.
func (s state) transform(label uint64, n uint) uint64 {
	return rotr(label^s.e, s.d+1, n)
}

// inverse maps a curve-order Gray code back to the cell label.
func (s state) inverse(t uint64, n uint) uint64 {
	return rotl(t, s.d+1, n) ^ s.e
}

// Encode maps grid point pt (len == D, each coordinate < 2^K) to its index
// on the curve. It panics on malformed input; the caller owns validation.
func (c *Curve) Encode(pt []uint32) bitkey.Key {
	if len(pt) != c.dims {
		panic(fmt.Sprintf("hilbert: Encode got %d coordinates, want %d", len(pt), c.dims))
	}
	n := uint(c.dims)
	side := c.SideLen()
	for j, v := range pt {
		if v >= side {
			panic(fmt.Sprintf("hilbert: coordinate %d = %d out of range [0,%d)", j, v, side))
		}
	}
	var h bitkey.Key
	s := initialState()
	for i := c.order - 1; i >= 0; i-- {
		var label uint64
		for j := 0; j < c.dims; j++ {
			label |= uint64((pt[j]>>uint(i))&1) << uint(j)
		}
		w := grayInverse(s.transform(label, n), n)
		h = h.Shl(n).OrLowBits(w)
		s = s.next(w, n)
	}
	return h
}

// Decode maps a curve index back to its grid point. The result is written
// into pt, which must have length D.
func (c *Curve) Decode(h bitkey.Key, pt []uint32) {
	if len(pt) != c.dims {
		panic(fmt.Sprintf("hilbert: Decode got %d coordinates, want %d", len(pt), c.dims))
	}
	n := uint(c.dims)
	for j := range pt {
		pt[j] = 0
	}
	s := initialState()
	total := uint(c.IndexBits())
	for i := c.order - 1; i >= 0; i-- {
		// Extract the n index bits of this level.
		var w uint64
		base := total - uint(c.order-i)*n // lowest bit position of this level's chunk
		for b := uint(0); b < n; b++ {
			w |= h.Bit(base+b) << b
		}
		label := s.inverse(gray(w), n)
		for j := 0; j < c.dims; j++ {
			pt[j] |= uint32((label>>uint(j))&1) << uint(i)
		}
		s = s.next(w, n)
	}
}
