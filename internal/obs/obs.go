// Package obs is the observability layer of the system: a lock-cheap
// metrics registry (atomic counters, gauges and fixed-bucket histograms
// with quantile summaries) rendered in the Prometheus text exposition
// format, a per-query Trace carrier threaded through query execution via
// context, a seeded sampler deciding which queries carry one, and a
// no-op slog logger for components whose caller wired no logging.
//
// The package is stdlib-only and dependency-free within the repository,
// so every layer (store, core, httpapi, cbcd, cmds) can instrument
// itself without import cycles.
//
// # Metric naming
//
// Families are snake_case with an `s3_<subsystem>_` prefix and a unit
// suffix where one applies: `s3_engine_plan_seconds`,
// `s3_store_read_bytes_total`, `s3_live_memtable_records`. Counters end
// in `_total`. Label sets are fixed at registration time (there is no
// dynamic label API) and bounded by construction — routes come from the
// static mux table, status codes are collapsed to classes — which keeps
// series cardinality a compile-time property. Every family must be
// documented in docs/METRICS.md; `make vet` fails otherwise.
//
// Metric update paths are allocation-free and safe for concurrent use:
// counters and gauges are single atomics, a histogram observation is a
// binary search plus two atomic updates. Metric methods tolerate nil
// receivers (they do nothing), so optional instrumentation points need
// no guards.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric is one registered series: a Counter, Gauge or Histogram.
// Implementations live in this package; other packages only construct
// and register them.
type Metric interface {
	// desc returns the family name, the fixed label pairs (raw, e.g.
	// `route="/x"`, empty for none) and the help and type strings.
	desc() (family, labels, help, typ string)
	// write renders the metric's current sample lines (without HELP/TYPE
	// headers) in Prometheus text format.
	write(w io.Writer)
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	family, labels, help string
	v                    atomic.Int64
}

// NewCounter returns an unregistered counter (register it later with
// Registry.MustRegister, or never — it still counts).
func NewCounter(name, help string) *Counter {
	family, labels := splitName(name)
	return &Counter{family: family, labels: labels, help: help}
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) desc() (string, string, string, string) {
	return c.family, c.labels, c.help, "counter"
}

func (c *Counter) write(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", seriesName(c.family, c.labels), c.v.Load())
}

// CounterFunc is a counter whose value is read from a callback at
// scrape time — for monotone values that already live in an atomic
// somewhere (package-wide totals) and should not be double-counted into
// a second cell.
type CounterFunc struct {
	family, labels, help string
	fn                   func() int64
}

// NewCounterFunc returns an unregistered callback counter. fn must be
// safe for concurrent use and monotone non-decreasing.
func NewCounterFunc(name, help string, fn func() int64) *CounterFunc {
	family, labels := splitName(name)
	return &CounterFunc{family: family, labels: labels, help: help, fn: fn}
}

// Value returns the callback's current value.
func (c *CounterFunc) Value() int64 {
	if c == nil {
		return 0
	}
	return c.fn()
}

func (c *CounterFunc) desc() (string, string, string, string) {
	return c.family, c.labels, c.help, "counter"
}

func (c *CounterFunc) write(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", seriesName(c.family, c.labels), c.fn())
}

// Gauge is an atomic float64 gauge, optionally backed by a callback
// evaluated at scrape time (NewGaugeFunc).
type Gauge struct {
	family, labels, help string
	bits                 atomic.Uint64
	fn                   func() float64
}

// NewGauge returns an unregistered settable gauge.
func NewGauge(name, help string) *Gauge {
	family, labels := splitName(name)
	return &Gauge{family: family, labels: labels, help: help}
}

// NewGaugeFunc returns an unregistered gauge whose value is fn(),
// evaluated at every scrape. fn must be safe for concurrent use.
func NewGaugeFunc(name, help string, fn func() float64) *Gauge {
	g := NewGauge(name, help)
	g.fn = fn
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d to the gauge (use a negative d to decrease).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (the callback's result for a
// NewGaugeFunc gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) desc() (string, string, string, string) {
	return g.family, g.labels, g.help, "gauge"
}

func (g *Gauge) write(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", seriesName(g.family, g.labels), formatFloat(g.Value()))
}

// Registry holds a set of metrics for rendering. Registering the same
// (family, labels) series twice panics: every series must have exactly
// one owner. A Registry is safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics []Metric
	names   map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

// MustRegister adds metrics to the registry, panicking if any series
// (family plus label set) is already present.
func (r *Registry) MustRegister(ms ...Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range ms {
		family, labels, _, _ := m.desc()
		key := seriesName(family, labels)
		if _, dup := r.names[key]; dup {
			panic(fmt.Sprintf("obs: metric %s registered twice", key))
		}
		r.names[key] = struct{}{}
		r.metrics = append(r.metrics, m)
	}
}

// Counter creates and registers a counter. The name may carry a fixed
// label set in braces: `s3_http_requests_total{route="/x"}`.
func (r *Registry) Counter(name, help string) *Counter {
	c := NewCounter(name, help)
	r.MustRegister(c)
	return c
}

// Gauge creates and registers a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := NewGauge(name, help)
	r.MustRegister(g)
	return g
}

// CounterFunc creates and registers a callback counter.
func (r *Registry) CounterFunc(name, help string, fn func() int64) *CounterFunc {
	c := NewCounterFunc(name, help, fn)
	r.MustRegister(c)
	return c
}

// GaugeFunc creates and registers a callback gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) *Gauge {
	g := NewGaugeFunc(name, help, fn)
	r.MustRegister(g)
	return g
}

// Histogram creates and registers a histogram with the given upper
// bucket bounds (see NewHistogram).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(name, help, bounds)
	r.MustRegister(h)
	return h
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by series name with one
// HELP/TYPE header per family.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ms := make([]Metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool {
		fi, li, _, _ := ms[i].desc()
		fj, lj, _, _ := ms[j].desc()
		if fi != fj {
			return fi < fj
		}
		return li < lj
	})
	lastFamily := ""
	for _, m := range ms {
		family, _, help, typ := m.desc()
		if family != lastFamily {
			fmt.Fprintf(w, "# HELP %s %s\n", family, escapeHelp(help))
			fmt.Fprintf(w, "# TYPE %s %s\n", family, typ)
			lastFamily = family
		}
		m.write(w)
	}
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format (the GET /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// splitName splits `family{labels}` into its parts; names without braces
// have no labels.
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// seriesName renders the full series name with its fixed label set.
func seriesName(family, labels string) string {
	if labels == "" {
		return family
	}
	return family + "{" + labels + "}"
}

// labelsWith appends one more label pair to a (possibly empty) fixed
// label set.
func labelsWith(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
