package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/store"
)

func testServer(t *testing.T) (*Server, *store.DB) {
	t.Helper()
	curve := hilbert.MustNew(8, 8)
	r := rand.New(rand.NewSource(1))
	recs := make([]store.Record, 600)
	for i := range recs {
		fp := make([]byte, 8)
		for j := range fp {
			fp[j] = byte(r.Intn(256))
		}
		recs[i] = store.Record{FP: fp, ID: uint32(i), TC: uint32(2 * i), X: uint16(i), Y: uint16(i + 1)}
	}
	db := store.MustBuild(curve, recs)
	s, err := New(db, Options{Shards: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	return s, db
}

func post(t *testing.T, ts *httptest.Server, path string, body interface{}) (*http.Response, map[string]interface{}) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func fpOf(db *store.DB, i int) []int {
	fp := db.FP(i)
	out := make([]int, len(fp))
	for j, b := range fp {
		out[j] = int(b)
	}
	return out
}

func TestStatsEndpoint(t *testing.T) {
	s, _ := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["records"] != 600 || out["dims"] != 8 {
		t.Fatalf("stats: %+v", out)
	}
}

func TestStatisticalEndpoint(t *testing.T) {
	s, db := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, out := post(t, ts, "/search/statistical", map[string]interface{}{
		"fingerprint": fpOf(db, 42), "alpha": 0.8, "sigma": 10,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, out)
	}
	matches := out["matches"].([]interface{})
	if len(matches) == 0 {
		t.Fatal("no matches around a stored fingerprint")
	}
	foundSelf := false
	for _, m := range matches {
		mm := m.(map[string]interface{})
		if uint32(mm["id"].(float64)) == db.ID(42) {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Fatal("self record not in statistical results")
	}
	plan := out["plan"].(map[string]interface{})
	if plan["mass"].(float64) < 0.8 {
		t.Fatalf("plan mass %v", plan["mass"])
	}
	if plan["filterIters"].(float64) < 1 {
		t.Fatalf("plan filterIters %v", plan["filterIters"])
	}
	if plan["descentNodes"].(float64) <= 0 {
		t.Fatalf("plan descentNodes %v, want > 0", plan["descentNodes"])
	}
}

func TestRangeAndKNNEndpoints(t *testing.T) {
	s, db := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, out := post(t, ts, "/search/range", map[string]interface{}{
		"fingerprint": fpOf(db, 10), "epsilon": 0.5,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("range status %d: %+v", resp.StatusCode, out)
	}
	if n := len(out["matches"].([]interface{})); n < 1 {
		t.Fatalf("range self query: %d matches", n)
	}

	resp, out = post(t, ts, "/search/knn", map[string]interface{}{
		"fingerprint": fpOf(db, 10), "k": 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("knn status %d: %+v", resp.StatusCode, out)
	}
	matches := out["matches"].([]interface{})
	if len(matches) != 3 {
		t.Fatalf("knn returned %d", len(matches))
	}
	if out["exact"] != true {
		t.Fatal("knn not exact")
	}
}

func TestBadRequests(t *testing.T) {
	s, db := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	cases := []struct {
		path string
		body interface{}
	}{
		{"/search/statistical", map[string]interface{}{"fingerprint": []int{1, 2}, "alpha": 0.8, "sigma": 10}},
		{"/search/statistical", map[string]interface{}{"fingerprint": fpOf(db, 0), "alpha": 0, "sigma": 10}},
		{"/search/statistical", map[string]interface{}{"fingerprint": fpOf(db, 0), "alpha": 0.5, "sigma": 0}},
		{"/search/statistical", map[string]interface{}{"fingerprint": []int{1, 2, 3, 4, 5, 6, 7, 300}, "alpha": 0.5, "sigma": 5}},
		{"/search/range", map[string]interface{}{"fingerprint": fpOf(db, 0), "epsilon": -4}},
		{"/search/knn", map[string]interface{}{"fingerprint": fpOf(db, 0), "k": 0}},
	}
	for i, c := range cases {
		resp, out := post(t, ts, c.path, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d (%+v)", i, resp.StatusCode, out)
		}
		if out["error"] == "" {
			t.Errorf("case %d: no error message", i)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/search/range", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(ts.URL + "/search/range")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("GET on POST endpoint succeeded")
	}
}

func TestHealthzEndpoint(t *testing.T) {
	s, db := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["status"] != "ok" {
		t.Errorf("status %v", out["status"])
	}
	if out["shards"].(float64) != 4 {
		t.Errorf("shards %v, want 4", out["shards"])
	}
	if int(out["records"].(float64)) != db.Len() {
		t.Errorf("records %v, want %d", out["records"], db.Len())
	}
	if out["descentNodes"].(float64) != 0 {
		t.Errorf("descentNodes %v before any search, want 0", out["descentNodes"])
	}

	// The counter accumulates the plans' descent nodes across searches.
	resp2, sout := post(t, ts, "/search/statistical", map[string]interface{}{
		"fingerprint": fpOf(db, 3), "alpha": 0.8, "sigma": 10,
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp2.StatusCode)
	}
	planNodes := sout["plan"].(map[string]interface{})["descentNodes"].(float64)
	resp3, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var out2 map[string]interface{}
	if err := json.NewDecoder(resp3.Body).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	if got := out2["descentNodes"].(float64); got != planNodes {
		t.Errorf("healthz descentNodes %v after one search, plan reported %v", got, planNodes)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s, _ := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	for _, path := range []string{
		"/search/statistical", "/search/statistical/batch", "/search/range", "/search/knn",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d, want 405", path, resp.StatusCode)
		}
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz: status %d, want 405", resp.StatusCode)
	}
}

func TestBatchEndpointMatchesSingles(t *testing.T) {
	s, db := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	idx := []int{3, 42, 99, 250, 512}
	fps := make([][]int, len(idx))
	for i, j := range idx {
		fps[i] = fpOf(db, j)
	}
	resp, out := post(t, ts, "/search/statistical/batch", map[string]interface{}{
		"fingerprints": fps, "alpha": 0.8, "sigma": 10,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %+v", resp.StatusCode, out)
	}
	results := out["results"].([]interface{})
	if len(results) != len(idx) {
		t.Fatalf("batch returned %d results, want %d", len(results), len(idx))
	}
	for i, j := range idx {
		_, single := post(t, ts, "/search/statistical", map[string]interface{}{
			"fingerprint": fpOf(db, j), "alpha": 0.8, "sigma": 10,
		})
		want, err := json.Marshal(single["matches"])
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(results[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("batch result %d differs from single query", i)
		}
	}
	// Empty and malformed batches are rejected.
	resp, _ = post(t, ts, "/search/statistical/batch", map[string]interface{}{
		"fingerprints": [][]int{}, "alpha": 0.8, "sigma": 10,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d", resp.StatusCode)
	}
	resp, _ = post(t, ts, "/search/statistical/batch", map[string]interface{}{
		"fingerprints": [][]int{{1, 2}}, "alpha": 0.8, "sigma": 10,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("short fingerprint in batch: status %d", resp.StatusCode)
	}
}

// TestConcurrentRequests drives every endpoint from many goroutines at
// once; run under -race it fails if the engine or handlers share mutable
// per-query state.
func TestConcurrentRequests(t *testing.T) {
	s, db := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				fp := fpOf(db, (g*37+i*11)%db.Len())
				bodies := []struct {
					path string
					body map[string]interface{}
				}{
					{"/search/statistical", map[string]interface{}{"fingerprint": fp, "alpha": 0.8, "sigma": 10}},
					{"/search/statistical/batch", map[string]interface{}{"fingerprints": [][]int{fp, fp}, "alpha": 0.8, "sigma": 10}},
					{"/search/range", map[string]interface{}{"fingerprint": fp, "epsilon": 40}},
					{"/search/knn", map[string]interface{}{"fingerprint": fp, "k": 3}},
				}
				for _, b := range bodies {
					raw, err := json.Marshal(b.body)
					if err != nil {
						t.Error(err)
						return
					}
					resp, err := http.Post(ts.URL+b.path, "application/json", bytes.NewReader(raw))
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("%s: status %d", b.path, resp.StatusCode)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestInFlightBound(t *testing.T) {
	_, db := testServer(t)
	s, err := New(db, Options{Shards: 2, Workers: 2, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cap(s.sem) != 1 {
		t.Fatalf("semaphore capacity %d, want 1", cap(s.sem))
	}
	unbounded, err := New(db, Options{MaxInFlight: -1})
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.sem != nil {
		t.Fatal("negative MaxInFlight still bounded")
	}
}
