package s3

import (
	"context"
	"math/rand"
	"testing"
)

// The facade-level live index: ingest, search, delete, persistence and
// equivalence with the static BuildIndex over the same records.
func TestLiveIndexFacadeLifecycle(t *testing.T) {
	dir := t.TempDir()
	const dims = 8
	li, err := OpenLiveIndex(dims, 0, dir, LiveOptions{MemtableRecords: 50})
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(5))
	recs := make([]Record, 300)
	for i := range recs {
		fp := make([]byte, dims)
		for j := range fp {
			fp[j] = byte(r.Intn(256))
		}
		recs[i] = Record{FP: fp, ID: uint32(i % 10), TC: uint32(i)}
	}
	// Three ingest batches.
	for lo := 0; lo < len(recs); lo += 100 {
		if err := li.Ingest(recs[lo : lo+100]); err != nil {
			t.Fatal(err)
		}
	}
	if err := li.DeleteVideo(3); err != nil {
		t.Fatal(err)
	}
	surviving := recs[:0:0]
	for _, rec := range recs {
		if rec.ID != 3 {
			surviving = append(surviving, rec)
		}
	}
	if li.Len() != len(surviving) {
		t.Fatalf("live index holds %d records, want %d", li.Len(), len(surviving))
	}

	static, err := BuildIndex(dims, surviving, IndexOptions{Depth: li.Core().Depth()})
	if err != nil {
		t.Fatal(err)
	}
	sq := StatQuery{Alpha: 0.9, Model: IsoNormal{D: dims, Sigma: 15}}
	queries := make([][]byte, 10)
	for i := range queries {
		fp := make([]byte, dims)
		for j := range fp {
			fp[j] = byte(r.Intn(256))
		}
		queries[i] = fp
	}
	checkEquiv := func(label string) {
		t.Helper()
		for qi, q := range queries {
			want, _, err := static.StatSearch(q, sq)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := li.StatSearch(q, sq)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) != len(got) {
				t.Fatalf("%s: query %d: %d matches, want %d", label, qi, len(got), len(want))
			}
			for i := range want {
				if want[i].ID != got[i].ID || want[i].TC != got[i].TC {
					t.Fatalf("%s: query %d: match %d differs", label, qi, i)
				}
			}
		}
	}
	checkEquiv("before compaction")
	if err := li.Compact(); err != nil {
		t.Fatal(err)
	}
	checkEquiv("after compaction")

	// Batch path.
	batch, err := li.SearchStatBatch(context.Background(), queries, sq)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("batch returned %d result sets", len(batch))
	}

	st := li.Stats()
	if st.Ingested != int64(len(recs)) || st.Deletes != 1 {
		t.Fatalf("stats %+v", st)
	}

	// Persistence round trip.
	if err := li.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenLiveIndex(dims, 0, dir, LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(surviving) {
		t.Fatalf("reopened index holds %d records, want %d", re.Len(), len(surviving))
	}
	// Writes after Close are rejected.
	if err := li.Ingest(recs[:1]); err == nil {
		t.Fatal("ingest after Close accepted")
	}
}

// A live detector detects a referenced clip and stops detecting it after
// its video is withdrawn.
func TestLiveDetectorIngestAndDelete(t *testing.T) {
	li, err := OpenLiveIndex(FingerprintDims, 0, "", LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer li.Close()
	det, err := NewLiveDetector(li, CBCDConfig{})
	if err != nil {
		t.Fatal(err)
	}

	ref := GenerateVideo(77, 120)
	locals := ExtractFingerprints(ref, det.Config().Fingerprint)
	if len(locals) == 0 {
		t.Fatal("no fingerprints extracted")
	}
	recs := make([]Record, len(locals))
	for i, l := range locals {
		fp := make([]byte, FingerprintDims)
		copy(fp, l.FP[:])
		recs[i] = Record{FP: fp, ID: 42, TC: l.TC}
	}
	if err := li.Ingest(recs); err != nil {
		t.Fatal(err)
	}

	dets, err := det.DetectClip(ref)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range dets {
		if d.ID == 42 {
			found = true
		}
	}
	if !found {
		t.Fatalf("live detector missed the referenced clip: %+v", dets)
	}

	if err := li.DeleteVideo(42); err != nil {
		t.Fatal(err)
	}
	dets, err = det.DetectClip(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dets {
		if d.ID == 42 {
			t.Fatal("withdrawn video still detected")
		}
	}
}
