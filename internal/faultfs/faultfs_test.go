package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"s3cbcd/internal/store"
)

// scripted returns an injector failing exactly the n-th operation (global
// sequence order) matching op with the given action.
func scripted(target Op, n int, act Action) Injector {
	count := 0
	return func(op Op, _ string, _ int) Action {
		if op != target {
			return Pass
		}
		count++
		if count == n {
			return act
		}
		return Pass
	}
}

func TestFailNthMatchingOp(t *testing.T) {
	dir := t.TempDir()
	fs := New(store.OSFS, scripted(OpCreate, 2, Fail))
	if _, err := fs.Create(filepath.Join(dir, "a")); err != nil {
		t.Fatalf("first create failed: %v", err)
	}
	if _, err := fs.Create(filepath.Join(dir, "b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second create: err %v, want ErrInjected", err)
	}
	if _, err := fs.Create(filepath.Join(dir, "c")); err != nil {
		t.Fatalf("third create failed: %v", err)
	}
	if got := fs.Injected(); got != 1 {
		t.Fatalf("injected %d faults, want 1", got)
	}
}

func TestShortWriteTearsData(t *testing.T) {
	dir := t.TempDir()
	fs := New(store.OSFS, scripted(OpWrite, 1, ShortWrite))
	path := filepath.Join(dir, "torn")
	h, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := h.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err %v, want ErrInjected", err)
	}
	if n != 5 {
		t.Fatalf("torn write reported %d bytes, want 5", n)
	}
	h.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "01234" {
		t.Fatalf("file holds %q, want the torn prefix %q", data, "01234")
	}
}

func TestShortReadReportsEOF(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := New(store.OSFS, scripted(OpRead, 1, ShortWrite))
	h, err := fs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	buf := make([]byte, 10)
	if _, err := io.ReadFull(h, buf); !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		t.Fatalf("short read err %v, want unexpected EOF", err)
	}
}

func TestDropSyncReportsSuccess(t *testing.T) {
	dir := t.TempDir()
	fs := New(store.OSFS, scripted(OpSync, 1, DropSync))
	h, err := fs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.Sync(); err != nil {
		t.Fatalf("dropped sync reported %v, want nil", err)
	}
	if got := fs.Injected(); got != 1 {
		t.Fatalf("injected %d faults, want 1", got)
	}
}

// A crash point freezes every subsequent mutation while reads keep
// serving, and the crashing write itself is torn.
func TestCrashFreezesMutations(t *testing.T) {
	dir := t.TempDir()
	intact := filepath.Join(dir, "intact")
	if err := os.WriteFile(intact, []byte("ok"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := New(store.OSFS, scripted(OpWrite, 2, Crash))
	h, err := fs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("abcd")); !errors.Is(err, ErrInjected) {
		t.Fatalf("crash-point write err %v, want ErrInjected", err)
	}
	h.Close()
	if !fs.Crashed() {
		t.Fatal("filesystem not frozen after crash point")
	}
	if _, err := fs.Create(filepath.Join(dir, "g")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create err %v, want ErrCrashed", err)
	}
	if err := fs.Remove(intact); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash remove err %v, want ErrCrashed", err)
	}
	// Reads still pass.
	r, err := fs.Open(intact)
	if err != nil {
		t.Fatalf("post-crash open failed: %v", err)
	}
	data, err := io.ReadAll(r)
	r.Close()
	if err != nil || string(data) != "ok" {
		t.Fatalf("post-crash read got (%q, %v)", data, err)
	}
	// The torn file holds the prefix of the crashing write.
	data, err = os.ReadFile(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "firstab" {
		t.Fatalf("torn file holds %q, want %q", data, "firstab")
	}
}

func TestOpenHandleAccounting(t *testing.T) {
	dir := t.TempDir()
	fs := New(store.OSFS, nil)
	h, err := fs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if got := fs.OpenHandles(); got != 1 {
		t.Fatalf("open handles %d, want 1", got)
	}
	h.Close()
	if got := fs.OpenHandles(); got != 0 {
		t.Fatalf("open handles %d after close, want 0", got)
	}
}

// The seeded injector is reproducible: identical seeds give identical
// fault schedules over identical workloads.
func TestSeededDeterminism(t *testing.T) {
	run := func(seed int64) (injected int, errs []bool) {
		dir := t.TempDir()
		fs := NewSeeded(store.OSFS, seed, 0.5)
		for i := 0; i < 40; i++ {
			h, err := fs.Create(filepath.Join(dir, "f"))
			if err != nil {
				errs = append(errs, true)
				continue
			}
			_, werr := h.Write([]byte("payload"))
			serr := h.Sync()
			h.Close()
			errs = append(errs, werr != nil || serr != nil)
		}
		return fs.Injected(), errs
	}
	i1, e1 := run(42)
	i2, e2 := run(42)
	if i1 != i2 {
		t.Fatalf("same seed injected %d vs %d faults", i1, i2)
	}
	if len(e1) != len(e2) {
		t.Fatal("schedules diverged")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	if i1 == 0 {
		t.Fatal("seeded injector at rate 0.5 injected nothing")
	}
}

// faultfs composes with the store: a database written through a clean
// pass-through reads back identically, and CommitManifest through a
// failing SyncDir reports the failure (the syncDir error propagation
// regression).
func TestStoreThroughFaultFS(t *testing.T) {
	dir := t.TempDir()
	fs := New(store.OSFS, nil)
	m := &store.SegmentManifest{Gen: 1, Dims: 2, Order: 2}
	if err := store.CommitManifestFS(fs, dir, m); err != nil {
		t.Fatalf("clean commit failed: %v", err)
	}
	got, err := store.RecoverManifestFS(fs, dir, nil)
	if err != nil || got.Gen != 1 {
		t.Fatalf("recover got (%+v, %v)", got, err)
	}

	failing := New(store.OSFS, scripted(OpSyncDir, 2, Fail))
	m2 := &store.SegmentManifest{Gen: 2, Dims: 2, Order: 2}
	err = store.CommitManifestFS(failing, dir, m2)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("commit with failed post-rename dir sync reported %v, want ErrInjected", err)
	}
}
