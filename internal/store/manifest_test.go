package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testManifest(gen uint64) *SegmentManifest {
	return &SegmentManifest{
		Gen:   gen,
		Dims:  20,
		Order: 8,
		Segments: []SegmentInfo{
			{Name: fmt.Sprintf("seg-%016x.s3db", gen), Count: 4096},
			{Name: "seg-000000000000000a.s3db", Count: 12, Tombstones: []uint32{3, 7, 900}},
			{Name: "base.s3db", Count: 1 << 20, Tombstones: []uint32{0}},
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	for _, m := range []*SegmentManifest{
		{Gen: 0, Dims: 1, Order: 1},
		{Gen: 42, Dims: 20, Order: 8, Segments: []SegmentInfo{{Name: "a.s3db", Count: 0}}},
		testManifest(7),
	} {
		got, err := DecodeManifest(EncodeManifest(m))
		if err != nil {
			t.Fatalf("decode(encode(%+v)): %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip changed manifest:\n got %+v\nwant %+v", got, m)
		}
	}
}

func TestManifestDecodeRejectsCorruption(t *testing.T) {
	enc := EncodeManifest(testManifest(3))
	// Any single flipped byte must fail the CRC (or a structural check).
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x5a
		if _, err := DecodeManifest(bad); err == nil {
			t.Fatalf("decode accepted a manifest with byte %d corrupted", i)
		}
	}
	if _, err := DecodeManifest(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("decode accepted trailing bytes")
	}
	if _, err := DecodeManifest(nil); err == nil {
		t.Fatal("decode accepted an empty blob")
	}
}

func TestManifestDecodeRejectsUnsafeNames(t *testing.T) {
	for _, name := range []string{"../evil", "a/b", `a\b`, "..", "."} {
		m := &SegmentManifest{Gen: 1, Dims: 2, Order: 2,
			Segments: []SegmentInfo{{Name: name, Count: 1}}}
		if _, err := DecodeManifest(EncodeManifest(m)); err == nil {
			t.Fatalf("decode accepted segment name %q", name)
		}
	}
}

func TestCommitRecoverManifest(t *testing.T) {
	dir := t.TempDir()
	if m, err := RecoverManifest(dir, nil); err != nil || m != nil {
		t.Fatalf("empty dir: got (%v, %v), want (nil, nil)", m, err)
	}
	for gen := uint64(1); gen <= 4; gen++ {
		if err := CommitManifest(dir, testManifest(gen)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := RecoverManifest(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Gen != 4 {
		t.Fatalf("recovered generation %d, want 4", m.Gen)
	}
	// Pruning keeps the newest manifest plus its immediate predecessor.
	gens := listManifestGens(OSFS, dir)
	if !reflect.DeepEqual(gens, []uint64{3, 4}) {
		t.Fatalf("after pruning, manifests %v remain, want [3 4]", gens)
	}
}

// TestRecoverManifestTornCommit simulates a crash at every byte of a
// manifest commit: the newest manifest file is truncated to each possible
// prefix length, and recovery must always fall back to the previous
// committed generation — never adopt the torn file, never fail.
func TestRecoverManifestTornCommit(t *testing.T) {
	full := EncodeManifest(testManifest(4))
	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := CommitManifest(dir, testManifest(2)); err != nil {
			t.Fatal(err)
		}
		if err := CommitManifest(dir, testManifest(3)); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, ManifestName(4)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := RecoverManifest(dir, nil)
		if err != nil {
			t.Fatalf("cut at byte %d: recovery failed: %v", cut, err)
		}
		want := uint64(3)
		if cut == len(full) {
			want = 4 // the full file is a completed commit
		}
		if m.Gen != want {
			t.Fatalf("cut at byte %d: recovered generation %d, want %d", cut, m.Gen, want)
		}
	}
}

// A crash before the rename leaves only a .tmp file, which recovery must
// ignore entirely.
func TestRecoverManifestIgnoresTmp(t *testing.T) {
	dir := t.TempDir()
	if err := CommitManifest(dir, testManifest(1)); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, ManifestName(2)+".tmp")
	if err := os.WriteFile(tmp, EncodeManifest(testManifest(2)), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := RecoverManifest(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Gen != 1 {
		t.Fatalf("recovered generation %d, want 1 (tmp must be ignored)", m.Gen)
	}
}

// Recovery must skip a manifest the caller's validation rejects (e.g. a
// referenced segment file is missing) and fall back to the predecessor.
func TestRecoverManifestValidateFallback(t *testing.T) {
	dir := t.TempDir()
	if err := CommitManifest(dir, testManifest(2)); err != nil {
		t.Fatal(err)
	}
	if err := CommitManifest(dir, testManifest(3)); err != nil {
		t.Fatal(err)
	}
	m, err := RecoverManifest(dir, func(m *SegmentManifest) error {
		if m.Gen == 3 {
			return fmt.Errorf("segment file missing")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Gen != 2 {
		t.Fatalf("recovered generation %d, want 2", m.Gen)
	}
	// When every manifest is invalid the first failure must surface.
	if _, err := RecoverManifest(dir, func(*SegmentManifest) error {
		return fmt.Errorf("nope")
	}); err == nil {
		t.Fatal("recovery with all manifests invalid did not fail")
	}
}

func TestManifestNameRoundTrip(t *testing.T) {
	for _, gen := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		g, ok := parseManifestName(ManifestName(gen))
		if !ok || g != gen {
			t.Fatalf("parse(ManifestName(%d)) = (%d, %v)", gen, g, ok)
		}
	}
	for _, name := range []string{"MANIFEST-", "MANIFEST-xyz", "MANIFEST-0000000000000001.tmp", "seg-1.s3db"} {
		if _, ok := parseManifestName(name); ok {
			t.Fatalf("parse accepted %q", name)
		}
	}
}

func TestSegmentFileNameRoundTrip(t *testing.T) {
	for _, seq := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		got, ok := ParseSegmentFileName(SegmentFileName(seq))
		if !ok || got != seq {
			t.Fatalf("parse(SegmentFileName(%d)) = (%d, %v)", seq, got, ok)
		}
	}
	for _, name := range []string{"seg-.s3db", "seg-xyz.s3db", "seg-1.tmp", "MANIFEST-1", "base.s3db"} {
		if _, ok := ParseSegmentFileName(name); ok {
			t.Fatalf("parse accepted %q", name)
		}
	}
}

func TestMaxSegmentFileSeq(t *testing.T) {
	dir := t.TempDir()
	if got := MaxSegmentFileSeq(dir); got != 0 {
		t.Fatalf("empty dir: max seq %d, want 0", got)
	}
	for _, name := range []string{SegmentFileName(3), SegmentFileName(0x1f), "base.s3db", ManifestName(0xffff)} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got := MaxSegmentFileSeq(dir); got != 0x1f {
		t.Fatalf("max seq %d, want %d", got, 0x1f)
	}
}

// GC must remove only canonical segment files that no manifest present
// references and no caller protection claims — and must remove nothing
// at all when any manifest fails to decode, since its references are
// then unknown.
func TestGCSegmentFiles(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	referenced := SegmentFileName(1)
	orphan := mk(SegmentFileName(2))
	pending := mk(SegmentFileName(3))
	other := mk("notes.txt")
	mk(referenced)
	if err := CommitManifest(dir, &SegmentManifest{Gen: 1, Dims: 2, Order: 2,
		Segments: []SegmentInfo{{Name: referenced, Count: 1}}}); err != nil {
		t.Fatal(err)
	}
	removed := GCSegmentFiles(dir, func(name string) bool { return name == filepath.Base(pending) })
	if len(removed) != 1 || removed[0] != filepath.Base(orphan) {
		t.Fatalf("GC removed %v, want just %s", removed, filepath.Base(orphan))
	}
	for _, p := range []string{filepath.Join(dir, referenced), pending, other} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("GC removed %s: %v", filepath.Base(p), err)
		}
	}
	if _, err := os.Stat(orphan); err == nil {
		t.Fatal("orphan survived GC")
	}

	// An undecodable manifest (torn commit found at open) disables GC.
	orphan2 := mk(SegmentFileName(4))
	mk(ManifestName(2)) // garbage bytes, fails decode
	if removed := GCSegmentFiles(dir, nil); removed != nil {
		t.Fatalf("GC with a torn manifest removed %v, want nothing", removed)
	}
	if _, err := os.Stat(orphan2); err != nil {
		t.Fatalf("GC with a torn manifest removed %s", filepath.Base(orphan2))
	}
}

func FuzzManifestDecode(f *testing.F) {
	f.Add(EncodeManifest(&SegmentManifest{Gen: 1, Dims: 2, Order: 2}))
	f.Add(EncodeManifest(testManifest(9)))
	f.Add([]byte("S3LM garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data) // must never panic
		if err != nil {
			return
		}
		// Anything that decodes must re-encode to the identical bytes (the
		// format has exactly one serialization per manifest).
		if !bytes.Equal(EncodeManifest(m), data) {
			t.Fatalf("decode/encode not an identity for %x", data)
		}
	})
}
