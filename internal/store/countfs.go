package store

import (
	"errors"
	"io"
	iofs "io/fs"

	"s3cbcd/internal/obs"
)

// CountingFS wraps an FS and counts every byte and call that crosses
// the seam: bytes read and written, fsyncs of files and directories,
// opens, creates, renames, removes, and I/O errors. It composes with
// any inner FS — the operating system, or a fault-injecting one, in
// which case injected faults show up in the error counter exactly like
// real ones would.
//
// The counters are standalone obs metrics, updated with single atomics
// on the I/O path; RegisterMetrics publishes them. A CountingFS is safe
// for concurrent use whenever its inner FS is.
type CountingFS struct {
	inner FS

	readBytes    *obs.Counter
	writtenBytes *obs.Counter
	syncs        *obs.Counter
	dirSyncs     *obs.Counter
	opens        *obs.Counter
	creates      *obs.Counter
	renames      *obs.Counter
	removes      *obs.Counter
	ioErrors     *obs.Counter
}

// NewCountingFS wraps inner (nil selects OSFS) with fresh counters.
func NewCountingFS(inner FS) *CountingFS {
	if inner == nil {
		inner = OSFS
	}
	return &CountingFS{
		inner: inner,
		readBytes: obs.NewCounter("s3_store_read_bytes_total",
			"bytes read through the store filesystem seam"),
		writtenBytes: obs.NewCounter("s3_store_written_bytes_total",
			"bytes written through the store filesystem seam"),
		syncs: obs.NewCounter("s3_store_syncs_total",
			"file fsyncs issued"),
		dirSyncs: obs.NewCounter("s3_store_dir_syncs_total",
			"directory fsyncs issued"),
		opens: obs.NewCounter("s3_store_opens_total",
			"files opened for reading"),
		creates: obs.NewCounter("s3_store_creates_total",
			"files created for writing"),
		renames: obs.NewCounter("s3_store_renames_total",
			"atomic renames issued"),
		removes: obs.NewCounter("s3_store_removes_total",
			"file removals issued"),
		ioErrors: obs.NewCounter("s3_store_io_errors_total",
			"I/O operations that returned an error (injected faults included)"),
	}
}

// RegisterMetrics publishes the I/O counters into r. Call at most once
// per registry.
func (c *CountingFS) RegisterMetrics(r *obs.Registry) {
	r.MustRegister(c.readBytes, c.writtenBytes, c.syncs, c.dirSyncs,
		c.opens, c.creates, c.renames, c.removes, c.ioErrors)
}

// Inner returns the wrapped FS.
func (c *CountingFS) Inner() FS { return c.inner }

// ReadBytes returns the lifetime count of bytes read.
func (c *CountingFS) ReadBytes() int64 { return c.readBytes.Value() }

// WrittenBytes returns the lifetime count of bytes written.
func (c *CountingFS) WrittenBytes() int64 { return c.writtenBytes.Value() }

// Syncs returns the lifetime count of file fsyncs.
func (c *CountingFS) Syncs() int64 { return c.syncs.Value() }

// IOErrors returns the lifetime count of failed I/O operations.
func (c *CountingFS) IOErrors() int64 { return c.ioErrors.Value() }

func (c *CountingFS) noteErr(err error) error {
	if err != nil {
		c.ioErrors.Inc()
	}
	return err
}

func (c *CountingFS) Open(path string) (Handle, error) {
	h, err := c.inner.Open(path)
	if err != nil {
		c.ioErrors.Inc()
		return nil, err
	}
	c.opens.Inc()
	return &countingHandle{inner: h, fs: c}, nil
}

func (c *CountingFS) Create(path string) (Handle, error) {
	h, err := c.inner.Create(path)
	if err != nil {
		c.ioErrors.Inc()
		return nil, err
	}
	c.creates.Inc()
	return &countingHandle{inner: h, fs: c}, nil
}

func (c *CountingFS) Rename(oldPath, newPath string) error {
	c.renames.Inc()
	return c.noteErr(c.inner.Rename(oldPath, newPath))
}

func (c *CountingFS) Remove(path string) error {
	c.removes.Inc()
	return c.noteErr(c.inner.Remove(path))
}

func (c *CountingFS) ReadDir(dir string) ([]iofs.DirEntry, error) {
	ents, err := c.inner.ReadDir(dir)
	return ents, c.noteErr(err)
}

func (c *CountingFS) SyncDir(dir string) error {
	c.dirSyncs.Inc()
	return c.noteErr(c.inner.SyncDir(dir))
}

// countingHandle counts the bytes and syncs of one open file. Partial
// reads and writes are counted by what actually transferred.
type countingHandle struct {
	inner Handle
	fs    *CountingFS
}

func (h *countingHandle) Read(p []byte) (int, error) {
	n, err := h.inner.Read(p)
	h.fs.readBytes.Add(int64(n))
	// io.EOF is the normal end of a sequential read, not a fault.
	if err != nil && !errors.Is(err, io.EOF) {
		h.fs.ioErrors.Inc()
	}
	return n, err
}

func (h *countingHandle) ReadAt(p []byte, off int64) (int, error) {
	n, err := h.inner.ReadAt(p, off)
	h.fs.readBytes.Add(int64(n))
	if err != nil && !errors.Is(err, io.EOF) {
		h.fs.ioErrors.Inc()
	}
	return n, err
}

func (h *countingHandle) Write(p []byte) (int, error) {
	n, err := h.inner.Write(p)
	h.fs.writtenBytes.Add(int64(n))
	if err != nil {
		h.fs.ioErrors.Inc()
	}
	return n, err
}

func (h *countingHandle) Sync() error {
	h.fs.syncs.Inc()
	return h.fs.noteErr(h.inner.Sync())
}

func (h *countingHandle) Close() error {
	return h.fs.noteErr(h.inner.Close())
}
