// Package vafile implements the vector-approximation file of Weber &
// Blott, the improved sequential method the paper's related work singles
// out as "sometimes even more profitable than all other structures"
// ([11] in the paper). Every fingerprint is approximated by a few bits
// per dimension over equi-populated cell boundaries; a range query scans
// the compact approximations, skips vectors whose distance lower bound
// exceeds the radius, and verifies the survivors against the exact
// vectors. It serves as a second baseline for the scalability comparison
// (cmd/s3bench -exp fig7).
package vafile

import (
	"fmt"
	"math"
	"sort"

	"s3cbcd/internal/core"
	"s3cbcd/internal/store"
)

// Index is a VA-file over a fingerprint database.
type Index struct {
	db   *store.DB
	bits int
	// bounds[j] holds 2^bits+1 ascending cell boundaries for dimension j;
	// cell c spans [bounds[j][c], bounds[j][c+1]).
	bounds [][]float64
	// approx packs one cell index per dimension per record,
	// bits-per-dimension, row-major.
	approx []byte
	// bytesPerRec is the approximation size of one record.
	bytesPerRec int
}

// Stats reports the work one query performed.
type Stats struct {
	// Skipped counts vectors eliminated by the approximation alone.
	Skipped int
	// Verified counts exact-vector distance computations.
	Verified int
}

// Build constructs the VA-file. bits must be 1, 2, 4 or 8 (cell indices
// are packed into whole bytes). Boundaries are equi-populated per
// dimension, the standard choice for skewed data.
func Build(db *store.DB, bits int) (*Index, error) {
	switch bits {
	case 1, 2, 4, 8:
	default:
		return nil, fmt.Errorf("vafile: bits = %d must be 1, 2, 4 or 8", bits)
	}
	dims := db.Dims()
	cells := 1 << uint(bits)
	ix := &Index{
		db:          db,
		bits:        bits,
		bounds:      make([][]float64, dims),
		bytesPerRec: (dims*bits + 7) / 8,
	}

	// Equi-populated boundaries from the per-dimension value histogram
	// (components are bytes, so a 256-bin histogram is exact).
	n := db.Len()
	for j := 0; j < dims; j++ {
		var histo [256]int
		for i := 0; i < n; i++ {
			histo[db.FP(i)[j]]++
		}
		b := make([]float64, cells+1)
		b[0] = 0
		target := 0
		cum := 0
		v := 0
		for c := 1; c < cells; c++ {
			target = n * c / cells
			for v < 255 && cum+histo[v] <= target {
				cum += histo[v]
				v++
			}
			b[c] = float64(v)
			if b[c] <= b[c-1] {
				b[c] = b[c-1] + 1e-9 // keep boundaries strictly increasing
			}
		}
		b[cells] = 256
		ix.bounds[j] = b
	}

	// Approximate every record.
	ix.approx = make([]byte, n*ix.bytesPerRec)
	perByte := 8 / bits
	for i := 0; i < n; i++ {
		fp := db.FP(i)
		base := i * ix.bytesPerRec
		for j, bv := range fp {
			c := ix.cellOf(j, float64(bv))
			ix.approx[base+j/perByte] |= byte(c) << uint((j%perByte)*bits)
		}
	}
	return ix, nil
}

// cellOf returns the cell index of value v in dimension j.
func (ix *Index) cellOf(j int, v float64) int {
	b := ix.bounds[j]
	// sort.SearchFloat64s finds the first boundary > v; the cell is one
	// less. Values equal to a boundary belong to the cell starting there.
	c := sort.SearchFloat64s(b[1:len(b)-1], v+1e-12)
	return c
}

// cell extracts record i's cell index for dimension j.
func (ix *Index) cell(i, j int) int {
	perByte := 8 / ix.bits
	bt := ix.approx[i*ix.bytesPerRec+j/perByte]
	return int(bt>>uint((j%perByte)*ix.bits)) & ((1 << uint(ix.bits)) - 1)
}

// RangeQuery returns every record within L2 distance eps of q.
func (ix *Index) RangeQuery(q []byte, eps float64) ([]core.Match, Stats, error) {
	if len(q) != ix.db.Dims() {
		return nil, Stats{}, fmt.Errorf("vafile: query has %d components, index has %d", len(q), ix.db.Dims())
	}
	if eps < 0 {
		return nil, Stats{}, fmt.Errorf("vafile: negative radius %v", eps)
	}
	dims := ix.db.Dims()
	qf := make([]float64, dims)
	qCell := make([]int, dims)
	for j, b := range q {
		qf[j] = float64(b)
		qCell[j] = ix.cellOf(j, qf[j])
	}
	// Precompute per-dimension, per-cell lower-bound contributions.
	cells := 1 << uint(ix.bits)
	lbTable := make([][]float64, dims)
	for j := 0; j < dims; j++ {
		lbTable[j] = make([]float64, cells)
		for c := 0; c < cells; c++ {
			var d float64
			switch {
			case c < qCell[j]:
				d = qf[j] - ix.bounds[j][c+1] // cell entirely below q
			case c > qCell[j]:
				d = ix.bounds[j][c] - qf[j] // cell entirely above q
			}
			if d < 0 {
				d = 0
			}
			lbTable[j][c] = d * d
		}
	}

	epsSq := eps * eps
	var out []core.Match
	var stats Stats
	n := ix.db.Len()
	for i := 0; i < n; i++ {
		lb := 0.0
		for j := 0; j < dims; j++ {
			lb += lbTable[j][ix.cell(i, j)]
			if lb > epsSq {
				break
			}
		}
		if lb > epsSq {
			stats.Skipped++
			continue
		}
		stats.Verified++
		fp := ix.db.FP(i)
		s := 0.0
		for j, b := range fp {
			d := qf[j] - float64(b)
			s += d * d
			if s > epsSq {
				break
			}
		}
		if s <= epsSq {
			out = append(out, core.Match{Pos: i, ID: ix.db.ID(i), TC: ix.db.TC(i),
				X: ix.db.X(i), Y: ix.db.Y(i), Dist: math.Sqrt(s)})
		}
	}
	return out, stats, nil
}
