package core

// Fault-injection properties of the live index, driven through the
// store.FS seam by faultfs:
//
//   - the crash harness replays one randomized schedule of ingests,
//     deletes and compactions, injecting a crash at every mutating I/O
//     operation index in turn; reopening after each crash must yield
//     exactly the state as of an operation boundary adjacent to the
//     crash — never a torn or reordered state, never an error;
//   - transient faults (each mutating operation failing with some
//     probability) must never lose an accepted write: once the faults
//     stop, the background retry loop catches durability up to the
//     published snapshot and a reopen sees everything;
//   - persistent faults trip degraded read-only mode: writes are
//     rejected with ErrDegraded while queries keep serving, and the
//     first successful commit after the fault clears heals the index.
//
// Set FAULT_SEED to reproduce a failing schedule; the seed in use is
// always logged.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"s3cbcd/internal/faultfs"
	"s3cbcd/internal/store"
)

// faultSeed returns the schedule seed: FAULT_SEED when set (the CI chaos
// job randomizes it), a fixed default otherwise.
func faultSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("FAULT_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad FAULT_SEED %q: %v", s, err)
		}
		return v
	}
	return 20260806
}

// faultOp is one step of a crash-harness schedule.
type faultOp struct {
	kind string // "ingest", "delete" or "compact"
	recs []store.Record
	id   uint32
}

// buildFaultSchedule derives a deterministic operation schedule from r.
// Every record carries a unique TC so the (ID, TC) multiset is a set and
// model comparison is exact.
func buildFaultSchedule(r *rand.Rand, nOps int) []faultOp {
	var ops []faultOp
	tc := uint32(0)
	for i := 0; i < nOps; i++ {
		switch k := r.Intn(10); {
		case k < 6:
			recs := make([]store.Record, 2+r.Intn(3))
			for j := range recs {
				rec := randLiveRecord(r)
				rec.TC = tc
				tc++
				recs[j] = rec
			}
			ops = append(ops, faultOp{kind: "ingest", recs: recs})
		case k < 8:
			ops = append(ops, faultOp{kind: "delete", id: uint32(r.Intn(6))})
		default:
			ops = append(ops, faultOp{kind: "compact"})
		}
	}
	return ops
}

// appliedStates returns the (ID, TC) set visible after each schedule
// prefix: states[i] is the state once the first i operations applied.
func appliedStates(ops []faultOp) []map[[2]uint32]int {
	states := make([]map[[2]uint32]int, len(ops)+1)
	cur := map[[2]uint32]int{}
	clone := func() map[[2]uint32]int {
		c := make(map[[2]uint32]int, len(cur))
		for k, v := range cur {
			c[k] = v
		}
		return c
	}
	states[0] = clone()
	for i, op := range ops {
		switch op.kind {
		case "ingest":
			for _, rec := range op.recs {
				cur[[2]uint32{rec.ID, rec.TC}]++
			}
		case "delete":
			for k := range cur {
				if k[0] == op.id {
					delete(cur, k)
				}
			}
		}
		states[i+1] = clone()
	}
	return states
}

// replayFaultSchedule runs the schedule against a fresh index over ffs,
// ignoring per-operation errors (post-crash operations fail by design),
// and returns the index of the operation during which the filesystem
// froze (len(ops) if it never did). Every ingest seals and commits
// (MemtableRecords = 1), so each schedule operation is one commit.
func replayFaultSchedule(t *testing.T, dir string, ffs *faultfs.FS, ops []faultOp) int {
	t.Helper()
	li, err := OpenLiveIndex(liveTestCurve(), dir, LiveOptions{
		Depth:           liveTestDepth,
		MemtableRecords: 1,
		CompactSegments: 1 << 20, // background compaction off: determinism
		FS:              ffs,
		RetryBackoff:    time.Hour, // background retries never fire mid-replay
		RetryLimit:      -1,        // never degrade: keep attempting every op
	})
	if err != nil {
		t.Fatalf("open through faultfs: %v", err)
	}
	crashOp := len(ops)
	for i, op := range ops {
		switch op.kind {
		case "ingest":
			_ = li.Ingest(op.recs)
		case "delete":
			_ = li.DeleteVideo(op.id)
		case "compact":
			_ = li.Compact()
		}
		if crashOp == len(ops) && ffs.Crashed() {
			crashOp = i
		}
	}
	_ = li.Close()
	return crashOp
}

// TestLiveIndexCrashHarness injects a crash at every mutating I/O
// operation of a randomized schedule in turn. After each crash the
// directory must reopen cleanly to exactly the applied state of an
// operation boundary adjacent to the crash: the state before the
// crashed operation (its commit never landed) or after it (the commit's
// rename landed and only later I/O crashed).
func TestLiveIndexCrashHarness(t *testing.T) {
	seed := faultSeed(t)
	t.Logf("crash harness seed %d (set FAULT_SEED to reproduce)", seed)
	ops := buildFaultSchedule(rand.New(rand.NewSource(seed)), 10)
	states := appliedStates(ops)

	// Count pass: no faults. Establishes how many mutating I/O operations
	// the schedule performs, and that the fault-free replay lands on the
	// full model.
	countDir := t.TempDir()
	var mutating atomic.Int64
	counter := faultfs.New(store.OSFS, func(op faultfs.Op, _ string, _ int) faultfs.Action {
		if op.Mutating() {
			mutating.Add(1)
		}
		return faultfs.Pass
	})
	if got := replayFaultSchedule(t, countDir, counter, ops); got != len(ops) {
		t.Fatalf("fault-free replay reported a crash at op %d", got)
	}
	clean, err := OpenLiveIndex(liveTestCurve(), countDir, LiveOptions{Depth: liveTestDepth})
	if err != nil {
		t.Fatal(err)
	}
	if got := liveRecordSet(t, clean); !reflect.DeepEqual(got, states[len(ops)]) {
		t.Fatalf("fault-free replay recovered %v, want %v", got, states[len(ops)])
	}
	clean.Close()
	n := int(mutating.Load())
	if n == 0 {
		t.Fatal("schedule performed no mutating I/O")
	}

	stride := 1
	if testing.Short() {
		stride = 7
	}
	for k := 0; k < n; k += stride {
		k := k
		t.Run(fmt.Sprintf("crash-at-%d", k), func(t *testing.T) {
			dir := t.TempDir()
			var seen atomic.Int64
			ffs := faultfs.New(store.OSFS, func(op faultfs.Op, _ string, _ int) faultfs.Action {
				if !op.Mutating() {
					return faultfs.Pass
				}
				if int(seen.Add(1))-1 == k {
					return faultfs.Crash
				}
				return faultfs.Pass
			})
			crashOp := replayFaultSchedule(t, dir, ffs, ops)
			if !ffs.Crashed() {
				t.Fatalf("crash point %d never reached (%d mutating ops this replay)", k, seen.Load())
			}
			re, err := OpenLiveIndex(liveTestCurve(), dir, LiveOptions{Depth: liveTestDepth})
			if err != nil {
				t.Fatalf("reopen after crash at I/O op %d (schedule op %d): %v", k, crashOp, err)
			}
			defer re.Close()
			got := liveRecordSet(t, re)
			if !reflect.DeepEqual(got, states[crashOp]) && !reflect.DeepEqual(got, states[crashOp+1]) {
				t.Fatalf("crash at I/O op %d (during schedule op %d %s): recovered %v,\nwant %v (before op)\n  or %v (after op)",
					k, crashOp, ops[crashOp].kind, got, states[crashOp], states[crashOp+1])
			}
		})
	}
}

// TestLiveIndexRetriesTransientFaults subjects every mutating operation
// to a seeded failure probability, then lifts the faults: no accepted
// write may be lost — the retry loop must catch durability up so a clean
// reopen sees the full surviving record set.
func TestLiveIndexRetriesTransientFaults(t *testing.T) {
	seed := faultSeed(t)
	t.Logf("transient-fault seed %d (set FAULT_SEED to reproduce)", seed)
	rng := rand.New(rand.NewSource(seed + 1)) // injector's own stream
	var failing atomic.Bool
	failing.Store(true)
	// The injector runs under faultfs's mutex, so rng needs no extra lock.
	ffs := faultfs.New(store.OSFS, func(op faultfs.Op, _ string, _ int) faultfs.Action {
		if !failing.Load() || !op.Mutating() {
			return faultfs.Pass
		}
		if rng.Float64() < 0.3 {
			if op == faultfs.OpWrite && rng.Intn(2) == 0 {
				return faultfs.ShortWrite
			}
			return faultfs.Fail
		}
		return faultfs.Pass
	})

	dir := t.TempDir()
	li, err := OpenLiveIndex(liveTestCurve(), dir, LiveOptions{
		Depth:           liveTestDepth,
		MemtableRecords: 4,
		CompactSegments: 3,
		FS:              ffs,
		RetryBackoff:    time.Millisecond,
		RetryLimit:      -1, // accept writes throughout the fault storm
	})
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(seed + 2))
	var surviving []store.Record
	tc := uint32(0)
	for i := 0; i < 30; i++ {
		if i%7 == 6 {
			id := uint32(r.Intn(6))
			if err := li.DeleteVideo(id); err != nil {
				t.Fatalf("delete during faults: %v", err)
			}
			kept := surviving[:0]
			for _, rec := range surviving {
				if rec.ID != id {
					kept = append(kept, rec)
				}
			}
			surviving = kept
			continue
		}
		recs := make([]store.Record, 3)
		for j := range recs {
			rec := randLiveRecord(r)
			rec.TC = tc
			tc++
			recs[j] = rec
		}
		if err := li.Ingest(recs); err != nil {
			t.Fatalf("ingest during faults: %v", err)
		}
		surviving = append(surviving, recs...)
	}
	if ffs.Injected() == 0 {
		t.Fatal("fault storm injected nothing; the test exercised no failure path")
	}
	// Accepted writes stay query-visible throughout.
	if got, want := li.Len(), len(surviving); got != want {
		t.Fatalf("mid-storm live index holds %d records, model has %d", got, want)
	}

	failing.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := li.Stats()
		if !st.Dirty {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retry loop did not converge: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if err := li.Flush(); err != nil {
		t.Fatalf("flush after faults lifted: %v", err)
	}
	if err := li.Close(); err != nil {
		t.Fatalf("close after faults lifted: %v", err)
	}
	if lh := ffs.OpenHandles(); lh != 0 {
		t.Fatalf("%d file handles leaked through the fault storm", lh)
	}

	re, err := OpenLiveIndex(liveTestCurve(), dir, LiveOptions{Depth: liveTestDepth})
	if err != nil {
		t.Fatalf("reopen after fault storm: %v", err)
	}
	defer re.Close()
	checkLiveEquivalence(t, re, surviving, r, "after transient faults")
}

// TestLiveIndexDegradedMode drives persistence into repeated failure and
// checks the full degraded-mode arc: writes rejected with ErrDegraded,
// queries still serving the published snapshot, and the first successful
// commit after the fault clears healing the index.
func TestLiveIndexDegradedMode(t *testing.T) {
	var failing atomic.Bool
	ffs := faultfs.New(store.OSFS, func(op faultfs.Op, _ string, _ int) faultfs.Action {
		if failing.Load() && op == faultfs.OpCreate {
			return faultfs.Fail
		}
		return faultfs.Pass
	})
	dir := t.TempDir()
	li, err := OpenLiveIndex(liveTestCurve(), dir, LiveOptions{
		Depth:           liveTestDepth,
		MemtableRecords: 4,
		CompactSegments: 1 << 20,
		FS:              ffs,
		RetryBackoff:    time.Millisecond,
		RetryLimit:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer li.Close()

	recs := make([]store.Record, 4)
	r := rand.New(rand.NewSource(7))
	for j := range recs {
		rec := randLiveRecord(r)
		rec.TC = uint32(j)
		recs[j] = rec
	}
	failing.Store(true)
	// Over-threshold ingest: the seal fails but the batch is accepted.
	if err := li.Ingest(recs); err != nil {
		t.Fatalf("ingest with failing storage rejected: %v", err)
	}
	if got := li.Len(); got != 4 {
		t.Fatalf("accepted batch not query-visible: %d records", got)
	}
	st := li.Stats()
	if !st.Dirty || st.PersistFailures == 0 || st.LastPersistErr == "" {
		t.Fatalf("failed seal not recorded: %+v", st)
	}

	deadline := time.Now().Add(10 * time.Second)
	for !li.Stats().Degraded {
		if time.Now().After(deadline) {
			t.Fatalf("index never degraded: %+v", li.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if err := li.Ingest(recs[:1]); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded ingest returned %v, want ErrDegraded", err)
	}
	if err := li.DeleteVideo(recs[0].ID); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded delete returned %v, want ErrDegraded", err)
	}
	// Queries keep serving the published snapshot.
	if got := li.Len(); got != 4 {
		t.Fatalf("degraded index serves %d records, want 4", got)
	}
	if _, _, err := li.SearchRange(context.Background(), make([]byte, liveTestDims), 1e9); err != nil {
		t.Fatalf("degraded query failed: %v", err)
	}

	// Heal: the retry loop's next attempt commits, clearing the mode.
	failing.Store(false)
	deadline = time.Now().Add(10 * time.Second)
	for {
		st := li.Stats()
		if !st.Degraded && !st.Dirty {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("index never healed: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	st = li.Stats()
	if st.LastPersistErr != "" || st.ConsecutiveFailures != 0 {
		t.Fatalf("healed index still reports failure state: %+v", st)
	}
	if err := li.Ingest(recs[:1]); err != nil {
		t.Fatalf("ingest after healing: %v", err)
	}
	if err := li.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenLiveIndex(liveTestCurve(), dir, LiveOptions{Depth: liveTestDepth})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// 4 original records (sealed by the healed retry loop) + 1 re-ingested.
	if got := re.Len(); got != 5 {
		t.Fatalf("reopen after heal holds %d records, want 5", got)
	}
}

// TestLiveIndexCompactionDegradedHeals trips degraded mode purely through
// compaction failures — nothing is owed, so no seal or delete retry keeps
// the loop alive — and checks the index still self-heals once the fault
// clears, without any write being issued: the retry loop must keep
// probing storage while degraded (regression: a compaction-tripped
// degraded index used to wedge permanently, since writes were rejected
// and compactAsync had exhausted its budget).
func TestLiveIndexCompactionDegradedHeals(t *testing.T) {
	var failing atomic.Bool
	ffs := faultfs.New(store.OSFS, func(op faultfs.Op, _ string, _ int) faultfs.Action {
		if failing.Load() && op == faultfs.OpCreate {
			return faultfs.Fail
		}
		return faultfs.Pass
	})
	dir := t.TempDir()
	li, err := OpenLiveIndex(liveTestCurve(), dir, LiveOptions{
		Depth:           liveTestDepth,
		MemtableRecords: 2,
		CompactSegments: 1 << 20, // compaction only via explicit Compact
		FS:              ffs,
		RetryBackoff:    time.Millisecond,
		RetryLimit:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer li.Close()

	// Two cleanly sealed segments so a compaction has something to merge.
	r := rand.New(rand.NewSource(11))
	for batch := 0; batch < 2; batch++ {
		recs := make([]store.Record, 2)
		for j := range recs {
			rec := randLiveRecord(r)
			rec.TC = uint32(2*batch + j)
			recs[j] = rec
		}
		if err := li.Ingest(recs); err != nil {
			t.Fatalf("clean ingest: %v", err)
		}
	}
	if st := li.Stats(); st.Segments != 2 || st.Dirty {
		t.Fatalf("setup did not seal cleanly: %+v", st)
	}

	// Every compaction attempt fails at its segment write: non-owed
	// failures only, so dirty stays false while the streak trips degraded.
	failing.Store(true)
	for i := 0; i < 3; i++ {
		if err := li.Compact(); err == nil {
			t.Fatalf("compaction %d with failing storage succeeded", i)
		}
	}
	st := li.Stats()
	if !st.Degraded {
		t.Fatalf("3 compaction failures did not trip degraded mode: %+v", st)
	}
	if st.Dirty {
		t.Fatalf("compaction failures owe no persistence, but dirty is set: %+v", st)
	}
	if err := li.Ingest([]store.Record{randLiveRecord(r)}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded ingest returned %v, want ErrDegraded", err)
	}

	// Heal without issuing a single write: only the retry loop's storage
	// probe can clear the mode.
	failing.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for li.Stats().Degraded {
		if time.Now().After(deadline) {
			t.Fatalf("compaction-tripped degraded mode never healed: %+v", li.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	st = li.Stats()
	if st.LastPersistErr != "" || st.ConsecutiveFailures != 0 {
		t.Fatalf("healed index still reports failure state: %+v", st)
	}
	rec := randLiveRecord(r)
	rec.TC = 99
	if err := li.Ingest([]store.Record{rec}); err != nil {
		t.Fatalf("ingest after healing: %v", err)
	}
	if err := li.Compact(); err != nil {
		t.Fatalf("compaction after healing: %v", err)
	}
	if err := li.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenLiveIndex(liveTestCurve(), dir, LiveOptions{Depth: liveTestDepth})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Len(); got != 5 {
		t.Fatalf("reopen after heal holds %d records, want 5", got)
	}
}

// TestLiveIndexSealFailureLeavesNoOrphans drives manifest commits into
// persistent failure while segment writes succeed: every background
// re-seal writes a fresh segment file under a fresh name, and each failed
// attempt must remove the file it wrote (regression: they used to
// accumulate unboundedly until a commit finally landed and GC ran).
func TestLiveIndexSealFailureLeavesNoOrphans(t *testing.T) {
	var failing atomic.Bool
	ffs := faultfs.New(store.OSFS, func(op faultfs.Op, path string, _ int) faultfs.Action {
		if failing.Load() && op == faultfs.OpCreate && strings.Contains(path, "MANIFEST") {
			return faultfs.Fail
		}
		return faultfs.Pass
	})
	dir := t.TempDir()
	li, err := OpenLiveIndex(liveTestCurve(), dir, LiveOptions{
		Depth:           liveTestDepth,
		MemtableRecords: 1,
		CompactSegments: 1 << 20,
		FS:              ffs,
		RetryBackoff:    time.Millisecond,
		RetryLimit:      -1, // keep accepting and retrying throughout
	})
	if err != nil {
		t.Fatal(err)
	}
	defer li.Close()

	segFiles := func() int {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range ents {
			if _, ok := store.ParseSegmentFileName(e.Name()); ok {
				n++
			}
		}
		return n
	}

	failing.Store(true)
	rec := randLiveRecord(rand.New(rand.NewSource(13)))
	if err := li.Ingest([]store.Record{rec}); err != nil {
		t.Fatalf("ingest with failing manifest commits rejected: %v", err)
	}
	// Let a handful of background re-seals fail; each writes and must
	// remove one segment file. At most one may be observed in flight.
	deadline := time.Now().Add(10 * time.Second)
	for li.Stats().PersistFailures < 6 {
		if time.Now().After(deadline) {
			t.Fatalf("retry loop stalled: %+v", li.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if n := segFiles(); n > 1 {
		t.Fatalf("%d segment files on disk after %d failed seals, want <= 1 (orphans accumulating)",
			n, li.Stats().PersistFailures)
	}

	failing.Store(false)
	deadline = time.Now().Add(10 * time.Second)
	for li.Stats().Dirty {
		if time.Now().After(deadline) {
			t.Fatalf("retry loop did not converge: %+v", li.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if n := segFiles(); n != 1 {
		t.Fatalf("%d segment files after recovery, want exactly 1", n)
	}
	if err := li.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenLiveIndex(liveTestCurve(), dir, LiveOptions{Depth: liveTestDepth})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Len(); got != 1 {
		t.Fatalf("reopen after recovery holds %d records, want 1", got)
	}
}
