package main

import (
	"testing"

	"s3cbcd/internal/vidsim"
)

func TestParseTransformSingle(t *testing.T) {
	tf, err := parseTransform("gamma=1.8")
	if err != nil {
		t.Fatal(err)
	}
	g, ok := tf.(vidsim.Gamma)
	if !ok || g.G != 1.8 {
		t.Fatalf("parsed %#v", tf)
	}
}

func TestParseTransformComposition(t *testing.T) {
	tf, err := parseTransform("resize=0.8+noise=10+shift=0.1")
	if err != nil {
		t.Fatal(err)
	}
	c, ok := tf.(vidsim.Compose)
	if !ok || len(c) != 3 {
		t.Fatalf("parsed %#v", tf)
	}
	if r, ok := c[0].(vidsim.Resize); !ok || r.Scale != 0.8 {
		t.Fatalf("first: %#v", c[0])
	}
	if n, ok := c[1].(vidsim.Noise); !ok || n.Sigma != 10 {
		t.Fatalf("second: %#v", c[1])
	}
	if s, ok := c[2].(vidsim.VShift); !ok || s.Frac != 0.1 {
		t.Fatalf("third: %#v", c[2])
	}
}

func TestParseTransformErrors(t *testing.T) {
	for _, spec := range []string{"gamma", "gamma=x", "warp=2", "=", "gamma=1.2+bad"} {
		if _, err := parseTransform(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	if tf, err := parseTransform("contrast=2.5"); err != nil {
		t.Fatal(err)
	} else if c, ok := tf.(vidsim.Contrast); !ok || c.Factor != 2.5 {
		t.Fatalf("contrast: %#v", tf)
	}
}
