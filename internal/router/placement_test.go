package router

import (
	"fmt"
	"reflect"
	"testing"
)

func TestPlacementShape(t *testing.T) {
	backends := []string{"http://a", "http://b", "http://c", "http://d"}
	pl, err := Placement(backends, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 8 {
		t.Fatalf("groups: got %d, want 8", len(pl))
	}
	for g, set := range pl {
		if len(set) != 2 {
			t.Fatalf("group %d: %d replicas, want 2", g, len(set))
		}
		if set[0] == set[1] {
			t.Fatalf("group %d: duplicate replica %q", g, set[0])
		}
	}
}

func TestPlacementDeterministic(t *testing.T) {
	backends := []string{"http://a", "http://b", "http://c"}
	a, err := Placement(backends, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Placement(backends, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("placement is not deterministic")
	}
	// Input order must not matter: rendezvous scores, not list position,
	// decide the placement.
	c, err := Placement([]string{"http://c", "http://a", "http://b"}, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatal("placement depends on backend list order")
	}
}

// TestPlacementStability is the defining consistent-hashing property:
// removing one backend only moves the groups that backend served.
func TestPlacementStability(t *testing.T) {
	backends := make([]string, 10)
	for i := range backends {
		backends[i] = fmt.Sprintf("http://node%d:8080", i)
	}
	before, err := Placement(backends, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	removed := backends[3]
	after, err := Placement(append(backends[:3:3], backends[4:]...), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for g := range before {
		if before[g][0] == removed {
			moved++
			continue
		}
		if after[g][0] != before[g][0] {
			t.Fatalf("group %d moved from %s to %s though %s was removed",
				g, before[g][0], after[g][0], removed)
		}
	}
	if moved == 0 {
		t.Fatal("degenerate test: removed backend served no groups")
	}
}

func TestPlacementErrors(t *testing.T) {
	cases := []struct {
		backends []string
		groups   int
		replicas int
	}{
		{nil, 4, 1},
		{[]string{"http://a"}, 0, 1},
		{[]string{"http://a"}, 4, 2},
		{[]string{"http://a"}, 4, 0},
		{[]string{"http://a", "http://a"}, 4, 1},
	}
	for i, c := range cases {
		if _, err := Placement(c.backends, c.groups, c.replicas); err == nil {
			t.Errorf("case %d: no error for %v/%d/%d", i, c.backends, c.groups, c.replicas)
		}
	}
}
