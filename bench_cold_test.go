package s3

// Cold-tier serving benchmark: statistical queries at α=0.8, σ=18 over a
// live index whose sealed segments serve from disk through the block
// cache, against the same directory served all-resident.
//
//	go test -run TestColdBenchSweep -bench-cold -timeout 30m .
//
// regenerates BENCH_cold.json in the repository root (gated behind the
// flag because building the corpus takes a while). The sweep covers
// cache budgets from "whole corpus fits" down to ~10% of the record
// bytes and a retention-free cache, reporting queries/sec, bytes read
// from disk per query and the cache hit rate — and verifies in-run that
// every configuration answers match-for-match identically to the
// resident baseline.
//
//	-bench-cold-records N   corpus size (default 200000)

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"s3cbcd/internal/core"
	"s3cbcd/internal/experiments"
	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/store"
)

var (
	benchColdFlag    = flag.Bool("bench-cold", false, "run the cold-tier sweep and write BENCH_cold.json")
	benchColdRecords = flag.Int("bench-cold-records", 200_000, "corpus size for -bench-cold")
)

const (
	coldBenchQueries  = 96
	coldBenchSegments = 4
	coldBenchRounds   = 3
)

type coldBenchResult struct {
	Name          string  `json:"name"`
	CacheBudget   int64   `json:"cache_budget_bytes"`
	BudgetPct     float64 `json:"cache_budget_pct_of_records"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	BytesPerQuery float64 `json:"disk_bytes_read_per_query"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheEvicts   int64   `json:"cache_evictions"`
}

// coldBenchDir builds the shared on-disk index: one live directory whose
// committed snapshot holds the corpus in a handful of sealed segments.
func coldBenchDir(t *testing.T, curve *hilbert.Curve, recs []store.Record) string {
	t.Helper()
	dir := t.TempDir()
	li, err := core.OpenLiveIndex(curve, dir, core.LiveOptions{
		MemtableRecords: (len(recs) + coldBenchSegments - 1) / coldBenchSegments,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := li.Ingest(recs); err != nil {
		t.Fatal(err)
	}
	if err := li.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := li.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// dirRecordBytes sums the on-disk record-area bytes of the committed
// segments — the quantity cache budgets are expressed against.
func dirRecordBytes(t *testing.T, dir string) int64 {
	t.Helper()
	man, err := store.RecoverManifestFS(store.OSFS, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, seg := range man.Segments {
		fl, err := store.Open(filepath.Join(dir, seg.Name))
		if err != nil {
			t.Fatal(err)
		}
		total += fl.RecordBytes()
		fl.Close()
	}
	return total
}

// TestColdBenchSweep measures the cold serving path against the resident
// baseline and writes BENCH_cold.json. Gated behind -bench-cold.
func TestColdBenchSweep(t *testing.T) {
	if !*benchColdFlag {
		t.Skip("pass -bench-cold to run the cold-tier sweep")
	}
	n := *benchColdRecords
	curve := hilbert.MustNew(fingerprint.D, 8)
	recs := experiments.FPCorpus(n, 1)
	refDB, err := store.Build(curve, recs)
	if err != nil {
		t.Fatal(err)
	}
	queries, _ := experiments.DistortedQueries(refDB, coldBenchQueries, shardBenchSigma, 2)
	sq := core.StatQuery{Alpha: shardBenchAlpha,
		Model: core.IsoNormal{D: fingerprint.D, Sigma: shardBenchSigma}}

	dir := coldBenchDir(t, curve, recs)
	recordBytes := dirRecordBytes(t, dir)
	t.Logf("corpus: %d records, %d segment record bytes", n, recordBytes)

	configs := []struct {
		name   string
		cold   bool
		budget int64
	}{
		{"resident", false, 0},
		{"cold-full-cache", true, recordBytes},
		{"cold-10pct-cache", true, recordBytes / 10},
		{"cold-no-cache", true, 0},
	}

	ctx := context.Background()
	var baseline [][]core.Match
	results := make([]coldBenchResult, 0, len(configs))
	for _, cfg := range configs {
		cfs := store.NewCountingFS(store.OSFS)
		opt := core.LiveOptions{FS: cfs}
		if cfg.cold {
			opt.ColdRecords = 1
			opt.Cache = store.NewBlockCache(cfg.budget)
		}
		li, err := core.OpenLiveIndex(curve, dir, opt)
		if err != nil {
			t.Fatal(err)
		}
		if st := li.Stats(); cfg.cold && st.ColdSegments != st.Segments {
			t.Fatalf("%s: %d of %d segments opened cold", cfg.name, st.ColdSegments, st.Segments)
		}

		// Warm pass: verifies every configuration answers exactly like the
		// resident baseline (and, cold, populates the cache the way a
		// steady-state server would have it).
		answers := make([][]core.Match, len(queries))
		for i, q := range queries {
			m, _, err := li.SearchStat(ctx, q, sq)
			if err != nil {
				t.Fatal(err)
			}
			answers[i] = m
		}
		if baseline == nil {
			baseline = answers
		} else if !reflect.DeepEqual(baseline, answers) {
			t.Fatalf("%s: answers differ from the resident baseline", cfg.name)
		}

		readBefore := cfs.ReadBytes()
		start := time.Now()
		for r := 0; r < coldBenchRounds; r++ {
			for _, q := range queries {
				if _, _, err := li.SearchStat(ctx, q, sq); err != nil {
					t.Fatal(err)
				}
			}
		}
		elapsed := time.Since(start).Seconds()
		nq := float64(coldBenchRounds * len(queries))
		res := coldBenchResult{
			Name:          cfg.name,
			CacheBudget:   cfg.budget,
			QueriesPerSec: nq / elapsed,
			BytesPerQuery: float64(cfs.ReadBytes()-readBefore) / nq,
		}
		if recordBytes > 0 {
			res.BudgetPct = 100 * float64(cfg.budget) / float64(recordBytes)
		}
		if cfg.cold {
			cs := li.Stats().Cache
			res.CacheHits, res.CacheMisses = cs.Hits, cs.Misses
			res.CacheEvicts = cs.Evictions
			if total := cs.Hits + cs.Misses; total > 0 {
				res.CacheHitRate = float64(cs.Hits) / float64(total)
			}
		}
		if err := li.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("%-18s budget %11d (%5.1f%%): %8.1f q/s, %10.0f disk bytes/query, hit rate %.3f",
			res.Name, res.CacheBudget, res.BudgetPct, res.QueriesPerSec,
			res.BytesPerQuery, res.CacheHitRate)
		results = append(results, res)
	}

	// The resident baseline reads nothing per query; a cold tier with a
	// cache must read dramatically less than one without.
	if res := results[0]; res.BytesPerQuery != 0 {
		t.Errorf("resident config read %f bytes/query from disk", res.BytesPerQuery)
	}
	if full, none := results[1], results[3]; full.BytesPerQuery >= none.BytesPerQuery {
		t.Errorf("full cache reads as much as no cache (%.0f vs %.0f bytes/query)",
			full.BytesPerQuery, none.BytesPerQuery)
	}

	report := map[string]interface{}{
		"benchmark": "cold-tier serving: block-cached disk reads vs all-resident segments",
		"corpus": map[string]interface{}{
			"records":      n,
			"record_bytes": recordBytes,
			"segments":     coldBenchSegments,
			"dims":         fingerprint.D,
			"queries":      len(queries),
			"rounds":       coldBenchRounds,
			"alpha":        shardBenchAlpha,
			"sigma":        shardBenchSigma,
		},
		"host": map[string]interface{}{
			"num_cpu":    runtime.NumCPU(),
			"go_version": runtime.Version(),
		},
		"note": fmt.Sprintf("All configurations answered match-for-match identically to the "+
			"resident baseline (verified in-run). disk_bytes_read_per_query counts bytes "+
			"crossing the store.FS seam during the timed passes on a %d-core host; the warm "+
			"pass populates the cache first, so it reflects steady-state serving.",
			runtime.NumCPU()),
		"results": results,
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_cold.json", append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_cold.json")
}
