package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"s3cbcd/internal/core"
	"s3cbcd/internal/hilbert"
)

func liveTestServer(t *testing.T) (*Server, *core.LiveIndex) {
	t.Helper()
	curve := hilbert.MustNew(4, 5)
	li, err := core.OpenLiveIndex(curve, "", core.LiveOptions{Depth: 10, MemtableRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { li.Close() })
	return NewLive(li, Options{}), li
}

func ingestBody(id int, fps ...[]int) map[string]interface{} {
	recs := make([]map[string]interface{}, len(fps))
	for i, fp := range fps {
		recs[i] = map[string]interface{}{"fingerprint": fp, "id": id, "tc": 100 + i}
	}
	return map[string]interface{}{"records": recs}
}

func TestLiveIngestSearchDelete(t *testing.T) {
	s, _ := liveTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, out := post(t, ts, "/ingest", ingestBody(7,
		[]int{1, 2, 3, 4}, []int{5, 6, 7, 8}, []int{9, 10, 11, 12}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d: %v", resp.StatusCode, out)
	}
	if out["ingested"].(float64) != 3 || out["records"].(float64) != 3 {
		t.Fatalf("ingest response %v", out)
	}

	// Ingested records are immediately searchable.
	resp, out = post(t, ts, "/search/range", map[string]interface{}{
		"fingerprint": []int{1, 2, 3, 4}, "epsilon": 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: status %d: %v", resp.StatusCode, out)
	}
	if n := len(out["matches"].([]interface{})); n != 1 {
		t.Fatalf("range search found %d matches, want 1", n)
	}

	// Statistical search works over the live snapshot too.
	resp, out = post(t, ts, "/search/statistical", map[string]interface{}{
		"fingerprint": []int{1, 2, 3, 4}, "alpha": 0.9, "sigma": 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stat search: status %d: %v", resp.StatusCode, out)
	}

	// Delete the video and verify it is gone.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/video/7", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	resp, out = post(t, ts, "/search/range", map[string]interface{}{
		"fingerprint": []int{1, 2, 3, 4}, "epsilon": 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search after delete: status %d", resp.StatusCode)
	}
	if n := len(out["matches"].([]interface{})); n != 0 {
		t.Fatalf("deleted video still matches (%d)", n)
	}
}

func TestLiveIngestValidation(t *testing.T) {
	s, _ := liveTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, _ := post(t, ts, "/ingest", map[string]interface{}{"records": []interface{}{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty ingest: status %d, want 400", resp.StatusCode)
	}
	resp, _ = post(t, ts, "/ingest", ingestBody(1, []int{1, 2})) // wrong dims
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-dims ingest: status %d, want 400", resp.StatusCode)
	}
	resp, _ = post(t, ts, "/ingest", ingestBody(1, []int{1, 2, 3, 999})) // out of range
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range ingest: status %d, want 400", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/video/notanumber", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad video id: status %d, want 400", dresp.StatusCode)
	}
}

func TestLiveHealthzAndCompact(t *testing.T) {
	s, li := liveTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// 10 records with threshold 4: several sealed segments.
	var fps [][]int
	for i := 0; i < 10; i++ {
		fps = append(fps, []int{i, i, i, i})
	}
	if resp, out := post(t, ts, "/ingest", ingestBody(3, fps...)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %v", out)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]interface{}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["records"].(float64) != 10 {
		t.Fatalf("healthz %v", health)
	}
	if _, ok := health["segments"]; !ok {
		t.Fatal("live healthz missing segment count")
	}
	if _, ok := health["compactions"]; !ok {
		t.Fatal("live healthz missing compaction counter")
	}

	if resp, out := post(t, ts, "/flush", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %v", out)
	}
	if resp, out := post(t, ts, "/compact", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: %v", out)
	}
	st := li.Stats()
	if st.Segments != 1 || st.MemtableRecords != 0 {
		t.Fatalf("after flush+compact: %+v", st)
	}
	if st.LiveRecords != 10 {
		t.Fatalf("records lost across flush+compact: %+v", st)
	}
}

// The ingest body cap must reject oversized batches with 413 instead of
// buffering them, while small batches pass unaffected.
func TestLiveIngestBodyCap(t *testing.T) {
	curve := hilbert.MustNew(4, 5)
	li, err := core.OpenLiveIndex(curve, "", core.LiveOptions{Depth: 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { li.Close() })
	ts := httptest.NewServer(NewLive(li, Options{MaxIngestBytes: 256}))
	defer ts.Close()

	resp, out := post(t, ts, "/ingest", ingestBody(1, []int{1, 2, 3, 4}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small ingest: status %d: %v", resp.StatusCode, out)
	}
	var fps [][]int
	for i := 0; i < 64; i++ {
		fps = append(fps, []int{1, 2, 3, 4})
	}
	resp, out = post(t, ts, "/ingest", ingestBody(1, fps...))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: status %d, want 413: %v", resp.StatusCode, out)
	}
}

// A static server must not expose the live endpoints.
func TestStaticServerRejectsIngest(t *testing.T) {
	s, _ := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/ingest", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("static server accepted /ingest")
	}
}
