// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV-C and Section V). Each experiment is a function
// that prints the same rows/series the paper reports; cmd/s3bench runs
// them by id and bench_test.go exercises their measured quantities as
// testing.B benchmarks.
//
// Scales are reduced relative to the paper (see DESIGN.md §5): the INA
// archive is replaced by procedural video, and database sizes top out in
// the millions of fingerprints rather than billions. The quantities the
// paper's claims rest on — who wins, by what factor, where behaviour
// changes — are preserved.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Scale selects the experiment workload size.
type Scale int

const (
	// Quick finishes each experiment in seconds to a couple of minutes.
	Quick Scale = iota
	// Full uses larger databases and more clips; minutes per experiment.
	Full
)

// ParseScale maps a flag value to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "", "quick":
		return Quick, nil
	case "full":
		return Full, nil
	default:
		return Quick, fmt.Errorf("experiments: unknown scale %q (want quick or full)", s)
	}
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the artifact identifier (fig1, tab1, ...).
	ID string
	// Title describes the artifact.
	Title string
	// Run executes the experiment at the given scale and seed, writing
	// the series/rows to w.
	Run func(w io.Writer, sc Scale, seed int64) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment, sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
