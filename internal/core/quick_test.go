package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickStatPlanInvariants property-tests the threshold search: for
// arbitrary queries, sigmas and alphas, the plan must carry mass >= alpha,
// have positive block count, and sorted disjoint intervals.
func TestQuickStatPlanInvariants(t *testing.T) {
	db := testDB(t, 6, 400, 99)
	ix, err := NewIndex(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw [6]byte, sRaw, aRaw uint8) bool {
		sigma := 2 + float64(sRaw%40)
		alpha := 0.05 + 0.9*float64(aRaw)/255
		q := make([]byte, 6)
		copy(q, raw[:])
		plan, err := ix.PlanStat(q, StatQuery{Alpha: alpha, Model: IsoNormal{D: 6, Sigma: sigma}})
		if err != nil {
			return false
		}
		if plan.Mass < alpha-1e-9 || plan.Blocks < 1 {
			return false
		}
		for i, iv := range plan.Intervals {
			if !iv.Start.Less(iv.End) {
				return false
			}
			if i > 0 && plan.Intervals[i-1].End.Cmp(iv.Start) >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRangeContainsStat verifies a containment property: every
// record a range query returns at radius eps is also within eps by brute
// distance (soundness), and a radius-0 self-query returns the record.
func TestQuickRangeSoundness(t *testing.T) {
	db := testDB(t, 6, 300, 98)
	ix, _ := NewIndex(db, 0)
	r := rand.New(rand.NewSource(97))
	f := func(epsRaw uint8) bool {
		eps := float64(epsRaw) / 2
		q, _ := distortedQuery(r, db, 10)
		matches, _, err := ix.SearchRange(q, eps)
		if err != nil {
			return false
		}
		for _, m := range matches {
			if m.Dist > eps+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
	// Self query.
	self := append([]byte(nil), db.FP(7)...)
	matches, _, err := ix.SearchRange(self, 0)
	if err != nil || len(matches) == 0 {
		t.Fatalf("self range query: %v %d", err, len(matches))
	}
}
