package core

// FuzzPlanCacheKey attacks the plan cache's key construction with the
// oracle the design demands: for any pair of (query, α, σ) triples —
// hostile floats included — querying through the cache must answer
// exactly like the uncached computation. A key collision that let two
// different queries share a plan would make the second query's cached
// answer diverge from its own uncached oracle; NaN/Inf/out-of-range
// components must error or answer normally, never panic or hang.

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"s3cbcd/internal/store"
)

var fuzzPlanState struct {
	once sync.Once
	eng  *Engine
}

// fuzzPlanEngine builds the shared cache-enabled engine once per process
// (fuzz workers are separate processes, each builds its own).
func fuzzPlanEngine(tb testing.TB) *Engine {
	fuzzPlanState.once.Do(func() {
		r := rand.New(rand.NewSource(7))
		recs := make([]store.Record, 400)
		for i := range recs {
			recs[i] = randLiveRecord(r)
		}
		db, err := store.Build(liveTestCurve(), recs)
		if err != nil {
			tb.Fatal(err)
		}
		ix, err := NewIndex(db, liveTestDepth)
		if err != nil {
			tb.Fatal(err)
		}
		eng := NewEngine(ix, 1, 1)
		// Tiny capacity so fuzz inputs also churn the LRU/eviction path.
		eng.EnablePlanCache(64)
		fuzzPlanState.eng = eng
	})
	return fuzzPlanState.eng
}

// planEqualBits is byte-identical plan equality: float fields compare by
// bit pattern so a NaN-mass plan (hostile σ) still equals itself.
func planEqualBits(a, b Plan) bool {
	return reflect.DeepEqual(a.Intervals, b.Intervals) && a.Blocks == b.Blocks &&
		math.Float64bits(a.Mass) == math.Float64bits(b.Mass) &&
		math.Float64bits(a.Threshold) == math.Float64bits(b.Threshold) &&
		a.FilterIters == b.FilterIters && a.Depth == b.Depth
}

func FuzzPlanCacheKey(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, 0.9, 2.5, []byte{1, 2, 3, 5}, 0.9, 2.5)
	f.Add([]byte{0, 0, 0, 0}, 0.5, 0.1, []byte{31, 31, 31, 31}, 0.99, 30.0)
	f.Add([]byte{10, 20, 30, 31}, 0.8, 2.5, []byte{10, 20, 30, 31}, 0.8, 2.5) // identical: must hit
	f.Add([]byte{5, 5, 5, 5}, math.NaN(), 2.5, []byte{5, 5, 5, 5}, 0.9, math.NaN())
	f.Add([]byte{5, 5, 5, 5}, math.Inf(1), math.Inf(-1), []byte{255, 255, 255, 255}, 1e-300, 1e300)
	f.Add([]byte{}, 0.9, 2.5, []byte{1, 2, 3, 4, 5, 6}, -1.0, 0.0)

	f.Fuzz(func(t *testing.T, qa []byte, alphaA, sigmaA float64, qb []byte, alphaB, sigmaB float64) {
		eng := fuzzPlanEngine(t)
		ctx := context.Background()
		run := func(q []byte, alpha, sigma float64) {
			sq := StatQuery{Alpha: alpha, Model: IsoNormal{D: liveTestDims, Sigma: sigma}}
			gotM, gotP, err := eng.SearchStat(ctx, q, sq)
			if err != nil {
				// Invalid inputs (wrong dims, α outside (0,1), NaN α) must
				// reject identically on the uncached path.
				if _, _, rawErr := eng.SearchStat(WithoutPlanCache(ctx), q, sq); rawErr == nil {
					t.Fatalf("cached query rejected (%v) but uncached accepted: q=%v alpha=%v sigma=%v",
						err, q, alpha, sigma)
				}
				return
			}
			wantM, wantP, err := eng.SearchStat(WithoutPlanCache(ctx), q, sq)
			if err != nil {
				t.Fatalf("cached query accepted but uncached rejected (%v): q=%v alpha=%v sigma=%v",
					err, q, alpha, sigma)
			}
			if !planEqualBits(gotP, wantP) {
				t.Fatalf("cached plan differs from uncached oracle:\n got %+v\nwant %+v\nq=%v alpha=%v sigma=%v",
					gotP, wantP, q, alpha, sigma)
			}
			if !matchesEqual(gotM, wantM) {
				t.Fatalf("cached matches differ from uncached oracle (%d vs %d): q=%v alpha=%v sigma=%v",
					len(gotM), len(wantM), q, alpha, sigma)
			}
		}
		// Order matters: the first triple populates the cache, the second
		// would surface a key collision between them.
		run(qa, alphaA, sigmaA)
		run(qb, alphaB, sigmaB)
	})
}
