package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestTraceContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("background context carries a trace")
	}
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace did not round-trip through the context")
	}
}

func TestTraceStagesAndCounters(t *testing.T) {
	tr := NewTrace()
	t0 := time.Now()
	tr.AddDescentNodes(11)
	tr.AddBlocks(5)
	tr.StageSince("plan", t0)
	t1 := time.Now()
	tr.AddCandidates(100)
	tr.AddSegments(3)
	tr.StageSince("refine", t1)

	rep := tr.Report()
	if len(rep.Stages) != 2 || rep.Stages[0].Name != "plan" || rep.Stages[1].Name != "refine" {
		t.Fatalf("stages %+v", rep.Stages)
	}
	if rep.Stages[1].StartMicros < rep.Stages[0].StartMicros {
		t.Errorf("stage offsets not monotone: %+v", rep.Stages)
	}
	if rep.DescentNodes != 11 || rep.Blocks != 5 || rep.Candidates != 100 || rep.Segments != 3 {
		t.Errorf("counters %+v", rep)
	}

	// Counters are safe for concurrent refinement workers.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.AddCandidates(1)
			}
		}()
	}
	wg.Wait()
	if got := tr.Report().Candidates; got != 100+8000 {
		t.Errorf("concurrent candidates %d, want 8100", got)
	}
}

// A nil trace — the disabled fast path — is inert everywhere.
func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	tr.StageSince("plan", time.Now())
	tr.AddDescentNodes(1)
	tr.AddBlocks(1)
	tr.AddCandidates(1)
	tr.AddSegments(1)
	if rep := tr.Report(); rep.DescentNodes != 0 || len(rep.Stages) != 0 {
		t.Errorf("nil trace reported %+v", rep)
	}
}

// Sampling is deterministic under a fixed seed: two samplers with the
// same (rate, seed) produce identical accept/reject sequences, and the
// acceptance rate is close to the configured one.
func TestSamplerDeterminism(t *testing.T) {
	const n = 10000
	a := NewSampler(0.25, 42)
	b := NewSampler(0.25, 42)
	accepted := 0
	for i := 0; i < n; i++ {
		sa, sb := a.Sample(), b.Sample()
		if sa != sb {
			t.Fatalf("draw %d diverged between equal-seeded samplers", i)
		}
		if sa {
			accepted++
		}
	}
	if accepted < n/5 || accepted > n/3 {
		t.Errorf("accepted %d of %d at rate 0.25", accepted, n)
	}

	if NewSampler(0, 1).Sample() {
		t.Error("rate-0 sampler sampled")
	}
	if !NewSampler(1, 1).Sample() {
		t.Error("rate-1 sampler did not sample")
	}
	var nilS *Sampler
	if nilS.Sample() {
		t.Error("nil sampler sampled")
	}

	// Different seeds diverge somewhere early (not a proof, a smoke test).
	c, d := NewSampler(0.5, 1), NewSampler(0.5, 2)
	same := true
	for i := 0; i < 64; i++ {
		if c.Sample() != d.Sample() {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical 64-draw prefixes")
	}
}

func TestNopLogger(t *testing.T) {
	lg := NopLogger()
	lg.Info("discarded", "k", "v") // must not panic or write
	if lg.Enabled(context.Background(), 0) {
		t.Error("nop logger claims to be enabled")
	}
}
