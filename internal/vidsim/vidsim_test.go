package vidsim

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(11)
	a := Generate(cfg, 60)
	b := Generate(cfg, 60)
	if a.Len() != 60 || b.Len() != 60 {
		t.Fatalf("lengths %d %d", a.Len(), b.Len())
	}
	for i := range a.Frames {
		for j := range a.Frames[i].Pix {
			if a.Frames[i].Pix[j] != b.Frames[i].Pix[j] {
				t.Fatalf("frame %d differs at %d", i, j)
			}
		}
	}
	c := Generate(DefaultConfig(12), 60)
	same := true
	for j := range a.Frames[0].Pix {
		if a.Frames[0].Pix[j] != c.Frames[0].Pix[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical first frame")
	}
}

func TestGenerateRangeAndVariety(t *testing.T) {
	seq := Generate(DefaultConfig(3), 120)
	for i, f := range seq.Frames {
		var m Momentser
		for _, v := range f.Pix {
			if v < 0 || v > 255 {
				t.Fatalf("frame %d: pixel %v out of range", i, v)
			}
			m.add(float64(v))
		}
		if m.std() < 5 {
			t.Fatalf("frame %d nearly flat (std %v): no texture for corners", i, m.std())
		}
	}
}

// Momentser is a tiny local mean/std helper to avoid a dependency cycle
// with internal/stat in tests.
type Momentser struct {
	n          int
	sum, sumSq float64
}

func (m *Momentser) add(x float64) { m.n++; m.sum += x; m.sumSq += x * x }
func (m *Momentser) std() float64 {
	mean := m.sum / float64(m.n)
	return math.Sqrt(m.sumSq/float64(m.n) - mean*mean)
}

func TestShotCutsProduceMotionSpikes(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.MinShot, cfg.MaxShot = 25, 30
	seq := Generate(cfg, 200)
	var diffs []float64
	for i := 1; i < seq.Len(); i++ {
		diffs = append(diffs, MeanAbsDiff(seq.Frames[i-1], seq.Frames[i]))
	}
	// There must be clear spikes (cuts) well above the median motion.
	med := medianOf(diffs)
	spikes := 0
	for _, d := range diffs {
		if d > 4*med {
			spikes++
		}
	}
	if spikes < 3 {
		t.Fatalf("only %d motion spikes across 200 frames (median %v)", spikes, med)
	}
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func TestFrameAtClamps(t *testing.T) {
	f := NewFrame(4, 3)
	f.Set(0, 0, 10)
	f.Set(3, 2, 20)
	if f.At(-5, -5) != 10 || f.At(100, 100) != 20 {
		t.Fatal("replicate padding broken")
	}
	f.Set(-1, 0, 99) // ignored
	if f.At(0, 0) != 10 {
		t.Fatal("out-of-bounds Set wrote")
	}
}

func TestBilinear(t *testing.T) {
	f := NewFrame(2, 2)
	f.Set(0, 0, 0)
	f.Set(1, 0, 10)
	f.Set(0, 1, 20)
	f.Set(1, 1, 30)
	if got := f.Bilinear(0.5, 0.5); math.Abs(float64(got)-15) > 1e-5 {
		t.Fatalf("center bilinear = %v", got)
	}
	if got := f.Bilinear(0, 0); got != 0 {
		t.Fatalf("corner bilinear = %v", got)
	}
}

func TestMeanAbsDiff(t *testing.T) {
	a, b := NewFrame(2, 2), NewFrame(2, 2)
	b.Pix[0] = 4
	if got := MeanAbsDiff(a, b); got != 1 {
		t.Fatalf("MeanAbsDiff = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch should panic")
		}
	}()
	MeanAbsDiff(a, NewFrame(3, 2))
}

func TestResize(t *testing.T) {
	f := Generate(DefaultConfig(1), 1).Frames[0]
	g := Resize{Scale: 0.5}.Apply(f)
	if g.W != f.W/2 || g.H != f.H/2 {
		t.Fatalf("resize dims %dx%d", g.W, g.H)
	}
	up := Resize{Scale: 2}.Apply(f)
	if up.W != 2*f.W {
		t.Fatalf("upscale dims %d", up.W)
	}
	// MapPoint round trip through scale and back lands close to start.
	x, y, ok := Resize{Scale: 0.5}.MapPoint(40, 30, f.W, f.H)
	if !ok {
		t.Fatal("resize map not ok")
	}
	x2, y2, _ := Resize{Scale: 2}.MapPoint(x, y, f.W/2, f.H/2)
	if math.Abs(x2-40) > 1 || math.Abs(y2-30) > 1 {
		t.Fatalf("map round trip: (%v,%v)", x2, y2)
	}
}

func TestVShift(t *testing.T) {
	f := NewFrame(4, 10)
	f.Set(1, 2, 50)
	g := VShift{Frac: 0.3}.Apply(f) // 3 px down
	if g.At(1, 5) != 50 {
		t.Fatalf("shifted pixel not found: %v", g.At(1, 5))
	}
	if g.At(1, 2) != 0 {
		t.Fatalf("revealed area not black")
	}
	_, y, ok := VShift{Frac: 0.3}.MapPoint(1, 2, 4, 10)
	if !ok || y != 5 {
		t.Fatalf("MapPoint y=%v ok=%v", y, ok)
	}
	_, _, ok = VShift{Frac: 0.5}.MapPoint(1, 8, 4, 10)
	if ok {
		t.Fatal("point leaving frame should report !ok")
	}
}

func TestGammaContrast(t *testing.T) {
	f := NewFrame(1, 3)
	f.Pix = []float32{0, 127.5, 255}
	g := Gamma{G: 2}.Apply(f)
	if g.Pix[0] != 0 || math.Abs(float64(g.Pix[2])-255) > 0.5 {
		t.Fatalf("gamma endpoints: %v", g.Pix)
	}
	if math.Abs(float64(g.Pix[1])-63.75) > 1 {
		t.Fatalf("gamma midpoint: %v", g.Pix[1])
	}
	c := Contrast{Factor: 2.5}.Apply(f)
	if c.Pix[1] != 255 || c.Pix[2] != 255 || c.Pix[0] != 0 {
		t.Fatalf("contrast clamp: %v", c.Pix)
	}
}

func TestNoiseDeterministicAndBounded(t *testing.T) {
	f := Generate(DefaultConfig(2), 1).Frames[0]
	a := Noise{Sigma: 10, Seed: 9}.Apply(f)
	b := Noise{Sigma: 10, Seed: 9}.Apply(f)
	diff := 0.0
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("noise not deterministic")
		}
		if a.Pix[i] < 0 || a.Pix[i] > 255 {
			t.Fatal("noise out of range")
		}
		d := float64(a.Pix[i] - f.Pix[i])
		diff += d * d
	}
	rms := math.Sqrt(diff / float64(len(a.Pix)))
	if rms < 5 || rms > 15 {
		t.Fatalf("noise rms %v for sigma 10", rms)
	}
}

func TestPixelJitter(t *testing.T) {
	j := PixelJitter{Delta: 1, Seed: 4}
	moved := 0
	for i := 0; i < 50; i++ {
		x, y, ok := j.MapPoint(float64(10+i), 20, 96, 72)
		if !ok {
			continue
		}
		if math.Abs(x-float64(10+i))+math.Abs(y-20) != 1 {
			t.Fatalf("jitter moved by != 1 px: %v %v", x, y)
		}
		moved++
	}
	if moved < 45 {
		t.Fatalf("too many jittered points out of frame: %d", moved)
	}
	// Delta 0 is identity.
	x, y, ok := PixelJitter{}.MapPoint(3, 4, 96, 72)
	if !ok || x != 3 || y != 4 {
		t.Fatal("zero jitter not identity")
	}
}

func TestCompose(t *testing.T) {
	c := Compose{Resize{Scale: 0.5}, Gamma{G: 1.2}, VShift{Frac: 0.1}}
	f := Generate(DefaultConfig(8), 1).Frames[0]
	g := c.Apply(f)
	if g.W != f.W/2 || g.H != f.H/2 {
		t.Fatalf("compose dims %dx%d", g.W, g.H)
	}
	x, y, ok := c.MapPoint(40, 30, f.W, f.H)
	if !ok {
		t.Fatal("compose map failed")
	}
	// resize first: ~ (20.25,15.25) then shift 10% of 36 px = 4 px (approx).
	if math.Abs(x-20.25) > 0.51 || math.Abs(y-15.25-4) > 1.01 {
		t.Fatalf("compose map = (%v,%v)", x, y)
	}
	if c.Name() == "" {
		t.Fatal("empty compose name")
	}
}

func TestApplySeqReseedsNoise(t *testing.T) {
	seq := Generate(DefaultConfig(21), 3)
	out := ApplySeq(Noise{Sigma: 8, Seed: 77}, seq)
	// Noise fields of different frames must differ: compare the noise
	// residuals of frame 0 and 1 at the same pixel positions.
	same := 0
	for i := range out.Frames[0].Pix {
		r0 := out.Frames[0].Pix[i] - seq.Frames[0].Pix[i]
		r1 := out.Frames[1].Pix[i] - seq.Frames[1].Pix[i]
		if r0 == r1 {
			same++
		}
	}
	if same > len(out.Frames[0].Pix)/10 {
		t.Fatalf("noise identical across frames at %d/%d pixels", same, len(out.Frames[0].Pix))
	}
	// Composition reseeds too.
	out2 := ApplySeq(Compose{Noise{Sigma: 8, Seed: 77}}, seq)
	for i := range out2.Frames[1].Pix {
		if out2.Frames[1].Pix[i] != out.Frames[1].Pix[i] {
			t.Fatal("compose reseed diverged from direct reseed")
		}
	}
}

func TestIdentity(t *testing.T) {
	f := Generate(DefaultConfig(30), 1).Frames[0]
	g := Identity{}.Apply(f)
	g.Pix[0] = 123
	if f.Pix[0] == 123 {
		t.Fatal("Identity did not deep copy")
	}
}
