package hilbert

import (
	"sort"
	"testing"
)

// hashFactor derives a deterministic pseudo-random score for a dyadic
// interval of one dimension, mimicking a per-dimension mass factor
// without needing a model. Factors are exact powers of two so that the
// product of a node's factors is the same float64 no matter the order it
// is accumulated in — the test recomputes products when reseeding a
// resumed visitor, and exact arithmetic keeps that recomputation
// bit-identical to the incremental bookkeeping of a fresh descent.
func hashFactor(dim int, lo, hi uint32, seed uint64) float64 {
	h := seed
	h ^= uint64(dim+1) * 0x9e3779b97f4a7c15
	h ^= uint64(lo) * 0xbf58476d1ce4e5b9
	h ^= uint64(hi) * 0x94d049bb133111eb
	h ^= h >> 31
	h *= 0xd6e8feb86659fd93
	h ^= h >> 29
	return 1 / float64(uint64(1)<<(h%4))
}

// scoreVisitor prunes nodes whose factor product is <= t, collecting
// surviving leaves and (through the frontier callback) pruned nodes.
type scoreVisitor struct {
	seed    uint64
	t       float64
	factors []float64
	prod    float64
	stack   []float64
	dims    []int
	leaves  []Interval
}

func newScoreVisitor(dims int, seed uint64, t float64) *scoreVisitor {
	v := &scoreVisitor{seed: seed, t: t, factors: make([]float64, dims), prod: 1}
	for i := range v.factors {
		v.factors[i] = 1
	}
	return v
}

// reseed positions the visitor at a resumed node by recomputing the
// per-dimension factors from the node's bounds.
func (v *scoreVisitor) reseed(n Node, side uint32) {
	v.prod = 1
	v.stack = v.stack[:0]
	v.dims = v.dims[:0]
	for j := range v.factors {
		f := 1.0
		if n.Lo[j] != 0 || n.Hi[j] != side {
			f = hashFactor(j, n.Lo[j], n.Hi[j], v.seed)
		}
		v.factors[j] = f
		v.prod *= f
	}
}

func (v *scoreVisitor) Enter(dim int, lo, hi uint32) bool {
	f := hashFactor(dim, lo, hi, v.seed)
	np := v.prod / v.factors[dim] * f
	if np <= v.t {
		return false
	}
	v.stack = append(v.stack, v.factors[dim])
	v.dims = append(v.dims, dim)
	v.factors[dim] = f
	v.prod = np
	return true
}

func (v *scoreVisitor) Leave(int) {
	last := len(v.stack) - 1
	dim := v.dims[last]
	old := v.stack[last]
	v.stack, v.dims = v.stack[:last], v.dims[:last]
	v.prod = v.prod / v.factors[dim] * old
	v.factors[dim] = old
}

func (v *scoreVisitor) Leaf(b Block) bool {
	v.leaves = append(v.leaves, Interval{Start: b.Start, End: b.End})
	return true
}

// TestFrontierRootMatchesDescendSteps checks that a frontier descent from
// the root with no pruning enumerates exactly the DescendSteps leaves.
func TestFrontierRootMatchesDescendSteps(t *testing.T) {
	for _, cfg := range []struct{ dims, order, depth int }{
		{2, 3, 5}, {3, 2, 6}, {4, 2, 8}, {1, 5, 4}, {5, 2, 7},
	} {
		c := MustNew(cfg.dims, cfg.order)
		want := newScoreVisitor(cfg.dims, 0, -1) // t < 0: keep everything
		c.DescendSteps(cfg.depth, want)

		got := newScoreVisitor(cfg.dims, 0, -1)
		fd := c.NewFrontierDescent()
		fd.Descend(c.RootNode(), cfg.depth, got, nil)

		if len(want.leaves) != len(got.leaves) {
			t.Fatalf("%+v: %d leaves vs %d", cfg, len(got.leaves), len(want.leaves))
		}
		for i := range want.leaves {
			if want.leaves[i] != got.leaves[i] {
				t.Fatalf("%+v: leaf %d differs", cfg, i)
			}
		}
	}
}

// TestFrontierResumeEquivalence prunes a first pass hard, then resumes
// every pruned node at a weaker threshold; the union of both passes'
// leaves must equal a fresh descent at the weak threshold.
func TestFrontierResumeEquivalence(t *testing.T) {
	for _, cfg := range []struct {
		dims, order, depth int
		seed               uint64
		tHi, tLo           float64
	}{
		{3, 3, 7, 1, 0.5, 0.1},
		{4, 2, 8, 2, 0.3, 0.01},
		{2, 4, 8, 3, 0.7, 0.2},
		{5, 2, 9, 4, 0.4, 0},
	} {
		c := MustNew(cfg.dims, cfg.order)
		side := c.SideLen()
		fd := c.NewFrontierDescent()

		// First pass at the strong threshold, capturing pruned nodes.
		var frontier []Node
		first := newScoreVisitor(cfg.dims, cfg.seed, cfg.tHi)
		fd.Descend(c.RootNode(), cfg.depth, first, func(n Node) {
			frontier = append(frontier, CopyNode(n, make([]uint32, 2*cfg.dims)))
		})
		leaves := append([]Interval(nil), first.leaves...)

		// Resume each pruned node at the weak threshold.
		for _, n := range frontier {
			v := newScoreVisitor(cfg.dims, cfg.seed, cfg.tLo)
			v.reseed(n, side)
			if v.prod <= cfg.tLo {
				continue // still pruned at the weak threshold
			}
			fd.Descend(n, cfg.depth, v, nil)
			leaves = append(leaves, v.leaves...)
		}
		sort.Slice(leaves, func(i, j int) bool { return leaves[i].Start.Less(leaves[j].Start) })

		// Fresh descent at the weak threshold.
		fresh := newScoreVisitor(cfg.dims, cfg.seed, cfg.tLo)
		fd.Descend(c.RootNode(), cfg.depth, fresh, nil)

		if len(fresh.leaves) != len(leaves) {
			t.Fatalf("%+v: resumed %d leaves, fresh %d", cfg, len(leaves), len(fresh.leaves))
		}
		for i := range leaves {
			if leaves[i] != fresh.leaves[i] {
				t.Fatalf("%+v: leaf %d differs after resume", cfg, i)
			}
		}
		if len(frontier) == 0 {
			t.Fatalf("%+v: first pass pruned nothing, test is vacuous", cfg)
		}
	}
}

// TestFrontierLeafDepthNode resumes a node already at the target depth:
// it must be emitted as a single leaf.
func TestFrontierLeafDepthNode(t *testing.T) {
	c := MustNew(3, 3)
	fd := c.NewFrontierDescent()

	var nodes []Node
	v := newScoreVisitor(3, 9, 1.0/32) // deep enough that some leaves prune
	fd.Descend(c.RootNode(), 5, v, func(n Node) {
		if n.Bits == 5 {
			nodes = append(nodes, CopyNode(n, make([]uint32, 6)))
		}
	})
	if len(nodes) == 0 {
		t.Fatal("no depth-level nodes were pruned")
	}
	for _, n := range nodes {
		leafV := newScoreVisitor(3, 9, -1)
		fd.Descend(n, 5, leafV, nil)
		if len(leafV.leaves) != 1 {
			t.Fatalf("depth-level resume emitted %d leaves", len(leafV.leaves))
		}
		want := c.NodeInterval(n)
		if leafV.leaves[0] != want {
			t.Fatalf("leaf interval %+v, node interval %+v", leafV.leaves[0], want)
		}
	}
}

// TestFrontierDepthPanics checks the depth validation.
func TestFrontierDepthPanics(t *testing.T) {
	c := MustNew(2, 2)
	fd := c.NewFrontierDescent()
	root := c.RootNode()
	for _, depth := range []int{-1, c.IndexBits() + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("depth %d accepted", depth)
				}
			}()
			fd.Descend(root, depth, newScoreVisitor(2, 0, -1), nil)
		}()
	}
	// Depth below the node's own bits must also panic.
	kids := c.SplitNode(root)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("depth below node bits accepted")
			}
		}()
		fd.Descend(kids[0], 0, newScoreVisitor(2, 0, -1), nil)
	}()
}
