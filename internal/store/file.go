package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"s3cbcd/internal/bitkey"
	"s3cbcd/internal/hilbert"
)

// File format (all integers little-endian):
//
//	magic   [4]byte "S3DB"
//	version uint32  (1, 2, 3 or 4)
//	dims    uint32
//	order   uint32
//	count   uint64
//	secBits uint32
//	flags   uint32                            (version 4 only)
//	table   (2^secBits + 1) × uint64   record start index per curve section
//	shards  uint32, (shards + 1) × uint64     (version 3; version 4 when flagged)
//	sketch  see sketch.go                     (version 4, flagShardSketch)
//	codec   see quant.go                      (version 4, flagCodec)
//	records count × (keyBytes + dims + 4 + 4 [+ 2 + 2])
//	lean    count × (keyBytes + 4 + 4 + 2 + 2)   (version 4, flagCodec)
//	codes   count × ceil(dims*qbits/8)           (version 4, flagCodec)
//
// Records are sorted by key; keyBytes = ceil(dims*order/8). Version 2
// appends the interest point position (x, y as uint16) to every record;
// version 1 files remain readable with zero positions. The section table
// is the paper's index table: it locates any curve section's record range
// without touching the record area, which is what lets the pseudo-disk
// strategy load one section at a time. Version 3 additionally stores a
// shard manifest — the record start index of each equi-populated,
// key-snapped shard (see ShardStarts) — so an opener can map shards
// without scanning the record area; versions 1 and 2 remain readable and
// simply carry no manifest.
//
// Version 4 adds a flags word selecting optional sections: the shard
// manifest (flagShards), a segment occupancy sketch consulted to skip
// the whole file or individual blocks at query time (flagSketch,
// sketch.go), and the cold codec (flagCodec, quant.go) — a quantizer
// table plus two parallel record areas sharing the exact area's order
// and the section table: "lean" rows (key + identity, no fingerprint)
// serving statistical refinement at ~60% of the exact row bytes, and
// packed per-component cell codes serving the quantized distance filter
// of geometric refinement. The exact record area is byte-compatible
// with version 2, so every v2 reader code path works unchanged on v4.

var fileMagic = [4]byte{'S', '3', 'D', 'B'}

const (
	fileVersionV1 = 1
	fileVersionV2 = 2
	fileVersionV3 = 3
	fileVersionV4 = 4
	fileVersion   = fileVersionV4 // newest version this package writes or opens
)

// Version-4 flags word bits.
const (
	fileFlagShards uint32 = 1 << 0 // shard manifest present
	fileFlagSketch uint32 = 1 << 1 // occupancy sketch section present
	fileFlagCodec  uint32 = 1 << 2 // quantizer table + lean and code areas present
)

// recordSize returns the on-disk record size for a curve at the given
// format version.
func recordSize(c *hilbert.Curve, version int) int {
	base := keyBytes(c) + c.Dims() + 8
	if version >= 2 {
		base += 4
	}
	return base
}

func keyBytes(c *hilbert.Curve) int {
	return (c.IndexBits() + 7) / 8
}

// leanRecordSize is the on-disk size of one lean row: the full record
// minus the fingerprint. Statistical refinement never reads fingerprints
// (the region IS the answer), so the cold stat path reads these instead.
func leanRecordSize(c *hilbert.Curve) int {
	return keyBytes(c) + 12
}

// WriteOptions selects what a serialized database file carries beyond
// the header, section table and exact record area.
type WriteOptions struct {
	// SectionBits is the section-table granularity; must be in
	// [0, IndexBits]. 12 is a good default for the paper's configuration.
	SectionBits int
	// Shards embeds the manifest of a partition into that many
	// equi-populated shards (see ShardStarts); 0 omits it.
	Shards int
	// Sketch embeds an occupancy sketch section (format version 4): a
	// Bloom filter over the blocks of a 2^SketchBits curve partition plus
	// per-dimension component envelopes, letting readers skip the file —
	// or individual blocks — a query provably cannot intersect.
	Sketch bool
	// SketchBits is the sketch's block granularity; non-positive selects
	// an automatic one. The live index passes its partition depth p so
	// plan blocks map one-to-one onto filter probes.
	SketchBits int
	// Codec embeds the cold codec (format version 4): a per-segment
	// quantizer table plus lean and packed-code record areas, so cold
	// reads can serve statistical refinement without fingerprint bytes
	// and pre-filter geometric candidates without exact bytes.
	Codec bool
	// CodecBits is the per-component code width (1, 2, 4 or 8); 0 selects
	// DefaultCodecBits.
	CodecBits int
}

// WriteFile serializes the database with a 2^sectionBits-entry section
// table. sectionBits must be in [0, IndexBits]; 12 is a good default for
// the paper's configuration. The file carries no shard manifest (format
// version 2); use WriteFileSharded to embed one, or WriteFileOpts for
// the version-4 sections.
func (db *DB) WriteFile(path string, sectionBits int) error {
	return db.writeFile(OSFS, path, WriteOptions{SectionBits: sectionBits})
}

// WriteFileFS is WriteFile through an explicit filesystem seam.
func (db *DB) WriteFileFS(fsys FS, path string, sectionBits int) error {
	return db.writeFile(fsys, path, WriteOptions{SectionBits: sectionBits})
}

// WriteFileSharded serializes the database like WriteFile and embeds the
// manifest of a partition into shards equi-populated shards (format
// version 3), so openers can map the shards without scanning records.
func (db *DB) WriteFileSharded(path string, sectionBits, shards int) error {
	if shards < 1 {
		return fmt.Errorf("store: shard count %d must be >= 1", shards)
	}
	return db.writeFile(OSFS, path, WriteOptions{SectionBits: sectionBits, Shards: shards})
}

// WriteFileOpts serializes the database with the selected optional
// sections; requesting a sketch or the codec produces a version-4 file.
func (db *DB) WriteFileOpts(path string, opt WriteOptions) error {
	return db.writeFile(OSFS, path, opt)
}

// WriteFileOptsFS is WriteFileOpts through an explicit filesystem seam.
func (db *DB) WriteFileOptsFS(fsys FS, path string, opt WriteOptions) error {
	return db.writeFile(fsys, path, opt)
}

func (db *DB) writeFile(fsys FS, path string, opt WriteOptions) error {
	if opt.SectionBits < 0 || opt.SectionBits > db.curve.IndexBits() {
		return fmt.Errorf("store: sectionBits %d outside [0,%d]", opt.SectionBits, db.curve.IndexBits())
	}
	if opt.Shards < 0 {
		return fmt.Errorf("store: shard count %d must be >= 0", opt.Shards)
	}
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := db.writeTo(w, opt); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	// Segment files may be referenced by a durable manifest the moment
	// they are committed (CommitManifest); their data must reach stable
	// storage first, or a power loss could leave a committed manifest
	// pointing at torn records.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (db *DB) writeTo(w io.Writer, opt WriteOptions) error {
	var shardStarts []int
	if opt.Shards > 0 {
		shardStarts = db.ShardStarts(opt.Shards)
	}
	version := fileVersionV2
	if shardStarts != nil {
		version = fileVersionV3
	}
	var flags uint32
	if opt.Sketch || opt.Codec {
		version = fileVersionV4
		if shardStarts != nil {
			flags |= fileFlagShards
		}
		if opt.Sketch {
			flags |= fileFlagSketch
		}
		if opt.Codec {
			flags |= fileFlagCodec
		}
	}
	var quant *Quantizer
	if opt.Codec {
		bits := opt.CodecBits
		if bits == 0 {
			bits = DefaultCodecBits
		}
		var err error
		if quant, err = buildQuantizer(db, bits); err != nil {
			return err
		}
	}
	var hdr [28]byte
	copy(hdr[0:4], fileMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:], uint32(version))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(db.Dims()))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(db.curve.Order()))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(db.Len()))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(opt.SectionBits))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	if version >= fileVersionV4 {
		binary.LittleEndian.PutUint32(buf[:4], flags)
		if _, err := w.Write(buf[:4]); err != nil {
			return err
		}
	}
	starts := db.SectionStarts(opt.SectionBits)
	for _, s := range starts {
		binary.LittleEndian.PutUint64(buf[:], uint64(s))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	if shardStarts != nil {
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(shardStarts)-1))
		if _, err := w.Write(buf[:4]); err != nil {
			return err
		}
		for _, s := range shardStarts {
			binary.LittleEndian.PutUint64(buf[:], uint64(s))
			if _, err := w.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	if opt.Sketch {
		sk := db.BuildSketch(opt.SketchBits)
		if _, err := w.Write(sk.appendTo(nil)); err != nil {
			return err
		}
	}
	if quant != nil {
		if _, err := w.Write(quant.appendTo(nil)); err != nil {
			return err
		}
	}
	kb := keyBytes(db.curve)
	rec := make([]byte, recordSize(db.curve, version))
	for i := 0; i < db.Len(); i++ {
		db.keys[i].PutBytes(rec[:kb], kb)
		copy(rec[kb:], db.FP(i))
		binary.LittleEndian.PutUint32(rec[kb+db.Dims():], db.ids[i])
		binary.LittleEndian.PutUint32(rec[kb+db.Dims()+4:], db.tcs[i])
		binary.LittleEndian.PutUint16(rec[kb+db.Dims()+8:], db.xs[i])
		binary.LittleEndian.PutUint16(rec[kb+db.Dims()+10:], db.ys[i])
		if _, err := w.Write(rec); err != nil {
			return err
		}
	}
	if quant != nil {
		// Lean rows: the record without its fingerprint, same order.
		lean := make([]byte, leanRecordSize(db.curve))
		for i := 0; i < db.Len(); i++ {
			db.keys[i].PutBytes(lean[:kb], kb)
			binary.LittleEndian.PutUint32(lean[kb:], db.ids[i])
			binary.LittleEndian.PutUint32(lean[kb+4:], db.tcs[i])
			binary.LittleEndian.PutUint16(lean[kb+8:], db.xs[i])
			binary.LittleEndian.PutUint16(lean[kb+10:], db.ys[i])
			if _, err := w.Write(lean); err != nil {
				return err
			}
		}
		// Packed cell codes, same order.
		code := make([]byte, quant.CodeBytes(db.Dims()))
		for i := 0; i < db.Len(); i++ {
			for b := range code {
				code[b] = 0
			}
			quant.encode(db.FP(i), code)
			if _, err := w.Write(code); err != nil {
				return err
			}
		}
	}
	return nil
}

// File is an opened database file. Only the header and section table are
// resident; records are loaded on demand with LoadRecords. A File is safe
// for concurrent LoadRecords calls (the FS File contract requires a
// concurrency-safe ReadAt, as os.File's is).
type File struct {
	f           Handle
	curve       *hilbert.Curve
	count       int
	sectionBits int
	starts      []int64
	shardStarts []int // nil for versions without a manifest
	dataOff     int64
	recSize     int
	version     int

	// Version-4 optional sections; zero/nil when absent.
	flags    uint32
	sketch   *Sketch
	quant    *Quantizer
	leanOff  int64 // lean record area offset (0 when no codec)
	codeOff  int64 // packed code area offset (0 when no codec)
	leanSize int   // bytes per lean row
	codeSize int   // bytes per packed code row
}

// Open reads a file's header and section table.
func Open(path string) (*File, error) { return OpenFS(OSFS, path) }

// OpenFS is Open through an explicit filesystem seam. Every validation
// failure closes the file before returning: a failed open must never
// leak a descriptor.
func OpenFS(fsys FS, path string) (*File, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	var hdr [28]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: reading header of %s: %w", path, err)
	}
	if [4]byte(hdr[0:4]) != fileMagic {
		f.Close()
		return nil, fmt.Errorf("store: %s is not an S3DB file", path)
	}
	version := int(binary.LittleEndian.Uint32(hdr[4:]))
	if version < fileVersionV1 || version > fileVersion {
		f.Close()
		return nil, fmt.Errorf("store: %s has unsupported version %d", path, version)
	}
	dims := int(binary.LittleEndian.Uint32(hdr[8:]))
	order := int(binary.LittleEndian.Uint32(hdr[12:]))
	count64 := binary.LittleEndian.Uint64(hdr[16:])
	secBits := int(binary.LittleEndian.Uint32(hdr[24:]))
	curve, err := hilbert.New(dims, order)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	// A corrupt count would otherwise drive LoadRecords/LoadAll to
	// allocate count*recSize bytes before any read could fail; bound it
	// here, and below verify the record area actually exists on disk.
	if count64 > maxFileRecords {
		f.Close()
		return nil, fmt.Errorf("store: %s claims %d records (limit %d)", path, count64, int64(maxFileRecords))
	}
	count := int(count64)
	if secBits < 0 || secBits > curve.IndexBits() {
		f.Close()
		return nil, fmt.Errorf("store: %s has invalid section bits %d", path, secBits)
	}
	// Cap the table size independently of the curve geometry: a curve can
	// legitimately carry 160 index bits, but a 2^p-entry table beyond
	// maxSectionBits (8 GiB+) is only ever a corrupt header, and the
	// allocation must be refused before it is attempted.
	if secBits > maxSectionBits {
		f.Close()
		return nil, fmt.Errorf("store: %s section table of 2^%d entries exceeds the 2^%d sanity bound",
			path, secBits, maxSectionBits)
	}
	off := int64(len(hdr))
	var flags uint32
	if version >= fileVersionV4 {
		var fbuf [4]byte
		if _, err := io.ReadFull(f, fbuf[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: reading flags of %s: %w", path, err)
		}
		flags = binary.LittleEndian.Uint32(fbuf[:])
		if flags&^(fileFlagShards|fileFlagSketch|fileFlagCodec) != 0 {
			f.Close()
			return nil, fmt.Errorf("store: %s carries unknown flags %#x", path, flags)
		}
		off += 4
	} else if version >= fileVersionV3 {
		flags = fileFlagShards
	}
	n := (1 << uint(secBits)) + 1
	// Probe the table's last byte before allocating its buffer, so a
	// truncated file (or a header whose secBits outruns the actual size)
	// is rejected without an allocation sized by untrusted input.
	if err := probeOffset(f, off+int64(8*n)-1); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s section table extends past end of file: %w", path, err)
	}
	tbl := make([]byte, 8*n)
	if _, err := io.ReadFull(f, tbl); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: reading section table of %s: %w", path, err)
	}
	starts := make([]int64, n)
	for i := range starts {
		starts[i] = int64(binary.LittleEndian.Uint64(tbl[8*i:]))
		if starts[i] < 0 || starts[i] > int64(count) || (i > 0 && starts[i] < starts[i-1]) {
			f.Close()
			return nil, fmt.Errorf("store: %s has corrupt section table at %d", path, i)
		}
	}
	if starts[0] != 0 || starts[n-1] != int64(count) {
		f.Close()
		return nil, fmt.Errorf("store: %s section table does not span the record range", path)
	}
	off += int64(8 * n)
	var shardStarts []int
	if flags&fileFlagShards != 0 {
		var cntBuf [4]byte
		if _, err := io.ReadFull(f, cntBuf[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: reading shard manifest of %s: %w", path, err)
		}
		nShards := int(binary.LittleEndian.Uint32(cntBuf[:]))
		if nShards < 1 || nShards > count+1 {
			f.Close()
			return nil, fmt.Errorf("store: %s has invalid shard count %d", path, nShards)
		}
		manifest := make([]byte, 8*(nShards+1))
		if _, err := io.ReadFull(f, manifest); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: reading shard manifest of %s: %w", path, err)
		}
		shardStarts = make([]int, nShards+1)
		for i := range shardStarts {
			shardStarts[i] = int(binary.LittleEndian.Uint64(manifest[8*i:]))
			if shardStarts[i] < 0 || shardStarts[i] > count || (i > 0 && shardStarts[i] < shardStarts[i-1]) {
				f.Close()
				return nil, fmt.Errorf("store: %s has corrupt shard manifest at %d", path, i)
			}
		}
		if shardStarts[0] != 0 || shardStarts[nShards] != count {
			f.Close()
			return nil, fmt.Errorf("store: %s shard manifest does not span the record range", path)
		}
		off += int64(4 + len(manifest))
	}
	var sketch *Sketch
	if flags&fileFlagSketch != 0 {
		// The fixed 16-byte sub-header bounds the section's variable tail;
		// probe before the tail read so a lying length fails cleanly (the
		// caps inside decodeSketch bound the allocation itself).
		var shdr [16]byte
		if _, err := io.ReadFull(f, shdr[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: reading sketch header of %s: %w", path, err)
		}
		flen := int64(binary.LittleEndian.Uint32(shdr[12:]))
		if flen < 1 || flen > maxSketchFilterBytes {
			f.Close()
			return nil, fmt.Errorf("store: %s sketch filter of %d bytes outside [1, %d]", path, flen, maxSketchFilterBytes)
		}
		tail := int64(2*dims) + flen
		if err := probeOffset(f, off+16+tail-1); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %s sketch section extends past end of file: %w", path, err)
		}
		sec := make([]byte, 16+tail)
		copy(sec, shdr[:])
		if _, err := io.ReadFull(f, sec[16:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: reading sketch section of %s: %w", path, err)
		}
		var used int
		if sketch, used, err = decodeSketch(sec, curve); err != nil || used != len(sec) {
			f.Close()
			if err == nil {
				err = fmt.Errorf("sketch section size mismatch")
			}
			return nil, fmt.Errorf("store: %s: %w", path, err)
		}
		off += int64(len(sec))
	}
	var quant *Quantizer
	if flags&fileFlagCodec != 0 {
		var qhdr [4]byte
		if _, err := io.ReadFull(f, qhdr[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: reading codec header of %s: %w", path, err)
		}
		qbits := binary.LittleEndian.Uint32(qhdr[:])
		switch qbits {
		case 1, 2, 4, 8:
		default:
			f.Close()
			return nil, fmt.Errorf("store: %s codec bits %d not one of 1, 2, 4, 8", path, qbits)
		}
		tail := int64(2 * dims * ((1 << qbits) + 1))
		if err := probeOffset(f, off+4+tail-1); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %s codec section extends past end of file: %w", path, err)
		}
		sec := make([]byte, 4+tail)
		copy(sec, qhdr[:])
		if _, err := io.ReadFull(f, sec[4:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: reading codec section of %s: %w", path, err)
		}
		var used int
		if quant, used, err = decodeQuantizer(sec, dims); err != nil || used != len(sec) {
			f.Close()
			if err == nil {
				err = fmt.Errorf("codec section size mismatch")
			}
			return nil, fmt.Errorf("store: %s: %w", path, err)
		}
		off += int64(len(sec))
	}
	dataOff := off
	// The header's record count is only trustworthy once the record area
	// it promises is actually on disk: probe the last record byte, so a
	// truncated file fails here instead of returning garbage (or a short
	// read) from a later LoadRecords. The codec's lean and code areas get
	// the same treatment — a file truncated inside them must fail at open,
	// not during a cold read.
	recSize := recordSize(curve, version)
	fl := &File{
		f:           f,
		curve:       curve,
		count:       count,
		sectionBits: secBits,
		starts:      starts,
		shardStarts: shardStarts,
		dataOff:     dataOff,
		recSize:     recSize,
		version:     version,
		flags:       flags,
		sketch:      sketch,
		quant:       quant,
	}
	end := dataOff + int64(count)*int64(recSize)
	if quant != nil {
		fl.leanSize = leanRecordSize(curve)
		fl.codeSize = quant.CodeBytes(dims)
		fl.leanOff = end
		end += int64(count) * int64(fl.leanSize)
		fl.codeOff = end
		end += int64(count) * int64(fl.codeSize)
	}
	if count > 0 {
		if err := probeOffset(f, end-1); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %s record area truncated (want %d bytes): %w", path, end, err)
		}
	}
	return fl, nil
}

// maxFileRecords bounds the record count a header may claim (2^48
// records of the smallest record layout already exceed 8 PiB).
const maxFileRecords = 1 << 48

// maxSectionBits bounds the section-table granularity a header may
// claim. Writers validate sectionBits against the curve alone, but any
// value past this produces a multi-gigabyte table no real archive
// carries; reading one is always header corruption.
const maxSectionBits = 28

// probeOffset verifies the file has a byte at off (a cheap existence
// check against the actual file size, which the Handle interface does
// not expose directly).
func probeOffset(f Handle, off int64) error {
	var b [1]byte
	_, err := f.ReadAt(b[:], off)
	return err
}

// Version returns the file's format version (1 through 4).
func (fl *File) Version() int { return fl.version }

// Sketch returns the file's embedded occupancy sketch, or nil when the
// file carries none. The sketch is shared and read-only.
func (fl *File) Sketch() *Sketch { return fl.sketch }

// Quantizer returns the file's embedded cold codec table, or nil when
// the file carries none. The quantizer is shared and read-only.
func (fl *File) Quantizer() *Quantizer { return fl.quant }

// HasCodec reports whether the file carries the cold codec: a quantizer
// table plus lean and packed-code record areas.
func (fl *File) HasCodec() bool { return fl.quant != nil }

// SketchBytes returns the on-disk size of the sketch section (0 when
// absent).
func (fl *File) SketchBytes() int {
	if fl.sketch == nil {
		return 0
	}
	return fl.sketch.EncodedSize()
}

// ShardStarts returns the stored shard manifest (record start index per
// shard plus a final entry equal to Count), or nil when the file predates
// format version 3. The returned slice is shared; callers must not modify
// it.
func (fl *File) ShardStarts() []int { return fl.shardStarts }

// Close releases the underlying file.
func (fl *File) Close() error { return fl.f.Close() }

// Curve returns the curve the file was built with.
func (fl *File) Curve() *hilbert.Curve { return fl.curve }

// Count returns the number of records in the file.
func (fl *File) Count() int { return fl.count }

// SectionBits returns the granularity exponent of the stored table.
func (fl *File) SectionBits() int { return fl.sectionBits }

// RecordBytes returns the on-disk size of the record area — the number
// operators size block-cache budgets against.
func (fl *File) RecordBytes() int64 { return int64(fl.count) * int64(fl.recSize) }

// RecordSize returns the on-disk size of one record.
func (fl *File) RecordSize() int { return fl.recSize }

// ChooseSectionBits returns the smallest r such that every curve section
// of a 2^r partition holds at most budget records, capped at the stored
// table granularity. If even the finest stored partition exceeds the
// budget, the finest partition is returned (best-effort, mirroring the
// paper where r <= p). This is the pseudo-disk block sizing rule of
// Section IV-B, shared by the batch experiment (core.DiskIndex) and the
// cold serving path (ColdFile).
func (fl *File) ChooseSectionBits(budget int) int {
	for bits := 0; bits <= fl.sectionBits; bits++ {
		per := 1 << uint(fl.sectionBits-bits)
		maxSec := int64(0)
		for s := 0; s < 1<<uint(bits); s++ {
			if n := fl.starts[(s+1)*per] - fl.starts[s*per]; n > maxSec {
				maxSec = n
			}
		}
		if maxSec <= int64(budget) {
			return bits
		}
	}
	return fl.sectionBits
}

// SectionRecordRange returns the record index range [lo, hi) of curve
// section idx in a partition into 2^bits sections. bits must not exceed
// SectionBits (coarser partitions aggregate stored sections).
func (fl *File) SectionRecordRange(bits, idx int) (lo, hi int) {
	if bits < 0 || bits > fl.sectionBits {
		panic(fmt.Sprintf("store: section bits %d outside [0,%d]", bits, fl.sectionBits))
	}
	per := 1 << uint(fl.sectionBits-bits)
	return int(fl.starts[idx*per]), int(fl.starts[(idx+1)*per])
}

// LoadRecords reads records [lo, hi) into a Chunk.
func (fl *File) LoadRecords(lo, hi int) (*Chunk, error) {
	if lo < 0 || hi < lo || hi > fl.count {
		return nil, fmt.Errorf("store: record range [%d,%d) outside [0,%d)", lo, hi, fl.count)
	}
	n := hi - lo
	buf := make([]byte, n*fl.recSize)
	if n > 0 {
		if _, err := fl.f.ReadAt(buf, fl.dataOff+int64(lo)*int64(fl.recSize)); err != nil {
			return nil, fmt.Errorf("store: reading records [%d,%d): %w", lo, hi, err)
		}
	}
	dims := fl.curve.Dims()
	kb := keyBytes(fl.curve)
	ch := &Chunk{
		Base:  lo,
		curve: fl.curve,
		keys:  make([]bitkey.Key, n),
		fps:   make([]byte, n*dims),
		ids:   make([]uint32, n),
		tcs:   make([]uint32, n),
		xs:    make([]uint16, n),
		ys:    make([]uint16, n),
	}
	for i := 0; i < n; i++ {
		rec := buf[i*fl.recSize : (i+1)*fl.recSize]
		ch.keys[i] = bitkey.FromBytes(rec[:kb], kb)
		copy(ch.fps[i*dims:], rec[kb:kb+dims])
		ch.ids[i] = binary.LittleEndian.Uint32(rec[kb+dims:])
		ch.tcs[i] = binary.LittleEndian.Uint32(rec[kb+dims+4:])
		if fl.version >= 2 {
			ch.xs[i] = binary.LittleEndian.Uint16(rec[kb+dims+8:])
			ch.ys[i] = binary.LittleEndian.Uint16(rec[kb+dims+10:])
		}
	}
	return ch, nil
}

// LoadLean reads lean rows [lo, hi) into a Chunk whose fingerprints are
// absent (FP must not be called on it). Only files carrying the cold
// codec have a lean area; statistical refinement reads these at
// leanSize/recSize of the exact bytes.
func (fl *File) LoadLean(lo, hi int) (*Chunk, error) {
	if fl.quant == nil {
		return nil, fmt.Errorf("store: file carries no lean record area")
	}
	if lo < 0 || hi < lo || hi > fl.count {
		return nil, fmt.Errorf("store: record range [%d,%d) outside [0,%d)", lo, hi, fl.count)
	}
	n := hi - lo
	buf := make([]byte, n*fl.leanSize)
	if n > 0 {
		if _, err := fl.f.ReadAt(buf, fl.leanOff+int64(lo)*int64(fl.leanSize)); err != nil {
			return nil, fmt.Errorf("store: reading lean records [%d,%d): %w", lo, hi, err)
		}
	}
	kb := keyBytes(fl.curve)
	ch := &Chunk{
		Base:  lo,
		curve: fl.curve,
		keys:  make([]bitkey.Key, n),
		ids:   make([]uint32, n),
		tcs:   make([]uint32, n),
		xs:    make([]uint16, n),
		ys:    make([]uint16, n),
	}
	for i := 0; i < n; i++ {
		rec := buf[i*fl.leanSize : (i+1)*fl.leanSize]
		ch.keys[i] = bitkey.FromBytes(rec[:kb], kb)
		ch.ids[i] = binary.LittleEndian.Uint32(rec[kb:])
		ch.tcs[i] = binary.LittleEndian.Uint32(rec[kb+4:])
		ch.xs[i] = binary.LittleEndian.Uint16(rec[kb+8:])
		ch.ys[i] = binary.LittleEndian.Uint16(rec[kb+10:])
	}
	return ch, nil
}

// loadCodes reads the packed quantizer codes of records [lo, hi); code
// row i-lo starts at byte (i-lo)*codeSize.
func (fl *File) loadCodes(lo, hi int) ([]byte, error) {
	if fl.quant == nil {
		return nil, fmt.Errorf("store: file carries no code area")
	}
	if lo < 0 || hi < lo || hi > fl.count {
		return nil, fmt.Errorf("store: record range [%d,%d) outside [0,%d)", lo, hi, fl.count)
	}
	n := hi - lo
	buf := make([]byte, n*fl.codeSize)
	if n > 0 {
		if _, err := fl.f.ReadAt(buf, fl.codeOff+int64(lo)*int64(fl.codeSize)); err != nil {
			return nil, fmt.Errorf("store: reading codes [%d,%d): %w", lo, hi, err)
		}
	}
	return buf, nil
}

// ReadRecordView reads one exact record — the codec path's fallback for
// candidates that survive the quantized filter. The view's FP aliases a
// fresh allocation and stays valid after return.
func (fl *File) ReadRecordView(i int) (RecordView, error) {
	if i < 0 || i >= fl.count {
		return RecordView{}, fmt.Errorf("store: record %d outside [0,%d)", i, fl.count)
	}
	buf := make([]byte, fl.recSize)
	if _, err := fl.f.ReadAt(buf, fl.dataOff+int64(i)*int64(fl.recSize)); err != nil {
		return RecordView{}, fmt.Errorf("store: reading record %d: %w", i, err)
	}
	kb := keyBytes(fl.curve)
	dims := fl.curve.Dims()
	rv := RecordView{
		Pos: i,
		Key: bitkey.FromBytes(buf[:kb], kb),
		FP:  buf[kb : kb+dims : kb+dims],
		ID:  binary.LittleEndian.Uint32(buf[kb+dims:]),
		TC:  binary.LittleEndian.Uint32(buf[kb+dims+4:]),
	}
	if fl.version >= 2 {
		rv.X = binary.LittleEndian.Uint16(buf[kb+dims+8:])
		rv.Y = binary.LittleEndian.Uint16(buf[kb+dims+10:])
	}
	return rv, nil
}

// LoadAll reads the whole file into an in-memory DB.
func (fl *File) LoadAll() (*DB, error) {
	ch, err := fl.LoadRecords(0, fl.count)
	if err != nil {
		return nil, err
	}
	return &DB{curve: fl.curve, keys: ch.keys, fps: ch.fps,
		ids: ch.ids, tcs: ch.tcs, xs: ch.xs, ys: ch.ys}, nil
}

// ReadFile opens path and loads the complete database.
func ReadFile(path string) (*DB, error) { return ReadFileFS(OSFS, path) }

// ReadFileFS is ReadFile through an explicit filesystem seam.
func ReadFileFS(fsys FS, path string) (*DB, error) {
	fl, err := OpenFS(fsys, path)
	if err != nil {
		return nil, err
	}
	defer fl.Close()
	return fl.LoadAll()
}

// Chunk is a contiguous run of records loaded from a File. Record i of
// the chunk is record Base+i of the database.
type Chunk struct {
	Base  int
	curve *hilbert.Curve
	keys  []bitkey.Key
	fps   []byte
	ids   []uint32
	tcs   []uint32
	xs    []uint16
	ys    []uint16
}

// Len returns the number of records in the chunk.
func (c *Chunk) Len() int { return len(c.keys) }

// Key returns the Hilbert key of chunk-local record i.
func (c *Chunk) Key(i int) bitkey.Key { return c.keys[i] }

// FP returns the fingerprint of chunk-local record i.
func (c *Chunk) FP(i int) []byte {
	d := c.curve.Dims()
	return c.fps[i*d : (i+1)*d : (i+1)*d]
}

// ID returns the identifier of chunk-local record i.
func (c *Chunk) ID(i int) uint32 { return c.ids[i] }

// TC returns the time code of chunk-local record i.
func (c *Chunk) TC(i int) uint32 { return c.tcs[i] }

// X returns the interest point x position of chunk-local record i.
func (c *Chunk) X(i int) uint16 { return c.xs[i] }

// Y returns the interest point y position of chunk-local record i.
func (c *Chunk) Y(i int) uint16 { return c.ys[i] }

// FindInterval returns the chunk-local index range whose keys fall in iv.
func (c *Chunk) FindInterval(iv hilbert.Interval) (lo, hi int) {
	lo = sort.Search(len(c.keys), func(i int) bool {
		return c.keys[i].Cmp(iv.Start) >= 0
	})
	hi = sort.Search(len(c.keys), func(i int) bool {
		return c.keys[i].Cmp(iv.End) >= 0
	})
	return lo, hi
}
