package store

import (
	"fmt"

	"s3cbcd/internal/bitkey"
)

// ShardRange describes one shard of a curve-ordered database: the
// half-open curve interval [Start, End) it owns and the record index range
// [Lo, Hi) that interval maps to. Shards partition both the keyspace and
// the record range: shard i's End equals shard i+1's Start, shard 0 starts
// at curve position zero and the last shard ends one past the last curve
// position. Because boundaries are snapped to the key of a stored record,
// records sharing a key never straddle two shards, so a plan interval
// intersected with every shard's record range reproduces exactly the
// records the unsharded scan would visit, in the same order.
type ShardRange struct {
	Start, End bitkey.Key
	Lo, Hi     int
}

// curveEnd returns the exclusive end of the whole curve, 2^indexBits.
func curveEnd(indexBits int) bitkey.Key {
	return bitkey.FromUint64(1).Shl(uint(indexBits))
}

// ShardStarts returns the record index at which each of n equi-populated
// shards starts, plus a final entry equal to Len(). Interior boundaries
// target i*Len/n and are snapped down to the first record holding the
// boundary record's key, so equal keys stay in one shard. Duplicate
// boundaries (a single key heavier than a shard quota) are kept: the
// resulting empty shards preserve the requested count, and empty shards
// cost nothing at query time.
func (db *DB) ShardStarts(n int) []int {
	if n < 1 {
		n = 1
	}
	starts := make([]int, n+1)
	starts[n] = db.Len()
	for i := 1; i < n; i++ {
		t := i * db.Len() / n
		b := t
		for b > 0 && db.keys[b-1] == db.keys[t] {
			b--
		}
		if prev := starts[i-1]; b < prev {
			b = prev
		}
		starts[i] = b
	}
	return starts
}

// Shards splits the database into n contiguous key-range shards,
// equi-populated by record count with boundaries snapped to curve
// positions of stored keys. n <= 1 (and any n on an empty database whose
// snapping collapses boundaries) degenerates to fewer, possibly one,
// covering shard; the full keyspace and record range are always covered
// exactly once.
func (db *DB) Shards(n int) []ShardRange {
	return db.shardsAt(db.ShardStarts(n))
}

// ShardsAt reconstructs shard ranges from explicit record start indices
// (for example a file's stored shard manifest). starts must begin at 0,
// end at Len() and be non-decreasing.
func (db *DB) ShardsAt(starts []int) ([]ShardRange, error) {
	if len(starts) < 2 || starts[0] != 0 || starts[len(starts)-1] != db.Len() {
		return nil, fmt.Errorf("store: shard starts %v do not span [0,%d]", starts, db.Len())
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] < starts[i-1] {
			return nil, fmt.Errorf("store: shard starts %v decrease at %d", starts, i)
		}
	}
	return db.shardsAt(starts), nil
}

func (db *DB) shardsAt(starts []int) []ShardRange {
	n := len(starts) - 1
	shards := make([]ShardRange, n)
	for i := 0; i < n; i++ {
		shards[i] = ShardRange{Lo: starts[i], Hi: starts[i+1]}
		if i == 0 {
			shards[i].Start = bitkey.Zero
		} else if starts[i] < db.Len() {
			shards[i].Start = db.keys[starts[i]]
		} else {
			shards[i].Start = curveEnd(db.curve.IndexBits())
		}
	}
	for i := 0; i < n-1; i++ {
		shards[i].End = shards[i+1].Start
	}
	shards[n-1].End = curveEnd(db.curve.IndexBits())
	return shards
}
