package cbcd

import (
	"context"
	"fmt"
	"sort"
	"time"

	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/obs"
	"s3cbcd/internal/vidsim"
	"s3cbcd/internal/vote"
)

// StreamMonitor is the incremental form of Monitor for live capture: feed
// frames as they arrive and collect detections as decision windows
// complete, with bounded memory (only the current window plus a small
// extraction margin is retained). The batch Monitor remains the simpler
// choice when the whole stream is already on disk.
type StreamMonitor struct {
	det *Detector
	// WindowFrames and HopFrames mirror Monitor. Fixed at construction.
	windowFrames int
	hopFrames    int
	// margin is the temporal support the characterization needs around a
	// window (TimeOffset frames each side).
	margin int

	frames []*vidsim.Frame // retained tail of the stream
	base   int             // absolute index of frames[0]
	cursor int             // absolute start of the next window to decide
	next   int             // absolute index of the next frame to arrive

	// WindowLatency, when set before feeding, observes the wall time of
	// every decided window (extract + search + vote), so a monitoring
	// deployment can report per-window latency percentiles next to its
	// speed factor. Nil disables the accounting.
	WindowLatency *obs.Histogram

	// TraceWindows, when set before feeding, runs every decided window
	// under a fresh trace — extract/search/vote stage spans plus the
	// search work counters — and hands the finished report to the
	// callback, so a monitoring deployment can keep (say) the slowest
	// window's tree. Called synchronously from Feed/Close; nil disables
	// tracing entirely.
	TraceWindows func(obs.TraceReport)
}

// NewStreamMonitor returns an incremental monitor with the given window
// and hop (0 selects 250 and window/2, as NewMonitor).
func NewStreamMonitor(det *Detector, windowFrames, hopFrames int) (*StreamMonitor, error) {
	if windowFrames <= 0 {
		windowFrames = 250
	}
	if hopFrames <= 0 {
		hopFrames = windowFrames / 2
		if hopFrames < 1 {
			hopFrames = 1
		}
	}
	if hopFrames > windowFrames {
		return nil, fmt.Errorf("cbcd: hop %d exceeds window %d", hopFrames, windowFrames)
	}
	cfg := det.Config().Fingerprint
	margin := cfg.TimeOffset
	if margin == 0 {
		margin = fingerprint.DefaultConfig().TimeOffset
	}
	return &StreamMonitor{
		det:          det,
		windowFrames: windowFrames,
		hopFrames:    hopFrames,
		margin:       margin,
	}, nil
}

// Feed appends captured frames and returns the detections of every
// decision window that completed. Frames are retained only as long as a
// pending window needs them.
func (m *StreamMonitor) Feed(frames []*vidsim.Frame) ([]StreamDetection, error) {
	m.frames = append(m.frames, frames...)
	m.next += len(frames)
	var out []StreamDetection
	// A window [cursor, cursor+window) is decidable once its extraction
	// margin has fully arrived.
	for m.cursor+m.windowFrames+m.margin <= m.next {
		dets, err := m.decideWindow(m.cursor, m.cursor+m.windowFrames)
		if err != nil {
			return nil, err
		}
		out = append(out, dets...)
		m.cursor += m.hopFrames
		m.dropBefore(m.cursor - m.margin)
	}
	return out, nil
}

// Close decides the final (possibly partial) window and releases the
// buffer. The monitor must not be fed afterwards.
func (m *StreamMonitor) Close() ([]StreamDetection, error) {
	defer func() { m.frames = nil }()
	if m.next <= m.cursor {
		return nil, nil
	}
	end := m.next
	if end > m.cursor+m.windowFrames {
		end = m.cursor + m.windowFrames
	}
	return m.decideWindow(m.cursor, end)
}

// decideWindow extracts and searches frames [from, to) (absolute), using
// the retained margin for temporal support, and votes over the results.
func (m *StreamMonitor) decideWindow(from, to int) ([]StreamDetection, error) {
	defer m.WindowLatency.ObserveSince(time.Now())
	var tr *obs.Trace
	ctx := context.Background()
	if m.TraceWindows != nil {
		tr = obs.NewTrace()
		tr.SetName(fmt.Sprintf("window [%d,%d)", from, to))
		ctx = obs.WithTrace(ctx, tr)
		defer func() { m.TraceWindows(tr.Report()) }()
	}
	lo := from - m.margin
	if lo < m.base {
		lo = m.base
	}
	hi := to + m.margin
	if hi > m.next {
		hi = m.next
	}
	t0 := time.Now()
	seq := &vidsim.Sequence{FPS: 25, Frames: m.frames[lo-m.base : hi-m.base]}
	locals := m.det.cfg.Extract(seq, m.det.cfg.Fingerprint)
	// Keep only key-frames inside the window proper and rebase time codes
	// to absolute stream frames.
	kept := locals[:0]
	for _, l := range locals {
		abs := int(l.TC) + lo
		if abs >= from && abs < to {
			l.TC = uint32(abs)
			kept = append(kept, l)
		}
	}
	tr.StageSince("extract", t0)
	if len(kept) == 0 {
		return nil, nil
	}
	t1 := time.Now()
	cands, err := m.det.SearchLocalsCtx(ctx, kept)
	if err != nil {
		return nil, err
	}
	tr.StageSince("search", t1)
	t2 := time.Now()
	decided := vote.Decide(cands, m.det.cfg.Vote)
	tr.StageSince("vote", t2)
	var out []StreamDetection
	for _, d := range decided {
		out = append(out, StreamDetection{
			Detection:   d,
			WindowStart: uint32(from),
			WindowEnd:   uint32(to),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Votes != out[j].Votes {
			return out[i].Votes > out[j].Votes
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// dropBefore releases frames before absolute index abs.
func (m *StreamMonitor) dropBefore(abs int) {
	if abs <= m.base {
		return
	}
	n := abs - m.base
	if n > len(m.frames) {
		n = len(m.frames)
	}
	// Copy down so the backing array does not pin released frames.
	m.frames = append(m.frames[:0], m.frames[n:]...)
	m.base += n
}
